module mpclogic

go 1.22
