package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const coverOut = `ok  	mpclogic/internal/mpc	0.812s	coverage: 84.3% of statements
ok  	mpclogic/internal/transducer	2.150s	coverage: 90.1% of statements
?   	mpclogic/internal/workload	[no test files]
ok  	mpclogic/internal/rel	0.101s
`

func runFloor(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestPassesAtAndWithinSlack(t *testing.T) {
	dir := t.TempDir()
	cov := write(t, dir, "cover.txt", coverOut)
	// transducer floor is 1.9 points above measured — inside the
	// default slack of 2.0, so it must pass.
	base := write(t, dir, "base.json",
		`{"floors": {"mpclogic/internal/mpc": 84.3, "mpclogic/internal/transducer": 92.0}}`)
	code, out, _ := runFloor(t, "-baseline", base, cov)
	if code != 0 {
		t.Fatalf("exit=%d, want 0\n%s", code, out)
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("unexpected failure:\n%s", out)
	}
}

func TestFailsBelowFloorMinusSlack(t *testing.T) {
	dir := t.TempDir()
	cov := write(t, dir, "cover.txt", coverOut)
	base := write(t, dir, "base.json",
		`{"floors": {"mpclogic/internal/mpc": 87.0, "mpclogic/internal/transducer": 90.0}}`)
	code, out, _ := runFloor(t, "-baseline", base, cov)
	if code != 1 {
		t.Fatalf("exit=%d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL mpclogic/internal/mpc") {
		t.Errorf("mpc not flagged:\n%s", out)
	}
	if !strings.Contains(out, "ok   mpclogic/internal/transducer") {
		t.Errorf("transducer wrongly flagged:\n%s", out)
	}
}

// Deleting a guarded package's tests removes its coverage line; the
// gate must treat that as a failure, not a vacuous pass.
func TestFailsWhenGuardedPackageVanishes(t *testing.T) {
	dir := t.TempDir()
	cov := write(t, dir, "cover.txt", coverOut)
	base := write(t, dir, "base.json", `{"floors": {"mpclogic/internal/gone": 50.0}}`)
	code, out, _ := runFloor(t, "-baseline", base, cov)
	if code != 1 || !strings.Contains(out, "measured (none)") {
		t.Fatalf("exit=%d\n%s", code, out)
	}
}

func TestWriteRegeneratesBaseline(t *testing.T) {
	dir := t.TempDir()
	cov := write(t, dir, "cover.txt", coverOut)
	base := filepath.Join(dir, "base.json")
	code, _, errOut := runFloor(t, "-baseline", base, "-write", cov)
	if code != 0 {
		t.Fatalf("write exit=%d: %s", code, errOut)
	}
	// The regenerated baseline must gate exactly the measured values.
	code, out, _ := runFloor(t, "-baseline", base, "-slack", "0", cov)
	if code != 0 {
		t.Fatalf("fresh baseline fails its own measurement:\n%s", out)
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"mpclogic/internal/mpc": 84.3`) {
		t.Errorf("baseline content wrong:\n%s", data)
	}
	// Packages without coverage annotations must not become floors.
	if strings.Contains(string(data), "workload") || strings.Contains(string(data), `"mpclogic/internal/rel"`) {
		t.Errorf("non-covered package leaked into baseline:\n%s", data)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runFloor(t); code != 2 {
		t.Errorf("no args: exit != 2")
	}
	dir := t.TempDir()
	cov := write(t, dir, "cover.txt", coverOut)
	if code, _, _ := runFloor(t, "-baseline", filepath.Join(dir, "missing.json"), cov); code != 2 {
		t.Errorf("missing baseline: exit != 2")
	}
	empty := write(t, dir, "empty.txt", "no coverage here\n")
	if code, _, _ := runFloor(t, "-baseline", "x", empty); code != 2 {
		t.Errorf("input without coverage lines: exit != 2")
	}
}
