// Command coverfloor gates statement coverage against a checked-in
// per-package floor. It is the gate behind `make cover`: the input is
// the raw output of `go test -cover` over the guarded packages, the
// baseline is COVERAGE.json, and the build fails when any guarded
// package's coverage drops more than the slack below its floor — new
// code in the recovery stack has to bring tests with it.
//
//	coverfloor [-baseline COVERAGE.json] [-slack 2.0] [-write] cover.txt
//
// The slack absorbs the small shifts refactors cause (a moved branch
// changes the statement count without changing what is tested);
// deliberate improvements are locked in with -write, which regenerates
// the baseline from the measured values. Output lines are sorted by
// package so repeated runs are byte-identical.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

type baseline struct {
	// Floors maps import path → the statement-coverage percentage the
	// package had when the baseline was last regenerated.
	Floors map[string]float64 `json:"floors"`
}

var coverLine = regexp.MustCompile(`^ok\s+(\S+)\s+.*coverage:\s+([0-9.]+)% of statements`)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("coverfloor", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "COVERAGE.json", "checked-in coverage floor file")
	slack := fs.Float64("slack", 2.0, "allowed drop below the floor, in percentage points")
	write := fs.Bool("write", false, "regenerate the baseline from the measured coverage")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: coverfloor [-baseline file] [-slack pts] [-write] cover.txt")
		return 2
	}

	measured, err := parseCover(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "coverfloor: %v\n", err)
		return 2
	}
	if len(measured) == 0 {
		fmt.Fprintf(stderr, "coverfloor: no coverage lines in %s\n", fs.Arg(0))
		return 2
	}

	if *write {
		data, err := json.MarshalIndent(baseline{Floors: measured}, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "coverfloor: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "coverfloor: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "coverfloor: wrote %d floors to %s\n", len(measured), *baselinePath)
		return 0
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "coverfloor: %v (regenerate with -write)\n", err)
		return 2
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "coverfloor: bad baseline %s: %v\n", *baselinePath, err)
		return 2
	}

	pkgs := make([]string, 0, len(base.Floors))
	for pkg := range base.Floors {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)

	failures := 0
	for _, pkg := range pkgs {
		floor := base.Floors[pkg]
		got, ok := measured[pkg]
		if !ok {
			// A guarded package that stops reporting coverage is a
			// failure, not a skip: deleting its tests must not pass.
			fmt.Fprintf(stdout, "coverfloor: FAIL %-32s floor %5.1f%%  measured (none)\n", pkg, floor)
			failures++
			continue
		}
		if got < floor-*slack {
			fmt.Fprintf(stdout, "coverfloor: FAIL %-32s floor %5.1f%%  measured %5.1f%%  (slack %.1f)\n",
				pkg, floor, got, *slack)
			failures++
			continue
		}
		fmt.Fprintf(stdout, "coverfloor: ok   %-32s floor %5.1f%%  measured %5.1f%%\n", pkg, floor, got)
	}
	if failures > 0 {
		fmt.Fprintf(stdout, "coverfloor: %d of %d guarded packages below floor\n", failures, len(pkgs))
		return 1
	}
	return 0
}

// parseCover extracts per-package coverage percentages from `go test
// -cover` output. Packages without test files or without coverage
// annotations are ignored — only what the baseline guards matters.
func parseCover(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(data), -1) {
		m := coverLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var pct float64
		if _, err := fmt.Sscanf(m[2], "%f", &pct); err != nil {
			return nil, fmt.Errorf("bad coverage %q in %q", m[2], line)
		}
		out[m[1]] = pct
	}
	return out, nil
}
