// Command mpcload is the deterministic load harness for mpcd: seeded
// clients replay generated query scripts and the run is accounted on a
// virtual clock (facts shipped, MaxLoad ticks), never wall time, so a
// run's report — including its digest — is reproducible bit-for-bit.
//
// Usage:
//
//	mpcload -sessions 1000 -queries 32 -seed 7           # in-process server
//	mpcload -addr http://127.0.0.1:7443 -sessions 64     # a running daemon
//	mpcload -sessions 200 -epochs 3                      # soak: digests must agree
//
// In-process mode (no -addr) builds a fresh server per epoch and
// asserts two serving invariants, exiting 1 if either fails:
//
//   - determinism: every epoch's digest equals the first epoch's;
//   - reuse pays: unless -no-reuse, the run is replayed against an
//     always-repartition baseline server and total communication must
//     be strictly lower with reuse on.
package main

import (
	"flag"
	"fmt"
	"os"

	"mpclogic/internal/mpcd"
	"mpclogic/internal/mpcd/loadgen"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running mpcd (default: in-process server)")
	sessions := flag.Int("sessions", 64, "sessions to drive")
	queries := flag.Int("queries", 16, "queries per session")
	workers := flag.Int("workers", 8, "client goroutines")
	seed := flag.Int64("seed", 1, "script seed")
	epochs := flag.Int("epochs", 1, "repeat the run; every epoch must produce the same digest (in-process mode)")
	p := flag.Int("p", 8, "cluster width per session (in-process mode)")
	noReuse := flag.Bool("no-reuse", false, "drive an always-repartition server and skip the reuse comparison (in-process mode)")
	flag.Parse()

	cfg := loadgen.Config{Sessions: *sessions, Queries: *queries, Workers: *workers, Seed: *seed}

	if *addr != "" {
		rep, err := loadgen.Run(cfg, &loadgen.HTTPClient{Base: *addr})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpcload: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		return
	}

	serverCfg := mpcd.Config{P: *p, DisableReuse: *noReuse}
	var first *loadgen.Report
	for e := 0; e < *epochs; e++ {
		srv := mpcd.New(serverCfg)
		rep, err := loadgen.Run(cfg, &loadgen.HandlerClient{H: srv.Handler()})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpcload: epoch %d: %v\n", e, err)
			os.Exit(1)
		}
		if first == nil {
			first = rep
			fmt.Print(rep.String())
			continue
		}
		if rep.Digest != first.Digest {
			fmt.Fprintf(os.Stderr, "mpcload: epoch %d digest %s != epoch 0 digest %s: server is nondeterministic\n",
				e, rep.Digest, first.Digest)
			os.Exit(1)
		}
		fmt.Printf("epoch %d: digest match\n", e)
	}

	if !*noReuse {
		base := mpcd.New(mpcd.Config{P: *p, DisableReuse: true})
		baseRep, err := loadgen.Run(cfg, &loadgen.HandlerClient{H: base.Handler()})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpcload: baseline: %v\n", err)
			os.Exit(1)
		}
		if first.Reused == 0 {
			fmt.Fprintf(os.Stderr, "mpcload: no query reused the stored distribution\n")
			os.Exit(1)
		}
		if first.Comm >= baseRep.Comm {
			fmt.Fprintf(os.Stderr, "mpcload: reuse comm %d >= always-repartition comm %d\n", first.Comm, baseRep.Comm)
			os.Exit(1)
		}
		fmt.Printf("reuse: comm %d vs baseline %d (saved %d)\n", first.Comm, baseRep.Comm, baseRep.Comm-first.Comm)
	}
}
