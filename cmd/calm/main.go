// Command calm classifies a Datalog program in the Figure 2 hierarchy
// (M / Mdistinct / Mdisjoint via its effective syntax), explains the
// coordination-free evaluation strategy CALM prescribes, and runs the
// program on a simulated asynchronous transducer network.
//
// Usage:
//
//	calm -program prog.dl -out TC -edges edges.txt -nodes 4
//
// where prog.dl holds one rule per line and edges.txt holds one fact
// per line (e.g. "E(a,b)").
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"mpclogic/internal/core"
	"mpclogic/internal/datalog"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
	"mpclogic/internal/transducer"
)

func main() {
	progFile := flag.String("program", "", "Datalog program file (required)")
	outRel := flag.String("out", "", "output relation (required)")
	factsFile := flag.String("facts", "", "EDB facts file, one fact per line")
	nodes := flag.Int("nodes", 4, "network size")
	seed := flag.Int64("seed", 1, "scheduler seed (message delay nondeterminism)")
	flag.Parse()

	if *progFile == "" || *outRel == "" {
		fmt.Fprintln(os.Stderr, "calm: -program and -out are required")
		flag.Usage()
		os.Exit(2)
	}
	d := rel.NewDict()
	src, err := os.ReadFile(*progFile)
	if err != nil {
		fatal(err)
	}
	prog, err := datalog.Parse(d, string(src))
	if err != nil {
		fatal(err)
	}
	cls := datalog.Classify(prog)
	class := core.ClassifyProgram(prog)
	fmt.Printf("program (%d rules), strata=%d\n", len(prog.Rules), cls.Strata)
	fmt.Printf("  positive=%v semi-positive=%v connected=%v semi-connected=%v\n",
		cls.Positive, cls.SemiPositive, cls.Connected, cls.SemiConnected)
	fmt.Printf("  hierarchy class: %s\n", class)
	fmt.Printf("  strategy: %s\n", core.StrategyFor(class))

	edb := rel.NewInstance()
	if *factsFile != "" {
		f, err := os.Open(*factsFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			fact, err := rel.ParseFact(d, line)
			if err != nil {
				fatal(err)
			}
			edb.Add(fact)
		}
		if err := sc.Err(); err != nil {
			fatal(err)
		}
	}
	if edb.IsEmpty() {
		fmt.Println("no facts given; classification only")
		return
	}

	want, err := datalog.EvalQuery(prog, edb, *outRel)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("centralized %s: %d facts\n", *outRel, want.Len())

	// Run the prescribed strategy on an asynchronous network.
	q := func(i *rel.Instance) *rel.Instance {
		out, err := datalog.EvalQuery(prog, i, *outRel)
		if err != nil {
			return rel.NewInstance()
		}
		return out
	}
	var n *transducer.Network
	switch class {
	case core.ClassM:
		n = transducer.New(*nodes, func() transducer.Program {
			return &transducer.MonotoneBroadcast{Q: q}
		}, transducer.WithSeed(*seed))
		if err := n.LoadParts(policy.Distribute(&policy.Hash{Nodes: *nodes}, edb)); err != nil {
			fatal(err)
		}
	case core.ClassMdisjoint:
		pol := &policy.DomainGuided{Nodes: *nodes, DefaultWidth: 1}
		n = transducer.New(*nodes, func() transducer.Program {
			return &transducer.DisjointComplete{Q: q}
		}, transducer.WithSeed(*seed), transducer.WithPolicy(pol))
		if err := n.LoadPolicy(edb, pol); err != nil {
			fatal(err)
		}
	default:
		// Mdistinct programs would need a schema-aware policy setup;
		// fall back to the coordinated protocol, which handles any
		// query at the price of coordination.
		n = transducer.New(*nodes, func() transducer.Program {
			return &transducer.Coordinated{Q: q}
		}, transducer.WithSeed(*seed))
		if err := n.LoadParts(policy.Distribute(&policy.Hash{Nodes: *nodes}, edb)); err != nil {
			fatal(err)
		}
	}
	stats, err := n.Run()
	if err != nil {
		fatal(err)
	}
	got := n.Output()
	fmt.Printf("distributed run: %d facts, sent=%d delivered=%d steps=%d\n",
		got.Len(), stats.Sent, stats.Delivered, stats.Steps)
	if got.Equal(want) {
		fmt.Println("distributed output MATCHES the centralized result")
	} else {
		fmt.Println("distributed output DIFFERS from the centralized result")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "calm: %v\n", err)
	os.Exit(1)
}
