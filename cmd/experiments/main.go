// Command experiments regenerates every experiment of the
// reproduction — both figures, the numbered examples, and the load
// bound measurements — and prints paper-claim-vs-measured reports.
//
// Usage:
//
//	experiments            # run everything
//	experiments -run SKEW  # run experiments whose ID contains SKEW
//	experiments -list      # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpclogic/internal/experiments"
)

func main() {
	runFilter := flag.String("run", "", "only run experiments whose ID contains this substring")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}

	failed := 0
	ran := 0
	for _, e := range experiments.All() {
		if *runFilter != "" && !strings.Contains(e.ID, *runFilter) {
			continue
		}
		ran++
		rep, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s errored: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Println(rep)
		if !rep.Pass {
			failed++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches %q\n", *runFilter)
		os.Exit(2)
	}
	fmt.Printf("%d experiments run, %d failed\n", ran, failed)
	if failed > 0 {
		os.Exit(1)
	}
}
