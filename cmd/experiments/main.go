// Command experiments regenerates every experiment of the
// reproduction — both figures, the numbered examples, and the load
// bound measurements — and prints paper-claim-vs-measured reports.
//
// Cells (experiment × parameter-point jobs) run on the internal/sweep
// worker pool. The rendered reports are byte-identical for every
// -parallel value: only the stderr timing annotation may differ.
//
// Usage:
//
//	experiments                  # run everything sequentially
//	experiments -parallel 0      # run on GOMAXPROCS workers
//	experiments -run SKEW        # run experiments whose ID contains SKEW
//	experiments -list            # list experiment IDs
//
// The exit code is 0 only when every selected experiment passes; a
// cell that errors or panics fails its experiment and exits 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"mpclogic/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runFilter := fs.String("run", "", "only run experiments whose ID contains this substring")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	parallel := fs.Int("parallel", 1, "sweep worker count; 0 or negative means GOMAXPROCS")
	selftest := fs.Bool("selftest", false, "also register the synthetic ZZSELF harness self-test experiments")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *selftest {
		experiments.RegisterSelfTest()
	}

	var defs []experiments.Def
	for _, d := range experiments.All() {
		if *runFilter != "" && !strings.Contains(d.ID, *runFilter) {
			continue
		}
		defs = append(defs, d)
	}

	if *list {
		for _, d := range defs {
			fmt.Fprintln(stdout, d.ID)
		}
		return 0
	}
	if len(defs) == 0 {
		fmt.Fprintf(stderr, "no experiment matches %q\n", *runFilter)
		return 2
	}

	workers := *parallel
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	reports, stats := experiments.RunSweep(workers, defs)
	elapsed := time.Since(start)

	failed := 0
	for _, rep := range reports {
		fmt.Fprintln(stdout, rep)
		if !rep.Pass {
			failed++
		}
	}
	fmt.Fprintf(stdout, "%d experiments run, %d failed\n", len(reports), failed)
	// Timing is measurement-only and goes to stderr so stdout stays
	// byte-identical across worker counts.
	//lint:allow nondet-taint wall-clock timing goes to the stderr diagnostics stream, never the byte-stable stdout report
	fmt.Fprintf(stderr, "sweep: %d cells over %d workers in %s (Σ cell wall %s, retried %d, errored %d)\n",
		stats.Cells, workers, elapsed.Round(time.Millisecond), stats.Wall.Round(time.Millisecond),
		stats.Retried, stats.ErroredCells)
	if failed > 0 {
		return 1
	}
	return 0
}
