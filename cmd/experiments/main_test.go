package main

import (
	"strings"
	"testing"
)

// The ZZSELF experiments are synthetic single-cell experiments wired
// to pass, error, and panic; they let these tests drive the full
// binary path — flag parsing, sweep, rendering, exit code — in
// milliseconds instead of re-running the real 20-second sweep.

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitZeroOnPass(t *testing.T) {
	code, out, _ := runCmd(t, "-selftest", "-run", "ZZSELF-pass")
	if code != 0 {
		t.Fatalf("exit=%d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "[PASS]") || !strings.Contains(out, "1 experiments run, 0 failed") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

// The regression this test pins down: an erroring cell must turn into
// a failing report AND a non-zero exit code — previously an error row
// could slip through with exit 0.
func TestExitOneOnErrorRow(t *testing.T) {
	code, out, _ := runCmd(t, "-selftest", "-run", "ZZSELF-error")
	if code != 1 {
		t.Fatalf("exit=%d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "[FAIL]") {
		t.Errorf("error report not marked FAIL:\n%s", out)
	}
	if !strings.Contains(out, "cell boom: error: wired to error") {
		t.Errorf("error row missing:\n%s", out)
	}
	if !strings.Contains(out, "sibling cell still ran") {
		t.Errorf("sibling cell suppressed by the error:\n%s", out)
	}
	if !strings.Contains(out, "1 experiments run, 1 failed") {
		t.Errorf("footer wrong:\n%s", out)
	}
}

func TestExitOneOnPanicRow(t *testing.T) {
	code, out, _ := runCmd(t, "-selftest", "-run", "ZZSELF-panic")
	if code != 1 {
		t.Fatalf("exit=%d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "wired to panic") {
		t.Errorf("panic not captured as a row:\n%s", out)
	}
	// Determinism: the captured panic must not drag a goroutine stack
	// (addresses, goroutine IDs) into the report bytes.
	if strings.Contains(out, "goroutine") || strings.Contains(out, ".go:") {
		t.Errorf("panic row leaks stack details:\n%s", out)
	}
}

func TestExitTwoOnNoMatch(t *testing.T) {
	code, _, errOut := runCmd(t, "-run", "definitely-not-an-experiment")
	if code != 2 {
		t.Fatalf("exit=%d, want 2", code)
	}
	if !strings.Contains(errOut, "no experiment matches") {
		t.Errorf("missing diagnostic: %q", errOut)
	}
}

func TestExitTwoOnBadFlag(t *testing.T) {
	code, _, _ := runCmd(t, "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit=%d, want 2", code)
	}
}

func TestListPrintsFilteredIDs(t *testing.T) {
	code, out, _ := runCmd(t, "-selftest", "-list", "-run", "ZZSELF")
	if code != 0 {
		t.Fatalf("exit=%d, want 0", code)
	}
	want := "ZZSELF-error\nZZSELF-panic\nZZSELF-pass\n"
	if out != want {
		t.Errorf("list output:\n%q\nwant:\n%q", out, want)
	}
}

// Byte-identity through the real entry point, on the fast synthetic
// subset: stdout must not depend on -parallel, including the failure
// rows of erroring and panicking cells.
func TestParallelOutputByteIdentical(t *testing.T) {
	_, seq, _ := runCmd(t, "-selftest", "-run", "ZZSELF")
	for _, workers := range []string{"2", "4", "0"} {
		_, par, _ := runCmd(t, "-selftest", "-run", "ZZSELF", "-parallel", workers)
		if par != seq {
			t.Errorf("-parallel %s diverged:\n%s\nvs sequential:\n%s", workers, par, seq)
		}
	}
}
