package main

import (
	"os"
	"path/filepath"
	"testing"

	"mpclogic/internal/rel"
)

func TestLoadPolicy(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy.txt")
	content := `# Example 4.3's policy
0 R(a,a)
0 R(b,a)
0 R(b,b)
1 R(a,a)
1 R(a,b)
1 R(b,b)
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	d := rel.NewDict()
	pol, err := loadPolicy(d, path, "c")
	if err != nil {
		t.Fatal(err)
	}
	if pol.NumNodes() != 2 {
		t.Errorf("nodes = %d", pol.NumNodes())
	}
	ab := rel.MustFact(d, "R(a,b)")
	if pol.Responsible(0, ab) || !pol.Responsible(1, ab) {
		t.Errorf("R(a,b) placement wrong")
	}
	// Universe: a, b from the file plus c from -universe.
	if got := len(pol.Universe()); got != 3 {
		t.Errorf("universe size = %d, want 3", got)
	}
}

func TestLoadPolicyErrors(t *testing.T) {
	dir := t.TempDir()
	d := rel.NewDict()
	if _, err := loadPolicy(d, filepath.Join(dir, "missing.txt"), ""); err == nil {
		t.Errorf("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.txt")
	for i, content := range []string{
		"zero R(a)",   // bad node id
		"0 R(a",       // bad fact
		"justoneword", // shape
	} {
		if err := os.WriteFile(bad, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadPolicy(d, bad, ""); err == nil {
			t.Errorf("case %d accepted: %q", i, content)
		}
	}
}
