// Command pcheck reasons statically about one-round parallel
// evaluation (Section 4 of the paper): parallel-correctness of a query
// under a finite distribution policy, parallel-correctness transfer
// between two queries, containment, and structural analysis.
//
// Usage:
//
//	pcheck -query 'H(x,z) :- R(x,y), R(y,z), R(x,x)' \
//	       -policy policy.txt                  # decide parallel-correctness
//	pcheck -query Q1 -transfer-to Q2           # decide pc-transfer
//	pcheck -query Q -structure                 # τ*, acyclicity, ...
//
// A policy file lists one assignment per line: "<node> <fact>", e.g.
//
//	0 R(a,b)
//	1 R(b,a)
//	0 S(a)
//
// The universe is the set of values mentioned in the file (plus any
// -universe a,b,c additions).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mpclogic/internal/core"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

func main() {
	querySrc := flag.String("query", "", "conjunctive query in rule syntax (required)")
	policyFile := flag.String("policy", "", "path to a finite policy file")
	transferTo := flag.String("transfer-to", "", "second query: decide pc-transfer from -query to it")
	structure := flag.Bool("structure", false, "print structural analysis (τ*, ρ*, acyclicity, ...)")
	universeArg := flag.String("universe", "", "extra comma-separated universe values")
	flag.Parse()

	if *querySrc == "" {
		fmt.Fprintln(os.Stderr, "pcheck: -query is required")
		flag.Usage()
		os.Exit(2)
	}
	a := core.NewAnalyzer()
	q, err := a.ParseQuery(*querySrc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("query: %s\n", q)

	if *structure {
		s, err := a.Structure(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("full=%v boolean=%v self-join-free=%v connected=%v acyclic=%v\n",
			s.Full, s.Boolean, s.SelfJoinFree, s.Connected, s.Acyclic)
		fmt.Printf("τ* = %.3f   ρ* = %.3f   skew-free HyperCube load = m/p^%.3f\n",
			s.Tau, s.Rho, s.LoadExponent)
	}

	if *transferTo != "" {
		q2, err := a.ParseQuery(*transferTo)
		if err != nil {
			fatal(err)
		}
		ok, why, err := a.Transfers(q, q2)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("parallel-correctness transfers: %v\n  %s\n", ok, why)
		if cont, err := a.Contained(q, q2); err == nil {
			fmt.Printf("containment Q ⊆ Q′: %v\n", cont)
		}
	}

	if *policyFile != "" {
		pol, err := loadPolicy(a.Dict, *policyFile, *universeArg)
		if err != nil {
			fatal(err)
		}
		ok, why, err := a.ParallelCorrect(q, pol, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("parallel-correct: %v\n  %s\n", ok, why)
		strong, why0, err := a.StronglyCorrect(q, pol, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("strongly saturates (PC0): %v\n  %s\n", strong, why0)
	}
}

func loadPolicy(d *rel.Dict, path, extra string) (*policy.Finite, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	type assignment struct {
		node policy.Node
		fact rel.Fact
	}
	var assigns []assignment
	maxNode := policy.Node(0)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.SplitN(text, " ", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("%s:%d: want '<node> <fact>'", path, line)
		}
		n, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad node id: %v", path, line, err)
		}
		fact, err := rel.ParseFact(d, strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		assigns = append(assigns, assignment{policy.Node(n), fact})
		if policy.Node(n) > maxNode {
			maxNode = policy.Node(n)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	universe := make(rel.ValueSet)
	for _, as := range assigns {
		universe.AddAll(as.fact.ADom())
	}
	for _, name := range strings.Split(extra, ",") {
		if name = strings.TrimSpace(name); name != "" {
			universe.Add(d.Value(name))
		}
	}
	pol := policy.NewFinite(int(maxNode)+1, universe.Sorted())
	for _, as := range assigns {
		pol.Assign(as.node, as.fact)
	}
	return pol, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pcheck: %v\n", err)
	os.Exit(1)
}
