package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// mpcrunBin is the binary under test, built once in TestMain — the
// e2e suite drives real processes, not in-process calls: the
// coordinator is one OS process and every simulated server is
// another, so the tests cover the actual fork/exec/recover machinery
// users run.
var mpcrunBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "mpcrun-e2e-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "e2e: temp dir: %v\n", err)
		os.Exit(1)
	}
	mpcrunBin = filepath.Join(dir, "mpcrun")
	if out, err := exec.Command("go", "build", "-o", mpcrunBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "e2e: building mpcrun: %v\n%s", err, out)
		os.RemoveAll(dir) // best-effort cleanup before exiting
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir) // best-effort cleanup before exiting
	os.Exit(code)
}

// runBin executes the built binary and returns stdout and stderr.
func runBin(t *testing.T, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(mpcrunBin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("mpcrun %v: %v\nstderr:\n%s", args, err, stderr.String())
	}
	return stdout.String(), stderr.String()
}

// TestE2ETransportEquivalence runs the same spec through -transport
// local (the in-process simulator) and -transport tcp (one forked
// worker process per server, fragments over loopback sockets) and
// diffs the reports verbatim: multi-round TC must be byte-identical
// across the process boundary.
func TestE2ETransportEquivalence(t *testing.T) {
	for _, p := range []int{2, 4} {
		p := p
		t.Run(fmt.Sprintf("tc/p=%d", p), func(t *testing.T) {
			t.Parallel()
			args := []string{"-program", "tc", "-p", fmt.Sprint(p), "-m", "24", "-seed", "7"}
			want, _ := runBin(t, append([]string{"-transport", "local"}, args...)...)
			got, _ := runBin(t, append([]string{"-transport", "tcp"}, args...)...)
			if got != want {
				t.Errorf("tcp report diverged from local:\n got:\n%s\nwant:\n%s", got, want)
			}
			if !strings.Contains(want, "round tc-step-1:") {
				t.Errorf("program was not multi-round:\n%s", want)
			}
		})
	}
}

// TestE2EKillRecovery is the crash test: worker 1 SIGKILLs itself
// right after writing its round-1 checkpoint, the coordinator
// respawns it, and the respawn recovers from the checkpoint by
// deterministic re-execution. The report must still be byte-identical
// to the in-process reference — a lost machine is invisible in every
// logical observable.
func TestE2EKillRecovery(t *testing.T) {
	args := []string{"-program", "tc", "-p", "4", "-m", "24", "-seed", "7"}
	want, _ := runBin(t, append([]string{"-transport", "local"}, args...)...)

	ckpt := t.TempDir()
	got, stderr := runBin(t, append([]string{
		"-transport", "tcp", "-ckpt", ckpt, "-fail-worker", "1", "-fail-round", "1",
	}, args...)...)
	if got != want {
		t.Errorf("post-recovery report diverged from local:\n got:\n%s\nwant:\n%s", got, want)
	}
	// The crash must not have been vacuous: the coordinator really
	// respawned an incarnation.
	if !strings.Contains(stderr, "recovered 1 worker incarnation") {
		t.Errorf("no recovery happened (stderr: %q)", stderr)
	}
	// Checkpoints really were written and the GC really ran: the
	// respawned worker keeps exactly the newest two rounds (resume
	// never rewinds past latest−1), so the round-1 file the failpoint
	// armed on must be gone and two later ones must remain.
	left, err := filepath.Glob(filepath.Join(ckpt, "worker-1-round-*.ckpt"))
	if err != nil || len(left) != 2 {
		t.Errorf("worker 1 retains %v (err %v), want exactly its newest two checkpoints", left, err)
	}
	if _, err := os.Stat(filepath.Join(ckpt, "worker-1-round-1.ckpt")); !os.IsNotExist(err) {
		t.Errorf("round-1 checkpoint outlived the GC (stat err: %v)", err)
	}
}
