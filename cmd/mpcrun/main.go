// Command mpcrun generates a synthetic workload, evaluates a
// conjunctive query on the simulated MPC cluster with a chosen (or
// planner-chosen) algorithm, and prints the cost profile the model
// cares about: rounds, maximum load, total communication.
//
// Usage:
//
//	mpcrun -workload triangle -m 10000 -p 64
//	mpcrun -workload join -skew 0.5 -algo grouping -p 16
//	mpcrun -workload chain -algo yannakakis -p 8
package main

import (
	"flag"
	"fmt"
	"os"

	"mpclogic/internal/core"
	"mpclogic/internal/cq"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

func main() {
	wl := flag.String("workload", "triangle", "workload: triangle | join | chain")
	m := flag.Int("m", 10000, "tuples per relation")
	p := flag.Int("p", 64, "number of servers")
	skew := flag.Float64("skew", 0, "fraction of tuples sharing one heavy join value")
	algo := flag.String("algo", "", "algorithm: hypercube | repartition | grouping | yannakakis | gym (default: planner decides)")
	oneRound := flag.Bool("one-round", true, "restrict the planner to one round")
	wcoj := flag.Bool("wcoj", false, "use the worst-case-optimal generic join as the local engine (hypercube only)")
	flag.Parse()

	d := rel.NewDict()
	var q *cq.CQ
	var inst *rel.Instance
	switch *wl {
	case "triangle":
		q = cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
		if *skew > 0 {
			inst = workload.TriangleSkewed(*m, *skew)
		} else {
			inst = workload.TriangleSkewFree(*m)
		}
	case "join":
		q = cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
		if *skew > 0 {
			inst = workload.JoinSkewed(*m, *skew)
		} else {
			inst = workload.JoinSkewFree(*m)
		}
	case "chain":
		q = cq.MustParse(d, "H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
		inst, _ = workload.AcyclicChain(3, *m, 0.3, 1)
	default:
		fmt.Fprintf(os.Stderr, "mpcrun: unknown workload %q\n", *wl)
		os.Exit(2)
	}

	var plan *core.Plan
	var err error
	if *algo != "" {
		plan = &core.Plan{Algorithm: core.Algorithm(*algo), Query: q, Servers: *p, Seed: 42, WCOJ: *wcoj}
		plan.Rationale = "algorithm forced on the command line"
	} else {
		plan, err = core.ChoosePlan(q, *p, *oneRound, *skew > 0)
		if err != nil {
			fatal(err)
		}
		plan.WCOJ = plan.WCOJ || *wcoj
	}
	fmt.Printf("workload: %s, m=%d per relation (%d facts), p=%d, skew=%.2f\n",
		*wl, *m, inst.Len(), *p, *skew)
	fmt.Printf("query:    %s\n", q)
	fmt.Printf("plan:     %s — %s\n", plan.Algorithm, plan.Rationale)
	if skewed := core.DetectSkew(inst, inst.Len() / *p); len(skewed) > 0 {
		fmt.Printf("skew:     heavy hitters detected in %d relation column(s)\n", len(skewed))
	}

	res, err := core.Execute(plan, inst)
	if err != nil {
		fatal(err)
	}
	outCount := res.Output.Filter(func(f rel.Fact) bool { return f.Rel == q.Head.Rel }).Len()
	fmt.Printf("result:   %d output facts\n", outCount)
	fmt.Printf("cost:     rounds=%d maxLoad=%d totalComm=%d\n", res.Rounds, res.MaxLoad, res.TotalComm)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mpcrun: %v\n", err)
	os.Exit(1)
}
