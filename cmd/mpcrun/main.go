// Command mpcrun generates a synthetic workload, evaluates a
// conjunctive query on the simulated MPC cluster with a chosen (or
// planner-chosen) algorithm, and prints the cost profile the model
// cares about: rounds, maximum load, total communication.
//
// Usage:
//
//	mpcrun -workload triangle -m 10000 -p 64
//	mpcrun -workload join -skew 0.5 -algo grouping -p 16
//	mpcrun -workload chain -algo yannakakis -p 8
//
// With -transport the command leaves the single-process simulator and
// executes a ProgramSpec on the distributed runtime:
//
//	mpcrun -transport local -program tc -p 4 -m 32 -seed 7
//	mpcrun -transport tcp   -program tc -p 4 -m 32 -seed 7
//
// -transport local runs the in-process reference; -transport tcp
// forks one worker process per simulated server (this same binary in
// -worker mode) exchanging fragments over loopback TCP. Both print the
// identical byte-for-byte report — that equality is the point, and the
// e2e tests diff it verbatim. Worker processes checkpoint each round
// under -ckpt, so a killed worker is respawned and recovers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"

	"mpclogic/internal/core"
	"mpclogic/internal/cq"
	"mpclogic/internal/mpcnet"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

func main() {
	wl := flag.String("workload", "triangle", "workload: triangle | join | chain (simulator mode)")
	m := flag.Int("m", 10000, "tuples per relation")
	p := flag.Int("p", 64, "number of servers")
	skew := flag.Float64("skew", 0, "fraction of tuples sharing one heavy join value")
	algo := flag.String("algo", "", "algorithm: hypercube | repartition | grouping | yannakakis | gym (default: planner decides)")
	oneRound := flag.Bool("one-round", true, "restrict the planner to one round")
	wcoj := flag.Bool("wcoj", false, "use the worst-case-optimal generic join as the local engine (hypercube only)")

	transport := flag.String("transport", "", "distributed mode: local | tcp (default: single-process simulator)")
	program := flag.String("program", "tc", "distributed program: tc | cascade | hypercube | yannakakis | gym")
	seed := flag.Uint64("seed", 7, "workload and routing seed (distributed mode)")
	ckpt := flag.String("ckpt", "", "checkpoint directory (default: a temporary directory)")
	failWorker := flag.Int("fail-worker", -1, "kill this worker once mid-program to exercise recovery (tcp mode)")
	failRound := flag.Int("fail-round", 1, "round at which -fail-worker dies")

	worker := flag.Bool("worker", false, "internal: run as a worker process")
	workerIndex := flag.Int("worker-index", -1, "internal: worker server index")
	coord := flag.String("coord", "", "internal: coordinator control address")
	spec := flag.String("spec", "", "internal: ProgramSpec as JSON")
	failpoint := flag.Int("failpoint", -1, "internal: self-kill after checkpointing this round")
	flag.Parse()

	if *worker {
		runWorker(*spec, *workerIndex, *coord, *ckpt, *failpoint)
		return
	}
	if *transport != "" {
		runDistributed(*transport, mpcnet.ProgramSpec{Program: *program, P: *p, M: *m, Seed: *seed},
			*ckpt, *failWorker, *failRound)
		return
	}
	runSimulator(*wl, *m, *p, *skew, *algo, *oneRound, *wcoj)
}

// runWorker is the -worker entry point: one server of a distributed
// run, configured entirely from the command line by the coordinator.
func runWorker(specJSON string, index int, coord, ckpt string, failpoint int) {
	var spec mpcnet.ProgramSpec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		fatal(fmt.Errorf("worker spec: %w", err))
	}
	err := mpcnet.RunWorker(mpcnet.WorkerConfig{
		Index:     index,
		Spec:      spec,
		CoordAddr: coord,
		CkptDir:   ckpt,
		FailRound: failpoint,
	})
	if err != nil {
		fatal(fmt.Errorf("worker %d: %w", index, err))
	}
}

// execSpawner relaunches this binary in -worker mode, one process per
// incarnation. Worker stderr is passed through for diagnostics;
// stdout stays clean for the coordinator's byte-compared report.
func execSpawner(bin string) mpcnet.Spawner {
	return func(cfg mpcnet.WorkerConfig) (mpcnet.Process, error) {
		specJSON, err := json.Marshal(cfg.Spec)
		if err != nil {
			return nil, err
		}
		cmd := exec.Command(bin,
			"-worker",
			"-spec", string(specJSON),
			"-worker-index", strconv.Itoa(cfg.Index),
			"-coord", cfg.CoordAddr,
			"-ckpt", cfg.CkptDir,
			"-failpoint", strconv.Itoa(cfg.FailRound),
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return &execProc{cmd: cmd}, nil
	}
}

type execProc struct{ cmd *exec.Cmd }

func (p *execProc) Wait() error { return p.cmd.Wait() }

func (p *execProc) Kill() {
	if p.cmd.Process != nil {
		// Kill errors only when the process is already gone, which is the
		// outcome Kill wants; the monitor's Wait still reaps the child.
		_ = p.cmd.Process.Kill()
	}
}

// runDistributed executes spec on the chosen transport and prints the
// canonical report. local and tcp must produce identical bytes on
// stdout; anything run-dependent (respawn counts) goes to stderr.
func runDistributed(transport string, spec mpcnet.ProgramSpec, ckpt string, failWorker, failRound int) {
	var res *mpcnet.RunResult
	var err error
	switch transport {
	case "local":
		res, err = mpcnet.RunLocal(spec)
	case "tcp":
		dir := ckpt
		if dir == "" {
			dir, err = os.MkdirTemp("", "mpcrun-ckpt-*")
			if err != nil {
				fatal(err)
			}
			// Scratch checkpoints are junk once the run ends, but a failed
			// cleanup should not pass silently — leaked directories add up
			// across CI runs. Surface it on stderr; the report already went
			// to stdout, so the byte-compared output stays clean.
			defer func() {
				if rmErr := os.RemoveAll(dir); rmErr != nil {
					fmt.Fprintf(os.Stderr, "mpcrun: leaking scratch checkpoint dir: %v\n", rmErr)
				}
			}()
		}
		bin, berr := os.Executable()
		if berr != nil {
			fatal(berr)
		}
		res, err = mpcnet.Run(mpcnet.RunConfig{
			Spec:       spec,
			CkptDir:    dir,
			FailWorker: failWorker,
			FailRound:  failRound,
			Spawn:      execSpawner(bin),
		})
	default:
		fmt.Fprintf(os.Stderr, "mpcrun: unknown transport %q (want local | tcp)\n", transport)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	printDistributed(spec, res)
	if res.Respawns > 0 {
		fmt.Fprintf(os.Stderr, "mpcrun: recovered %d worker incarnation(s)\n", res.Respawns)
	}
}

// printDistributed renders the byte-compared report: the spec line,
// the sorted output, the full logical trace, and the cost line. Every
// field is a logical observable — nothing here may depend on which
// transport moved the bytes or on how many times a worker died.
func printDistributed(spec mpcnet.ProgramSpec, res *mpcnet.RunResult) {
	fmt.Printf("program: %s p=%d m=%d seed=%d\n", spec.Program, spec.P, spec.M, spec.Seed)
	fmt.Printf("output:  %s\n", res.Output)
	fmt.Printf("trace:\n%s", res.Trace)
	fmt.Printf("cost:    rounds=%d maxLoad=%d totalComm=%d deltaComm=%d\n",
		res.Rounds, res.MaxLoad, res.TotalComm, res.DeltaComm)
}

// runSimulator is the original single-process planner path.
func runSimulator(wl string, m, p int, skew float64, algo string, oneRound, wcoj bool) {
	d := rel.NewDict()
	var q *cq.CQ
	var inst *rel.Instance
	switch wl {
	case "triangle":
		q = cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
		if skew > 0 {
			inst = workload.TriangleSkewed(m, skew)
		} else {
			inst = workload.TriangleSkewFree(m)
		}
	case "join":
		q = cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
		if skew > 0 {
			inst = workload.JoinSkewed(m, skew)
		} else {
			inst = workload.JoinSkewFree(m)
		}
	case "chain":
		q = cq.MustParse(d, "H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
		inst, _ = workload.AcyclicChain(3, m, 0.3, 1)
	default:
		fmt.Fprintf(os.Stderr, "mpcrun: unknown workload %q\n", wl)
		os.Exit(2)
	}

	var plan *core.Plan
	var err error
	if algo != "" {
		plan = &core.Plan{Algorithm: core.Algorithm(algo), Query: q, Servers: p, Seed: 42, WCOJ: wcoj}
		plan.Rationale = "algorithm forced on the command line"
	} else {
		plan, err = core.ChoosePlan(q, p, oneRound, skew > 0)
		if err != nil {
			fatal(err)
		}
		plan.WCOJ = plan.WCOJ || wcoj
	}
	fmt.Printf("workload: %s, m=%d per relation (%d facts), p=%d, skew=%.2f\n",
		wl, m, inst.Len(), p, skew)
	fmt.Printf("query:    %s\n", q)
	fmt.Printf("plan:     %s — %s\n", plan.Algorithm, plan.Rationale)
	if skewed := core.DetectSkew(inst, inst.Len()/p); len(skewed) > 0 {
		fmt.Printf("skew:     heavy hitters detected in %d relation column(s)\n", len(skewed))
	}

	res, err := core.Execute(plan, inst)
	if err != nil {
		fatal(err)
	}
	outCount := res.Output.Filter(func(f rel.Fact) bool { return f.Rel == q.Head.Rel }).Len()
	fmt.Printf("result:   %d output facts\n", outCount)
	fmt.Printf("cost:     rounds=%d maxLoad=%d totalComm=%d\n", res.Rounds, res.MaxLoad, res.TotalComm)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mpcrun: %v\n", err)
	os.Exit(1)
}
