// Command mpclint runs the repo's static-analysis suite: six
// analyzers enforcing the determinism and concurrency invariants the
// reproduced theorems depend on (see internal/lint).
//
// Usage:
//
//	mpclint [-json] [-list] [-analyzers a,b] [dir | ./...]
//
// The argument names the module to lint: a module root directory or a
// ./... pattern rooted at it (the suite always analyzes the whole
// module; per-package narrowing would let violations hide). With no
// argument the module rooted at the current directory is linted.
//
// Exit status: 0 if clean, 1 if any diagnostic fired, 2 on usage or
// load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mpclogic/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mpclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and exit")
	names := fs.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mpclint [-json] [-list] [-analyzers a,b] [dir | ./...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-22s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root := "."
	switch fs.NArg() {
	case 0:
	case 1:
		root = fs.Arg(0)
		// Accept the conventional go-tool spelling "mpclint ./...":
		// the suite is module-scoped, so the pattern reduces to its
		// root directory.
		root = strings.TrimSuffix(root, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
	default:
		fs.Usage()
		return 2
	}

	analyzers := lint.Analyzers()
	if *names != "" {
		analyzers = nil
		for _, name := range strings.Split(*names, ",") {
			name = strings.TrimSpace(name)
			a, ok := lint.AnalyzerByName(name)
			if !ok {
				fmt.Fprintf(stderr, "mpclint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "mpclint: %v\n", err)
		return 2
	}
	diags := lint.Run(mod, analyzers, lint.DefaultConfig())

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "mpclint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "mpclint: %d diagnostic(s) in %s\n", len(diags), mod.Path)
		}
		return 1
	}
	return 0
}
