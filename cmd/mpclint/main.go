// Command mpclint runs the repo's static-analysis suite: nine
// analyzers enforcing the determinism and concurrency invariants the
// reproduced theorems depend on (see internal/lint), including the
// interprocedural nondeterminism-taint analysis and the suppression
// audit.
//
// Usage:
//
//	mpclint [-json | -github] [-list] [-analyzers a,b] [dir | ./...]
//
// The argument names the module to lint: a module root directory or a
// ./... pattern rooted at it (the suite always analyzes the whole
// module; per-package narrowing would let violations hide). With no
// argument the module rooted at the current directory is linted.
//
// Output modes:
//
//	(default)  one "file:line:col: [analyzer] message" line per finding
//	-json      a JSON array of diagnostics
//	-github    GitHub Actions workflow commands (::error annotations),
//	           so findings surface inline on pull-request diffs
//
// Exit status: 0 if clean, 1 if any diagnostic fired, 2 on usage or
// load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mpclogic/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mpclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	githubOut := fs.Bool("github", false, "emit diagnostics as GitHub Actions ::error annotations")
	list := fs.Bool("list", false, "list the analyzers and exit")
	names := fs.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mpclint [-json | -github] [-list] [-analyzers a,b] [dir | ./...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *githubOut {
		fmt.Fprintf(stderr, "mpclint: -json and -github are mutually exclusive\n")
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-22s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root := "."
	switch fs.NArg() {
	case 0:
	case 1:
		root = fs.Arg(0)
		// Accept the conventional go-tool spelling "mpclint ./...":
		// the suite is module-scoped, so the pattern reduces to its
		// root directory.
		root = strings.TrimSuffix(root, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
	default:
		fs.Usage()
		return 2
	}

	analyzers := lint.Analyzers()
	if *names != "" {
		analyzers = nil
		for _, name := range strings.Split(*names, ",") {
			name = strings.TrimSpace(name)
			a, ok := lint.AnalyzerByName(name)
			if !ok {
				fmt.Fprintf(stderr, "mpclint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "mpclint: %v\n", err)
		return 2
	}
	diags := lint.Run(mod, analyzers, lint.DefaultConfig())

	switch {
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "mpclint: %v\n", err)
			return 2
		}
	case *githubOut:
		for _, d := range diags {
			fmt.Fprintln(stdout, githubAnnotation(d))
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "mpclint: %d diagnostic(s) in %s\n", len(diags), mod.Path)
		}
		return 1
	}
	return 0
}

// githubAnnotation renders one diagnostic as a GitHub Actions workflow
// command, which the Actions runner turns into an inline annotation on
// the pull-request diff. Property values are escaped per the workflow-
// command grammar (%, CR, LF always; comma and colon in properties).
func githubAnnotation(d lint.Diagnostic) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=%s::%s",
		escapeProperty(d.File), d.Line, d.Col,
		escapeProperty("mpclint "+d.Analyzer), escapeData(d.Message))
}

func escapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

func escapeProperty(s string) string {
	s = escapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}
