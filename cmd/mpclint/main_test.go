package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpclogic/internal/lint"
)

const fixtureDir = "../../internal/lint/testdata/src"

// TestFixtureText runs the driver end-to-end against the fixture
// module and asserts the exact text diagnostics, line for line, using
// the same golden file as the analyzer tests.
func TestFixtureText(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{fixtureDir}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (diagnostics expected); stderr: %s", code, stderr.String())
	}
	golden, err := os.ReadFile(filepath.Join("..", "..", "internal", "lint", "testdata", "golden", "diagnostics.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if stdout.String() != string(golden) {
		t.Errorf("diagnostics differ from golden file.\n--- got ---\n%s--- want ---\n%s", stdout.String(), golden)
	}
	if !strings.Contains(stderr.String(), "diagnostic(s)") {
		t.Errorf("stderr missing summary line: %q", stderr.String())
	}
}

// TestFixtureJSON checks the machine-readable mode round-trips.
func TestFixtureJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", fixtureDir}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("JSON mode returned no diagnostics")
	}
	seen := make(map[string]bool)
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		seen[d.Analyzer] = true
	}
	for _, a := range lint.Analyzers() {
		if !seen[a.Name] {
			t.Errorf("analyzer %s missing from JSON output", a.Name)
		}
	}
}

// TestFixtureGitHub checks the CI annotation mode: every diagnostic
// becomes one well-formed ::error workflow command.
func TestFixtureGitHub(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-github", fixtureDir}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	var jsonOut bytes.Buffer
	run([]string{"-json", fixtureDir}, &jsonOut, &stderr)
	var diags []lint.Diagnostic
	if err := json.Unmarshal(jsonOut.Bytes(), &diags); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != len(diags) {
		t.Fatalf("got %d annotation lines for %d diagnostics", len(lines), len(diags))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "::error file=") {
			t.Errorf("malformed annotation: %s", line)
		}
		if !strings.Contains(line, ",title=mpclint ") || !strings.Contains(line, "::") {
			t.Errorf("annotation missing title or message separator: %s", line)
		}
	}
	// The two-boundary taint witness must survive annotation escaping:
	// the arrow chain contains no command-breaking characters.
	if !strings.Contains(stdout.String(), "describe → label") {
		t.Error("annotations missing the interprocedural witness chain")
	}
}

// TestGitHubJSONExclusive pins the mode flags as mutually exclusive.
func TestGitHubJSONExclusive(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-github", fixtureDir}, &stdout, &stderr); code != 2 {
		t.Errorf("-json -github: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "mutually exclusive") {
		t.Errorf("missing mutual-exclusion message, got %q", stderr.String())
	}
}

// TestAnnotationEscaping covers the workflow-command escapes.
func TestAnnotationEscaping(t *testing.T) {
	d := lint.Diagnostic{
		Analyzer: "demo",
		File:     "a,b:c.go",
		Line:     3,
		Col:      7,
		Message:  "50% of\nruns differ",
	}
	got := githubAnnotation(d)
	want := "::error file=a%2Cb%3Ac.go,line=3,col=7,title=mpclint demo::50%25 of%0Aruns differ"
	if got != want {
		t.Errorf("githubAnnotation:\n got %q\nwant %q", got, want)
	}
}

// TestRepoCleanExitZero is the acceptance check: the repository itself
// lints clean, both for the bare root argument and the ./... pattern.
func TestRepoCleanExitZero(t *testing.T) {
	for _, arg := range []string{"../..", "../../..."} {
		var stdout, stderr bytes.Buffer
		code := run([]string{arg}, &stdout, &stderr)
		if code != 0 {
			t.Errorf("run(%q) = %d, want 0\nstdout:\n%s\nstderr:\n%s", arg, code, stdout.String(), stderr.String())
		}
	}
}

// TestAnalyzerFilter narrows the run to one analyzer.
func TestAnalyzerFilter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-analyzers", "lock-discipline", fixtureDir}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		if !strings.Contains(line, "[lock-discipline]") {
			t.Errorf("unexpected diagnostic in filtered run: %s", line)
		}
	}
}

// TestUsageErrors covers the 2-exit paths.
func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "no-such-analyzer", fixtureDir}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown analyzer: exit %d, want 2", code)
	}
	if code := run([]string{"a", "b"}, &stdout, &stderr); code != 2 {
		t.Errorf("extra args: exit %d, want 2", code)
	}
	if code := run([]string{t.TempDir()}, &stdout, &stderr); code != 2 {
		t.Errorf("dir without go.mod: exit %d, want 2", code)
	}
}

// TestListAnalyzers sanity-checks -list output.
func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit %d, want 0", code)
	}
	for _, a := range lint.Analyzers() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing %s", a.Name)
		}
	}
}
