package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// mpcdBin is the daemon under test, built once in TestMain: the e2e
// suite forks real processes and talks to them over loopback HTTP, so
// it covers the actual listen/serve/signal/snapshot machinery.
var mpcdBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "mpcd-e2e-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "e2e: temp dir: %v\n", err)
		os.Exit(1)
	}
	mpcdBin = filepath.Join(dir, "mpcd")
	if out, err := exec.Command("go", "build", "-o", mpcdBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "e2e: building mpcd: %v\n%s", err, out)
		os.RemoveAll(dir) // best-effort cleanup before exiting
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir) // best-effort cleanup before exiting
	os.Exit(code)
}

// daemon is one running mpcd process.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://127.0.0.1:<port>
	done chan error
}

// startDaemon forks the binary on a kernel-chosen port and waits for
// the listen line on stdout.
func startDaemon(t *testing.T, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(mpcdBin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting mpcd: %v", err)
	}
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		_ = cmd.Process.Kill() //lint:allow error-discard the process is already broken
		t.Fatalf("reading listen line: %v", err)
	}
	const prefix = "mpcd listening on "
	if !strings.HasPrefix(line, prefix) {
		_ = cmd.Process.Kill() //lint:allow error-discard the process is already broken
		t.Fatalf("unexpected first line %q", line)
	}
	d := &daemon{cmd: cmd, base: strings.TrimSpace(strings.TrimPrefix(line, prefix)), done: make(chan error, 1)}
	go func() { d.done <- cmd.Wait() }()
	t.Cleanup(func() {
		_ = cmd.Process.Kill() //lint:allow error-discard best-effort teardown for already-exited daemons
		<-d.done
	})
	return d
}

// stop SIGTERMs the daemon and waits for a clean exit.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signaling mpcd: %v", err)
	}
	if err := <-d.done; err != nil {
		t.Fatalf("mpcd exit: %v", err)
	}
	d.done <- nil // keep the cleanup's receive from blocking
}

// call posts one JSON request to the daemon.
func (d *daemon) call(t *testing.T, method, path string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, d.base+path, rd)
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, raw
}

func (d *daemon) mustCall(t *testing.T, method, path string, body any) []byte {
	t.Helper()
	status, raw := d.call(t, method, path, body)
	if status != http.StatusOK {
		t.Fatalf("%s %s: %d %s", method, path, status, raw)
	}
	return raw
}

type jmap = map[string]any

var e2eFacts = []string{"R(a, b)", "R(b, c)", "R(c, d)", "S(b, u)", "S(c, v)", "S(d, w)"}

const (
	e2eAnchor  = "A(x, z) :- R(x, y), S(y, z)"
	e2eCovered = "D(x, y) :- R(x, y)"
)

// TestE2EServeQueryDrain is the basic lifecycle: start, create, query
// all three paths, drain, observe typed rejections, clean exit.
func TestE2EServeQueryDrain(t *testing.T) {
	d := startDaemon(t)
	d.mustCall(t, "POST", "/v1/sessions", jmap{"id": "e1", "facts": e2eFacts})

	var qr struct {
		Path string `json:"path"`
		Comm int    `json:"comm"`
	}
	if err := json.Unmarshal(d.mustCall(t, "POST", "/v1/query", jmap{"session": "e1", "query": e2eAnchor}), &qr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if qr.Path != "repartitioned" {
		t.Fatalf("first query path %q", qr.Path)
	}
	if err := json.Unmarshal(d.mustCall(t, "POST", "/v1/query", jmap{"session": "e1", "query": e2eCovered}), &qr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if qr.Path != "reused" || qr.Comm != 0 {
		t.Fatalf("covered query over loopback: %+v", qr)
	}

	d.mustCall(t, "POST", "/v1/drain", nil)
	status, raw := d.call(t, "POST", "/v1/query", jmap{"session": "e1", "query": e2eAnchor})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("query after drain: %d %s", status, raw)
	}
	d.stop(t)
}

// TestE2EKillAndResume is the flagship invariant: run half a script,
// SIGTERM (drain + snapshot), restart on the snapshot, run the rest —
// and every post-restart response is byte-identical to an
// uninterrupted daemon's.
func TestE2EKillAndResume(t *testing.T) {
	setup := []jmap{
		{"id": "k1", "facts": e2eFacts, "budget": 1 << 10},
		{"id": "k2", "generator": "cycle", "n": 24},
	}
	firstHalf := []jmap{
		{"session": "k1", "query": e2eAnchor},
		{"session": "k2", "query": "L(x, z) :- E(x, y), E(y, z)"},
	}
	secondHalf := []jmap{
		{"session": "k1", "query": e2eCovered},                       // must reuse the restored distribution
		{"session": "k1", "query": "D(x, z) :- R(x, y), R(y, z)"},    // must repartition
		{"session": "k1", "query": e2eAnchor},                        // budget ledger must have survived
		{"session": "k2", "query": "T(x, y) :- E(x, y)", "lang": "datalog", "out": "T"},
	}

	// Reference: one uninterrupted daemon.
	ref := startDaemon(t)
	for _, c := range setup {
		ref.mustCall(t, "POST", "/v1/sessions", c)
	}
	for _, q := range firstHalf {
		ref.mustCall(t, "POST", "/v1/query", q)
	}
	var want [][]byte
	for _, q := range secondHalf {
		want = append(want, ref.mustCall(t, "POST", "/v1/query", q))
	}
	refStatus := ref.mustCall(t, "GET", "/v1/sessions/k1", nil)

	// Interrupted: same prefix, then SIGTERM → snapshot → restart.
	ckpt := t.TempDir()
	d1 := startDaemon(t, "-checkpoint-dir", ckpt)
	for _, c := range setup {
		d1.mustCall(t, "POST", "/v1/sessions", c)
	}
	for _, q := range firstHalf {
		d1.mustCall(t, "POST", "/v1/query", q)
	}
	d1.stop(t) // SIGTERM: drain, snapshot, exit 0

	d2 := startDaemon(t, "-checkpoint-dir", ckpt)
	for i, q := range secondHalf {
		got := d2.mustCall(t, "POST", "/v1/query", q)
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("post-restart response %d diverged:\n  want %s\n  got  %s", i, want[i], got)
		}
	}
	gotStatus := d2.mustCall(t, "GET", "/v1/sessions/k1", nil)
	if !bytes.Equal(gotStatus, refStatus) {
		t.Fatalf("session status diverged across restart:\n  want %s\n  got  %s", refStatus, gotStatus)
	}
	// The reused path must actually have fired post-restart.
	var st struct {
		Reused int `json:"reused"`
	}
	if err := json.Unmarshal(gotStatus, &st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	if st.Reused == 0 {
		t.Fatal("no reuse after restart: the snapshot did not keep the distribution warm")
	}
	d2.stop(t)
}

// TestE2ELoadHarness points the real mpcload binary at a real mpcd over
// loopback and checks the run completes with a digest.
func TestE2ELoadHarness(t *testing.T) {
	d := startDaemon(t)
	out, err := exec.Command("go", "run", "mpclogic/cmd/mpcload",
		"-addr", d.base, "-sessions", "8", "-queries", "8", "-seed", "3").CombinedOutput()
	if err != nil {
		t.Fatalf("mpcload: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("digest=")) {
		t.Fatalf("mpcload output missing digest:\n%s", out)
	}
	d.stop(t)
}
