// Command mpcd runs the query daemon: an HTTP/JSON service over the
// MPC engine with sessions, parallel-correctness distribution reuse,
// and MaxLoad admission control (see internal/mpcd).
//
// Usage:
//
//	mpcd -addr 127.0.0.1:7443
//	mpcd -addr 127.0.0.1:0 -checkpoint-dir /var/lib/mpcd
//
// The daemon prints one line to stdout before serving:
//
//	mpcd listening on http://127.0.0.1:7443
//
// which is how the e2e harness (and scripts) learn the bound address
// when -addr ends in :0.
//
// With -checkpoint-dir, a snapshot manifest already in the directory
// is restored at startup — every session warm, byte-identical resume —
// and SIGINT/SIGTERM drains the server (in-flight queries finish, new
// ones get typed 503s), writes a fresh snapshot, and exits 0. Without
// it, signals just drain and exit.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"mpclogic/internal/mpcd"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7443", "listen address (port 0 picks a free port)")
	p := flag.Int("p", 8, "default cluster width for new sessions")
	seed := flag.Uint64("seed", 1, "routing seed (a restore overrides this with the snapshot's)")
	queryBudget := flag.Int("query-budget", 1<<20, "default per-query max-load budget")
	sessionBudget := flag.Int("session-budget", 1<<24, "default per-session communication budget")
	maxConcurrent := flag.Int("max-concurrent", 16, "queries executing at once")
	maxQueued := flag.Int("max-queued", 1024, "queries waiting for a slot before typed overload rejections")
	maxSessions := flag.Int("max-sessions", 65536, "live session cap")
	ckptDir := flag.String("checkpoint-dir", "", "snapshot directory: restored at startup if it has a manifest, written on shutdown")
	noReuse := flag.Bool("no-reuse", false, "disable distribution reuse (always-repartition baseline)")
	flag.Parse()

	cfg := mpcd.Config{
		P:             *p,
		Seed:          *seed,
		QueryBudget:   *queryBudget,
		SessionBudget: *sessionBudget,
		MaxConcurrent: *maxConcurrent,
		MaxQueued:     *maxQueued,
		MaxSessions:   *maxSessions,
		DisableReuse:  *noReuse,
		SnapshotDir:   *ckptDir,
	}

	srv := mpcd.New(cfg)
	if *ckptDir != "" {
		if _, err := os.Stat(filepath.Join(*ckptDir, "manifest.json")); err == nil {
			restored, err := mpcd.LoadSnapshot(*ckptDir, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mpcd: restoring %s: %v\n", *ckptDir, err)
				os.Exit(1)
			}
			srv = restored
			fmt.Fprintf(os.Stderr, "mpcd: restored %d sessions from %s\n", srv.Sessions(), *ckptDir)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpcd: listen %s: %v\n", *addr, err)
		os.Exit(1)
	}
	fmt.Printf("mpcd listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "mpcd: %v: draining\n", s)
		srv.Drain()
		if *ckptDir != "" {
			if err := srv.SaveSnapshot(*ckptDir); err != nil {
				fmt.Fprintf(os.Stderr, "mpcd: snapshot: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "mpcd: snapshot written to %s\n", *ckptDir)
		}
		_ = httpSrv.Close() // shutting down anyway
		os.Exit(0)
	case err := <-done:
		fmt.Fprintf(os.Stderr, "mpcd: serve: %v\n", err)
		os.Exit(1)
	}
}
