// Command benchjson converts `go test -bench -benchmem` output into a
// stable JSON report. The report is the interchange format of the
// benchmark-regression harness: `make bench-json` checks one in as
// BENCH_<n>.json, and cmd/benchdiff compares two of them.
//
// Output is deterministic for a given input: benchmarks are sorted by
// name and metric keys are emitted in sorted order, so reports diff
// cleanly under version control.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fatal(fmt.Errorf("usage: benchjson [-out file] [bench-output-file]"))
	}

	report, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}

// parse extracts benchmark lines of the form
//
//	BenchmarkName/sub-8   5   229017204 ns/op   3929 maxload   ...
//
// A benchmark that appears several times (e.g. -count) keeps its
// fastest occurrence by ns/op: timing noise on shared hardware is
// strictly additive, so the minimum over repeats is the robust
// estimate of the true cost. Repeats without ns/op keep the last.
func parse(in io.Reader) (Report, error) {
	byName := map[string]Benchmark{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		b, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := byName[b.Name]; seen {
			pn, pok := prev.Metrics["ns/op"]
			n, nok := b.Metrics["ns/op"]
			if pok && nok && n >= pn {
				continue
			}
		}
		byName[b.Name] = b
	}
	if err := sc.Err(); err != nil {
		return Report{}, err
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	var r Report
	for _, name := range names {
		r.Benchmarks = append(r.Benchmarks, byName[name])
	}
	return r, nil
}

func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix so reports from machines with
	// different core counts stay comparable.
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
