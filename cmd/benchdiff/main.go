// Command benchdiff compares two benchjson reports and exits nonzero
// when any benchmark regressed. It is the gate behind
// `make verify-perf`: the old report is the checked-in baseline
// (BENCH_<n>.json), the new one is a fresh run.
//
//	benchdiff [-max-regress 1.6] [-max-alloc-regress 1.02] \
//	          [-overhead-suffix Verified -max-overhead 1.4] old.json new.json
//
// Each metric is held to the strictness it can bear: ns/op is at the
// mercy of scheduler noise, so its factor is loose; allocs/op is
// deterministic modulo map growth, so its factor is tight; and the
// domain metrics (maxload, totalcomm, and any other custom b.ReportMetric
// series) are pure functions of the input, so they must match exactly.
// Metrics whose name ends in "/sec" (e.g. the ingestion benchmarks'
// facts/sec) are throughput: they are timing-derived, so they get the
// loose ns/op factor — but in the opposite direction, failing when the
// new value drops below old/max-regress. B/op and iters are not
// compared.
//
// -overhead-suffix additionally pairs benchmarks WITHIN the new report:
// a benchmark whose top-level name ends in the suffix (sub-benchmark
// path preserved, so FooVerified/p=64 pairs with Foo/p=64) is an
// instrumented variant of its base benchmark, and its ns/op may not
// exceed the base's by more than -max-overhead. Both sides come from
// the same fresh run, so the comparison is immune to baseline drift —
// frozen baselines simply list the variants as only-in-new.
//
// Output lines are sorted by benchmark name so repeated runs over the
// same pair of reports are byte-identical.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type benchmark struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

type report struct {
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	maxRegress := flag.Float64("max-regress", 1.6,
		"fail when new ns/op exceeds old ns/op by more than this factor")
	maxAllocRegress := flag.Float64("max-alloc-regress", 1.02,
		"fail when new allocs/op exceeds old allocs/op by more than this factor")
	overheadSuffix := flag.String("overhead-suffix", "",
		"pair <base><suffix> benchmarks with <base> inside the new report and bound their ns/op ratio")
	maxOverhead := flag.Float64("max-overhead", 1.4,
		"fail when an overhead-suffix variant exceeds its base ns/op by more than this factor")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress f] old.json new.json")
		os.Exit(2)
	}
	old := load(flag.Arg(0))
	new_ := load(flag.Arg(1))

	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	compared := 0
	for _, name := range names {
		o, n := old[name], new_[name]
		if n.Name == "" {
			fmt.Printf("%-60s only in %s\n", name, flag.Arg(0))
			continue
		}
		oNS, oOK := o.Metrics["ns/op"]
		nNS, nOK := n.Metrics["ns/op"]
		if !oOK || !nOK || oNS == 0 {
			continue
		}
		compared++
		bad := ""
		ratio := nNS / oNS
		if ratio > *maxRegress {
			bad = "ns/op REGRESSION"
			regressions++
		}
		if oA, nA := o.Metrics["allocs/op"], n.Metrics["allocs/op"]; oA > 0 && nA/oA > *maxAllocRegress {
			bad += fmt.Sprintf("  allocs/op REGRESSION %.0f -> %.0f", oA, nA)
			regressions++
		}
		for _, metric := range throughputMetrics(o) {
			if oV, nV := o.Metrics[metric], n.Metrics[metric]; oV > 0 && nV < oV / *maxRegress {
				bad += fmt.Sprintf("  %s REGRESSION %.0f -> %.0f", metric, oV, nV)
				regressions++
			}
		}
		for _, metric := range domainMetrics(o) {
			if o.Metrics[metric] != n.Metrics[metric] {
				bad += fmt.Sprintf("  %s DRIFT %g -> %g", metric, o.Metrics[metric], n.Metrics[metric])
				regressions++
			}
		}
		status := "ok"
		if bad != "" {
			status = bad
		}
		fmt.Printf("%-60s %14.0f -> %14.0f ns/op  (x%.3f)  %s\n", name, oNS, nNS, ratio, status)
	}
	newNames := make([]string, 0, len(new_))
	for name := range new_ {
		if _, ok := old[name]; !ok {
			newNames = append(newNames, name)
		}
	}
	sort.Strings(newNames)
	for _, name := range newNames {
		fmt.Printf("%-60s only in %s\n", name, flag.Arg(1))
	}

	if *overheadSuffix != "" {
		regressions += diffOverhead(new_, *overheadSuffix, *maxOverhead)
	}

	fmt.Printf("benchdiff: %d compared, %d regressed (max allowed x%.2f)\n",
		compared, regressions, *maxRegress)
	if regressions > 0 {
		os.Exit(1)
	}
}

// diffOverhead compares instrumented benchmark variants against their
// base benchmarks inside one report: for every benchmark whose
// top-level segment ends in suffix and whose base twin exists, the
// variant's ns/op may exceed the base's by at most maxOverhead. A
// variant without a base twin is reported but not failed — it prices
// nothing. Returns the number of violations.
func diffOverhead(benches map[string]benchmark, suffix string, maxOverhead float64) int {
	names := make([]string, 0, len(benches))
	for name := range benches {
		names = append(names, name)
	}
	sort.Strings(names)

	violations := 0
	for _, name := range names {
		top, rest, _ := strings.Cut(name, "/")
		if !strings.HasSuffix(top, suffix) || top == suffix {
			continue
		}
		base := strings.TrimSuffix(top, suffix)
		if rest != "" {
			base += "/" + rest
		}
		o, ok := benches[base]
		v := benches[name]
		oNS, vNS := o.Metrics["ns/op"], v.Metrics["ns/op"]
		if !ok || oNS == 0 || vNS == 0 {
			fmt.Printf("%-60s no base benchmark %s to price against\n", name, base)
			continue
		}
		ratio := vNS / oNS
		status := "ok"
		if ratio > maxOverhead {
			status = "OVERHEAD REGRESSION"
			violations++
		}
		fmt.Printf("%-60s %14.0f vs %14.0f ns/op  (x%.3f overhead, max x%.2f)  %s\n",
			name, vNS, oNS, ratio, maxOverhead, status)
	}
	return violations
}

// domainMetrics returns b's metric names that are pure functions of the
// benchmark input — everything except the timing and allocation series
// the Go test runner emits and the throughput series — sorted for
// stable output.
func domainMetrics(b benchmark) []string {
	out := make([]string, 0, len(b.Metrics))
	for name := range b.Metrics {
		switch name {
		case "ns/op", "B/op", "allocs/op", "MB/s":
			continue
		}
		if strings.HasSuffix(name, "/sec") {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// throughputMetrics returns b's higher-is-better metric names: custom
// series ending in "/sec", reported by the sustained-update ingestion
// benchmarks. They are timing-derived, so they share ns/op's loose
// regression factor rather than the domain metrics' exact equality.
func throughputMetrics(b benchmark) []string {
	out := make([]string, 0, 1)
	for name := range b.Metrics {
		if strings.HasSuffix(name, "/sec") && name != "MB/s" {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func load(path string) map[string]benchmark {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	out := make(map[string]benchmark, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		out[b.Name] = b
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
