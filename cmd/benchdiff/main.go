// Command benchdiff compares two benchjson reports and exits nonzero
// when any benchmark regressed. It is the gate behind
// `make verify-perf`: the old report is the checked-in baseline
// (BENCH_<n>.json), the new one is a fresh run.
//
//	benchdiff [-max-regress 1.6] [-max-alloc-regress 1.02] old.json new.json
//
// Each metric is held to the strictness it can bear: ns/op is at the
// mercy of scheduler noise, so its factor is loose; allocs/op is
// deterministic modulo map growth, so its factor is tight; and the
// domain metrics (maxload, totalcomm, and any other custom b.ReportMetric
// series) are pure functions of the input, so they must match exactly.
// Metrics whose name ends in "/sec" (e.g. the ingestion benchmarks'
// facts/sec) are throughput: they are timing-derived, so they get the
// loose ns/op factor — but in the opposite direction, failing when the
// new value drops below old/max-regress. B/op and iters are not
// compared.
//
// Output lines are sorted by benchmark name so repeated runs over the
// same pair of reports are byte-identical.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type benchmark struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

type report struct {
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	maxRegress := flag.Float64("max-regress", 1.6,
		"fail when new ns/op exceeds old ns/op by more than this factor")
	maxAllocRegress := flag.Float64("max-alloc-regress", 1.02,
		"fail when new allocs/op exceeds old allocs/op by more than this factor")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress f] old.json new.json")
		os.Exit(2)
	}
	old := load(flag.Arg(0))
	new_ := load(flag.Arg(1))

	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	compared := 0
	for _, name := range names {
		o, n := old[name], new_[name]
		if n.Name == "" {
			fmt.Printf("%-60s only in %s\n", name, flag.Arg(0))
			continue
		}
		oNS, oOK := o.Metrics["ns/op"]
		nNS, nOK := n.Metrics["ns/op"]
		if !oOK || !nOK || oNS == 0 {
			continue
		}
		compared++
		bad := ""
		ratio := nNS / oNS
		if ratio > *maxRegress {
			bad = "ns/op REGRESSION"
			regressions++
		}
		if oA, nA := o.Metrics["allocs/op"], n.Metrics["allocs/op"]; oA > 0 && nA/oA > *maxAllocRegress {
			bad += fmt.Sprintf("  allocs/op REGRESSION %.0f -> %.0f", oA, nA)
			regressions++
		}
		for _, metric := range throughputMetrics(o) {
			if oV, nV := o.Metrics[metric], n.Metrics[metric]; oV > 0 && nV < oV / *maxRegress {
				bad += fmt.Sprintf("  %s REGRESSION %.0f -> %.0f", metric, oV, nV)
				regressions++
			}
		}
		for _, metric := range domainMetrics(o) {
			if o.Metrics[metric] != n.Metrics[metric] {
				bad += fmt.Sprintf("  %s DRIFT %g -> %g", metric, o.Metrics[metric], n.Metrics[metric])
				regressions++
			}
		}
		status := "ok"
		if bad != "" {
			status = bad
		}
		fmt.Printf("%-60s %14.0f -> %14.0f ns/op  (x%.3f)  %s\n", name, oNS, nNS, ratio, status)
	}
	newNames := make([]string, 0, len(new_))
	for name := range new_ {
		if _, ok := old[name]; !ok {
			newNames = append(newNames, name)
		}
	}
	sort.Strings(newNames)
	for _, name := range newNames {
		fmt.Printf("%-60s only in %s\n", name, flag.Arg(1))
	}

	fmt.Printf("benchdiff: %d compared, %d regressed (max allowed x%.2f)\n",
		compared, regressions, *maxRegress)
	if regressions > 0 {
		os.Exit(1)
	}
}

// domainMetrics returns b's metric names that are pure functions of the
// benchmark input — everything except the timing and allocation series
// the Go test runner emits and the throughput series — sorted for
// stable output.
func domainMetrics(b benchmark) []string {
	out := make([]string, 0, len(b.Metrics))
	for name := range b.Metrics {
		switch name {
		case "ns/op", "B/op", "allocs/op", "MB/s":
			continue
		}
		if strings.HasSuffix(name, "/sec") {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// throughputMetrics returns b's higher-is-better metric names: custom
// series ending in "/sec", reported by the sustained-update ingestion
// benchmarks. They are timing-derived, so they share ns/op's loose
// regression factor rather than the domain metrics' exact equality.
func throughputMetrics(b benchmark) []string {
	out := make([]string, 0, 1)
	for name := range b.Metrics {
		if strings.HasSuffix(name, "/sec") && name != "MB/s" {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func load(path string) map[string]benchmark {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	out := make(map[string]benchmark, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		out[b.Name] = b
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
