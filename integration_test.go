package mpclogic

// Cross-module integration tests: every execution path — centralized
// CQ evaluation, all MPC algorithms, MapReduce, Datalog, and the
// asynchronous transducer strategies — must agree on the same answers,
// and the static parallel-correctness analysis must predict the
// dynamic behaviour of the distributions the other modules build.

import (
	"fmt"
	"math/rand"
	"testing"

	"mpclogic/internal/core"
	"mpclogic/internal/cq"
	"mpclogic/internal/datalog"
	"mpclogic/internal/gym"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/mapreduce"
	"mpclogic/internal/pc"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
	"mpclogic/internal/transducer"
	"mpclogic/internal/workload"
)

// randomInstance draws a small instance over binary relations R, S, T.
func randomInstance(r *rand.Rand, vals, facts int) *rel.Instance {
	i := rel.NewInstance()
	names := []string{"R", "S", "T"}
	for k := 0; k < facts; k++ {
		i.Add(rel.NewFact(names[r.Intn(3)], rel.Value(r.Intn(vals)), rel.Value(r.Intn(vals))))
	}
	return i
}

// Every MPC algorithm agrees with centralized evaluation on a zoo of
// queries and random instances.
func TestIntegrationMPCAlgorithmsAgree(t *testing.T) {
	d := rel.NewDict()
	tri := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	path := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		inst := randomInstance(r, 6, 5+r.Intn(30))
		for _, tc := range []struct {
			q    *cq.CQ
			algo core.Algorithm
		}{
			{tri, core.AlgoHyperCube},
			{tri, core.AlgoGYM},
			{path, core.AlgoHyperCube},
			{path, core.AlgoRepartition},
			{path, core.AlgoGrouping},
			{path, core.AlgoYannakakis},
		} {
			plan := &core.Plan{Algorithm: tc.algo, Query: tc.q, Servers: 4 + r.Intn(12), Seed: uint64(trial)}
			res, err := core.Execute(plan, inst)
			if err != nil {
				t.Fatalf("%s: %v", tc.algo, err)
			}
			want := cq.Output(tc.q, inst)
			got := res.Output.Filter(func(f rel.Fact) bool { return f.Rel == tc.q.Head.Rel })
			if !got.Equal(want) {
				t.Fatalf("trial %d %s on %v: got %d facts, want %d",
					trial, tc.algo, tc.q, got.Len(), want.Len())
			}
		}
	}
}

// Proposition 4.6 across modules: the HyperCube grid built by the
// hypercube package, viewed as a distribution policy, is judged
// parallel-correct by the pc package, and the dynamic one-round
// evaluation confirms it on random instances.
func TestIntegrationGridSaturationPredictsExecution(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	universe := []rel.Value{0, 1, 2}
	g, err := hypercube.NewGrid(q, map[string]int{"x": 2, "y": 2, "z": 2}, 13)
	if err != nil {
		t.Fatal(err)
	}
	ok, w, err := pc.ParallelCorrect(q, g, universe)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("grid not parallel-correct: %v", w)
	}
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		inst := randomInstance(r, 3, r.Intn(20))
		if !pc.ParallelCorrectOn(q, g, inst) {
			t.Fatalf("static analysis said correct, instance %v disagrees", inst)
		}
	}
}

// Transitive closure three ways: Datalog semi-naive, MapReduce
// (linear and doubling), and the semi-naive reference.
func TestIntegrationTransitiveClosureAgree(t *testing.T) {
	d := rel.NewDict()
	prog := datalog.MustParse(d, "TC(x, y) :- E(x, y)\nTC(x, y) :- TC(x, z), E(z, y)")
	for seed := int64(0); seed < 4; seed++ {
		g := workload.RandomGraph(14, 24, seed)
		fromDatalog, err := datalog.EvalQuery(prog, g, "TC")
		if err != nil {
			t.Fatal(err)
		}
		fromMR, err := mapreduce.TransitiveClosure(4, g, "E", true)
		if err != nil {
			t.Fatal(err)
		}
		ref := mapreduce.SemiNaiveClosure(g, "E")
		if !fromDatalog.Equal(ref) || !fromMR.Closure.Equal(ref) {
			t.Fatalf("seed %d: closure mismatch (datalog %d, MR %d, ref %d)",
				seed, fromDatalog.Len(), fromMR.Closure.Len(), ref.Len())
		}
	}
}

// The CALM pipeline end to end: classify a Datalog program, run the
// prescribed strategy on a transducer network, compare against the
// centralized Datalog engine.
func TestIntegrationCALMPipeline(t *testing.T) {
	d := rel.NewDict()
	prog := datalog.MustParse(d, "TC(x, y) :- E(x, y)\nTC(x, y) :- TC(x, z), E(z, y)")
	if core.ClassifyProgram(prog) != core.ClassM {
		t.Fatalf("TC program not in M")
	}
	q := func(i *rel.Instance) *rel.Instance {
		out, err := datalog.EvalQuery(prog, i, "TC")
		if err != nil {
			return rel.NewInstance()
		}
		return out
	}
	g := workload.RandomGraph(10, 18, 2)
	want := q(g)
	for seed := int64(0); seed < 4; seed++ {
		n := transducer.New(3, func() transducer.Program { return &transducer.MonotoneBroadcast{Q: q} },
			transducer.WithSeed(seed))
		if err := n.LoadParts(policy.Distribute(&policy.Hash{Nodes: 3}, g)); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Run(); err != nil {
			t.Fatal(err)
		}
		if !n.Output().Equal(want) {
			t.Fatalf("seed %d: distributed TC differs from centralized", seed)
		}
	}
}

// The semi-connected ¬TC program of Example 5.13 end to end: classify
// → Mdisjoint → run disjoint-complete strategy on a domain-guided
// network → compare against the stratified Datalog engine.
func TestIntegrationSemiConnectedPipeline(t *testing.T) {
	d := rel.NewDict()
	prog := datalog.MustParse(d, `
TC(x, y) :- E(x, y)
TC(x, y) :- TC(x, z), TC(z, y)
OUT(x, y) :- ADom(x), ADom(y), not TC(x, y)`)
	if core.ClassifyProgram(prog) != core.ClassMdisjoint {
		t.Fatalf("¬TC program not classified Mdisjoint")
	}
	q := func(i *rel.Instance) *rel.Instance {
		out, err := datalog.EvalQuery(prog, i, "OUT")
		if err != nil {
			return rel.NewInstance()
		}
		return out
	}
	g := workload.ComponentsGraph(2, 3)
	want := q(g)
	pol := &policy.DomainGuided{Nodes: 3, DefaultWidth: 1}
	for seed := int64(0); seed < 4; seed++ {
		n := transducer.New(3, func() transducer.Program { return &transducer.DisjointComplete{Q: q} },
			transducer.WithSeed(seed), transducer.WithPolicy(pol))
		if err := n.LoadPolicy(g, pol); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Run(); err != nil {
			t.Fatal(err)
		}
		if !n.Output().Equal(want) {
			t.Fatalf("seed %d: distributed ¬TC (%d) differs from centralized (%d)",
				seed, n.Output().Len(), want.Len())
		}
	}
}

// Property: for random finite policies, the pc package's static
// verdict matches dynamic one-round evaluation on every instance over
// the universe — Proposition 4.6 as an executable contract between
// modules.
func TestIntegrationStaticDynamicContract(t *testing.T) {
	d := rel.NewDict()
	queries := []*cq.CQ{
		cq.MustParse(d, "H(x, z) :- R(x, y), S(y, z)"),
		cq.MustParse(d, "H(x) :- R(x, y), S(y, x)"),
		cq.MustParse(d, "H(x, z) :- R(x, y), R(y, z), R(x, x)"),
	}
	universe := []rel.Value{0, 1}
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		q := queries[trial%len(queries)]
		schema, err := q.Schema()
		if err != nil {
			t.Fatal(err)
		}
		pol := policy.NewFinite(2, universe)
		for _, f := range schema.AllFacts(universe) {
			for κ := 0; κ < 2; κ++ {
				if r.Intn(3) > 0 {
					pol.Assign(policy.Node(κ), f)
				}
			}
		}
		static, _, err := pc.ParallelCorrect(q, pol, universe)
		if err != nil {
			t.Fatal(err)
		}
		dynamic := true
		if err := cq.EachInstance(schema, universe, func(i *rel.Instance) bool {
			if !pc.ParallelCorrectOn(q, pol, i) {
				dynamic = false
				return false
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if static != dynamic {
			t.Fatalf("trial %d: static=%v dynamic=%v for %v", trial, static, dynamic, q)
		}
	}
}

// The planner's choices are all executable and correct end to end.
func TestIntegrationPlannerEndToEnd(t *testing.T) {
	d := rel.NewDict()
	cases := []struct {
		src              string
		inst             *rel.Instance
		oneRound, skewed bool
	}{
		{"H(x, y, z) :- R(x, y), S(y, z), T(z, x)", workload.TriangleSkewFree(60), true, false},
		{"H(x, y, z) :- R(x, y), S(y, z), T(z, x)", workload.TriangleSkewFree(60), false, false},
		{"H(x, y, z) :- R(x, y), S(y, z)", workload.JoinSkewed(80, 0.4), true, true},
		{"H(a, c) :- R0(a, b), R1(b, c)", firstOf(workload.AcyclicChain(2, 50, 0.2, 3)), false, false},
	}
	for k, c := range cases {
		q := cq.MustParse(d, c.src)
		plan, err := core.ChoosePlan(q, 9, c.oneRound, c.skewed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Execute(plan, c.inst)
		if err != nil {
			t.Fatalf("case %d (%s): %v", k, plan.Algorithm, err)
		}
		want := cq.Output(q, c.inst)
		got := res.Output.Filter(func(f rel.Fact) bool { return f.Rel == q.Head.Rel })
		if !got.Equal(want) {
			t.Fatalf("case %d (%s): wrong result", k, plan.Algorithm)
		}
	}
}

func firstOf(i *rel.Instance, _ []string) *rel.Instance { return i }

// GYM decompositions evaluate correctly for a family of cyclic
// queries of growing cycle length.
func TestIntegrationGYMCycles(t *testing.T) {
	d := rel.NewDict()
	for _, k := range []int{3, 4, 5} {
		// Cycle query over relations E0…E(k−1): Ei(x_i, x_{i+1 mod k}).
		var src string
		src = "H("
		for i := 0; i < k; i++ {
			if i > 0 {
				src += ", "
			}
			src += fmt.Sprintf("v%d", i)
		}
		src += ") :- "
		for i := 0; i < k; i++ {
			if i > 0 {
				src += ", "
			}
			src += fmt.Sprintf("E%d(v%d, v%d)", i, i, (i+1)%k)
		}
		q := cq.MustParse(d, src)
		// Matching data with m cycles plus noise.
		inst := rel.NewInstance()
		m := 30
		for t := 0; t < m; t++ {
			for i := 0; i < k; i++ {
				inst.Add(rel.NewFact(fmt.Sprintf("E%d", i),
					rel.Value(1000*(i+1)+t), rel.Value(1000*((i+1)%k+1)+t)))
			}
		}
		inst.Add(rel.NewFact("E0", 1, 2))
		want := cq.Output(q, inst)
		_, got, dec, err := gym.GYM(q, 8, inst, uint64(k))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !got.Equal(want) {
			t.Fatalf("k=%d: GYM wrong (%d vs %d facts, %d bags)", k, got.Len(), want.Len(), len(dec.Bags))
		}
	}
}

// Randomized cross-check: distributed Yannakakis and GYM agree with
// centralized evaluation on random acyclic and cyclic query/instance
// pairs.
func TestIntegrationGYMRandomized(t *testing.T) {
	d := rel.NewDict()
	acyclic := []*cq.CQ{
		cq.MustParse(d, "H(a, c) :- R(a, b), S(b, c)"),
		cq.MustParse(d, "H(a) :- R(a, b), S(b, c), T(c, a2)"),
		cq.MustParse(d, "H(b) :- R(a, b), S(b, c), T(b, x)"),
	}
	cyclic := []*cq.CQ{
		cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)"),
		cq.MustParse(d, "H(x, y) :- R(x, y), S(y, x)"),
	}
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		inst := randomInstance(r, 5, 5+r.Intn(25))
		p := 2 + r.Intn(8)
		for _, q := range acyclic {
			_, got, err := gym.DistributedYannakakis(q, p, inst, uint64(trial))
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(cq.Output(q, inst)) {
				t.Fatalf("trial %d: distributed yannakakis wrong for %v on %v", trial, q, inst)
			}
		}
		for _, q := range cyclic {
			_, got, _, err := gym.GYM(q, p, inst, uint64(trial))
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(cq.Output(q, inst)) {
				t.Fatalf("trial %d: GYM wrong for %v on %v", trial, q, inst)
			}
		}
	}
}

// Randomized cross-check: the worst-case-optimal local engine and the
// binary-plan engine agree under the HyperCube shuffle.
func TestIntegrationWCOJUnderHyperCube(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 10; trial++ {
		inst := randomInstance(r, 6, 10+r.Intn(30))
		for _, wcoj := range []bool{false, true} {
			plan := &core.Plan{Algorithm: core.AlgoHyperCube, Query: q, Servers: 8, Seed: uint64(trial), WCOJ: wcoj}
			res, err := core.Execute(plan, inst)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Output.Filter(func(f rel.Fact) bool { return f.Rel == "H" })
			if !got.Equal(cq.Output(q, inst)) {
				t.Fatalf("trial %d wcoj=%v: wrong output", trial, wcoj)
			}
		}
	}
}
