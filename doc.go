// Package mpclogic is a from-scratch Go reproduction of the systems
// surveyed in "Logical Aspects of Massively Parallel and Distributed
// Systems" (Frank Neven, PODS 2016): the MPC model with the
// Shares/HyperCube, grouping, and GYM/Yannakakis algorithms, the
// parallel-correctness and transfer framework, a Datalog engine with
// stratified and well-founded semantics, the monotonicity hierarchy
// M ⊊ Mdistinct ⊊ Mdisjoint, and relational transducer networks with
// the coordination-free strategies of the CALM theorem and its
// refinements.
//
// The implementation lives under internal/; see README.md for the
// package map, DESIGN.md for the system inventory, and EXPERIMENTS.md
// for the paper-vs-measured record. The root package holds only the
// cross-cutting benchmark suite (bench_test.go), one benchmark per
// reproduced figure or quantitative claim.
package mpclogic
