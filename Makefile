# mpclogic build / verification entry points. `make verify` is the
# gate every change must pass: it compiles the module, runs go vet,
# the full test suite (including the determinism regression tests),
# the race detector, and the repo-specific mpclint analyzers.

GO ?= go

.PHONY: all build vet test race lint verify fmt

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/mpclint ./...

fmt:
	gofmt -l -w .

verify: build vet test race lint
	@echo "verify: OK"
