# mpclogic build / verification entry points. `make verify` is the
# gate every change must pass: it compiles the module, runs go vet,
# the full test suite (including the determinism regression tests),
# the race detector, and the repo-specific mpclint analyzers.
# `make verify-perf` additionally guards against benchmark regressions
# relative to the checked-in baseline report.

GO ?= go

# Benchmark harness knobs: BENCHTIME trades precision for wall time,
# BENCH_BASELINE names the checked-in report that verify-perf compares
# against, MAX_REGRESS is the allowed ns/op slowdown factor. The ns/op
# factor is loose because shared CI hardware shows >1.4x run-to-run
# scheduler noise at this BENCHTIME; benchdiff separately holds
# allocs/op to a tight factor and domain metrics (maxload, totalcomm)
# to exact equality, which noise cannot excuse.
BENCHTIME ?= 0.5s
BENCHCOUNT ?= 3
BENCH_BASELINE ?= BENCH_2.json
# The incremental-maintenance benchmarks (Bench*Maintain) landed after
# BENCH_2 froze, so they diff against their own baseline. Their
# facts/sec series is higher-is-better: benchdiff fails when throughput
# drops below baseline/MAX_REGRESS.
BENCH_INCR_BASELINE ?= BENCH_7.json
MAX_REGRESS ?= 1.6
# Receiver-side routing verification is sampled (stride 16 in the
# *Verified benchmarks), so its true cost is a few percent (measured
# x0.99-1.20 on a quiet host). The bound is a ratio of two noisy
# measurements, so it needs roughly double MAX_REGRESS's headroom;
# the regressions it exists to catch — verification accidentally going
# per-fact, or sorting every outbox to enumerate it — measure x1.65+.
MAX_OVERHEAD ?= 1.4

# Per-target budget for the coverage-guided fuzzing pass in `make
# verify`. The checked-in corpora under */testdata/fuzz always replay
# as plain unit tests regardless of this knob; the budget only bounds
# how long each fuzzer searches for NEW inputs.
FUZZTIME ?= 5s

# Wall-clock budget for the sustained-update soak (`make soak`). The
# soak test runs under `make test` too, at a tiny built-in budget.
SOAKTIME ?= 60s

# Worker count for the experiment sweep (cmd/experiments -parallel).
# 0 means GOMAXPROCS. The sweep's stdout is byte-identical for every
# value — a tier-1 test asserts it — so this knob only trades wall
# time.
SWEEPPROCS ?= 0

# Coverage gate: the guarded packages and the checked-in floor file.
# `make cover` fails when a guarded package drops more than the slack
# below its recorded floor; `make cover-baseline` locks in the current
# measurement.
COVER_PKGS ?= ./internal/mpc ./internal/transducer ./internal/mpcd ./internal/mpcd/loadgen
COVER_BASELINE ?= COVERAGE.json

.PHONY: all build vet test race lint faultmatrix byzantine transport netsweep verify fmt fuzz serve serve-soak bench bench-json bench-json-incr verify-perf nightly soak experiments cover cover-baseline

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race pass runs -short: the seeded fault matrix, schedule sweeps,
# and exhaustive exploration trim themselves under -short, and all run
# at full size (race-free but exhaustively) in the plain `test` pass
# above. The nightly job repeats race at full size.
race:
	$(GO) test -race -short ./...

# faultmatrix pins the PR-4 fault-transparency gate by name: every plan
# in the seeded matrix must leave outputs and logical load metrics
# byte-identical to the fault-free run, across the multi-round
# algorithms and the FAULTMPC experiment's checkpoint-resume row.
faultmatrix:
	$(GO) test -run 'TestFaultTransparency|TestCheckpoint|TestRunYannakakisRoundsResumesAfterFailure|TestGYMRestoreFromCheckpoint' ./internal/mpc ./internal/gym
	$(GO) run ./cmd/experiments -parallel $(SWEEPPROCS) -run FAULTMPC-matrix

# byzantine pins the PR-9 routing-integrity gate by name: the engine's
# Byzantine detection tests (quarantine, typed escalation, minimal
# witness), the correlated-failure plans, the frame-checksum codec, the
# Byzantine matrix invariant across the program suite, and the BYZ
# experiment sweep.
byzantine:
	$(GO) test -run 'TestByzantine|TestRoutingVerification|TestFrame|TestTCPExchangeAbsorbsCorruptFrames|TestGroupCrash|TestGroupPartition|TestCorrelated|TestCorrupt|TestStandardFaultMatrixIncludesCorrelatedPlans' ./internal/mpc
	$(GO) test -run 'TestByzantineMatrixAcrossPrograms|TestChaosOverTCP' ./internal/gym
	$(GO) run ./cmd/experiments -parallel $(SWEEPPROCS) -run BYZ-matrix

# transport pins the PR-8 transport-equivalence gate by name: the
# conformance suite on both the Local and TCP transports, the program
# matrix over real sockets (byte-identical output, state, and logical
# trace), the chaos-over-TCP fault matrix, the multi-process runtime
# against the simulator, and the kill-recovery e2e on the real binary.
transport:
	$(GO) test -run 'TestLocalConformance|TestTCPConformance' ./internal/mpc/transportconf
	$(GO) test -run 'TestTransportEquivalence|TestChaosOverTCP' ./internal/gym
	$(GO) test -run 'TestDistributedMatchesLocal' ./internal/mpcnet
	$(GO) test -run 'TestE2E' ./cmd/mpcrun

# netsweep drives the installed binary end to end, wider than the push
# gate: every distributed program at p ∈ {2,4,8} must print the same
# report bytes over local and tcp, and a SIGKILL-recovery run must be
# indistinguishable from the undisturbed reference.
netsweep:
	$(GO) build -o .mpcrun_sweep ./cmd/mpcrun
	set -e; for prog in tc cascade hypercube yannakakis gym; do \
	  for p in 2 4 8; do \
	    ./.mpcrun_sweep -transport local -program $$prog -p $$p -m 24 -seed 7 > .net_local.txt; \
	    ./.mpcrun_sweep -transport tcp   -program $$prog -p $$p -m 24 -seed 7 > .net_tcp.txt; \
	    diff .net_local.txt .net_tcp.txt || { echo "netsweep: $$prog p=$$p diverged"; exit 1; }; \
	  done; \
	done
	./.mpcrun_sweep -transport local -program tc -p 4 -m 24 -seed 7 > .net_local.txt
	./.mpcrun_sweep -transport tcp -program tc -p 4 -m 24 -seed 7 -fail-worker 1 -fail-round 1 > .net_kill.txt
	diff .net_local.txt .net_kill.txt || { echo "netsweep: kill-recovery run diverged"; exit 1; }
	@rm -f .mpcrun_sweep .net_local.txt .net_tcp.txt .net_kill.txt
	@echo "netsweep: OK"

lint:
	$(GO) run ./cmd/mpclint ./...

fmt:
	gofmt -l -w .

# Each go fuzz engine invocation takes exactly one -fuzz target.
fuzz:
	$(GO) test ./internal/cq -run='^$$' -fuzz='^FuzzParseCQ$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/rel -run='^$$' -fuzz='^FuzzRelation$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/rel -run='^$$' -fuzz='^FuzzFragmentWire$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/policy -run='^$$' -fuzz='^FuzzStoreImage$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/sweep -run='^$$' -fuzz='^FuzzSweepMerge$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/mpcd -run='^$$' -fuzz='^FuzzQueryRequest$$' -fuzztime=$(FUZZTIME)

# serve is the query-daemon gate: the serving-layer unit/property
# suites plus the e2e suite that forks the real mpcd binary (start,
# query, kill-and-resume byte-identity, drain).
serve:
	$(GO) test -count=1 ./internal/mpcd/... ./cmd/mpcd

verify: build vet test race faultmatrix byzantine transport lint serve fuzz
	@echo "verify: OK"

# experiments regenerates every report on the sweep scheduler.
# Redirect stdout to refresh EXPERIMENTS.md's transcript; stderr
# carries the timing line so the transcript stays worker-count
# independent.
experiments:
	$(GO) run ./cmd/experiments -parallel $(SWEEPPROCS)

# cover runs the coverage gate: statement coverage of the recovery
# stack's packages must stay within slack of the checked-in floors.
cover:
	$(GO) test -cover $(COVER_PKGS) > .cover_raw.txt || (cat .cover_raw.txt; rm -f .cover_raw.txt; exit 1)
	$(GO) run ./cmd/coverfloor -baseline $(COVER_BASELINE) .cover_raw.txt
	@rm -f .cover_raw.txt

cover-baseline:
	$(GO) test -cover $(COVER_PKGS) > .cover_raw.txt || (cat .cover_raw.txt; rm -f .cover_raw.txt; exit 1)
	$(GO) run ./cmd/coverfloor -baseline $(COVER_BASELINE) -write .cover_raw.txt
	@rm -f .cover_raw.txt

# nightly is the scheduled deep pass (.github/workflows/nightly.yml):
# full-size race run, longer fuzzing, the benchmark-regression gate,
# and the complete SCHED / CHAOS / FAULTMPC experiment sweeps on the
# parallel scheduler.
nightly: verify
	$(GO) test -race ./...
	$(MAKE) netsweep
	$(MAKE) verify-perf
	$(MAKE) soak
	$(GO) run ./cmd/experiments -parallel $(SWEEPPROCS) -run SCHED-exhaustive
	$(GO) run ./cmd/experiments -parallel $(SWEEPPROCS) -run CHAOS-matrix
	$(GO) run ./cmd/experiments -parallel $(SWEEPPROCS) -run FAULTMPC-matrix
	$(GO) run ./cmd/experiments -parallel $(SWEEPPROCS) -run BYZ-matrix
	$(GO) run ./cmd/experiments -parallel $(SWEEPPROCS) -run INCR-maintenance
	$(MAKE) serve-soak
	@echo "nightly: OK"

# soak streams mixed-size update batches at a maintained view for
# SOAKTIME, re-verifying byte-identity against from-scratch evaluation
# after every epoch.
soak:
	MPC_SOAK=$(SOAKTIME) $(GO) test -run 'TestSustainedUpdateSoak' -v .

# serve-soak drives thousands of seeded sessions at an in-process
# daemon across multiple epochs: mpcload exits nonzero if any epoch's
# digest diverges (nondeterminism) or reuse stops beating the
# always-repartition baseline on total communication.
SERVE_SOAK_SESSIONS ?= 2000
serve-soak:
	$(GO) run ./cmd/mpcload -sessions $(SERVE_SOAK_SESSIONS) -queries 24 -workers 16 -seed 7 -epochs 3

bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) .

# bench-json regenerates the checked-in baseline report. The raw
# benchmark output goes through an intermediate file so a failing
# benchmark run aborts the target instead of feeding benchjson an
# empty pipe.
# Benchmarks repeat BENCHCOUNT times; benchjson keeps each one's
# fastest run, the noise-robust estimate on shared hardware.
bench-json:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) . > .bench_raw.txt
	$(GO) run ./cmd/benchjson -out $(BENCH_BASELINE) .bench_raw.txt
	@rm -f .bench_raw.txt
	@echo "bench-json: wrote $(BENCH_BASELINE)"

# bench-json-incr regenerates the incremental-maintenance baseline
# (facts/sec, per-batch deltacomm/rounds) from the Bench*Maintain
# benchmarks alone.
bench-json-incr:
	$(GO) test -run='^$$' -bench='Maintain' -benchmem -benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) . > .bench_raw.txt
	$(GO) run ./cmd/benchjson -out $(BENCH_INCR_BASELINE) .bench_raw.txt
	@rm -f .bench_raw.txt
	@echo "bench-json-incr: wrote $(BENCH_INCR_BASELINE)"

# verify-perf runs the benchmarks fresh and fails when any ns/op
# regressed more than MAX_REGRESS times the checked-in baseline.
# The fresh report diffs against both baselines: BENCH_BASELINE pins
# the pre-incremental benchmarks (Maintain and *Verified benchmarks
# show as only-in-new there), BENCH_INCR_BASELINE pins the maintenance
# throughput and its exact per-batch domain metrics. The first diff
# also pairs each *Verified benchmark with its unverified twin inside
# the fresh report and bounds the routing-verification overhead.
verify-perf:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) . > .bench_head_raw.txt
	$(GO) run ./cmd/benchjson -out BENCH_head.json .bench_head_raw.txt
	@rm -f .bench_head_raw.txt
	$(GO) run ./cmd/benchdiff -max-regress $(MAX_REGRESS) -overhead-suffix Verified -max-overhead $(MAX_OVERHEAD) $(BENCH_BASELINE) BENCH_head.json
	$(GO) run ./cmd/benchdiff -max-regress $(MAX_REGRESS) $(BENCH_INCR_BASELINE) BENCH_head.json
