// Skew (Examples 3.1(1a)/(1b), Section 3.2): measures how heavy
// hitters destroy the repartition join's load balance, how the
// value-oblivious grouping join and the SharesSkew-style router shrug
// skew off, and how two rounds beat any one-round algorithm on the
// skewed triangle.
package main

import (
	"fmt"
	"log"
	"math"

	"mpclogic/internal/cq"
	"mpclogic/internal/gym"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

func loadOf(p int, inst *rel.Instance, r mpc.Round) int {
	r.Compute = nil // loads depend on routing only
	c := mpc.NewCluster(p)
	c.LoadRoundRobin(inst)
	if err := c.Run(r); err != nil {
		log.Fatal(err)
	}
	return c.MaxLoad()
}

func main() {
	d := rel.NewDict()
	join := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
	const m, p = 40000, 64

	fmt.Printf("binary join, m=%d per relation, p=%d\n", m, p)
	fmt.Printf("%-12s %-12s %-12s\n", "algorithm", "skew-free", "50% skew")
	rep, err := hypercube.RepartitionJoin(join, p, 7)
	if err != nil {
		log.Fatal(err)
	}
	grp, err := hypercube.GroupingJoin(join, p, 7)
	if err != nil {
		log.Fatal(err)
	}
	free := workload.JoinSkewFree(m)
	skewed := workload.JoinSkewed(m, 0.5)
	heavy := rel.NewValueSet(workload.HeavyHitters(skewed, "R", 1, m/p)...)
	ska, err := hypercube.SkewAwareJoin(join, p, heavy, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %-12d %-12d\n", "repartition", loadOf(p, free, rep), loadOf(p, skewed, rep))
	fmt.Printf("%-12s %-12d %-12d\n", "grouping", loadOf(p, free, grp), loadOf(p, skewed, grp))
	fmt.Printf("%-12s %-12d %-12d\n", "skew-aware", loadOf(p, free, ska), loadOf(p, skewed, ska))
	fmt.Printf("references: 2m/p=%d  2m/√p=%d\n\n", 2*m/p, 2*m/int(math.Sqrt(p)))

	// Skewed triangle: one round vs two.
	tri := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	triSkew := workload.TriangleSkewed(m, 0.5)
	triHeavy := rel.NewValueSet(workload.HeavyHitters(triSkew, "R", 1, m/16)...)
	grid, err := hypercube.NewOptimalGrid(tri, p, 5)
	if err != nil {
		log.Fatal(err)
	}
	one := loadOf(grid.P(), triSkew, hypercube.HyperCubeRound(grid))
	c2, _, err := gym.SkewTriangleTwoRound(p, triSkew, triHeavy, 5, grid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skewed triangle (m=%d, p=%d):\n", m, p)
	fmt.Printf("  one-round hypercube load: %d (lower bound under skew: m/√p = %.0f)\n",
		one, float64(m)/math.Sqrt(p))
	fmt.Printf("  two-round skew-aware:     %d (skew-free shape: 3m/p^(2/3) = %.0f)\n",
		c2.MaxLoad(), 3*float64(m)/math.Pow(p, 2.0/3.0))
}
