// Coordination-free computation (Section 5): runs the paper's three
// evaluation strategies on asynchronous transducer networks —
//
//   - triangles (monotone, class M) by naive broadcast (Example 5.1(1)),
//   - open triangles (Mdistinct) by the policy-aware program of
//     Example 5.4,
//   - the complement of transitive closure (Mdisjoint) by the
//     domain-guided strategy of Theorem 5.12,
//
// and demonstrates coordination-freeness: each strategy computes its
// query on the ideal distribution without reading a single message.
package main

import (
	"fmt"
	"log"

	"mpclogic/internal/cq"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
	"mpclogic/internal/transducer"
	"mpclogic/internal/workload"
)

func main() {
	d := rel.NewDict()
	g := workload.ComponentsGraph(2, 4) // two disjoint 4-cycles
	g.Add(rel.NewFact("E", 0, 2))       // one chord: creates open triangles
	const p = 4

	// 1. Monotone: triangles by naive broadcast.
	triQ := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), E(z, x), x != y, y != z, z != x")
	tri := func(i *rel.Instance) *rel.Instance { return cq.Output(triQ, i) }
	n1 := transducer.New(p, func() transducer.Program { return &transducer.MonotoneBroadcast{Q: tri} },
		transducer.WithSeed(7))
	if err := n1.LoadParts(policy.Distribute(&policy.Hash{Nodes: p}, g)); err != nil {
		log.Fatal(err)
	}
	st1, err := n1.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles (M, naive broadcast):       %d facts, %d msgs, matches centralized: %v\n",
		n1.Output().Len(), st1.Sent, n1.Output().Equal(tri(g)))

	// 2. Mdistinct: open triangles, policy-aware (Example 5.4).
	openQ := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), not E(z, x)")
	open := func(i *rel.Instance) *rel.Instance { return cq.Output(openQ, i) }
	pol := &policy.Hash{Nodes: p}
	n2 := transducer.New(p, func() transducer.Program { return &transducer.OpenTriangle{} },
		transducer.WithSeed(7), transducer.WithPolicy(pol))
	if err := n2.LoadPolicy(g, pol); err != nil {
		log.Fatal(err)
	}
	st2, err := n2.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("open triangles (Mdistinct, policy):   %d facts, %d msgs, matches centralized: %v\n",
		n2.Output().Len(), st2.Sent, n2.Output().Equal(open(g)))

	// 3. Mdisjoint: ¬TC on a domain-guided network.
	dg := &policy.DomainGuided{Nodes: p, DefaultWidth: 1}
	n3 := transducer.New(p, func() transducer.Program { return &transducer.DisjointComplete{Q: notTC} },
		transducer.WithSeed(7), transducer.WithPolicy(dg))
	if err := n3.LoadPolicy(g, dg); err != nil {
		log.Fatal(err)
	}
	st3, err := n3.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("¬TC (Mdisjoint, domain-guided):       %d facts, %d msgs, matches centralized: %v\n",
		n3.Output().Len(), st3.Sent, n3.Output().Equal(notTC(g)))

	// Coordination-freeness: silent runs on the ideal distribution.
	fmt.Println("\ncoordination-freeness probes (ideal distribution, zero messages read):")
	s1 := transducer.New(p, func() transducer.Program { return &transducer.MonotoneBroadcast{Q: tri} })
	s1.LoadReplicated(g)
	s1.RunSilent()
	fmt.Printf("  triangles:      %v\n", s1.Output().Equal(tri(g)))

	s2 := transducer.New(p, func() transducer.Program { return &transducer.OpenTriangle{} },
		transducer.WithPolicy(&policy.Replicate{Nodes: p}))
	s2.LoadReplicated(g)
	s2.RunSilent()
	fmt.Printf("  open triangles: %v\n", s2.Output().Equal(open(g)))

	s3 := transducer.New(p, func() transducer.Program { return &transducer.DisjointComplete{Q: notTC} },
		transducer.WithPolicy(&policy.DomainGuided{Nodes: p, DefaultWidth: p}))
	s3.LoadReplicated(g)
	s3.RunSilent()
	fmt.Printf("  ¬TC:            %v\n", s3.Output().Equal(notTC(g)))
}

// notTC is the complement of the transitive closure of E over adom(I).
func notTC(i *rel.Instance) *rel.Instance {
	reach := map[[2]rel.Value]bool{}
	adom := i.ADom().Sorted()
	if e := i.Relation("E"); e != nil {
		e.Each(func(t rel.Tuple) bool {
			reach[[2]rel.Value{t[0], t[1]}] = true
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for ab := range reach {
			for _, c := range adom {
				if reach[[2]rel.Value{ab[1], c}] && !reach[[2]rel.Value{ab[0], c}] {
					reach[[2]rel.Value{ab[0], c}] = true
					changed = true
				}
			}
		}
	}
	out := rel.NewInstance()
	for _, a := range adom {
		for _, b := range adom {
			if !reach[[2]rel.Value{a, b}] {
				out.Add(rel.NewFact("NTC", a, b))
			}
		}
	}
	return out
}
