// Quickstart: evaluate the triangle query with the HyperCube
// algorithm on a simulated 64-server MPC cluster, and compare the
// measured maximum load against the theoretical bound m/p^{1/τ*}
// (Example 3.2 of Neven, PODS 2016).
package main

import (
	"fmt"
	"log"
	"math"

	"mpclogic/internal/core"
	"mpclogic/internal/workload"
)

func main() {
	a := core.NewAnalyzer()
	q, err := a.ParseQuery("H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	if err != nil {
		log.Fatal(err)
	}

	// Structural analysis: τ* determines the optimal one-round load.
	s, err := a.Structure(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n", q)
	fmt.Printf("τ* = %.2f → skew-free one-round load is Θ(m/p^%.3f)\n", s.Tau, s.LoadExponent)

	// A skew-free matching database with m triangles.
	const m, p = 20000, 64
	inst := workload.TriangleSkewFree(m)

	plan, err := core.ChoosePlan(q, p, true /* one round */, false /* no skew */)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %s (%s)\n", plan.Algorithm, plan.Rationale)

	res, err := core.Execute(plan, inst)
	if err != nil {
		log.Fatal(err)
	}
	bound := 3 * float64(m) / math.Pow(p, 2.0/3.0)
	fmt.Printf("found %d triangles in %d round(s)\n", res.Output.Len(), res.Rounds)
	fmt.Printf("max load %d vs 3m/p^(2/3) = %.0f (ratio %.2f)\n",
		res.MaxLoad, bound, float64(res.MaxLoad)/bound)
}
