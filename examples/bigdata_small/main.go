// "Querying big data by accessing small data" (Section 6's pointers to
// Fan-Geerts-Libkin's scale independence and to finite-memory
// distributed streaming): this example answers a friends-of-friends
// query over a growing social graph while touching a bounded number of
// facts, and runs a streaming semijoin whose per-group memory stays
// constant as the stream grows.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mpclogic/internal/cq"
	"mpclogic/internal/rel"
	"mpclogic/internal/scale"
	"mpclogic/internal/stream"
	"mpclogic/internal/workload"
)

func main() {
	d := rel.NewDict()

	// Part 1: scale independence. "Who do the people Alice follows
	// follow?" — with a bounded-out-degree access constraint the plan
	// fetches at most fanout + fanout² facts no matter how large the
	// graph is.
	q := cq.MustParse(d, "H(y, z) :- Follows(0, y), Follows(y, z)")
	maxOut := 5
	cons := scale.Constraints{{Rel: "Follows", On: []int{0}, Fanout: maxOut}}
	plan, err := scale.Analyze(q, cons)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bounded plan: %d steps, worst-case %d fetched facts\n", len(plan.Steps), plan.Bound)
	fmt.Printf("%-12s %-10s %-8s\n", "|D| (facts)", "fetched", "answers")
	for _, users := range []int{5_000, 50_000, 500_000} {
		r := rand.New(rand.NewSource(11))
		inst := rel.NewInstance()
		// Alice (user 0) follows exactly maxOut accounts; everyone else
		// follows up to maxOut.
		for j := 0; j < maxOut; j++ {
			inst.Add(rel.NewFact("Follows", 0, rel.Value(1+r.Intn(users-1))))
		}
		for u := 1; u < users; u++ {
			for j := 0; j < r.Intn(maxOut+1); j++ {
				inst.Add(rel.NewFact("Follows", rel.Value(u), rel.Value(r.Intn(users))))
			}
		}
		out, fetched, err := scale.Execute(plan, inst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12d %-10d %-8d\n", inst.Len(), fetched, out.Len())
	}

	// Part 2: finite-memory streaming. A semijoin over a heavily
	// skewed stream: the heavy group grows linearly, the register
	// footprint does not.
	fmt.Println("\nstreaming semijoin R ⋉ S (register-automaton reducers):")
	fmt.Printf("%-10s %-16s %-14s\n", "m", "largest group", "memory/group")
	net := &stream.Network{
		Machines:  8,
		Key:       stream.KeyOn(map[string][]int{"R": {1}, "S": {0}}),
		Automaton: stream.SemiJoin("R", "S"),
	}
	for _, m := range []int{1_000, 100_000} {
		inst := workload.JoinSkewed(m, 0.5)
		_, st, err := net.Run(inst.Facts())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-16d %-14d\n", m, st.LargestGroup, st.MemoryPerGroup)
	}
}
