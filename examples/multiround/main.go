// Multi-round evaluation (Section 3.2): compares Yannakakis'
// algorithm against a cascade of binary joins on an acyclic query with
// dangling-heavy data, then runs GYM on the (cyclic) triangle query —
// bag evaluation by HyperCube plus Yannakakis over the bag tree.
package main

import (
	"fmt"
	"log"

	"mpclogic/internal/cq"
	"mpclogic/internal/gym"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

func main() {
	d := rel.NewDict()

	// Hub-shaped data: R0 fans into a hub, R1 fans out, R2 keeps few.
	q := cq.MustParse(d, "H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
	inst := rel.NewInstance()
	hub := rel.Value(1 << 20)
	for i := 0; i < 200; i++ {
		inst.Add(rel.NewFact("R0", rel.Value(i), hub))
		inst.Add(rel.NewFact("R1", hub, rel.Value(1000+i)))
	}
	for j := 0; j < 8; j++ {
		inst.Add(rel.NewFact("R2", rel.Value(1000+j), rel.Value(2000+j)))
	}

	outY, stY, err := gym.Yannakakis(q, inst)
	if err != nil {
		log.Fatal(err)
	}
	outC, stC, err := gym.CascadeJoin(q, inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("acyclic chain, output %d facts (cascade agrees: %v)\n", outY.Len(), outY.Equal(outC))
	fmt.Printf("  yannakakis: max intermediate %-6d (semijoins=%d, joins=%d)\n",
		stY.MaxIntermediate, stY.Semijoins, stY.Joins)
	fmt.Printf("  cascade:    max intermediate %-6d (the hub fan product)\n", stC.MaxIntermediate)

	// Distributed Yannakakis: rounds vs communication.
	c, got, err := gym.DistributedYannakakis(q, 8, inst, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  distributed (p=8): rounds=%d totalComm=%d correct=%v\n",
		c.Rounds(), c.TotalComm(), got.Equal(cq.Output(q, inst)))

	// GYM on the cyclic triangle query.
	tri := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	triInst := workload.TriangleSkewFree(2000)
	cg, gotTri, dec, err := gym.GYM(tri, 16, triInst, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGYM on the triangle query (p=16):\n")
	fmt.Printf("  decomposition: %d bags, width %d, bag tree depth %d\n",
		len(dec.Bags), dec.Width(), dec.Tree.Depth())
	fmt.Printf("  rounds=%d maxLoad=%d totalComm=%d correct=%v\n",
		cg.Rounds(), cg.MaxLoad(), cg.TotalComm(), gotTri.Equal(cq.Output(tri, triInst)))
}
