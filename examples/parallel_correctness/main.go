// Parallel-correctness walkthrough: reproduces Examples 4.1, 4.3 and
// 4.11/Figure 1 of the paper live — distributed one-round evaluation
// under explicit policies, the gap between conditions (PC0) and (PC1),
// and the orthogonality of pc-transfer and containment.
package main

import (
	"fmt"
	"log"

	"mpclogic/internal/core"
	"mpclogic/internal/cq"
	"mpclogic/internal/pc"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

func main() {
	a := core.NewAnalyzer()
	d := a.Dict

	fmt.Println("— Example 4.1: one-round distributed evaluation —")
	qe := cq.MustParse(d, "H(x1, x3) :- R(x1, x2), R(x2, x3), S(x3, x1)")
	ie := rel.MustInstance(d, "R(a,b)", "R(b,a)", "R(b,c)", "S(a,a)", "S(c,a)")
	p1 := &policy.Func{
		Nodes: 2,
		Resp: func(κ policy.Node, f rel.Fact) bool {
			if f.Rel == "R" {
				return true // all R-facts on both nodes
			}
			if f.Tuple[0] == f.Tuple[1] {
				return κ == 0 // diagonal S-facts on node κ1
			}
			return κ == 1
		},
	}
	fmt.Printf("Qe(Ie)      = %s\n", cq.Output(qe, ie).StringWith(d))
	fmt.Printf("[Qe,P1](Ie) = %s\n", pc.DistributedEval(qe, p1, ie).StringWith(d))
	fmt.Printf("parallel-correct on Ie under P1: %v\n\n", pc.ParallelCorrectOn(qe, p1, ie))

	fmt.Println("— Example 4.3: PC0 is sufficient but not necessary —")
	q := cq.MustParse(d, "H(x, z) :- R(x, y), R(y, z), R(x, x)")
	ab := rel.MustFact(d, "R(a,b)")
	ba := rel.MustFact(d, "R(b,a)")
	pol := &policy.Func{
		Nodes: 2,
		Resp: func(κ policy.Node, f rel.Fact) bool {
			if κ == 0 {
				return !f.Equal(ab) // everything except R(a,b)
			}
			return !f.Equal(ba) // everything except R(b,a)
		},
		Univ: d.Values("a", "b"),
	}
	strong, why0, err := a.StronglyCorrect(q, pol, nil)
	if err != nil {
		log.Fatal(err)
	}
	ok, why1, err := a.ParallelCorrect(q, pol, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PC0 holds: %v (%s)\n", strong, why0)
	fmt.Printf("parallel-correct (PC1): %v (%s)\n\n", ok, why1)

	fmt.Println("— Figure 1: transfer vs containment over Q1–Q4 —")
	qs := []*cq.CQ{
		cq.MustParse(d, "H() :- S(x), R(x, x), T(x)"),
		cq.MustParse(d, "H() :- R(x, x), T(x)"),
		cq.MustParse(d, "H() :- S(x), R(x, y), T(y)"),
		cq.MustParse(d, "H() :- R(x, y), T(y)"),
	}
	fmt.Printf("%-9s %-10s %-12s\n", "pair", "transfer", "containment")
	for i, qi := range qs {
		for j, qj := range qs {
			if i == j {
				continue
			}
			tr, _, err := a.Transfers(qi, qj)
			if err != nil {
				log.Fatal(err)
			}
			cn, err := a.Contained(qi, qj)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("Q%d → Q%d   %-10v %-12v\n", i+1, j+1, tr, cn)
		}
	}
}
