package mpclogic

// Workload-level determinism regression tests: repeated evaluation of
// the same MPC/CQ workload must yield byte-identical ordered output.
// This is the executable face of the paper's central hygiene premise —
// a parallel-correct one-round evaluation is a *function* of the query
// and the input, so nothing about scheduling, map iteration, or worker
// interleaving may leak into results. The mpclint suite enforces the
// same invariant statically; these tests enforce it dynamically.

import (
	"fmt"
	"testing"

	"mpclogic/internal/core"
	"mpclogic/internal/cq"
	"mpclogic/internal/gym"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// evalSnapshot captures everything observable about one evaluation.
type evalSnapshot struct {
	output string // serialized output instance (ordered)
	stats  string // per-round load statistics
	facts  int
}

// TestDeterminismRepeatedCQEvaluation: centralized CQ evaluation of
// the same query over the same instance, twice, yields identical
// ordered fact enumerations.
func TestDeterminismRepeatedCQEvaluation(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
	inst, _ := workload.AcyclicChain(3, 400, 0.3, 7)

	first := cq.Output(q, inst)
	second := cq.Output(q, inst)
	if first.Len() == 0 {
		t.Fatal("workload produced an empty join; test is vacuous")
	}
	if first.String() != second.String() {
		t.Errorf("repeated centralized evaluation differs:\n%s\n%s", first, second)
	}
	f1, f2 := first.Facts(), second.Facts()
	for k := range f1 {
		if !f1[k].Equal(f2[k]) {
			t.Fatalf("fact order differs at %d: %v vs %v", k, f1[k], f2[k])
		}
	}
}

// TestDeterminismRepeatedMPCWorkload: the same distributed workload —
// round-robin load, multi-round Yannakakis over an MPC cluster — run
// several times from scratch produces identical ordered output AND
// identical per-round communication statistics. The goroutine fan-out
// inside each round must be observationally invisible.
func TestDeterminismRepeatedMPCWorkload(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
	inst, _ := workload.AcyclicChain(3, 400, 0.3, 7)
	want := cq.Output(q, inst)

	var snaps []evalSnapshot
	for run := 0; run < 3; run++ {
		c, out, err := gym.DistributedYannakakis(q, 8, inst, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Equal(want) {
			t.Fatalf("run %d: distributed output disagrees with centralized evaluation", run)
		}
		snaps = append(snaps, evalSnapshot{
			output: out.String(),
			stats:  fmt.Sprint(c.Stats()),
			facts:  out.Len(),
		})
	}
	for run := 1; run < len(snaps); run++ {
		if snaps[run].output != snaps[0].output {
			t.Errorf("run %d output differs from run 0:\n%s\n%s", run, snaps[run].output, snaps[0].output)
		}
		if snaps[run].stats != snaps[0].stats {
			t.Errorf("run %d round statistics differ: %s vs %s", run, snaps[run].stats, snaps[0].stats)
		}
	}
	if snaps[0].facts == 0 {
		t.Fatal("distributed workload produced no facts; test is vacuous")
	}
}

// TestDeterminismRepeatedHyperCube: one-round HyperCube execution via
// the planner surface, repeated, is byte-stable in both output and
// recorded load.
func TestDeterminismRepeatedHyperCube(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	inst := workload.TriangleSkewFree(80)
	want := cq.Output(q, inst)

	var outputs, loads []string
	for run := 0; run < 3; run++ {
		plan := &core.Plan{Algorithm: core.AlgoHyperCube, Query: q, Servers: 8, Seed: 11}
		res, err := core.Execute(plan, inst)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Output.Filter(func(f rel.Fact) bool { return f.Rel == "H" })
		if !got.Equal(want) {
			t.Fatalf("run %d: HyperCube output wrong", run)
		}
		outputs = append(outputs, got.String())
		loads = append(loads, fmt.Sprintf("rounds=%d maxload=%d comm=%d", res.Rounds, res.MaxLoad, res.TotalComm))
	}
	for run := 1; run < 3; run++ {
		if outputs[run] != outputs[0] {
			t.Errorf("run %d HyperCube output differs:\n%s\n%s", run, outputs[run], outputs[0])
		}
		if loads[run] != loads[0] {
			t.Errorf("run %d HyperCube load stats differ: %s vs %s", run, loads[run], loads[0])
		}
	}
}
