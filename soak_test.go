package mpclogic

// Sustained-update soak: drive a maintained transitive-closure view
// with a mixed stream of update batches for a wall-clock budget, and
// after every epoch verify the maintained cluster byte-identically
// matches a from-scratch run on the accumulated input — output AND
// per-server state. Tier-1 runs a tiny default budget; the nightly
// job sets MPC_SOAK=60s (see `make soak`). Wall time only decides
// when to STOP: the update stream itself is deterministic, and the
// identity being checked must hold after every batch, so stopping at
// an arbitrary point never weakens the check.

import (
	"os"
	"testing"
	"time"

	"mpclogic/internal/gym"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// soakBatch builds one update batch of `size` fresh edges. Sources are
// unique within an epoch; targets cycle over nodes 113..120 of the
// resident 120-path, so each edge's closure consequences stay bounded
// (≤ 8 facts) while batch shapes still vary.
func soakBatch(i, size int) *rel.Instance {
	b := rel.NewInstance()
	for k := 0; k < size; k++ {
		u := rel.Value(1<<22 + i*1000 + k)
		b.Add(rel.NewFact("E", u, rel.Value(113+(i+k)%8)))
	}
	return b
}

func TestSustainedUpdateSoak(t *testing.T) {
	budget := 150 * time.Millisecond
	if s := os.Getenv("MPC_SOAK"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("bad MPC_SOAK %q: %v", s, err)
		}
		budget = d
	}
	const (
		p, seed  = 5, 11
		epochCap = 50000 // update facts per epoch before the scratch check
	)
	base := workload.PathGraph(120)
	sizes := []int{1, 7, 1, 100, 33, 1, 1000, 5}
	deadline := time.Now().Add(budget)
	epochs, totalBatches, totalFacts := 0, 0, 0
	for {
		c, err := gym.DeltaTC(p, base, seed)
		if err != nil {
			t.Fatal(err)
		}
		cum := base.Clone()
		facts, batches := 0, 0
		// Always run at least one full cycle of batch shapes, then keep
		// streaming until the epoch cap or the wall-clock budget.
		for i := 0; facts < epochCap && (i < len(sizes) || time.Now().Before(deadline)); i++ {
			size := sizes[i%len(sizes)]
			upd := soakBatch(i, size)
			if err := c.ApplyUpdate(upd); err != nil {
				t.Fatalf("epoch %d batch %d: %v", epochs, i, err)
			}
			cum.AddAll(upd)
			facts += size
			batches++
		}
		ref, err := gym.DeltaTC(p, cum, seed)
		if err != nil {
			t.Fatal(err)
		}
		if c.Output().String() != ref.Output().String() {
			t.Fatalf("epoch %d: maintained output diverged from from-scratch after %d batches (%d update facts)",
				epochs, batches, facts)
		}
		for s := 0; s < p; s++ {
			if !c.Server(s).Equal(ref.Server(s)) {
				t.Fatalf("epoch %d: server %d state diverged from from-scratch after %d batches", epochs, s, batches)
			}
		}
		if got := c.DeltaCommTotal(); got != c.TotalComm() {
			t.Fatalf("epoch %d: shipped %d facts but only %d as deltas", epochs, c.TotalComm(), got)
		}
		epochs++
		totalBatches += batches
		totalFacts += facts
		if !time.Now().Before(deadline) {
			break
		}
	}
	t.Logf("soak: %d epochs, %d batches, %d update facts in %v budget", epochs, totalBatches, totalFacts, budget)
}
