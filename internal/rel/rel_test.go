package rel

import (
	"testing"
)

func TestDictInterning(t *testing.T) {
	d := NewDict()
	a := d.Value("a")
	b := d.Value("b")
	if a == b {
		t.Fatalf("distinct names interned to same value")
	}
	if got := d.Value("a"); got != a {
		t.Errorf("re-interning a: got %v want %v", got, a)
	}
	if d.Name(a) != "a" || d.Name(b) != "b" {
		t.Errorf("name round-trip failed")
	}
	if _, ok := d.Lookup("zz"); ok {
		t.Errorf("Lookup of unknown name succeeded")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestDictNameOfUnknown(t *testing.T) {
	d := NewDict()
	if got := d.Name(Value(-7)); got != "#-7" {
		t.Errorf("Name(-7) = %q", got)
	}
}

func TestValueSetOps(t *testing.T) {
	s := NewValueSet(1, 2, 3)
	u := NewValueSet(3, 4)
	if !s.Intersects(u) || !u.Intersects(s) {
		t.Errorf("Intersects false for overlapping sets")
	}
	if s.Intersects(NewValueSet(9)) {
		t.Errorf("Intersects true for disjoint sets")
	}
	if !NewValueSet(1, 2).SubsetOf(s) {
		t.Errorf("SubsetOf false for subset")
	}
	if s.SubsetOf(u) {
		t.Errorf("SubsetOf true for non-subset")
	}
	un := s.Union(u)
	if len(un) != 4 {
		t.Errorf("union size = %d, want 4", len(un))
	}
	sorted := un.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Errorf("Sorted not strictly increasing: %v", sorted)
		}
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Classic string-concat collision check: (1,23) vs (12,3) etc.
	seen := map[string]Tuple{}
	for a := Value(0); a < 40; a++ {
		for b := Value(0); b < 40; b++ {
			tu := Tuple{a, b}
			k := tu.Key()
			if prev, ok := seen[k]; ok {
				t.Fatalf("key collision between %v and %v", prev, tu)
			}
			seen[k] = tu
		}
	}
}

func TestTupleOps(t *testing.T) {
	tu := Tuple{5, 6, 7}
	if !tu.Equal(Tuple{5, 6, 7}) || tu.Equal(Tuple{5, 6}) || tu.Equal(Tuple{5, 6, 8}) {
		t.Errorf("Equal misbehaves")
	}
	c := tu.Clone()
	c[0] = 99
	if tu[0] == 99 {
		t.Errorf("Clone aliases original")
	}
	p := tu.Project([]int{2, 0})
	if !p.Equal(Tuple{7, 5}) {
		t.Errorf("Project = %v", p)
	}
	cat := Tuple{1}.Concat(Tuple{2, 3})
	if !cat.Equal(Tuple{1, 2, 3}) {
		t.Errorf("Concat = %v", cat)
	}
	if !(Tuple{1, 2}).Less(Tuple{1, 3}) || (Tuple{1, 3}).Less(Tuple{1, 2}) {
		t.Errorf("Less misordered")
	}
	if !(Tuple{1}).Less(Tuple{1, 0}) {
		t.Errorf("shorter tuple should sort first")
	}
	if got := tu.ADom(); len(got) != 3 || !got.Contains(5) {
		t.Errorf("ADom = %v", got)
	}
}

func TestFactBasics(t *testing.T) {
	f := NewFact("R", 1, 2)
	g := NewFact("R", 1, 2)
	h := NewFact("S", 1, 2)
	if !f.Equal(g) || f.Equal(h) {
		t.Errorf("fact equality misbehaves")
	}
	if f.Key() == h.Key() {
		t.Errorf("distinct relations share a key")
	}
	if NewFact("R", 1).Key() == NewFact("R", 0, 1).Key() {
		t.Errorf("arity not separated in key")
	}
	if !f.Less(h) {
		t.Errorf("R fact should sort before S fact")
	}
	d := NewDict()
	pf := MustFact(d, "Edge(a, b)")
	if pf.Rel != "Edge" || len(pf.Tuple) != 2 {
		t.Errorf("parsed fact %v", pf)
	}
	if got := pf.StringWith(d); got != "Edge(a,b)" {
		t.Errorf("StringWith = %q", got)
	}
}

func TestParseFactErrors(t *testing.T) {
	d := NewDict()
	for _, bad := range []string{"", "R", "R(", "(a)", "R(a,)", "R(,a)", "Ra)"} {
		if _, err := ParseFact(d, bad); err == nil {
			t.Errorf("ParseFact(%q) succeeded, want error", bad)
		}
	}
	f, err := ParseFact(d, "Ok()")
	if err != nil || f.Rel != "Ok" || len(f.Tuple) != 0 {
		t.Errorf("nullary fact parse: %v, %v", f, err)
	}
}

func TestSchema(t *testing.T) {
	s := NewSchema(map[string]int{"R": 2, "S": 1})
	if err := s.Validate(NewFact("R", 1, 2)); err != nil {
		t.Errorf("valid fact rejected: %v", err)
	}
	if err := s.Validate(NewFact("R", 1)); err == nil {
		t.Errorf("arity violation accepted")
	}
	if err := s.Validate(NewFact("T", 1)); err == nil {
		t.Errorf("unknown relation accepted")
	}
	if err := s.Declare("R", 3); err == nil {
		t.Errorf("conflicting redeclare accepted")
	}
	if err := s.Declare("R", 2); err != nil {
		t.Errorf("consistent redeclare rejected: %v", err)
	}
	if got := s.Relations(); len(got) != 2 || got[0] != "R" || got[1] != "S" {
		t.Errorf("Relations = %v", got)
	}
	if s.MaxArity() != 2 {
		t.Errorf("MaxArity = %d", s.MaxArity())
	}
}

func TestSchemaAllFacts(t *testing.T) {
	s := NewSchema(map[string]int{"R": 2, "S": 1})
	u := []Value{10, 20}
	fs := s.AllFacts(u)
	// 2^2 R-facts + 2 S-facts.
	if len(fs) != 6 {
		t.Fatalf("AllFacts count = %d, want 6", len(fs))
	}
	seen := map[string]bool{}
	for _, f := range fs {
		if seen[f.Key()] {
			t.Fatalf("duplicate fact %v", f)
		}
		seen[f.Key()] = true
	}
	if !seen[NewFact("R", 20, 10).Key()] || !seen[NewFact("S", 20).Key()] {
		t.Errorf("expected facts missing")
	}
	// Nullary relation contributes exactly one fact even on empty universe.
	s2 := NewSchema(map[string]int{"B": 0, "R": 1})
	fs2 := s2.AllFacts(nil)
	if len(fs2) != 1 || fs2[0].Rel != "B" {
		t.Errorf("AllFacts with empty universe = %v", fs2)
	}
}

func TestRelationSetSemantics(t *testing.T) {
	r := NewRelation("R", 2)
	if !r.Add(Tuple{1, 2}) {
		t.Errorf("first Add returned false")
	}
	if r.Add(Tuple{1, 2}) {
		t.Errorf("duplicate Add returned true")
	}
	if r.Len() != 1 || !r.Contains(Tuple{1, 2}) {
		t.Errorf("relation state wrong after adds")
	}
	if !r.Remove(Tuple{1, 2}) || r.Remove(Tuple{1, 2}) {
		t.Errorf("Remove misbehaves")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("arity-mismatched Add did not panic")
		}
	}()
	r.Add(Tuple{1})
}

func TestInstanceBasics(t *testing.T) {
	d := NewDict()
	i := MustInstance(d, "R(a,b)", "R(b,a)", "S(a)")
	if i.Len() != 3 {
		t.Fatalf("Len = %d", i.Len())
	}
	if !i.Contains(MustFact(d, "R(a,b)")) || i.Contains(MustFact(d, "R(a,a)")) {
		t.Errorf("Contains misbehaves")
	}
	j := i.Clone()
	j.Add(MustFact(d, "T(c)"))
	if i.Contains(MustFact(d, "T(c)")) {
		t.Errorf("Clone aliases original")
	}
	if !i.SubsetOf(j) || j.SubsetOf(i) {
		t.Errorf("SubsetOf misbehaves")
	}
	if i.Equal(j) || !i.Equal(i.Clone()) {
		t.Errorf("Equal misbehaves")
	}
	u := i.Union(j)
	if u.Len() != 4 {
		t.Errorf("Union Len = %d", u.Len())
	}
	if got := len(i.ADom()); got != 2 {
		t.Errorf("ADom size = %d, want 2", got)
	}
	names := j.RelationNames()
	if len(names) != 3 || names[0] != "R" || names[2] != "T" {
		t.Errorf("RelationNames = %v", names)
	}
}

func TestInstanceInduced(t *testing.T) {
	d := NewDict()
	i := MustInstance(d, "E(a,b)", "E(b,c)", "E(c,a)", "E(x,y)")
	c := NewValueSet(d.Value("a"), d.Value("b"), d.Value("c"))
	got := i.Induced(c)
	if got.Len() != 3 || got.Contains(MustFact(d, "E(x,y)")) {
		t.Errorf("Induced = %v", got.StringWith(d))
	}
}

func TestInstanceString(t *testing.T) {
	d := NewDict()
	i := MustInstance(d, "S(b)", "R(a)")
	if got := i.StringWith(d); got != "{R(a), S(b)}" {
		t.Errorf("StringWith = %q", got)
	}
	if MustInstance(d).StringWith(d) != "{}" {
		t.Errorf("empty instance rendering")
	}
}

func TestComponents(t *testing.T) {
	d := NewDict()
	i := MustInstance(d,
		"E(a,b)", "E(b,c)", // component 1
		"E(x,y)", // component 2
		"S(z)",   // component 3
		"Flag()", // zero-arity: own component
	)
	comps := Components(i)
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4: %v", len(comps), comps)
	}
	total := 0
	for _, c := range comps {
		total += c.Len()
		// Components must be pairwise domain-disjoint.
		for _, o := range comps {
			if c == o {
				continue
			}
			if c.ADom().Intersects(o.ADom()) {
				t.Errorf("components share domain values: %v vs %v", c, o)
			}
		}
	}
	if total != i.Len() {
		t.Errorf("components lose facts: %d vs %d", total, i.Len())
	}
}

func TestComponentsBridging(t *testing.T) {
	d := NewDict()
	// T(a, q) bridges the {a,b} and {q,r} clusters into one component.
	i := MustInstance(d, "E(a,b)", "E(q,r)", "T(a,q)")
	comps := Components(i)
	if len(comps) != 1 {
		t.Fatalf("got %d components, want 1", len(comps))
	}
	if comps[0].Len() != 3 {
		t.Errorf("component has %d facts, want 3", comps[0].Len())
	}
}

func TestAlgebraSelectProject(t *testing.T) {
	r := NewRelation("R", 2)
	r.Add(Tuple{1, 1})
	r.Add(Tuple{1, 2})
	r.Add(Tuple{2, 2})
	sel := Select(r, func(t Tuple) bool { return t[0] == t[1] })
	if sel.Len() != 2 {
		t.Errorf("Select len = %d", sel.Len())
	}
	pr := Project(r, "P", []int{0})
	if pr.Len() != 2 || !pr.Contains(Tuple{1}) || !pr.Contains(Tuple{2}) {
		t.Errorf("Project wrong: %v", pr.SortedTuples())
	}
}

func TestAlgebraJoin(t *testing.T) {
	r := NewRelation("R", 2)
	s := NewRelation("S", 2)
	r.Add(Tuple{1, 10})
	r.Add(Tuple{2, 20})
	s.Add(Tuple{10, 100})
	s.Add(Tuple{10, 101})
	s.Add(Tuple{30, 300})
	j := HashJoin("J", r, s, []int{1}, []int{0})
	if j.Arity != 4 || j.Len() != 2 {
		t.Fatalf("join arity/len = %d/%d", j.Arity, j.Len())
	}
	if !j.Contains(Tuple{1, 10, 10, 100}) || !j.Contains(Tuple{1, 10, 10, 101}) {
		t.Errorf("join results wrong: %v", j.SortedTuples())
	}
	// Force the swapped build side and check column order is preserved.
	big := NewRelation("B", 1)
	for v := Value(0); v < 10; v++ {
		big.Add(Tuple{v})
	}
	small := NewRelation("Sm", 2)
	small.Add(Tuple{3, 33})
	j2 := HashJoin("J2", big, small, []int{0}, []int{0})
	if j2.Len() != 1 || !j2.Contains(Tuple{3, 3, 33}) {
		t.Errorf("swapped join wrong: %v", j2.SortedTuples())
	}
}

func TestAlgebraSemiAntiJoin(t *testing.T) {
	r := NewRelation("R", 2)
	s := NewRelation("S", 1)
	r.Add(Tuple{1, 10})
	r.Add(Tuple{2, 20})
	s.Add(Tuple{10})
	semi := SemiJoin(r, s, []int{1}, []int{0})
	if semi.Len() != 1 || !semi.Contains(Tuple{1, 10}) {
		t.Errorf("semijoin wrong: %v", semi.SortedTuples())
	}
	anti := AntiJoin(r, s, []int{1}, []int{0})
	if anti.Len() != 1 || !anti.Contains(Tuple{2, 20}) {
		t.Errorf("antijoin wrong: %v", anti.SortedTuples())
	}
}

func TestAlgebraUnionDiffIntersect(t *testing.T) {
	a := NewRelation("A", 1)
	b := NewRelation("B", 1)
	a.Add(Tuple{1})
	a.Add(Tuple{2})
	b.Add(Tuple{2})
	b.Add(Tuple{3})
	if got := Union("U", a, b); got.Len() != 3 {
		t.Errorf("union len = %d", got.Len())
	}
	if got := Diff("D", a, b); got.Len() != 1 || !got.Contains(Tuple{1}) {
		t.Errorf("diff wrong: %v", got.SortedTuples())
	}
	if got := Intersect("I", a, b); got.Len() != 1 || !got.Contains(Tuple{2}) {
		t.Errorf("intersect wrong: %v", got.SortedTuples())
	}
}

func TestAlgebraProduct(t *testing.T) {
	a := NewRelation("A", 1)
	b := NewRelation("B", 1)
	a.Add(Tuple{1})
	a.Add(Tuple{2})
	b.Add(Tuple{7})
	p := Product("P", a, b)
	if p.Len() != 2 || p.Arity != 2 || !p.Contains(Tuple{1, 7}) {
		t.Errorf("product wrong: %v", p.SortedTuples())
	}
}

func TestUnionWithArityGuard(t *testing.T) {
	a := NewRelation("A", 1)
	b := NewRelation("A", 2)
	b.Add(Tuple{1, 2})
	defer func() {
		if recover() == nil {
			t.Errorf("arity-mismatched UnionWith did not panic")
		}
	}()
	a.UnionWith(b)
}
