package rel

// Join indexing: a reusable hash index over a column projection of a
// relation, built once per (relation, columns) and cached on the
// relation until its next mutation. Buckets key on the 64-bit
// projection hash; probes verify candidates column-by-column, so the
// index never allocates per-probe string keys or projected tuples.

// joinIndex maps the hash of a column projection to the stored-tuple
// indices sharing that projection hash.
type joinIndex struct {
	cols    []int
	buckets map[uint64][]int32
}

// colsKey folds a column list into a cache key. Distinct column lists
// can in principle collide, so index lookups re-verify cols.
func colsKey(cols []int) uint64 {
	k := uint64(len(cols))
	for _, c := range cols {
		k = k*131 + uint64(c) + 1
	}
	return k
}

func equalCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// index returns the relation's join index on cols, building and caching
// it on first use. The cache is invalidated on mutation. Like the rest
// of Relation, index is not safe for concurrent use.
func (r *Relation) index(cols []int) *joinIndex {
	k := colsKey(cols)
	if ji, ok := r.idx[k]; ok && equalCols(ji.cols, cols) {
		return ji
	}
	ji := &joinIndex{
		cols:    append([]int(nil), cols...),
		buckets: make(map[uint64][]int32, r.live),
	}
	for i := range r.hashes {
		if r.dead[i] {
			continue
		}
		h := HashCols(r.tupleAt(int32(i)), cols)
		ji.buckets[h] = append(ji.buckets[h], int32(i))
	}
	if r.idx == nil {
		r.idx = make(map[uint64]*joinIndex)
	}
	r.idx[k] = ji
	return ji
}

// hasIndex reports whether a join index on cols is already cached.
func (r *Relation) hasIndex(cols []int) bool {
	ji, ok := r.idx[colsKey(cols)]
	return ok && equalCols(ji.cols, cols)
}

// IndexOn builds and caches the relation's join index on cols if it is
// not cached already. Inserts maintain cached indexes incrementally
// (removal and compaction drop them), so pre-indexing a long-lived
// resident relation lets every later HashJoin against a small delta
// probe the resident at O(|Δ|) instead of scanning it — the join-side
// half of the delta-round cost model.
func (r *Relation) IndexOn(cols ...int) {
	r.index(cols)
}

// HashCols returns the partition-quality hash of t's projection onto
// cols, equal to t.Project(cols).Hash() without allocating the
// projected tuple.
func HashCols(t Tuple, cols []int) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range cols {
		u := uint64(t[c])
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= prime
			u >>= 8
		}
	}
	return Mix64(h)
}

// EqualOn reports whether a's projection onto aCols equals b's
// projection onto bCols (the lists must have the same length).
func EqualOn(a Tuple, aCols []int, b Tuple, bCols []int) bool {
	for k := range aCols {
		if a[aCols[k]] != b[bCols[k]] {
			return false
		}
	}
	return true
}
