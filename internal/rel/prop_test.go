package rel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomRelation draws a relation with small arity and values so that
// collisions (and therefore set semantics) are actually exercised.
func randomRelation(r *rand.Rand, name string, arity, n int) *Relation {
	out := NewRelation(name, arity)
	for i := 0; i < n; i++ {
		t := make(Tuple, arity)
		for j := range t {
			t[j] = Value(r.Intn(6))
		}
		out.Add(t)
	}
	return out
}

func TestPropTupleKeyRoundTrip(t *testing.T) {
	f := func(a, b, c int64) bool {
		t1 := Tuple{Value(a), Value(b), Value(c)}
		t2 := Tuple{Value(a), Value(b), Value(c)}
		return t1.Key() == t2.Key() && t1.Hash() == t2.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropTupleKeyDistinct(t *testing.T) {
	f := func(a, b int64) bool {
		if a == b {
			return true
		}
		return Tuple{Value(a)}.Key() != Tuple{Value(b)}.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Union is commutative, associative, idempotent on instances.
func TestPropInstanceUnionLaws(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		a := randomInstance(r)
		b := randomInstance(r)
		c := randomInstance(r)
		if !a.Union(b).Equal(b.Union(a)) {
			t.Fatalf("union not commutative")
		}
		if !a.Union(b).Union(c).Equal(a.Union(b.Union(c))) {
			t.Fatalf("union not associative")
		}
		if !a.Union(a).Equal(a) {
			t.Fatalf("union not idempotent")
		}
	}
}

func randomInstance(r *rand.Rand) *Instance {
	i := NewInstance()
	n := r.Intn(12)
	for k := 0; k < n; k++ {
		rel := []string{"R", "S"}[r.Intn(2)]
		i.Add(NewFact(rel, Value(r.Intn(5)), Value(r.Intn(5))))
	}
	return i
}

// Semijoin then antijoin partition the left side.
func TestPropSemiAntiPartition(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		l := randomRelation(r, "L", 2, r.Intn(20))
		rr := randomRelation(r, "R", 2, r.Intn(20))
		cols := []int{r.Intn(2)}
		rcols := []int{r.Intn(2)}
		semi := SemiJoin(l, rr, cols, rcols)
		anti := AntiJoin(l, rr, cols, rcols)
		if semi.Len()+anti.Len() != l.Len() {
			t.Fatalf("semi+anti != l: %d + %d != %d", semi.Len(), anti.Len(), l.Len())
		}
		u := Union("U", semi, anti)
		if !u.Equal(l) {
			t.Fatalf("semi ∪ anti != l")
		}
	}
}

// Join output projected back to the left columns is exactly the semijoin.
func TestPropJoinProjectsToSemijoin(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		l := randomRelation(r, "L", 2, r.Intn(15))
		rr := randomRelation(r, "R", 2, r.Intn(15))
		j := HashJoin("J", l, rr, []int{1}, []int{0})
		proj := Project(j, "P", []int{0, 1})
		semi := SemiJoin(l, rr, []int{1}, []int{0})
		if !proj.Equal(semi) {
			t.Fatalf("π_L(L⋈R) != L⋉R:\n%v\nvs\n%v", proj.SortedTuples(), semi.SortedTuples())
		}
	}
}

// Components are a partition and each is domain-disjoint from the rest.
func TestPropComponentsPartition(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		i := randomInstance(r)
		comps := Components(i)
		joined := NewInstance()
		for idx, c := range comps {
			if c.IsEmpty() {
				t.Fatalf("empty component")
			}
			joined.AddAll(c)
			for jdx, o := range comps {
				if idx != jdx && c.ADom().Intersects(o.ADom()) {
					t.Fatalf("components not domain-disjoint")
				}
			}
		}
		if !joined.Equal(i) {
			t.Fatalf("components do not reassemble instance")
		}
	}
}

// Induced is monotone and idempotent.
func TestPropInducedLaws(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		i := randomInstance(r)
		c := make(ValueSet)
		for v := range i.ADom() {
			if r.Intn(2) == 0 {
				c.Add(v)
			}
		}
		ind := i.Induced(c)
		if !ind.SubsetOf(i) {
			t.Fatalf("induced not a subinstance")
		}
		if !ind.Induced(c).Equal(ind) {
			t.Fatalf("induced not idempotent")
		}
		if !ind.ADom().SubsetOf(c) {
			t.Fatalf("induced adom escapes C")
		}
	}
}

func TestPropDiffUnionRestores(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		a := randomRelation(r, "A", 2, r.Intn(20))
		b := randomRelation(r, "B", 2, r.Intn(20))
		// (a ∖ b) ∪ (a ∩ b) == a
		d := Diff("D", a, b)
		in := Intersect("I", a, b)
		if !Union("U", d, in).Equal(a) {
			t.Fatalf("(a∖b) ∪ (a∩b) != a")
		}
	}
}
