package rel

// This file implements a small positional relational algebra over
// *Relation. It is the local evaluation engine used at each MPC server
// and inside the Datalog engine. All operators are set-semantics and
// allocate fresh result relations.

// Select returns the tuples of r satisfying pred.
func Select(r *Relation, pred func(Tuple) bool) *Relation {
	out := NewRelation(r.Name, r.Arity)
	r.Each(func(t Tuple) bool {
		if pred(t) {
			out.Add(t)
		}
		return true
	})
	return out
}

// Project returns r projected onto cols, named name.
func Project(r *Relation, name string, cols []int) *Relation {
	out := NewRelation(name, len(cols))
	r.Each(func(t Tuple) bool {
		out.Add(t.Project(cols))
		return true
	})
	return out
}

// Union returns l ∪ r; arities must match.
func Union(name string, l, r *Relation) *Relation {
	if l.Arity != r.Arity {
		panic("rel: union arity mismatch")
	}
	out := NewRelation(name, l.Arity)
	out.UnionWith(l)
	out.UnionWith(r)
	return out
}

// Diff returns l ∖ r; arities must match.
func Diff(name string, l, r *Relation) *Relation {
	if l.Arity != r.Arity {
		panic("rel: diff arity mismatch")
	}
	out := NewRelation(name, l.Arity)
	l.Each(func(t Tuple) bool {
		if !r.Contains(t) {
			out.Add(t)
		}
		return true
	})
	return out
}

// Intersect returns l ∩ r; arities must match.
func Intersect(name string, l, r *Relation) *Relation {
	if l.Arity != r.Arity {
		panic("rel: intersect arity mismatch")
	}
	small, big := l, r
	if big.Len() < small.Len() {
		small, big = big, small
	}
	out := NewRelation(name, l.Arity)
	small.Each(func(t Tuple) bool {
		if big.Contains(t) {
			out.Add(t)
		}
		return true
	})
	return out
}

// HashJoin computes the equi-join of l and r on the column lists
// lCols/rCols (same length). The result tuple is the concatenation of
// the l-tuple and the r-tuple (all columns of both, join columns
// duplicated), with arity l.Arity + r.Arity.
func HashJoin(name string, l, r *Relation, lCols, rCols []int) *Relation {
	if len(lCols) != len(rCols) {
		panic("rel: join column count mismatch")
	}
	out := NewRelation(name, l.Arity+r.Arity)
	// Build on the smaller side.
	build, probe := l, r
	bCols, pCols := lCols, rCols
	swapped := false
	if r.Len() < l.Len() {
		build, probe = r, l
		bCols, pCols = rCols, lCols
		swapped = true
	}
	idx := make(map[string][]Tuple, build.Len())
	build.Each(func(t Tuple) bool {
		k := t.Project(bCols).Key()
		idx[k] = append(idx[k], t)
		return true
	})
	probe.Each(func(t Tuple) bool {
		k := t.Project(pCols).Key()
		for _, b := range idx[k] {
			if swapped {
				out.Add(t.Concat(b))
			} else {
				out.Add(b.Concat(t))
			}
		}
		return true
	})
	return out
}

// SemiJoin returns the tuples of l that join with at least one tuple of
// r on the given columns (l ⋉ r).
func SemiJoin(l, r *Relation, lCols, rCols []int) *Relation {
	if len(lCols) != len(rCols) {
		panic("rel: semijoin column count mismatch")
	}
	keys := make(map[string]struct{}, r.Len())
	r.Each(func(t Tuple) bool {
		keys[t.Project(rCols).Key()] = struct{}{}
		return true
	})
	out := NewRelation(l.Name, l.Arity)
	l.Each(func(t Tuple) bool {
		if _, ok := keys[t.Project(lCols).Key()]; ok {
			out.Add(t)
		}
		return true
	})
	return out
}

// AntiJoin returns the tuples of l that join with no tuple of r on the
// given columns (l ▷ r).
func AntiJoin(l, r *Relation, lCols, rCols []int) *Relation {
	if len(lCols) != len(rCols) {
		panic("rel: antijoin column count mismatch")
	}
	keys := make(map[string]struct{}, r.Len())
	r.Each(func(t Tuple) bool {
		keys[t.Project(rCols).Key()] = struct{}{}
		return true
	})
	out := NewRelation(l.Name, l.Arity)
	l.Each(func(t Tuple) bool {
		if _, ok := keys[t.Project(lCols).Key()]; !ok {
			out.Add(t)
		}
		return true
	})
	return out
}

// Product returns the Cartesian product l × r.
func Product(name string, l, r *Relation) *Relation {
	return HashJoin(name, l, r, nil, nil)
}
