package rel

// This file implements a small positional relational algebra over
// *Relation. It is the local evaluation engine used at each MPC server
// and inside the Datalog engine. All operators are set-semantics and
// allocate fresh result relations.

// Select returns the tuples of r satisfying pred.
func Select(r *Relation, pred func(Tuple) bool) *Relation {
	out := NewRelation(r.Name, r.Arity)
	r.Each(func(t Tuple) bool {
		if pred(t) {
			out.Add(t)
		}
		return true
	})
	return out
}

// Project returns r projected onto cols, named name.
func Project(r *Relation, name string, cols []int) *Relation {
	out := NewRelation(name, len(cols))
	r.Each(func(t Tuple) bool {
		out.Add(t.Project(cols))
		return true
	})
	return out
}

// Union returns l ∪ r; arities must match.
func Union(name string, l, r *Relation) *Relation {
	if l.Arity != r.Arity {
		panic("rel: union arity mismatch")
	}
	out := NewRelation(name, l.Arity)
	out.UnionWith(l)
	out.UnionWith(r)
	return out
}

// Diff returns l ∖ r; arities must match.
func Diff(name string, l, r *Relation) *Relation {
	if l.Arity != r.Arity {
		panic("rel: diff arity mismatch")
	}
	out := NewRelation(name, l.Arity)
	l.Each(func(t Tuple) bool {
		if !r.Contains(t) {
			out.Add(t)
		}
		return true
	})
	return out
}

// Intersect returns l ∩ r; arities must match.
func Intersect(name string, l, r *Relation) *Relation {
	if l.Arity != r.Arity {
		panic("rel: intersect arity mismatch")
	}
	small, big := l, r
	if big.Len() < small.Len() {
		small, big = big, small
	}
	out := NewRelation(name, l.Arity)
	small.Each(func(t Tuple) bool {
		if big.Contains(t) {
			out.Add(t)
		}
		return true
	})
	return out
}

// HashJoin computes the equi-join of l and r on the column lists
// lCols/rCols (same length). The result tuple is the concatenation of
// the l-tuple and the r-tuple (all columns of both, join columns
// duplicated), with arity l.Arity + r.Arity.
//
// The build side's hash index is cached on the relation (see
// Relation.index), so repeated joins against an unchanged relation —
// the shape of semi-naive Datalog iteration — skip the build phase
// entirely. Probing hashes the probe columns in place and result tuples
// are assembled in a reused scratch buffer; Add copies into the result
// arena, so the loop allocates nothing per probe.
func HashJoin(name string, l, r *Relation, lCols, rCols []int) *Relation {
	if len(lCols) != len(rCols) {
		panic("rel: join column count mismatch")
	}
	out := NewRelation(name, l.Arity+r.Arity)
	// Build on a side that already has a cached index on its join
	// columns; otherwise on the smaller side. Cached indexes survive
	// inserts (see Relation.IndexOn), so a pre-indexed resident relation
	// answers every later delta join at O(|Δ|) instead of being
	// re-scanned as the probe side.
	build, probe := l, r
	bCols, pCols := lCols, rCols
	swapped := false
	lIdx, rIdx := l.hasIndex(lCols), r.hasIndex(rCols)
	if (rIdx && !lIdx) || (lIdx == rIdx && r.Len() < l.Len()) {
		build, probe = r, l
		bCols, pCols = rCols, lCols
		swapped = true
	}
	idx := build.index(bCols)
	scratch := make(Tuple, l.Arity+r.Arity)
	probe.Each(func(t Tuple) bool {
		h := HashCols(t, pCols)
		for _, bi := range idx.buckets[h] {
			bt := build.tupleAt(bi)
			if !EqualOn(bt, bCols, t, pCols) {
				continue
			}
			if swapped {
				copy(scratch, t)
				copy(scratch[len(t):], bt)
			} else {
				copy(scratch, bt)
				copy(scratch[len(bt):], t)
			}
			out.Add(scratch)
		}
		return true
	})
	return out
}

// SemiJoin returns the tuples of l that join with at least one tuple of
// r on the given columns (l ⋉ r). The index over r is cached on r.
func SemiJoin(l, r *Relation, lCols, rCols []int) *Relation {
	if len(lCols) != len(rCols) {
		panic("rel: semijoin column count mismatch")
	}
	idx := r.index(rCols)
	out := NewRelation(l.Name, l.Arity)
	l.Each(func(t Tuple) bool {
		h := HashCols(t, lCols)
		for _, ri := range idx.buckets[h] {
			if EqualOn(r.tupleAt(ri), rCols, t, lCols) {
				out.Add(t)
				break
			}
		}
		return true
	})
	return out
}

// AntiJoin returns the tuples of l that join with no tuple of r on the
// given columns (l ▷ r). The index over r is cached on r.
func AntiJoin(l, r *Relation, lCols, rCols []int) *Relation {
	if len(lCols) != len(rCols) {
		panic("rel: antijoin column count mismatch")
	}
	idx := r.index(rCols)
	out := NewRelation(l.Name, l.Arity)
	l.Each(func(t Tuple) bool {
		h := HashCols(t, lCols)
		for _, ri := range idx.buckets[h] {
			if EqualOn(r.tupleAt(ri), rCols, t, lCols) {
				return true
			}
		}
		out.Add(t)
		return true
	})
	return out
}

// Product returns the Cartesian product l × r.
func Product(name string, l, r *Relation) *Relation {
	return HashJoin(name, l, r, nil, nil)
}
