package rel

import (
	"strconv"
	"strings"
)

// Tuple is an ordered list of domain values.
type Tuple []Value

// Key returns a compact string encoding of t usable as a map key.
// The encoding packs each value as 8 big-endian bytes, so it is
// injective for tuples of the same arity.
func (t Tuple) Key() string {
	b := make([]byte, 8*len(t))
	for i, v := range t {
		u := uint64(v)
		o := 8 * i
		b[o] = byte(u >> 56)
		b[o+1] = byte(u >> 48)
		b[o+2] = byte(u >> 40)
		b[o+3] = byte(u >> 32)
		b[o+4] = byte(u >> 24)
		b[o+5] = byte(u >> 16)
		b[o+6] = byte(u >> 8)
		b[o+7] = byte(u)
	}
	return string(b)
}

// Hash returns a partition-quality hash of the tuple: FNV-1a over the
// value bytes followed by an avalanche finalizer. The finalizer
// matters: without it, tuples differing in a single high byte have
// hashes with a constant 64-bit difference, so their low bits — the
// ones a mod-p partitioner uses — correlate perfectly and loads skew.
func (t Tuple) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range t {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= prime
			u >>= 8
		}
	}
	return Mix64(h)
}

// Mix64 is the murmur3 64-bit finalizer: a bijective avalanche mix
// where every input bit affects every output bit. Partitioning code
// should pass composed hash values through it before taking a modulus.
func Mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Equal reports whether t and u have the same arity and values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of t.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Project returns the tuple restricted to the given positions.
func (t Tuple) Project(cols []int) Tuple {
	out := make(Tuple, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

// Concat returns the concatenation of t and u as a fresh tuple.
func (t Tuple) Concat(u Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(u))
	out = append(out, t...)
	out = append(out, u...)
	return out
}

// ADom returns the set of domain values occurring in t.
func (t Tuple) ADom() ValueSet {
	s := make(ValueSet, len(t))
	for _, v := range t {
		s.Add(v)
	}
	return s
}

// Less imposes a total lexicographic order on same-arity tuples;
// shorter tuples sort first.
func (t Tuple) Less(u Tuple) bool {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if t[i] != u[i] {
			return t[i] < u[i]
		}
	}
	return len(t) < len(u)
}

// String renders the tuple using raw numeric values.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(int64(v), 10))
	}
	b.WriteByte(')')
	return b.String()
}

// StringWith renders the tuple using symbolic names from d.
func (t Tuple) StringWith(d *Dict) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(d.Name(v))
	}
	b.WriteByte(')')
	return b.String()
}
