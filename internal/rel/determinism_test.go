package rel

import (
	"testing"
)

// permutedFacts returns the same fact set in two different insertion
// orders.
func permutedFacts() ([]Fact, []Fact) {
	fs := []Fact{
		NewFact("R", 3, 1), NewFact("R", 1, 2), NewFact("R", 2, 3),
		NewFact("S", 9), NewFact("S", 4), NewFact("S", 7),
		NewFact("T", 5, 5, 5), NewFact("T", 1, 0, 2),
	}
	rev := make([]Fact, len(fs))
	for i, f := range fs {
		rev[len(fs)-1-i] = f
	}
	return fs, rev
}

// TestEnumerationDeterministic pins the determinism contract of
// instance serialization: the same fact set enumerates and renders
// identically regardless of insertion order or process randomization.
func TestEnumerationDeterministic(t *testing.T) {
	fwd, rev := permutedFacts()
	i1 := FromFacts(fwd...)
	i2 := FromFacts(rev...)

	if s1, s2 := i1.String(), i2.String(); s1 != s2 {
		t.Errorf("String depends on insertion order:\n%s\n%s", s1, s2)
	}

	f1, f2 := i1.Facts(), i2.Facts()
	if len(f1) != len(f2) {
		t.Fatalf("fact counts differ: %d vs %d", len(f1), len(f2))
	}
	for k := range f1 {
		if !f1[k].Equal(f2[k]) {
			t.Errorf("Facts()[%d] differs: %v vs %v", k, f1[k], f2[k])
		}
	}
	for k := 1; k < len(f1); k++ {
		if !f1[k-1].Less(f1[k]) {
			t.Errorf("Facts() not strictly ordered at %d: %v !< %v", k, f1[k-1], f1[k])
		}
	}

	// Each must agree with Facts, element for element.
	k := 0
	i1.Each(func(f Fact) bool {
		if !f.Equal(f1[k]) {
			t.Errorf("Each order diverges from Facts at %d: %v vs %v", k, f, f1[k])
		}
		k++
		return true
	})
	if k != len(f1) {
		t.Errorf("Each visited %d facts, want %d", k, len(f1))
	}

	// Repeated enumeration of the same instance is stable too.
	again := i1.Facts()
	for k := range f1 {
		if !f1[k].Equal(again[k]) {
			t.Errorf("repeated Facts() differs at %d", k)
		}
	}
}

// TestTuplesDeterministic pins Relation.Tuples to sorted order.
func TestTuplesDeterministic(t *testing.T) {
	r := NewRelation("R", 2)
	for _, vals := range [][2]Value{{3, 1}, {1, 2}, {2, 3}, {1, 1}} {
		r.Add(Tuple{vals[0], vals[1]})
	}
	ts := r.Tuples()
	for k := 1; k < len(ts); k++ {
		if !ts[k-1].Less(ts[k]) {
			t.Errorf("Tuples not strictly ordered at %d: %v !< %v", k, ts[k-1], ts[k])
		}
	}
	st := r.SortedTuples()
	if len(st) != len(ts) {
		t.Fatalf("SortedTuples length %d, Tuples length %d", len(st), len(ts))
	}
	for k := range ts {
		if !st[k].Equal(ts[k]) {
			t.Errorf("SortedTuples[%d] = %v, Tuples[%d] = %v", k, st[k], k, ts[k])
		}
	}
}
