package rel

import (
	"fmt"
	"sort"
)

// Schema maps relation names to their arities.
type Schema map[string]int

// NewSchema builds a schema from alternating name/arity pairs given as a
// map literal convenience.
func NewSchema(arities map[string]int) Schema {
	s := make(Schema, len(arities))
	for k, v := range arities {
		s[k] = v
	}
	return s
}

// Arity returns the declared arity of rel and whether rel is declared.
func (s Schema) Arity(rel string) (int, bool) {
	a, ok := s[rel]
	return a, ok
}

// Declare adds (or confirms) a relation with the given arity. It returns
// an error if rel is already declared with a different arity.
func (s Schema) Declare(rel string, arity int) error {
	if a, ok := s[rel]; ok && a != arity {
		return fmt.Errorf("rel: relation %s declared with arity %d, got %d", rel, a, arity)
	}
	s[rel] = arity
	return nil
}

// Validate checks that f conforms to the schema.
func (s Schema) Validate(f Fact) error {
	a, ok := s[f.Rel]
	if !ok {
		return fmt.Errorf("rel: unknown relation %s", f.Rel)
	}
	if a != len(f.Tuple) {
		return fmt.Errorf("rel: relation %s has arity %d, fact has %d values", f.Rel, a, len(f.Tuple))
	}
	return nil
}

// Relations returns the relation names in sorted order.
func (s Schema) Relations() []string {
	out := make([]string, 0, len(s))
	for r := range s {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// MaxArity returns the largest arity in the schema (0 for empty).
func (s Schema) MaxArity() int {
	max := 0
	for _, a := range s {
		if a > max {
			max = a
		}
	}
	//lint:allow nondet-taint max over all map values is an order-insensitive fold
	return max
}

// Clone returns a copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// AllFacts enumerates facts(U): every fact over the schema whose values
// are drawn from universe. The enumeration order is deterministic
// (relations sorted, tuples lexicographic in the order of universe).
// The number of facts is sum over relations of |universe|^arity, so this
// is only usable for small universes — exactly the regime in which the
// paper's decision procedures operate.
func (s Schema) AllFacts(universe []Value) []Fact {
	var out []Fact
	for _, r := range s.Relations() {
		a := s[r]
		if a > 0 && len(universe) == 0 {
			continue
		}
		idx := make([]int, a)
		for {
			t := make(Tuple, a)
			for i, j := range idx {
				t[i] = universe[j]
			}
			out = append(out, Fact{Rel: r, Tuple: t})
			// advance odometer
			i := a - 1
			for ; i >= 0; i-- {
				idx[i]++
				if idx[i] < len(universe) {
					break
				}
				idx[i] = 0
			}
			if i < 0 {
				break
			}
		}
	}
	return out
}
