package rel

import "testing"

func TestAbsorbNewReturnsOnlyNewTuples(t *testing.T) {
	r := NewRelation("TC", 2)
	r.Add(Tuple{1, 2})
	r.Add(Tuple{2, 3})

	o := NewRelation("Δ", 2)
	o.Add(Tuple{2, 3}) // already resident
	o.Add(Tuple{3, 4})
	o.Add(Tuple{4, 5})

	got := r.AbsorbNew(o, "ΔTC")
	if got.Name != "ΔTC" || got.Arity != 2 {
		t.Fatalf("result relation = %q/%d, want ΔTC/2", got.Name, got.Arity)
	}
	if got.Len() != 2 || !got.Contains(Tuple{3, 4}) || !got.Contains(Tuple{4, 5}) {
		t.Fatalf("new tuples = %v, want {(3,4),(4,5)}", got.Tuples())
	}
	if r.Len() != 4 {
		t.Fatalf("resident has %d tuples after absorb, want 4", r.Len())
	}
	for _, tu := range o.Tuples() {
		if !r.Contains(tu) {
			t.Fatalf("resident missing absorbed tuple %v", tu)
		}
	}
}

func TestAbsorbNewEmptyAndNil(t *testing.T) {
	r := NewRelation("R", 2)
	r.Add(Tuple{1, 2})
	if got := r.AbsorbNew(nil, "Δ"); got.Len() != 0 || got.Arity != 2 {
		t.Fatalf("AbsorbNew(nil) = %v", got)
	}
	if got := r.AbsorbNew(NewRelation("Δ", 2), "Δ"); got.Len() != 0 {
		t.Fatalf("AbsorbNew(empty) returned %d tuples", got.Len())
	}
	if r.Len() != 1 {
		t.Fatalf("resident mutated by empty absorb: %d tuples", r.Len())
	}
}

func TestAbsorbNewSurvivesTombstones(t *testing.T) {
	o := NewRelation("Δ", 1)
	for v := 0; v < 8; v++ {
		o.Add(Tuple{Value(v)})
	}
	o.Remove(Tuple{3})
	o.Remove(Tuple{6})

	r := NewRelation("R", 1)
	r.Add(Tuple{0})
	got := r.AbsorbNew(o, "new")
	if got.Len() != 5 || r.Len() != 6 {
		t.Fatalf("new=%d resident=%d, want 5 and 6", got.Len(), r.Len())
	}
	if got.Contains(Tuple{3}) || got.Contains(Tuple{6}) {
		t.Fatalf("tombstoned tuples resurfaced: %v", got.Tuples())
	}
}

func TestFoldDelta(t *testing.T) {
	i := NewInstance()
	i.Add(NewFact("TC", 1, 2))
	i.Add(NewFact("ΔC", 1, 2)) // duplicate of resident
	i.Add(NewFact("ΔC", 2, 3))

	newTuples := i.FoldDelta("ΔC", "TC", 2)
	if newTuples.Len() != 1 || !newTuples.Contains(Tuple{2, 3}) {
		t.Fatalf("new tuples = %v, want {(2,3)}", newTuples.Tuples())
	}
	if i.Relation("ΔC") != nil {
		t.Fatalf("delta relation still present after fold")
	}
	tc := i.Relation("TC")
	if tc.Len() != 2 || !tc.Contains(Tuple{2, 3}) {
		t.Fatalf("resident TC = %v, want {(1,2),(2,3)}", tc.Tuples())
	}
}

func TestFoldDeltaCreatesResident(t *testing.T) {
	i := NewInstance()
	i.Add(NewFact("ΔE", 7, 8))
	newTuples := i.FoldDelta("ΔE", "E", 2)
	if newTuples.Len() != 1 {
		t.Fatalf("new tuples = %v, want one", newTuples.Tuples())
	}
	e := i.Relation("E")
	if e == nil || e.Len() != 1 || e.Arity != 2 || !e.Contains(Tuple{7, 8}) {
		t.Fatalf("resident E not created correctly: %v", e)
	}
}

func TestFoldDeltaMissingDelta(t *testing.T) {
	i := NewInstance()
	got := i.FoldDelta("Δnope", "R", 3)
	if got.Len() != 0 || got.Arity != 3 || got.Name != "Δnope" {
		t.Fatalf("missing delta fold = %q/%d len %d", got.Name, got.Arity, got.Len())
	}
	if i.Relation("R") != nil {
		t.Fatalf("empty fold materialized a resident relation")
	}
}

func TestSetRelationAsBindsWithoutCopy(t *testing.T) {
	i := NewInstance()
	r := NewRelation("TC", 2)
	r.Add(Tuple{1, 2})
	i.SetRelationAs("Δ", r)
	if i.Relation("Δ") != r {
		t.Fatalf("SetRelationAs copied instead of aliasing")
	}
	if i.Relation("TC") != nil {
		t.Fatalf("SetRelationAs leaked the relation under its own name")
	}
}

func TestRemoveRelation(t *testing.T) {
	i := NewInstance()
	i.Add(NewFact("R", 1))
	got := i.RemoveRelation("R")
	if got == nil || got.Len() != 1 {
		t.Fatalf("RemoveRelation returned %v", got)
	}
	if i.Relation("R") != nil || i.RemoveRelation("R") != nil {
		t.Fatalf("relation survived removal")
	}
}
