package rel

import "sort"

// Components splits an instance into its connected components in the
// sense of Section 5.2.2: J is a component of I when J ⊆ I, J ≠ ∅,
// adom(J) ∩ adom(I∖J) = ∅, and J is minimal with this property.
// Equivalently: group facts by the connected components of the graph on
// adom(I) in which the values of each fact form a clique.
//
// Facts of arity 0 share no domain values with anything; each such fact
// forms its own component.
func Components(i *Instance) []*Instance {
	// Union-find over domain values.
	uf := newUnionFind()
	i.Each(func(f Fact) bool {
		if len(f.Tuple) == 0 {
			return true
		}
		first := f.Tuple[0]
		uf.add(first)
		for _, v := range f.Tuple[1:] {
			uf.add(v)
			uf.union(first, v)
		}
		return true
	})

	byRoot := make(map[Value]*Instance)
	var zeroArity []*Instance
	i.Each(func(f Fact) bool {
		if len(f.Tuple) == 0 {
			zeroArity = append(zeroArity, FromFacts(f))
			return true
		}
		root := uf.find(f.Tuple[0])
		inst, ok := byRoot[root]
		if !ok {
			inst = NewInstance()
			byRoot[root] = inst
		}
		inst.Add(f)
		return true
	})

	roots := make([]Value, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(a, b int) bool { return roots[a] < roots[b] })
	out := make([]*Instance, 0, len(byRoot)+len(zeroArity))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	out = append(out, zeroArity...)
	return out
}

// unionFind is a classic disjoint-set forest over Values with path
// halving and union by size.
type unionFind struct {
	parent map[Value]Value
	size   map[Value]int
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[Value]Value), size: make(map[Value]int)}
}

func (u *unionFind) add(v Value) {
	if _, ok := u.parent[v]; !ok {
		u.parent[v] = v
		u.size[v] = 1
	}
}

func (u *unionFind) find(v Value) Value {
	for u.parent[v] != v {
		u.parent[v] = u.parent[u.parent[v]]
		v = u.parent[v]
	}
	return v
}

func (u *unionFind) union(a, b Value) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}
