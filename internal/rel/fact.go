package rel

// Fact is a relation name applied to a tuple of domain values, e.g.
// R(a, b). Facts are the unit of distribution in the whole library:
// distribution policies map facts to servers, transducer networks
// broadcast facts, and MPC load is counted in facts.
type Fact struct {
	Rel   string
	Tuple Tuple
}

// NewFact builds a fact from a relation name and values.
func NewFact(rel string, vals ...Value) Fact {
	return Fact{Rel: rel, Tuple: Tuple(vals)}
}

// Key returns a map key identifying the fact (relation name + tuple).
func (f Fact) Key() string {
	return f.Rel + "\x00" + f.Tuple.Key()
}

// Hash returns a partition-quality hash of the fact.
func (f Fact) Hash() uint64 {
	h := f.Tuple.Hash()
	for i := 0; i < len(f.Rel); i++ {
		h ^= uint64(f.Rel[i])
		h *= 1099511628211
	}
	return h
}

// Equal reports whether f and g denote the same fact.
func (f Fact) Equal(g Fact) bool {
	return f.Rel == g.Rel && f.Tuple.Equal(g.Tuple)
}

// Clone returns a deep copy of f.
func (f Fact) Clone() Fact {
	return Fact{Rel: f.Rel, Tuple: f.Tuple.Clone()}
}

// ADom returns adom(f), the set of domain values occurring in f.
func (f Fact) ADom() ValueSet { return f.Tuple.ADom() }

// String renders the fact with raw numeric values.
func (f Fact) String() string { return f.Rel + f.Tuple.String() }

// StringWith renders the fact with symbolic names from d.
func (f Fact) StringWith(d *Dict) string { return f.Rel + f.Tuple.StringWith(d) }

// Less orders facts by relation name, then tuple, for deterministic
// output in reports and tests.
func (f Fact) Less(g Fact) bool {
	if f.Rel != g.Rel {
		return f.Rel < g.Rel
	}
	return f.Tuple.Less(g.Tuple)
}

// SortFacts sorts fs in place by (relation, tuple).
func SortFacts(fs []Fact) {
	sortFactsSlice(fs)
}
