// Package rel provides the relational substrate underlying the whole
// library: domain values, tuples, facts, relations, database instances,
// and a small positional relational algebra.
//
// The design follows Section 2 of Neven (PODS 2016): an infinite domain
// dom, a database schema of relation names with arities, and instances
// as finite sets of facts. Domain values are interned integers
// (see Dict) so that tuple hashing and MPC load accounting stay cheap
// even for instances with millions of facts.
package rel

import (
	"fmt"
	"sort"
)

// Value is an element of the (conceptually infinite) domain dom.
// Values are plain int64s; symbolic names used in examples and tests are
// managed by a Dict. Values obtained from a Dict are always >= 0;
// negative values are free for callers that synthesize data directly.
type Value int64

// ValueSet is a finite set of domain values, used for active domains.
type ValueSet map[Value]struct{}

// NewValueSet returns a set containing the given values.
func NewValueSet(vs ...Value) ValueSet {
	s := make(ValueSet, len(vs))
	for _, v := range vs {
		s[v] = struct{}{}
	}
	return s
}

// Add inserts v into the set.
func (s ValueSet) Add(v Value) { s[v] = struct{}{} }

// Contains reports whether v is in the set.
func (s ValueSet) Contains(v Value) bool {
	_, ok := s[v]
	return ok
}

// AddAll inserts every value of t into s.
func (s ValueSet) AddAll(t ValueSet) {
	for v := range t {
		s[v] = struct{}{}
	}
}

// Union returns a new set containing the values of both s and t.
func (s ValueSet) Union(t ValueSet) ValueSet {
	u := make(ValueSet, len(s)+len(t))
	u.AddAll(s)
	u.AddAll(t)
	return u
}

// Intersects reports whether s and t share at least one value.
func (s ValueSet) Intersects(t ValueSet) bool {
	if len(t) < len(s) {
		s, t = t, s
	}
	for v := range s {
		if t.Contains(v) {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every value of s is in t.
func (s ValueSet) SubsetOf(t ValueSet) bool {
	for v := range s {
		if !t.Contains(v) {
			return false
		}
	}
	return true
}

// Sorted returns the values in increasing order.
func (s ValueSet) Sorted() []Value {
	out := make([]Value, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Dict interns symbolic domain-value names. It makes examples and tests
// readable ("a", "b", "c") while the engines work on integer Values.
// A Dict is not safe for concurrent mutation.
type Dict struct {
	byName map[string]Value
	names  []string
}

// NewDict returns an empty interner.
func NewDict() *Dict {
	return &Dict{byName: make(map[string]Value)}
}

// Value interns name and returns its Value, allocating a fresh one on
// first use.
func (d *Dict) Value(name string) Value {
	if v, ok := d.byName[name]; ok {
		return v
	}
	v := Value(len(d.names))
	d.byName[name] = v
	d.names = append(d.names, name)
	return v
}

// Values interns each name in order.
func (d *Dict) Values(names ...string) []Value {
	out := make([]Value, len(names))
	for i, n := range names {
		out[i] = d.Value(n)
	}
	return out
}

// Lookup returns the Value for name without interning it.
func (d *Dict) Lookup(name string) (Value, bool) {
	v, ok := d.byName[name]
	return v, ok
}

// Name returns the symbolic name of v, or a numeric rendering if v was
// never interned through this Dict.
func (d *Dict) Name(v Value) string {
	if v >= 0 && int(v) < len(d.names) {
		return d.names[v]
	}
	return fmt.Sprintf("#%d", int64(v))
}

// Len reports how many names have been interned.
func (d *Dict) Len() int { return len(d.names) }
