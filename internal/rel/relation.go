package rel

import "sort"

// Relation is a named, fixed-arity set of tuples.
type Relation struct {
	Name  string
	Arity int
	set   map[string]Tuple
}

// NewRelation returns an empty relation.
func NewRelation(name string, arity int) *Relation {
	return &Relation{Name: name, Arity: arity, set: make(map[string]Tuple)}
}

// Add inserts t, reporting whether it was new. Add panics if the arity
// is wrong: arity errors are programming errors, not data errors.
func (r *Relation) Add(t Tuple) bool {
	if len(t) != r.Arity {
		panic("rel: arity mismatch in " + r.Name)
	}
	k := t.Key()
	if _, ok := r.set[k]; ok {
		return false
	}
	r.set[k] = t
	return true
}

// Contains reports whether t is in the relation.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.set[t.Key()]
	return ok
}

// Remove deletes t, reporting whether it was present.
func (r *Relation) Remove(t Tuple) bool {
	k := t.Key()
	if _, ok := r.set[k]; !ok {
		return false
	}
	delete(r.set, k)
	return true
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.set) }

// Each calls fn for every tuple in unspecified order; fn must not
// mutate the relation. Iteration stops early if fn returns false.
func (r *Relation) Each(fn func(Tuple) bool) {
	for _, t := range r.set {
		if !fn(t) {
			return
		}
	}
}

// Tuples returns all tuples in deterministic lexicographic order.
// Materialized enumeration feeds serialization and distribution, so it
// must be byte-stable across runs; order-free single-pass access for
// hot local computation is Each.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, len(r.set))
	for _, t := range r.set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// SortedTuples returns all tuples in lexicographic order. Tuples
// already enumerates in that order; this name is kept for callers that
// want to state the ordering explicitly.
func (r *Relation) SortedTuples() []Tuple {
	return r.Tuples()
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.Name, r.Arity)
	for k, t := range r.set {
		out.set[k] = t
	}
	return out
}

// UnionWith adds every tuple of o into r; o must have the same arity.
// It returns the number of tuples that were new.
func (r *Relation) UnionWith(o *Relation) int {
	if r.Arity != o.Arity && o.Len() > 0 {
		panic("rel: arity mismatch in union of " + r.Name)
	}
	added := 0
	for k, t := range o.set {
		if _, ok := r.set[k]; !ok {
			r.set[k] = t
			added++
		}
	}
	return added
}

// Equal reports whether r and o contain exactly the same tuples.
func (r *Relation) Equal(o *Relation) bool {
	if r.Len() != o.Len() || r.Arity != o.Arity {
		return false
	}
	for k := range r.set {
		if _, ok := o.set[k]; !ok {
			return false
		}
	}
	return true
}

// ADom returns the set of values occurring in the relation.
func (r *Relation) ADom() ValueSet {
	s := make(ValueSet)
	for _, t := range r.set {
		for _, v := range t {
			s.Add(v)
		}
	}
	return s
}
