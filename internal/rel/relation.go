package rel

import "sort"

// Relation is a named, fixed-arity set of tuples.
//
// The implementation is an open-addressing hash set over a flat value
// arena: tuple i occupies arena[i*Arity : (i+1)*Arity], hashes[i]
// caches its Tuple.Hash, and slots is a power-of-two linear-probing
// table mapping hash positions to tuple indices. Membership is decided
// by the cached 64-bit hash first and verified with Tuple.Equal, so no
// per-tuple string key or per-tuple map entry is ever allocated.
// Removed tuples are tombstoned (dead[i]) and compacted on the next
// rehash; compaction copies live values into a fresh arena, so Tuple
// views handed out earlier stay valid.
//
// Enumeration contract: Each visits tuples in unspecified (insertion)
// order; Tuples returns the lexicographically sorted enumeration and
// caches it until the next mutation, so repeated serialization of an
// unchanged relation does not re-sort.
type Relation struct {
	Name  string
	Arity int

	arena  []Value  // flat tuple storage
	hashes []uint64 // cached Tuple.Hash, parallel to stored tuples
	dead   []bool   // tombstoned tuples awaiting compaction
	slots  []int32  // open-addressing table: index, slotEmpty, or slotTomb
	live   int      // live (non-dead) tuples
	tombs  int      // tombstoned table slots

	sorted []Tuple               // cached sorted enumeration; nil = invalid
	idx    map[uint64]*joinIndex // cached join indexes; nil = none
}

const (
	slotEmpty int32 = -1
	slotTomb  int32 = -2
)

// tableSizeFor returns the smallest power-of-two table that holds n
// entries below the ~0.75 load-factor ceiling.
func tableSizeFor(n int) int {
	size := 8
	for size*3 < n*4 {
		size *= 2
	}
	return size
}

func newSlots(size int) []int32 {
	s := make([]int32, size)
	for i := range s {
		s[i] = slotEmpty
	}
	return s
}

// NewRelation returns an empty relation.
func NewRelation(name string, arity int) *Relation {
	return &Relation{Name: name, Arity: arity}
}

// NewRelationSize returns an empty relation pre-sized to hold size
// tuples without growing.
func NewRelationSize(name string, arity, size int) *Relation {
	r := &Relation{Name: name, Arity: arity}
	if size > 0 {
		r.arena = make([]Value, 0, size*arity)
		r.hashes = make([]uint64, 0, size)
		r.dead = make([]bool, 0, size)
		r.slots = newSlots(tableSizeFor(size))
	}
	return r
}

// tupleAt returns a view of stored tuple i. The view aliases the arena;
// tuples are immutable once added, so the view stays valid across
// growth and compaction (both copy into fresh storage).
func (r *Relation) tupleAt(i int32) Tuple {
	off := int(i) * r.Arity
	return Tuple(r.arena[off : off+r.Arity : off+r.Arity])
}

// mutated invalidates enumeration and join-index caches.
func (r *Relation) mutated() {
	r.sorted = nil
	r.idx = nil
}

// inserted records a successful insert of stored tuple i: the sorted
// enumeration is invalid, but cached join indexes stay live — the new
// tuple is appended to their buckets instead of rebuilding. This is
// what keeps repeated delta joins against a growing resident relation
// at O(|Δ|) per round: removal and compaction still drop the caches
// (mutated / rehash), so buckets never hold dead entries.
func (r *Relation) inserted(i int32) {
	r.sorted = nil
	for _, ji := range r.idx {
		h := HashCols(r.tupleAt(i), ji.cols)
		ji.buckets[h] = append(ji.buckets[h], i)
	}
}

// find returns the stored index of the tuple with hash h equal to t,
// or -1 if absent.
func (r *Relation) find(h uint64, t Tuple) int32 {
	if len(r.slots) == 0 {
		return -1
	}
	mask := uint64(len(r.slots) - 1)
	for s := h & mask; ; s = (s + 1) & mask {
		v := r.slots[s]
		if v == slotEmpty {
			return -1
		}
		if v >= 0 && r.hashes[v] == h && r.tupleAt(v).Equal(t) {
			return v
		}
	}
}

// insert adds t (copying its values into the arena) under hash h,
// reporting whether it was new.
func (r *Relation) insert(h uint64, t Tuple) bool {
	if len(r.slots) == 0 || (r.live+r.tombs+1)*4 > len(r.slots)*3 {
		r.rehash(r.live + 1)
	}
	mask := uint64(len(r.slots) - 1)
	reuse := -1
	s := h & mask
	for {
		v := r.slots[s]
		if v == slotEmpty {
			break
		}
		if v == slotTomb {
			if reuse < 0 {
				reuse = int(s)
			}
		} else if r.hashes[v] == h && r.tupleAt(v).Equal(t) {
			return false
		}
		s = (s + 1) & mask
	}
	i := int32(len(r.hashes))
	r.arena = append(r.arena, t...)
	r.hashes = append(r.hashes, h)
	r.dead = append(r.dead, false)
	if reuse >= 0 {
		r.slots[reuse] = i
		r.tombs--
	} else {
		r.slots[s] = i
	}
	r.live++
	r.inserted(i)
	return true
}

// remove deletes the tuple with hash h equal to t, reporting whether it
// was present.
func (r *Relation) remove(h uint64, t Tuple) bool {
	if len(r.slots) == 0 {
		return false
	}
	mask := uint64(len(r.slots) - 1)
	for s := h & mask; ; s = (s + 1) & mask {
		v := r.slots[s]
		if v == slotEmpty {
			return false
		}
		if v >= 0 && r.hashes[v] == h && r.tupleAt(v).Equal(t) {
			r.slots[s] = slotTomb
			r.tombs++
			r.dead[v] = true
			r.live--
			r.mutated()
			if r.tombs*4 > len(r.slots) {
				r.rehash(r.live)
			}
			return true
		}
	}
}

// rehash rebuilds the table to hold at least n tuples, compacting
// tombstoned tuples out of the arena.
func (r *Relation) rehash(n int) {
	if n < r.live {
		n = r.live
	}
	if r.live != len(r.hashes) {
		// Compaction renumbers the stored tuple indices, so cached join
		// indexes (which hold those indices) must be dropped here — not
		// every caller reaches mutated(): grow() never does, and a
		// duplicate Add rehashes before discovering it inserts nothing.
		// The sorted cache survives compaction: its tuple views alias
		// the old arena, which stays valid, and the tuple set is
		// unchanged.
		r.idx = nil
		arena := make([]Value, 0, n*r.Arity)
		hashes := make([]uint64, 0, n)
		for i := range r.hashes {
			if r.dead[i] {
				continue
			}
			arena = append(arena, r.tupleAt(int32(i))...)
			hashes = append(hashes, r.hashes[i])
		}
		r.arena = arena
		r.hashes = hashes
		r.dead = make([]bool, len(hashes), n)
	}
	size := tableSizeFor(n)
	slots := newSlots(size)
	mask := uint64(size - 1)
	for i, h := range r.hashes {
		s := h & mask
		for slots[s] != slotEmpty {
			s = (s + 1) & mask
		}
		slots[s] = int32(i)
	}
	r.slots = slots
	r.tombs = 0
}

// grow pre-sizes the table and tuple storage for n total live tuples.
func (r *Relation) grow(n int) {
	if tableSizeFor(n) > len(r.slots) {
		r.rehash(n)
	}
	// The storage hints apply even when the table is already large
	// enough (e.g. after removals), or EnsureRelationSize's pre-sizing
	// contract would silently degrade to incremental appends. A
	// compacting rehash above already sized them for n. Growth is at
	// least geometric so a hint that creeps up call after call (the
	// shape of per-round inbox sizing) keeps amortized-O(1) appends
	// instead of copying on every call.
	if cap(r.arena) < n*r.Arity {
		arena := make([]Value, len(r.arena), geomCap(n*r.Arity, cap(r.arena)))
		copy(arena, r.arena)
		r.arena = arena
	}
	if cap(r.hashes) < n {
		m := geomCap(n, cap(r.hashes))
		hashes := make([]uint64, len(r.hashes), m)
		copy(hashes, r.hashes)
		r.hashes = hashes
		dead := make([]bool, len(r.dead), m)
		copy(dead, r.dead)
		r.dead = dead
	}
}

// geomCap returns the capacity to grow to for a request of n: at least
// n, and at least double the current capacity.
func geomCap(n, cur int) int {
	if d := 2 * cur; n < d {
		return d
	}
	return n
}

// Add inserts t, reporting whether it was new. Add panics if the arity
// is wrong: arity errors are programming errors, not data errors.
func (r *Relation) Add(t Tuple) bool {
	if len(t) != r.Arity {
		panic("rel: arity mismatch in " + r.Name)
	}
	return r.insert(t.Hash(), t)
}

// Contains reports whether t is in the relation.
func (r *Relation) Contains(t Tuple) bool {
	return r.find(t.Hash(), t) >= 0
}

// Remove deletes t, reporting whether it was present.
func (r *Relation) Remove(t Tuple) bool {
	return r.remove(t.Hash(), t)
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return r.live }

// Each calls fn for every tuple in unspecified order; fn must not
// mutate the relation. Iteration stops early if fn returns false.
func (r *Relation) Each(fn func(Tuple) bool) {
	for i := range r.hashes {
		if r.dead[i] {
			continue
		}
		if !fn(r.tupleAt(int32(i))) {
			return
		}
	}
}

// Tuples returns all tuples in deterministic lexicographic order.
// Materialized enumeration feeds serialization and distribution, so it
// must be byte-stable across runs; order-free single-pass access for
// hot local computation is Each. The sorted enumeration is cached until
// the next mutation; callers must not modify the returned slice's
// elements (appending is safe: the slice is capacity-clipped).
func (r *Relation) Tuples() []Tuple {
	if r.sorted == nil {
		out := make([]Tuple, 0, r.live)
		r.Each(func(t Tuple) bool {
			out = append(out, t)
			return true
		})
		sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
		r.sorted = out
	}
	return r.sorted[:len(r.sorted):len(r.sorted)]
}

// SortedTuples returns all tuples in lexicographic order. Tuples
// already enumerates in that order; this name is kept for callers that
// want to state the ordering explicitly.
func (r *Relation) SortedTuples() []Tuple {
	return r.Tuples()
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	return &Relation{
		Name:   r.Name,
		Arity:  r.Arity,
		arena:  append([]Value(nil), r.arena...),
		hashes: append([]uint64(nil), r.hashes...),
		dead:   append([]bool(nil), r.dead...),
		slots:  append([]int32(nil), r.slots...),
		live:   r.live,
		tombs:  r.tombs,
	}
}

// UnionWith adds every tuple of o into r; o must have the same arity.
// It returns the number of tuples that were new. Cached hashes of o are
// reused, and r is pre-grown to the combined size.
func (r *Relation) UnionWith(o *Relation) int {
	if r.Arity != o.Arity && o.Len() > 0 {
		panic("rel: arity mismatch in union of " + r.Name)
	}
	if o.live == 0 {
		return 0
	}
	r.grow(r.live + o.live)
	added := 0
	for i := range o.hashes {
		if o.dead[i] {
			continue
		}
		if r.insert(o.hashes[i], o.tupleAt(int32(i))) {
			added++
		}
	}
	return added
}

// AbsorbNew adds every tuple of o into r (like UnionWith) and returns
// the genuinely new ones as a fresh relation named name. Cached hashes
// of o are reused and both r and the result are pre-sized, so folding
// a small delta into a large resident relation costs O(|o|), not
// O(|r|) — the operation behind delta rounds' receiver-side fold.
// A nil or empty o returns an empty relation of r's arity.
func (r *Relation) AbsorbNew(o *Relation, name string) *Relation {
	if o == nil || o.live == 0 {
		return NewRelation(name, r.Arity)
	}
	if r.Arity != o.Arity {
		panic("rel: arity mismatch absorbing into " + r.Name)
	}
	out := NewRelationSize(name, r.Arity, o.live)
	r.grow(r.live + o.live)
	for i := range o.hashes {
		if o.dead[i] {
			continue
		}
		t := o.tupleAt(int32(i))
		if r.insert(o.hashes[i], t) {
			out.insert(o.hashes[i], t)
		}
	}
	return out
}

// Equal reports whether r and o contain exactly the same tuples.
func (r *Relation) Equal(o *Relation) bool {
	if r.Len() != o.Len() || r.Arity != o.Arity {
		return false
	}
	for i := range r.hashes {
		if r.dead[i] {
			continue
		}
		if o.find(r.hashes[i], r.tupleAt(int32(i))) < 0 {
			return false
		}
	}
	return true
}

// ADom returns the set of values occurring in the relation.
func (r *Relation) ADom() ValueSet {
	s := make(ValueSet)
	r.Each(func(t Tuple) bool {
		for _, v := range t {
			s.Add(v)
		}
		return true
	})
	return s
}
