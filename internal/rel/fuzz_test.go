package rel

import (
	"sort"
	"testing"
)

// FuzzRelation drives the open-addressed tuple table through an
// arbitrary Add/Remove/Contains sequence decoded from the fuzz input
// and checks it against a plain map-based set after every operation.
// The value domain is kept tiny (7 values, arity 2 → 49 tuples) so
// the fuzzer constantly revisits slots and exercises the tombstone
// and rehash paths that a sparse domain would never hit.
func FuzzRelation(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{0, 0, 1, 0, 2, 0, 1, 1}) // add/remove churn on one tuple
	f.Add([]byte{0, 9, 0, 18, 0, 27, 0, 36, 1, 9, 1, 18, 0, 9})
	f.Add([]byte{255, 254, 253, 252, 251, 250, 249, 248, 247, 246, 245, 244})
	f.Fuzz(func(t *testing.T, ops []byte) {
		r := NewRelation("F", 2)
		ref := map[string]Tuple{}
		for i := 0; i+1 < len(ops); i += 2 {
			op := ops[i] % 3
			v := ops[i+1]
			tup := Tuple{Value(v % 7), Value((v / 7) % 7)}
			key := tup.Key()
			_, inRef := ref[key]
			switch op {
			case 0:
				if got := r.Add(tup); got != !inRef {
					t.Fatalf("op %d: Add(%v) = %v, reference says %v", i, tup, got, !inRef)
				}
				ref[key] = tup
			case 1:
				if got := r.Remove(tup); got != inRef {
					t.Fatalf("op %d: Remove(%v) = %v, reference says %v", i, tup, got, inRef)
				}
				delete(ref, key)
			case 2:
				if got := r.Contains(tup); got != inRef {
					t.Fatalf("op %d: Contains(%v) = %v, reference says %v", i, tup, got, inRef)
				}
			}
			if r.Len() != len(ref) {
				t.Fatalf("op %d: Len() = %d, reference has %d", i, r.Len(), len(ref))
			}
		}

		// Final-state agreement: contents, iteration, sorted order,
		// and the clone/equal pair.
		keys := make([]string, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var gotKeys []string
		for _, tup := range r.SortedTuples() {
			gotKeys = append(gotKeys, tup.Key())
		}
		if len(gotKeys) != len(keys) {
			t.Fatalf("SortedTuples has %d tuples, reference %d", len(gotKeys), len(keys))
		}
		for i := range keys {
			if gotKeys[i] != keys[i] {
				t.Fatalf("tuple %d: %q vs reference %q", i, gotKeys[i], keys[i])
			}
		}
		if cl := r.Clone(); !cl.Equal(r) {
			t.Fatal("Clone not Equal to original")
		}
		rebuilt := NewRelation("F", 2)
		for _, tup := range ref {
			rebuilt.Add(tup)
		}
		if !rebuilt.Equal(r) {
			t.Fatal("relation differs from rebuild of reference set")
		}
	})
}
