package rel

import (
	"fmt"
	"strings"
)

// ParseFact parses a symbolic fact like "R(a, b)" or "Ok()" against the
// given Dict, interning value names as needed. Relation names and value
// names are arbitrary identifier-like strings without commas or parens.
func ParseFact(d *Dict, s string) (Fact, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return Fact{}, fmt.Errorf("rel: malformed fact %q", s)
	}
	rel := strings.TrimSpace(s[:open])
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	if rel == "" {
		return Fact{}, fmt.Errorf("rel: malformed fact %q", s)
	}
	if inner == "" {
		return Fact{Rel: rel}, nil
	}
	parts := strings.Split(inner, ",")
	t := make(Tuple, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return Fact{}, fmt.Errorf("rel: empty value in fact %q", s)
		}
		t[i] = d.Value(p)
	}
	return Fact{Rel: rel, Tuple: t}, nil
}

// MustFact is ParseFact that panics on error; for tests and examples.
func MustFact(d *Dict, s string) Fact {
	f, err := ParseFact(d, s)
	if err != nil {
		panic(err)
	}
	return f
}

// MustInstance builds an instance from symbolic facts; for tests and
// examples: MustInstance(d, "R(a,b)", "S(b,c)").
func MustInstance(d *Dict, facts ...string) *Instance {
	i := NewInstance()
	for _, s := range facts {
		i.Add(MustFact(d, s))
	}
	return i
}
