package rel

import (
	"sort"
	"strings"
)

// Instance is a database instance: a finite set of facts, organized per
// relation. The zero value is not usable; call NewInstance.
type Instance struct {
	rels map[string]*Relation
}

// NewInstance returns an empty instance.
func NewInstance() *Instance {
	return &Instance{rels: make(map[string]*Relation)}
}

// NewInstanceSize returns an empty instance pre-sized for n relations.
func NewInstanceSize(n int) *Instance {
	return &Instance{rels: make(map[string]*Relation, n)}
}

// FromFacts builds an instance containing exactly the given facts.
func FromFacts(fs ...Fact) *Instance {
	i := NewInstance()
	for _, f := range fs {
		i.Add(f)
	}
	return i
}

// Add inserts f, creating its relation on first use. It reports whether
// the fact was new.
func (i *Instance) Add(f Fact) bool {
	r, ok := i.rels[f.Rel]
	if !ok {
		r = NewRelation(f.Rel, len(f.Tuple))
		i.rels[f.Rel] = r
	}
	return r.Add(f.Tuple)
}

// AddAll inserts every fact of j into i, returning how many were new.
func (i *Instance) AddAll(j *Instance) int {
	added := 0
	for name, rj := range j.rels {
		ri, ok := i.rels[name]
		if !ok {
			i.rels[name] = rj.Clone()
			added += rj.Len()
			continue
		}
		added += ri.UnionWith(rj)
	}
	return added
}

// Contains reports whether f is in the instance.
func (i *Instance) Contains(f Fact) bool {
	r, ok := i.rels[f.Rel]
	return ok && r.Contains(f.Tuple)
}

// Remove deletes f, reporting whether it was present.
func (i *Instance) Remove(f Fact) bool {
	r, ok := i.rels[f.Rel]
	return ok && r.Remove(f.Tuple)
}

// Relation returns the named relation, or nil if the instance holds no
// tuples for it.
func (i *Instance) Relation(name string) *Relation {
	return i.rels[name]
}

// EnsureRelation returns the named relation, creating an empty one with
// the given arity if absent.
func (i *Instance) EnsureRelation(name string, arity int) *Relation {
	r, ok := i.rels[name]
	if !ok {
		r = NewRelation(name, arity)
		i.rels[name] = r
	}
	return r
}

// EnsureRelationSize is EnsureRelation with a capacity hint: an absent
// relation is created pre-sized for size tuples, and an existing one is
// pre-grown to hold size more tuples without rehashing.
func (i *Instance) EnsureRelationSize(name string, arity, size int) *Relation {
	r, ok := i.rels[name]
	if !ok {
		r = NewRelationSize(name, arity, size)
		i.rels[name] = r
		return r
	}
	r.grow(r.live + size)
	return r
}

// SetRelation installs (replaces) a relation wholesale.
func (i *Instance) SetRelation(r *Relation) { i.rels[r.Name] = r }

// SetRelationAs installs r under an explicit name, regardless of
// r.Name. It exists for read-only views that bind a shared relation
// under a role name (e.g. the semi-naive Δ binding) without cloning
// it; evaluation reads relations by instance key, never by r.Name.
func (i *Instance) SetRelationAs(name string, r *Relation) { i.rels[name] = r }

// RemoveRelation deletes the named relation wholesale and returns it
// (nil if absent).
func (i *Instance) RemoveRelation(name string) *Relation {
	r := i.rels[name]
	delete(i.rels, name)
	return r
}

// FoldDelta folds the relation named delta into the resident relation
// full — creating the resident with the given arity if absent —
// removes delta from the instance, and returns the genuinely-new
// tuples as a relation named delta. A missing or empty delta folds as
// empty. This is the receiver side of a delta round: the shipped Δ
// fragment disappears into the resident full copy, and the returned
// sub-delta seeds the next derivation step.
func (i *Instance) FoldDelta(delta, full string, arity int) *Relation {
	d := i.RemoveRelation(delta)
	if d == nil || d.Len() == 0 {
		return NewRelation(delta, arity)
	}
	f := i.EnsureRelationSize(full, arity, d.Len())
	return f.AbsorbNew(d, delta)
}

// RelationNames returns the names of nonempty relations, sorted.
func (i *Instance) RelationNames() []string {
	out := make([]string, 0, len(i.rels))
	for name, r := range i.rels {
		if r.Len() > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the total number of facts.
func (i *Instance) Len() int {
	n := 0
	for _, r := range i.rels {
		n += r.Len()
	}
	return n
}

// IsEmpty reports whether the instance holds no facts.
func (i *Instance) IsEmpty() bool { return i.Len() == 0 }

// Facts returns every fact in deterministic (relation, tuple) order.
// Instance-level enumeration is the serialization and routing path —
// experiment output, transducer message order, MPC initial placement —
// so it must be byte-stable across runs; unordered per-relation access
// for hot local computation is Relation.Each.
func (i *Instance) Facts() []Fact {
	out := make([]Fact, 0, i.Len())
	i.Each(func(f Fact) bool {
		out = append(out, f)
		return true
	})
	return out
}

// SortedFacts returns every fact ordered by (relation, tuple). Facts
// already enumerates in that order; this name is kept for callers that
// want to state the ordering explicitly.
func (i *Instance) SortedFacts() []Fact {
	return i.Facts()
}

// Each calls fn for every fact in deterministic (relation, tuple)
// order; iteration stops if fn returns false.
func (i *Instance) Each(fn func(Fact) bool) {
	for _, name := range i.RelationNames() {
		for _, t := range i.rels[name].Tuples() {
			if !fn(Fact{Rel: name, Tuple: t}) {
				return
			}
		}
	}
}

// ADom returns adom(I), the set of values occurring in the instance.
func (i *Instance) ADom() ValueSet {
	s := make(ValueSet)
	for _, r := range i.rels {
		r.Each(func(t Tuple) bool {
			for _, v := range t {
				s.Add(v)
			}
			return true
		})
	}
	return s
}

// Clone returns a deep copy.
func (i *Instance) Clone() *Instance {
	out := NewInstanceSize(len(i.rels))
	for name, r := range i.rels {
		out.rels[name] = r.Clone()
	}
	return out
}

// Union returns a fresh instance with the facts of both i and j.
func (i *Instance) Union(j *Instance) *Instance {
	out := i.Clone()
	out.AddAll(j)
	return out
}

// Equal reports whether i and j contain exactly the same facts.
func (i *Instance) Equal(j *Instance) bool {
	if i.Len() != j.Len() {
		return false
	}
	for name, r := range i.rels {
		if r.Len() == 0 {
			continue
		}
		ro, ok := j.rels[name]
		if !ok || !r.Equal(ro) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every fact of i is in j.
func (i *Instance) SubsetOf(j *Instance) bool {
	ok := true
	i.Each(func(f Fact) bool {
		if !j.Contains(f) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Induced returns I|C = { f in I | adom(f) ⊆ C }, the subinstance
// induced by the value set C (Lemma 5.7 of the paper).
func (i *Instance) Induced(c ValueSet) *Instance {
	out := NewInstance()
	i.Each(func(f Fact) bool {
		if f.ADom().SubsetOf(c) {
			out.Add(f)
		}
		return true
	})
	return out
}

// Filter returns the subinstance of facts satisfying keep.
func (i *Instance) Filter(keep func(Fact) bool) *Instance {
	out := NewInstance()
	i.Each(func(f Fact) bool {
		if keep(f) {
			out.Add(f)
		}
		return true
	})
	return out
}

// String renders the instance as a sorted, comma-separated fact list
// with raw numeric values.
func (i *Instance) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for k, f := range i.SortedFacts() {
		if k > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.String())
	}
	b.WriteByte('}')
	return b.String()
}

// StringWith renders the instance with symbolic names from d.
func (i *Instance) StringWith(d *Dict) string {
	var b strings.Builder
	b.WriteByte('{')
	for k, f := range i.SortedFacts() {
		if k > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.StringWith(d))
	}
	b.WriteByte('}')
	return b.String()
}

func sortFactsSlice(fs []Fact) {
	sort.Slice(fs, func(i, j int) bool { return fs[i].Less(fs[j]) })
}
