package rel

import (
	"bytes"
	"testing"
)

// buildFuzzFragment interprets script as a construction program over a
// small instance: each 3-byte step adds or removes a fact. The value
// domain mixes plain small values with shifted ones that collide in the
// table's low bits, and removals leave tombstones behind, so encoding
// regularly runs over arenas with dead runs and collision chains.
func buildFuzzFragment(script []byte) *Instance {
	names := []string{"R", "S", "ΔE", "C"}
	inst := NewInstance()
	for i := 0; i+2 < len(script); i += 3 {
		op, a, b := script[i], script[i+1], script[i+2]
		name := names[int(op>>2)%len(names)]
		va, vb := Value(a%11), Value(b%11)
		if a >= 128 {
			va = Value(int64(a%11) << 32) // forced low-bit hash collisions
		}
		var f Fact
		if name == "S" {
			f = NewFact(name, va)
		} else {
			f = NewFact(name, va, vb)
		}
		if op%4 == 3 {
			inst.Remove(f) // tombstone churn
		} else {
			inst.Add(f)
		}
	}
	return inst
}

// FuzzFragmentWire drives the wire codec from both directions with one
// input: the bytes are used (a) as a construction script for a random
// fragment, asserting the encode→decode→encode fixpoint and fact-level
// equality, and (b) as a raw candidate frame fed straight to the
// decoder, which must reject garbage with an error — never a panic —
// and must re-encode anything it accepts to the identical bytes.
func FuzzFragmentWire(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 4, 2, 1, 3, 1, 2}) // adds + a removal
	f.Add([]byte{0, 200, 5, 0, 201, 5, 0, 202, 5})
	f.Add(EncodeInstance(wireSample()))
	f.Add(EncodeInstance(buildFuzzFragment([]byte{8, 3, 9, 12, 130, 7, 7, 3, 9})))
	truncated := EncodeInstance(wireSample())
	f.Add(truncated[:len(truncated)-5])
	flipped := EncodeInstance(wireSample())
	flipped[len(flipped)/2] ^= 0x10 // mid-frame bit flip the checksum must catch
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: random fragment → canonical bytes and back.
		inst := buildFuzzFragment(data)
		buf := EncodeInstance(inst)
		if len(buf) != EncodedSize(inst) {
			t.Fatalf("EncodedSize %d != encoded length %d", EncodedSize(inst), len(buf))
		}
		decoded, err := DecodeInstance(buf)
		if err != nil {
			t.Fatalf("decoder rejected a fresh encoding: %v", err)
		}
		if !decoded.Equal(inst) {
			t.Fatalf("round-trip changed the fact set: got %v want %v", decoded, inst)
		}
		if again := EncodeInstance(decoded); !bytes.Equal(buf, again) {
			t.Fatalf("encode→decode→encode not a fixpoint:\n first %x\nsecond %x", buf, again)
		}

		// Direction 2: arbitrary bytes as a frame. Any panic escapes to
		// the fuzzer as a crash; an accepted frame must be canonical.
		if got, err := DecodeInstance(data); err == nil {
			if re := EncodeInstance(got); !bytes.Equal(re, data) {
				t.Fatalf("decoder accepted non-canonical bytes:\n  in %x\n out %x", data, re)
			}
		}

		// Direction 3: every single-bit mutation of a valid encoding is
		// rejected — structurally or by the trailing CRC-32C, which
		// detects all single-bit errors by construction. Large frames
		// sample bit positions at a fixed stride to bound the cost; the
		// stride covers every byte region of the frame either way.
		stride := 1
		if nbits := len(buf) * 8; nbits > 2048 {
			stride = nbits / 2048
		}
		for bitpos := 0; bitpos < len(buf)*8; bitpos += stride {
			mut := append([]byte(nil), buf...)
			mut[bitpos/8] ^= 1 << (bitpos % 8)
			if _, err := DecodeInstance(mut); err == nil {
				t.Fatalf("decoder accepted a corrupted frame (bit %d of %x)", bitpos, buf)
			}
		}
	})
}
