package rel

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func wireSample() *Instance {
	inst := NewInstance()
	inst.Add(NewFact("R", 1, 2))
	inst.Add(NewFact("R", 2, 3))
	inst.Add(NewFact("R", -7, 0)) // negative values must survive the u64 round-trip
	inst.Add(NewFact("S", 9))
	inst.Add(NewFact("ΔE", 4, 5)) // multi-byte UTF-8 relation names
	return inst
}

// TestWireRoundTrip: Decode(Encode(i)) must equal i, and re-encoding
// the decoded instance must reproduce the exact bytes (canonicity).
func TestWireRoundTrip(t *testing.T) {
	inst := wireSample()
	buf := EncodeInstance(inst)
	if len(buf) != EncodedSize(inst) {
		t.Errorf("EncodedSize predicts %d bytes, encoder wrote %d", EncodedSize(inst), len(buf))
	}
	got, err := DecodeInstance(buf)
	if err != nil {
		t.Fatalf("decode of a fresh encoding failed: %v", err)
	}
	if !got.Equal(inst) {
		t.Fatalf("round-trip lost facts: got %v want %v", got, inst)
	}
	again := EncodeInstance(got)
	if !bytes.Equal(buf, again) {
		t.Fatalf("encode→decode→encode is not a fixpoint:\n first %x\nsecond %x", buf, again)
	}
}

// TestWireEmptyInstance: an empty instance encodes to a bare header and
// decodes back to empty.
func TestWireEmptyInstance(t *testing.T) {
	buf := EncodeInstance(NewInstance())
	got, err := DecodeInstance(buf)
	if err != nil {
		t.Fatalf("decode of empty instance: %v", err)
	}
	if !got.IsEmpty() {
		t.Fatalf("decoded empty instance holds facts: %v", got)
	}
}

// TestWireSkipsEmptyAndTombstonedRelations: relations emptied by
// removal (tombstones pending compaction) must not appear on the wire,
// and partially tombstoned relations must ship only live tuples.
func TestWireSkipsEmptyAndTombstonedRelations(t *testing.T) {
	inst := NewInstance()
	inst.Add(NewFact("R", 1, 2))
	inst.Add(NewFact("R", 3, 4))
	inst.Add(NewFact("gone", 5))
	inst.Remove(NewFact("gone", 5))
	inst.Remove(NewFact("R", 1, 2))
	got, err := DecodeInstance(EncodeInstance(inst))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.Equal(inst) {
		t.Fatalf("tombstoned round-trip mismatch: got %v want %v", got, inst)
	}
	if got.Relation("gone") != nil {
		t.Error("fully-removed relation leaked onto the wire")
	}
}

// TestWireDeterministicAcrossInsertionOrders: two instances with the
// same facts added in different orders may encode differently (arena
// order is insertion order), but both encodings must decode to equal
// instances — and an instance built by sorted insertion is the
// canonical representative both decode-encodes converge to.
func TestWireDeterministicAcrossInsertionOrders(t *testing.T) {
	a := NewInstance()
	a.Add(NewFact("R", 1, 2))
	a.Add(NewFact("R", 3, 4))
	b := NewInstance()
	b.Add(NewFact("R", 3, 4))
	b.Add(NewFact("R", 1, 2))
	da, err := DecodeInstance(EncodeInstance(a))
	if err != nil {
		t.Fatal(err)
	}
	db, err := DecodeInstance(EncodeInstance(b))
	if err != nil {
		t.Fatal(err)
	}
	if !da.Equal(db) {
		t.Fatalf("same fact set decoded unequal: %v vs %v", da, db)
	}
}

// TestWireDecodeRejects enumerates the malformed-frame classes the
// decoder must reject with an error (never a panic).
func TestWireDecodeRejects(t *testing.T) {
	good := EncodeInstance(wireSample())
	cases := []struct {
		name    string
		mutate  func() []byte
		wantErr string
	}{
		{"empty input", func() []byte { return nil }, "truncated"},
		{"bad magic", func() []byte {
			b := append([]byte(nil), good...)
			b[0] ^= 0xff
			return b
		}, "magic"},
		{"future version", func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint16(b[4:], WireVersion+1)
			return b
		}, "version"},
		{"truncated mid-values", func() []byte { return good[:len(good)-3] }, "remain"},
		{"trailing bytes", func() []byte { return append(append([]byte(nil), good...), 0xaa) }, "trailing"},
		{"relation count beyond payload", func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(b[6:], 0xffffffff)
			return b
		}, "relations"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeInstance(tc.mutate())
			if err == nil {
				t.Fatal("decoder accepted a malformed frame")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestWireRejectsNonCanonical: structurally well-formed but
// non-canonical encodings (duplicate tuples, zero counts, unsorted
// names) are rejected, which is what makes Encode∘Decode the identity
// on all accepted inputs.
func TestWireRejectsNonCanonical(t *testing.T) {
	header := func(rels int) []byte {
		b := binary.LittleEndian.AppendUint32(nil, 0x5743504d)
		b = binary.LittleEndian.AppendUint16(b, WireVersion)
		return binary.LittleEndian.AppendUint32(b, uint32(rels))
	}
	relation := func(name string, arity int, tuples ...uint64) []byte {
		b := binary.LittleEndian.AppendUint16(nil, uint16(len(name)))
		b = append(b, name...)
		b = binary.LittleEndian.AppendUint16(b, uint16(arity))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(tuples)/arity))
		for _, v := range tuples {
			b = binary.LittleEndian.AppendUint64(b, v)
		}
		return b
	}
	cases := []struct {
		name    string
		frame   []byte
		wantErr string
	}{
		{"duplicate tuple", append(header(1), relation("R", 2, 1, 2, 1, 2)...), "duplicate"},
		{"zero count", append(header(1), relation("R", 2)...), "zero tuples"},
		{"zero arity", append(header(1), []byte{1, 0, 'R', 0, 0, 1, 0, 0, 0}...), "arity"},
		{"empty name", append(header(1), relation("", 1, 7)...), "empty relation name"},
		{"names out of order", append(header(2), append(relation("S", 1, 1), relation("R", 1, 2)...)...), "out of order"},
		{"duplicate name", append(header(2), append(relation("R", 1, 1), relation("R", 1, 2)...)...), "out of order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeInstance(tc.frame)
			if err == nil {
				t.Fatal("decoder accepted a non-canonical frame")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestWireCollisionTuples: tuples engineered to share full 64-bit
// hashes (the substrate property suite's collision trick) must survive
// the wire individually.
func TestWireCollisionTuples(t *testing.T) {
	inst := NewInstance()
	// Low-bit collisions: many values mapping to the same table slots.
	for i := 0; i < 64; i++ {
		inst.Add(NewFact("C", Value(i<<32), Value(i)))
	}
	got, err := DecodeInstance(EncodeInstance(inst))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.Equal(inst) {
		t.Fatalf("collision-heavy round-trip mismatch")
	}
}
