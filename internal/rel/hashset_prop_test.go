package rel

import (
	"math/rand"
	"testing"
)

// Cross-checks of the open-addressing tuple set against a reference
// implementation (a Go map keyed by the injective Tuple.Key string),
// plus white-box tests that force hash collisions, which random data
// cannot produce at 64 bits.

// refSet is the reference set semantics the Relation must match.
type refSet map[string]Tuple

func (s refSet) add(t Tuple) bool {
	k := t.Key()
	if _, ok := s[k]; ok {
		return false
	}
	s[k] = append(Tuple(nil), t...)
	return true
}

func (s refSet) remove(t Tuple) bool {
	k := t.Key()
	if _, ok := s[k]; !ok {
		return false
	}
	delete(s, k)
	return true
}

func checkAgainstRef(t *testing.T, r *Relation, ref refSet) {
	t.Helper()
	if r.Len() != len(ref) {
		t.Fatalf("Len = %d, reference has %d", r.Len(), len(ref))
	}
	for _, tu := range ref {
		if !r.Contains(tu) {
			t.Fatalf("missing tuple %v", tu)
		}
	}
	seen := 0
	r.Each(func(tu Tuple) bool {
		if _, ok := ref[tu.Key()]; !ok {
			t.Fatalf("Each yields tuple %v not in reference", tu)
		}
		seen++
		return true
	})
	if seen != len(ref) {
		t.Fatalf("Each yielded %d tuples, reference has %d", seen, len(ref))
	}
	sorted := r.Tuples()
	if len(sorted) != len(ref) {
		t.Fatalf("Tuples yielded %d tuples, reference has %d", len(sorted), len(ref))
	}
	for i := 1; i < len(sorted); i++ {
		if !sorted[i-1].Less(sorted[i]) {
			t.Fatalf("Tuples not strictly sorted at %d: %v, %v", i, sorted[i-1], sorted[i])
		}
	}
}

// TestPropHashSetVsReference drives random Add/Remove/Contains
// sequences with a value domain small enough that duplicate inserts and
// hits are frequent, comparing every answer with the reference map.
func TestPropHashSetVsReference(t *testing.T) {
	for _, arity := range []int{0, 1, 3} {
		rng := rand.New(rand.NewSource(int64(1000 + arity)))
		r := NewRelation("R", arity)
		ref := refSet{}
		draw := func() Tuple {
			tu := make(Tuple, arity)
			for j := range tu {
				tu[j] = Value(rng.Intn(9))
			}
			return tu
		}
		for step := 0; step < 4000; step++ {
			tu := draw()
			switch rng.Intn(3) {
			case 0:
				if got, want := r.Add(tu), ref.add(tu); got != want {
					t.Fatalf("arity %d step %d: Add(%v) = %v, reference says %v", arity, step, tu, got, want)
				}
			case 1:
				if got, want := r.Remove(tu), ref.remove(tu); got != want {
					t.Fatalf("arity %d step %d: Remove(%v) = %v, reference says %v", arity, step, tu, got, want)
				}
			default:
				_, want := ref[tu.Key()]
				if got := r.Contains(tu); got != want {
					t.Fatalf("arity %d step %d: Contains(%v) = %v, reference says %v", arity, step, tu, got, want)
				}
			}
			if step%97 == 0 {
				checkAgainstRef(t, r, ref)
			}
		}
		checkAgainstRef(t, r, ref)
	}
}

// TestPropUnionWithVsReference grows a relation by unions and checks
// the added-count and final contents against the reference.
func TestPropUnionWithVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	r := NewRelation("R", 2)
	ref := refSet{}
	for trial := 0; trial < 40; trial++ {
		o := randomRelation(rng, "O", 2, rng.Intn(30))
		want := 0
		o.Each(func(tu Tuple) bool {
			if ref.add(tu) {
				want++
			}
			return true
		})
		if got := r.UnionWith(o); got != want {
			t.Fatalf("trial %d: UnionWith added %d, reference says %d", trial, got, want)
		}
		// Interleave removals so unions also hit tombstoned tables.
		for k := 0; k < 5; k++ {
			tu := Tuple{Value(rng.Intn(6)), Value(rng.Intn(6))}
			if got, want := r.Remove(tu), ref.remove(tu); got != want {
				t.Fatalf("trial %d: Remove(%v) = %v, reference says %v", trial, tu, got, want)
			}
		}
		checkAgainstRef(t, r, ref)
	}
}

// TestPropCloneIndependence checks Clone is a deep copy: mutating
// either side never shows through on the other.
func TestPropCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	orig := randomRelation(rng, "R", 2, 40)
	snapshot := refSet{}
	orig.Each(func(tu Tuple) bool { snapshot.add(tu); return true })
	cl := orig.Clone()
	if !cl.Equal(orig) {
		t.Fatalf("clone not equal to original")
	}
	for k := 0; k < 200; k++ {
		tu := Tuple{Value(rng.Intn(8)), Value(rng.Intn(8))}
		if rng.Intn(2) == 0 {
			cl.Add(tu)
		} else {
			cl.Remove(tu)
		}
	}
	checkAgainstRef(t, orig, snapshot)
}

// forceTuples are distinct tuples fed through the white-box insert path
// with one shared, fabricated hash so every table operation probes
// through colliding entries and must fall back to Tuple.Equal.
func forceTuples(n int) []Tuple {
	out := make([]Tuple, n)
	for i := range out {
		out[i] = Tuple{Value(i), Value(i * 7)}
	}
	return out
}

// TestForcedFullHashCollisions exercises insert/find/remove with
// identical 64-bit hashes: a full collision is vanishingly unlikely
// with real data, so the verification path is driven directly.
func TestForcedFullHashCollisions(t *testing.T) {
	const h = uint64(0xdeadbeefcafef00d)
	r := NewRelation("C", 2)
	ts := forceTuples(50)
	for _, tu := range ts {
		if !r.insert(h, tu) {
			t.Fatalf("insert(%v) under shared hash reported duplicate", tu)
		}
		if r.insert(h, tu) {
			t.Fatalf("re-insert(%v) under shared hash reported new", tu)
		}
	}
	if r.Len() != len(ts) {
		t.Fatalf("Len = %d after %d colliding inserts", r.Len(), len(ts))
	}
	for _, tu := range ts {
		if r.find(h, tu) < 0 {
			t.Fatalf("find(%v) failed under shared hash", tu)
		}
	}
	// Remove every other tuple; the survivors must remain findable
	// through the tombstones left in the probe chain.
	for i, tu := range ts {
		if i%2 == 0 {
			if !r.remove(h, tu) {
				t.Fatalf("remove(%v) under shared hash failed", tu)
			}
			if r.remove(h, tu) {
				t.Fatalf("double remove(%v) under shared hash succeeded", tu)
			}
		}
	}
	for i, tu := range ts {
		want := i%2 != 0
		if got := r.find(h, tu) >= 0; got != want {
			t.Fatalf("after removals, find(%v) = %v, want %v", tu, got, want)
		}
	}
	// Re-insert through tombstoned slots, then force a compacting
	// rehash by growing past the load ceiling.
	for i, tu := range ts {
		if i%2 == 0 && !r.insert(h, tu) {
			t.Fatalf("re-insert(%v) into tombstoned table failed", tu)
		}
	}
	extra := make([]Tuple, 200)
	for i := range extra {
		extra[i] = Tuple{Value(1000 + i), Value(i)}
		r.Add(extra[i])
	}
	for _, tu := range ts {
		if r.find(h, tu) < 0 {
			t.Fatalf("find(%v) failed after rehash", tu)
		}
	}
	if r.Len() != len(ts)+len(extra) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(ts)+len(extra))
	}
}

// TestRealLowBitCollisions brute-forces tuples whose genuine hashes
// agree on the low bits used by a minimum-size table, so the public API
// itself walks probe chains full of partial collisions.
func TestRealLowBitCollisions(t *testing.T) {
	const wantBits = 7 // minimum table size 8 → 3-bit slot index
	var colliding []Tuple
	for v := Value(0); len(colliding) < 12; v++ {
		tu := Tuple{v}
		if tu.Hash()&wantBits == 0 {
			colliding = append(colliding, tu)
		}
	}
	r := NewRelation("L", 1)
	for _, tu := range colliding {
		if !r.Add(tu) {
			t.Fatalf("Add(%v) reported duplicate", tu)
		}
	}
	for _, tu := range colliding {
		if !r.Contains(tu) {
			t.Fatalf("Contains(%v) failed on low-bit-colliding data", tu)
		}
	}
	for i, tu := range colliding {
		if i%3 == 0 && !r.Remove(tu) {
			t.Fatalf("Remove(%v) failed", tu)
		}
	}
	for i, tu := range colliding {
		if got, want := r.Contains(tu), i%3 != 0; got != want {
			t.Fatalf("Contains(%v) = %v, want %v", tu, got, want)
		}
	}
}

// TestTupleViewsSurviveCompaction takes tuple views before heavy
// removal traffic and checks they still read their original values
// after compaction has rebuilt the arena.
func TestTupleViewsSurviveCompaction(t *testing.T) {
	r := NewRelation("V", 2)
	const n = 300
	for i := 0; i < n; i++ {
		r.Add(Tuple{Value(i), Value(-i)})
	}
	views := make([]Tuple, 0, n)
	r.Each(func(tu Tuple) bool {
		views = append(views, tu)
		return true
	})
	for i := 0; i < n; i += 2 {
		r.Remove(Tuple{Value(i), Value(-i)})
	}
	// Plenty of removals have happened; every captured view must still
	// hold the values it had when captured, present in the set or not.
	for _, v := range views {
		if v[1] != -v[0] {
			t.Fatalf("tuple view corrupted: %v", v)
		}
	}
	if r.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", r.Len(), n/2)
	}
}

// refSemiJoin is the obvious nested-loop semijoin the indexed SemiJoin
// must agree with.
func refSemiJoin(l, r *Relation, lCols, rCols []int) *Relation {
	out := NewRelation(l.Name, l.Arity)
	for _, lt := range l.Tuples() {
		for _, rt := range r.Tuples() {
			if EqualOn(lt, lCols, rt, rCols) {
				out.Add(lt)
				break
			}
		}
	}
	return out
}

// TestJoinIndexSurvivesGrowCompaction: grow() (reached via
// Instance.EnsureRelationSize and UnionWith) compacts tombstones out of
// the arena, renumbering stored tuple indices, without going through
// mutated(). A join index cached before that compaction must not be
// consulted afterwards.
func TestJoinIndexSurvivesGrowCompaction(t *testing.T) {
	inst := NewInstance()
	for i := 0; i < 100; i++ {
		inst.Add(NewFact("R", Value(i), Value(i%7)))
	}
	r := inst.Relation("R")
	for i := 0; i < 40; i++ {
		r.Remove(Tuple{Value(i), Value(i % 7)})
	}
	probe := NewRelation("P", 1)
	for i := 0; i < 200; i++ {
		probe.Add(Tuple{Value(i)})
	}
	want := refSemiJoin(probe, r, []int{0}, []int{0})
	if got := SemiJoin(probe, r, []int{0}, []int{0}); !got.Equal(want) {
		t.Fatalf("SemiJoin before grow: got %d tuples, want %d", got.Len(), want.Len())
	}
	// Pre-sizing compacts the tombstoned arena but adds nothing, so no
	// mutation ever invalidates the index cached above.
	inst.EnsureRelationSize("R", 2, 4096)
	if got := SemiJoin(probe, r, []int{0}, []int{0}); !got.Equal(want) {
		t.Fatalf("SemiJoin after grow compaction: got %d tuples, want %d", got.Len(), want.Len())
	}
	// Same shape through UnionWith when every incoming tuple is a
	// duplicate: the pre-grow may compact, the inserts add nothing.
	dup := NewRelation("D", 2)
	r.Each(func(tu Tuple) bool { dup.Add(tu); return true })
	r.Remove(Tuple{Value(41), Value(41 % 7)})
	if got := SemiJoin(probe, r, []int{0}, []int{0}); got.Len() != want.Len()-1 {
		t.Fatalf("SemiJoin after Remove: got %d tuples, want %d", got.Len(), want.Len()-1)
	}
	r.UnionWith(dup)
	want2 := refSemiJoin(probe, r, []int{0}, []int{0})
	if got := SemiJoin(probe, r, []int{0}, []int{0}); !got.Equal(want2) {
		t.Fatalf("SemiJoin after duplicate union: got %d tuples, want %d", got.Len(), want2.Len())
	}
}

// TestJoinIndexSurvivesDuplicateAddRehash: a duplicate Add that crosses
// the load-factor ceiling rehashes (compacting any tombstones) before
// discovering it inserts nothing, so it too bypasses mutated(). The
// setup walks the relation to the exact brink of the ceiling with
// tombstones present, caches a join index, then re-adds an existing
// tuple.
func TestJoinIndexSurvivesDuplicateAddRehash(t *testing.T) {
	r := NewRelation("R", 1)
	for i := 0; i < 50; i++ {
		r.Add(Tuple{Value(i)})
	}
	for i := 0; i < 10; i++ {
		r.Remove(Tuple{Value(i)})
	}
	// Fill with fresh tuples while the next insert stays under the
	// ceiling; the guard mirrors insert's rehash condition, so no Add in
	// this loop rehashes and the one after the loop must.
	for v := 1000; (r.live+r.tombs+1)*4 <= len(r.slots)*3; v++ {
		r.Add(Tuple{Value(v)})
	}
	if r.tombs == 0 {
		t.Fatal("setup lost its tombstones; the rehash below would not compact")
	}
	probe := NewRelation("P", 1)
	for i := 0; i < 60; i++ {
		probe.Add(Tuple{Value(i)})
	}
	want := refSemiJoin(probe, r, []int{0}, []int{0})
	if got := SemiJoin(probe, r, []int{0}, []int{0}); !got.Equal(want) {
		t.Fatalf("SemiJoin before rehash: got %d tuples, want %d", got.Len(), want.Len())
	}
	if r.Add(Tuple{Value(49)}) {
		t.Fatal("re-Add of a present tuple reported new")
	}
	if got := SemiJoin(probe, r, []int{0}, []int{0}); !got.Equal(want) {
		t.Fatalf("SemiJoin after duplicate-Add rehash: got %d tuples, want %d", got.Len(), want.Len())
	}
}

// TestPropJoinIndexUnderCompactionTraffic interleaves Remove, SemiJoin
// (which caches a join index), duplicate-Add storms, and UnionWith on
// one relation, checking every SemiJoin answer against the reference
// map: whatever compactions the traffic triggers, a cached index must
// never serve stale tuple indices.
func TestPropJoinIndexUnderCompactionTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	r := NewRelation("R", 2)
	ref := refSet{}
	l := randomRelation(rng, "L", 2, 60)
	draw := func() Tuple {
		return Tuple{Value(rng.Intn(12)), Value(rng.Intn(12))}
	}
	checkSemi := func(step int) {
		got := SemiJoin(l, r, []int{0}, []int{1})
		n := 0
		for _, lt := range l.Tuples() {
			match := false
			for _, rt := range ref {
				if rt[1] == lt[0] {
					match = true
					break
				}
			}
			if match {
				n++
			}
			if got.Contains(lt) != match {
				t.Fatalf("step %d: SemiJoin includes %v = %v, reference says %v", step, lt, !match, match)
			}
		}
		if got.Len() != n {
			t.Fatalf("step %d: SemiJoin has %d tuples, reference says %d", step, got.Len(), n)
		}
	}
	for step := 0; step < 1500; step++ {
		switch rng.Intn(5) {
		case 0, 1:
			tu := draw()
			if got, want := r.Add(tu), ref.add(tu); got != want {
				t.Fatalf("step %d: Add(%v) = %v, reference says %v", step, tu, got, want)
			}
		case 2:
			tu := draw()
			if got, want := r.Remove(tu), ref.remove(tu); got != want {
				t.Fatalf("step %d: Remove(%v) = %v, reference says %v", step, tu, got, want)
			}
		case 3:
			o := randomRelation(rng, "O", 2, rng.Intn(40))
			o.Each(func(tu Tuple) bool { ref.add(tu); return true })
			r.UnionWith(o)
		default:
			checkSemi(step)
			// Duplicate re-adds never report a mutation; one that
			// crosses the load ceiling compacts with the index live.
			for _, tu := range r.Tuples() {
				if r.Add(tu) {
					t.Fatalf("step %d: re-Add(%v) reported new", step, tu)
				}
			}
			checkSemi(step)
		}
	}
	checkAgainstRef(t, r, ref)
}

// TestSortedCacheInvalidation checks Tuples reflects every mutation and
// that appending to a returned slice cannot corrupt the cache.
func TestSortedCacheInvalidation(t *testing.T) {
	r := NewRelation("S", 1)
	r.Add(Tuple{2})
	r.Add(Tuple{0})
	first := r.Tuples()
	if len(first) != 2 || first[0][0] != 0 || first[1][0] != 2 {
		t.Fatalf("Tuples = %v, want [[0] [2]]", first)
	}
	// Appending to the returned slice must not write into the cache.
	_ = append(first, Tuple{99})
	if again := r.Tuples(); len(again) != 2 {
		t.Fatalf("cache corrupted by caller append: %v", again)
	}
	r.Add(Tuple{1})
	if got := r.Tuples(); len(got) != 3 || got[1][0] != 1 {
		t.Fatalf("Tuples after Add = %v, want [[0] [1] [2]]", got)
	}
	r.Remove(Tuple{0})
	if got := r.Tuples(); len(got) != 2 || got[0][0] != 1 {
		t.Fatalf("Tuples after Remove = %v, want [[1] [2]]", got)
	}
	o := NewRelation("O", 1)
	o.Add(Tuple{0})
	r.UnionWith(o)
	if got := r.Tuples(); len(got) != 3 || got[0][0] != 0 {
		t.Fatalf("Tuples after UnionWith = %v, want [[0] [1] [2]]", got)
	}
}
