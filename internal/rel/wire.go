package rel

// Wire encoding for relation fragments and instances — the byte format
// MPC transports ship between servers and checkpoints spill to disk.
//
// The flat value arena is already serialization-shaped: a relation's
// live tuples sit contiguously as arity-strided int64 runs, so encoding
// walks the arena once and emits fixed-width little-endian values with
// no per-tuple allocation, and decoding appends values straight into a
// pre-sized arena and rebuilds the hash table in one pass. (The hash
// table and cached hashes are derived state and intentionally NOT on
// the wire: a peer cannot inject a mismatched hash.)
//
// Format (all integers little-endian):
//
//	instance  := magic u32 | version u16 | relCount u32 | relation*
//	           | crc u32
//	relation  := nameLen u16 | name bytes | arity u16 | count u32
//	           | count*arity × value u64
//
// The trailing crc is CRC-32C (Castagnoli) over every preceding byte
// of the instance encoding. It is verified AFTER structural parsing:
// struct-level corruption reports the precise malformation, and a
// frame whose structure happens to survive a bit flip is still caught
// by the checksum — CRC-32C detects all burst errors up to 32 bits,
// so no single-bit corruption can be silently accepted.
//
// The encoding is canonical and the codec enforces it both ways:
//
//   - EncodeInstance emits relations in ascending name order, skips
//     empty relations, and emits each relation's tuples in arena
//     (insertion) order with tombstones compacted away.
//   - DecodeInstance rejects any non-canonical input: wrong magic or
//     version, trailing bytes, empty or duplicate or out-of-order
//     relation names, zero tuple counts, and duplicate tuples.
//
// Together these give the round-trip laws the fuzzer pins down:
// Decode(Encode(i)) equals i for every instance, and Encode(Decode(b))
// == b for every accepted byte string. A mutated or truncated frame is
// reported as an error — the decoder must never panic, because frames
// cross process boundaries and a malformed peer must not kill the
// receiver.
import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	// wireMagic identifies an encoded instance ("MPCW" little-endian).
	wireMagic uint32 = 0x5743504d
	// WireVersion is the current format version; decoders reject
	// anything else, so format evolution is explicit. Version 2 added
	// the trailing CRC-32C checksum.
	WireVersion uint16 = 2

	// maxWireArity bounds a decoded relation's arity. The engine's
	// widest tuples are single-digit arity; 4096 leaves headroom while
	// keeping count*arity arithmetic far from overflow.
	maxWireArity = 4096

	// wireCRCLen is the trailing checksum's byte length.
	wireCRCLen = 4
)

// wireCRCTable is the Castagnoli polynomial table shared by encoder
// and decoder.
var wireCRCTable = crc32.MakeTable(crc32.Castagnoli)

// AppendInstance appends the canonical encoding of inst to buf and
// returns the extended slice. The trailing CRC-32C covers exactly the
// bytes this call appended before it.
func AppendInstance(buf []byte, inst *Instance) []byte {
	start := len(buf)
	names := inst.RelationNames()
	buf = binary.LittleEndian.AppendUint32(buf, wireMagic)
	buf = binary.LittleEndian.AppendUint16(buf, WireVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(names)))
	for _, name := range names {
		buf = appendRelation(buf, name, inst.rels[name])
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], wireCRCTable))
}

// EncodeInstance returns the canonical encoding of inst, pre-sizing the
// buffer from the instance's exact wire size.
func EncodeInstance(inst *Instance) []byte {
	return AppendInstance(make([]byte, 0, EncodedSize(inst)), inst)
}

// EncodedSize returns the exact byte length of EncodeInstance(inst).
func EncodedSize(inst *Instance) int {
	n := 4 + 2 + 4 + wireCRCLen
	for name, r := range inst.rels {
		if r.Len() == 0 {
			continue
		}
		n += 2 + len(name) + 2 + 4 + 8*r.Len()*r.Arity
	}
	return n
}

// appendRelation emits one relation under its instance key (which may
// differ from r.Name after SetRelationAs). The arena is read directly:
// live tuples are arity-strided runs, so the inner loop is a straight
// value copy with no Tuple materialization.
func appendRelation(buf []byte, name string, r *Relation) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(r.Arity))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Len()))
	for i := range r.hashes {
		if r.dead[i] {
			continue
		}
		off := i * r.Arity
		for _, v := range r.arena[off : off+r.Arity] {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
	}
	return buf
}

// wireReader is a bounds-checked cursor over an encoded frame. Every
// read validates the remaining length first, so truncated or mutated
// input surfaces as an error — never a slice panic.
type wireReader struct {
	data []byte
	off  int
}

func (w *wireReader) remaining() int { return len(w.data) - w.off }

func (w *wireReader) u16() (uint16, error) {
	if w.remaining() < 2 {
		return 0, fmt.Errorf("rel: truncated frame at offset %d: need 2 bytes, have %d", w.off, w.remaining())
	}
	v := binary.LittleEndian.Uint16(w.data[w.off:])
	w.off += 2
	return v, nil
}

func (w *wireReader) u32() (uint32, error) {
	if w.remaining() < 4 {
		return 0, fmt.Errorf("rel: truncated frame at offset %d: need 4 bytes, have %d", w.off, w.remaining())
	}
	v := binary.LittleEndian.Uint32(w.data[w.off:])
	w.off += 4
	return v, nil
}

func (w *wireReader) u64() (uint64, error) {
	if w.remaining() < 8 {
		return 0, fmt.Errorf("rel: truncated frame at offset %d: need 8 bytes, have %d", w.off, w.remaining())
	}
	v := binary.LittleEndian.Uint64(w.data[w.off:])
	w.off += 8
	return v, nil
}

func (w *wireReader) bytes(n int) ([]byte, error) {
	if w.remaining() < n {
		return nil, fmt.Errorf("rel: truncated frame at offset %d: need %d bytes, have %d", w.off, n, w.remaining())
	}
	b := w.data[w.off : w.off+n]
	w.off += n
	return b, nil
}

// DecodeInstance decodes a canonical instance encoding, verifying
// structure strictly: it errors on bad magic or version, non-ascending
// or empty relation names, zero counts, duplicate tuples, truncation,
// trailing bytes, and checksum mismatches. It never panics on
// malformed input.
func DecodeInstance(data []byte) (*Instance, error) {
	w := &wireReader{data: data}
	magic, err := w.u32()
	if err != nil {
		return nil, err
	}
	if magic != wireMagic {
		return nil, fmt.Errorf("rel: bad frame magic %#x (want %#x)", magic, wireMagic)
	}
	version, err := w.u16()
	if err != nil {
		return nil, err
	}
	if version != WireVersion {
		return nil, fmt.Errorf("rel: unsupported wire version %d (this decoder speaks %d)", version, WireVersion)
	}
	relCount, err := w.u32()
	if err != nil {
		return nil, err
	}
	// Each relation costs at least its fixed header (2+2+4 bytes) plus
	// one tuple, so a relCount beyond the remaining bytes is corrupt —
	// reject before allocating the instance map from attacker input.
	if int64(relCount) > int64(w.remaining()/8)+1 {
		return nil, fmt.Errorf("rel: frame declares %d relations but only %d bytes remain", relCount, w.remaining())
	}
	inst := NewInstanceSize(int(relCount))
	prevName := ""
	for k := uint32(0); k < relCount; k++ {
		name, r, err := decodeRelation(w)
		if err != nil {
			return nil, err
		}
		if k > 0 && name <= prevName {
			return nil, fmt.Errorf("rel: relation %q out of order after %q (canonical encoding is name-ascending)", name, prevName)
		}
		prevName = name
		inst.rels[name] = r
	}
	switch {
	case w.remaining() < wireCRCLen:
		return nil, fmt.Errorf("rel: truncated frame: %d bytes remain where the %d-byte checksum belongs", w.remaining(), wireCRCLen)
	case w.remaining() > wireCRCLen:
		return nil, fmt.Errorf("rel: %d trailing bytes after a complete instance", w.remaining()-wireCRCLen)
	}
	want := binary.LittleEndian.Uint32(w.data[w.off:])
	if got := crc32.Checksum(w.data[:w.off], wireCRCTable); got != want {
		return nil, fmt.Errorf("rel: frame checksum mismatch (trailer says %#x, body hashes to %#x)", want, got)
	}
	return inst, nil
}

func decodeRelation(w *wireReader) (string, *Relation, error) {
	nameLen, err := w.u16()
	if err != nil {
		return "", nil, err
	}
	if nameLen == 0 {
		return "", nil, fmt.Errorf("rel: empty relation name at offset %d", w.off)
	}
	nameBytes, err := w.bytes(int(nameLen))
	if err != nil {
		return "", nil, err
	}
	name := string(nameBytes)
	arity16, err := w.u16()
	if err != nil {
		return "", nil, err
	}
	arity := int(arity16)
	if arity == 0 || arity > maxWireArity {
		return "", nil, fmt.Errorf("rel: relation %q has wire arity %d (want 1..%d)", name, arity, maxWireArity)
	}
	count32, err := w.u32()
	if err != nil {
		return "", nil, err
	}
	count := int(count32)
	if count == 0 {
		return "", nil, fmt.Errorf("rel: relation %q encoded with zero tuples (canonical encoding skips empty relations)", name)
	}
	// The payload length check caps the allocation below at the frame
	// size: a frame cannot make the decoder allocate more value slots
	// than it carries bytes.
	need := count * arity * 8
	if w.remaining() < need {
		return "", nil, fmt.Errorf("rel: relation %q declares %d×%d values (%d bytes) but only %d remain",
			name, count, arity, need, w.remaining())
	}
	r := NewRelationSize(name, arity, count)
	scratch := make(Tuple, arity)
	for i := 0; i < count; i++ {
		for j := 0; j < arity; j++ {
			v, err := w.u64()
			if err != nil {
				return "", nil, err
			}
			scratch[j] = Value(v)
		}
		if !r.insert(scratch.Hash(), scratch) {
			return "", nil, fmt.Errorf("rel: relation %q carries duplicate tuple %v (canonical encoding is duplicate-free)", name, scratch)
		}
	}
	return name, r, nil
}
