// Package lp implements a small dense simplex solver for the linear
// programs this library needs: fractional edge packings and covers of
// query hypergraphs (Section 3.1 of Neven, PODS 2016 — the exponent
// 1/τ* in the HyperCube load bound is defined by such an LP) and the
// share-exponent optimization of the Shares algorithm.
//
// The solver handles problems of the form
//
//	maximize    c·x
//	subject to  A·x ≤ b,  x ≥ 0,  b ≥ 0
//
// which is exactly the shape of packing LPs; covering LPs (minimize
// with ≥ constraints) are solved through their packing duals, with the
// primal cover recovered from the final reduced costs.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Eps is the numeric tolerance used by the solver.
const Eps = 1e-9

// ErrUnbounded is returned when the LP has unbounded optimum.
var ErrUnbounded = errors.New("lp: unbounded")

// ErrInfeasible is returned when a covering problem has no feasible
// solution (its dual is unbounded).
var ErrInfeasible = errors.New("lp: infeasible")

// Result holds an optimal solution.
type Result struct {
	X     []float64 // primal solution
	Value float64   // objective value at X
	Dual  []float64 // dual values, one per constraint
}

// Maximize solves: max c·x s.t. A·x ≤ b, x ≥ 0, with all b[i] ≥ 0.
// A is row-major with len(A) == len(b) rows and len(c) columns.
func Maximize(c []float64, a [][]float64, b []float64) (Result, error) {
	n := len(c)
	m := len(b)
	if len(a) != m {
		return Result{}, fmt.Errorf("lp: %d constraint rows but %d bounds", len(a), m)
	}
	for i, row := range a {
		if len(row) != n {
			return Result{}, fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
		if b[i] < -Eps {
			return Result{}, fmt.Errorf("lp: negative bound b[%d]=%g not supported", i, b[i])
		}
	}

	// Tableau: m rows of [A | I | b], objective row of [−c | 0 | 0].
	// Entry tab[m][j] is z_j − c_j; optimality when all ≥ 0.
	width := n + m + 1
	tab := make([][]float64, m+1)
	for i := 0; i < m; i++ {
		tab[i] = make([]float64, width)
		copy(tab[i], a[i])
		tab[i][n+i] = 1
		tab[i][width-1] = b[i]
	}
	tab[m] = make([]float64, width)
	for j := 0; j < n; j++ {
		tab[m][j] = -c[j]
	}

	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	maxIter := 50 * (n + m + 10)
	for iter := 0; ; iter++ {
		if iter > maxIter {
			return Result{}, errors.New("lp: iteration limit exceeded (cycling?)")
		}
		// Bland's rule: entering column = smallest index with negative
		// reduced cost.
		col := -1
		for j := 0; j < n+m; j++ {
			if tab[m][j] < -Eps {
				col = j
				break
			}
		}
		if col < 0 {
			break // optimal
		}
		// Ratio test; Bland's rule on ties (smallest basis index).
		row := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][col] > Eps {
				ratio := tab[i][width-1] / tab[i][col]
				if ratio < best-Eps || (ratio < best+Eps && (row < 0 || basis[i] < basis[row])) {
					best = ratio
					row = i
				}
			}
		}
		if row < 0 {
			return Result{}, ErrUnbounded
		}
		pivot(tab, row, col)
		basis[row] = col
	}

	res := Result{
		X:    make([]float64, n),
		Dual: make([]float64, m),
	}
	for i, bi := range basis {
		if bi < n {
			res.X[bi] = tab[i][width-1]
		}
	}
	for j := 0; j < n; j++ {
		res.Value += c[j] * res.X[j]
	}
	// Dual values are the reduced costs of the slack columns.
	for i := 0; i < m; i++ {
		res.Dual[i] = tab[m][n+i]
	}
	return res, nil
}

// MinimizeCover solves: min c·x s.t. A·x ≥ b, x ≥ 0, with c ≥ 0, b ≥ 0,
// by solving the dual packing LP max b·y s.t. Aᵀ·y ≤ c, y ≥ 0 and
// reading the primal cover from the dual's dual values. The returned
// Dual field holds the packing solution y.
func MinimizeCover(c []float64, a [][]float64, b []float64) (Result, error) {
	m := len(b) // rows of A == dual variables
	n := len(c) // cols of A == primal variables
	if len(a) != m {
		return Result{}, fmt.Errorf("lp: %d constraint rows but %d bounds", len(a), m)
	}
	at := make([][]float64, n)
	for j := 0; j < n; j++ {
		at[j] = make([]float64, m)
		for i := 0; i < m; i++ {
			at[j][i] = a[i][j]
		}
	}
	dual, err := Maximize(b, at, c)
	if err != nil {
		if errors.Is(err, ErrUnbounded) {
			return Result{}, ErrInfeasible
		}
		return Result{}, err
	}
	res := Result{
		X:     dual.Dual, // primal cover = dual values of the dual
		Value: dual.Value,
		Dual:  dual.X,
	}
	return res, nil
}

func pivot(tab [][]float64, row, col int) {
	p := tab[row][col]
	for j := range tab[row] {
		tab[row][j] /= p
	}
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for j := range tab[i] {
			tab[i][j] -= f * tab[row][j]
		}
	}
}
