package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestMaximizeTextbook(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  → x=2, y=6, z=36.
	res, err := Maximize(
		[]float64{3, 5},
		[][]float64{{1, 0}, {0, 2}, {3, 2}},
		[]float64{4, 12, 18},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Value, 36) || !approx(res.X[0], 2) || !approx(res.X[1], 6) {
		t.Errorf("got value %v X %v", res.Value, res.X)
	}
}

func TestMaximizeDegenerate(t *testing.T) {
	// A classic degenerate LP that cycles without Bland's rule
	// (Beale's example).
	res, err := Maximize(
		[]float64{0.75, -150, 0.02, -6},
		[][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
		},
		[]float64{0, 0, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Value, 0.05) {
		t.Errorf("Beale value = %v, want 0.05", res.Value)
	}
}

func TestMaximizeUnbounded(t *testing.T) {
	_, err := Maximize([]float64{1, 1}, [][]float64{{1, -1}}, []float64{1})
	if !errors.Is(err, ErrUnbounded) {
		t.Errorf("got %v, want ErrUnbounded", err)
	}
}

func TestMaximizeBadInput(t *testing.T) {
	if _, err := Maximize([]float64{1}, [][]float64{{1}}, []float64{-1}); err == nil {
		t.Errorf("negative bound accepted")
	}
	if _, err := Maximize([]float64{1}, [][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Errorf("ragged row accepted")
	}
	if _, err := Maximize([]float64{1}, [][]float64{}, []float64{1}); err == nil {
		t.Errorf("row/bound mismatch accepted")
	}
}

func TestTriangleEdgePackingLP(t *testing.T) {
	// Fractional edge packing of the triangle query:
	// max u1+u2+u3 s.t. each vertex constraint uR+uS ≤ 1 etc. → 3/2.
	res, err := Maximize(
		[]float64{1, 1, 1},
		[][]float64{
			{1, 0, 1}, // x ∈ R, T
			{1, 1, 0}, // y ∈ R, S
			{0, 1, 1}, // z ∈ S, T
		},
		[]float64{1, 1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Value, 1.5) {
		t.Errorf("triangle τ* = %v, want 1.5", res.Value)
	}
	for i, x := range res.X {
		if !approx(x, 0.5) {
			t.Errorf("u[%d] = %v, want 0.5", i, x)
		}
	}
}

func TestMinimizeCoverVertexCover(t *testing.T) {
	// Fractional edge cover of the triangle: min w1+w2+w3 with each
	// vertex covered → 3/2 with all weights 1/2.
	res, err := MinimizeCover(
		[]float64{1, 1, 1},
		[][]float64{
			{1, 0, 1},
			{1, 1, 0},
			{0, 1, 1},
		},
		[]float64{1, 1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Value, 1.5) {
		t.Errorf("cover value = %v, want 1.5", res.Value)
	}
	// Verify feasibility of the recovered primal cover.
	a := [][]float64{{1, 0, 1}, {1, 1, 0}, {0, 1, 1}}
	for i, row := range a {
		sum := 0.0
		for j, v := range row {
			sum += v * res.X[j]
		}
		if sum < 1-1e-6 {
			t.Errorf("constraint %d violated: %v", i, sum)
		}
	}
}

func TestMinimizeCoverInfeasible(t *testing.T) {
	// x must cover b=1 but has coefficient 0: infeasible.
	_, err := MinimizeCover([]float64{1}, [][]float64{{0}}, []float64{1})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("got %v, want ErrInfeasible", err)
	}
}

// Property: for random packing LPs, the primal and recovered dual obey
// weak duality and the solution is feasible.
func TestPropPackingFeasibleOptimal(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(4)
		m := 1 + r.Intn(4)
		c := make([]float64, n)
		for j := range c {
			c[j] = float64(r.Intn(5))
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = float64(r.Intn(4))
			}
			b[i] = float64(1 + r.Intn(6))
		}
		res, err := Maximize(c, a, b)
		if errors.Is(err, ErrUnbounded) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Feasibility.
		for i, row := range a {
			sum := 0.0
			for j, v := range row {
				sum += v * res.X[j]
			}
			if sum > b[i]+1e-6 {
				t.Fatalf("trial %d: constraint %d violated (%v > %v)", trial, i, sum, b[i])
			}
		}
		for j, x := range res.X {
			if x < -1e-9 {
				t.Fatalf("trial %d: negative x[%d]", trial, j)
			}
		}
		// Weak duality: c·x == b·y at optimum (strong duality).
		dualVal := 0.0
		for i, y := range res.Dual {
			if y < -1e-6 {
				t.Fatalf("trial %d: negative dual", trial)
			}
			dualVal += b[i] * y
		}
		if math.Abs(dualVal-res.Value) > 1e-5 {
			t.Fatalf("trial %d: duality gap %v vs %v", trial, dualVal, res.Value)
		}
	}
}
