package mpc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"mpclogic/internal/rel"
)

// TCP transport: the communication phase over real sockets. One
// loopback listener per simulated server plays the destination; every
// (shard, destination) pair ships exactly one length-prefixed frame
// per exchange — empty payloads included, so a receiver knows when a
// shard has nothing for it rather than waiting forever. Receivers
// collect frames in arrival order but merge them in ascending shard
// order, which is what makes the transport bit-compatible with the
// in-process merge no matter how the network interleaves deliveries.
//
// The wire carries the canonical rel fragment encoding (rel/wire.go),
// so a frame's payload decodes to exactly the outbox instance the
// router built, and re-encoding it reproduces the frame — the codec
// laws the fuzzer pins. Exchanges are sequence-numbered: frames from a
// past exchange still sitting in a listener backlog (duplication havoc
// leaves those behind by design) are recognized and discarded instead
// of corrupting the current round.
//
// Every frame carries a CRC-32C checksum over its header fields and
// payload, so a bit-flipped frame is rejected at the codec layer
// before any fragment decoding runs — the receiver drops it as line
// noise and the sender's retransmission carries the round. This is
// what makes the data plane self-healing under corruption havoc: a
// corrupted transfer costs retries in the virtual clock (faults.go
// Corrupt events) but can never change what the round computes.
//
// Deadlines on sockets are liveness bounds only — they decide when a
// broken exchange FAILS, never what a successful exchange computes —
// which is the one sanctioned use of wall time in engine code (see the
// wallclock-free analyzer's deadline allowance).

// Frame is one transport message: shard w's outbox for destination
// dst in exchange Seq, carrying the logical Sent count and the
// canonical fragment encoding as payload.
type Frame struct {
	Seq     uint64 // exchange sequence number, per transport
	Shard   uint32 // source shard index
	Dst     uint32 // destination server
	Sent    uint32 // logical facts in this delivery (payload fact count)
	Payload []byte // canonical rel instance encoding (may be empty-instance)
}

const (
	frameMagic uint32 = 0x4d435046 // "FPCM" little-endian
	// FrameVersion is the transport frame format version; bump on
	// layout changes so mismatched binaries fail loudly. Version 2
	// added the CRC-32C checksum field.
	FrameVersion uint16 = 2
	// frameHeaderLen is magic+version+seq+shard+dst+sent+payloadLen+crc.
	frameHeaderLen = 4 + 2 + 8 + 4 + 4 + 4 + 4 + 4
	// maxFramePayload caps a frame's declared payload so a corrupt
	// length prefix cannot trigger a huge allocation.
	maxFramePayload = 1 << 30
	// tcpIOTimeout bounds every socket operation (accept, read, write,
	// dial) of one exchange. Generous: it only fires when the exchange
	// is already broken.
	tcpIOTimeout = 10 * time.Second
)

// frameCRCTable is the Castagnoli polynomial table; CRC-32C detects
// all burst errors up to 32 bits, covering every single-bit flip the
// corruption havoc injects.
var frameCRCTable = crc32.MakeTable(crc32.Castagnoli)

// encodeFrame serializes f to its full wire image, checksum included.
// The CRC-32C covers every header field after magic+version plus the
// payload, so corruption anywhere in the frame body is detected.
func encodeFrame(f Frame) []byte {
	buf := make([]byte, frameHeaderLen+len(f.Payload))
	binary.LittleEndian.PutUint32(buf[0:], frameMagic)
	binary.LittleEndian.PutUint16(buf[4:], FrameVersion)
	binary.LittleEndian.PutUint64(buf[6:], f.Seq)
	binary.LittleEndian.PutUint32(buf[14:], f.Shard)
	binary.LittleEndian.PutUint32(buf[18:], f.Dst)
	binary.LittleEndian.PutUint32(buf[22:], f.Sent)
	binary.LittleEndian.PutUint32(buf[26:], uint32(len(f.Payload)))
	copy(buf[frameHeaderLen:], f.Payload)
	crc := crc32.Update(0, frameCRCTable, buf[6:frameHeaderLen-4])
	crc = crc32.Update(crc, frameCRCTable, f.Payload)
	binary.LittleEndian.PutUint32(buf[frameHeaderLen-4:], crc)
	return buf
}

// WriteFrame writes f to w in wire format (integers little-endian):
//
//	frame := magic u32 | version u16 | seq u64 | shard u32 | dst u32
//	       | sent u32 | payloadLen u32 | crc u32 | payload
//
// where crc is CRC-32C over seq..payloadLen plus the payload.
func WriteFrame(w io.Writer, f Frame) error {
	if _, err := w.Write(encodeFrame(f)); err != nil {
		return fmt.Errorf("mpc: writing frame: %w", err)
	}
	return nil
}

// ReadFrame reads one frame from r. Truncation, bad magic or version,
// oversized payload prefixes, and checksum mismatches are errors,
// never panics — a receiver treats them as line noise and drops the
// connection, counting on the sender's clean retransmission.
func ReadFrame(r io.Reader) (Frame, error) {
	hdr := make([]byte, frameHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Frame{}, fmt.Errorf("mpc: reading frame header: %w", err)
	}
	if magic := binary.LittleEndian.Uint32(hdr[0:]); magic != frameMagic {
		return Frame{}, fmt.Errorf("mpc: bad frame magic %#x (want %#x)", magic, frameMagic)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != FrameVersion {
		return Frame{}, fmt.Errorf("mpc: unsupported frame version %d (this peer speaks %d)", v, FrameVersion)
	}
	f := Frame{
		Seq:   binary.LittleEndian.Uint64(hdr[6:]),
		Shard: binary.LittleEndian.Uint32(hdr[14:]),
		Dst:   binary.LittleEndian.Uint32(hdr[18:]),
		Sent:  binary.LittleEndian.Uint32(hdr[22:]),
	}
	payloadLen := binary.LittleEndian.Uint32(hdr[26:])
	if payloadLen > maxFramePayload {
		return Frame{}, fmt.Errorf("mpc: frame declares %d payload bytes (cap %d)", payloadLen, maxFramePayload)
	}
	f.Payload = make([]byte, payloadLen)
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return Frame{}, fmt.Errorf("mpc: reading frame payload: %w", err)
	}
	want := binary.LittleEndian.Uint32(hdr[frameHeaderLen-4:])
	got := crc32.Update(0, frameCRCTable, hdr[6:frameHeaderLen-4])
	got = crc32.Update(got, frameCRCTable, f.Payload)
	if got != want {
		return Frame{}, fmt.Errorf("mpc: frame checksum mismatch (header says %#x, body hashes to %#x)", want, got)
	}
	return f, nil
}

// TCPTransport runs the communication phase over loopback TCP, one
// listener per simulated server. It implements Transport and
// FrameFaultInjector. Not safe for concurrent Exchange calls (the
// Transport contract already forbids them).
type TCPTransport struct {
	p         int
	listeners []*net.TCPListener
	addrs     []string
	seq       uint64
	closed    bool

	// Armed frame havoc for the next exchange (see InjectFrameFaults);
	// one-shot, cleared after use.
	havocRound int
	havocPlan  *FaultPlan
}

// NewTCPTransport opens p loopback listeners, one per simulated
// server, and returns a transport ready to Exchange. Callers own the
// transport and must Close it.
func NewTCPTransport(p int) (*TCPTransport, error) {
	if p <= 0 {
		return nil, fmt.Errorf("mpc: TCP transport needs at least one server (got p=%d)", p)
	}
	t := &TCPTransport{p: p}
	for i := 0; i < p; i++ {
		ln, err := net.ListenTCP("tcp", &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Close() //lint:allow error-discard best-effort unwind of the partial listener set
			return nil, fmt.Errorf("mpc: listening for server %d: %w", i, err)
		}
		t.listeners = append(t.listeners, ln)
		t.addrs = append(t.addrs, ln.Addr().String())
	}
	return t, nil
}

// Name implements Transport.
func (t *TCPTransport) Name() string { return "tcp" }

// Addrs returns the per-server listener addresses (for diagnostics).
func (t *TCPTransport) Addrs() []string { return append([]string(nil), t.addrs...) }

// Close shuts all listeners. Safe to call more than once.
func (t *TCPTransport) Close() error {
	t.closed = true
	var first error
	for _, ln := range t.listeners {
		if ln == nil {
			continue
		}
		if err := ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.listeners = nil
	return first
}

// InjectFrameFaults implements FrameFaultInjector: the next Exchange
// realizes plan's drops as aborted partial frames followed by a
// retransmission, its dups as extra identical frames the receiver's
// (seq, shard) dedup discards, and its corruptions as bit-flipped
// frames the receiver's checksum rejects. One-shot.
func (t *TCPTransport) InjectFrameFaults(round int, plan *FaultPlan) {
	t.havocRound, t.havocPlan = round, plan
}

// Exchange implements Transport: every shard's outbox for every
// destination travels as one frame over a fresh loopback connection;
// each destination's collector accepts until it has seen all shards
// for this exchange's sequence number, then merges them in ascending
// shard order. received counts are summed from the frames' Sent
// fields, so the returned accounting really crossed the wire.
func (t *TCPTransport) Exchange(round string, p int, shards []Shard) ([]*rel.Instance, []int, error) {
	if t.closed || len(t.listeners) == 0 {
		return nil, nil, fmt.Errorf("mpc: exchange %q on a closed TCP transport", round)
	}
	if p != t.p {
		return nil, nil, fmt.Errorf("mpc: exchange %q routed for %d servers on a %d-server TCP transport", round, p, t.p)
	}
	havocRound, havocPlan := t.havocRound, t.havocPlan
	t.havocPlan = nil
	t.seq++
	seq := t.seq

	inboxes := make([]*rel.Instance, p)
	received := make([]int, p)
	collectErrs := make([]error, p)
	sendErrs := make([]error, len(shards))

	var wg sync.WaitGroup
	for dst := 0; dst < p; dst++ {
		wg.Add(1)
		go func(dst int) {
			defer wg.Done()
			inboxes[dst], received[dst], collectErrs[dst] = t.collect(dst, seq, len(shards))
		}(dst)
	}
	for w := range shards {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sendErrs[w] = t.sendShard(w, seq, shards[w], havocRound, havocPlan)
		}(w)
	}
	wg.Wait()

	for _, err := range sendErrs {
		if err != nil {
			return nil, nil, fmt.Errorf("mpc: exchange %q: %w", round, err)
		}
	}
	for _, err := range collectErrs {
		if err != nil {
			return nil, nil, fmt.Errorf("mpc: exchange %q: %w", round, err)
		}
	}
	return inboxes, received, nil
}

// collect accepts frames on dst's listener until every shard of
// exchange seq has delivered, then merges the decoded fragments in
// ascending shard order. Line noise — aborted connections, malformed
// frames, frames from past exchanges, duplicate (seq, shard) frames —
// is discarded; only a complete well-formed frame with an undecodable
// payload is a hard error, because that means a peer speaks the frame
// format but not the fragment format.
func (t *TCPTransport) collect(dst int, seq uint64, nshards int) (*rel.Instance, int, error) {
	ln := t.listeners[dst]
	frags := make([]*rel.Instance, nshards)
	sent := make([]int, nshards)
	have := 0
	if err := ln.SetDeadline(time.Now().Add(tcpIOTimeout)); err != nil {
		return nil, 0, fmt.Errorf("server %d arming accept deadline: %w", dst, err)
	}
	for have < nshards {
		conn, err := ln.AcceptTCP()
		if err != nil {
			return nil, 0, fmt.Errorf("server %d accepting (have %d/%d shards): %w", dst, have, nshards, err)
		}
		f, err := func() (Frame, error) {
			defer conn.Close() // one frame per connection; close is best-effort
			if err := conn.SetDeadline(time.Now().Add(tcpIOTimeout)); err != nil {
				return Frame{}, err
			}
			return ReadFrame(conn)
		}()
		if err != nil {
			continue // aborted or malformed connection: line noise
		}
		if f.Seq != seq || int(f.Dst) != dst {
			continue // stale frame from a past exchange, or misrouted
		}
		if int(f.Shard) >= nshards || frags[f.Shard] != nil {
			continue // duplicate delivery: the merge is idempotent by dedup
		}
		inst, err := rel.DecodeInstance(f.Payload)
		if err != nil {
			return nil, 0, fmt.Errorf("server %d decoding shard %d fragment: %w", dst, f.Shard, err)
		}
		frags[f.Shard] = inst
		sent[f.Shard] = int(f.Sent)
		have++
	}
	inbox := rel.NewInstance()
	n := 0
	for w := 0; w < nshards; w++ {
		n += sent[w]
		for _, name := range frags[w].RelationNames() {
			o := frags[w].Relation(name)
			inbox.EnsureRelationSize(name, o.Arity, o.Len()).UnionWith(o)
		}
	}
	return inbox, n, nil
}

// sendShard ships shard w's outboxes: one frame per destination,
// always — an empty outbox still sends an empty-instance frame so the
// destination's collector can count the shard as heard from. Armed
// havoc is realized here: a dropped transfer becomes that many aborted
// connections before the real frame (the receiver discards the
// stumps), a duplicated transfer that many extra identical frames
// after it (the receiver dedups), and a corrupted transfer that many
// bit-flipped frames before the real one (the receiver's checksum
// rejects them).
func (t *TCPTransport) sendShard(w int, seq uint64, sh Shard, havocRound int, havocPlan *FaultPlan) error {
	for dst := 0; dst < t.p; dst++ {
		out := sh.Outs[dst]
		if out == nil {
			out = rel.NewInstance()
		}
		f := Frame{
			Seq:     seq,
			Shard:   uint32(w),
			Dst:     uint32(dst),
			Sent:    uint32(sh.Sent[dst]),
			Payload: rel.EncodeInstance(out),
		}
		drops, dups, corrupts := 0, 0, 0
		// Physical faults hit only real network links that carry facts,
		// mirroring the virtual clock's accounting in recovery.go (the
		// FT path routes one shard per source, so w is the source).
		if havocPlan != nil && w != dst && sh.Sent[dst] > 0 {
			drops = havocPlan.drops(havocRound, w, dst)
			dups = havocPlan.dups(havocRound, w, dst)
			corrupts = havocPlan.corrupts(havocRound, w, dst)
		}
		for i := 0; i < drops; i++ {
			if err := t.sendStump(dst, f, i); err != nil {
				return err
			}
		}
		for i := 0; i < corrupts; i++ {
			if err := t.sendCorruptFrame(dst, f, i); err != nil {
				return err
			}
		}
		if err := t.sendFrame(dst, f); err != nil {
			return fmt.Errorf("shard %d frame to server %d: %w", w, dst, err)
		}
		for i := 0; i < dups; i++ {
			if err := t.sendFrame(dst, f); err != nil {
				return fmt.Errorf("shard %d duplicate frame to server %d: %w", w, dst, err)
			}
		}
	}
	return nil
}

// dialJitter derives a deterministic 0–4ms jitter from (dst, attempt)
// so concurrent senders retrying against the same backlogged listener
// spread out instead of thundering back in lockstep. A hash, not a
// shared rand.Rand: sendShard goroutines dial concurrently and must
// not race on generator state.
func dialJitter(dst, attempt int) time.Duration {
	h := uint64(dst)*0x9e3779b97f4a7c15 + uint64(attempt)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	return time.Duration(h%5) * time.Millisecond
}

// dial connects to dst's listener with a bounded retry: concurrent
// exchanges can momentarily exhaust the accept backlog, and a refused
// or reset dial then succeeds a moment later. Backoff grows linearly
// with a deterministic per-(dst, attempt) jitter.
func (t *TCPTransport) dial(dst int) (net.Conn, error) {
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt)*10*time.Millisecond + dialJitter(dst, attempt)) //lint:allow wallclock-free bounded jittered dial backoff on connection I/O, never logical time
		}
		conn, err := net.DialTimeout("tcp", t.addrs[dst], tcpIOTimeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("dialing server %d: %w", dst, lastErr)
}

func (t *TCPTransport) sendFrame(dst int, f Frame) error {
	conn, err := t.dial(dst)
	if err != nil {
		return err
	}
	defer conn.Close() // frame fully written before close; close is best-effort
	if err := conn.SetDeadline(time.Now().Add(tcpIOTimeout)); err != nil {
		return err
	}
	return WriteFrame(conn, f)
}

// sendStump realizes one dropped transfer physically, alternating two
// failure shapes by attempt: even attempts die mid-header (a FIN after
// half a header), odd attempts ship the full header plus half the
// payload and then abort with an RST (SetLinger(0) discards unsent
// data and resets on close). Either way the receiver's ReadFrame
// fails, the stump is discarded as line noise, and the caller
// retransmits.
func (t *TCPTransport) sendStump(dst int, f Frame, attempt int) error {
	conn, err := t.dial(dst)
	if err != nil {
		return err
	}
	defer conn.Close() // aborting the connection IS the fault being injected
	if err := conn.SetDeadline(time.Now().Add(tcpIOTimeout)); err != nil {
		return err
	}
	buf := encodeFrame(f)
	cut := frameHeaderLen / 2
	if attempt%2 == 1 {
		cut = frameHeaderLen + len(f.Payload)/2
		if cut >= len(buf) {
			cut = len(buf) - 1 // an empty payload still must not complete the frame
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetLinger(0) //lint:allow error-discard arming the RST is the fault being injected; failure degrades to a FIN abort
		}
	}
	if _, err := conn.Write(buf[:cut]); err != nil {
		return fmt.Errorf("aborted frame to server %d: %w", dst, err)
	}
	return nil
}

// sendCorruptFrame realizes one corrupted transfer physically: the
// complete frame ships with a single payload bit flipped after the
// checksum was computed, so the receiver's CRC verification rejects it
// as line noise and the caller's clean retransmission carries the
// round. The flipped position is a deterministic function of the
// attempt, so repeated corruptions hit different bytes.
func (t *TCPTransport) sendCorruptFrame(dst int, f Frame, attempt int) error {
	buf := encodeFrame(f)
	if len(f.Payload) == 0 {
		// Nothing to flip; an aborted connection is the nearest fault.
		return t.sendStump(dst, f, attempt)
	}
	pos := frameHeaderLen + (attempt*131+7)%len(f.Payload)
	buf[pos] ^= 1 << (attempt % 8)

	conn, err := t.dial(dst)
	if err != nil {
		return err
	}
	defer conn.Close() // full (corrupt) frame written before close; close is best-effort
	if err := conn.SetDeadline(time.Now().Add(tcpIOTimeout)); err != nil {
		return err
	}
	if _, err := conn.Write(buf); err != nil {
		return fmt.Errorf("corrupted frame to server %d: %w", dst, err)
	}
	return nil
}
