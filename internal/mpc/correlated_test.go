package mpc

import (
	"strings"
	"testing"
)

func TestGroupCrashExpands(t *testing.T) {
	p := NewFaultPlan().AddGroupCrash(2, []int{1, 3, 4}, 2)
	for _, s := range []int{1, 3, 4} {
		if got := p.crashes(2, s); got != 2 {
			t.Errorf("crashes(2,%d) = %d, want 2", s, got)
		}
	}
	if p.crashes(2, 0) != 0 || p.crashes(1, 1) != 0 {
		t.Errorf("group crash leaked outside the group/round")
	}
}

func TestGroupPartitionExpands(t *testing.T) {
	// Rack {0,1} partitioned off a 4-server cluster: all 8 boundary
	// links (2 inside × 2 outside × both directions) drop, intra-rack
	// and outside-outside links don't.
	p := NewFaultPlan().AddGroupPartition(1, []int{0, 1}, 4, 3)
	drops := 0
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			in := func(s int) bool { return s < 2 }
			got := p.drops(1, src, dst)
			if src != dst && in(src) != in(dst) {
				if got != 3 {
					t.Errorf("boundary link %d→%d has %d drops, want 3", src, dst, got)
				}
				drops++
			} else if got != 0 {
				t.Errorf("non-boundary link %d→%d has %d drops", src, dst, got)
			}
		}
	}
	if drops != 8 {
		t.Errorf("saw %d boundary links, want 8", drops)
	}
}

func TestRackHelper(t *testing.T) {
	if got := Rack(0, 3, 8); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("Rack(0,3,8) = %v", got)
	}
	if got := Rack(2, 3, 8); len(got) != 2 || got[0] != 6 || got[1] != 7 {
		t.Errorf("last rack should be short: Rack(2,3,8) = %v", got)
	}
}

func TestRandomCorrelatedFaultPlanDeterministic(t *testing.T) {
	prof := CorrelatedProfile{RackCrashRate: 0.3, RackPartitionRate: 0.3, MaxRepeat: 2}
	a := RandomCorrelatedFaultPlan(42, 6, 8, 2, prof)
	b := RandomCorrelatedFaultPlan(42, 6, 8, 2, prof)
	for r := 0; r < 6; r++ {
		for s := 0; s < 8; s++ {
			if a.crashes(r, s) != b.crashes(r, s) {
				t.Fatalf("same seed, different crash at round %d server %d", r, s)
			}
			for d := 0; d < 8; d++ {
				if a.drops(r, s, d) != b.drops(r, s, d) {
					t.Fatalf("same seed, different drop at round %d %d→%d", r, s, d)
				}
			}
		}
	}
	if a.Empty() {
		t.Fatalf("profile too weak: empty correlated plan")
	}
}

// TestCorrelatedFaultTransparency: rack-scoped plans ride the existing
// crash/drop recovery machinery, so output and logical trace stay
// byte-identical to fault-free.
func TestCorrelatedFaultTransparency(t *testing.T) {
	p := 6
	load, rounds := byzProgram(p)
	base := NewCluster(p)
	base.LoadRoundRobin(load)
	if err := base.Run(rounds...); err != nil {
		t.Fatal(err)
	}

	plans := []*FaultPlan{
		NewFaultPlan().AddGroupCrash(0, Rack(0, 2, p), 2),
		NewFaultPlan().AddGroupPartition(0, Rack(1, 2, p), p, 2),
		NewFaultPlan().
			AddGroupCrash(1, Rack(2, 2, p), 1).
			AddGroupPartition(0, Rack(0, 2, p), p, 1),
	}
	for i, plan := range plans {
		faulty := NewCluster(p, WithFaultPlan(plan))
		faulty.LoadRoundRobin(load)
		if err := faulty.Run(rounds...); err != nil {
			t.Fatalf("plan %d not recovered: %v", i, err)
		}
		if faulty.Output().String() != base.Output().String() {
			t.Errorf("plan %d: output diverged", i)
		}
		if faulty.LogicalTrace() != base.LogicalTrace() {
			t.Errorf("plan %d: logical trace diverged", i)
		}
		if faulty.RecoveryTotals().Retries == 0 {
			t.Errorf("plan %d fired no recovery work (vacuous)", i)
		}
	}
}

func TestCorruptAccounting(t *testing.T) {
	plan := NewFaultPlan().AddCorrupt(0, 0, 1, 2)
	c, r := twoServerTransfer(t, WithFaultPlan(plan))
	st, err := c.RunRound(r)
	if err != nil {
		t.Fatal(err)
	}
	// Corruption is detected-and-retransmitted: same schedule as a
	// double drop.
	if st.Retries != 2 || st.ReplicaComm != 2 {
		t.Errorf("retries=%d replica=%d, want 2, 2", st.Retries, st.ReplicaComm)
	}
	if st.VirtualMakespan != 7 {
		t.Errorf("makespan=%d, want 7", st.VirtualMakespan)
	}
	if st.MaxLoad != 1 || st.TotalComm != 1 {
		t.Errorf("logical metrics changed: maxload=%d totalcomm=%d", st.MaxLoad, st.TotalComm)
	}
	if c.Server(1).Len() != 1 {
		t.Errorf("fact not delivered after corrupted transfers")
	}
}

func TestCorruptBudgetExceeded(t *testing.T) {
	plan := NewFaultPlan().AddCorrupt(0, 0, 1, 5)
	c, r := twoServerTransfer(t, WithFaultPlan(plan))
	_, err := c.RunRound(r)
	if err == nil || !strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("want corrupted-budget error, got %v", err)
	}
	if c.Rounds() != 0 {
		t.Errorf("failed round recorded stats")
	}
}

func TestCorruptRateVariatePreserving(t *testing.T) {
	// Adding CorruptRate to a profile must not change where the
	// pre-existing fault kinds land for the same seed.
	base := DefaultFaultProfile()
	withCorrupt := base
	withCorrupt.CorruptRate = 0.2
	a := RandomFaultPlan(7, 5, 6, base)
	b := RandomFaultPlan(7, 5, 6, withCorrupt)
	for r := 0; r < 5; r++ {
		for s := 0; s < 6; s++ {
			if a.crashes(r, s) != b.crashes(r, s) || a.straggles(r, s) != b.straggles(r, s) {
				t.Fatalf("corrupt draws shifted server faults at round %d server %d", r, s)
			}
			for d := 0; d < 6; d++ {
				if a.drops(r, s, d) != b.drops(r, s, d) || a.dups(r, s, d) != b.dups(r, s, d) {
					t.Fatalf("corrupt draws shifted link faults at round %d %d→%d", r, s, d)
				}
			}
		}
	}
	if len(b.corrupt) == 0 {
		t.Fatalf("CorruptRate drew nothing")
	}
}

func TestStandardFaultMatrixIncludesCorrelatedPlans(t *testing.T) {
	m := StandardFaultMatrix(7, 4, 8)
	if len(m) != 13 {
		t.Fatalf("matrix has %d plans, want 13", len(m))
	}
	names := map[string]bool{}
	for _, np := range m {
		names[np.Name] = true
	}
	for _, want := range []string{"corrupt-only", "rack-crash", "rack-partition", "rack-adversary"} {
		if !names[want] {
			t.Errorf("matrix missing plan %q", want)
		}
	}
	// The pre-existing prefix is stable: short-mode slices of the
	// matrix keep exercising the same plans they always did.
	if m[0].Name != "crash-only" || m[8].Name != "adversary-round0" {
		t.Errorf("matrix prefix reordered: %s ... %s", m[0].Name, m[8].Name)
	}
}
