package mpc

import (
	"testing"

	"mpclogic/internal/cq"
	"mpclogic/internal/rel"
)

func chainInstance(n int) *rel.Instance {
	i := rel.NewInstance()
	for k := 0; k < n; k++ {
		i.Add(rel.NewFact("R", rel.Value(k), rel.Value(k+1)))
	}
	return i
}

func TestClusterLoadRoundRobin(t *testing.T) {
	c := NewCluster(4)
	c.LoadRoundRobin(chainInstance(10))
	total := 0
	for i := 0; i < 4; i++ {
		n := c.Server(i).Len()
		total += n
		if n < 2 || n > 3 {
			t.Errorf("server %d holds %d facts; want 2 or 3", i, n)
		}
	}
	if total != 10 {
		t.Errorf("facts lost in loading: %d", total)
	}
}

func TestRunRoundAccounting(t *testing.T) {
	c := NewCluster(2)
	i := rel.MustInstance(rel.NewDict(), "R(1,2)", "R(3,4)", "R(5,6)")
	c.LoadRoundRobin(i)
	stats, err := c.RunRound(Round{Name: "bcast", Route: Broadcast(2)})
	if err != nil {
		t.Fatal(err)
	}
	// Every fact goes to both servers: total = 6, max per server = 3.
	if stats.TotalComm != 6 || stats.MaxLoad != 3 {
		t.Errorf("stats = %+v", stats)
	}
	if c.Rounds() != 1 || c.TotalComm() != 6 || c.MaxLoad() != 3 {
		t.Errorf("cluster aggregates wrong")
	}
	for s := 0; s < 2; s++ {
		if c.Server(s).Len() != 3 {
			t.Errorf("server %d has %d facts after broadcast", s, c.Server(s).Len())
		}
	}
	if c.Output().Len() != 3 {
		t.Errorf("output = %d facts", c.Output().Len())
	}
}

func TestRunRoundComputePhase(t *testing.T) {
	d := rel.NewDict()
	c := NewCluster(3)
	c.LoadRoundRobin(rel.MustInstance(d, "R(a,b)", "R(b,c)", "R(c,d)", "S(b,x)", "S(c,y)"))
	q := cq.MustParse(d, "J(x, y, z) :- R(x, y), S(y, z)")
	err := c.Run(Round{
		Name:  "repartition-join",
		Route: ByRelation(map[string]Router{"R": HashOn(3, []int{1}, 0), "S": HashOn(3, []int{0}, 0)}),
		Compute: func(_ int, local *rel.Instance) *rel.Instance {
			return cq.Output(q, local)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := rel.MustInstance(d, "J(a,b,x)", "J(b,c,y)")
	if !c.Output().Equal(want) {
		t.Errorf("join output = %v, want %v", c.Output().StringWith(d), want.StringWith(d))
	}
}

func TestRouteOutOfRange(t *testing.T) {
	c := NewCluster(2)
	c.LoadRoundRobin(chainInstance(1))
	_, err := c.RunRound(Round{Route: RouterFunc(func(rel.Fact) []int { return []int{7} })})
	if err == nil {
		t.Errorf("out-of-range destination accepted")
	}
}

func TestDroppedFacts(t *testing.T) {
	c := NewCluster(2)
	c.LoadRoundRobin(chainInstance(4))
	// Router drops everything.
	stats, err := c.RunRound(Round{Route: ByRelation(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalComm != 0 || c.Output().Len() != 0 {
		t.Errorf("dropped facts still travelled: %+v", stats)
	}
}

func TestMultiRoundStatsAccumulate(t *testing.T) {
	c := NewCluster(2)
	c.LoadRoundRobin(chainInstance(4))
	if err := c.Run(
		Round{Name: "r1", Route: HashOn(2, []int{0}, 0)},
		Round{Name: "r2", Route: HashOn(2, []int{1}, 99)},
	); err != nil {
		t.Fatal(err)
	}
	if c.Rounds() != 2 {
		t.Errorf("rounds = %d", c.Rounds())
	}
	if c.Stats()[0].Name != "r1" || c.Stats()[1].Name != "r2" {
		t.Errorf("round names lost")
	}
	if c.TotalComm() != 8 {
		t.Errorf("total communication = %d, want 8 (4 facts × 2 rounds)", c.TotalComm())
	}
}

func TestHashOnDeterministicAndSeeded(t *testing.T) {
	r1 := HashOn(8, []int{0}, 0)
	r2 := HashOn(8, []int{0}, 12345)
	f := rel.NewFact("R", 42, 7)
	if r1.Route(f)[0] != r1.Route(f)[0] {
		t.Errorf("router nondeterministic")
	}
	diff := false
	for v := rel.Value(0); v < 64; v++ {
		g := rel.NewFact("R", v, 0)
		if r1.Route(g)[0] != r2.Route(g)[0] {
			diff = true
			break
		}
	}
	if !diff {
		t.Errorf("seed has no effect on routing")
	}
}

func TestLoadAt(t *testing.T) {
	d := rel.NewDict()
	c := NewCluster(2)
	c.LoadAt(1, rel.MustInstance(d, "R(a,b)"))
	if c.Server(0).Len() != 0 || c.Server(1).Len() != 1 {
		t.Errorf("LoadAt misplaced facts")
	}
}

func TestNewClusterPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("zero-server cluster accepted")
		}
	}()
	NewCluster(0)
}

func TestDuplicateDeliveriesCounted(t *testing.T) {
	// Two servers each hold a copy of the same fact; both send it to
	// server 0. Load counts deliveries (2), data is deduplicated (1).
	d := rel.NewDict()
	c := NewCluster(2)
	f := rel.MustInstance(d, "R(a,b)")
	c.LoadAt(0, f)
	c.LoadAt(1, f)
	stats, err := c.RunRound(Round{Route: RouterFunc(func(rel.Fact) []int { return []int{0} })})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Received[0] != 2 {
		t.Errorf("deliveries = %d, want 2", stats.Received[0])
	}
	if c.Server(0).Len() != 1 {
		t.Errorf("server kept %d copies", c.Server(0).Len())
	}
}
