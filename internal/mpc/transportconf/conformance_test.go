package transportconf

import (
	"testing"

	"mpclogic/internal/mpc"
)

// TestLocalConformance runs the suite against the in-process
// reference transport — the suite must hold on the path the golden
// traces pin, or it is testing the wrong contract.
func TestLocalConformance(t *testing.T) {
	RunConformance(t, func(p int) (mpc.Transport, error) {
		return mpc.NewLocalTransport(), nil
	})
}

// TestTCPConformance runs the identical suite over real loopback
// sockets: same deliveries, same merge determinism, same atomicity —
// the shard granularity and the wire must both be invisible.
func TestTCPConformance(t *testing.T) {
	RunConformance(t, func(p int) (mpc.Transport, error) {
		return mpc.NewTCPTransport(p)
	})
}
