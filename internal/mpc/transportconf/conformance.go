// Package transportconf is the executable contract of mpc.Transport:
// a reusable conformance suite that any transport — the in-process
// Local path, the TCP frame path, or a future one — must pass
// unchanged. The suite checks the four clauses of the Transport
// contract (delivery, deterministic merge, error atomicity, logical
// cost accounting) both at the Exchange level with hand-built shards
// and at the cluster level through RunRound, where routing errors and
// panicking user code must leave the cluster untouched regardless of
// how far the wire got.
package transportconf

import (
	"strings"
	"testing"

	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
)

// Factory builds a fresh transport for a p-server deployment. The
// suite closes what it opens.
type Factory func(p int) (mpc.Transport, error)

// RunConformance runs the full conformance suite against the
// transport the factory builds. Each subtest gets a fresh transport.
func RunConformance(t *testing.T, factory Factory) {
	t.Helper()
	t.Run("Delivery", func(t *testing.T) { testDelivery(t, factory) })
	t.Run("DeterministicMerge", func(t *testing.T) { testDeterministicMerge(t, factory) })
	t.Run("EmptyExchange", func(t *testing.T) { testEmptyExchange(t, factory) })
	t.Run("LogicalCounts", func(t *testing.T) { testLogicalCounts(t, factory) })
	t.Run("RoutingErrorAtomic", func(t *testing.T) { testRoutingErrorAtomic(t, factory) })
	t.Run("PanicRecoveryAtomic", func(t *testing.T) { testPanicRecoveryAtomic(t, factory) })
	t.Run("ProgramEquivalence", func(t *testing.T) { testProgramEquivalence(t, factory) })
}

func open(t *testing.T, factory Factory, p int) mpc.Transport {
	t.Helper()
	tr, err := factory(p)
	if err != nil {
		t.Fatalf("factory(%d): %v", p, err)
	}
	t.Cleanup(func() {
		if err := tr.Close(); err != nil {
			t.Errorf("closing transport: %v", err)
		}
	})
	return tr
}

// outbox builds a round-private instance from facts.
func outbox(facts ...rel.Fact) *rel.Instance {
	i := rel.NewInstance()
	for _, f := range facts {
		i.Add(f)
	}
	return i
}

// sampleShards builds a 2-shard exchange on 3 servers with the shapes
// that matter: a destination fed by both shards (must union), one fed
// by a single shard, one fed nothing by a shard (nil outbox), and
// overlapping facts across shards (must dedup). Shards are
// round-private, so every call builds fresh instances.
func sampleShards() []mpc.Shard {
	return []mpc.Shard{
		{
			Outs: []*rel.Instance{
				outbox(rel.NewFact("R", 1, 2)),
				outbox(rel.NewFact("R", 3, 4), rel.NewFact("S", 7)),
				nil,
			},
			Sent: []int{1, 2, 0},
		},
		{
			Outs: []*rel.Instance{
				nil,
				outbox(rel.NewFact("R", 3, 4), rel.NewFact("ΔE", -1, 0)),
				outbox(rel.NewFact("S", 9)),
			},
			Sent:      []int{0, 2, 1},
			DeltaSent: 1,
		},
	}
}

// sampleWant is the contractual result of exchanging sampleShards:
// per-destination fact unions and Σ-of-Sent received counts.
func sampleWant() ([]*rel.Instance, []int) {
	want := []*rel.Instance{
		outbox(rel.NewFact("R", 1, 2)),
		outbox(rel.NewFact("R", 3, 4), rel.NewFact("S", 7), rel.NewFact("ΔE", -1, 0)),
		outbox(rel.NewFact("S", 9)),
	}
	return want, []int{1, 4, 1}
}

func testDelivery(t *testing.T, factory Factory) {
	tr := open(t, factory, 3)
	want, wantRecv := sampleWant()
	inboxes, received, err := tr.Exchange("conf-delivery", 3, sampleShards())
	if err != nil {
		t.Fatalf("%s exchange: %v", tr.Name(), err)
	}
	if len(inboxes) != 3 || len(received) != 3 {
		t.Fatalf("%s returned %d inboxes / %d counts, want 3/3", tr.Name(), len(inboxes), len(received))
	}
	for dst := range want {
		if inboxes[dst] == nil {
			t.Fatalf("%s left inbox %d nil", tr.Name(), dst)
		}
		if !inboxes[dst].Equal(want[dst]) {
			t.Errorf("%s inbox %d = %v, want %v", tr.Name(), dst, inboxes[dst], want[dst])
		}
		if received[dst] != wantRecv[dst] {
			t.Errorf("%s received[%d] = %d, want %d", tr.Name(), dst, received[dst], wantRecv[dst])
		}
	}
}

func testDeterministicMerge(t *testing.T, factory Factory) {
	tr := open(t, factory, 3)
	first, firstRecv, err := tr.Exchange("conf-det", 3, sampleShards())
	if err != nil {
		t.Fatalf("first exchange: %v", err)
	}
	for round := 0; round < 3; round++ {
		again, againRecv, err := tr.Exchange("conf-det", 3, sampleShards())
		if err != nil {
			t.Fatalf("repeat exchange %d: %v", round, err)
		}
		for dst := range first {
			if !again[dst].Equal(first[dst]) {
				t.Fatalf("%s exchange %d inbox %d differs from the first run: %v vs %v",
					tr.Name(), round, dst, again[dst], first[dst])
			}
			if againRecv[dst] != firstRecv[dst] {
				t.Fatalf("%s exchange %d received[%d] = %d, first run said %d",
					tr.Name(), round, dst, againRecv[dst], firstRecv[dst])
			}
		}
	}
}

func testEmptyExchange(t *testing.T, factory Factory) {
	tr := open(t, factory, 2)
	shards := []mpc.Shard{
		{Outs: make([]*rel.Instance, 2), Sent: make([]int, 2)},
		{Outs: make([]*rel.Instance, 2), Sent: make([]int, 2)},
	}
	inboxes, received, err := tr.Exchange("conf-empty", 2, shards)
	if err != nil {
		t.Fatalf("empty exchange: %v", err)
	}
	for dst := range inboxes {
		if inboxes[dst] == nil || !inboxes[dst].IsEmpty() {
			t.Errorf("%s empty exchange produced inbox %d = %v, want empty", tr.Name(), dst, inboxes[dst])
		}
		if received[dst] != 0 {
			t.Errorf("%s empty exchange counted received[%d] = %d", tr.Name(), dst, received[dst])
		}
	}
}

// testLogicalCounts pins the cost clause: received counts are the
// logical Sent sums, not payload sizes — a Keep-style delivery ships
// facts the model does not charge, and the transport must not invent
// charges for them.
func testLogicalCounts(t *testing.T, factory Factory) {
	tr := open(t, factory, 2)
	shards := []mpc.Shard{{
		// Two facts travel to server 0, but only one is a counted
		// routed delivery (the other is a Keep fact staying local).
		Outs: []*rel.Instance{outbox(rel.NewFact("R", 1, 2), rel.NewFact("R", 5, 6)), nil},
		Sent: []int{1, 0},
	}}
	inboxes, received, err := tr.Exchange("conf-counts", 2, shards)
	if err != nil {
		t.Fatalf("exchange: %v", err)
	}
	if got := inboxes[0].Len(); got != 2 {
		t.Errorf("%s delivered %d facts to server 0, want 2", tr.Name(), got)
	}
	if received[0] != 1 {
		t.Errorf("%s received[0] = %d, want the logical count 1", tr.Name(), received[0])
	}
}

// snapshot captures a cluster's visible state for atomicity checks.
func snapshot(c *mpc.Cluster) []*rel.Instance {
	out := make([]*rel.Instance, c.P())
	for i := 0; i < c.P(); i++ {
		snap := rel.NewInstance()
		snap.AddAll(c.Server(i))
		out[i] = snap
	}
	return out
}

func assertUntouched(t *testing.T, c *mpc.Cluster, before []*rel.Instance) {
	t.Helper()
	if c.Rounds() != 0 {
		t.Errorf("failed round recorded stats: %d rounds", c.Rounds())
	}
	for i := range before {
		if !c.Server(i).Equal(before[i]) {
			t.Errorf("failed round mutated server %d: %v, want %v", i, c.Server(i), before[i])
		}
	}
}

func loadPair(c *mpc.Cluster) {
	in := rel.NewInstance()
	in.Add(rel.NewFact("E", 1, 2))
	in.Add(rel.NewFact("E", 2, 3))
	in.Add(rel.NewFact("E", 3, 4))
	c.LoadRoundRobin(in)
}

func testRoutingErrorAtomic(t *testing.T, factory Factory) {
	tr := open(t, factory, 2)
	c := mpc.NewCluster(2, mpc.WithTransport(tr))
	loadPair(c)
	before := snapshot(c)
	_, err := c.RunRound(mpc.Round{
		Name:  "bad-route",
		Route: mpc.RouterFunc(func(rel.Fact) []int { return []int{5} }),
	})
	if err == nil {
		t.Fatalf("%s: out-of-range route did not error", tr.Name())
	}
	if !strings.Contains(err.Error(), "outside") {
		t.Errorf("%s: routing error %q does not name the range violation", tr.Name(), err)
	}
	assertUntouched(t, c, before)
}

func testPanicRecoveryAtomic(t *testing.T, factory Factory) {
	tr := open(t, factory, 2)
	c := mpc.NewCluster(2, mpc.WithTransport(tr))
	loadPair(c)
	before := snapshot(c)
	_, err := c.RunRound(mpc.Round{
		Name:  "panicking-router",
		Route: mpc.RouterFunc(func(rel.Fact) []int { panic("router bug") }),
	})
	if err == nil {
		t.Fatalf("%s: panicking router did not error", tr.Name())
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("%s: panic error %q does not say so", tr.Name(), err)
	}
	assertUntouched(t, c, before)

	_, err = c.RunRound(mpc.Round{
		Name:    "panicking-compute",
		Route:   mpc.HashOn(2, []int{0}, 1),
		Compute: func(int, *rel.Instance) *rel.Instance { panic("compute bug") },
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("%s: panicking compute error = %v, want panic error", tr.Name(), err)
	}
	assertUntouched(t, c, before)
}

// testProgramEquivalence runs a small two-round join program through
// RunRound on the transport under test and on the reference Local
// transport: output, per-server state, and the logical trace must be
// byte-identical — the cluster-level restatement of the merge
// determinism clause.
func testProgramEquivalence(t *testing.T, factory Factory) {
	run := func(tr mpc.Transport) *mpc.Cluster {
		c := mpc.NewCluster(3, mpc.WithTransport(tr))
		loadPair(c)
		rounds := []mpc.Round{
			{
				Name:  "shuffle",
				Route: mpc.HashOn(3, []int{1}, 42),
			},
			{
				Name:  "join",
				Route: mpc.HashOn(3, []int{0}, 43),
				Compute: func(_ int, local *rel.Instance) *rel.Instance {
					out := rel.NewInstance()
					if e := local.Relation("E"); e != nil {
						e.Each(func(a rel.Tuple) bool {
							e.Each(func(b rel.Tuple) bool {
								if a[1] == b[0] {
									out.Add(rel.NewFact("P", a[0], b[1]))
								}
								return true
							})
							return true
						})
					}
					out.AddAll(local)
					return out
				},
			},
		}
		if err := c.Run(rounds...); err != nil {
			t.Fatalf("%s program: %v", tr.Name(), err)
		}
		return c
	}
	ref := run(mpc.NewLocalTransport())
	got := run(open(t, factory, 3))
	if !got.Output().Equal(ref.Output()) {
		t.Errorf("output differs from the local-transport reference:\n got %v\nwant %v", got.Output(), ref.Output())
	}
	for i := 0; i < 3; i++ {
		if !got.Server(i).Equal(ref.Server(i)) {
			t.Errorf("server %d state differs from the local-transport reference", i)
		}
	}
	if got.LogicalTrace() != ref.LogicalTrace() {
		t.Errorf("logical trace differs from the local-transport reference:\n got %q\nwant %q",
			got.LogicalTrace(), ref.LogicalTrace())
	}
}
