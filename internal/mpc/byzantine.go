package mpc

import (
	"fmt"
	"math/rand"
	"sort"

	"mpclogic/internal/rel"
)

// Byzantine routing faults and receiver-side routing verification.
//
// The crash-stop machinery in faults.go/recovery.go models servers
// that fail by stopping. A Byzantine server does not stop: it keeps
// participating while violating the routing contract — shipping facts
// to servers the round's Router never named (misroute), fabricating
// facts that exist on no server (forge), or silently withholding facts
// it was supposed to send (omit). In the parallel-correctness view
// this is exactly an integrity violation of the distribution policy:
// the Router IS the policy deciding where facts are allowed to live,
// so a receiver can re-ask it whether an arriving fact belongs — the
// same covers/transfer reasoning internal/pc applies to whole
// policies, applied per delivery.
//
// Detection is therefore two-layered, mirroring what a real deployment
// can check:
//
//   - Receiver-side legality: every delivery (src, dst, f) is checked
//     against the round's own Keep/Route decision (legalShardDst). This
//     is cheap, needs no extra state, and catches any fact placed where
//     the policy forbids it — misroutes and forged facts at illegal
//     destinations.
//   - Audit by deterministic re-execution: routing is a pure function
//     of the server's committed pre-round state (RouteSource, the same
//     entry point remote workers use), so an auditor re-derives the
//     honest shard and diffs it against what the accused actually
//     shipped. This additionally catches selective omission, which no
//     receiver can see locally.
//
// Recovery reuses the crash-stop path's determinism argument: a
// transiently lying server is quarantined — its shard is replaced by
// the audited re-execution, charged to the recovery metrics
// (Quarantined, Retries, ReplicaComm, virtual-clock ticks) — and the
// round proceeds with byte-identical logical output. A persistently
// compromised server lies identically under audit re-execution, so its
// corruption survives the audit; if any of it is illegal under the
// policy the round fails with a typed RoutingIntegrityError naming the
// Fact.Less-minimal witness and the accused server. A persistent
// omitter whose audit matches and whose deliveries are all legal is
// undetectable by design (it is indistinguishable from a smaller
// input), which is why ByzantineFaultMatrix excludes that corner; the
// DESIGN.md failure-model taxonomy spells out the boundary.

// ByzKind names the ways a Byzantine server can violate the routing
// contract.
type ByzKind int

const (
	// Misroute ships routed facts to destinations the Router never
	// named.
	Misroute ByzKind = iota
	// Forge fabricates facts that exist on no server and ships them.
	Forge
	// Omit silently withholds routed facts (a selective drop: unlike a
	// FaultPlan drop, nothing is ever retransmitted voluntarily).
	Omit
)

// String names the kind.
func (k ByzKind) String() string {
	switch k {
	case Misroute:
		return "misroute"
	case Forge:
		return "forge"
	case Omit:
		return "omit"
	}
	return fmt.Sprintf("ByzKind(%d)", int(k))
}

// verb is the past-tense rendering used in error messages.
func (k ByzKind) verb() string {
	switch k {
	case Misroute:
		return "misrouted"
	case Forge:
		return "forged"
	default:
		return "omitted"
	}
}

// ByzantineEvent makes server Src corrupt its round-Round communication
// phase: Count facts are misrouted/forged/omitted, with the concrete
// choices drawn from Seed so the corruption is as reproducible as the
// rest of the engine. Persistent marks a compromised server — one that
// lies identically when the auditor re-executes its routing — as
// opposed to a transient glitch that re-execution heals.
type ByzantineEvent struct {
	Round      int
	Src        int
	Kind       ByzKind
	Count      int
	Seed       int64
	Persistent bool
}

// ByzantinePlan schedules Byzantine routing events, the adversarial
// counterpart of FaultPlan's crash-stop schedule.
type ByzantinePlan struct {
	events []ByzantineEvent
}

// NewByzantinePlan returns an empty plan (corrupts nothing).
func NewByzantinePlan() *ByzantinePlan { return &ByzantinePlan{} }

// Add schedules one event.
func (p *ByzantinePlan) Add(ev ByzantineEvent) *ByzantinePlan {
	p.events = append(p.events, ev)
	return p
}

// Empty reports whether the plan schedules any event at all.
func (p *ByzantinePlan) Empty() bool { return p == nil || len(p.events) == 0 }

// String summarizes the plan.
func (p *ByzantinePlan) String() string {
	if p.Empty() {
		return "byzantine plan: none"
	}
	return fmt.Sprintf("byzantine plan: %d event(s)", len(p.events))
}

// eventsAt returns round's events in ascending source order (stable for
// events of the same source, so multi-event corruption is applied in
// schedule order).
func (p *ByzantinePlan) eventsAt(round int) []ByzantineEvent {
	if p == nil {
		return nil
	}
	var out []ByzantineEvent
	for _, ev := range p.events {
		if ev.Round == round {
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Src < out[j].Src })
	return out
}

// RoutingIntegrityError is the typed failure of routing verification: a
// delivery that violates the round's placement policy and survives the
// re-execution audit (a persistently compromised server). Witness is
// the Fact.Less-minimal illegally placed fact, so repeated failing runs
// report the same evidence.
type RoutingIntegrityError struct {
	Round     int    // absolute round index
	RoundName string // Round.Name
	Accused   int    // source server the verification layer blames
	Dst       int    // destination whose inbox held the witness
	Kind      ByzKind
	Witness   rel.Fact
}

// Error implements error.
func (e *RoutingIntegrityError) Error() string {
	return fmt.Sprintf("mpc: routing integrity violation in round %q (round %d): server %d %s %v bound for server %d",
		e.RoundName, e.Round, e.Accused, e.Kind.verb(), e.Witness, e.Dst)
}

// WithByzantinePlan installs a Byzantine routing-fault plan and enables
// the fault-tolerant execution path (detection needs the per-source
// shards and checkpointed state that path maintains). Plan round
// indices are absolute, as with WithFaultPlan.
func WithByzantinePlan(p *ByzantinePlan) Option {
	return func(c *Cluster) { c.ensureFT().byz = p }
}

// WithRoutingVerification enables sampled receiver-side routing checks
// on every execution path: each destination re-asks the round's
// Keep/Route decision whether a sampled delivery belongs to it, and a
// violation fails the round with a RoutingIntegrityError carrying the
// Fact.Less-minimal witness (found by an exhaustive rescan, so the
// sampling stride never changes which witness is reported).
// sampleEvery = 1 checks every delivered fact; k > 1 checks one in k
// (the production setting: bounded overhead, eventual detection of a
// repeat offender); 0 — the default — disables verification and keeps
// the fault-free hot path byte-identical and zero-overhead.
func WithRoutingVerification(sampleEvery int) Option {
	if sampleEvery < 0 {
		panic(fmt.Sprintf("mpc: negative routing-verification stride %d", sampleEvery))
	}
	return func(c *Cluster) { c.verifyEvery = sampleEvery }
}

// legalShardDst reports whether the round's routing contract allows a
// fact delivered by a shard covering sources [lo, hi) to land on dst.
// It recomputes the same Keep/Route decision the communication phase
// made — the Router is the placement policy, so receivers can re-ask
// it. Keep facts are legal only at their own source, which for a
// multi-source shard means any source in range. A Router or Keep that
// panics on f (forged facts need not even satisfy the relation's
// arity) makes every destination illegal.
func legalShardDst(r Round, p, lo, hi, dst int, f rel.Fact) (legal bool) {
	defer func() {
		if recover() != nil {
			legal = false
		}
	}()
	if hi > p {
		hi = p
	}
	if r.Keep != nil && r.Keep(f) {
		return dst >= lo && dst < hi
	}
	if r.Route == nil {
		return false
	}
	for _, d := range r.Route.Route(f) {
		if d == dst {
			return true
		}
	}
	return false
}

// legalDst is legalShardDst for the fault-tolerant path's one-source
// shards, where the source of every delivery is known exactly.
func legalDst(r Round, p, src, dst int, f rel.Fact) bool {
	return legalShardDst(r, p, src, src+1, dst, f)
}

// scanShard finds the Fact.Less-minimal illegally placed delivery in a
// single-source shard. Destinations are visited ascending, so among
// equal-minimal facts the lowest destination is reported.
func scanShard(r Round, p, src int, sh *Shard) (witness rel.Fact, dst int, found bool) {
	for d := 0; d < p; d++ {
		out := sh.Outs[d]
		if out == nil {
			continue
		}
		out.Each(func(f rel.Fact) bool {
			if found && !f.Less(witness) {
				return true
			}
			if !legalDst(r, p, src, d, f) {
				witness, dst, found = f, d, true
			}
			return true
		})
	}
	return witness, dst, found
}

// shardEqual reports whether two shards of the same source ship the
// same deliveries with the same logical counts.
func shardEqual(a, b *Shard, p int) bool {
	if a.DeltaSent != b.DeltaSent {
		return false
	}
	for d := 0; d < p; d++ {
		if a.Sent[d] != b.Sent[d] {
			return false
		}
		ao, bo := a.Outs[d], b.Outs[d]
		switch {
		case ao == nil && bo == nil:
		case ao == nil:
			if !bo.IsEmpty() {
				return false
			}
		case bo == nil:
			if !ao.IsEmpty() {
				return false
			}
		default:
			if !ao.Equal(bo) {
				return false
			}
		}
	}
	return true
}

// delivery is one (destination, fact) pair of a shard — the unit
// misroute and omit corruption picks from.
type delivery struct {
	dst int
	f   rel.Fact
}

// routedDeliveries lists a source shard's cross-network deliveries
// (dst ≠ src — self-deliveries, including Keep facts, are not counted
// in Sent and are not corruption targets) in (Fact.Less, dst) order,
// so which facts an event corrupts is a pure function of the shard.
func routedDeliveries(src int, sh *Shard) []delivery {
	var out []delivery
	for d := range sh.Outs {
		if d == src || sh.Outs[d] == nil {
			continue
		}
		for _, f := range sh.Outs[d].SortedFacts() {
			out = append(out, delivery{dst: d, f: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].f.Less(out[j].f) {
			return true
		}
		if out[j].f.Less(out[i].f) {
			return false
		}
		return out[i].dst < out[j].dst
	})
	return out
}

// illegalDstFor picks a destination the policy forbids for (src, f),
// probing from a seeded starting point so different events corrupt
// different links. ok is false when every destination is legal (e.g. a
// broadcast round), in which case the fact cannot be detectably
// misplaced and the applier skips it.
func illegalDstFor(r Round, p, src int, f rel.Fact, rng *rand.Rand) (int, bool) {
	start := rng.Intn(p)
	for i := 0; i < p; i++ {
		d := (start + i) % p
		if !legalDst(r, p, src, d, f) {
			return d, true
		}
	}
	return 0, false
}

// applyByzEvent corrupts a single-source shard in place. It is a pure
// function of (shard content, event), which is what lets the audit
// re-apply a Persistent event to the re-executed shard and reproduce a
// compromised server's lie exactly.
func applyByzEvent(r Round, p, src int, sh *Shard, ev ByzantineEvent, local *rel.Instance) {
	rng := rand.New(rand.NewSource(ev.Seed))
	switch ev.Kind {
	case Misroute:
		dels := routedDeliveries(src, sh)
		moved := 0
		for _, dl := range dels {
			if moved >= ev.Count {
				break
			}
			bad, ok := illegalDstFor(r, p, src, dl.f, rng)
			if !ok {
				continue
			}
			sh.Outs[dl.dst].Remove(dl.f)
			sh.Sent[dl.dst]--
			if sh.Outs[bad] == nil {
				sh.Outs[bad] = rel.NewInstance()
			}
			sh.Outs[bad].Add(dl.f)
			sh.Sent[bad]++
			moved++
		}
	case Forge:
		// Fabricated facts borrow the shape of a relation the server
		// actually holds (so they parse as plausible data) but use
		// values far outside any workload's domain; an empty server
		// forges into a fresh relation no Router knows.
		name, arity := "Z!forged", 1
		if names := local.RelationNames(); len(names) > 0 {
			name = names[0]
			arity = local.Relation(name).Arity
		}
		for k := 0; k < ev.Count; k++ {
			t := make(rel.Tuple, arity)
			for i := range t {
				t[i] = rel.Value(int64(1)<<40 + int64(k*arity+i))
			}
			f := rel.Fact{Rel: name, Tuple: t}
			d, ok := illegalDstFor(r, p, src, f, rng)
			if !ok {
				continue
			}
			if sh.Outs[d] == nil {
				sh.Outs[d] = rel.NewInstance()
			}
			sh.Outs[d].Add(f)
			sh.Sent[d]++
		}
	case Omit:
		sets := r.sets()
		dels := routedDeliveries(src, sh)
		for i := 0; i < len(dels) && i < ev.Count; i++ {
			dl := dels[i]
			sh.Outs[dl.dst].Remove(dl.f)
			sh.Sent[dl.dst]--
			if sets.delta[dl.f.Rel] {
				sh.DeltaSent--
			}
		}
	}
}

// applyByzantine realizes the Byzantine plan's events for this round on
// the per-source shards (the fault-tolerant path routes one shard per
// source, so shard index = source) and runs the detection pipeline per
// accused source, ascending: corrupt, audit by re-execution, quarantine
// on audit mismatch, receiver-side legality check of whatever finally
// ships. It returns the virtual-clock completion tick of the
// verification layer's repairs (0 when nothing fired). All of this
// precedes the Exchange, so a quarantined round's logical metrics are
// byte-identical to fault-free by construction, and an error return
// precedes any state mutation (RunRound's atomicity).
func (c *Cluster) applyByzantine(round int, r Round, shards []Shard, stats *RoundStats) (int, error) {
	events := c.ft.byz.eventsAt(round)
	if len(events) == 0 {
		return 0, nil
	}
	end := 0
	for i := 0; i < len(events); {
		src := events[i].Src
		if src < 0 || src >= c.p {
			return 0, fmt.Errorf("mpc: byzantine event source %d outside [0,%d)", src, c.p)
		}
		j := i
		for j < len(events) && events[j].Src == src {
			applyByzEvent(r, c.p, src, &shards[src], events[j], c.servers[src])
			j++
		}
		// Audit: re-derive the honest shard from the server's committed
		// pre-round state — routing is a pure function of it, via the
		// same entry point remote worker processes use.
		honest, err := RouteSource(r, c.p, src, c.servers[src])
		if err != nil {
			return 0, err
		}
		for k := i; k < j; k++ {
			if events[k].Persistent {
				// A compromised server lies identically when the
				// auditor re-runs it: reproduce its corruption.
				applyByzEvent(r, c.p, src, &honest, events[k], c.servers[src])
			}
		}
		if !shardEqual(&honest, &shards[src], c.p) {
			// The audit caught a transient lie: quarantine the source
			// and adopt the re-executed shard. One retried routing pass
			// re-ships the source's whole outbox.
			reshipped := 0
			for _, n := range honest.Sent {
				reshipped += n
			}
			shards[src] = honest
			stats.Quarantined++
			stats.Retries++
			stats.ReplicaComm += reshipped
			if t := retryCompletion(1, 1); t > end {
				end = t
			}
		}
		// Receiver-side legality check of what the source finally
		// ships. Corruption that survived the audit (a persistent liar)
		// is detectable iff some delivery violates the policy.
		if w, d, found := scanShard(r, c.p, src, &shards[src]); found {
			kind := Forge
			if c.servers[src].Contains(w) {
				kind = Misroute
			}
			return 0, &RoutingIntegrityError{
				Round: round, RoundName: r.Name,
				Accused: src, Dst: d, Kind: kind, Witness: w,
			}
		}
		i = j
	}
	return end, nil
}

// verifyShards is the sampled receiver-side verification RunRound runs
// when WithRoutingVerification is installed: every sampleEvery-th
// delivered fact is checked against the round's placement policy. On a
// violation an exhaustive rescan finds the Fact.Less-minimal witness,
// so the reported error is independent of the sampling stride that
// happened to trip first. Enumeration is deliberately the unordered
// arena walk (Relation.Each), not the sorted Instance.Each: sorting
// every outbox would cost more than the checks themselves, and the
// detection decision is order-independent — only the witness must be
// canonical, and the rescan guarantees that.
func (c *Cluster) verifyShards(r Round, shards []Shard, chunk int) error {
	counter := 0
	for w := range shards {
		lo := w * chunk
		sh := &shards[w]
		for d := 0; d < c.p; d++ {
			out := sh.Outs[d]
			if out == nil {
				continue
			}
			bad := false
			for _, name := range out.RelationNames() {
				name := name
				out.Relation(name).Each(func(t rel.Tuple) bool {
					counter++
					if counter%c.verifyEvery != 0 {
						return true
					}
					if !legalShardDst(r, c.p, lo, lo+chunk, d, rel.Fact{Rel: name, Tuple: t}) {
						bad = true
						return false
					}
					return true
				})
				if bad {
					break
				}
			}
			if bad {
				return c.integrityError(r, shards, chunk)
			}
		}
	}
	return nil
}

// integrityError rescans every delivery of the round exhaustively for
// the Fact.Less-minimal policy violation and attributes it to a source
// in the owning shard's range (the source that holds the witness is a
// misrouter; no holder means the fact was forged).
func (c *Cluster) integrityError(r Round, shards []Shard, chunk int) error {
	var wit rel.Fact
	wDst, wShard := -1, -1
	found := false
	for w := range shards {
		lo := w * chunk
		hi := lo + chunk
		if hi > c.p {
			hi = c.p
		}
		sh := &shards[w]
		for d := 0; d < c.p; d++ {
			out := sh.Outs[d]
			if out == nil {
				continue
			}
			out.Each(func(f rel.Fact) bool {
				if found && !f.Less(wit) {
					return true
				}
				if !legalShardDst(r, c.p, lo, hi, d, f) {
					wit, wDst, wShard, found = f, d, w, true
				}
				return true
			})
		}
	}
	if !found {
		// The sampled pass saw a violation, so the exhaustive pass must
		// find one; reaching here is an engine bug, not a fault.
		return fmt.Errorf("mpc: routing verification lost its witness in round %q", r.Name)
	}
	lo := wShard * chunk
	hi := lo + chunk
	if hi > c.p {
		hi = c.p
	}
	accused, kind := lo, Forge
	for s := lo; s < hi; s++ {
		if c.servers[s].Contains(wit) {
			accused, kind = s, Misroute
			break
		}
	}
	return &RoutingIntegrityError{
		Round: len(c.stats), RoundName: r.Name,
		Accused: accused, Dst: wDst, Kind: kind, Witness: wit,
	}
}

// NamedByzantinePlan labels a plan for the matrix invariant: a
// Recoverable plan must leave the output and logical trace
// byte-identical to fault-free (the audit quarantines every lie); an
// unrecoverable one must fail with a RoutingIntegrityError.
type NamedByzantinePlan struct {
	Name        string
	Plan        *ByzantinePlan
	Recoverable bool
}

// ByzantineFaultMatrix is the seeded Byzantine counterpart of
// StandardFaultMatrix: six plans covering each corruption kind as a
// transient glitch (healed by quarantine — byte-identical output
// required), a multi-source multi-round mix, and the two persistent
// compromises the receiver side can prove (misroute and forge — a
// typed error required). Persistent omission is excluded by design: a
// compromised server that withholds facts AND lies identically under
// audit re-execution is indistinguishable from a world where those
// facts never existed, so no verifier can flag it (see DESIGN.md's
// failure-model taxonomy). Sub-seeds are fixed offsets of the caller's
// seed so the matrix is reproducible as a unit.
func ByzantineFaultMatrix(seed int64, rounds, p int) []NamedByzantinePlan {
	src := func(i int) int { return i % p }
	later := 0
	if rounds > 1 {
		later = 1
	}
	return []NamedByzantinePlan{
		{"misroute-transient", NewByzantinePlan().
			Add(ByzantineEvent{Round: 0, Src: src(1), Kind: Misroute, Count: 2, Seed: seed + 1}), true},
		{"forge-transient", NewByzantinePlan().
			Add(ByzantineEvent{Round: 0, Src: src(2), Kind: Forge, Count: 3, Seed: seed + 2}), true},
		{"omit-transient", NewByzantinePlan().
			Add(ByzantineEvent{Round: 0, Src: 0, Kind: Omit, Count: 2, Seed: seed + 3}), true},
		{"multi-transient", NewByzantinePlan().
			Add(ByzantineEvent{Round: 0, Src: src(1), Kind: Misroute, Count: 1, Seed: seed + 4}).
			Add(ByzantineEvent{Round: 0, Src: src(3), Kind: Forge, Count: 2, Seed: seed + 5}).
			Add(ByzantineEvent{Round: later, Src: 0, Kind: Omit, Count: 1, Seed: seed + 6}), true},
		{"misroute-persistent", NewByzantinePlan().
			Add(ByzantineEvent{Round: 0, Src: src(1), Kind: Misroute, Count: 1, Seed: seed + 7, Persistent: true}), false},
		{"forge-persistent", NewByzantinePlan().
			Add(ByzantineEvent{Round: 0, Src: 0, Kind: Forge, Count: 2, Seed: seed + 8, Persistent: true}), false},
	}
}
