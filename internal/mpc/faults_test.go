package mpc

import (
	"strings"
	"testing"

	"mpclogic/internal/rel"
)

// sendTo routes every fact to the fixed destination.
func sendTo(dst int) Router {
	return RouterFunc(func(rel.Fact) []int { return []int{dst} })
}

func TestRetryCompletion(t *testing.T) {
	// Attempt k launches one tick after the previous failure plus
	// 2^(k-1) backoff; completion adds the operation cost.
	cases := []struct{ failures, cost, want int }{
		{0, 1, 1}, // fault-free
		{1, 1, 3}, // fail@1, relaunch@2 (backoff 1), done@3... launch0@0 fail detected@1 +backoff 2^0=1 → launch@2, done@3
		{2, 1, 6},
		{3, 1, 11},
		{0, 4, 4},
		{2, 3, 8},
	}
	for _, tc := range cases {
		if got := retryCompletion(tc.failures, tc.cost); got != tc.want {
			t.Errorf("retryCompletion(%d,%d) = %d, want %d", tc.failures, tc.cost, got, tc.want)
		}
	}
}

func TestRandomFaultPlanDeterministic(t *testing.T) {
	a := RandomFaultPlan(42, 6, 8, DefaultFaultProfile())
	b := RandomFaultPlan(42, 6, 8, DefaultFaultProfile())
	c := RandomFaultPlan(43, 6, 8, DefaultFaultProfile())
	if a.String() != b.String() {
		t.Errorf("same seed, different plans: %s vs %s", a, b)
	}
	for r := 0; r < 6; r++ {
		for s := 0; s < 8; s++ {
			if a.crashes(r, s) != b.crashes(r, s) || a.straggles(r, s) != b.straggles(r, s) {
				t.Fatalf("same seed, different fault at round %d server %d", r, s)
			}
			for d := 0; d < 8; d++ {
				if a.drops(r, s, d) != b.drops(r, s, d) || a.dups(r, s, d) != b.dups(r, s, d) {
					t.Fatalf("same seed, different link fault at round %d %d→%d", r, s, d)
				}
			}
		}
	}
	if a.String() == c.String() && a.Empty() {
		t.Errorf("different seeds produced identical empty plans; profile too weak for the test")
	}
}

func TestStandardFaultMatrixShape(t *testing.T) {
	m := StandardFaultMatrix(7, 4, 4)
	if len(m) < 8 {
		t.Fatalf("matrix has %d plans, want >= 8", len(m))
	}
	seen := map[string]bool{}
	for _, np := range m {
		if seen[np.Name] {
			t.Errorf("duplicate plan name %q", np.Name)
		}
		seen[np.Name] = true
	}
	// The matrix must be reproducible as a unit.
	m2 := StandardFaultMatrixShapeStrings(StandardFaultMatrix(7, 4, 4))
	if got := StandardFaultMatrixShapeStrings(m); got != m2 {
		t.Errorf("matrix not reproducible:\n%s\nvs\n%s", got, m2)
	}
}

// StandardFaultMatrixShapeStrings flattens a matrix's plan summaries.
func StandardFaultMatrixShapeStrings(m []NamedFaultPlan) string {
	var b strings.Builder
	for _, np := range m {
		b.WriteString(np.Name + ": " + np.Plan.String() + "\n")
	}
	return b.String()
}

// twoServerTransfer builds a 2-server FT cluster where server 0 holds
// one fact routed to server 1 — a single carrying link 0→1.
func twoServerTransfer(t *testing.T, opts ...Option) (*Cluster, Round) {
	t.Helper()
	d := rel.NewDict()
	c := NewCluster(2, opts...)
	c.LoadAt(0, rel.MustInstance(d, "R(a,b)"))
	return c, Round{Name: "xfer", Route: sendTo(1)}
}

func TestDropAccounting(t *testing.T) {
	plan := NewFaultPlan().AddDrop(0, 0, 1, 2)
	c, r := twoServerTransfer(t, WithFaultPlan(plan))
	st, err := c.RunRound(r)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retries != 2 || st.ReplicaComm != 2 {
		t.Errorf("retries=%d replica=%d, want 2, 2", st.Retries, st.ReplicaComm)
	}
	// comm ends at retryCompletion(2,1)=6, compute adds 1 → makespan 7.
	if st.VirtualMakespan != 7 {
		t.Errorf("makespan=%d, want 7", st.VirtualMakespan)
	}
	// Logical metrics unaffected.
	if st.MaxLoad != 1 || st.TotalComm != 1 {
		t.Errorf("logical metrics changed: maxload=%d totalcomm=%d", st.MaxLoad, st.TotalComm)
	}
	if c.Server(1).Len() != 1 {
		t.Errorf("fact not delivered after retransmissions")
	}
}

func TestDropOnSelfLinkOrEmptyLinkIsInert(t *testing.T) {
	// Self-links and links carrying no facts are not fault sites.
	plan := NewFaultPlan().AddDrop(0, 0, 0, 5).AddDrop(0, 1, 0, 5)
	c, r := twoServerTransfer(t, WithFaultPlan(plan))
	st, err := c.RunRound(r)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retries != 0 || st.ReplicaComm != 0 || st.VirtualMakespan != 2 {
		t.Errorf("inert drops had effect: %+v", st)
	}
}

func TestDupAccounting(t *testing.T) {
	plan := NewFaultPlan().AddDup(0, 0, 1, 3)
	c, r := twoServerTransfer(t, WithFaultPlan(plan))
	st, err := c.RunRound(r)
	if err != nil {
		t.Fatal(err)
	}
	if st.ReplicaComm != 3 || st.Retries != 0 {
		t.Errorf("replica=%d retries=%d, want 3, 0", st.ReplicaComm, st.Retries)
	}
	// Duplicates are absorbed: logical load still counts one delivery.
	if st.Received[1] != 1 || c.Server(1).Len() != 1 {
		t.Errorf("duplicate deliveries leaked into logical state: %+v", st)
	}
}

func TestCrashRecovery(t *testing.T) {
	plan := NewFaultPlan().AddCrash(0, 1, 2)
	c, r := twoServerTransfer(t, WithFaultPlan(plan))
	st, err := c.RunRound(r)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retries != 2 || st.RecoveredServers != 1 {
		t.Errorf("retries=%d recovered=%d, want 2, 1", st.Retries, st.RecoveredServers)
	}
	// Each re-execution refetches the 1-fact checkpoint.
	if st.ReplicaComm != 2 {
		t.Errorf("replica=%d, want 2", st.ReplicaComm)
	}
	// comm 1 + compute retryCompletion(2,1)=6 → 7.
	if st.VirtualMakespan != 7 {
		t.Errorf("makespan=%d, want 7", st.VirtualMakespan)
	}
	if c.Server(1).Len() != 1 {
		t.Errorf("recovered server lost its partition")
	}
}

func TestStragglerSpeculation(t *testing.T) {
	plan := NewFaultPlan().AddStraggle(0, 1, 3)
	c, r := twoServerTransfer(t, WithFaultPlan(plan)) // speculateAfter defaults to 2
	st, err := c.RunRound(r)
	if err != nil {
		t.Fatal(err)
	}
	if st.SpeculativeWins != 1 {
		t.Errorf("wins=%d, want 1", st.SpeculativeWins)
	}
	// Primary would end at 4; speculative copy launches at 2, ends at
	// 3 and wins. comm 1 + compute 3 → 4.
	if st.VirtualMakespan != 4 {
		t.Errorf("makespan=%d, want 4", st.VirtualMakespan)
	}
	if st.ReplicaComm != 1 { // backup refetched the 1-fact checkpoint
		t.Errorf("replica=%d, want 1", st.ReplicaComm)
	}
}

func TestStragglerTieKeepsPrimary(t *testing.T) {
	// δ=1: primary ends at 2, speculation would launch at 2 and end at
	// 3 — not strictly earlier, so the primary (first deterministic
	// winner) is kept and no win is recorded. The backup still cost
	// its checkpoint fetch.
	plan := NewFaultPlan().AddStraggle(0, 1, 1)
	c, r := twoServerTransfer(t, WithFaultPlan(plan), WithSpeculation(1))
	st, err := c.RunRound(r)
	if err != nil {
		t.Fatal(err)
	}
	if st.SpeculativeWins != 0 {
		t.Errorf("wins=%d, want 0 (tie keeps primary)", st.SpeculativeWins)
	}
	if st.VirtualMakespan != 3 { // comm 1 + primary compute 2
		t.Errorf("makespan=%d, want 3", st.VirtualMakespan)
	}
}

func TestSpeculationDisabled(t *testing.T) {
	plan := NewFaultPlan().AddStraggle(0, 1, 3)
	c, r := twoServerTransfer(t, WithFaultPlan(plan), WithSpeculation(0))
	st, err := c.RunRound(r)
	if err != nil {
		t.Fatal(err)
	}
	if st.SpeculativeWins != 0 || st.ReplicaComm != 0 {
		t.Errorf("speculation fired while disabled: %+v", st)
	}
	if st.VirtualMakespan != 5 { // comm 1 + compute 1+3
		t.Errorf("makespan=%d, want 5", st.VirtualMakespan)
	}
}

func TestReplicationAccounting(t *testing.T) {
	c, r := twoServerTransfer(t, WithCheckpoints(), WithReplication(2))
	st, err := c.RunRound(r)
	if err != nil {
		t.Fatal(err)
	}
	// The checkpoint holds 1 deduped fact; 2 replicas → 2.
	if st.ReplicaComm != 2 {
		t.Errorf("replica=%d, want 2", st.ReplicaComm)
	}
}

func TestFaultFreeFTPathHasZeroRecoveryCost(t *testing.T) {
	c, r := twoServerTransfer(t, WithCheckpoints())
	st, err := c.RunRound(r)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retries != 0 || st.RecoveredServers != 0 || st.ReplicaComm != 0 || st.SpeculativeWins != 0 {
		t.Errorf("fault-free FT round has recovery costs: %+v", st)
	}
	if st.VirtualMakespan != 2 { // comm 1 + compute 1
		t.Errorf("makespan=%d, want 2", st.VirtualMakespan)
	}
	if !strings.Contains(st.String(), "max load 1") || strings.Contains(st.String(), "recovery") {
		t.Errorf("fault-free String() changed: %q", st.String())
	}
}

// TestRetryExhaustionAtomic pins the RunRound atomicity guarantee on
// the FT path: after a good round, a round whose faults exceed the
// retry budget must error while leaving servers and stats untouched.
func TestRetryExhaustionAtomic(t *testing.T) {
	for name, plan := range map[string]*FaultPlan{
		"crash": NewFaultPlan().AddCrash(1, 0, DefaultRetryBudget+1),
		"drop":  NewFaultPlan().AddDrop(1, 0, 1, DefaultRetryBudget+1),
	} {
		t.Run(name, func(t *testing.T) {
			d := rel.NewDict()
			c := NewCluster(2, WithFaultPlan(plan))
			c.LoadAt(0, rel.MustInstance(d, "R(a,b)", "R(b,c)"))
			echo := Round{Name: "echo", Route: sendTo(0)}
			if _, err := c.RunRound(echo); err != nil {
				t.Fatal(err)
			}
			before := []string{c.Server(0).String(), c.Server(1).String()}
			trace := c.LogicalTrace()
			_, err := c.RunRound(Round{Name: "doomed", Route: sendTo(1)})
			if err == nil || !strings.Contains(err.Error(), "retry budget") {
				t.Fatalf("err = %v, want retry-budget error", err)
			}
			// Same plan, same state → same error.
			_, err2 := c.RunRound(Round{Name: "doomed", Route: sendTo(1)})
			if err2 == nil || err.Error() != err2.Error() {
				t.Errorf("error not deterministic: %v vs %v", err, err2)
			}
			if got := []string{c.Server(0).String(), c.Server(1).String()}; got[0] != before[0] || got[1] != before[1] {
				t.Errorf("failed round mutated server state")
			}
			if c.LogicalTrace() != trace || c.Rounds() != 1 {
				t.Errorf("failed round recorded stats")
			}
		})
	}
}

// TestFaultTransparencySingleRound checks output + logical-trace
// equality between a fault-free run and a heavily faulted run of the
// same round.
func TestFaultTransparencySingleRound(t *testing.T) {
	d := rel.NewDict()
	load := rel.MustInstance(d, "R(a,b)", "R(b,c)", "R(c,d)", "S(a,x)", "S(b,y)")
	double := func(_ int, local *rel.Instance) *rel.Instance {
		out := rel.NewInstance()
		local.Each(func(f rel.Fact) bool {
			out.Add(f)
			out.Add(rel.Fact{Rel: f.Rel + "2", Tuple: f.Tuple})
			return true
		})
		return out
	}
	r := Round{Name: "spread", Route: HashOn(3, []int{0}, 99), Compute: double}

	base := NewCluster(3)
	base.LoadRoundRobin(load)
	if _, err := base.RunRound(r); err != nil {
		t.Fatal(err)
	}

	plan := NewFaultPlan().AddCrash(0, 1, 2).AddDrop(0, 0, 1, 1).AddDup(0, 1, 0, 2).AddStraggle(0, 2, 4)
	faulty := NewCluster(3, WithFaultPlan(plan))
	faulty.LoadRoundRobin(load)
	st, err := faulty.RunRound(r)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := faulty.Output().String(), base.Output().String(); got != want {
		t.Errorf("output diverged under faults:\n got %s\nwant %s", got, want)
	}
	if got, want := faulty.LogicalTrace(), base.LogicalTrace(); got != want {
		t.Errorf("logical trace diverged:\n got %q\nwant %q", got, want)
	}
	if st.Retries == 0 || st.RecoveredServers == 0 {
		t.Errorf("faults did not fire: %+v", st)
	}
}

// TestCheckpointImmuneToComputeMutation: the round-input checkpoint
// is snapshotted before computation, so a Compute that mutates its
// input in place cannot corrupt what recovery re-executes from — the
// recovered run must still match the fault-free run exactly.
func TestCheckpointImmuneToComputeMutation(t *testing.T) {
	d := rel.NewDict()
	marker := rel.MustInstance(d, "M(m,m)").Facts()[0]
	mutate := func(_ int, local *rel.Instance) *rel.Instance {
		local.Add(marker) // mutates the received input in place
		return local
	}
	r := Round{Name: "mut", Compute: mutate, Keep: func(rel.Fact) bool { return true }}

	base := NewCluster(1)
	base.LoadAt(0, rel.MustInstance(d, "R(a,b)"))
	if _, err := base.RunRound(r); err != nil {
		t.Fatal(err)
	}

	plan := NewFaultPlan().AddCrash(0, 0, 2)
	faulty := NewCluster(1, WithFaultPlan(plan))
	faulty.LoadAt(0, rel.MustInstance(d, "R(a,b)"))
	st, err := faulty.RunRound(r)
	if err != nil {
		t.Fatal(err)
	}
	if st.RecoveredServers != 1 {
		t.Fatalf("crash did not fire: %+v", st)
	}
	if got, want := faulty.Output().String(), base.Output().String(); got != want {
		t.Errorf("recovered output %s, want %s", got, want)
	}
}

func TestCheckpointRestoreResumes(t *testing.T) {
	d := rel.NewDict()
	prog := []Round{
		{Name: "r0", Route: sendTo(1)},
		{Name: "r1", Route: sendTo(0)},
		{Name: "r2", Route: Broadcast(2)},
	}
	run := func(c *Cluster, upTo int) {
		t.Helper()
		for _, r := range prog[:upTo] {
			if _, err := c.RunRound(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	full := NewCluster(2, WithCheckpoints())
	full.LoadAt(0, rel.MustInstance(d, "R(a,b)", "S(c,d)"))
	run(full, 3)

	partial := NewCluster(2, WithCheckpoints())
	partial.LoadAt(0, rel.MustInstance(d, "R(a,b)", "S(c,d)"))
	run(partial, 2)
	ck := partial.Checkpoint()
	if ck == nil || ck.Rounds() != 2 {
		t.Fatalf("checkpoint covers %v rounds, want 2", ck)
	}
	// Mutate the original after checkpointing: must not leak.
	partial.Server(0).Add(rel.Fact{Rel: "JUNK", Tuple: rel.MustInstance(d, "J(q,q)").Facts()[0].Tuple})

	resumed := Restore(ck)
	if err := resumed.RunResumable(prog...); err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.Output().String(), full.Output().String(); got != want {
		t.Errorf("resumed output %s, want %s", got, want)
	}
	if got, want := resumed.LogicalTrace(), full.LogicalTrace(); got != want {
		t.Errorf("resumed trace %q, want %q", got, want)
	}
}

func TestRunResumableRejectsMismatchedHistory(t *testing.T) {
	d := rel.NewDict()
	c := NewCluster(2)
	c.LoadAt(0, rel.MustInstance(d, "R(a,b)"))
	if err := c.Run(Round{Name: "alpha", Route: sendTo(1)}); err != nil {
		t.Fatal(err)
	}
	err := c.RunResumable(Round{Name: "beta", Route: sendTo(0)})
	if err == nil || !strings.Contains(err.Error(), "cannot resume") {
		t.Errorf("err = %v, want resume mismatch", err)
	}
	err = c.RunResumable()
	if err == nil || !strings.Contains(err.Error(), "has executed") {
		t.Errorf("err = %v, want too-short program error", err)
	}
	// Matching prefix resumes cleanly and is a no-op when complete.
	if err := c.RunResumable(Round{Name: "alpha", Route: sendTo(1)}); err != nil {
		t.Errorf("resume of completed program failed: %v", err)
	}
	if c.Rounds() != 1 {
		t.Errorf("no-op resume re-ran rounds: %d", c.Rounds())
	}
}
