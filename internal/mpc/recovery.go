package mpc

import (
	"fmt"

	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// Checkpointed recovery for the synchronous engine.
//
// The execution model: a fault-tolerant round routes exactly the
// facts a fault-free round would (drops delay transfers, they do not
// change what is eventually delivered; duplicates are absorbed by the
// idempotent inbox union), then checkpoints every server's merged
// round input before any computation starts. The computation phase is
// a pure function of (server, input) — Compute's documented contract
// — so a crashed server's partition is recovered by re-executing it
// from the checkpoint on a recovery worker, and a straggling
// partition can be raced by a speculative copy of the same
// re-execution. Both repairs reproduce the primary's output exactly,
// which is the whole determinism argument: recovery changes WHEN a
// round finishes (virtual ticks, tracked in VirtualMakespan) and HOW
// MUCH extra traffic it costs (ReplicaComm), but never WHAT the round
// computes. The logical metrics — Received, MaxLoad, TotalComm — are
// computed from the same merged inboxes on both paths, so they are
// fault-invariant by construction, and the fault-transparency tests
// pin that byte-for-byte.
//
// All delays live on a virtual clock measured in abstract ticks
// (retryCompletion in faults.go); nothing in this file touches wall
// time.

// Defaults for the fault-tolerance knobs.
const (
	// DefaultRetryBudget bounds how often a single fault site (one
	// transfer, or one server's computation in one round) may fail
	// before the round gives up with a deterministic error.
	DefaultRetryBudget = 3
	// DefaultSpeculateAfter is the virtual tick after which a still-
	// running computation is considered straggling and a speculative
	// copy is launched. A fault-free computation costs 1 tick, so the
	// default only triggers on injected stragglers.
	DefaultSpeculateAfter = 2
)

// ftState is a cluster's fault-tolerance configuration and its
// rolling post-round checkpoint.
type ftState struct {
	plan           *FaultPlan     // nil: recover-capable but no injected faults
	byz            *ByzantinePlan // nil: no Byzantine routing events scheduled
	retryBudget    int
	speculateAfter int // 0 disables speculation
	replicas       int // peers each round checkpoint is replicated to

	// Rolling checkpoint of the last committed round: the servers'
	// instances and the stats recorded so far, snapshotted into a
	// StableStore so later mutation can't corrupt what recovery
	// reloads. Nil until the first round commits.
	ckpt      *policy.StableStore
	ckptStats []RoundStats
}

func newFTState() *ftState {
	return &ftState{retryBudget: DefaultRetryBudget, speculateAfter: DefaultSpeculateAfter}
}

func (c *Cluster) ensureFT() *ftState {
	if c.ft == nil {
		c.ft = newFTState()
	}
	return c.ft
}

// refreshCheckpoint snapshots the cluster's committed state. Called
// from commit, so the checkpoint always equals the state after the
// last completed round.
func (ft *ftState) refreshCheckpoint(c *Cluster) {
	ft.ckpt = policy.NewStableStore(c.servers)
	ft.ckptStats = cloneStats(c.stats)
}

func cloneStats(stats []RoundStats) []RoundStats {
	out := make([]RoundStats, len(stats))
	for i, s := range stats {
		out[i] = s
		out[i].Received = append([]int(nil), s.Received...)
	}
	return out
}

// WithFaultPlan installs a fault plan and enables the fault-tolerant
// execution path. Plan round indices are absolute: round r of the
// plan fires on the cluster's r-th executed round.
func WithFaultPlan(p *FaultPlan) Option {
	return func(c *Cluster) { c.ensureFT().plan = p }
}

// WithCheckpoints enables the fault-tolerant path (round-input
// checkpointing, post-round cluster checkpoints for Checkpoint/
// Restore) without injecting any faults.
func WithCheckpoints() Option {
	return func(c *Cluster) { c.ensureFT() }
}

// WithRetryBudget bounds per-site failures before a round errors out.
func WithRetryBudget(n int) Option {
	if n < 0 {
		panic(fmt.Sprintf("mpc: negative retry budget %d", n))
	}
	return func(c *Cluster) { c.ensureFT().retryBudget = n }
}

// WithSpeculation sets the straggler threshold in virtual ticks; a
// computation still running after that many ticks gets a speculative
// backup copy. 0 disables speculation.
func WithSpeculation(afterTicks int) Option {
	if afterTicks < 0 {
		panic(fmt.Sprintf("mpc: negative speculation threshold %d", afterTicks))
	}
	return func(c *Cluster) { c.ensureFT().speculateAfter = afterTicks }
}

// WithReplication replicates each round's input checkpoint to k peer
// servers (accounted in ReplicaComm). The checkpoint itself is always
// persisted via policy.StableStore regardless of k.
func WithReplication(k int) Option {
	if k < 0 {
		panic(fmt.Sprintf("mpc: negative replication factor %d", k))
	}
	return func(c *Cluster) { c.ensureFT().replicas = k }
}

// SetFaultPlan installs (or replaces, or with nil removes) the fault
// plan on an already-constructed cluster, enabling the fault-tolerant
// path if it wasn't already.
func (c *Cluster) SetFaultPlan(p *FaultPlan) { c.ensureFT().plan = p }

// FaultTolerant reports whether the fault-tolerant execution path is
// enabled.
func (c *Cluster) FaultTolerant() bool { return c.ft != nil }

// RecoveryStats aggregates the recovery metrics over rounds.
type RecoveryStats struct {
	Retries          int
	RecoveredServers int
	ReplicaComm      int
	SpeculativeWins  int
	Quarantined      int
}

// RecoveryTotals sums the recovery metrics over all executed rounds.
func (c *Cluster) RecoveryTotals() RecoveryStats {
	var t RecoveryStats
	for _, s := range c.stats {
		t.Retries += s.Retries
		t.RecoveredServers += s.RecoveredServers
		t.ReplicaComm += s.ReplicaComm
		t.SpeculativeWins += s.SpeculativeWins
		t.Quarantined += s.Quarantined
	}
	return t
}

// runRoundFT is RunRound on the fault-tolerant path. It differs from
// the fault-free path in three ways: the communication phase routes
// one shard per source (chunk 1), because fault plans address
// individual src→dst links and per-source shards make the transfer
// sizes exact; the merged round inputs are checkpointed before
// computation; and the fault plan's crashes/drops/dups/stragglers are
// charged to the recovery metrics on a virtual clock. It shares
// RunRound's atomicity guarantee: every error return precedes commit.
func (c *Cluster) runRoundFT(r Round) (RoundStats, error) {
	ft := c.ft
	round := len(c.stats) // absolute round index, matches plan indexing

	shards, err := c.routePhase(r, 1)
	if err != nil {
		return RoundStats{}, err
	}

	stats := RoundStats{Name: r.Name}

	// Byzantine routing events fire first: the scheduled corruption is
	// applied to the per-source shards, detected (receiver-side
	// legality + re-execution audit), and either quarantined — the
	// audited honest shard replaces the lie, so everything downstream
	// sees exactly the fault-free shards — or, for a persistent
	// compromise, fails the round with a typed RoutingIntegrityError
	// before any state mutates. See byzantine.go.
	commEnd := 1
	if !ft.byz.Empty() {
		byzEnd, err := c.applyByzantine(round, r, shards, &stats)
		if err != nil {
			return RoundStats{}, err
		}
		if byzEnd > commEnd {
			commEnd = byzEnd
		}
	}
	if c.verifyEvery > 0 {
		// Sampled receiver-side verification also guards this path (at
		// chunk 1 every shard covers exactly one source).
		if err := c.verifyShards(r, shards, 1); err != nil {
			return RoundStats{}, err
		}
	}

	// Delivery simulation: drops delay a transfer (retransmissions
	// cost ReplicaComm and virtual time), dups add wire traffic the
	// idempotent merge discards, corrupted transfers behave like drops
	// (the receiver detects the damage and discards the frame; a clean
	// retransmission follows). Only src ≠ dst links that actually
	// carry facts are fault sites — self-delivery, including Keep
	// facts, never traverses the network. The communication phase
	// ends when the slowest transfer lands.
	for _, lk := range carryingLinks(shards) {
		n := shards[lk.src].Sent[lk.dst]
		if d := ft.plan.drops(round, lk.src, lk.dst); d > 0 {
			if d > ft.retryBudget {
				return RoundStats{}, fmt.Errorf(
					"mpc: transfer %d→%d in round %q (round %d) dropped %d times, exceeding the retry budget %d",
					lk.src, lk.dst, r.Name, round, d, ft.retryBudget)
			}
			stats.Retries += d
			stats.ReplicaComm += d * n
			if t := retryCompletion(d, 1); t > commEnd {
				commEnd = t
			}
		}
		if k := ft.plan.corrupts(round, lk.src, lk.dst); k > 0 {
			if k > ft.retryBudget {
				return RoundStats{}, fmt.Errorf(
					"mpc: transfer %d→%d in round %q (round %d) corrupted %d times, exceeding the retry budget %d",
					lk.src, lk.dst, r.Name, round, k, ft.retryBudget)
			}
			stats.Retries += k
			stats.ReplicaComm += k * n
			if t := retryCompletion(k, 1); t > commEnd {
				commEnd = t
			}
		}
		if k := ft.plan.dups(round, lk.src, lk.dst); k > 0 {
			stats.ReplicaComm += k * n
		}
	}

	// The merge is identical to the fault-free path — same shards,
	// same (dst, src) order — so the logical inboxes and load
	// accounting are byte-identical by construction. A transport that
	// can realize the plan's drops/dups physically at the frame layer
	// is armed first, so the wire absorbs the same havoc the virtual
	// clock just charged.
	tr := c.Transport()
	if fi, ok := tr.(FrameFaultInjector); ok {
		fi.InjectFrameFaults(round, ft.plan)
	}
	inboxes, received, err := tr.Exchange(r.Name, c.p, shards)
	if err != nil {
		return RoundStats{}, err
	}
	stats.Received = received
	stats.DeltaComm = deltaSent(shards)
	for _, n := range received {
		stats.TotalComm += n
		if n > stats.MaxLoad {
			stats.MaxLoad = n
		}
	}

	// Residents join the round input before the checkpoint is cut, so
	// a recovered or speculative re-execution reloads the same (full,
	// Δ) view the primary computed on. The reload is a StableStore
	// clone, so repairs never alias the live resident state.
	if err := c.adoptResidents(r, r.sets(), inboxes); err != nil {
		return RoundStats{}, err
	}

	// Checkpoint every server's merged round input before any
	// computation runs: this is what recovery re-executes from.
	// StableStore snapshots at construction, so a Compute that
	// mutates its input cannot corrupt recovery. Optional peer
	// replication is charged per replica at the checkpoint's deduped
	// size.
	ckpt := policy.NewStableStore(inboxes)
	stats.ReplicaComm += ft.replicas * ckpt.TotalFacts()

	// Plan the computation phase per server on the virtual clock. A
	// fault-free computation costs 1 tick; a straggler costs 1+δ. A
	// crash discards the attempt and re-executes from the checkpoint
	// with exponential backoff (retryCompletion); past the budget the
	// round fails deterministically. A straggler past the speculation
	// threshold gets a backup copy launched at the threshold, which
	// wins iff it strictly beats the primary — ties keep the primary,
	// the "first deterministic winner". Either repair recomputes the
	// same pure function on the same checkpointed input, so which copy
	// wins is unobservable in the output.
	inputs := make([]*rel.Instance, c.p)
	computeEnd := 0
	for s := 0; s < c.p; s++ {
		cost := 1 + ft.plan.straggles(round, s)
		crashes := ft.plan.crashes(round, s)
		end := cost
		input := inboxes[s]
		switch {
		case crashes > ft.retryBudget:
			return RoundStats{}, fmt.Errorf(
				"mpc: server %d crashed %d times in round %q (round %d), exceeding the retry budget %d",
				s, crashes, r.Name, round, ft.retryBudget)
		case crashes > 0:
			end = retryCompletion(crashes, cost)
			stats.Retries += crashes
			stats.RecoveredServers++
			// Each re-execution refetches the server's checkpointed
			// input from the store.
			stats.ReplicaComm += crashes * inboxes[s].Len()
			input = ckpt.Reload(policy.Node(s))
		default:
			if ft.speculateAfter > 0 && end > ft.speculateAfter {
				// Speculative copy: launched at the threshold, costs
				// one fault-free tick, and refetches the checkpoint.
				spec := ft.speculateAfter + 1
				stats.ReplicaComm += inboxes[s].Len()
				if spec < end {
					stats.SpeculativeWins++
					end = spec
					input = ckpt.Reload(policy.Node(s))
				}
			}
		}
		if end > computeEnd {
			computeEnd = end
		}
		inputs[s] = input
	}
	stats.VirtualMakespan = commEnd + computeEnd

	next, err := c.computePhase(r, inputs)
	if err != nil {
		return RoundStats{}, err
	}
	c.commit(next, stats)
	return stats, nil
}

// Checkpoint is a durable snapshot of a cluster after its last
// completed round: the servers' instances (in a StableStore, so later
// cluster mutation cannot leak in) plus the stats history needed to
// resume a multi-round program with RunResumable.
type Checkpoint struct {
	store *policy.StableStore
	stats []RoundStats

	// Delta-program counters at the time the checkpoint was cut (both
	// zero when none is installed), letting RestoreDelta re-enter an
	// incremental program exactly where its history left off.
	batches, steps int
}

// Rounds returns how many completed rounds the checkpoint covers.
func (ck *Checkpoint) Rounds() int { return len(ck.stats) }

// Checkpoint returns the cluster's snapshot after its last completed
// round, or a snapshot of the initial load if no round has run yet.
// It returns nil when the fault-tolerant path is disabled — the
// zero-overhead path takes no checkpoints.
func (c *Cluster) Checkpoint() *Checkpoint {
	if c.ft == nil {
		return nil
	}
	ck := &Checkpoint{}
	if c.delta != nil {
		ck.batches, ck.steps = c.delta.batches, c.delta.steps
	}
	if c.ft.ckpt == nil {
		// No round committed yet: snapshot the initial placement on
		// demand so a program can resume from round 0.
		ck.store, ck.stats = policy.NewStableStore(c.servers), cloneStats(c.stats)
		return ck
	}
	ck.store, ck.stats = c.ft.ckpt, cloneStats(c.ftStatsRef())
	return ck
}

func (c *Cluster) ftStatsRef() []RoundStats { return c.ft.ckptStats }

// Restore builds a fresh cluster from a checkpoint: same server
// count, each server holding its checkpointed instance, stats history
// intact so RunResumable skips the completed prefix. Options apply as
// in NewCluster; the restored cluster is always fault-tolerant (it
// must keep checkpointing to stay restorable), with a fresh default
// configuration unless options say otherwise — in particular the old
// fault plan is NOT carried over.
func Restore(ck *Checkpoint, opts ...Option) *Cluster {
	c := NewCluster(ck.store.NumNodes(), opts...)
	c.ensureFT()
	for i := range c.servers {
		c.servers[i] = ck.store.Reload(policy.Node(i))
	}
	c.stats = cloneStats(ck.stats)
	c.ft.refreshCheckpoint(c)
	return c
}

// Store exposes the checkpoint's durable fragment store — the image a
// serving layer spills to disk with policy.EncodeStore so a session
// survives its process. The store is already isolated from later
// cluster mutation (see Checkpoint), so handing it out is safe.
func (ck *Checkpoint) Store() *policy.StableStore { return ck.store }

// RestoreStore builds a fresh fault-tolerant cluster from a bare
// fragment store — the re-entry point for checkpoint images reloaded
// from disk (policy.DecodeStore), where the round-stats history lives
// with the caller rather than inside the image. The restored cluster
// starts with an empty stats history; like Restore, it keeps
// checkpointing so it stays restorable.
func RestoreStore(store *policy.StableStore, opts ...Option) *Cluster {
	c := NewCluster(store.NumNodes(), opts...)
	c.ensureFT()
	for i := range c.servers {
		c.servers[i] = store.Reload(policy.Node(i))
	}
	c.ft.refreshCheckpoint(c)
	return c
}
