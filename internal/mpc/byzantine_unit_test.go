package mpc

import (
	"strings"
	"testing"
	"time"

	"mpclogic/internal/rel"
)

func TestByzKindStrings(t *testing.T) {
	cases := []struct {
		k      ByzKind
		s, pas string
	}{
		{Misroute, "misroute", "misrouted"},
		{Forge, "forge", "forged"},
		{Omit, "omit", "omitted"},
	}
	for _, c := range cases {
		if c.k.String() != c.s {
			t.Errorf("%d.String() = %q, want %q", c.k, c.k.String(), c.s)
		}
		if c.k.verb() != c.pas {
			t.Errorf("%d.verb() = %q, want %q", c.k, c.k.verb(), c.pas)
		}
	}
	if got := ByzKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind renders %q, want the raw value visible", got)
	}
}

func TestByzantinePlanString(t *testing.T) {
	if got := NewByzantinePlan().String(); got != "byzantine plan: none" {
		t.Errorf("empty plan renders %q", got)
	}
	p := NewByzantinePlan().Add(ByzantineEvent{Round: 0, Src: 1, Kind: Forge, Count: 1})
	if got := p.String(); !strings.Contains(got, "1 event") {
		t.Errorf("one-event plan renders %q", got)
	}
	if p.Empty() {
		t.Error("plan with an event reports Empty")
	}
	var nilPlan *ByzantinePlan
	if !nilPlan.Empty() {
		t.Error("nil plan is not Empty")
	}
}

func TestWithRoutingVerificationRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative stride did not panic")
		}
	}()
	WithRoutingVerification(-1)
}

// legalShardDst's edge cases: a multi-source shard clamps hi to p, a
// round with no Route makes every cross-network destination illegal,
// and a panicking Route condemns the fact rather than the process.
func TestLegalShardDstEdges(t *testing.T) {
	f := rel.NewFact("E", 1, 2)
	keepAll := Round{Keep: func(rel.Fact) bool { return true }}
	// Keep facts are legal anywhere in the shard's source range, with
	// hi clamped to p.
	if !legalShardDst(keepAll, 4, 2, 99, 3, f) {
		t.Error("Keep fact at an in-range destination flagged illegal")
	}
	if legalShardDst(keepAll, 4, 2, 99, 1, f) {
		t.Error("Keep fact below the source range accepted")
	}
	noRoute := Round{}
	if legalShardDst(noRoute, 4, 0, 1, 2, f) {
		t.Error("round without Route accepted a cross-network delivery")
	}
	panicky := Round{Route: routeFunc(func(rel.Fact) []int { panic("bad fact") })}
	if legalShardDst(panicky, 4, 0, 1, 2, f) {
		t.Error("panicking Route accepted the fact")
	}
}

type routeFunc func(rel.Fact) []int

func (r routeFunc) Route(f rel.Fact) []int { return r(f) }

func TestShardEqual(t *testing.T) {
	mk := func() *Shard {
		out := rel.NewInstance()
		out.Add(rel.NewFact("E", 1, 2))
		return &Shard{
			Outs: []*rel.Instance{nil, out},
			Sent: []int{0, 1},
		}
	}
	a, b := mk(), mk()
	if !shardEqual(a, b, 2) {
		t.Fatal("identical shards compare unequal")
	}
	// nil vs empty instance is still equal.
	b.Outs[0] = rel.NewInstance()
	if !shardEqual(a, b, 2) {
		t.Error("nil vs empty destination compares unequal")
	}
	if !shardEqual(b, a, 2) {
		t.Error("empty vs nil destination compares unequal")
	}
	// nil vs non-empty differs (both orientations).
	extra := rel.NewInstance()
	extra.Add(rel.NewFact("X", 7))
	b.Outs[0] = extra
	b.Sent[0] = a.Sent[0]
	if shardEqual(a, b, 2) || shardEqual(b, a, 2) {
		t.Error("nil vs non-empty destination compares equal")
	}
	// Differing content, counts, and Δ counts all differ.
	b = mk()
	b.Outs[1].Add(rel.NewFact("E", 9, 9))
	if shardEqual(a, b, 2) {
		t.Error("differing content compares equal")
	}
	b = mk()
	b.Sent[1] = 5
	if shardEqual(a, b, 2) {
		t.Error("differing Sent compares equal")
	}
	b = mk()
	b.DeltaSent = 3
	if shardEqual(a, b, 2) {
		t.Error("differing DeltaSent compares equal")
	}
}

// dialJitter is a pure function of (dst, attempt), bounded below 5ms,
// and not constant across attempts — the properties the backoff
// depends on.
func TestDialJitter(t *testing.T) {
	seen := map[time.Duration]bool{}
	for dst := 0; dst < 8; dst++ {
		for attempt := 0; attempt < 8; attempt++ {
			j := dialJitter(dst, attempt)
			if j != dialJitter(dst, attempt) {
				t.Fatalf("jitter(%d,%d) not deterministic", dst, attempt)
			}
			if j < 0 || j >= 5*time.Millisecond {
				t.Fatalf("jitter(%d,%d) = %v outside [0, 5ms)", dst, attempt, j)
			}
			seen[j] = true
		}
	}
	if len(seen) < 2 {
		t.Error("jitter constant over 64 (dst, attempt) pairs; senders would thunder in lockstep")
	}
}
