// Package mpc simulates the Massively Parallel Communication model of
// Koutris and Suciu (Section 3 of Neven, PODS 2016): p servers
// connected by a complete network compute in synchronized rounds, each
// round consisting of a communication phase (every server routes its
// local facts to destination servers) followed by a computation phase
// (pure local computation).
//
// The simulator's job is cost accounting, the model's primary object
// of study: the load of a server in a round is the number of facts it
// receives, and the interesting quantity is the maximum load across
// servers, which theory bounds by m/p^{1/τ*} for one-round algorithms
// on skew-free data. Local computation is unbounded in the model, so
// the simulator runs it natively (and concurrently).
//
// The model assumes servers that never fail; real MPP engines do not
// get that luxury. A cluster can therefore be configured with a
// fault-tolerance layer (see faults.go and recovery.go): a seeded
// FaultPlan injects server crashes, dropped or duplicated transfers,
// and straggler delays on a deterministic virtual clock, and the
// engine recovers via checkpointed re-execution. The headline
// invariant is fault transparency — the query output and the logical
// round metrics (Received, MaxLoad, TotalComm) of a recovered run are
// byte-identical to the fault-free run, while the recovery costs are
// accounted separately (Retries, RecoveredServers, ReplicaComm,
// SpeculativeWins, Quarantined). Beyond crash-stop, the engine detects
// Byzantine routing — a server that mis-routes, forges, or withholds
// facts — by receiver-side verification against the round's placement
// policy plus a deterministic re-execution audit, quarantining
// transient liars and failing persistent ones with a typed
// RoutingIntegrityError (see byzantine.go). With no fault-tolerance
// Option installed, rounds execute on the original zero-overhead path.
package mpc

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"mpclogic/internal/rel"
)

// Router decides the destination servers of a fact during a
// communication phase. Destinations out of range are an error.
//
// The communication phase fans out over source servers, so Route is
// called concurrently from multiple goroutines and implementations
// must be safe for concurrent use. Every router in this package (and
// package hypercube) is stateless and therefore trivially safe.
type Router interface {
	Route(f rel.Fact) []int
}

// RouterFunc adapts a function to the Router interface.
type RouterFunc func(rel.Fact) []int

// Route implements Router.
func (r RouterFunc) Route(f rel.Fact) []int { return r(f) }

// Compute is a local computation phase: it maps a server's received
// data to the server's new local data. It must not retain or mutate
// the input instance's relations beyond the returned instance, and it
// must be a pure function of (server, local) — the recovery layer
// relies on re-execution producing identical results.
type Compute func(server int, local *rel.Instance) *rel.Instance

// Round couples a communication phase with a computation phase.
// Facts for which Keep returns true stay at their current server and
// are not counted as communication (local data needs no network hop);
// all other facts are shipped according to Route. Like Route, Keep is
// called concurrently and must be safe for concurrent use.
//
// Resident names relations whose facts bypass the communication phase
// entirely: they are neither routed, kept (copied), nor dropped — each
// server's resident relations are carried by reference into its round
// input, so a round's cost is independent of the resident state size.
// A resident round's Compute typically folds shipped Δ fragments into
// the residents (see rel.Instance.FoldDelta) and must return an
// instance that still contains them — usually its own input, which is
// round-private and safe to mutate. Routing facts into a relation
// named in Resident is a deterministic error. One caveat: because
// residents are shared with the committed state during the round, a
// Compute that PANICS after another server's fold already mutated a
// resident breaks RunRound's atomicity-on-failure guarantee for that
// resident state; every engine-detected error (bad routes, exhausted
// retry budgets) still precedes any fold and stays atomic.
//
// DeltaRels names the relations this round ships as Δ fragments; their
// routed deliveries are tallied in RoundStats.DeltaComm. The (full, Δ)
// pairing of semi-naive evaluation is expressed as a Resident entry
// (the full copy that stays put) plus a DeltaRels entry (the fragment
// on the wire). MaxLoad/TotalComm remain the logical metrics over all
// shipped facts; DeltaComm is the sub-series the incremental engine
// optimizes.
type Round struct {
	Name      string
	Route     Router
	Compute   Compute
	Keep      func(rel.Fact) bool
	Resident  []string
	DeltaRels []string
}

// roundSets is a Round's membership view of its Resident and DeltaRels
// declarations, precomputed once per executed round.
type roundSets struct {
	resident map[string]bool
	delta    map[string]bool
}

func (r Round) sets() roundSets {
	var s roundSets
	if len(r.Resident) > 0 {
		s.resident = make(map[string]bool, len(r.Resident))
		for _, name := range r.Resident {
			s.resident[name] = true
		}
	}
	if len(r.DeltaRels) > 0 {
		s.delta = make(map[string]bool, len(r.DeltaRels))
		for _, name := range r.DeltaRels {
			s.delta[name] = true
		}
	}
	return s
}

// RoundStats records the cost of one executed round, split into two
// layers. The logical metrics (Received, MaxLoad, TotalComm) describe
// the round the algorithm asked for and are invariant under any
// recovered fault plan — they are the quantities the MPC load bounds
// constrain. The recovery metrics (Retries, RecoveredServers,
// ReplicaComm, SpeculativeWins, VirtualMakespan) describe what fault
// tolerance cost on top; they are all zero on the fault-free path.
type RoundStats struct {
	Name      string
	Received  []int // facts received per server (load)
	MaxLoad   int   // max over Received
	TotalComm int   // total facts sent = Σ Received
	DeltaComm int   // the subset of TotalComm carried by DeltaRels relations

	// Recovery accounting (zero unless a fault-tolerance Option is
	// installed and faults actually fired; see recovery.go).
	Retries          int // re-sent transfers + re-executed computations
	RecoveredServers int // servers whose partition was re-executed after a crash
	ReplicaComm      int // non-logical facts on the wire: retransmissions, duplicates, checkpoint traffic
	SpeculativeWins  int // straggler partitions finished first by a speculative copy
	Quarantined      int // Byzantine sources whose shard was replaced by an audited re-execution
	VirtualMakespan  int // completion tick of the round on the virtual clock
}

// String renders the stats compactly. Recovery metrics appear only
// when any of them is nonzero, so fault-free output is unchanged.
func (s RoundStats) String() string {
	base := fmt.Sprintf("round %s: max load %d, total communication %d", s.Name, s.MaxLoad, s.TotalComm)
	if s.DeltaComm != 0 {
		base += fmt.Sprintf(", delta communication %d", s.DeltaComm)
	}
	if s.Retries != 0 || s.RecoveredServers != 0 || s.ReplicaComm != 0 || s.SpeculativeWins != 0 || s.Quarantined != 0 {
		quarantined := ""
		if s.Quarantined != 0 {
			// Rendered only when a Byzantine source was actually healed,
			// so pre-Byzantine recovery renderings are unchanged.
			quarantined = fmt.Sprintf(", quarantined %d", s.Quarantined)
		}
		base += fmt.Sprintf(" [recovery: retries %d, recovered %d, replica comm %d, speculative wins %d%s, makespan %d]",
			s.Retries, s.RecoveredServers, s.ReplicaComm, s.SpeculativeWins, quarantined, s.VirtualMakespan)
	}
	return base
}

// LogicalString renders only the logical, fault-invariant metrics of
// the round. Two executions of the same program whose LogicalString
// traces differ violate fault transparency.
func (s RoundStats) LogicalString() string {
	base := fmt.Sprintf("round %s: received %v, max load %d, total communication %d",
		s.Name, s.Received, s.MaxLoad, s.TotalComm)
	if s.DeltaComm != 0 {
		// DeltaComm is computed from the same shards as TotalComm on
		// both execution paths, so it is logical and fault-invariant;
		// rendering it only when nonzero keeps pre-delta traces
		// byte-identical.
		base += fmt.Sprintf(", delta communication %d", s.DeltaComm)
	}
	return base
}

// Cluster is a simulated MPC deployment.
type Cluster struct {
	p           int
	servers     []*rel.Instance
	stats       []RoundStats
	tr          Transport   // nil: in-process Local transport (see transport.go)
	ft          *ftState    // nil: fault tolerance off, zero-overhead path
	delta       *deltaState // nil: no incremental program installed (see delta.go)
	verifyEvery int         // sampled routing verification stride; 0: off (see byzantine.go)
}

// Option configures a cluster at construction (see faults.go for the
// fault-tolerance options).
type Option func(*Cluster)

// NewCluster returns a cluster of p servers with empty local data.
func NewCluster(p int, opts ...Option) *Cluster {
	if p <= 0 {
		panic(fmt.Sprintf("mpc: cluster needs at least one server (got p=%d)", p))
	}
	c := &Cluster{p: p, servers: make([]*rel.Instance, p)}
	for i := range c.servers {
		c.servers[i] = rel.NewInstance()
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// P returns the number of servers.
func (c *Cluster) P() int { return c.p }

// Server returns server i's current local instance (live reference).
func (c *Cluster) Server(i int) *rel.Instance {
	if i < 0 || i >= c.p {
		panic(fmt.Sprintf("mpc: Server(%d) on a %d-server cluster", i, c.p))
	}
	return c.servers[i]
}

// Stats returns the per-round statistics recorded so far.
func (c *Cluster) Stats() []RoundStats { return c.stats }

// LastStats returns the statistics of the most recent round.
func (c *Cluster) LastStats() RoundStats {
	if len(c.stats) == 0 {
		return RoundStats{}
	}
	return c.stats[len(c.stats)-1]
}

// MaxLoad returns the maximum per-round max load over the whole
// execution — the load measure of the MPC model.
func (c *Cluster) MaxLoad() int {
	max := 0
	for _, s := range c.stats {
		if s.MaxLoad > max {
			max = s.MaxLoad
		}
	}
	return max
}

// TotalComm returns total communication over all rounds.
func (c *Cluster) TotalComm() int {
	n := 0
	for _, s := range c.stats {
		n += s.TotalComm
	}
	return n
}

// DeltaCommTotal returns total Δ communication over all rounds — the
// subset of TotalComm that delta rounds actually shipped.
func (c *Cluster) DeltaCommTotal() int {
	n := 0
	for _, s := range c.stats {
		n += s.DeltaComm
	}
	return n
}

// Rounds returns how many rounds have been executed.
func (c *Cluster) Rounds() int { return len(c.stats) }

// LogicalTrace renders the logical metrics of every executed round,
// one per line — the byte string the fault-transparency invariant
// compares across fault plans.
func (c *Cluster) LogicalTrace() string {
	var b strings.Builder
	for _, s := range c.stats {
		b.WriteString(s.LogicalString())
		b.WriteByte('\n')
	}
	return b.String()
}

// LoadRoundRobin installs the initial partition of the input: each
// server receives ~1/p of the data, mirroring the model's assumption
// that the input starts out evenly spread with no particular scheme.
// Initial placement is not counted as communication.
func (c *Cluster) LoadRoundRobin(i *rel.Instance) {
	k := 0
	i.Each(func(f rel.Fact) bool {
		c.servers[k%c.p].Add(f)
		k++
		return true
	})
}

// LoadAt places facts at an explicit server (for adversarial initial
// placements in tests). A server outside [0, P()) panics
// deterministically instead of corrupting a neighbouring slot.
func (c *Cluster) LoadAt(server int, i *rel.Instance) {
	if server < 0 || server >= c.p {
		panic(fmt.Sprintf("mpc: LoadAt(%d) on a %d-server cluster", server, c.p))
	}
	c.servers[server].AddAll(i)
}

// Shard is one routing worker's contribution to a communication
// phase: per-destination outboxes and per-destination delivery counts
// for a contiguous ascending range of source servers. Shards are
// round-private, so destinations (and transports) may adopt their
// outboxes wholesale. Bounding the number of shards by the worker
// count (not p) keeps the outbox count at workers×p instead of p²,
// which matters at large p where most (source, destination) pairs
// carry only a few facts. (The fault-tolerant path deliberately routes
// one shard per source — p shards — because fault plans address
// individual network links; see recovery.go.)
//
// Shards are what a Transport ships: Outs[dst] is the payload bound
// for destination dst (nil when empty), Sent[dst] its logical fact
// count. Shard indices are the merge order every transport must
// preserve.
type Shard struct {
	Outs      []*rel.Instance // Outs[dst]: facts bound for dst; nil if none
	Sent      []int           // routed deliveries per destination (Keep facts uncounted)
	DeltaSent int             // routed deliveries of DeltaRels relations
	err       error
}

// deltaSent sums the shards' Δ deliveries — the DeltaComm of the
// round. Like the merge, it is a pure function of the shards, so the
// fault-free and fault-tolerant paths compute identical values.
func deltaSent(shards []Shard) int {
	n := 0
	for i := range shards {
		n += shards[i].DeltaSent
	}
	return n
}

// routeRange runs the communication phase for sources [lo, hi). It
// only reads those servers' relations and writes its own shard, so
// ranges can route concurrently. Errors pick the lowest erring source
// (sources are visited in ascending order) and, within it, the
// smallest offending fact by Fact.Less, so the reported error does not
// depend on enumeration order; a panicking Router or Keep surfaces as
// the shard's error instead of killing the process. Once a source has a
// confirmed range error, nothing more is delivered or counted for it —
// the remaining facts are only probed (see probeBadRoute) to refine the
// reported fact.
func (c *Cluster) routeRange(lo, hi int, r Round, sets roundSets) (sh Shard) {
	sh.Outs = make([]*rel.Instance, c.p)
	sh.Sent = make([]int, c.p)
	cur := lo
	defer func() {
		if rec := recover(); rec != nil {
			sh.err = fmt.Errorf("mpc: server %d communication phase panicked in round %q: %v", cur, r.Name, rec)
		}
	}()
	for src := lo; src < hi; src++ {
		cur = src
		if err := routeServer(r, sets, c.p, src, c.servers[src], &sh); err != nil {
			// The round is abandoned on error, so the remaining
			// sources of the range need not be routed.
			sh.err = err
			return sh
		}
	}
	return sh
}

// routeServer routes one source server's relations into sh — the body
// of the communication phase for a single source, shared by the
// in-cluster routing fan-out and the standalone RouteSource entry
// point of remote worker processes. Panics from Router/Keep propagate
// to the caller, which owns the recover.
func routeServer(r Round, sets roundSets, p, src int, srv *rel.Instance, sh *Shard) error {
	deliver := func(dst int, f rel.Fact) {
		if sh.Outs[dst] == nil {
			sh.Outs[dst] = rel.NewInstance()
		}
		sh.Outs[dst].Add(f)
	}
	var badFact rel.Fact
	badDst := -1
	for _, name := range srv.RelationNames() {
		if sets.resident[name] {
			// Resident relations never enter the communication
			// phase: they are adopted by reference after the merge
			// (see adoptResidents), so carrying them costs O(1) per
			// relation instead of O(facts).
			continue
		}
		isDelta := sets.delta[name]
		rl := srv.Relation(name)
		rl.Each(func(t rel.Tuple) bool {
			f := rel.Fact{Rel: name, Tuple: t}
			if badDst >= 0 {
				// The round is already doomed at this source: stop
				// delivering, and re-route only facts that could
				// replace the reported (Less-minimal) offender.
				if f.Less(badFact) {
					if dst, bad := probeBadRoute(r, f, p); bad {
						badFact, badDst = f, dst
					}
				}
				return true
			}
			if r.Keep != nil && r.Keep(f) {
				deliver(src, f)
				return true
			}
			if r.Route == nil {
				return true
			}
			for _, dst := range r.Route.Route(f) {
				if dst < 0 || dst >= p {
					badFact, badDst = f, dst
					return true
				}
				sh.Sent[dst]++
				if isDelta {
					sh.DeltaSent++
				}
				deliver(dst, f)
			}
			return true
		})
	}
	if badDst >= 0 {
		return fmt.Errorf("mpc: route of %v targets server %d outside [0,%d)", badFact, badDst, p)
	}
	return nil
}

// probeBadRoute reports whether routing f targets a destination outside
// [0,p). It refines an already-confirmed range error to the
// Less-minimal offending fact, so it recovers from Router and Keep
// panics and treats the fact as non-offending: a later panicking fact
// must not convert a clean range error into a panic error.
func probeBadRoute(r Round, f rel.Fact, p int) (dst int, bad bool) {
	defer func() {
		if recover() != nil {
			dst, bad = 0, false
		}
	}()
	if r.Keep != nil && r.Keep(f) {
		return 0, false
	}
	for _, d := range r.Route.Route(f) {
		if d < 0 || d >= p {
			return d, true
		}
	}
	return 0, false
}

// routePhase fans the communication phase out over disjoint ascending
// source ranges of the given chunk size, one goroutine per shard. Each
// goroutine writes only shards[w] for its own w, so the fan-out is
// race-free by index-disjointness, and each shard's content depends
// only on its range's data — not on scheduling. Shard granularity is
// invisible downstream: the merged inboxes and counts are unions and
// sums over all sources, so they are independent of the chunk size.
// Worker order is source order, so the first erring shard carries the
// lowest erring source and repeated failing runs surface the same
// error.
func (c *Cluster) routePhase(r Round, chunk int) ([]Shard, error) {
	workers := (c.p + chunk - 1) / chunk
	shards := make([]Shard, workers)
	sets := r.sets()
	var routeWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > c.p {
			hi = c.p
		}
		routeWG.Add(1)
		go func(w, lo, hi int) {
			defer routeWG.Done()
			shards[w] = c.routeRange(lo, hi, r, sets)
		}(w, lo, hi)
	}
	routeWG.Wait()
	for w := range shards {
		if shards[w].err != nil {
			return nil, shards[w].err
		}
	}
	return shards, nil
}

// defaultChunk sizes the source ranges of the fault-free path so the
// shard count is bounded by GOMAXPROCS.
func (c *Cluster) defaultChunk() int {
	workers := runtime.GOMAXPROCS(0)
	if workers > c.p {
		workers = c.p
	}
	return (c.p + workers - 1) / workers
}

// adoptResidents carries each server's Resident relations into its
// round input by reference — the zero-copy, zero-communication channel
// that lets a delta round's cost scale with |Δ| instead of the
// resident state size. Inboxes are round-private, so adopting live
// server relations is safe: the round's Compute either returns them in
// its output (state carried forward) or drops them. Routing facts into
// a resident relation would silently entangle shipped and resident
// copies, so it is a deterministic error, detected before any Compute
// runs (which keeps the failure atomic).
func (c *Cluster) adoptResidents(r Round, sets roundSets, inboxes []*rel.Instance) error {
	if sets.resident == nil {
		return nil
	}
	for _, name := range r.Resident {
		for i, srv := range c.servers {
			if in := inboxes[i].Relation(name); in != nil && in.Len() > 0 {
				return fmt.Errorf("mpc: round %q routed facts into resident relation %q on server %d", r.Name, name, i)
			}
			if rl := srv.Relation(name); rl != nil {
				inboxes[i].SetRelation(rl)
			}
		}
	}
	return nil
}

// computePhase runs the computation phase: local and embarrassingly
// parallel. Each worker writes only its own index of next/workerErrs,
// so the fan-out is race-free by index-disjointness, and a panicking
// Compute surfaces as this round's error instead of killing the
// process (or worse, being silently lost). The error of the lowest
// panicking server is reported, so repeated failing runs surface the
// same error.
func (c *Cluster) computePhase(r Round, inputs []*rel.Instance) ([]*rel.Instance, error) {
	compute := r.Compute
	if compute == nil {
		compute = func(_ int, local *rel.Instance) *rel.Instance { return local }
	}
	next := make([]*rel.Instance, c.p)
	workerErrs := make([]error, c.p)
	var wg sync.WaitGroup
	for i := 0; i < c.p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					workerErrs[i] = fmt.Errorf("mpc: server %d compute phase panicked in round %q: %v", i, r.Name, rec)
				}
			}()
			next[i] = compute(i, inputs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range workerErrs {
		if err != nil {
			return nil, err
		}
	}
	for i, inst := range next {
		if inst == nil {
			next[i] = rel.NewInstance()
		}
	}
	return next, nil
}

// commit atomically installs a completed round: the servers' new
// instances and the round's stats become visible together, and the
// post-round checkpoint (fault-tolerant clusters only) is refreshed.
// No failure path reaches commit, which is what makes RunRound atomic.
func (c *Cluster) commit(next []*rel.Instance, stats RoundStats) {
	copy(c.servers, next)
	c.stats = append(c.stats, stats)
	if c.ft != nil {
		c.ft.refreshCheckpoint(c)
	}
}

// RunRound executes one communication + computation round and records
// its statistics.
//
// RunRound is atomic on failure: if it returns a non-nil error — a
// routing error, a panicking Router/Keep/Compute, or an exhausted
// recovery retry budget — every server's instance and the stats slice
// are exactly as they were before the call. Callers may therefore
// retry a failed round (or resume a failed multi-round program, see
// RunResumable) without repairing cluster state first.
func (c *Cluster) RunRound(r Round) (RoundStats, error) {
	if c.ft != nil {
		return c.runRoundFT(r)
	}
	chunk := c.defaultChunk()
	shards, err := c.routePhase(r, chunk)
	if err != nil {
		return RoundStats{}, err
	}
	if c.verifyEvery > 0 {
		// Sampled receiver-side routing verification (see byzantine.go).
		// Off by default, so the hot path stays zero-overhead.
		if err := c.verifyShards(r, shards, chunk); err != nil {
			return RoundStats{}, err
		}
	}
	inboxes, received, err := c.Transport().Exchange(r.Name, c.p, shards)
	if err != nil {
		return RoundStats{}, err
	}
	if err := c.adoptResidents(r, r.sets(), inboxes); err != nil {
		return RoundStats{}, err
	}
	next, err := c.computePhase(r, inboxes)
	if err != nil {
		return RoundStats{}, err
	}
	stats := RoundStats{Name: r.Name, Received: received, DeltaComm: deltaSent(shards)}
	for _, n := range received {
		stats.TotalComm += n
		if n > stats.MaxLoad {
			stats.MaxLoad = n
		}
	}
	c.commit(next, stats)
	return stats, nil
}

// Run executes a sequence of rounds, stopping at the first error.
func (c *Cluster) Run(rounds ...Round) error {
	for _, r := range rounds {
		if _, err := c.RunRound(r); err != nil {
			return err
		}
	}
	return nil
}

// RunResumable executes rounds as the cluster's complete logical
// program, resuming after a failure instead of restarting: the prefix
// already recorded in Stats() is skipped (RunRound's atomicity
// guarantees the cluster holds exactly the state after the last
// completed round), and execution continues with the first
// outstanding round. Skipped entries must match the recorded history
// by name — a mismatch means the cluster is mid-way through a
// different program and is an error, not silent corruption.
func (c *Cluster) RunResumable(rounds ...Round) error {
	done := len(c.stats)
	if done > len(rounds) {
		return fmt.Errorf("mpc: cluster has executed %d rounds but the program has only %d", done, len(rounds))
	}
	for i := 0; i < done; i++ {
		if c.stats[i].Name != rounds[i].Name {
			return fmt.Errorf("mpc: cannot resume: executed round %d is %q but the program expects %q",
				i, c.stats[i].Name, rounds[i].Name)
		}
	}
	return c.Run(rounds[done:]...)
}

// Output returns the union of all servers' local data — the model's
// convention that the output must be present in the union of the
// servers.
func (c *Cluster) Output() *rel.Instance {
	out := rel.NewInstance()
	for _, s := range c.servers {
		out.AddAll(s)
	}
	return out
}

// Broadcast routes every fact to all p servers. p must be positive;
// using a router built for a larger cluster than the one executing the
// round surfaces as RunRound's deterministic out-of-range error.
func Broadcast(p int) Router {
	if p <= 0 {
		panic(fmt.Sprintf("mpc: Broadcast needs at least one server (got p=%d)", p))
	}
	all := make([]int, p)
	for i := range all {
		all[i] = i
	}
	return RouterFunc(func(rel.Fact) []int { return all })
}

// ByRelation dispatches routing on the fact's relation name; facts of
// unlisted relations are dropped (routed nowhere).
func ByRelation(routes map[string]Router) Router {
	return RouterFunc(func(f rel.Fact) []int {
		if r, ok := routes[f.Rel]; ok {
			return r.Route(f)
		}
		return nil
	})
}

// HashOn routes a fact to the single server determined by hashing the
// given attribute positions (Example 3.1(1a)'s h(·)). Seed decouples
// hash functions across rounds. p must be positive; a p larger than
// the executing cluster's surfaces as RunRound's deterministic
// out-of-range error.
func HashOn(p int, cols []int, seed uint64) Router {
	if p <= 0 {
		panic(fmt.Sprintf("mpc: HashOn needs at least one server (got p=%d)", p))
	}
	return RouterFunc(func(f rel.Fact) []int {
		t := f.Tuple.Project(cols)
		return []int{int((t.Hash() ^ seed) % uint64(p))}
	})
}
