// Package mpc simulates the Massively Parallel Communication model of
// Koutris and Suciu (Section 3 of Neven, PODS 2016): p servers
// connected by a complete network compute in synchronized rounds, each
// round consisting of a communication phase (every server routes its
// local facts to destination servers) followed by a computation phase
// (pure local computation).
//
// The simulator's job is cost accounting, the model's primary object
// of study: the load of a server in a round is the number of facts it
// receives, and the interesting quantity is the maximum load across
// servers, which theory bounds by m/p^{1/τ*} for one-round algorithms
// on skew-free data. Local computation is unbounded in the model, so
// the simulator runs it natively (and concurrently).
package mpc

import (
	"fmt"
	"runtime"
	"sync"

	"mpclogic/internal/rel"
)

// Router decides the destination servers of a fact during a
// communication phase. Destinations out of range are an error.
//
// The communication phase fans out over source servers, so Route is
// called concurrently from multiple goroutines and implementations
// must be safe for concurrent use. Every router in this package (and
// package hypercube) is stateless and therefore trivially safe.
type Router interface {
	Route(f rel.Fact) []int
}

// RouterFunc adapts a function to the Router interface.
type RouterFunc func(rel.Fact) []int

// Route implements Router.
func (r RouterFunc) Route(f rel.Fact) []int { return r(f) }

// Compute is a local computation phase: it maps a server's received
// data to the server's new local data. It must not retain or mutate
// the input instance's relations beyond the returned instance.
type Compute func(server int, local *rel.Instance) *rel.Instance

// Round couples a communication phase with a computation phase.
// Facts for which Keep returns true stay at their current server and
// are not counted as communication (local data needs no network hop);
// all other facts are shipped according to Route. Like Route, Keep is
// called concurrently and must be safe for concurrent use.
type Round struct {
	Name    string
	Route   Router
	Compute Compute
	Keep    func(rel.Fact) bool
}

// RoundStats records the cost of one executed round.
type RoundStats struct {
	Name      string
	Received  []int // facts received per server (load)
	MaxLoad   int   // max over Received
	TotalComm int   // total facts sent = Σ Received
}

// String renders the stats compactly.
func (s RoundStats) String() string {
	return fmt.Sprintf("round %s: max load %d, total communication %d", s.Name, s.MaxLoad, s.TotalComm)
}

// Cluster is a simulated MPC deployment.
type Cluster struct {
	p       int
	servers []*rel.Instance
	stats   []RoundStats
}

// NewCluster returns a cluster of p servers with empty local data.
func NewCluster(p int) *Cluster {
	if p <= 0 {
		panic("mpc: cluster needs at least one server")
	}
	c := &Cluster{p: p, servers: make([]*rel.Instance, p)}
	for i := range c.servers {
		c.servers[i] = rel.NewInstance()
	}
	return c
}

// P returns the number of servers.
func (c *Cluster) P() int { return c.p }

// Server returns server i's current local instance (live reference).
func (c *Cluster) Server(i int) *rel.Instance { return c.servers[i] }

// Stats returns the per-round statistics recorded so far.
func (c *Cluster) Stats() []RoundStats { return c.stats }

// LastStats returns the statistics of the most recent round.
func (c *Cluster) LastStats() RoundStats {
	if len(c.stats) == 0 {
		return RoundStats{}
	}
	return c.stats[len(c.stats)-1]
}

// MaxLoad returns the maximum per-round max load over the whole
// execution — the load measure of the MPC model.
func (c *Cluster) MaxLoad() int {
	max := 0
	for _, s := range c.stats {
		if s.MaxLoad > max {
			max = s.MaxLoad
		}
	}
	return max
}

// TotalComm returns total communication over all rounds.
func (c *Cluster) TotalComm() int {
	n := 0
	for _, s := range c.stats {
		n += s.TotalComm
	}
	return n
}

// Rounds returns how many rounds have been executed.
func (c *Cluster) Rounds() int { return len(c.stats) }

// LoadRoundRobin installs the initial partition of the input: each
// server receives ~1/p of the data, mirroring the model's assumption
// that the input starts out evenly spread with no particular scheme.
// Initial placement is not counted as communication.
func (c *Cluster) LoadRoundRobin(i *rel.Instance) {
	k := 0
	i.Each(func(f rel.Fact) bool {
		c.servers[k%c.p].Add(f)
		k++
		return true
	})
}

// LoadAt places facts at an explicit server (for adversarial initial
// placements in tests).
func (c *Cluster) LoadAt(server int, i *rel.Instance) {
	c.servers[server].AddAll(i)
}

// commShard is one routing worker's contribution to a communication
// phase: per-destination outboxes and per-destination delivery counts
// for a contiguous ascending range of source servers. Shards are
// round-private, so destinations may adopt their outboxes wholesale.
// Bounding the number of shards by the worker count (not p) keeps the
// outbox count at workers×p instead of p², which matters at large p
// where most (source, destination) pairs carry only a few facts.
type commShard struct {
	outs []*rel.Instance // outs[dst]: facts bound for dst; nil if none
	sent []int           // routed deliveries per destination (Keep facts uncounted)
	err  error
}

// routeRange runs the communication phase for sources [lo, hi). It
// only reads those servers' relations and writes its own shard, so
// ranges can route concurrently. Errors pick the lowest erring source
// (sources are visited in ascending order) and, within it, the
// smallest offending fact by Fact.Less, so the reported error does not
// depend on enumeration order; a panicking Router or Keep surfaces as
// the shard's error instead of killing the process. Once a source has a
// confirmed range error, nothing more is delivered or counted for it —
// the remaining facts are only probed (see probeBadRoute) to refine the
// reported fact.
func (c *Cluster) routeRange(lo, hi int, r Round) (sh commShard) {
	sh.outs = make([]*rel.Instance, c.p)
	sh.sent = make([]int, c.p)
	cur := lo
	defer func() {
		if rec := recover(); rec != nil {
			sh.err = fmt.Errorf("mpc: server %d communication phase panicked in round %q: %v", cur, r.Name, rec)
		}
	}()
	deliver := func(dst int, f rel.Fact) {
		if sh.outs[dst] == nil {
			sh.outs[dst] = rel.NewInstance()
		}
		sh.outs[dst].Add(f)
	}
	for src := lo; src < hi; src++ {
		cur = src
		var badFact rel.Fact
		badDst := -1
		srv := c.servers[src]
		for _, name := range srv.RelationNames() {
			rl := srv.Relation(name)
			rl.Each(func(t rel.Tuple) bool {
				f := rel.Fact{Rel: name, Tuple: t}
				if badDst >= 0 {
					// The round is already doomed at this source: stop
					// delivering, and re-route only facts that could
					// replace the reported (Less-minimal) offender.
					if f.Less(badFact) {
						if dst, bad := probeBadRoute(r, f, c.p); bad {
							badFact, badDst = f, dst
						}
					}
					return true
				}
				if r.Keep != nil && r.Keep(f) {
					deliver(src, f)
					return true
				}
				if r.Route == nil {
					return true
				}
				for _, dst := range r.Route.Route(f) {
					if dst < 0 || dst >= c.p {
						badFact, badDst = f, dst
						return true
					}
					sh.sent[dst]++
					deliver(dst, f)
				}
				return true
			})
		}
		if badDst >= 0 {
			// The round is abandoned on error, so the remaining
			// sources of the range need not be routed.
			sh.err = fmt.Errorf("mpc: route of %v targets server %d outside [0,%d)", badFact, badDst, c.p)
			return sh
		}
	}
	return sh
}

// probeBadRoute reports whether routing f targets a destination outside
// [0,p). It refines an already-confirmed range error to the
// Less-minimal offending fact, so it recovers from Router and Keep
// panics and treats the fact as non-offending: a later panicking fact
// must not convert a clean range error into a panic error.
func probeBadRoute(r Round, f rel.Fact, p int) (dst int, bad bool) {
	defer func() {
		if recover() != nil {
			dst, bad = 0, false
		}
	}()
	if r.Keep != nil && r.Keep(f) {
		return 0, false
	}
	for _, d := range r.Route.Route(f) {
		if d < 0 || d >= p {
			return d, true
		}
	}
	return 0, false
}

// RunRound executes one communication + computation round and records
// its statistics.
func (c *Cluster) RunRound(r Round) (RoundStats, error) {
	// Communication phase, step 1: fan out over disjoint ascending
	// source ranges, one per worker. Each goroutine writes only
	// shards[w] for its own w, so the fan-out is race-free by
	// index-disjointness, and each shard's content depends only on its
	// range's data — not on scheduling. The merged inboxes and counts
	// below are unions and sums over all sources, so they are also
	// independent of the worker count.
	workers := runtime.GOMAXPROCS(0)
	if workers > c.p {
		workers = c.p
	}
	chunk := (c.p + workers - 1) / workers
	workers = (c.p + chunk - 1) / chunk
	shards := make([]commShard, workers)
	var routeWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > c.p {
			hi = c.p
		}
		routeWG.Add(1)
		go func(w, lo, hi int) {
			defer routeWG.Done()
			shards[w] = c.routeRange(lo, hi, r)
		}(w, lo, hi)
	}
	routeWG.Wait()
	// Worker order is source order, so the first erring shard carries
	// the lowest erring source and repeated failing runs surface the
	// same error.
	for w := range shards {
		if shards[w].err != nil {
			return RoundStats{}, shards[w].err
		}
	}

	// Step 2: merge shards into per-destination inboxes, one goroutine
	// per destination, each visiting sources in ascending order. Every
	// worker writes only its own index of inboxes/received/mergeErrs,
	// and the (dst, src) merge order is fixed, so the resulting inboxes
	// and load accounting are byte-identical to a sequential phase.
	inboxes := make([]*rel.Instance, c.p)
	received := make([]int, c.p)
	mergeErrs := make([]error, c.p)
	var mergeWG sync.WaitGroup
	for dst := 0; dst < c.p; dst++ {
		mergeWG.Add(1)
		go func(dst int) {
			defer mergeWG.Done()
			defer func() {
				if rec := recover(); rec != nil {
					mergeErrs[dst] = fmt.Errorf("mpc: server %d inbox merge panicked in round %q: %v", dst, r.Name, rec)
				}
			}()
			var inbox *rel.Instance
			n := 0
			for w := range shards {
				n += shards[w].sent[dst]
				out := shards[w].outs[dst]
				if out == nil {
					continue
				}
				if inbox == nil {
					// Shards are round-private: adopt the first outbox
					// instead of copying it.
					inbox = out
					continue
				}
				for _, name := range out.RelationNames() {
					o := out.Relation(name)
					inbox.EnsureRelationSize(name, o.Arity, o.Len()).UnionWith(o)
				}
			}
			if inbox == nil {
				inbox = rel.NewInstance()
			}
			inboxes[dst] = inbox
			received[dst] = n
		}(dst)
	}
	mergeWG.Wait()
	for _, err := range mergeErrs {
		if err != nil {
			return RoundStats{}, err
		}
	}

	// Computation phase: local and embarrassingly parallel. Each
	// worker writes only its own index of next/workerErrs, so the
	// fan-out is race-free by index-disjointness, and a panicking
	// Compute surfaces as this round's error instead of killing the
	// process (or worse, being silently lost).
	compute := r.Compute
	if compute == nil {
		compute = func(_ int, local *rel.Instance) *rel.Instance { return local }
	}
	next := make([]*rel.Instance, c.p)
	workerErrs := make([]error, c.p)
	var wg sync.WaitGroup
	for i := 0; i < c.p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					workerErrs[i] = fmt.Errorf("mpc: server %d compute phase panicked in round %q: %v", i, r.Name, rec)
				}
			}()
			next[i] = compute(i, inboxes[i])
		}(i)
	}
	wg.Wait()
	// Report the lowest panicking server so repeated failing runs
	// surface the same error.
	for _, err := range workerErrs {
		if err != nil {
			return RoundStats{}, err
		}
	}
	for i, inst := range next {
		if inst == nil {
			inst = rel.NewInstance()
		}
		c.servers[i] = inst
	}

	stats := RoundStats{Name: r.Name, Received: received}
	for _, n := range received {
		stats.TotalComm += n
		if n > stats.MaxLoad {
			stats.MaxLoad = n
		}
	}
	c.stats = append(c.stats, stats)
	return stats, nil
}

// Run executes a sequence of rounds, stopping at the first error.
func (c *Cluster) Run(rounds ...Round) error {
	for _, r := range rounds {
		if _, err := c.RunRound(r); err != nil {
			return err
		}
	}
	return nil
}

// Output returns the union of all servers' local data — the model's
// convention that the output must be present in the union of the
// servers.
func (c *Cluster) Output() *rel.Instance {
	out := rel.NewInstance()
	for _, s := range c.servers {
		out.AddAll(s)
	}
	return out
}

// Broadcast routes every fact to all p servers.
func Broadcast(p int) Router {
	all := make([]int, p)
	for i := range all {
		all[i] = i
	}
	return RouterFunc(func(rel.Fact) []int { return all })
}

// ByRelation dispatches routing on the fact's relation name; facts of
// unlisted relations are dropped (routed nowhere).
func ByRelation(routes map[string]Router) Router {
	return RouterFunc(func(f rel.Fact) []int {
		if r, ok := routes[f.Rel]; ok {
			return r.Route(f)
		}
		return nil
	})
}

// HashOn routes a fact to the single server determined by hashing the
// given attribute positions (Example 3.1(1a)'s h(·)). Seed decouples
// hash functions across rounds.
func HashOn(p int, cols []int, seed uint64) Router {
	return RouterFunc(func(f rel.Fact) []int {
		t := f.Tuple.Project(cols)
		return []int{int((t.Hash() ^ seed) % uint64(p))}
	})
}
