package mpc

import (
	"fmt"
	"strings"
	"testing"

	"mpclogic/internal/rel"
)

// countdownProgram is a minimal recursive delta program used to
// exercise the driver: it maintains N = { n-k | N-fact n, 0 ≤ k ≤ n },
// i.e. the downward closure of every loaded natural. The frontier
// carries one generation of decrements per step, so fixpoint length is
// data-dependent — exactly the shape the fixpoint loop must handle.
func countdownProgram(p int) DeltaProgram {
	h := HashOn(p, []int{0}, 0xD)
	fold := func(_ int, local *rel.Instance) *rel.Instance {
		newN := local.FoldDelta(DeltaName("N"), "N", 1)
		if newN.Len() == 0 {
			return local
		}
		next := rel.NewRelationSize(DeltaName("N"), 1, newN.Len())
		newN.Each(func(t rel.Tuple) bool {
			if t[0] > 0 {
				next.Add(rel.Tuple{t[0] - 1})
			}
			return true
		})
		if next.Len() > 0 {
			local.SetRelation(next)
		}
		return local
	}
	return DeltaProgram{
		Name: "countdown",
		Inject: func(batch int) []Round {
			return []Round{{
				Name:      roundName("countdown inject", batch),
				Resident:  []string{"N"},
				DeltaRels: []string{DeltaName("N")},
				Route:     ByRelation(map[string]Router{DeltaName("N"): h}),
				Compute:   fold,
			}}
		},
		Step: func(k int) Round {
			return Round{
				Name:      roundName("countdown step", k),
				Resident:  []string{"N"},
				DeltaRels: []string{DeltaName("N")},
				Route:     ByRelation(map[string]Router{DeltaName("N"): h}),
				Compute:   fold,
			}
		},
		Frontier: []string{DeltaName("N")},
	}
}

func roundName(prefix string, k int) string {
	return fmt.Sprintf("%s %d", prefix, k)
}

func naturals(vals ...int) *rel.Instance {
	i := rel.NewInstance()
	for _, v := range vals {
		i.Add(rel.NewFact("N", rel.Value(v)))
	}
	return i
}

func TestRunDeltaReachesFixpoint(t *testing.T) {
	c := NewCluster(4)
	if err := c.RunDelta(countdownProgram(4), naturals(3)); err != nil {
		t.Fatal(err)
	}
	n := c.Output().Relation("N")
	if n == nil || n.Len() != 4 {
		t.Fatalf("closure of {3} = %v, want {0,1,2,3}", c.Output())
	}
	// 1 inject + 3 steps (frontier 2,1,0) drain the countdown.
	if c.Rounds() != 4 {
		t.Fatalf("executed %d rounds, want 4\n%s", c.Rounds(), c.LogicalTrace())
	}
}

func TestApplyUpdateMatchesFromScratch(t *testing.T) {
	inc := NewCluster(4)
	if err := inc.RunDelta(countdownProgram(4), naturals(3)); err != nil {
		t.Fatal(err)
	}
	if err := inc.ApplyUpdate(naturals(6)); err != nil {
		t.Fatal(err)
	}
	if err := inc.ApplyUpdate(naturals(2, 9)); err != nil { // 2 is already closed over
		t.Fatal(err)
	}

	scratch := NewCluster(4)
	if err := scratch.RunDelta(countdownProgram(4), naturals(3, 6, 2, 9)); err != nil {
		t.Fatal(err)
	}
	if got, want := inc.Output().String(), scratch.Output().String(); got != want {
		t.Fatalf("incremental output %s != from-scratch %s", got, want)
	}
	// Per-server resident state must agree too: placement is a pure
	// hash of fact content, independent of batching.
	for s := 0; s < 4; s++ {
		if !inc.Server(s).Equal(scratch.Server(s)) {
			t.Fatalf("server %d state differs: %s vs %s", s, inc.Server(s), scratch.Server(s))
		}
	}
}

func TestApplyUpdateCostScalesWithDelta(t *testing.T) {
	c := NewCluster(4)
	if err := c.RunDelta(countdownProgram(4), naturals(50)); err != nil {
		t.Fatal(err)
	}
	base := c.Rounds()
	// An already-closed fact must cost one inject round shipping one
	// fact and derive nothing, regardless of the 51 resident facts.
	if err := c.ApplyUpdate(naturals(25)); err != nil {
		t.Fatal(err)
	}
	if got := c.Rounds() - base; got != 1 {
		t.Fatalf("no-op update ran %d rounds, want 1", got)
	}
	last := c.LastStats()
	if last.TotalComm != 1 || last.DeltaComm != 1 {
		t.Fatalf("no-op update shipped total=%d delta=%d, want 1/1", last.TotalComm, last.DeltaComm)
	}
}

func TestResidentRelationsBypassCommunication(t *testing.T) {
	c := NewCluster(2)
	c.LoadAt(0, rel.FromFacts(rel.NewFact("R", 1, 2), rel.NewFact("R", 3, 4)))

	// Round 1 has no Resident declaration: R is dropped unless routed.
	// Round 2 declares R resident with no routing at all: the facts
	// must survive with zero communication.
	keepAll := Round{Name: "materialize", Route: Broadcast(2), Compute: func(_ int, local *rel.Instance) *rel.Instance { return local }}
	if _, err := c.RunRound(keepAll); err != nil {
		t.Fatal(err)
	}
	before := c.Server(0).Relation("R")
	st, err := c.RunRound(Round{Name: "carry", Resident: []string{"R"}})
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalComm != 0 || st.MaxLoad != 0 {
		t.Fatalf("resident carry cost total=%d maxload=%d, want 0/0", st.TotalComm, st.MaxLoad)
	}
	after := c.Server(0).Relation("R")
	if after != before {
		t.Fatalf("resident relation was copied, not carried by reference")
	}
	if after.Len() != 2 {
		t.Fatalf("resident relation lost facts: %v", after.Tuples())
	}
}

// The resident skip is by relation name, cluster-wide, and facts keep
// their relation names on the wire, so RunRound can never route facts
// into a resident name through the public API; the adoptResidents
// conflict check is a defensive invariant, exercised here directly.
func TestAdoptResidentsRejectsRoutedConflicts(t *testing.T) {
	c := NewCluster(2)
	c.LoadAt(0, rel.FromFacts(rel.NewFact("R", 1)))
	r := Round{Name: "conflict", Resident: []string{"R"}}

	inboxes := []*rel.Instance{rel.NewInstance(), rel.NewInstance()}
	inboxes[1].Add(rel.NewFact("R", 9))
	if err := c.adoptResidents(r, r.sets(), inboxes); err == nil || !strings.Contains(err.Error(), "resident relation") {
		t.Fatalf("routed conflict not detected: %v", err)
	}

	// Clean inboxes adopt the resident by reference, and only on the
	// servers that actually hold it.
	inboxes = []*rel.Instance{rel.NewInstance(), rel.NewInstance()}
	if err := c.adoptResidents(r, r.sets(), inboxes); err != nil {
		t.Fatal(err)
	}
	if inboxes[0].Relation("R") != c.Server(0).Relation("R") {
		t.Fatal("resident not adopted by reference")
	}
	if inboxes[1].Relation("R") != nil {
		t.Fatal("resident materialized on a server that never had it")
	}
}

func TestDeltaCommCountsOnlyDeltaRelations(t *testing.T) {
	c := NewCluster(2)
	c.LoadAt(0, rel.FromFacts(
		rel.NewFact("ΔE", 1, 2), rel.NewFact("ΔE", 3, 4),
		rel.NewFact("F", 5, 6),
	))
	st, err := c.RunRound(Round{
		Name:      "mixed",
		DeltaRels: []string{"ΔE"},
		Route:     Broadcast(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalComm != 6 || st.DeltaComm != 4 {
		t.Fatalf("total=%d delta=%d, want 6 and 4", st.TotalComm, st.DeltaComm)
	}
	s := st.LogicalString()
	if !strings.Contains(s, "delta communication 4") {
		t.Fatalf("LogicalString misses delta communication: %s", s)
	}
}

func TestLogicalStringUnchangedWithoutDelta(t *testing.T) {
	s := RoundStats{Name: "r", Received: []int{1, 2}, MaxLoad: 2, TotalComm: 3}
	if got := s.LogicalString(); got != "round r: received [1 2], max load 2, total communication 3" {
		t.Fatalf("pre-delta LogicalString changed: %q", got)
	}
	if got := s.String(); strings.Contains(got, "delta") {
		t.Fatalf("pre-delta String mentions delta: %q", got)
	}
}

func TestRestoreDeltaRoundTrip(t *testing.T) {
	straight := NewCluster(4)
	if err := straight.RunDelta(countdownProgram(4), naturals(5)); err != nil {
		t.Fatal(err)
	}
	if err := straight.ApplyUpdate(naturals(8)); err != nil {
		t.Fatal(err)
	}
	if err := straight.ApplyUpdate(naturals(11)); err != nil {
		t.Fatal(err)
	}

	// Same schedule, but checkpointed and restored between batches.
	c := NewCluster(4, WithCheckpoints())
	if err := c.RunDelta(countdownProgram(4), naturals(5)); err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyUpdate(naturals(8)); err != nil {
		t.Fatal(err)
	}
	ck := c.Checkpoint()
	restored, err := RestoreDelta(ck, countdownProgram(4))
	if err != nil {
		t.Fatal(err)
	}
	if restored.DeltaBatches() != 2 {
		t.Fatalf("restored batch counter = %d, want 2", restored.DeltaBatches())
	}
	if err := restored.ApplyUpdate(naturals(11)); err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Output().String(), straight.Output().String(); got != want {
		t.Fatalf("restored output %s != straight-through %s", got, want)
	}
	if got, want := restored.LogicalTrace(), straight.LogicalTrace(); got != want {
		t.Fatalf("restored trace differs:\n%s\nvs\n%s", got, want)
	}
}

func TestRestoreDeltaRejectsMidInjectionCheckpoint(t *testing.T) {
	// A two-round Inject whose second round always fails: the rolling
	// checkpoint then sits between the batch's rounds, which
	// RestoreDelta must refuse.
	prog := DeltaProgram{
		Name: "two-round",
		Inject: func(batch int) []Round {
			ok := Round{Name: roundName("ok", batch), DeltaRels: []string{DeltaName("N")},
				Route: ByRelation(map[string]Router{DeltaName("N"): HashOn(2, []int{0}, 1)}),
				Compute: func(_ int, local *rel.Instance) *rel.Instance {
					local.FoldDelta(DeltaName("N"), "N", 1)
					return local
				}}
			bad := Round{Name: roundName("bad", batch),
				Route: RouterFunc(func(rel.Fact) []int { return []int{99} })}
			return []Round{ok, bad}
		},
	}
	c := NewCluster(2, WithCheckpoints())
	err := c.RunDelta(prog, naturals(1, 2))
	if err == nil {
		t.Fatal("two-round program with a bad route succeeded")
	}
	if uerr := c.ApplyUpdate(naturals(3)); uerr == nil || !strings.Contains(uerr.Error(), "mid-batch") {
		t.Fatalf("broken cluster accepted another update: %v", uerr)
	}
	if _, rerr := RestoreDelta(c.Checkpoint(), prog); rerr == nil || !strings.Contains(rerr.Error(), "mid-injection") {
		t.Fatalf("mid-injection restore not rejected: %v", rerr)
	}
}

func TestRunDeltaRequiresFreshCluster(t *testing.T) {
	c := NewCluster(2)
	if _, err := c.RunRound(Round{Name: "warmup"}); err != nil {
		t.Fatal(err)
	}
	if err := c.RunDelta(countdownProgram(2), naturals(1)); err == nil {
		t.Fatal("RunDelta accepted a cluster with executed rounds")
	}
	c2 := NewCluster(2)
	if err := c2.ApplyUpdate(naturals(1)); err == nil {
		t.Fatal("ApplyUpdate accepted a cluster with no program")
	}
	if err := c2.RunDelta(countdownProgram(2), naturals(1)); err != nil {
		t.Fatal(err)
	}
	if err := c2.RunDelta(countdownProgram(2), naturals(2)); err == nil {
		t.Fatal("second RunDelta accepted")
	}
}
