package mpc

import (
	"strings"
	"testing"

	"mpclogic/internal/rel"
)

// Input-validation coverage: bad cluster parameters must fail with
// deterministic panics or errors, never silent corruption.

func wantPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		rec := recover()
		if rec == nil {
			t.Errorf("no panic, want panic containing %q", substr)
			return
		}
		msg, ok := rec.(string)
		if !ok {
			t.Errorf("panic value %v (%T), want string", rec, rec)
			return
		}
		if !strings.Contains(msg, substr) {
			t.Errorf("panic %q, want substring %q", msg, substr)
		}
	}()
	fn()
}

func TestNewClusterPanicsOnNegative(t *testing.T) {
	wantPanic(t, "needs at least one server", func() { NewCluster(-3) })
}

func TestLoadAtOutOfRangePanics(t *testing.T) {
	d := rel.NewDict()
	c := NewCluster(2)
	inst := rel.MustInstance(d, "R(a,b)")
	wantPanic(t, "LoadAt(2) on a 2-server cluster", func() { c.LoadAt(2, inst) })
	wantPanic(t, "LoadAt(-1) on a 2-server cluster", func() { c.LoadAt(-1, inst) })
	// The failed loads must not have placed anything.
	if c.Server(0).Len() != 0 || c.Server(1).Len() != 0 {
		t.Errorf("out-of-range LoadAt corrupted a server")
	}
}

func TestServerOutOfRangePanics(t *testing.T) {
	c := NewCluster(2)
	wantPanic(t, "Server(5) on a 2-server cluster", func() { c.Server(5) })
}

func TestBroadcastInvalidP(t *testing.T) {
	wantPanic(t, "Broadcast needs at least one server", func() { Broadcast(0) })
}

func TestHashOnInvalidP(t *testing.T) {
	wantPanic(t, "HashOn needs at least one server", func() { HashOn(-1, []int{0}, 0) })
}

// A router built for a LARGER cluster than the one executing the
// round must surface as RunRound's deterministic out-of-range routing
// error, not write past the server slice.
func TestMismatchedRouterSurfacesAsRouteError(t *testing.T) {
	d := rel.NewDict()
	for name, router := range map[string]Router{
		"broadcast": Broadcast(5),
		// Force the big-cluster hash onto a destination the small
		// cluster lacks.
		"hash": RouterFunc(func(f rel.Fact) []int { return []int{4} }),
	} {
		t.Run(name, func(t *testing.T) {
			c := NewCluster(3)
			c.LoadAt(0, rel.MustInstance(d, "R(a,b)"))
			_, err := c.RunRound(Round{Name: "mismatch", Route: router})
			if err == nil || !strings.Contains(err.Error(), "outside [0,3)") {
				t.Fatalf("err = %v, want out-of-range routing error", err)
			}
			if c.Rounds() != 0 || c.Server(0).Len() != 1 {
				t.Errorf("failed round mutated cluster state")
			}
		})
	}
}

func TestNegativeOptionArgumentsPanic(t *testing.T) {
	wantPanic(t, "negative retry budget", func() { WithRetryBudget(-1) })
	wantPanic(t, "negative speculation threshold", func() { WithSpeculation(-2) })
	wantPanic(t, "negative replication factor", func() { WithReplication(-1) })
}
