package mpc

import (
	"fmt"
	"math/rand"
	"sort"
)

// Deterministic fault injection for the synchronous engine. A
// FaultPlan is a pure function of (round, server) / (round, link): it
// names, ahead of time, which computations crash, which network
// transfers are dropped or duplicated, and which servers straggle.
// Faults cost time on a virtual clock (see retryCompletion) — never
// wall time, which mpclint's wallclock-free analyzer bans from
// library code — so a faulty execution is exactly as reproducible as
// a fault-free one.
//
// Fault semantics, fixed here and relied on by recovery.go:
//
//   - Crash(r, s) = n: server s's computation in logical round r fails
//     n times before succeeding. Each failure discards the attempt's
//     state; recovery re-executes from the round's checkpointed input.
//   - Drop(r, src, dst) = n: the transfer src→dst in round r is lost n
//     times before a retransmission gets through. Drops address
//     network links, so they apply only to src ≠ dst transfers that
//     actually carry facts — self-delivery (including Keep facts)
//     never traverses the network.
//   - Dup(r, src, dst) = n: the transfer src→dst arrives n extra
//     times. Deliveries are idempotent set unions, so duplicates cost
//     replica communication but cannot change the merged inbox.
//   - Straggle(r, s) = d: server s's computation in round r takes d
//     extra virtual ticks. Stragglers don't fail — they are slow —
//     so past the speculation threshold a backup copy of the
//     partition races the primary (see recovery.go).
//   - Corrupt(r, src, dst) = n: the transfer src→dst arrives n times
//     with a damaged payload before a clean retransmission gets
//     through. The receiver detects the damage (the TCP transport
//     realizes it as frames failing their CRC; see tcp.go) and
//     discards the frame as line noise, so corruption behaves like a
//     drop on the virtual clock: detected retransmissions, never
//     wrong data.
//
// Faults can also be scheduled for server GROUPS at once — rack-scoped
// power loss (AddGroupCrash) and rack-scoped network partitions
// (AddGroupPartition) — modelling correlated failures, which expand
// into the same per-site crash/drop schedule and therefore thread
// through checkpoint recovery, delta programs, and the frame-level
// chaos tests unchanged.
type FaultPlan struct {
	crash    map[serverKey]int
	drop     map[linkKey]int
	dup      map[linkKey]int
	straggle map[serverKey]int
	corrupt  map[linkKey]int
}

type serverKey struct{ round, server int }

type linkKey struct{ round, src, dst int }

// NewFaultPlan returns an empty plan (injects nothing).
func NewFaultPlan() *FaultPlan {
	return &FaultPlan{
		crash:    map[serverKey]int{},
		drop:     map[linkKey]int{},
		dup:      map[linkKey]int{},
		straggle: map[serverKey]int{},
		corrupt:  map[linkKey]int{},
	}
}

// AddCrash makes server s's computation in round r fail n times.
func (p *FaultPlan) AddCrash(r, s, n int) *FaultPlan {
	p.crash[serverKey{r, s}] += n
	return p
}

// AddDrop makes the transfer src→dst in round r be lost n times.
func (p *FaultPlan) AddDrop(r, src, dst, n int) *FaultPlan {
	p.drop[linkKey{r, src, dst}] += n
	return p
}

// AddDup makes the transfer src→dst in round r arrive n extra times.
func (p *FaultPlan) AddDup(r, src, dst, n int) *FaultPlan {
	p.dup[linkKey{r, src, dst}] += n
	return p
}

// AddStraggle delays server s's computation in round r by d virtual
// ticks.
func (p *FaultPlan) AddStraggle(r, s, d int) *FaultPlan {
	p.straggle[serverKey{r, s}] += d
	return p
}

// AddCorrupt makes the transfer src→dst in round r arrive n times with
// a damaged payload (each detected and retransmitted) before the clean
// copy gets through.
func (p *FaultPlan) AddCorrupt(r, src, dst, n int) *FaultPlan {
	p.corrupt[linkKey{r, src, dst}] += n
	return p
}

// AddGroupCrash makes every server in the group crash n times in round
// r — a rack losing power is one event, not |rack| independent ones.
func (p *FaultPlan) AddGroupCrash(r int, group []int, n int) *FaultPlan {
	for _, s := range group {
		p.AddCrash(r, s, n)
	}
	return p
}

// AddGroupPartition drops, n times, every transfer that crosses the
// boundary between the group and the rest of a total-server cluster in
// round r — a rack-scoped network partition, in both directions. As
// with single-link drops, entries for links that carry no facts are
// inert.
func (p *FaultPlan) AddGroupPartition(r int, group []int, total, n int) *FaultPlan {
	in := make(map[int]bool, len(group))
	for _, s := range group {
		in[s] = true
	}
	for src := 0; src < total; src++ {
		for dst := 0; dst < total; dst++ {
			if src == dst || in[src] == in[dst] {
				continue
			}
			p.AddDrop(r, src, dst, n)
		}
	}
	return p
}

// Rack returns the servers of rack g when p servers are grouped into
// racks of rackSize consecutive indices (the last rack may be short).
func Rack(g, rackSize, p int) []int {
	if rackSize < 1 {
		rackSize = 1
	}
	lo := g * rackSize
	hi := lo + rackSize
	if hi > p {
		hi = p
	}
	var out []int
	for s := lo; s < hi; s++ {
		out = append(out, s)
	}
	return out
}

// Empty reports whether the plan injects any fault at all.
func (p *FaultPlan) Empty() bool {
	if p == nil {
		return true
	}
	return len(p.crash) == 0 && len(p.drop) == 0 && len(p.dup) == 0 &&
		len(p.straggle) == 0 && len(p.corrupt) == 0
}

// String summarizes the plan's fault counts. Corruption sites appear
// only when present, so pre-corruption plan renderings are unchanged.
func (p *FaultPlan) String() string {
	if p.Empty() {
		return "fault plan: none"
	}
	s := fmt.Sprintf("fault plan: crashes=%d drops=%d dups=%d stragglers=%d",
		len(p.crash), len(p.drop), len(p.dup), len(p.straggle))
	if len(p.corrupt) > 0 {
		s += fmt.Sprintf(" corrupted=%d", len(p.corrupt))
	}
	return s
}

// Nil-safe accessors: a nil plan injects nothing, so the recovery
// path can be written without nil checks.

func (p *FaultPlan) crashes(r, s int) int {
	if p == nil {
		return 0
	}
	return p.crash[serverKey{r, s}]
}

func (p *FaultPlan) drops(r, src, dst int) int {
	if p == nil {
		return 0
	}
	return p.drop[linkKey{r, src, dst}]
}

func (p *FaultPlan) dups(r, src, dst int) int {
	if p == nil {
		return 0
	}
	return p.dup[linkKey{r, src, dst}]
}

func (p *FaultPlan) straggles(r, s int) int {
	if p == nil {
		return 0
	}
	return p.straggle[serverKey{r, s}]
}

func (p *FaultPlan) corrupts(r, src, dst int) int {
	if p == nil {
		return 0
	}
	return p.corrupt[linkKey{r, src, dst}]
}

// FaultProfile parameterizes RandomFaultPlan: per-(round, server) and
// per-(round, link) fault probabilities plus severity bounds.
type FaultProfile struct {
	CrashRate    float64 // P[server's compute crashes in a round]
	DropRate     float64 // P[a carrying link's transfer is dropped in a round]
	DupRate      float64 // P[a carrying link's transfer is duplicated in a round]
	StraggleRate float64 // P[a server straggles in a round]
	CorruptRate  float64 // P[a carrying link's transfer arrives damaged in a round]
	MaxRepeat    int     // max crash/drop/corrupt repetitions per fault site (≥1)
	MaxStraggle  int     // max straggler delay in virtual ticks (≥1)
}

// DefaultFaultProfile mixes every fault type at rates that make
// multi-fault rounds common on small clusters while staying within
// the default retry budget (MaxRepeat ≤ DefaultRetryBudget).
func DefaultFaultProfile() FaultProfile {
	return FaultProfile{
		CrashRate:    0.15,
		DropRate:     0.08,
		DupRate:      0.08,
		StraggleRate: 0.20,
		MaxRepeat:    2,
		MaxStraggle:  4,
	}
}

// RandomFaultPlan draws a plan for a rounds × p execution from the
// profile. The draw is a pure function of the seed: fault sites are
// visited in a fixed order (rounds ascending; within a round servers
// ascending, then links in (src, dst) ascending order) and every site
// consumes the same number of random variates whether or not it
// faults, so plans are stable under seed reuse.
func RandomFaultPlan(seed int64, rounds, p int, prof FaultProfile) *FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	if prof.MaxRepeat < 1 {
		prof.MaxRepeat = 1
	}
	if prof.MaxStraggle < 1 {
		prof.MaxStraggle = 1
	}
	plan := NewFaultPlan()
	for r := 0; r < rounds; r++ {
		for s := 0; s < p; s++ {
			if rng.Float64() < prof.CrashRate {
				plan.AddCrash(r, s, 1+rng.Intn(prof.MaxRepeat))
			}
			if rng.Float64() < prof.StraggleRate {
				plan.AddStraggle(r, s, 1+rng.Intn(prof.MaxStraggle))
			}
		}
		for src := 0; src < p; src++ {
			for dst := 0; dst < p; dst++ {
				if src == dst {
					continue
				}
				if rng.Float64() < prof.DropRate {
					plan.AddDrop(r, src, dst, 1+rng.Intn(prof.MaxRepeat))
				}
				if rng.Float64() < prof.DupRate {
					plan.AddDup(r, src, dst, 1+rng.Intn(prof.MaxRepeat))
				}
			}
		}
	}
	if prof.CorruptRate > 0 {
		// Corruption draws live in their own trailing pass over all
		// rounds, after every pre-existing fault kind has consumed its
		// variates — so a profile that gains a CorruptRate still lands
		// its crashes/drops/dups/stragglers exactly where it always
		// did, and corruption-free profiles are bit-identical to the
		// pre-corruption implementation.
		for r := 0; r < rounds; r++ {
			for src := 0; src < p; src++ {
				for dst := 0; dst < p; dst++ {
					if src == dst {
						continue
					}
					if rng.Float64() < prof.CorruptRate {
						plan.AddCorrupt(r, src, dst, 1+rng.Intn(prof.MaxRepeat))
					}
				}
			}
		}
	}
	return plan
}

// CorrelatedProfile parameterizes RandomCorrelatedFaultPlan: per-
// (round, rack) probabilities of rack-scoped events.
type CorrelatedProfile struct {
	RackCrashRate     float64 // P[a rack loses power in a round]
	RackPartitionRate float64 // P[a rack is partitioned off in a round]
	MaxRepeat         int     // max repetitions per event (≥1)
}

// RandomCorrelatedFaultPlan draws rack-scoped correlated failures for a
// rounds × p execution with racks of rackSize consecutive servers. The
// draw is a pure function of the seed: sites are visited in fixed order
// (rounds ascending, racks ascending, {crash draw, partition draw} per
// rack) and every site consumes the same number of variates whether or
// not it faults.
func RandomCorrelatedFaultPlan(seed int64, rounds, p, rackSize int, prof CorrelatedProfile) *FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	if prof.MaxRepeat < 1 {
		prof.MaxRepeat = 1
	}
	if rackSize < 1 {
		rackSize = 1
	}
	racks := (p + rackSize - 1) / rackSize
	plan := NewFaultPlan()
	for r := 0; r < rounds; r++ {
		for g := 0; g < racks; g++ {
			if rng.Float64() < prof.RackCrashRate {
				plan.AddGroupCrash(r, Rack(g, rackSize, p), 1+rng.Intn(prof.MaxRepeat))
			}
			if rng.Float64() < prof.RackPartitionRate {
				plan.AddGroupPartition(r, Rack(g, rackSize, p), p, 1+rng.Intn(prof.MaxRepeat))
			}
		}
	}
	return plan
}

// NamedFaultPlan labels a plan for matrix experiments and reports.
type NamedFaultPlan struct {
	Name string
	Plan *FaultPlan
}

// StandardFaultMatrix is the seeded fault matrix the fault-transparency
// invariant is checked against: thirteen plans covering each fault type
// in isolation (crash, drop, dup, straggle, corrupt), pairwise mixes,
// the default and a heavier random mix, one handcrafted adversary that
// hits round 0 (the round whose loss discards the most downstream work)
// with a crash and a drop at once, and three correlated-failure plans
// (random rack crashes, random rack partitions, and a handcrafted rack
// adversary that powers off one rack while partitioning another in
// round 0). Partition plans draw single-repeat events because two
// overlapping rack partitions already dump their drops on the same
// boundary links, and the sum must stay within the retry budget.
// Sub-seeds are fixed offsets of the caller's seed so the matrix is
// reproducible as a unit; new plans are appended at the end so
// short-mode prefixes of the matrix stay stable.
func StandardFaultMatrix(seed int64, rounds, p int) []NamedFaultPlan {
	only := func(f FaultProfile, keep string) FaultProfile {
		g := FaultProfile{MaxRepeat: f.MaxRepeat, MaxStraggle: f.MaxStraggle}
		switch keep {
		case "crash":
			g.CrashRate = 0.35
		case "drop":
			g.DropRate = 0.25
		case "dup":
			g.DupRate = 0.25
		case "straggle":
			g.StraggleRate = 0.45
		}
		return g
	}
	def := DefaultFaultProfile()
	heavy := FaultProfile{CrashRate: 0.30, DropRate: 0.15, DupRate: 0.15, StraggleRate: 0.35, MaxRepeat: 3, MaxStraggle: 6}
	adversary := NewFaultPlan().
		AddCrash(0, 0, 2).
		AddDrop(0, p-1, 0, 2).
		AddStraggle(0, p/2, 5)
	matrix := []NamedFaultPlan{
		{"crash-only", RandomFaultPlan(seed+1, rounds, p, only(def, "crash"))},
		{"drop-only", RandomFaultPlan(seed+2, rounds, p, only(def, "drop"))},
		{"dup-only", RandomFaultPlan(seed+3, rounds, p, only(def, "dup"))},
		{"straggle-only", RandomFaultPlan(seed+4, rounds, p, only(def, "straggle"))},
		{"crash+drop", RandomFaultPlan(seed+5, rounds, p, FaultProfile{CrashRate: 0.2, DropRate: 0.2, MaxRepeat: 2, MaxStraggle: 1})},
		{"dup+straggle", RandomFaultPlan(seed+6, rounds, p, FaultProfile{DupRate: 0.2, StraggleRate: 0.3, MaxRepeat: 2, MaxStraggle: 4})},
		{"mixed-default", RandomFaultPlan(seed+7, rounds, p, def)},
		{"mixed-heavy", RandomFaultPlan(seed+8, rounds, p, heavy)},
		{"adversary-round0", adversary},
	}
	rack := p / 4
	if rack < 2 {
		rack = 2
	}
	racks := (p + rack - 1) / rack
	rackAdversary := NewFaultPlan().
		AddGroupCrash(0, Rack(0, rack, p), 2).
		AddGroupPartition(0, Rack(racks-1, rack, p), p, 1).
		AddStraggle(0, p/2, 4)
	matrix = append(matrix,
		NamedFaultPlan{"corrupt-only", RandomFaultPlan(seed+9, rounds, p,
			FaultProfile{CorruptRate: 0.25, MaxRepeat: 2, MaxStraggle: 1})},
		NamedFaultPlan{"rack-crash", RandomCorrelatedFaultPlan(seed+10, rounds, p, rack,
			CorrelatedProfile{RackCrashRate: 0.25, MaxRepeat: 2})},
		NamedFaultPlan{"rack-partition", RandomCorrelatedFaultPlan(seed+11, rounds, p, rack,
			CorrelatedProfile{RackPartitionRate: 0.20, MaxRepeat: 1})},
		NamedFaultPlan{"rack-adversary", rackAdversary},
	)
	return matrix
}

// carryingLinks lists the src ≠ dst links of a routed round that carry
// at least one fact, in ascending (src, dst) order — the sites drop
// and duplication faults can hit. With one shard per source (the
// fault-tolerant path routes at chunk 1), shards[src].Sent[dst] is
// exactly the src→dst transfer size.
func carryingLinks(shards []Shard) []linkKey {
	var links []linkKey
	for src := range shards {
		for dst, n := range shards[src].Sent {
			if src != dst && n > 0 {
				links = append(links, linkKey{src: src, dst: dst})
			}
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].src != links[j].src {
			return links[i].src < links[j].src
		}
		return links[i].dst < links[j].dst
	})
	return links
}

// retryCompletion is the virtual-clock completion tick of an operation
// that fails `failures` times and then succeeds, where the fault-free
// operation costs `cost` ticks. Attempt k (0-based) launches after
// the previous attempt's failure is detected — one tick after its
// launch — plus an exponential backoff of 2^(k-1) ticks, so the final
// launch happens at tick failures + (2^failures - 1) and completion is
// that plus cost. With failures = 0 this degenerates to cost: the
// fault-free round completes at tick 1 per phase.
func retryCompletion(failures, cost int) int {
	return failures + (1 << failures) - 1 + cost
}
