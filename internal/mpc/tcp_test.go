package mpc

import (
	"bytes"
	"strings"
	"testing"

	"mpclogic/internal/rel"
)

func testFrame() Frame {
	d := rel.NewDict()
	out := rel.MustInstance(d, "R(a,b)", "R(c,d)", "S(x,y,z)")
	return Frame{
		Seq:     7,
		Shard:   2,
		Dst:     1,
		Sent:    3,
		Payload: rel.EncodeInstance(out),
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := testFrame()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != f.Seq || got.Shard != f.Shard || got.Dst != f.Dst || got.Sent != f.Sent {
		t.Errorf("header fields diverged: %+v vs %+v", got, f)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("payload diverged over the wire")
	}
}

// TestFrameRejectsEveryBitFlip: flipping ANY single bit of a frame's
// wire image must make ReadFrame fail — magic and version flips fail
// structurally, everything else fails the CRC-32C, which detects all
// burst errors up to 32 bits. No flip may panic or be silently
// accepted.
func TestFrameRejectsEveryBitFlip(t *testing.T) {
	img := encodeFrame(testFrame())
	for pos := range img {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), img...)
			mut[pos] ^= 1 << bit
			if _, err := ReadFrame(bytes.NewReader(mut)); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", pos, bit)
			}
		}
	}
}

func TestFrameChecksumErrorIsNamed(t *testing.T) {
	img := encodeFrame(testFrame())
	img[len(img)-1] ^= 0x01 // last payload byte: structural parse succeeds, CRC must not
	_, err := ReadFrame(bytes.NewReader(img))
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("want checksum error, got %v", err)
	}
}

// TestTCPExchangeAbsorbsCorruptFrames: armed corruption havoc ships
// bit-flipped frames ahead of the clean one; the receiver's checksum
// rejects them and the exchange still delivers the exact outbox.
func TestTCPExchangeAbsorbsCorruptFrames(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	d := rel.NewDict()
	out := rel.MustInstance(d, "R(a,b)", "R(c,d)")
	shards := make([]Shard, 2)
	for w := range shards {
		shards[w].Outs = make([]*rel.Instance, 2)
		shards[w].Sent = make([]int, 2)
	}
	shards[0].Outs[1] = out
	shards[0].Sent[1] = out.Len()

	plan := NewFaultPlan().AddCorrupt(0, 0, 1, 3).AddDrop(0, 0, 1, 2)
	tr.InjectFrameFaults(0, plan)
	inboxes, received, err := tr.Exchange("corrupt", 2, shards)
	if err != nil {
		t.Fatalf("exchange under corruption havoc: %v", err)
	}
	if received[1] != out.Len() {
		t.Errorf("received[1] = %d, want %d", received[1], out.Len())
	}
	if !inboxes[1].Equal(out) {
		t.Errorf("inbox diverged under corruption havoc:\n got %s\nwant %s", inboxes[1], out)
	}
	if inboxes[0].Len() != 0 {
		t.Errorf("server 0 received phantom facts: %s", inboxes[0])
	}
}
