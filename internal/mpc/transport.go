package mpc

import (
	"fmt"
	"sync"

	"mpclogic/internal/rel"
)

// Transport moves a round's routed communication shards to their
// destination servers and hands back each destination's merged inbox.
// It is the seam between the simulator and a real network: the routing
// phase (which facts go where, and what they cost) and the computation
// phase are transport-independent, while HOW the per-destination
// outboxes travel — an in-process slice adoption, length-prefixed
// frames over TCP sockets, or anything future — is the transport's
// whole concern.
//
// The contract every implementation must honor, and the conformance
// suite (internal/mpc/transportconf) checks:
//
//   - Delivery: inbox dst holds exactly the union over all shards of
//     Outs[dst], and received[dst] = Σ_w shards[w].Sent[dst].
//   - Deterministic merge: shards are merged into an inbox in
//     ascending shard order — position, never arrival order — so two
//     runs of the same exchange are byte-identical downstream no
//     matter how the wire reorders frames.
//   - Error atomicity: on a non-nil error no partial results are
//     visible to the caller; RunRound turns that into its
//     atomic-on-failure guarantee.
//   - No logical cost distortion: a transport may retransmit or
//     duplicate physically, but the returned received counts are the
//     logical ones computed from the shards' Sent counters.
//
// Exchange is called sequentially by a cluster (never concurrently on
// one transport value), with p fixed across a cluster's lifetime.
type Transport interface {
	// Name labels the transport in errors, traces, and docs.
	Name() string
	// Exchange delivers one round's shards and returns the merged
	// per-destination inboxes and logical received counts.
	Exchange(round string, p int, shards []Shard) (inboxes []*rel.Instance, received []int, err error)
	// Close releases transport resources (listeners, connections).
	// A closed transport may not Exchange again.
	Close() error
}

// FrameFaultInjector is the optional transport extension the
// fault-tolerance layer uses to realize a FaultPlan's drop,
// duplication, and corruption schedule PHYSICALLY at the frame layer:
// a drop becomes an aborted connection (a truncated frame or an RST)
// followed by a retransmission, a dup an extra identical frame the
// receiver's idempotent merge discards, a corruption a bit-flipped
// frame the receiver's checksum rejects before a clean retransmission.
// The fault-tolerant path routes one shard per source (chunk 1), so
// the (shard, dst) frame coordinates coincide with the plan's
// (src, dst) links. Logical accounting of the same faults stays in
// recovery.go on the virtual clock; the injection only proves the
// wire path really absorbs the havoc.
type FrameFaultInjector interface {
	// InjectFrameFaults arms the transport's next Exchange with the
	// plan's drops/dups/corruptions for absolute round index round.
	// A nil plan disarms.
	InjectFrameFaults(round int, plan *FaultPlan)
}

// WithTransport installs the transport the cluster's communication
// phases run over. The default is the in-process Local transport; the
// caller keeps ownership of the transport and closes it after the
// cluster is done.
func WithTransport(t Transport) Option {
	return func(c *Cluster) { c.tr = t }
}

// Transport returns the cluster's transport (the Local transport when
// none was installed).
func (c *Cluster) Transport() Transport {
	if c.tr == nil {
		return NewLocalTransport()
	}
	return c.tr
}

// localTransport is the in-process transport: shards are merged by
// direct slice adoption, no copies, no wire. It is the bit-compatible
// extraction of the pre-transport merge phase — the golden determinism
// traces pin that.
type localTransport struct{}

// NewLocalTransport returns the in-process transport.
func NewLocalTransport() Transport { return localTransport{} }

func (localTransport) Name() string { return "local" }

func (localTransport) Exchange(round string, p int, shards []Shard) ([]*rel.Instance, []int, error) {
	return mergeShards(round, p, shards)
}

func (localTransport) Close() error { return nil }

// mergeShards merges shards into per-destination inboxes, one goroutine
// per destination, each visiting shards in ascending order. Every
// worker writes only its own index of inboxes/received/mergeErrs, and
// the (dst, shard) merge order is fixed, so the resulting inboxes and
// load accounting are byte-identical to a sequential merge. This is
// both the Local transport's Exchange and the reference merge every
// other transport must reproduce.
func mergeShards(round string, p int, shards []Shard) ([]*rel.Instance, []int, error) {
	inboxes := make([]*rel.Instance, p)
	received := make([]int, p)
	mergeErrs := make([]error, p)
	var mergeWG sync.WaitGroup
	for dst := 0; dst < p; dst++ {
		mergeWG.Add(1)
		go func(dst int) {
			defer mergeWG.Done()
			defer func() {
				if rec := recover(); rec != nil {
					mergeErrs[dst] = fmt.Errorf("mpc: server %d inbox merge panicked in round %q: %v", dst, round, rec)
				}
			}()
			var inbox *rel.Instance
			n := 0
			for w := range shards {
				n += shards[w].Sent[dst]
				out := shards[w].Outs[dst]
				if out == nil {
					continue
				}
				if inbox == nil {
					// Shards are round-private: adopt the first outbox
					// instead of copying it.
					inbox = out
					continue
				}
				for _, name := range out.RelationNames() {
					o := out.Relation(name)
					inbox.EnsureRelationSize(name, o.Arity, o.Len()).UnionWith(o)
				}
			}
			if inbox == nil {
				inbox = rel.NewInstance()
			}
			inboxes[dst] = inbox
			received[dst] = n
		}(dst)
	}
	mergeWG.Wait()
	for _, err := range mergeErrs {
		if err != nil {
			return nil, nil, err
		}
	}
	return inboxes, received, nil
}

// RouteSource runs one source server's communication phase standalone:
// it routes local's facts for round r on a p-server deployment and
// returns the resulting shard. The error semantics are identical to a
// cluster's routing phase — Less-minimal out-of-range fact, recovered
// Router/Keep panics — which is what lets a remote worker process
// reproduce, byte for byte, the routing decisions the simulator makes
// for its server index.
func RouteSource(r Round, p, src int, local *rel.Instance) (sh Shard, err error) {
	if p <= 0 {
		return Shard{}, fmt.Errorf("mpc: RouteSource needs at least one server (got p=%d)", p)
	}
	if src < 0 || src >= p {
		return Shard{}, fmt.Errorf("mpc: RouteSource(%d) on a %d-server deployment", src, p)
	}
	sh.Outs = make([]*rel.Instance, p)
	sh.Sent = make([]int, p)
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("mpc: server %d communication phase panicked in round %q: %v", src, r.Name, rec)
		}
	}()
	if rerr := routeServer(r, r.sets(), p, src, local, &sh); rerr != nil {
		return Shard{}, rerr
	}
	return sh, nil
}
