package mpc

import (
	"fmt"

	"mpclogic/internal/rel"
)

// Incremental view maintenance: a DeltaProgram is the semi-naive,
// update-driven form of a multi-round MPC program. Instead of a fixed
// round list that re-ships full relations, the program describes how
// one BATCH of added facts is absorbed (Inject) and how the recursive
// frontier is driven to a fixpoint (Step). The very first batch is the
// base instance itself, so "run from scratch" and "apply an update"
// are the same code path — which is what makes the byte-identity
// acceptance invariant (incremental output == from-scratch output on
// the final input) testable round-for-round.
//
// The Δ lattice is insertion-only: updates add facts, folds are
// monotone set unions, and fixpoints are reached when every frontier
// relation is empty cluster-wide. Deletions would need support
// counting and are out of scope.

// DeltaName returns the on-the-wire relation name of the Δ fragment of
// a relation: update batches are loaded under these names so Inject
// rounds can route only the new facts while the resident full copies
// stay put.
func DeltaName(name string) string { return "Δ" + name }

// DeltaProgram describes an incrementally maintainable view as pure
// data (closures over sizes and seeds only), so a program value can be
// re-instantiated against a restored checkpoint (RestoreDelta).
type DeltaProgram struct {
	// Name identifies the program in errors.
	Name string

	// Inject returns the rounds that absorb one update batch: they
	// route the Δ-named fragments (loaded by ApplyUpdate), fold them
	// into the resident relations, and derive the initial frontier.
	// batch is the zero-based update batch number (0 = the base load);
	// it must appear in the round names so histories stay resumable.
	Inject func(batch int) []Round

	// Step returns the k-th fixpoint round, k counting monotonically
	// across all batches (again: names must embed k). Nil for
	// non-recursive views.
	Step func(k int) Round

	// Frontier lists the relation names whose cluster-wide emptiness
	// is the fixpoint condition after an Inject; an empty list means
	// the view needs no Step loop.
	Frontier []string
}

// deltaState is a cluster's installed delta program plus the counters
// that make its round history reproducible: how many update batches
// were fully injected and how many fixpoint steps have run.
type deltaState struct {
	prog    DeltaProgram
	batches int
	steps   int
	broken  bool // a round failed mid-batch; see ApplyUpdate
}

// RunDelta installs prog on a fresh cluster and computes the view from
// scratch by applying the base instance as update batch 0. Further
// calls to ApplyUpdate maintain the view incrementally.
func (c *Cluster) RunDelta(prog DeltaProgram, base *rel.Instance) error {
	if c.delta != nil {
		return fmt.Errorf("mpc: cluster already maintains delta program %q", c.delta.prog.Name)
	}
	if len(c.stats) != 0 {
		return fmt.Errorf("mpc: delta program %q must start on a cluster with no executed rounds (have %d)",
			prog.Name, len(c.stats))
	}
	if prog.Inject == nil {
		return fmt.Errorf("mpc: delta program %q has no Inject", prog.Name)
	}
	c.delta = &deltaState{prog: prog}
	return c.ApplyUpdate(base)
}

// ApplyUpdate incrementally folds a batch of added facts into the
// maintained view: the adds are spread round-robin under their Δ names
// (mirroring LoadRoundRobin; placement is not communication), the
// program's Inject rounds ship and fold exactly those fragments, and
// Step rounds run until the frontier is empty cluster-wide. Cost
// therefore scales with the size of the update's consequences, not
// with the resident state.
//
// ApplyUpdate is not atomic: a failing round (e.g. an exhausted fault
// retry budget) leaves the cluster mid-batch, marks maintenance
// broken, and further updates are refused. Recovery is RestoreDelta
// from the last checkpoint — with checkpoints enabled the rolling
// post-round snapshot is always at a consistent boundary.
func (c *Cluster) ApplyUpdate(adds *rel.Instance) error {
	ds := c.delta
	if ds == nil {
		return fmt.Errorf("mpc: ApplyUpdate on a cluster with no delta program (see RunDelta)")
	}
	if ds.broken {
		return fmt.Errorf("mpc: delta program %q is mid-batch after a failed round; restore from a checkpoint (RestoreDelta)", ds.prog.Name)
	}
	c.loadDelta(adds)
	for _, r := range ds.prog.Inject(ds.batches) {
		if _, err := c.RunRound(r); err != nil {
			ds.broken = true
			return err
		}
	}
	ds.batches++
	return c.fixpoint()
}

// DeltaBatches returns how many update batches (including the base
// load) have been fully injected, and DeltaSteps how many fixpoint
// rounds have run; both are 0 when no delta program is installed.
func (c *Cluster) DeltaBatches() int {
	if c.delta == nil {
		return 0
	}
	return c.delta.batches
}

// DeltaSteps returns the global fixpoint-step counter of the installed
// delta program.
func (c *Cluster) DeltaSteps() int {
	if c.delta == nil {
		return 0
	}
	return c.delta.steps
}

// loadDelta spreads adds round-robin across servers under Δ names.
func (c *Cluster) loadDelta(adds *rel.Instance) {
	if adds == nil {
		return
	}
	k := 0
	adds.Each(func(f rel.Fact) bool {
		c.servers[k%c.p].Add(rel.Fact{Rel: DeltaName(f.Rel), Tuple: f.Tuple})
		k++
		return true
	})
}

// frontierEmpty reports whether every frontier relation is empty on
// every server — the fixpoint condition.
func (c *Cluster) frontierEmpty(frontier []string) bool {
	for _, name := range frontier {
		for _, srv := range c.servers {
			if r := srv.Relation(name); r != nil && r.Len() > 0 {
				return false
			}
		}
	}
	return true
}

// fixpoint drives Step rounds until the frontier drains.
func (c *Cluster) fixpoint() error {
	ds := c.delta
	for !c.frontierEmpty(ds.prog.Frontier) {
		if ds.prog.Step == nil {
			ds.broken = true
			return fmt.Errorf("mpc: delta program %q has a nonempty frontier but no Step", ds.prog.Name)
		}
		if _, err := c.RunRound(ds.prog.Step(ds.steps)); err != nil {
			ds.broken = true
			return err
		}
		ds.steps++
	}
	return nil
}

// expectedDeltaRounds recomputes how many rounds a history with the
// given counters must contain: every fully-injected batch's Inject
// rounds plus the executed fixpoint steps.
func expectedDeltaRounds(prog DeltaProgram, batches, steps int) int {
	n := steps
	for b := 0; b < batches; b++ {
		n += len(prog.Inject(b))
	}
	return n
}

// RestoreDelta re-enters a delta program from a checkpoint: the
// cluster state and stats history come from Restore, the batch/step
// counters were recorded when the checkpoint was cut, and prog must be
// the same program value the history was produced by (programs are
// pure data, so re-instantiating with the same parameters suffices).
// An interrupted fixpoint is finished before RestoreDelta returns, so
// the result is always at a batch boundary, ready for ApplyUpdate.
//
// A checkpoint cut mid-injection of a multi-round Inject cannot be
// re-entered (the Δ placement between its rounds is not recorded);
// this is detected by round counting and reported as an error.
func RestoreDelta(ck *Checkpoint, prog DeltaProgram, opts ...Option) (*Cluster, error) {
	if want, have := expectedDeltaRounds(prog, ck.batches, ck.steps), ck.Rounds(); want != have {
		return nil, fmt.Errorf(
			"mpc: checkpoint of delta program %q holds %d rounds mid-injection (batch boundary needs %d); re-apply the batch from the previous checkpoint",
			prog.Name, have, want)
	}
	c := Restore(ck, opts...)
	c.delta = &deltaState{prog: prog, batches: ck.batches, steps: ck.steps}
	if err := c.fixpoint(); err != nil {
		return c, err
	}
	return c, nil
}
