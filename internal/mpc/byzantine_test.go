package mpc

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"mpclogic/internal/rel"
)

// byzProgram is a two-round hash-routed program with enough facts that
// every server routes cross-network traffic in round 0.
func byzProgram(p int) (load *rel.Instance, rounds []Round) {
	d := rel.NewDict()
	load = rel.NewInstance()
	for _, s := range []string{
		"R(a,b)", "R(b,c)", "R(c,d)", "R(d,e)", "R(e,f)", "R(f,g)",
		"S(a,x)", "S(b,y)", "S(c,z)", "S(d,w)", "S(e,v)", "S(f,u)",
	} {
		load.AddAll(rel.MustInstance(d, s))
	}
	rounds = []Round{
		{Name: "hash0", Route: HashOn(p, []int{0}, 7)},
		{Name: "hash1", Route: HashOn(p, []int{1}, 11)},
	}
	return load, rounds
}

// runByz executes the program fault-free and under the given plan,
// returning (baseline output, baseline trace, faulty cluster, error).
func runByz(t *testing.T, p int, plan *ByzantinePlan) (string, string, *Cluster, error) {
	t.Helper()
	load, rounds := byzProgram(p)

	base := NewCluster(p)
	base.LoadRoundRobin(load)
	if err := base.Run(rounds...); err != nil {
		t.Fatalf("fault-free run failed: %v", err)
	}

	faulty := NewCluster(p, WithByzantinePlan(plan))
	faulty.LoadRoundRobin(load)
	err := faulty.Run(rounds...)
	return base.Output().String(), base.LogicalTrace(), faulty, err
}

func TestByzantineTransientQuarantine(t *testing.T) {
	for _, kind := range []ByzKind{Misroute, Forge, Omit} {
		t.Run(kind.String(), func(t *testing.T) {
			plan := NewByzantinePlan().
				Add(ByzantineEvent{Round: 0, Src: 1, Kind: kind, Count: 2, Seed: 101})
			out, trace, faulty, err := runByz(t, 4, plan)
			if err != nil {
				t.Fatalf("transient %s not recovered: %v", kind, err)
			}
			if got := faulty.Output().String(); got != out {
				t.Errorf("output diverged under transient %s:\n got %s\nwant %s", kind, got, out)
			}
			if got := faulty.LogicalTrace(); got != trace {
				t.Errorf("logical trace diverged under transient %s:\n got %q\nwant %q", kind, got, trace)
			}
			tot := faulty.RecoveryTotals()
			if tot.Quarantined == 0 || tot.Retries == 0 || tot.ReplicaComm == 0 {
				t.Errorf("audit did not fire for %s: %+v", kind, tot)
			}
			// The quarantine shows up in the human-readable stats but
			// never in the logical ones.
			if !strings.Contains(faulty.Stats()[0].String(), "quarantined 1") {
				t.Errorf("stats missing quarantine: %s", faulty.Stats()[0])
			}
			if strings.Contains(faulty.Stats()[0].LogicalString(), "quarantined") {
				t.Errorf("logical stats leaked recovery detail: %s", faulty.Stats()[0].LogicalString())
			}
		})
	}
}

func TestByzantinePersistentMisrouteFailsTyped(t *testing.T) {
	plan := NewByzantinePlan().
		Add(ByzantineEvent{Round: 0, Src: 1, Kind: Misroute, Count: 1, Seed: 33, Persistent: true})
	_, _, faulty, err := runByz(t, 4, plan)
	var rie *RoutingIntegrityError
	if !errors.As(err, &rie) {
		t.Fatalf("want RoutingIntegrityError, got %v", err)
	}
	if rie.Accused != 1 || rie.Kind != Misroute || rie.Round != 0 {
		t.Errorf("wrong accusation: %+v", rie)
	}
	// The witness is a real fact of the accused server, shipped to a
	// destination the router never named.
	if !faulty.Server(1).Contains(rie.Witness) {
		t.Errorf("witness %v is not held by the accused server", rie.Witness)
	}
	// Atomicity: the failed round left no state or stats behind.
	if faulty.Rounds() != 0 {
		t.Errorf("failed round recorded stats")
	}
	if !strings.Contains(err.Error(), "routing integrity violation") ||
		!strings.Contains(err.Error(), "misrouted") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestByzantinePersistentForgeFailsTyped(t *testing.T) {
	plan := NewByzantinePlan().
		Add(ByzantineEvent{Round: 0, Src: 0, Kind: Forge, Count: 2, Seed: 55, Persistent: true})
	_, _, faulty, err := runByz(t, 4, plan)
	var rie *RoutingIntegrityError
	if !errors.As(err, &rie) {
		t.Fatalf("want RoutingIntegrityError, got %v", err)
	}
	if rie.Accused != 0 || rie.Kind != Forge {
		t.Errorf("wrong accusation: %+v", rie)
	}
	if faulty.Server(0).Contains(rie.Witness) {
		t.Errorf("forged witness %v exists on the accused server", rie.Witness)
	}
}

// TestByzantineWitnessIsMinimal: the reported witness must be the
// Fact.Less-minimal illegally placed fact, independent of how many
// facts were corrupted.
func TestByzantineWitnessIsMinimal(t *testing.T) {
	plan := NewByzantinePlan().
		Add(ByzantineEvent{Round: 0, Src: 1, Kind: Misroute, Count: 3, Seed: 77, Persistent: true})
	_, _, _, err := runByz(t, 4, plan)
	var rie *RoutingIntegrityError
	if !errors.As(err, &rie) {
		t.Fatalf("want RoutingIntegrityError, got %v", err)
	}
	// Re-derive the corrupted shard and check no illegal delivery is
	// smaller than the reported witness.
	load, rounds := byzProgram(4)
	c := NewCluster(4)
	c.LoadRoundRobin(load)
	sh, rerr := RouteSource(rounds[0], 4, 1, c.Server(1))
	if rerr != nil {
		t.Fatal(rerr)
	}
	applyByzEvent(rounds[0], 4, 1, &sh, ByzantineEvent{Round: 0, Src: 1, Kind: Misroute, Count: 3, Seed: 77, Persistent: true}, c.Server(1))
	w, _, found := scanShard(rounds[0], 4, 1, &sh)
	if !found {
		t.Fatal("no witness in re-derived corrupted shard")
	}
	if !w.Equal(rie.Witness) {
		t.Errorf("reported witness %v, minimal witness %v", rie.Witness, w)
	}
}

func TestByzantineMatrixInPackage(t *testing.T) {
	p := 4
	load, rounds := byzProgram(p)
	base := NewCluster(p)
	base.LoadRoundRobin(load)
	if err := base.Run(rounds...); err != nil {
		t.Fatal(err)
	}
	out, trace := base.Output().String(), base.LogicalTrace()

	for _, np := range ByzantineFaultMatrix(900, len(rounds), p) {
		t.Run(np.Name, func(t *testing.T) {
			c := NewCluster(p, WithByzantinePlan(np.Plan))
			c.LoadRoundRobin(load)
			err := c.Run(rounds...)
			if np.Recoverable {
				if err != nil {
					t.Fatalf("recoverable plan failed: %v", err)
				}
				if c.Output().String() != out || c.LogicalTrace() != trace {
					t.Errorf("recoverable plan diverged from fault-free run")
				}
				if c.RecoveryTotals().Quarantined == 0 {
					t.Errorf("recoverable plan fired no quarantine (vacuous)")
				}
			} else {
				var rie *RoutingIntegrityError
				if !errors.As(err, &rie) {
					t.Fatalf("unrecoverable plan: want RoutingIntegrityError, got %v", err)
				}
			}
		})
	}
}

// twoFacedRouter misroutes its first call and answers honestly on
// every re-ask — the receiver-side verification's re-question must
// catch the disagreement even though routing itself "succeeded".
type twoFacedRouter struct {
	p     int
	calls atomic.Int64
}

func (r *twoFacedRouter) Route(f rel.Fact) []int {
	honest := int(f.Tuple.Hash() % uint64(r.p))
	if r.calls.Add(1) == 1 {
		return []int{(honest + 1) % r.p}
	}
	return []int{honest}
}

func TestRoutingVerificationCatchesTwoFacedRouter(t *testing.T) {
	d := rel.NewDict()
	load := rel.MustInstance(d, "R(a,b)", "R(b,c)", "R(c,d)", "R(d,e)")
	c := NewCluster(2, WithRoutingVerification(1))
	c.LoadRoundRobin(load)
	_, err := c.RunRound(Round{Name: "lie", Route: &twoFacedRouter{p: 2}})
	var rie *RoutingIntegrityError
	if !errors.As(err, &rie) {
		t.Fatalf("want RoutingIntegrityError, got %v", err)
	}
	if c.Rounds() != 0 {
		t.Errorf("failed round recorded stats")
	}
}

// TestRoutingVerificationFaultFreeIdentical: with verification enabled
// on an honest cluster, outputs and traces are byte-identical to the
// unverified run on both execution paths.
func TestRoutingVerificationFaultFreeIdentical(t *testing.T) {
	for _, every := range []int{1, 3} {
		load, rounds := byzProgram(5)
		plain := NewCluster(5)
		plain.LoadRoundRobin(load)
		if err := plain.Run(rounds...); err != nil {
			t.Fatal(err)
		}
		verified := NewCluster(5, WithRoutingVerification(every))
		verified.LoadRoundRobin(load)
		if err := verified.Run(rounds...); err != nil {
			t.Fatalf("verification rejected an honest run (stride %d): %v", every, err)
		}
		if verified.Output().String() != plain.Output().String() ||
			verified.LogicalTrace() != plain.LogicalTrace() {
			t.Errorf("verification changed an honest run (stride %d)", every)
		}

		verifiedFT := NewCluster(5, WithRoutingVerification(every), WithCheckpoints())
		verifiedFT.LoadRoundRobin(load)
		if err := verifiedFT.Run(rounds...); err != nil {
			t.Fatalf("FT-path verification rejected an honest run: %v", err)
		}
		if verifiedFT.LogicalTrace() != plain.LogicalTrace() {
			t.Errorf("FT-path verification changed an honest run")
		}
	}
}

// TestByzantineWithKeepRound: legality must treat Keep facts as legal
// only at their own source, and quarantine must restore them.
func TestByzantineWithKeepRound(t *testing.T) {
	d := rel.NewDict()
	load := rel.MustInstance(d, "R(a,b)", "R(b,c)", "S(a,x)", "S(b,y)")
	keepR := func(f rel.Fact) bool { return f.Rel == "R" }
	r := Round{Name: "keep", Route: HashOn(3, []int{0}, 5), Keep: keepR}

	base := NewCluster(3)
	base.LoadRoundRobin(load)
	if _, err := base.RunRound(r); err != nil {
		t.Fatal(err)
	}

	plan := NewByzantinePlan().
		Add(ByzantineEvent{Round: 0, Src: 0, Kind: Misroute, Count: 1, Seed: 9})
	faulty := NewCluster(3, WithByzantinePlan(plan))
	faulty.LoadRoundRobin(load)
	if _, err := faulty.RunRound(r); err != nil {
		t.Fatalf("keep-round quarantine failed: %v", err)
	}
	if faulty.Output().String() != base.Output().String() {
		t.Errorf("keep-round output diverged")
	}
}
