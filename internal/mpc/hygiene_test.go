package mpc

import (
	"strings"
	"testing"

	"mpclogic/internal/rel"
)

func ringInstance(n int) *rel.Instance {
	inst := rel.NewInstance()
	for v := 0; v < n; v++ {
		inst.Add(rel.NewFact("R", rel.Value(v), rel.Value((v+1)%n)))
		inst.Add(rel.NewFact("S", rel.Value(v)))
	}
	return inst
}

// TestComputePanicSurfaced: a panic in one server's compute phase must
// surface as the round's error — deterministically the lowest
// panicking server — and must not record round statistics.
func TestComputePanicSurfaced(t *testing.T) {
	c := NewCluster(4)
	c.LoadRoundRobin(ringInstance(16))
	_, err := c.RunRound(Round{
		Name:  "boom",
		Route: Broadcast(4),
		Compute: func(server int, local *rel.Instance) *rel.Instance {
			if server >= 2 {
				panic("kaboom")
			}
			return local
		},
	})
	if err == nil {
		t.Fatal("RunRound swallowed a worker panic")
	}
	if !strings.Contains(err.Error(), "server 2") || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("error should name the lowest panicking server and the panic value: %v", err)
	}
	if !strings.Contains(err.Error(), `round "boom"`) {
		t.Errorf("error should name the round: %v", err)
	}
	if c.Rounds() != 0 {
		t.Errorf("failed round recorded stats: %d rounds", c.Rounds())
	}
}

// TestRunStopsAtPanic: Run must stop at the first failing round.
func TestRunStopsAtPanic(t *testing.T) {
	c := NewCluster(2)
	c.LoadRoundRobin(ringInstance(4))
	ran := false
	err := c.Run(
		Round{Name: "explode", Compute: func(int, *rel.Instance) *rel.Instance { panic("no") }},
		Round{Name: "after", Compute: func(_ int, l *rel.Instance) *rel.Instance { ran = true; return l }},
	)
	if err == nil {
		t.Fatal("Run swallowed the failing round")
	}
	if ran {
		t.Error("Run executed rounds after the failure")
	}
}

// TestRoundRobinDeterministic: the initial placement must be identical
// across repeated loads of the same instance, both per server and in
// the serialized output.
func TestRoundRobinDeterministic(t *testing.T) {
	inst := ringInstance(64)
	c1 := NewCluster(5)
	c2 := NewCluster(5)
	c1.LoadRoundRobin(inst)
	c2.LoadRoundRobin(inst)
	for s := 0; s < 5; s++ {
		a, b := c1.Server(s).String(), c2.Server(s).String()
		if a != b {
			t.Errorf("server %d placement differs across identical loads:\n%s\n%s", s, a, b)
		}
	}
}

// TestRoundDeterministic: executing the same hash-routed round twice
// from the same initial state must produce byte-identical outputs and
// identical load statistics — the mechanical face of the MPC model's
// claim that one-round evaluation is a function of (input, policy).
func TestRoundDeterministic(t *testing.T) {
	round := Round{
		Name:  "hash",
		Route: HashOn(7, []int{0}, 42),
	}
	var outputs []string
	var loads []string
	for run := 0; run < 3; run++ {
		c := NewCluster(7)
		c.LoadRoundRobin(ringInstance(100))
		stats, err := c.RunRound(round)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, c.Output().String())
		loads = append(loads, stats.String())
	}
	for run := 1; run < len(outputs); run++ {
		if outputs[run] != outputs[0] {
			t.Errorf("run %d output differs:\n%s\n%s", run, outputs[run], outputs[0])
		}
		if loads[run] != loads[0] {
			t.Errorf("run %d load stats differ: %s vs %s", run, loads[run], loads[0])
		}
	}
}
