package mpc

import (
	"fmt"
	"strings"
	"testing"

	"mpclogic/internal/rel"
)

func ringInstance(n int) *rel.Instance {
	inst := rel.NewInstance()
	for v := 0; v < n; v++ {
		inst.Add(rel.NewFact("R", rel.Value(v), rel.Value((v+1)%n)))
		inst.Add(rel.NewFact("S", rel.Value(v)))
	}
	return inst
}

// TestComputePanicSurfaced: a panic in one server's compute phase must
// surface as the round's error — deterministically the lowest
// panicking server — and must not record round statistics.
func TestComputePanicSurfaced(t *testing.T) {
	c := NewCluster(4)
	c.LoadRoundRobin(ringInstance(16))
	_, err := c.RunRound(Round{
		Name:  "boom",
		Route: Broadcast(4),
		Compute: func(server int, local *rel.Instance) *rel.Instance {
			if server >= 2 {
				panic("kaboom")
			}
			return local
		},
	})
	if err == nil {
		t.Fatal("RunRound swallowed a worker panic")
	}
	if !strings.Contains(err.Error(), "server 2") || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("error should name the lowest panicking server and the panic value: %v", err)
	}
	if !strings.Contains(err.Error(), `round "boom"`) {
		t.Errorf("error should name the round: %v", err)
	}
	if c.Rounds() != 0 {
		t.Errorf("failed round recorded stats: %d rounds", c.Rounds())
	}
}

// TestRunStopsAtPanic: Run must stop at the first failing round.
func TestRunStopsAtPanic(t *testing.T) {
	c := NewCluster(2)
	c.LoadRoundRobin(ringInstance(4))
	ran := false
	err := c.Run(
		Round{Name: "explode", Compute: func(int, *rel.Instance) *rel.Instance { panic("no") }},
		Round{Name: "after", Compute: func(_ int, l *rel.Instance) *rel.Instance { ran = true; return l }},
	)
	if err == nil {
		t.Fatal("Run swallowed the failing round")
	}
	if ran {
		t.Error("Run executed rounds after the failure")
	}
}

// TestRouteErrorDeterministic: a routing error raised by middle source
// servers must surface deterministically — the lowest erring source
// wins, and within that source the smallest offending fact is reported
// regardless of enumeration order — and must leave the cluster
// untouched: no stats recorded, server contents bit-identical.
func TestRouteErrorDeterministic(t *testing.T) {
	const p = 5
	badRouter := RouterFunc(func(f rel.Fact) []int {
		if f.Rel == "B" {
			return []int{p + 10}
		}
		return []int{0}
	})
	build := func() *Cluster {
		c := NewCluster(p)
		for s := 0; s < p; s++ {
			c.LoadAt(s, rel.FromFacts(rel.NewFact("R", rel.Value(s))))
		}
		// Bad facts only at the middle sources 1 and 3; source 1 holds
		// two so the reported fact must be the Less-minimal one.
		c.LoadAt(1, rel.FromFacts(rel.NewFact("B", 5), rel.NewFact("B", 2)))
		c.LoadAt(3, rel.FromFacts(rel.NewFact("B", 1)))
		return c
	}
	want := fmt.Sprintf("mpc: route of %v targets server %d outside [0,%d)",
		rel.NewFact("B", 2), p+10, p)
	for run := 0; run < 3; run++ {
		c := build()
		before := make([]string, p)
		for s := 0; s < p; s++ {
			before[s] = c.Server(s).String()
		}
		_, err := c.RunRound(Round{Name: "badroute", Route: badRouter})
		if err == nil {
			t.Fatal("RunRound swallowed the routing error")
		}
		if err.Error() != want {
			t.Errorf("run %d: error %q, want %q", run, err, want)
		}
		if c.Rounds() != 0 {
			t.Errorf("run %d: failed round recorded stats", run)
		}
		for s := 0; s < p; s++ {
			if got := c.Server(s).String(); got != before[s] {
				t.Errorf("run %d: server %d mutated by failed round:\n%s\n%s", run, s, got, before[s])
			}
		}
	}
}

// TestRouteErrorNotMaskedByLaterPanic: once a source has a confirmed
// range error, a Router that panics on that source's later facts must
// not convert the clean range error into a panic error — the
// Less-minimal refinement probes those facts under their own recover.
func TestRouteErrorNotMaskedByLaterPanic(t *testing.T) {
	const p = 3
	router := RouterFunc(func(f rel.Fact) []int {
		if f.Rel != "B" {
			return []int{0}
		}
		if f.Tuple[0] == 5 {
			return []int{p + 7}
		}
		panic("router broken on later facts")
	})
	c := NewCluster(p)
	c.LoadAt(0, rel.FromFacts(rel.NewFact("R", rel.Value(0))))
	// Insertion order fixes enumeration: B(5) (out of range) comes
	// first; B(2) and B(3) panic and are Less than B(5), so the error
	// refinement must probe them.
	c.LoadAt(1, rel.FromFacts(rel.NewFact("B", 5), rel.NewFact("B", 2), rel.NewFact("B", 3)))
	want := fmt.Sprintf("mpc: route of %v targets server %d outside [0,%d)",
		rel.NewFact("B", 5), p+7, p)
	_, err := c.RunRound(Round{Name: "maskedroute", Route: router})
	if err == nil {
		t.Fatal("RunRound swallowed the routing error")
	}
	if err.Error() != want {
		t.Errorf("error %q, want %q", err, want)
	}
	if c.Rounds() != 0 {
		t.Errorf("failed round recorded stats: %d rounds", c.Rounds())
	}
}

// TestCommPanicSurfaced: a panicking Router must surface as the
// round's error (naming the round and a source server) instead of
// killing the process now that routing runs in goroutines.
func TestCommPanicSurfaced(t *testing.T) {
	c := NewCluster(3)
	c.LoadRoundRobin(ringInstance(9))
	_, err := c.RunRound(Round{
		Name:  "panicroute",
		Route: RouterFunc(func(rel.Fact) []int { panic("router down") }),
	})
	if err == nil {
		t.Fatal("RunRound swallowed a router panic")
	}
	if !strings.Contains(err.Error(), "communication phase panicked") ||
		!strings.Contains(err.Error(), "router down") ||
		!strings.Contains(err.Error(), `round "panicroute"`) {
		t.Errorf("error should name the phase, round, and panic value: %v", err)
	}
	if c.Rounds() != 0 {
		t.Errorf("failed round recorded stats: %d rounds", c.Rounds())
	}
}

// TestRoundRobinDeterministic: the initial placement must be identical
// across repeated loads of the same instance, both per server and in
// the serialized output.
func TestRoundRobinDeterministic(t *testing.T) {
	inst := ringInstance(64)
	c1 := NewCluster(5)
	c2 := NewCluster(5)
	c1.LoadRoundRobin(inst)
	c2.LoadRoundRobin(inst)
	for s := 0; s < 5; s++ {
		a, b := c1.Server(s).String(), c2.Server(s).String()
		if a != b {
			t.Errorf("server %d placement differs across identical loads:\n%s\n%s", s, a, b)
		}
	}
}

// TestRoundDeterministic: executing the same hash-routed round twice
// from the same initial state must produce byte-identical outputs and
// identical load statistics — the mechanical face of the MPC model's
// claim that one-round evaluation is a function of (input, policy).
func TestRoundDeterministic(t *testing.T) {
	round := Round{
		Name:  "hash",
		Route: HashOn(7, []int{0}, 42),
	}
	var outputs []string
	var loads []string
	for run := 0; run < 3; run++ {
		c := NewCluster(7)
		c.LoadRoundRobin(ringInstance(100))
		stats, err := c.RunRound(round)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, c.Output().String())
		loads = append(loads, stats.String())
	}
	for run := 1; run < len(outputs); run++ {
		if outputs[run] != outputs[0] {
			t.Errorf("run %d output differs:\n%s\n%s", run, outputs[run], outputs[0])
		}
		if loads[run] != loads[0] {
			t.Errorf("run %d load stats differ: %s vs %s", run, loads[run], loads[0])
		}
	}
}
