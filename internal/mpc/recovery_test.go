package mpc

import (
	"testing"

	"mpclogic/internal/rel"
)

// The virtual-clock backoff schedule is part of the deterministic
// execution contract: attempt k launches one detection tick plus
// 2^(k-1) backoff ticks after the previous failure, so an operation
// that fails f times and then succeeds completes at
// f + (2^f - 1) + cost.
func TestRetryCompletionSchedule(t *testing.T) {
	cases := []struct{ failures, cost, want int }{
		{0, 1, 1},  // fault-free round: one tick
		{1, 1, 3},  // fail@1, detect+backoff 1, run 1
		{2, 1, 6},
		{3, 1, 11},
		{0, 5, 5},
		{2, 3, 8},
		{4, 1, 20},
	}
	for _, c := range cases {
		if got := retryCompletion(c.failures, c.cost); got != c.want {
			t.Errorf("retryCompletion(%d, %d) = %d, want %d", c.failures, c.cost, got, c.want)
		}
	}
	// Monotone in both arguments: more failures or a slower operation
	// can never finish earlier.
	for f := 0; f < 6; f++ {
		for cost := 1; cost < 6; cost++ {
			if retryCompletion(f+1, cost) <= retryCompletion(f, cost) {
				t.Errorf("not monotone in failures at (%d, %d)", f, cost)
			}
			if retryCompletion(f, cost+1) <= retryCompletion(f, cost) {
				t.Errorf("not monotone in cost at (%d, %d)", f, cost)
			}
		}
	}
}

// specCluster runs a single broadcast round on 2 servers under the
// given options and returns the round's stats plus the output string.
func specCluster(t *testing.T, opts ...Option) (RoundStats, string) {
	t.Helper()
	d := rel.NewDict()
	inst := rel.MustInstance(d, "R(0, 0)", "R(1, 1)", "R(2, 2)", "R(3, 3)")
	c := NewCluster(2, opts...)
	c.LoadRoundRobin(inst)
	st, err := c.RunRound(Round{Name: "bcast", Route: Broadcast(2)})
	if err != nil {
		t.Fatal(err)
	}
	return st, c.Output().String()
}

// Speculation tie-breaking at the exact boundary: with the default
// threshold of 2 ticks the speculative copy launches at tick 2 and
// lands at tick 3. A straggler of δ=2 finishes at tick 3 as well —
// the TIE keeps the primary (no win), though the backup's checkpoint
// refetch is still charged. δ=3 finishes at tick 4, strictly after
// the backup, so the backup wins.
func TestSpeculativeWinBoundary(t *testing.T) {
	base, wantOut := specCluster(t, WithCheckpoints())

	tie, outTie := specCluster(t, WithFaultPlan(NewFaultPlan().AddStraggle(0, 0, 2)))
	if tie.SpeculativeWins != 0 {
		t.Errorf("δ=2 tie: %d speculative wins, want 0 (tie keeps the primary)", tie.SpeculativeWins)
	}
	if want := tie.Received[0]; tie.ReplicaComm != want {
		t.Errorf("δ=2 tie: ReplicaComm = %d, want %d (one checkpoint refetch for the launched backup)",
			tie.ReplicaComm, want)
	}
	if tie.VirtualMakespan != 1+3 {
		t.Errorf("δ=2 tie: makespan = %d, want 4", tie.VirtualMakespan)
	}

	win, outWin := specCluster(t, WithFaultPlan(NewFaultPlan().AddStraggle(0, 0, 3)))
	if win.SpeculativeWins != 1 {
		t.Errorf("δ=3: %d speculative wins, want 1 (backup strictly faster)", win.SpeculativeWins)
	}
	if win.VirtualMakespan != 1+3 {
		t.Errorf("δ=3: makespan = %d, want 4 (backup lands at tick 3)", win.VirtualMakespan)
	}

	// With speculation disabled the same straggler runs to completion.
	slow, outSlow := specCluster(t, WithFaultPlan(NewFaultPlan().AddStraggle(0, 0, 3)), WithSpeculation(0))
	if slow.SpeculativeWins != 0 || slow.ReplicaComm != 0 {
		t.Errorf("speculation disabled but backup launched: %+v", slow)
	}
	if slow.VirtualMakespan != 1+4 {
		t.Errorf("no-speculation makespan = %d, want 5", slow.VirtualMakespan)
	}

	// Whoever wins, the computation is the same pure function of the
	// same checkpointed input: outputs and logical metrics are
	// byte-identical across all four runs.
	for i, got := range []string{outTie, outWin, outSlow} {
		if got != wantOut {
			t.Errorf("run %d output diverged from fault-free run", i)
		}
	}
	for i, st := range []RoundStats{tie, win, slow} {
		if st.LogicalString() != base.LogicalString() {
			t.Errorf("run %d logical stats diverged: %s vs %s", i, st.LogicalString(), base.LogicalString())
		}
	}
}

// A crashed server takes the recovery path, not the speculation path:
// even a crash+straggle combination that a backup copy would easily
// beat must recover via checkpoint re-execution with backoff, never
// record a speculative win, and still reproduce the fault-free bytes.
func TestCrashSuppressesSpeculation(t *testing.T) {
	_, wantOut := specCluster(t, WithCheckpoints())

	plan := NewFaultPlan().AddCrash(0, 0, 1).AddStraggle(0, 0, 5)
	st, out := specCluster(t, WithFaultPlan(plan))
	if st.SpeculativeWins != 0 {
		t.Errorf("crashed server recorded a speculative win")
	}
	if st.Retries != 1 || st.RecoveredServers != 1 {
		t.Errorf("recovery metrics wrong: %+v", st)
	}
	// cost = 1+δ = 6, one crash: completion at retryCompletion(1, 6) = 8.
	if st.VirtualMakespan != 1+8 {
		t.Errorf("makespan = %d, want 9", st.VirtualMakespan)
	}
	if want := st.Received[0]; st.ReplicaComm != want {
		t.Errorf("ReplicaComm = %d, want %d (one checkpoint refetch per re-execution)", st.ReplicaComm, want)
	}
	if out != wantOut {
		t.Errorf("recovered output diverged from fault-free run")
	}
}
