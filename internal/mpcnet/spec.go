// Package mpcnet executes MPC programs as real operating-system
// processes: one coordinator and p workers, each worker playing one
// simulated server, exchanging round fragments over loopback TCP in
// the same canonical wire encoding the in-process TCP transport uses.
// The design goal is the repo's headline invariant extended across the
// process boundary — a program run by p workers produces the same
// output and the same logical trace, byte for byte, as the simulator.
//
// Everything a worker needs is a pure function of the ProgramSpec: the
// workload is regenerated from its seed, the program is rebuilt
// deterministically, and the worker's slice of the initial placement
// is the same k%p round-robin the simulator's LoadRoundRobin performs.
// That purity is what makes recovery trivial to reason about: a killed
// worker reloads its latest checkpoint (written through the policy
// store encoding) and re-executes; determinism guarantees the re-run
// publishes byte-identical fragments, so the rest of the cluster
// cannot tell a recovery from a slow network.
package mpcnet

import (
	"fmt"

	"mpclogic/internal/cq"
	"mpclogic/internal/gym"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// ProgramSpec is the complete, self-contained description of a
// distributed run: every worker and the coordinator rebuild the same
// workload and program from it independently. It travels as JSON on
// the worker command line.
type ProgramSpec struct {
	// Program selects the algorithm: tc | cascade | hypercube |
	// yannakakis | gym.
	Program string `json:"program"`
	// P is the requested server count; the effective count may be
	// smaller for share-constrained programs (see Built.P).
	P int `json:"p"`
	// M sizes the synthetic workload (tuples per relation).
	M int `json:"m"`
	// Seed drives both workload generation and routing hashes.
	Seed uint64 `json:"seed"`
}

// Built is a spec elaborated into an executable program: the rounds,
// the full input instance, and the effective server count. Build is
// deterministic, so coordinator and workers agree on every field
// without communicating.
type Built struct {
	Rounds []mpc.Round
	Input  *rel.Instance
	P      int
}

// Build elaborates spec. It must be called with identical specs on
// every process of a run.
func Build(spec ProgramSpec) (*Built, error) {
	if spec.P <= 0 {
		return nil, fmt.Errorf("mpcnet: spec needs at least one server (got p=%d)", spec.P)
	}
	if spec.M <= 0 {
		return nil, fmt.Errorf("mpcnet: spec needs a positive workload size (got m=%d)", spec.M)
	}
	d := rel.NewDict()
	switch spec.Program {
	case "tc":
		// Random sparse graph; the static program is the naive
		// transitive-closure iteration unrolled to its fixpoint depth,
		// which is itself a pure function of the generated graph.
		input := workload.RandomGraph(spec.M/2+2, spec.M, int64(spec.Seed))
		return &Built{Rounds: tcProgram(spec.P, spec.Seed, input), Input: input, P: spec.P}, nil
	case "cascade":
		input := workload.TriangleSkewFree(spec.M)
		return &Built{Rounds: gym.CascadeTriangleProgram(spec.P, spec.Seed), Input: input, P: spec.P}, nil
	case "hypercube":
		q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
		input := workload.TriangleSkewFree(spec.M)
		g, err := hypercube.NewOptimalGrid(q, spec.P, spec.Seed)
		if err != nil {
			return nil, fmt.Errorf("mpcnet: hypercube grid: %w", err)
		}
		return &Built{Rounds: []mpc.Round{hypercube.HyperCubeRound(g)}, Input: input, P: g.P()}, nil
	case "yannakakis":
		q := cq.MustParse(d, "H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
		input, _ := workload.AcyclicChain(3, spec.M, 0.3, 1)
		rounds, err := gym.YannakakisProgram(q, spec.P, spec.Seed)
		if err != nil {
			return nil, fmt.Errorf("mpcnet: yannakakis program: %w", err)
		}
		return &Built{Rounds: rounds, Input: input, P: spec.P}, nil
	case "gym":
		q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
		input := workload.TriangleSkewFree(spec.M)
		rounds, _, err := gym.GYMProgram(q, spec.P, spec.Seed)
		if err != nil {
			return nil, fmt.Errorf("mpcnet: gym program: %w", err)
		}
		return &Built{Rounds: rounds, Input: input, P: spec.P}, nil
	default:
		return nil, fmt.Errorf("mpcnet: unknown program %q (want tc | cascade | hypercube | yannakakis | gym)", spec.Program)
	}
}

// WorkerSlice is worker i's share of the initial placement: fact k of
// the input's enumeration goes to server k%p — exactly the simulator's
// LoadRoundRobin, so the distributed initial state matches the
// in-process reference fact for fact.
func WorkerSlice(input *rel.Instance, p, i int) *rel.Instance {
	out := rel.NewInstance()
	k := 0
	input.Each(func(f rel.Fact) bool {
		if k%p == i {
			out.Add(f)
		}
		k++
		return true
	})
	return out
}

// tcCompute is one semi-naive-free TC step: the new state keeps
// everything received, seeds TC from E, and extends it by one E-edge.
// Routing colocates TC(a,b) and E(b,c) at h(b), so the join is local.
func tcCompute(_ int, local *rel.Instance) *rel.Instance {
	out := rel.NewInstance()
	out.AddAll(local)
	e := local.Relation("E")
	if e == nil {
		return out
	}
	e.Each(func(t rel.Tuple) bool {
		out.Add(rel.NewFact("TC", t[0], t[1]))
		return true
	})
	if tc := local.Relation("TC"); tc != nil {
		rel.HashJoin("⋈", tc, e, []int{1}, []int{0}).Each(func(t rel.Tuple) bool {
			out.Add(rel.NewFact("TC", t[0], t[3]))
			return true
		})
	}
	return out
}

// tcProgram unrolls naive transitive closure to its fixpoint depth on
// the given graph: each round routes E by source and TC by target to
// colocate one join step. The depth is computed by running the same
// step function globally, so the static program is a pure function of
// (p, seed, graph) and every process derives the identical round list.
func tcProgram(p int, seed uint64, graph *rel.Instance) []mpc.Round {
	steps := tcSteps(graph)
	rounds := make([]mpc.Round, steps)
	for i := range rounds {
		rounds[i] = mpc.Round{
			Name: fmt.Sprintf("tc-step-%d", i),
			Route: mpc.ByRelation(map[string]mpc.Router{
				"E":  mpc.HashOn(p, []int{0}, seed),
				"TC": mpc.HashOn(p, []int{1}, seed),
			}),
			Compute: tcCompute,
		}
	}
	return rounds
}

// tcSteps counts the rounds the unrolled program needs: global
// applications of the same step until nothing changes (the final
// confirming step included, mirroring a fixpoint engine's last pass).
func tcSteps(graph *rel.Instance) int {
	state := rel.NewInstance()
	state.AddAll(graph)
	for steps := 1; ; steps++ {
		next := tcCompute(0, state)
		if next.Len() == state.Len() {
			return steps
		}
		state = next
	}
}
