package mpcnet

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mpclogic/internal/mpc"
)

// Control plane: workers talk to the coordinator over one-shot TCP
// connections carrying a single JSON request line and a single JSON
// response line. Three operations exist — hello (register a worker's
// data address), lookup (resolve a peer's current data address, which
// changes when a peer is respawned), and result (deliver the worker's
// final fragment and per-round accounting).
//
// Data plane: each worker runs a fragment server. A pull request is
// eight bytes (round u32 | dst u32, little-endian); the response is
// one transport frame (mpc.WriteFrame) whose Seq is the round index.
// The server retains every published round for the whole run, so a
// peer that fell behind — or a worker re-executing after a crash —
// can always re-pull. Serving blocks until the requested fragment is
// published; liveness comes from connection deadlines on both sides.

// ctrlRequest is one control-plane request.
type ctrlRequest struct {
	Op    string `json:"op"` // hello | lookup | result
	Index int    `json:"index"`
	Addr  string `json:"addr,omitempty"` // hello: the worker's data address
	Peer  int    `json:"peer,omitempty"` // lookup: whose address

	// result payload: the worker's per-round loads, per-round Δ send
	// counts, and its final local instance (canonical wire encoding).
	Received  []int  `json:"received,omitempty"`
	DeltaSent []int  `json:"deltaSent,omitempty"`
	Fragment  []byte `json:"fragment,omitempty"`
}

// ctrlResponse is one control-plane response.
type ctrlResponse struct {
	OK   bool   `json:"ok"`
	Addr string `json:"addr,omitempty"` // lookup: "" when not yet registered
	Err  string `json:"err,omitempty"`
}

// ctrlIOTimeout bounds every control- and data-plane socket operation.
const ctrlIOTimeout = 10 * time.Second

// netJitter derives a deterministic 0–9ms jitter from its inputs — a
// hash, not a shared rand.Rand, because pulls from different rounds
// and goroutines back off concurrently and must not race on generator
// state. The spread keeps workers retrying against the same swamped
// or re-registering peer from stampeding back in lockstep.
func netJitter(a, b, c int) time.Duration {
	h := uint64(a)*0x9e3779b97f4a7c15 + uint64(b)*0xbf58476d1ce4e5b9 + uint64(c)*0x94d049bb133111eb
	h ^= h >> 29
	return time.Duration(h%10) * time.Millisecond
}

// dialNet dials a control- or data-plane address with a bounded
// jittered retry: a listener briefly swamped by concurrent one-shot
// connections (or resetting as a crashed peer dies) refuses a dial
// that succeeds a moment later.
func dialNet(addr string, salt int) (net.Conn, error) {
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt)*5*time.Millisecond + netJitter(salt, attempt, 0)) //lint:allow wallclock-free bounded jittered dial backoff on connection I/O, never logical time
		}
		conn, err := net.DialTimeout("tcp", addr, ctrlIOTimeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// roundtrip dials addr, sends req, and reads the response.
func roundtrip(addr string, req ctrlRequest) (ctrlResponse, error) {
	conn, err := dialNet(addr, req.Index)
	if err != nil {
		return ctrlResponse{}, fmt.Errorf("mpcnet: dialing coordinator: %w", err)
	}
	defer conn.Close() // one request per connection; close is best-effort
	if err := conn.SetDeadline(time.Now().Add(ctrlIOTimeout)); err != nil {
		return ctrlResponse{}, err
	}
	enc, err := json.Marshal(req)
	if err != nil {
		return ctrlResponse{}, err
	}
	if _, err := conn.Write(append(enc, '\n')); err != nil {
		return ctrlResponse{}, fmt.Errorf("mpcnet: sending %s: %w", req.Op, err)
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		return ctrlResponse{}, fmt.Errorf("mpcnet: reading %s response: %w", req.Op, err)
	}
	var resp ctrlResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		return ctrlResponse{}, fmt.Errorf("mpcnet: decoding %s response: %w", req.Op, err)
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("mpcnet: coordinator rejected %s: %s", req.Op, resp.Err)
	}
	return resp, nil
}

// fragServer is a worker's data-plane server: published fragments by
// (round, dst), retained for the whole run, served to pulling peers.
type fragServer struct {
	ln *net.TCPListener

	mu    sync.Mutex
	cond  *sync.Cond
	frags map[uint64]mpc.Frame // key: round<<32 | dst
	done  bool
}

func fragKey(round, dst int) uint64 { return uint64(round)<<32 | uint64(uint32(dst)) }

func newFragServer() (*fragServer, error) {
	ln, err := net.ListenTCP("tcp", &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("mpcnet: opening fragment server: %w", err)
	}
	s := &fragServer{ln: ln, frags: make(map[uint64]mpc.Frame)}
	s.cond = sync.NewCond(&s.mu)
	// The accept loop lives as long as the worker, not one round; its
	// join is the listener close in fragServer.close.
	go s.acceptLoop() //lint:allow goroutine-hygiene worker-scoped accept loop, joined by closing the listener
	return s, nil
}

func (s *fragServer) addr() string { return s.ln.Addr().String() }

// publish makes round's fragments for every destination pullable.
// Re-publishing after a recovery overwrites with byte-identical frames
// (deterministic re-execution), so pulls before and after a crash see
// the same bytes.
func (s *fragServer) publish(round int, frames []mpc.Frame) {
	s.mu.Lock()
	for _, f := range frames {
		s.frags[fragKey(round, int(f.Dst))] = f
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// wait blocks until (round, dst) is published or the server closes.
func (s *fragServer) wait(round, dst int) (mpc.Frame, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if f, ok := s.frags[fragKey(round, dst)]; ok {
			return f, true
		}
		if s.done {
			return mpc.Frame{}, false
		}
		s.cond.Wait()
	}
}

func (s *fragServer) close() {
	s.mu.Lock()
	s.done = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.ln.Close() //lint:allow error-discard shutdown path; the accept loop exits on the close error
}

// acceptLoop serves pull requests until the listener closes. Each
// connection carries one request and one frame. The per-connection
// goroutine is bounded by the connection deadline plus the publish
// wait, which the close broadcast releases at shutdown.
func (s *fragServer) acceptLoop() {
	for {
		conn, err := s.ln.AcceptTCP()
		if err != nil {
			return // listener closed: worker is done
		}
		// One goroutine per pull; bounded by the connection deadline plus
		// the publish wait, which close's broadcast always releases.
		go s.serve(conn) //lint:allow goroutine-hygiene pull handler bounded by connection deadline and close broadcast
	}
}

func (s *fragServer) serve(conn *net.TCPConn) {
	defer conn.Close() // one request per connection; close is best-effort
	if err := conn.SetDeadline(time.Now().Add(ctrlIOTimeout)); err != nil {
		return
	}
	var req [8]byte
	if _, err := io.ReadFull(conn, req[:]); err != nil {
		return // malformed pull: drop the connection, the peer retries
	}
	round := int(binary.LittleEndian.Uint32(req[0:]))
	dst := int(binary.LittleEndian.Uint32(req[4:]))
	f, ok := s.wait(round, dst)
	if !ok {
		return
	}
	// Re-arm the deadline: the publish wait may have consumed the
	// original one while the peer was ahead of us.
	if err := conn.SetDeadline(time.Now().Add(ctrlIOTimeout)); err != nil {
		return
	}
	_ = mpc.WriteFrame(conn, f) //lint:allow error-discard failed send: the peer's read errors and it retries
}

// pullBackoff is the pause before pull retry attempt (≥1): exponential
// from 5ms capped at 250ms, plus the deterministic per-(peer, dst,
// attempt) jitter. The first retries come fast — most pull failures
// are a peer that published a beat later — while a genuinely crashed
// peer is re-polled at the capped rate until it re-registers.
func pullBackoff(peer, dst, attempt int) time.Duration {
	d := 5 * time.Millisecond
	for i := 1; i < attempt && d < 250*time.Millisecond; i++ {
		d *= 2
	}
	if d > 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	return d + netJitter(peer, dst, attempt)
}

// pullFrag fetches peer's fragment for (round, dst): resolve the
// peer's current address through the coordinator (it changes when the
// peer is respawned), dial, request, read one frame. Bounded jittered
// exponential retries (~30s in total, like the socket deadline) cover
// the window where a crashed peer has not re-registered yet.
func pullFrag(coordAddr string, peer, round, dst int) (mpc.Frame, error) {
	var lastErr error
	for attempt := 0; attempt < 128; attempt++ {
		if attempt > 0 {
			time.Sleep(pullBackoff(peer, dst, attempt)) //lint:allow wallclock-free recovery backoff while a crashed peer re-registers; connection liveness only, never logical time
		}
		resp, err := roundtrip(coordAddr, ctrlRequest{Op: "lookup", Index: dst, Peer: peer})
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Addr == "" {
			lastErr = fmt.Errorf("mpcnet: peer %d not registered yet", peer)
			continue
		}
		f, err := pullOnce(resp.Addr, peer, round, dst)
		if err != nil {
			lastErr = err
			continue
		}
		return f, nil
	}
	return mpc.Frame{}, fmt.Errorf("mpcnet: pulling round %d fragment %d→%d: %w", round, peer, dst, lastErr)
}

func pullOnce(addr string, peer, round, dst int) (mpc.Frame, error) {
	conn, err := dialNet(addr, peer)
	if err != nil {
		return mpc.Frame{}, err
	}
	defer conn.Close() // one request per connection; close is best-effort
	if err := conn.SetDeadline(time.Now().Add(ctrlIOTimeout)); err != nil {
		return mpc.Frame{}, err
	}
	var req [8]byte
	binary.LittleEndian.PutUint32(req[0:], uint32(round))
	binary.LittleEndian.PutUint32(req[4:], uint32(dst))
	if _, err := conn.Write(req[:]); err != nil {
		return mpc.Frame{}, err
	}
	f, err := mpc.ReadFrame(conn)
	if err != nil {
		return mpc.Frame{}, err
	}
	if f.Seq != uint64(round) || int(f.Shard) != peer || int(f.Dst) != dst {
		return mpc.Frame{}, fmt.Errorf("mpcnet: peer %d answered pull (%d,%d) with frame (seq %d, shard %d, dst %d)",
			peer, round, dst, f.Seq, f.Shard, f.Dst)
	}
	return f, nil
}
