package mpcnet

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"syscall"

	"mpclogic/internal/mpc"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// WorkerConfig configures one worker process (or, in tests, one
// worker goroutine).
type WorkerConfig struct {
	// Index is the simulated server this worker plays, 0 ≤ Index < p.
	Index int
	// Spec is the program; every worker of a run gets the identical spec.
	Spec ProgramSpec
	// CoordAddr is the coordinator's control-plane address.
	CoordAddr string
	// CkptDir is where per-round checkpoints live. Shared by all
	// incarnations of this worker; distinct workers may share it
	// because file names embed the index.
	CkptDir string
	// FailRound, when ≥ 0, kills the process with SIGKILL right after
	// the checkpoint for that round is written — the crash the recovery
	// path is tested against. The coordinator arms it only on a
	// worker's first incarnation, so the respawn runs to completion.
	FailRound int
}

// checkpoint is the durable state written at the START of each round:
// everything needed to re-execute from that round. State goes through
// the policy store encoding — the same bytes a checkpoint replica
// would hold — wrapped in JSON with the round cursor and the logical
// accounting accumulated so far.
type checkpoint struct {
	Round     int    `json:"round"`
	Received  []int  `json:"received"`
	DeltaSent []int  `json:"deltaSent"`
	State     string `json:"state"` // base64(policy.EncodeStore of a 1-node store)
}

func ckptPath(dir string, index, round int) string {
	return filepath.Join(dir, fmt.Sprintf("worker-%d-round-%d.ckpt", index, round))
}

// writeCheckpoint persists atomically (tmp + rename), so a crash
// mid-write leaves the previous checkpoint set intact.
func writeCheckpoint(dir string, index, round int, received, deltaSent []int, local *rel.Instance) error {
	var buf bytes.Buffer
	if err := policy.EncodeStore(&buf, policy.NewStableStore([]*rel.Instance{local})); err != nil {
		return fmt.Errorf("mpcnet: encoding checkpoint state: %w", err)
	}
	ck := checkpoint{
		Round:     round,
		Received:  append([]int(nil), received...),
		DeltaSent: append([]int(nil), deltaSent...),
		State:     base64.StdEncoding.EncodeToString(buf.Bytes()),
	}
	enc, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	tmp := ckptPath(dir, index, round) + ".tmp"
	if err := os.WriteFile(tmp, enc, 0o644); err != nil {
		return fmt.Errorf("mpcnet: writing checkpoint: %w", err)
	}
	return os.Rename(tmp, ckptPath(dir, index, round))
}

func readCheckpoint(dir string, index, round int) (*checkpoint, *rel.Instance, error) {
	enc, err := os.ReadFile(ckptPath(dir, index, round))
	if err != nil {
		return nil, nil, err
	}
	var ck checkpoint
	if err := json.Unmarshal(enc, &ck); err != nil {
		return nil, nil, fmt.Errorf("mpcnet: decoding checkpoint %d: %w", round, err)
	}
	raw, err := base64.StdEncoding.DecodeString(ck.State)
	if err != nil {
		return nil, nil, fmt.Errorf("mpcnet: decoding checkpoint %d state: %w", round, err)
	}
	store, err := policy.DecodeStore(bytes.NewReader(raw))
	if err != nil {
		return nil, nil, fmt.Errorf("mpcnet: decoding checkpoint %d store: %w", round, err)
	}
	if store.NumNodes() != 1 {
		return nil, nil, fmt.Errorf("mpcnet: checkpoint %d holds %d fragments, want 1", round, store.NumNodes())
	}
	return &ck, store.Reload(0), nil
}

// gcCheckpoints removes this worker's checkpoints for rounds below
// keepFrom. Best-effort by design: recovery only ever reads the two
// newest checkpoints (resume is latest−1), which the caller retains,
// and a failed unlink merely leaves a little extra disk for the next
// GC pass to retry. Other workers' files are never touched — the name
// embeds the index — so a shared checkpoint directory stays safe.
func gcCheckpoints(dir string, index, keepFrom int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		var idx, round int
		if _, err := fmt.Sscanf(e.Name(), "worker-%d-round-%d.ckpt", &idx, &round); err != nil {
			continue
		}
		if idx == index && round < keepFrom {
			_ = os.Remove(filepath.Join(dir, e.Name())) //lint:allow error-discard best-effort space reclamation; recovery needs only the retained newest two checkpoints
		}
	}
}

// latestCheckpoint scans dir for this worker's highest checkpoint
// round, or -1 when none exists (fresh start).
func latestCheckpoint(dir string, index int) int {
	latest := -1
	entries, err := os.ReadDir(dir)
	if err != nil {
		return -1
	}
	for _, e := range entries {
		var idx, round int
		if _, err := fmt.Sscanf(e.Name(), "worker-%d-round-%d.ckpt", &idx, &round); err != nil {
			continue
		}
		if idx == index && round > latest {
			latest = round
		}
	}
	return latest
}

// RunWorker executes one worker's share of the program: publish this
// server's routed fragments for each round, pull every peer's, merge
// deterministically, compute, repeat; then deliver the final fragment
// and per-round accounting to the coordinator.
//
// Recovery: a fresh incarnation resumes from max(0, latest-1) where
// latest is the highest checkpoint on disk. The minus one is the lag
// bound: checkpointing the start of round r means round r-1 completed,
// which means this worker pulled every peer's round r-1 fragment,
// which means every peer has STARTED r-1 — so no peer can ever need a
// round earlier than r-1 from us. Re-executing from r-1 re-publishes
// (byte-identical, by determinism) everything any peer could still ask
// for, and re-pulls succeed because peers retain all published rounds.
func RunWorker(cfg WorkerConfig) error {
	built, err := Build(cfg.Spec)
	if err != nil {
		return err
	}
	p := built.P
	if cfg.Index < 0 || cfg.Index >= p {
		return fmt.Errorf("mpcnet: worker index %d outside the %d-server program", cfg.Index, p)
	}

	srv, err := newFragServer()
	if err != nil {
		return err
	}
	defer srv.close()
	if _, err := roundtrip(cfg.CoordAddr, ctrlRequest{Op: "hello", Index: cfg.Index, Addr: srv.addr()}); err != nil {
		return err
	}

	local := WorkerSlice(built.Input, p, cfg.Index)
	var received, deltaSent []int
	start := 0
	if latest := latestCheckpoint(cfg.CkptDir, cfg.Index); latest >= 0 {
		resume := latest - 1
		if resume < 0 {
			resume = 0
		}
		ck, state, err := readCheckpoint(cfg.CkptDir, cfg.Index, resume)
		if err != nil {
			return fmt.Errorf("mpcnet: worker %d resuming at round %d: %w", cfg.Index, resume, err)
		}
		local, received, deltaSent, start = state, ck.Received, ck.DeltaSent, ck.Round
	}

	for r := start; r < len(built.Rounds); r++ {
		round := built.Rounds[r]
		if cfg.CkptDir != "" {
			if err := writeCheckpoint(cfg.CkptDir, cfg.Index, r, received, deltaSent, local); err != nil {
				return err
			}
		}
		if cfg.FailRound == r {
			// The crash under test: die hard, no deferred cleanup, exactly
			// like a lost machine. The coordinator's respawn (without the
			// failpoint) recovers from the checkpoint just written.
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL) //lint:allow error-discard the process is gone either way
		}

		shard, err := mpc.RouteSource(round, p, cfg.Index, local)
		if err != nil {
			return err
		}
		frames := make([]mpc.Frame, p)
		for dst := 0; dst < p; dst++ {
			out := shard.Outs[dst]
			if out == nil {
				out = rel.NewInstance()
			}
			frames[dst] = mpc.Frame{
				Seq:     uint64(r),
				Shard:   uint32(cfg.Index),
				Dst:     uint32(dst),
				Sent:    uint32(shard.Sent[dst]),
				Payload: rel.EncodeInstance(out),
			}
		}
		srv.publish(r, frames)

		inbox, myRecv, err := pullRound(cfg.CoordAddr, p, cfg.Index, r, frames[cfg.Index])
		if err != nil {
			return err
		}
		if err := adoptResident(round, cfg.Index, local, inbox); err != nil {
			return err
		}
		next, err := computeOne(round, cfg.Index, inbox)
		if err != nil {
			return err
		}
		local = next
		received = append(received, myRecv)
		deltaSent = append(deltaSent, shard.DeltaSent)
		if cfg.CkptDir != "" {
			// Round r is complete: every peer's round-r fragment arrived,
			// so a resume can never rewind past r−1 (the lag bound above).
			// Checkpoints below r−1 are unreachable — reclaim them.
			gcCheckpoints(cfg.CkptDir, cfg.Index, r-1)
		}
	}

	// The result barrier: the coordinator holds this response until
	// every worker has reported, so no worker tears down its fragment
	// server while a recovering peer might still need to re-pull.
	_, err = roundtrip(cfg.CoordAddr, ctrlRequest{
		Op:        "result",
		Index:     cfg.Index,
		Received:  received,
		DeltaSent: deltaSent,
		Fragment:  rel.EncodeInstance(local),
	})
	return err
}

// pullRound assembles this worker's round-r inbox: one fragment per
// peer, own fragment taken from the local publication, merged in
// ascending shard order exactly like the in-process transports. The
// received count sums the frames' Sent fields — logical accounting,
// identical to the simulator's.
func pullRound(coordAddr string, p, index, r int, own mpc.Frame) (*rel.Instance, int, error) {
	inbox := rel.NewInstance()
	n := 0
	for w := 0; w < p; w++ {
		f := own
		if w != index {
			var err error
			f, err = pullFrag(coordAddr, w, r, index)
			if err != nil {
				return nil, 0, err
			}
		}
		inst, err := rel.DecodeInstance(f.Payload)
		if err != nil {
			return nil, 0, fmt.Errorf("mpcnet: worker %d decoding round %d fragment from %d: %w", index, r, w, err)
		}
		n += int(f.Sent)
		for _, name := range inst.RelationNames() {
			o := inst.Relation(name)
			inbox.EnsureRelationSize(name, o.Arity, o.Len()).UnionWith(o)
		}
	}
	return inbox, n, nil
}

// adoptResident is the per-server projection of the simulator's
// resident adoption: resident relations ride into the round input by
// reference, and routing facts into one is a deterministic error.
func adoptResident(round mpc.Round, index int, local, inbox *rel.Instance) error {
	for _, name := range round.Resident {
		if in := inbox.Relation(name); in != nil && in.Len() > 0 {
			return fmt.Errorf("mpc: round %q routed facts into resident relation %q on server %d", round.Name, name, index)
		}
		if rl := local.Relation(name); rl != nil {
			inbox.SetRelation(rl)
		}
	}
	return nil
}

// computeOne runs one server's computation phase with the simulator's
// exact semantics: nil Compute is identity, a nil result is an empty
// instance, and a panic surfaces as the simulator's error string.
func computeOne(round mpc.Round, index int, input *rel.Instance) (out *rel.Instance, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("mpc: server %d compute phase panicked in round %q: %v", index, round.Name, rec)
		}
	}()
	if round.Compute == nil {
		return input, nil
	}
	out = round.Compute(index, input)
	if out == nil {
		out = rel.NewInstance()
	}
	return out, nil
}
