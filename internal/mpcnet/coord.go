package mpcnet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
)

// Process is one live worker incarnation the coordinator can wait on
// and kill. The exec-based spawner wraps os/exec; tests wrap a
// goroutine running RunWorker directly.
type Process interface {
	// Wait blocks until the incarnation exits; a non-nil error means it
	// died abnormally (non-zero exit, killed by a signal).
	Wait() error
	// Kill terminates the incarnation; idempotent.
	Kill()
}

// Spawner launches one worker incarnation with the given config.
type Spawner func(cfg WorkerConfig) (Process, error)

// RunConfig describes one coordinated distributed run.
type RunConfig struct {
	Spec    ProgramSpec
	CkptDir string
	// FailWorker/FailRound arm the crash under test: worker FailWorker's
	// FIRST incarnation self-kills after checkpointing FailRound.
	// FailWorker < 0 disables the failpoint.
	FailWorker int
	FailRound  int
	Spawn      Spawner
}

// RunResult is the coordinator's view of a completed run, carrying
// exactly the observables the equivalence tests compare against the
// simulator: the output union, per-server fragments, the logical
// trace, and the cost metrics.
type RunResult struct {
	Output    *rel.Instance
	Fragments []*rel.Instance
	Trace     string
	MaxLoad   int
	TotalComm int
	DeltaComm int
	Rounds    int
	// Respawns counts worker incarnations beyond the first p — nonzero
	// exactly when recovery actually happened.
	Respawns int
}

// workerResult is one worker's final report.
type workerResult struct {
	received  []int
	deltaSent []int
	fragment  *rel.Instance
}

// coordinator is the run's control-plane state: the address book the
// workers publish into and the result set they deliver into. The
// result barrier lives here — result responses are held until every
// worker has reported, so no fragment server disappears while a
// recovering peer might still re-pull.
type coordinator struct {
	p  int
	ln *net.TCPListener

	mu      sync.Mutex
	cond    *sync.Cond
	addrs   []string
	results map[int]workerResult
	failed  error
}

func newCoordinator(p int) (*coordinator, error) {
	ln, err := net.ListenTCP("tcp", &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("mpcnet: opening coordinator: %w", err)
	}
	c := &coordinator{p: p, ln: ln, addrs: make([]string, p), results: make(map[int]workerResult)}
	c.cond = sync.NewCond(&c.mu)
	// The accept loop lives as long as the run, not one round; its join
	// is the listener close in coordinator.close.
	go c.acceptLoop() //lint:allow goroutine-hygiene run-scoped accept loop, joined by closing the listener
	return c, nil
}

func (c *coordinator) addr() string { return c.ln.Addr().String() }

func (c *coordinator) close() {
	c.ln.Close() //lint:allow error-discard shutdown path; the accept loop exits on the close error
	c.mu.Lock()
	if c.failed == nil {
		c.failed = fmt.Errorf("mpcnet: coordinator closed")
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// fail aborts the run: pending result barriers release with an error
// so blocked workers exit instead of hanging.
func (c *coordinator) fail(err error) {
	c.mu.Lock()
	if c.failed == nil {
		c.failed = err
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

func (c *coordinator) acceptLoop() {
	for {
		conn, err := c.ln.AcceptTCP()
		if err != nil {
			return // listener closed: run is over
		}
		// One goroutine per request; bounded by the connection deadline
		// plus the result barrier, which fail/close always releases.
		go c.serve(conn) //lint:allow goroutine-hygiene request handler bounded by connection deadline and barrier release
	}
}

func (c *coordinator) serve(conn *net.TCPConn) {
	defer conn.Close() // one request per connection; close is best-effort
	if err := conn.SetDeadline(time.Now().Add(ctrlIOTimeout)); err != nil {
		return
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		return // malformed request: drop, the worker retries
	}
	var req ctrlRequest
	if err := json.Unmarshal(line, &req); err != nil {
		return
	}
	resp := c.handle(req)
	if enc, err := json.Marshal(resp); err == nil {
		// The result barrier may have held this connection past the read
		// deadline; re-arm before responding.
		if err := conn.SetDeadline(time.Now().Add(ctrlIOTimeout)); err != nil {
			return
		}
		_, _ = conn.Write(append(enc, '\n')) //lint:allow error-discard failed response: the worker's read errors and it retries
	}
}

func (c *coordinator) handle(req ctrlRequest) ctrlResponse {
	if req.Index < 0 || req.Index >= c.p {
		return ctrlResponse{Err: fmt.Sprintf("worker index %d outside 0..%d", req.Index, c.p-1)}
	}
	switch req.Op {
	case "hello":
		c.mu.Lock()
		c.addrs[req.Index] = req.Addr
		c.mu.Unlock()
		return ctrlResponse{OK: true}
	case "lookup":
		if req.Peer < 0 || req.Peer >= c.p {
			return ctrlResponse{Err: fmt.Sprintf("peer index %d outside 0..%d", req.Peer, c.p-1)}
		}
		c.mu.Lock()
		addr := c.addrs[req.Peer]
		c.mu.Unlock()
		return ctrlResponse{OK: true, Addr: addr}
	case "result":
		frag, err := rel.DecodeInstance(req.Fragment)
		if err != nil {
			return ctrlResponse{Err: fmt.Sprintf("undecodable fragment: %v", err)}
		}
		c.mu.Lock()
		// A respawned worker may re-report; determinism makes the copies
		// identical, so last-write-wins is safe.
		c.results[req.Index] = workerResult{received: req.Received, deltaSent: req.DeltaSent, fragment: frag}
		c.cond.Broadcast()
		// Barrier: hold the response until the whole cluster reported (or
		// the run failed), so this worker keeps serving re-pulls.
		for len(c.results) < c.p && c.failed == nil {
			c.cond.Wait()
		}
		failed := c.failed
		c.mu.Unlock()
		if failed != nil {
			return ctrlResponse{Err: failed.Error()}
		}
		return ctrlResponse{OK: true}
	default:
		return ctrlResponse{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// awaitResults blocks until all p results are in or the run failed.
func (c *coordinator) awaitResults() (map[int]workerResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.results) < c.p && c.failed == nil {
		c.cond.Wait()
	}
	if c.failed != nil {
		return nil, c.failed
	}
	return c.results, nil
}

// maxRespawns bounds recovery: a worker that keeps dying after this
// many fresh incarnations (beyond the armed failpoint) fails the run.
const maxRespawns = 3

// Run coordinates a full distributed execution: spawn one worker per
// server, respawn any that die (the failpoint respawn carries no
// failpoint, so the recovered incarnation runs to completion), collect
// every worker's result, and assemble the run's observables. There is
// no wall-clock timeout here: liveness comes from the workers' socket
// deadlines and bounded pull retries — a wedged run surfaces as worker
// errors, which exhaust the respawn budget and fail the run.
func Run(cfg RunConfig) (*RunResult, error) {
	if cfg.Spawn == nil {
		return nil, fmt.Errorf("mpcnet: run needs a spawner")
	}
	built, err := Build(cfg.Spec)
	if err != nil {
		return nil, err
	}
	p := built.P

	coord, err := newCoordinator(p)
	if err != nil {
		return nil, err
	}
	defer coord.close()

	var respawnMu sync.Mutex
	respawns := 0
	procs := make([]Process, p)
	var monitors sync.WaitGroup
	for i := 0; i < p; i++ {
		wcfg := WorkerConfig{
			Index:     i,
			Spec:      cfg.Spec,
			CoordAddr: coord.addr(),
			CkptDir:   cfg.CkptDir,
			FailRound: -1,
		}
		if cfg.FailWorker == i {
			wcfg.FailRound = cfg.FailRound
		}
		proc, err := cfg.Spawn(wcfg)
		if err != nil {
			coord.fail(fmt.Errorf("mpcnet: spawning worker %d: %w", i, err))
			break
		}
		procs[i] = proc
		monitors.Add(1)
		go func(i int, proc Process, wcfg WorkerConfig) {
			defer monitors.Done()
			for attempt := 0; ; attempt++ {
				err := proc.Wait()
				coord.mu.Lock()
				_, reported := coord.results[i]
				done := len(coord.results) == coord.p || coord.failed != nil
				coord.mu.Unlock()
				if done {
					return
				}
				if err == nil {
					if !reported {
						coord.fail(fmt.Errorf("mpcnet: worker %d exited cleanly without reporting a result", i))
					}
					return
				}
				if attempt >= maxRespawns {
					coord.fail(fmt.Errorf("mpcnet: worker %d died %d times, giving up: %w", i, attempt+1, err))
					return
				}
				// Recovery path: a fresh incarnation, never re-armed with the
				// failpoint, resumes from its checkpoints.
				wcfg.FailRound = -1
				respawnMu.Lock()
				respawns++
				respawnMu.Unlock()
				next, spawnErr := cfg.Spawn(wcfg)
				if spawnErr != nil {
					coord.fail(fmt.Errorf("mpcnet: respawning worker %d: %w", i, spawnErr))
					return
				}
				procs[i] = next
				proc = next
			}
		}(i, proc, wcfg)
	}

	results, err := coord.awaitResults()
	if err != nil {
		for _, proc := range procs {
			if proc != nil {
				proc.Kill()
			}
		}
		monitors.Wait()
		return nil, err
	}
	monitors.Wait()

	res, err := assemble(built, results)
	if err != nil {
		return nil, err
	}
	respawnMu.Lock()
	res.Respawns = respawns
	respawnMu.Unlock()
	return res, nil
}

// assemble reconstructs the simulator's observables from the workers'
// reports: per-round stats rows (and from them the logical trace and
// cost metrics) plus the output union of the final fragments.
func assemble(built *Built, results map[int]workerResult) (*RunResult, error) {
	p := built.P
	nRounds := len(built.Rounds)
	for i := 0; i < p; i++ {
		r, ok := results[i]
		if !ok {
			return nil, fmt.Errorf("mpcnet: no result from worker %d", i)
		}
		if len(r.received) != nRounds || len(r.deltaSent) != nRounds {
			return nil, fmt.Errorf("mpcnet: worker %d reported %d/%d rounds of accounting, want %d",
				i, len(r.received), len(r.deltaSent), nRounds)
		}
	}

	res := &RunResult{Output: rel.NewInstance(), Fragments: make([]*rel.Instance, p), Rounds: nRounds}
	for i := 0; i < p; i++ {
		res.Fragments[i] = results[i].fragment
		res.Output.AddAll(results[i].fragment)
	}
	trace := make([]byte, 0, nRounds*64)
	for r := 0; r < nRounds; r++ {
		stats := mpc.RoundStats{Name: built.Rounds[r].Name, Received: make([]int, p)}
		for i := 0; i < p; i++ {
			n := results[i].received[r]
			stats.Received[i] = n
			stats.TotalComm += n
			if n > stats.MaxLoad {
				stats.MaxLoad = n
			}
			stats.DeltaComm += results[i].deltaSent[r]
		}
		trace = append(trace, stats.LogicalString()...)
		trace = append(trace, '\n')
		res.TotalComm += stats.TotalComm
		res.DeltaComm += stats.DeltaComm
		if stats.MaxLoad > res.MaxLoad {
			res.MaxLoad = stats.MaxLoad
		}
	}
	res.Trace = string(trace)
	return res, nil
}

// RunLocal executes the spec on the in-process simulator — the
// reference the distributed run must match byte for byte.
func RunLocal(spec ProgramSpec) (*RunResult, error) {
	built, err := Build(spec)
	if err != nil {
		return nil, err
	}
	c := mpc.NewCluster(built.P)
	c.LoadRoundRobin(built.Input)
	if err := c.Run(built.Rounds...); err != nil {
		return nil, err
	}
	res := &RunResult{
		Output:    c.Output(),
		Fragments: make([]*rel.Instance, built.P),
		Trace:     c.LogicalTrace(),
		MaxLoad:   c.MaxLoad(),
		TotalComm: c.TotalComm(),
		DeltaComm: c.DeltaCommTotal(),
		Rounds:    c.Rounds(),
	}
	for i := 0; i < built.P; i++ {
		res.Fragments[i] = c.Server(i)
	}
	return res, nil
}
