package mpcnet

import (
	"fmt"
	"os"
	"testing"

	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
)

// goProc runs one worker as a goroutine in this process — the
// in-process stand-in for a worker OS process. Kill is a no-op: the
// goroutine unwinds on its own when the coordinator fails the run and
// its socket operations start erroring.
type goProc struct {
	done chan struct{}
	err  error
}

func (p *goProc) Wait() error {
	<-p.done
	return p.err
}

func (p *goProc) Kill() {}

// goSpawner runs workers as goroutines. Only usable with the
// failpoint disabled — an in-process SIGKILL would take the test
// runner down with it; the real crash path is exercised by the
// cmd/mpcrun e2e test, which spawns actual processes.
func goSpawner(cfg WorkerConfig) (Process, error) {
	if cfg.FailRound >= 0 {
		return nil, fmt.Errorf("goroutine workers cannot arm a SIGKILL failpoint")
	}
	p := &goProc{done: make(chan struct{})}
	go func() {
		defer close(p.done)
		p.err = RunWorker(cfg)
	}()
	return p, nil
}

// specMatrix is the program matrix the distributed runtime is proven
// on: every Build-able program, at small sizes that still route real
// communication on every round.
func specMatrix() []ProgramSpec {
	return []ProgramSpec{
		{Program: "tc", P: 3, M: 10, Seed: 7},
		{Program: "cascade", P: 4, M: 24, Seed: 11},
		{Program: "hypercube", P: 4, M: 24, Seed: 17},
		{Program: "yannakakis", P: 3, M: 30, Seed: 42},
		{Program: "gym", P: 4, M: 24, Seed: 3},
	}
}

// TestDistributedMatchesLocal is the process-level half of the
// tentpole invariant: a program executed by one worker per server —
// real fragment servers, real pulls over loopback sockets, per-round
// checkpoints on disk — produces byte-identical output, per-server
// fragments, and logical trace to the in-process simulator.
func TestDistributedMatchesLocal(t *testing.T) {
	for _, spec := range specMatrix() {
		spec := spec
		t.Run(spec.Program, func(t *testing.T) {
			t.Parallel()
			want, err := RunLocal(spec)
			if err != nil {
				t.Fatalf("local reference: %v", err)
			}
			got, err := Run(RunConfig{
				Spec:       spec,
				CkptDir:    t.TempDir(),
				FailWorker: -1,
				FailRound:  -1,
				Spawn:      goSpawner,
			})
			if err != nil {
				t.Fatalf("distributed run: %v", err)
			}
			if g, w := got.Output.String(), want.Output.String(); g != w {
				t.Errorf("distributed output diverged:\n got %s\nwant %s", g, w)
			}
			if len(got.Fragments) != len(want.Fragments) {
				t.Fatalf("fragment count %d, want %d", len(got.Fragments), len(want.Fragments))
			}
			for i := range want.Fragments {
				if !got.Fragments[i].Equal(want.Fragments[i]) {
					t.Errorf("worker %d final fragment diverged from server %d", i, i)
				}
			}
			if got.Trace != want.Trace {
				t.Errorf("distributed logical trace diverged:\n got %q\nwant %q", got.Trace, want.Trace)
			}
			if got.MaxLoad != want.MaxLoad || got.TotalComm != want.TotalComm ||
				got.DeltaComm != want.DeltaComm || got.Rounds != want.Rounds {
				t.Errorf("distributed cost metrics diverged: maxload %d/%d, total %d/%d, delta %d/%d, rounds %d/%d",
					got.MaxLoad, want.MaxLoad, got.TotalComm, want.TotalComm,
					got.DeltaComm, want.DeltaComm, got.Rounds, want.Rounds)
			}
			if got.Respawns != 0 {
				t.Errorf("fault-free run recorded %d respawns", got.Respawns)
			}
		})
	}
}

// TestWorkerSliceMatchesRoundRobin pins the initial-placement
// agreement: worker i's slice must be exactly what LoadRoundRobin
// puts on server i, or the distributed run starts from a different
// instance than the simulator.
func TestWorkerSliceMatchesRoundRobin(t *testing.T) {
	for _, spec := range specMatrix() {
		built, err := Build(spec)
		if err != nil {
			t.Fatalf("build %s: %v", spec.Program, err)
		}
		c := mpc.NewCluster(built.P)
		c.LoadRoundRobin(built.Input)
		for i := 0; i < built.P; i++ {
			if got := WorkerSlice(built.Input, built.P, i); !got.Equal(c.Server(i)) {
				t.Errorf("%s: WorkerSlice(%d) differs from LoadRoundRobin server %d", spec.Program, i, i)
			}
		}
	}
}

// TestBuildDeterministic: two Builds of the same spec must agree on
// everything observable — the property the whole runtime rests on.
func TestBuildDeterministic(t *testing.T) {
	for _, spec := range specMatrix() {
		a, err := Build(spec)
		if err != nil {
			t.Fatalf("build %s: %v", spec.Program, err)
		}
		b, err := Build(spec)
		if err != nil {
			t.Fatalf("rebuild %s: %v", spec.Program, err)
		}
		if a.P != b.P || len(a.Rounds) != len(b.Rounds) {
			t.Fatalf("%s: builds disagree on shape: p %d/%d, rounds %d/%d",
				spec.Program, a.P, b.P, len(a.Rounds), len(b.Rounds))
		}
		if !a.Input.Equal(b.Input) {
			t.Errorf("%s: builds disagree on the input instance", spec.Program)
		}
		for i := range a.Rounds {
			if a.Rounds[i].Name != b.Rounds[i].Name {
				t.Errorf("%s: round %d named %q then %q", spec.Program, i, a.Rounds[i].Name, b.Rounds[i].Name)
			}
		}
	}
}

func TestBuildRejects(t *testing.T) {
	cases := []ProgramSpec{
		{Program: "nope", P: 2, M: 10, Seed: 1},
		{Program: "tc", P: 0, M: 10, Seed: 1},
		{Program: "tc", P: 2, M: 0, Seed: 1},
	}
	for _, spec := range cases {
		if _, err := Build(spec); err == nil {
			t.Errorf("Build(%+v) accepted an invalid spec", spec)
		}
	}
}

// TestCheckpointRoundtrip pins the durable format: write, read back,
// and recover the exact state and accounting; latestCheckpoint finds
// the newest round and ignores other workers' files.
func TestCheckpointRoundtrip(t *testing.T) {
	dir := t.TempDir()
	state := rel.NewInstance()
	state.Add(rel.NewFact("E", 1, 2))
	state.Add(rel.NewFact("TC", 2, 3))
	received := []int{4, 0, 7}
	deltaSent := []int{1, 0, 2}
	for r := 0; r <= 3; r++ {
		if err := writeCheckpoint(dir, 2, r, received, deltaSent, state); err != nil {
			t.Fatalf("write round %d: %v", r, err)
		}
	}
	if err := writeCheckpoint(dir, 1, 9, nil, nil, rel.NewInstance()); err != nil {
		t.Fatal(err)
	}

	if got := latestCheckpoint(dir, 2); got != 3 {
		t.Errorf("latestCheckpoint = %d, want 3", got)
	}
	if got := latestCheckpoint(dir, 0); got != -1 {
		t.Errorf("latestCheckpoint for a fresh worker = %d, want -1", got)
	}

	ck, recovered, err := readCheckpoint(dir, 2, 3)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if ck.Round != 3 {
		t.Errorf("recovered round %d, want 3", ck.Round)
	}
	if !recovered.Equal(state) {
		t.Errorf("recovered state %v, want %v", recovered, state)
	}
	for i := range received {
		if ck.Received[i] != received[i] || ck.DeltaSent[i] != deltaSent[i] {
			t.Fatalf("recovered accounting %v/%v, want %v/%v", ck.Received, ck.DeltaSent, received, deltaSent)
		}
	}
}

// TestCheckpointGC: GC removes exactly this worker's rounds below the
// keep bound, recovery still works from the retained set, and other
// workers' checkpoints are untouched.
func TestCheckpointGC(t *testing.T) {
	dir := t.TempDir()
	state := rel.NewInstance()
	state.Add(rel.NewFact("E", 1, 2))
	for r := 0; r <= 3; r++ {
		if err := writeCheckpoint(dir, 0, r, []int{1}, []int{0}, state); err != nil {
			t.Fatal(err)
		}
	}
	if err := writeCheckpoint(dir, 1, 0, nil, nil, rel.NewInstance()); err != nil {
		t.Fatal(err)
	}

	gcCheckpoints(dir, 0, 2)

	if got := latestCheckpoint(dir, 0); got != 3 {
		t.Errorf("latestCheckpoint after GC = %d, want 3", got)
	}
	// The resume path (latest−1 = 2) must still recover.
	ck, recovered, err := readCheckpoint(dir, 0, 2)
	if err != nil {
		t.Fatalf("retained checkpoint unreadable after GC: %v", err)
	}
	if ck.Round != 2 || !recovered.Equal(state) {
		t.Errorf("recovery after GC diverged: round %d, state %v", ck.Round, recovered)
	}
	for _, r := range []int{0, 1} {
		if _, _, err := readCheckpoint(dir, 0, r); err == nil {
			t.Errorf("round %d checkpoint survived GC", r)
		}
	}
	if got := latestCheckpoint(dir, 1); got != 0 {
		t.Errorf("GC touched another worker's checkpoints (latest now %d)", got)
	}
}

// TestDistributedRunGCsCheckpoints: a completed run leaves each worker
// with at most the two newest checkpoints on disk — the bounded
// footprint the GC promises — while the run's output still matches
// the simulator (checked by TestDistributedMatchesLocal; here we only
// pin the disk state).
func TestDistributedRunGCsCheckpoints(t *testing.T) {
	spec := ProgramSpec{Program: "cascade", P: 4, M: 24, Seed: 11}
	dir := t.TempDir()
	if _, err := Run(RunConfig{Spec: spec, CkptDir: dir, FailWorker: -1, FailRound: -1, Spawn: goSpawner}); err != nil {
		t.Fatal(err)
	}
	built, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	last := len(built.Rounds) - 1
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	perWorker := map[int][]int{}
	for _, e := range entries {
		var idx, round int
		if _, err := fmt.Sscanf(e.Name(), "worker-%d-round-%d.ckpt", &idx, &round); err != nil {
			continue
		}
		perWorker[idx] = append(perWorker[idx], round)
	}
	if len(perWorker) != built.P {
		t.Fatalf("checkpoints for %d workers, want %d", len(perWorker), built.P)
	}
	for idx, rounds := range perWorker {
		if len(rounds) > 2 {
			t.Errorf("worker %d retains %d checkpoints %v, want at most 2", idx, len(rounds), rounds)
		}
		for _, r := range rounds {
			if r < last-1 {
				t.Errorf("worker %d retains unreachable round %d (last round is %d)", idx, r, last)
			}
		}
	}
}

// TestTCStepsUnrollsToFixpoint: the unrolled program must actually
// reach the transitive closure — no round short of the fixpoint.
func TestTCStepsUnrollsToFixpoint(t *testing.T) {
	spec := ProgramSpec{Program: "tc", P: 3, M: 10, Seed: 7}
	built, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLocal(spec)
	if err != nil {
		t.Fatal(err)
	}
	// One more global step must be a no-op.
	again := tcCompute(0, res.Output)
	if again.Len() != res.Output.Len() {
		t.Errorf("program of %d rounds stopped short of the fixpoint", len(built.Rounds))
	}
	if tc := res.Output.Relation("TC"); tc == nil || tc.Len() == 0 {
		t.Errorf("transitive closure is empty")
	}
}
