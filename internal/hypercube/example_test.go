package hypercube_test

import (
	"fmt"

	"mpclogic/internal/cq"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// Example 3.2 of the paper: optimal shares for the triangle query on
// p = 64 servers are p^{1/3} = 4 per variable, and each R-fact is
// replicated α_z = 4 times.
func ExampleOptimalShares() {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	shares, t, _ := hypercube.OptimalShares(q, 64)
	g, _ := hypercube.NewGrid(q, shares, 0)
	fmt.Printf("shares x=%d y=%d z=%d, load exponent %.3f, R replicated %d×\n",
		shares["x"], shares["y"], shares["z"], t, g.ReplicationOf(q.Body[0]))
	// Output: shares x=4 y=4 z=4, load exponent 0.667, R replicated 4×
}

// A full one-round HyperCube evaluation on the MPC simulator.
func ExampleHyperCubeRound() {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	g, _ := hypercube.NewOptimalGrid(q, 27, 1)
	c := mpc.NewCluster(g.P())
	c.LoadRoundRobin(workload.TriangleSkewFree(100))
	_ = c.Run(hypercube.HyperCubeRound(g))
	fmt.Println("rounds:", c.Rounds(), "triangles:", c.Output().Len())
	// Output: rounds: 1 triangles: 100
}
