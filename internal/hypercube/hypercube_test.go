package hypercube

import (
	"math"
	"math/rand"
	"testing"

	"mpclogic/internal/cq"
	"mpclogic/internal/mpc"
	"mpclogic/internal/pc"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

func triangleQuery(d *rel.Dict) *cq.CQ {
	return cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
}

func joinQuery(d *rel.Dict) *cq.CQ {
	return cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
}

// runRound loads the instance round-robin, runs the round, and returns
// the cluster.
func runRound(t *testing.T, p int, i *rel.Instance, r mpc.Round) *mpc.Cluster {
	t.Helper()
	c := mpc.NewCluster(p)
	c.LoadRoundRobin(i)
	if err := c.Run(r); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOptimalSharesTriangle(t *testing.T) {
	d := rel.NewDict()
	q := triangleQuery(d)
	shares, tExp, err := OptimalShares(q, 64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tExp-2.0/3.0) > 1e-6 {
		t.Errorf("load exponent = %v, want 2/3", tExp)
	}
	prod := 1
	for v, s := range shares {
		if s != 4 {
			t.Errorf("share of %s = %d, want 4 (= 64^{1/3})", v, s)
		}
		prod *= s
	}
	if prod > 64 {
		t.Errorf("share product %d exceeds p", prod)
	}
}

func TestOptimalSharesJoin(t *testing.T) {
	d := rel.NewDict()
	q := joinQuery(d)
	shares, tExp, err := OptimalShares(q, 16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tExp-1) > 1e-6 {
		t.Errorf("join load exponent = %v, want 1", tExp)
	}
	// All budget should go to the shared variable y.
	if shares["y"] != 16 || shares["x"] != 1 || shares["z"] != 1 {
		t.Errorf("shares = %v, want all on y", shares)
	}
}

func TestGridGeometry(t *testing.T) {
	d := rel.NewDict()
	q := triangleQuery(d)
	g, err := NewGrid(q, map[string]int{"x": 2, "y": 3, "z": 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.P() != 24 {
		t.Fatalf("P = %d", g.P())
	}
	// Coord/server round trip.
	for s := 0; s < g.P(); s++ {
		c := g.Coord(s)
		if got := g.server(c); got != s {
			t.Errorf("coord round trip %d → %v → %d", s, c, got)
		}
		for i, ci := range c {
			if ci < 0 || ci >= g.Shares[i] {
				t.Errorf("coordinate out of range: %v", c)
			}
		}
	}
}

func TestGridReplication(t *testing.T) {
	d := rel.NewDict()
	q := triangleQuery(d)
	g, err := NewGrid(q, map[string]int{"x": 4, "y": 4, "z": 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Example 3.2: each R(a,b) is replicated α_z = 4 times.
	f := rel.NewFact("R", 10, 20)
	ts := g.Targets(f)
	if len(ts) != 4 {
		t.Errorf("R fact fanout = %d, want 4", len(ts))
	}
	if g.ReplicationOf(q.Body[0]) != 4 {
		t.Errorf("ReplicationOf(R) = %d", g.ReplicationOf(q.Body[0]))
	}
	// All targets share the x and y coordinates.
	c0 := g.Coord(ts[0])
	for _, s := range ts[1:] {
		c := g.Coord(s)
		if c[g.dims["x"]] != c0[g.dims["x"]] || c[g.dims["y"]] != c0[g.dims["y"]] {
			t.Errorf("R targets disagree on bound dims: %v vs %v", c0, c)
		}
	}
}

// The defining property of the HyperCube distribution: for every
// valuation, the three facts it requires meet at exactly one server.
func TestGridValuationsMeet(t *testing.T) {
	d := rel.NewDict()
	q := triangleQuery(d)
	g, err := NewGrid(q, map[string]int{"x": 2, "y": 2, "z": 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for a := rel.Value(0); a < 4; a++ {
		for b := rel.Value(0); b < 4; b++ {
			for c := rel.Value(0); c < 4; c++ {
				facts := []rel.Fact{
					rel.NewFact("R", a, b),
					rel.NewFact("S", b, c),
					rel.NewFact("T", c, a),
				}
				common := map[int]int{}
				for _, f := range facts {
					for _, s := range g.Targets(f) {
						common[s]++
					}
				}
				meet := 0
				for _, n := range common {
					if n == 3 {
						meet++
					}
				}
				if meet != 1 {
					t.Fatalf("valuation (%d,%d,%d) meets at %d servers, want 1", a, b, c, meet)
				}
			}
		}
	}
}

// HyperCube grids strongly saturate their query (remark after
// Definition 4.7), for any shares and hash functions.
func TestGridStronglySaturates(t *testing.T) {
	d := rel.NewDict()
	q := triangleQuery(d)
	for _, shares := range []map[string]int{
		{"x": 2, "y": 2, "z": 2},
		{"x": 1, "y": 3, "z": 2},
		{"x": 4, "y": 1, "z": 1},
	} {
		g, err := NewGrid(q, shares, 11)
		if err != nil {
			t.Fatal(err)
		}
		ok, w, err := pc.StronglySaturates(q, g, []rel.Value{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("grid %v does not strongly saturate: %v", shares, w)
		}
	}
}

func TestHyperCubeCorrectness(t *testing.T) {
	d := rel.NewDict()
	q := triangleQuery(d)
	for _, m := range []int{0, 1, 50} {
		inst := workload.TriangleSkewFree(m)
		// Mix in extra noise edges that close no triangle.
		inst.Add(rel.NewFact("R", 1, 2))
		inst.Add(rel.NewFact("S", 3, 4))
		want := cq.Output(q, inst)

		g, err := NewOptimalGrid(q, 27, 5)
		if err != nil {
			t.Fatal(err)
		}
		c := runRound(t, g.P(), inst, HyperCubeRound(g))
		if !c.Output().Equal(want) {
			t.Errorf("m=%d: hypercube output differs from centralized", m)
		}
	}
}

func TestHyperCubeSelfJoinAndConstants(t *testing.T) {
	d := rel.NewDict()
	// Self-join: both atoms are E; facts must be routed for both roles.
	q := cq.MustParse(d, "H(x, z) :- E(x, y), E(y, z)")
	inst := workload.PathGraph(30)
	want := cq.Output(q, inst)
	g, err := NewOptimalGrid(q, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	c := runRound(t, g.P(), inst, HyperCubeRound(g))
	if !c.Output().Equal(want) {
		t.Errorf("self-join hypercube incorrect")
	}

	// Constants: only matching facts should travel.
	q2 := cq.MustParse(d, "H(x) :- E(5, x)")
	g2, err := NewOptimalGrid(q2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g2.Targets(rel.NewFact("E", 6, 7))); got != 0 {
		t.Errorf("non-matching fact routed to %d servers", got)
	}
	c2 := runRound(t, g2.P(), inst, HyperCubeRound(g2))
	if !c2.Output().Equal(cq.Output(q2, inst)) {
		t.Errorf("constant-query hypercube incorrect")
	}
}

func TestRepartitionJoinCorrectness(t *testing.T) {
	d := rel.NewDict()
	q := joinQuery(d)
	inst := workload.JoinSkewed(200, 0.3)
	want := cq.Output(q, inst)
	r, err := RepartitionJoin(q, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := runRound(t, 8, inst, r)
	if !c.Output().Equal(want) {
		t.Errorf("repartition join incorrect")
	}
}

func TestGroupingJoinCorrectness(t *testing.T) {
	d := rel.NewDict()
	q := joinQuery(d)
	inst := workload.JoinSkewed(200, 0.5)
	want := cq.Output(q, inst)
	r, err := GroupingJoin(q, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := runRound(t, 16, inst, r)
	if !c.Output().Equal(want) {
		t.Errorf("grouping join incorrect")
	}
}

func TestSkewAwareJoinCorrectness(t *testing.T) {
	d := rel.NewDict()
	q := joinQuery(d)
	m := 300
	inst := workload.JoinSkewed(m, 0.4)
	heavy := rel.NewValueSet(workload.HeavyHitters(inst, "R", 1, m/16)...)
	if len(heavy) == 0 {
		t.Fatal("expected heavy hitters in workload")
	}
	want := cq.Output(q, inst)
	r, err := SkewAwareJoin(q, 16, heavy, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := runRound(t, 16, inst, r)
	if !c.Output().Equal(want) {
		t.Errorf("skew-aware join incorrect")
	}
}

// Load shapes (Examples 3.1, 3.2): grouping beats repartition under
// skew; repartition beats grouping without skew; hypercube load on the
// skew-free triangle is within a small constant of 3·m/p^{2/3}.
func TestLoadShapes(t *testing.T) {
	d := rel.NewDict()
	q := joinQuery(d)
	m, p := 4000, 16
	// Loads depend only on routing; skip the (output-heavy) local join.
	noCompute := func(r mpc.Round, err error) mpc.Round {
		if err != nil {
			t.Fatal(err)
		}
		r.Compute = nil
		return r
	}

	skewed := workload.JoinSkewed(m, 0.5)
	rep := noCompute(RepartitionJoin(q, p, 3))
	grp := noCompute(GroupingJoin(q, p, 3))
	repLoad := runRound(t, p, skewed, rep).MaxLoad()
	grpLoad := runRound(t, p, skewed, grp).MaxLoad()
	// Repartition must carry ≥ the whole heavy block (m tuples across
	// R and S) at one server; grouping stays near 2m/√p.
	if repLoad < m {
		t.Errorf("repartition load %d under 50%% skew; expected ≥ m=%d", repLoad, m)
	}
	if grpLoad >= repLoad/2 {
		t.Errorf("grouping load %d not clearly better than repartition %d", grpLoad, repLoad)
	}
	ideal := 2 * m / int(math.Sqrt(float64(p)))
	if grpLoad > 2*ideal {
		t.Errorf("grouping load %d far above 2m/√p = %d", grpLoad, ideal)
	}

	// Skew-free: repartition ≈ 2m/p.
	free := workload.JoinSkewFree(m)
	repFree := runRound(t, p, free, rep).MaxLoad()
	if repFree > 3*2*m/p {
		t.Errorf("skew-free repartition load %d far above 2m/p = %d", repFree, 2*m/p)
	}

	// HyperCube triangle.
	tri := triangleQuery(d)
	g, err := NewOptimalGrid(tri, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	triInst := workload.TriangleSkewFree(m)
	hcRound := HyperCubeRound(g)
	hcRound.Compute = nil
	hcLoad := runRound(t, g.P(), triInst, hcRound).MaxLoad()
	bound := 3.0 * float64(m) / math.Pow(64, 2.0/3.0)
	if float64(hcLoad) > 2.5*bound {
		t.Errorf("hypercube load %d far above 3m/p^{2/3} = %.0f", hcLoad, bound)
	}
}

func TestAnalyzeBinaryJoinErrors(t *testing.T) {
	d := rel.NewDict()
	if _, err := RepartitionJoin(cq.MustParse(d, "H(x) :- R(x)"), 4, 0); err == nil {
		t.Errorf("single-atom query accepted")
	}
	if _, err := RepartitionJoin(cq.MustParse(d, "H(x, z) :- R(x, y), R(y, z)"), 4, 0); err == nil {
		t.Errorf("self-join accepted by relation-routed join")
	}
	if _, err := GroupingJoin(cq.MustParse(d, "H(x, y) :- R(x), S(y)"), 4, 0); err == nil {
		t.Errorf("cross product accepted")
	}
	if _, err := NewGrid(cq.MustParse(d, "H(x) :- R(x), not S(x)"), nil, 0); err == nil {
		t.Errorf("CQ¬ accepted by grid")
	}
}

func TestOptimalSharesEdgeCases(t *testing.T) {
	d := rel.NewDict()
	q := triangleQuery(d)
	// p = 1: all shares 1.
	shares, _, err := OptimalShares(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range shares {
		if s != 1 {
			t.Errorf("p=1 share of %s = %d", v, s)
		}
	}
	if _, _, err := OptimalShares(q, 0); err == nil {
		t.Errorf("p=0 accepted")
	}
	// Non-perfect-power p: product must stay ≤ p.
	shares, _, err = OptimalShares(q, 50)
	if err != nil {
		t.Fatal(err)
	}
	prod := 1
	for _, s := range shares {
		prod *= s
	}
	if prod > 50 || prod < 27 {
		t.Errorf("p=50 share product %d out of [27,50]", prod)
	}
	// Single-atom query: shares spread over its variables.
	single := cq.MustParse(d, "H(x, y) :- R(x, y)")
	shares, tv, err := OptimalShares(single, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tv < 0.99 {
		t.Errorf("single-atom load exponent %v", tv)
	}
	prod = 1
	for _, s := range shares {
		prod *= s
	}
	if prod > 16 {
		t.Errorf("share product %d > p", prod)
	}
}

func TestGridNullaryAndUnary(t *testing.T) {
	d := rel.NewDict()
	// Unary atoms bind a single dimension.
	q := cq.MustParse(d, "H(x) :- R(x), S(x)")
	g, err := NewGrid(q, map[string]int{"x": 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	fR := rel.NewFact("R", 9)
	fS := rel.NewFact("S", 9)
	tr, ts := g.Targets(fR), g.Targets(fS)
	if len(tr) != 1 || len(ts) != 1 || tr[0] != ts[0] {
		t.Errorf("unary facts with equal values should co-locate: %v vs %v", tr, ts)
	}
	inst := rel.MustInstance(d, "R(1)", "S(1)", "R(2)", "S(3)")
	c := runRound(t, g.P(), inst, HyperCubeRound(g))
	if !c.Output().Equal(cq.Output(q, inst)) {
		t.Errorf("unary hypercube wrong")
	}
}

// Property: for random facts and shares, Targets is deterministic,
// sorted, in range, and consistent with Responsible.
func TestPropGridTargetsWellFormed(t *testing.T) {
	d := rel.NewDict()
	q := triangleQuery(d)
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		shares := map[string]int{
			"x": 1 + r.Intn(4),
			"y": 1 + r.Intn(4),
			"z": 1 + r.Intn(4),
		}
		g, err := NewGrid(q, shares, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 20; k++ {
			f := rel.NewFact([]string{"R", "S", "T"}[r.Intn(3)],
				rel.Value(r.Intn(50)), rel.Value(r.Intn(50)))
			ts := g.Targets(f)
			for i, s := range ts {
				if s < 0 || s >= g.P() {
					t.Fatalf("target %d out of range", s)
				}
				if i > 0 && ts[i-1] >= s {
					t.Fatalf("targets not strictly sorted: %v", ts)
				}
				if !g.Responsible(policy.Node(s), f) {
					t.Fatalf("Responsible disagrees with Targets")
				}
			}
			ts2 := g.Targets(f)
			if len(ts) != len(ts2) {
				t.Fatalf("nondeterministic targets")
			}
		}
	}
}
