package hypercube

import (
	"fmt"
	"math"

	"mpclogic/internal/cq"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
)

// This file packages the paper's single-round algorithms as MPC rounds.

// binaryJoin captures the routing geometry of a two-atom join query:
// which tuple positions of each relation carry the shared variables.
type binaryJoin struct {
	q            *cq.CQ
	left, right  cq.Atom
	lCols, rCols []int // positions of the shared variables
}

func analyzeBinaryJoin(q *cq.CQ) (*binaryJoin, error) {
	if len(q.Body) != 2 || q.HasNegation() {
		return nil, fmt.Errorf("hypercube: expected a two-atom positive query, got %v", q)
	}
	l, r := q.Body[0], q.Body[1]
	if l.Rel == r.Rel {
		return nil, fmt.Errorf("hypercube: self-join %s cannot be routed by relation name", l.Rel)
	}
	lPos := map[string]int{}
	for i, t := range l.Args {
		if t.IsVar() {
			if _, ok := lPos[t.Var]; !ok {
				lPos[t.Var] = i
			}
		}
	}
	b := &binaryJoin{q: q, left: l, right: r}
	seen := map[string]bool{}
	for i, t := range r.Args {
		if !t.IsVar() || seen[t.Var] {
			continue
		}
		if li, ok := lPos[t.Var]; ok {
			seen[t.Var] = true
			b.lCols = append(b.lCols, li)
			b.rCols = append(b.rCols, i)
		}
	}
	if len(b.lCols) == 0 {
		return nil, fmt.Errorf("hypercube: atoms of %v share no variables (cross product)", q)
	}
	return b, nil
}

// evalCompute evaluates q at each server.
func evalCompute(q *cq.CQ) mpc.Compute {
	return func(_ int, local *rel.Instance) *rel.Instance {
		return cq.Output(q, local)
	}
}

// RepartitionJoin is Example 3.1(1a): hash both relations on the
// shared variables to one of p servers and join locally. Load is
// O(m/p) without skew but degrades to Θ(m) when a join value is heavy.
func RepartitionJoin(q *cq.CQ, p int, seed uint64) (mpc.Round, error) {
	b, err := analyzeBinaryJoin(q)
	if err != nil {
		return mpc.Round{}, err
	}
	route := mpc.ByRelation(map[string]mpc.Router{
		b.left.Rel:  mpc.HashOn(p, b.lCols, seed),
		b.right.Rel: mpc.HashOn(p, b.rCols, seed),
	})
	return mpc.Round{Name: "repartition-join", Route: route, Compute: evalCompute(q)}, nil
}

// GroupingJoin is Example 3.1(1b) (Ullman's drug-interaction
// strategy): split R and S into g = ⌊√p⌋ groups by tuple hash and send
// each (R-group, S-group) pair to its own server. The load per server
// is O(m/√p) regardless of skew, because the grouping ignores values
// entirely.
func GroupingJoin(q *cq.CQ, p int, seed uint64) (mpc.Round, error) {
	b, err := analyzeBinaryJoin(q)
	if err != nil {
		return mpc.Round{}, err
	}
	g := int(math.Sqrt(float64(p)))
	if g < 1 {
		g = 1
	}
	lRel, rRel := b.left.Rel, b.right.Rel
	route := mpc.RouterFunc(func(f rel.Fact) []int {
		switch f.Rel {
		case lRel:
			i := int((f.Tuple.Hash() ^ seed) % uint64(g))
			out := make([]int, g)
			for j := 0; j < g; j++ {
				out[j] = i*g + j
			}
			return out
		case rRel:
			j := int((f.Tuple.Hash() ^ seed) % uint64(g))
			out := make([]int, g)
			for i := 0; i < g; i++ {
				out[i] = i*g + j
			}
			return out
		}
		return nil
	})
	return mpc.Round{Name: "grouping-join", Route: route, Compute: evalCompute(q)}, nil
}

// HyperCubeRound wraps a share grid into a one-round MPC algorithm:
// route by the grid, evaluate the query locally (Example 3.2).
func HyperCubeRound(g *Grid) mpc.Round {
	return mpc.Round{Name: "hypercube " + g.String(), Route: g, Compute: evalCompute(g.Query)}
}

// SkewAwareJoin is a SharesSkew-style binary join: join values that
// are heavy hitters (declared by the caller, e.g. frequency > m/p) are
// routed with the value-oblivious grouping strategy while light values
// use plain repartition. Load is O(m/√p) even under skew, O(m/p) on
// the light part.
func SkewAwareJoin(q *cq.CQ, p int, heavy rel.ValueSet, seed uint64) (mpc.Round, error) {
	b, err := analyzeBinaryJoin(q)
	if err != nil {
		return mpc.Round{}, err
	}
	g := int(math.Sqrt(float64(p)))
	if g < 1 {
		g = 1
	}
	lRel, rRel := b.left.Rel, b.right.Rel
	lCols, rCols := b.lCols, b.rCols
	route := mpc.RouterFunc(func(f rel.Fact) []int {
		var key rel.Tuple
		isLeft := false
		switch f.Rel {
		case lRel:
			key = f.Tuple.Project(lCols)
			isLeft = true
		case rRel:
			key = f.Tuple.Project(rCols)
		default:
			return nil
		}
		isHeavy := false
		for _, v := range key {
			if heavy.Contains(v) {
				isHeavy = true
				break
			}
		}
		if !isHeavy {
			return []int{int((key.Hash() ^ seed) % uint64(p))}
		}
		if isLeft {
			i := int((f.Tuple.Hash() ^ seed) % uint64(g))
			out := make([]int, g)
			for j := 0; j < g; j++ {
				out[j] = i*g + j
			}
			return out
		}
		j := int((f.Tuple.Hash() ^ seed) % uint64(g))
		out := make([]int, g)
		for i := 0; i < g; i++ {
			out[i] = i*g + j
		}
		return out
	})
	return mpc.Round{Name: "skew-aware-join", Route: route, Compute: evalCompute(q)}, nil
}
