package hypercube

import (
	"fmt"
	"math"
	"sort"

	"mpclogic/internal/cq"
)

// This file computes integer share allocations. The exponent LP (in
// internal/cq) gives the optimal real exponents e_x with α_x = p^{e_x};
// here we round to integers with Π α_x ≤ p, then greedily spend the
// remaining budget on the dimension that most improves the bottleneck
// atom — the atom whose servers receive the most tuples.

// OptimalShares computes an integer share per variable for evaluating
// q on (at most) p servers, using the share-exponent LP and greedy
// repair. It also returns the LP's load exponent t (load ≈ m/p^t with
// equal relation sizes and no skew).
func OptimalShares(q *cq.CQ, p int) (map[string]int, float64, error) {
	if p < 1 {
		return nil, 0, fmt.Errorf("hypercube: p must be positive")
	}
	exps, t, err := cq.ShareExponents(q)
	if err != nil {
		return nil, 0, err
	}
	shares := make(map[string]int, len(exps))
	prod := 1
	for v, e := range exps {
		s := int(math.Floor(math.Pow(float64(p), e) + 1e-9))
		if s < 1 {
			s = 1
		}
		shares[v] = s
		prod *= s
	}
	// Floor rounding can overshoot p only by float slop; repair down.
	for prod > p {
		v := largestShareVar(shares)
		if shares[v] == 1 {
			break
		}
		prod = prod / shares[v] * (shares[v] - 1)
		shares[v]--
	}
	// Greedy: spend leftover budget on the variable whose increment
	// best reduces the bottleneck load. Candidates are visited in
	// sorted order so ties break by variable name, not map iteration
	// order — with a symmetric query and a leftover factor, the
	// winning variable (and hence the measured load on skewed data)
	// would otherwise differ from run to run.
	vars := make([]string, 0, len(shares))
	for v := range shares {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for {
		bestVar := ""
		bestLoad := math.Inf(1)
		for _, v := range vars {
			if prod/shares[v]*(shares[v]+1) > p {
				continue
			}
			shares[v]++
			if l := loadScore(q, shares); l < bestLoad {
				bestLoad = l
				bestVar = v
			}
			shares[v]--
		}
		if bestVar == "" {
			break
		}
		prod = prod / shares[bestVar] * (shares[bestVar] + 1)
		shares[bestVar]++
	}
	return shares, t, nil
}

// loadScore estimates the per-server load for unit relation sizes:
// the maximum over atoms of 1/Π_{x ∈ atom} α_x.
func loadScore(q *cq.CQ, shares map[string]int) float64 {
	worst := 0.0
	for _, a := range q.Body {
		denom := 1.0
		for _, v := range a.Vars() {
			denom *= float64(shares[v])
		}
		if l := 1 / denom; l > worst {
			worst = l
		}
	}
	return worst
}

func largestShareVar(shares map[string]int) string {
	best, bestS := "", 0
	for v, s := range shares {
		if s > bestS || (s == bestS && v < best) || best == "" {
			best, bestS = v, s
		}
	}
	return best
}

// NewOptimalGrid builds a grid for q using OptimalShares on p servers.
func NewOptimalGrid(q *cq.CQ, p int, seed uint64) (*Grid, error) {
	shares, _, err := OptimalShares(q, p)
	if err != nil {
		return nil, err
	}
	return NewGrid(q, shares, seed)
}
