// Package hypercube implements the single-round MPC algorithms of
// Section 3.1 of Neven (PODS 2016): the repartition join and grouping
// join of Example 3.1, and the Shares/HyperCube algorithm of
// Afrati-Ullman and Beame-Koutris-Suciu (Example 3.2), including share
// optimization from the fractional-edge-packing LP and a heavy-hitter
// aware variant in the spirit of SharesSkew.
package hypercube

import (
	"fmt"
	"sort"

	"mpclogic/internal/cq"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// Grid is a HyperCube share grid for a conjunctive query: every server
// is a point in the grid [0,Shares[0]) × … × [0,Shares[k-1]), one
// dimension per query variable. A fact matching a body atom is
// replicated to every grid point consistent with hashing the values
// bound to the atom's variables.
type Grid struct {
	Query  *cq.CQ
	Vars   []string // grid dimensions, sorted for determinism
	Shares []int    // share per dimension, parallel to Vars
	Seed   uint64

	dims   map[string]int // variable → dimension index
	stride []int          // mixed-radix strides for server ids
	p      int            // total servers = Π Shares
}

// NewGrid builds a grid with explicit shares, given per variable.
// Missing variables default to share 1.
func NewGrid(q *cq.CQ, shares map[string]int, seed uint64) (*Grid, error) {
	if q.HasNegation() {
		return nil, fmt.Errorf("hypercube: CQ¬ not supported by single-round HyperCube")
	}
	g := &Grid{Query: q, Seed: seed, dims: map[string]int{}}
	vars := varsOfBody(q)
	sort.Strings(vars)
	g.Vars = vars
	g.Shares = make([]int, len(vars))
	for i, v := range vars {
		s := shares[v]
		if s <= 0 {
			s = 1
		}
		g.Shares[i] = s
		g.dims[v] = i
	}
	g.stride = make([]int, len(vars))
	p := 1
	for i := len(vars) - 1; i >= 0; i-- {
		g.stride[i] = p
		p *= g.Shares[i]
	}
	g.p = p
	return g, nil
}

// varsOfBody returns the distinct variables of the positive body.
func varsOfBody(q *cq.CQ) []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range q.Body {
		for _, v := range a.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// P returns the number of servers the grid uses (the product of the
// shares).
func (g *Grid) P() int { return g.p }

// hash maps a value to a coordinate in dimension dim. The dimension
// index and seed are folded in before a final avalanche so that the
// per-dimension hash functions behave independently.
func (g *Grid) hash(dim int, v rel.Value) int {
	h := rel.Mix64((rel.Tuple{v}).Hash() ^ g.Seed ^ (uint64(dim+1) * 0x9e3779b97f4a7c15))
	return int(h % uint64(g.Shares[dim]))
}

// server converts a full coordinate vector to a server id.
func (g *Grid) server(coord []int) int {
	id := 0
	for i, c := range coord {
		id += c * g.stride[i]
	}
	return id
}

// Coord converts a server id back to its grid coordinates.
func (g *Grid) Coord(server int) []int {
	out := make([]int, len(g.Shares))
	for i := range g.Shares {
		out[i] = server / g.stride[i] % g.Shares[i]
	}
	return out
}

// Targets returns the destination servers for a fact: the union over
// all body atoms of the fact's relation of the grid points consistent
// with the hashed bindings. Facts that match no atom (wrong relation,
// constant mismatch, repeated-variable mismatch) go nowhere.
// Targets is called concurrently by the MPC communication phase, so it
// keeps no scratch state on the grid. enumerate emits server ids of one
// atom in ascending order (lexicographic coordinates are numeric order
// in the mixed-radix id scheme), so a sort and dedup pass is needed
// only when several atoms match the fact.
func (g *Grid) Targets(f rel.Fact) []int {
	var out []int
	atoms := 0
	for _, a := range g.Query.Body {
		if a.Rel != f.Rel || len(a.Args) != len(f.Tuple) {
			continue
		}
		fixed, ok := g.atomBinding(a, f)
		if !ok {
			continue
		}
		atoms++
		if out == nil {
			n := 1
			for dim, c := range fixed {
				if c < 0 {
					n *= g.Shares[dim]
				}
			}
			out = make([]int, 0, n)
		}
		g.enumerate(fixed, func(server int) {
			out = append(out, server)
		})
	}
	if atoms > 1 {
		sort.Ints(out)
		n := 0
		for i, s := range out {
			if i > 0 && s == out[n-1] {
				continue
			}
			out[n] = s
			n++
		}
		out = out[:n]
	}
	return out
}

// atomBinding matches f against atom a, returning per-dimension fixed
// coordinates (-1 = free) or ok=false when the fact cannot instantiate
// the atom.
func (g *Grid) atomBinding(a cq.Atom, f rel.Fact) ([]int, bool) {
	fixed := make([]int, len(g.Shares))
	for i := range fixed {
		fixed[i] = -1
	}
	for i, t := range a.Args {
		v := f.Tuple[i]
		if !t.IsVar() {
			if t.Const != v {
				return nil, false
			}
			continue
		}
		// Atom arities are tiny, so scanning for the variable's first
		// occurrence beats allocating a per-fact binding map.
		first := i
		for j := 0; j < i; j++ {
			if a.Args[j].IsVar() && a.Args[j].Var == t.Var {
				first = j
				break
			}
		}
		if first < i {
			if f.Tuple[first] != v {
				return nil, false
			}
			continue
		}
		dim := g.dims[t.Var]
		fixed[dim] = g.hash(dim, v)
	}
	return fixed, true
}

// enumerate calls fn with every server id matching the fixed
// coordinates (free dimensions range over their full share).
func (g *Grid) enumerate(fixed []int, fn func(int)) {
	coord := make([]int, len(fixed))
	var rec func(dim int)
	rec = func(dim int) {
		if dim == len(fixed) {
			fn(g.server(coord))
			return
		}
		if fixed[dim] >= 0 {
			coord[dim] = fixed[dim]
			rec(dim + 1)
			return
		}
		for c := 0; c < g.Shares[dim]; c++ {
			coord[dim] = c
			rec(dim + 1)
		}
	}
	rec(0)
}

// Route implements mpc.Router.
func (g *Grid) Route(f rel.Fact) []int { return g.Targets(f) }

// NumNodes implements policy.Policy.
func (g *Grid) NumNodes() int { return g.p }

// NodesFor implements policy.Policy.
func (g *Grid) NodesFor(f rel.Fact) []policy.Node {
	ts := g.Targets(f)
	out := make([]policy.Node, len(ts))
	for i, t := range ts {
		out[i] = policy.Node(t)
	}
	return out
}

// Responsible implements policy.Policy.
func (g *Grid) Responsible(κ policy.Node, f rel.Fact) bool {
	for _, t := range g.Targets(f) {
		if policy.Node(t) == κ {
			return true
		}
	}
	return false
}

// ReplicationOf returns how many servers a fact of the given atom is
// replicated to: the product of shares of the dimensions the atom does
// not bind (e.g. α_z for R(x,y) in the triangle grid of Example 3.2).
func (g *Grid) ReplicationOf(a cq.Atom) int {
	boundDims := map[int]bool{}
	for _, v := range a.Vars() {
		boundDims[g.dims[v]] = true
	}
	r := 1
	for i, s := range g.Shares {
		if !boundDims[i] {
			r *= s
		}
	}
	return r
}

func (g *Grid) String() string {
	var b []byte
	b = append(b, "hypercube["...)
	for i, v := range g.Vars {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, fmt.Sprintf("%s:%d", v, g.Shares[i])...)
	}
	b = append(b, ']')
	return string(b)
}
