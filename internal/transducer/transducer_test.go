package transducer

import (
	"errors"
	"testing"

	"mpclogic/internal/cq"
	"mpclogic/internal/pc"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// triangles is the monotone triangle query of Example 5.1(1).
func triangles(d *rel.Dict) Query {
	q := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), E(z, x), x != y, y != z, z != x")
	return func(i *rel.Instance) *rel.Instance { return cq.Output(q, i) }
}

// openTriangles is the non-monotone query of Example 5.1(2).
func openTriangles(d *rel.Dict) Query {
	q := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), not E(z, x)")
	return func(i *rel.Instance) *rel.Instance { return cq.Output(q, i) }
}

// hashParts distributes an instance over p nodes by fact hash.
func hashParts(i *rel.Instance, p int) []*rel.Instance {
	pol := &policy.Hash{Nodes: p}
	return policy.Distribute(pol, i)
}

// Example 5.1(1): the naive broadcast program computes the triangle
// query on every network size, distribution, and message schedule.
func TestExample51MonotoneBroadcast(t *testing.T) {
	d := rel.NewDict()
	q := triangles(d)
	g := workload.RandomGraph(12, 30, 3)
	want := q(g)
	for _, p := range []int{1, 2, 5} {
		for seed := int64(0); seed < 5; seed++ {
			n := New(p, func() Program { return &MonotoneBroadcast{Q: q} }, WithSeed(seed))
			if err := n.LoadParts(hashParts(g, p)); err != nil {
				t.Fatal(err)
			}
			if _, err := n.Run(); err != nil {
				t.Fatal(err)
			}
			if !n.Output().Equal(want) {
				t.Fatalf("p=%d seed=%d: output %d facts, want %d", p, seed, n.Output().Len(), want.Len())
			}
		}
	}
}

// Example 5.1(2), first half: naive broadcast is WRONG for the
// non-monotone open-triangle query — some run outputs a fact not in
// Q(I) (a node outputs an "open" triangle before the closing edge
// arrives). This is the failure CALM predicts.
func TestExample51NaiveBroadcastUnsoundForNonMonotone(t *testing.T) {
	d := rel.NewDict()
	q := openTriangles(d)
	g := rel.MustInstance(d, "E(a,b)", "E(b,c)", "E(c,a)") // closed triangle: Q(I) has no (a,b,c)
	want := q(g)
	unsound := false
	for seed := int64(0); seed < 20 && !unsound; seed++ {
		n := New(3, func() Program { return &MonotoneBroadcast{Q: q} }, WithSeed(seed))
		parts := []*rel.Instance{
			rel.MustInstance(d, "E(a,b)"),
			rel.MustInstance(d, "E(b,c)"),
			rel.MustInstance(d, "E(c,a)"),
		}
		if err := n.LoadParts(parts); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Run(); err != nil {
			t.Fatal(err)
		}
		if !n.Output().SubsetOf(want) {
			unsound = true
		}
	}
	if !unsound {
		t.Errorf("naive broadcast never produced a spurious open triangle; expected unsoundness")
	}
}

// Example 5.1(2), second half: the coordinated protocol computes the
// open-triangle query correctly on every schedule.
func TestExample51Coordinated(t *testing.T) {
	d := rel.NewDict()
	q := openTriangles(d)
	g := workload.RandomGraph(10, 25, 9)
	want := q(g)
	for _, p := range []int{2, 4} {
		for seed := int64(0); seed < 6; seed++ {
			n := New(p, func() Program { return &Coordinated{Q: q} }, WithSeed(seed))
			if err := n.LoadParts(hashParts(g, p)); err != nil {
				t.Fatal(err)
			}
			if _, err := n.Run(); err != nil {
				t.Fatal(err)
			}
			if !n.Output().Equal(want) {
				t.Fatalf("p=%d seed=%d: coordinated output wrong", p, seed)
			}
		}
	}
}

// CALM, positive direction (Theorem 5.3): the monotone program is
// coordination-free — on the ideal (fully replicated) distribution it
// computes Q without reading a single message.
func TestCALMMonotoneCoordinationFree(t *testing.T) {
	d := rel.NewDict()
	q := triangles(d)
	g := workload.RandomGraph(10, 25, 5)
	n := New(4, func() Program { return &MonotoneBroadcast{Q: q} }, WithSeed(1))
	n.LoadReplicated(g)
	stats := n.RunSilent()
	if stats.Delivered != 0 {
		t.Fatalf("silent run delivered messages")
	}
	if !n.Output().Equal(q(g)) {
		t.Errorf("monotone program needs message reads even on ideal distribution")
	}
}

// CALM, negative direction: the coordinated program for the
// non-monotone query genuinely depends on reading messages — silently
// dropping them loses output even on the replicated distribution,
// because the protocol waits for every other node's announcement.
func TestCALMCoordinatedNotCoordinationFree(t *testing.T) {
	d := rel.NewDict()
	q := openTriangles(d)
	g := rel.MustInstance(d, "E(a,b)", "E(b,c)")
	n := New(3, func() Program { return &Coordinated{Q: q} }, WithSeed(1))
	n.LoadReplicated(g)
	n.RunSilent()
	if n.Output().Equal(q(g)) {
		t.Errorf("coordinated protocol computed the query without reading messages; it should block")
	}
}

// Theorem 5.8 / Example 5.4: with a queryable total distribution
// policy, the open-triangle query becomes computable — and
// coordination-free.
func TestTheorem58OpenTriangle(t *testing.T) {
	d := rel.NewDict()
	q := openTriangles(d)
	g := workload.RandomGraph(9, 20, 11)
	want := q(g)
	p := 4
	pol := &policy.Hash{Nodes: p} // total single-node responsibility
	for seed := int64(0); seed < 6; seed++ {
		n := New(p, func() Program { return &OpenTriangle{} }, WithSeed(seed), WithPolicy(pol))
		if err := n.LoadPolicy(g, pol); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Run(); err != nil {
			t.Fatal(err)
		}
		// The program outputs H facts; Q's head is also H.
		if !n.Output().Equal(want) {
			t.Fatalf("seed %d: policy-aware open triangle wrong: got %d want %d",
				seed, n.Output().Len(), want.Len())
		}
	}

	// Coordination-freeness: ideal distribution (replication, with the
	// replicating policy) needs no reads.
	repl := &policy.Replicate{Nodes: p}
	n := New(p, func() Program { return &OpenTriangle{} }, WithSeed(1), WithPolicy(repl))
	n.LoadReplicated(g)
	n.RunSilent()
	if !n.Output().Equal(want) {
		t.Errorf("open-triangle program not coordination-free under replication")
	}
}

// The generic distinct-complete strategy: sound on every run; complete
// when some node can vouch for all absent facts (here: a policy with a
// node responsible for everything).
func TestDistinctCompleteGeneric(t *testing.T) {
	d := rel.NewDict()
	q := openTriangles(d)
	g := rel.MustInstance(d, "E(a,b)", "E(b,c)", "E(c,a)", "E(b,d)")
	want := q(g)
	schema := rel.Schema{"E": 2}
	p := 3
	// Node 0 is responsible for every fact; others for none.
	pol := &policy.Func{Nodes: p, Resp: func(κ policy.Node, _ rel.Fact) bool { return κ == 0 }}
	for seed := int64(0); seed < 5; seed++ {
		n := New(p, func() Program {
			return &DistinctComplete{Q: q, Schema: schema}
		}, WithSeed(seed), WithPolicy(pol))
		// The distribution must be consistent with the policy a node
		// vouches absence against: loc-inst of the same policy.
		if err := n.LoadPolicy(g, pol); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Run(); err != nil {
			t.Fatal(err)
		}
		out := n.Output()
		if !out.SubsetOf(want) {
			t.Fatalf("seed %d: distinct-complete emitted a spurious fact", seed)
		}
		if !want.SubsetOf(out) {
			t.Fatalf("seed %d: distinct-complete incomplete (%d vs %d)", seed, out.Len(), want.Len())
		}
	}
}

// Theorem 5.12: the domain-guided disjoint-complete strategy computes
// ¬TC (in Mdisjoint ∖ Mdistinct) on every schedule, and is
// coordination-free on the replicated distribution.
func TestTheorem512NotTC(t *testing.T) {
	q := Query(notTC)
	g := workload.ComponentsGraph(3, 3) // 3 disjoint 3-cycles
	want := q(g)
	if want.Len() == 0 {
		t.Fatal("bad test setup: ¬TC empty")
	}
	p := 4
	pol := &policy.DomainGuided{Nodes: p, DefaultWidth: 1}
	for seed := int64(0); seed < 6; seed++ {
		n := New(p, func() Program { return &DisjointComplete{Q: q} }, WithSeed(seed), WithPolicy(pol))
		if err := n.LoadPolicy(g, pol); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Run(); err != nil {
			t.Fatal(err)
		}
		if !n.Output().Equal(want) {
			t.Fatalf("seed %d: ¬TC output %d facts, want %d", seed, n.Output().Len(), want.Len())
		}
	}

	// Coordination-free: replicated + all-nodes domain assignment.
	repl := &policy.DomainGuided{Nodes: p, DefaultWidth: p}
	n := New(p, func() Program { return &DisjointComplete{Q: q} }, WithSeed(2), WithPolicy(repl))
	n.LoadReplicated(g)
	stats := n.RunSilent()
	if stats.Delivered != 0 {
		t.Fatal("silent run delivered")
	}
	if !n.Output().Equal(want) {
		t.Errorf("disjoint-complete not coordination-free under replication")
	}
}

// notTC computes the complement of the transitive closure over
// adom(I) (query Q¬TC of Example 5.6/5.10).
func notTC(i *rel.Instance) *rel.Instance {
	reach := map[[2]rel.Value]bool{}
	adom := i.ADom().Sorted()
	if e := i.Relation("E"); e != nil {
		e.Each(func(t rel.Tuple) bool {
			reach[[2]rel.Value{t[0], t[1]}] = true
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for ab := range reach {
			for _, c := range adom {
				if reach[[2]rel.Value{ab[1], c}] && !reach[[2]rel.Value{ab[0], c}] {
					reach[[2]rel.Value{ab[0], c}] = true
					changed = true
				}
			}
		}
	}
	out := rel.NewInstance()
	for _, a := range adom {
		for _, b := range adom {
			if !reach[[2]rel.Value{a, b}] {
				out.Add(rel.NewFact("NTC", a, b))
			}
		}
	}
	return out
}

// Eventual consistency: different schedules (seeds), same output.
func TestSchedulerIndependence(t *testing.T) {
	d := rel.NewDict()
	q := triangles(d)
	g := workload.RandomGraph(11, 28, 7)
	var first *rel.Instance
	for seed := int64(0); seed < 8; seed++ {
		n := New(3, func() Program { return &MonotoneBroadcast{Q: q} }, WithSeed(seed))
		if err := n.LoadParts(hashParts(g, 3)); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Run(); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = n.Output()
		} else if !n.Output().Equal(first) {
			t.Fatalf("seed %d produced different output", seed)
		}
	}
}

// Economical broadcast: on a query touching only relation E, facts of
// other relations are never shipped; output is unchanged.
func TestEconomicalBroadcast(t *testing.T) {
	d := rel.NewDict()
	q := triangles(d)
	g := workload.RandomGraph(10, 24, 13)
	// Add irrelevant ballast.
	ballast := workload.Zipf("Noise", 200, 50, 1.2, 1)
	full := g.Union(ballast)
	want := q(full)

	mkNaive := func() Program { return &MonotoneBroadcast{Q: q} }
	mkEco := func() Program {
		return &EconomicalBroadcast{Q: q, Matches: func(f rel.Fact) bool { return f.Rel == "E" }}
	}
	run := func(mk func() Program) (Stats, *rel.Instance) {
		n := New(3, mk, WithSeed(4))
		if err := n.LoadParts(hashParts(full, 3)); err != nil {
			t.Fatal(err)
		}
		st, err := n.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st, n.Output()
	}
	stNaive, outNaive := run(mkNaive)
	stEco, outEco := run(mkEco)
	if !outNaive.Equal(want) || !outEco.Equal(want) {
		t.Fatalf("outputs wrong: naive=%d eco=%d want=%d", outNaive.Len(), outEco.Len(), want.Len())
	}
	if stEco.Sent >= stNaive.Sent {
		t.Errorf("economical broadcast sent %d ≥ naive %d", stEco.Sent, stNaive.Sent)
	}
}

func TestNetworkGuards(t *testing.T) {
	d := rel.NewDict()
	n := New(2, func() Program {
		return &MonotoneBroadcast{Q: func(i *rel.Instance) *rel.Instance { return rel.NewInstance() }}
	})
	if err := n.LoadParts([]*rel.Instance{rel.NewInstance()}); err == nil {
		t.Errorf("wrong part count accepted")
	}
	pol := &policy.Hash{Nodes: 3}
	if err := n.LoadPolicy(rel.NewInstance(), pol); err == nil {
		t.Errorf("mismatched policy size accepted")
	}
	// Policy query without a policy panics.
	defer func() {
		if recover() == nil {
			t.Errorf("ResponsibleFor without policy did not panic")
		}
	}()
	n.ctxs[0].ResponsibleFor(rel.MustFact(d, "E(a,b)"))
}

func TestPolicyQueryOutsideADomPanics(t *testing.T) {
	d := rel.NewDict()
	pol := &policy.Replicate{Nodes: 2}
	n := New(2, func() Program { return &OpenTriangle{} }, WithPolicy(pol))
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-adom policy query did not panic")
		}
	}()
	n.ctxs[0].ResponsibleFor(rel.MustFact(d, "E(zz,ww)"))
}

func TestControlFactDetection(t *testing.T) {
	if !ControlFact(rel.NewFact(countRel, 1)) {
		t.Errorf("count fact not detected as control")
	}
	if ControlFact(rel.NewFact("E", 1, 2)) {
		t.Errorf("data fact detected as control")
	}
}

// The A-classes (oblivious networks, no All relation): monotone
// broadcast still works — A0 = M — while the coordinated protocol
// cannot even start waiting and soundly stays silent.
func TestObliviousNetworks(t *testing.T) {
	d := rel.NewDict()
	q := triangles(d)
	g := workload.RandomGraph(10, 24, 3)
	n := New(3, func() Program { return &MonotoneBroadcast{Q: q} }, WithSeed(1), Oblivious())
	if err := n.LoadParts(hashParts(g, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if !n.Output().Equal(q(g)) {
		t.Errorf("oblivious monotone broadcast wrong")
	}

	open := openTriangles(d)
	g2 := rel.MustInstance(d, "E(a,b)", "E(b,c)")
	nc := New(3, func() Program { return &Coordinated{Q: open} }, WithSeed(1), Oblivious())
	if err := nc.LoadParts(hashParts(g2, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Run(); err != nil {
		t.Fatal(err)
	}
	if nc.Output().Len() != 0 {
		t.Errorf("oblivious coordinated protocol produced output; it cannot know when to")
	}
}

// Coordination quantification (Section 6): the monotone strategy sends
// zero control messages; the coordinated one has a strictly positive
// coordination ratio.
func TestCoordinationRatio(t *testing.T) {
	d := rel.NewDict()
	q := triangles(d)
	open := openTriangles(d)
	g := workload.RandomGraph(8, 18, 5)
	parts := hashParts(g, 3)

	n1 := New(3, func() Program { return &MonotoneBroadcast{Q: q} }, WithSeed(2))
	if err := n1.LoadParts(parts); err != nil {
		t.Fatal(err)
	}
	st1, err := n1.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st1.ControlSent != 0 || st1.CoordinationRatio() != 0 {
		t.Errorf("monotone broadcast coordinates: %+v", st1)
	}

	n2 := New(3, func() Program { return &Coordinated{Q: open} }, WithSeed(2))
	if err := n2.LoadParts(parts); err != nil {
		t.Fatal(err)
	}
	st2, err := n2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st2.ControlSent == 0 || st2.CoordinationRatio() <= 0 {
		t.Errorf("coordinated protocol shows no coordination: %+v", st2)
	}
	if CoordinationMessages(n2) != st2.ControlSent {
		t.Errorf("CoordinationMessages disagrees with stats")
	}
	// The domain-guided strategy coordinates pairwise, not globally:
	// its control traffic exists but is data-proportional.
	pol := &policy.DomainGuided{Nodes: 3, DefaultWidth: 1}
	g3 := workload.ComponentsGraph(2, 3)
	n3 := New(3, func() Program { return &DisjointComplete{Q: notTC} }, WithSeed(2), WithPolicy(pol))
	if err := n3.LoadPolicy(g3, pol); err != nil {
		t.Fatal(err)
	}
	st3, err := n3.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st3.ControlSent == 0 {
		t.Errorf("disjoint-complete sent no control messages")
	}
	if r := st3.CoordinationRatio(); r <= 0 || r > 1 {
		t.Errorf("ratio out of range: %v", r)
	}
}

// Eventual consistency discipline: outputs are write-only and only
// grow — verified across interleaved inspection points by running the
// same seed twice and comparing node outputs.
func TestOutputsDeterministicPerSeed(t *testing.T) {
	d := rel.NewDict()
	q := triangles(d)
	g := workload.RandomGraph(9, 20, 1)
	run := func() []string {
		n := New(3, func() Program { return &MonotoneBroadcast{Q: q} }, WithSeed(77))
		if err := n.LoadParts(hashParts(g, 3)); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Run(); err != nil {
			t.Fatal(err)
		}
		var outs []string
		for i := policy.Node(0); int(i) < 3; i++ {
			outs = append(outs, n.NodeOutput(i).String())
		}
		return outs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d outputs differ across identical runs", i)
		}
	}
}

// chatterbox re-broadcasts every received fact forever: the runtime's
// step bound must catch the non-quiescing program instead of hanging.
type chatterbox struct{ n int }

func (c *chatterbox) Start(ctx *Context) {
	ctx.Broadcast(rel.NewFact("Ping", rel.Value(0)))
}

func (c *chatterbox) OnMessage(ctx *Context, _ policy.Node, f rel.Fact) {
	c.n++
	ctx.Broadcast(rel.NewFact("Ping", rel.Value(c.n%7)))
}

func TestNonQuiescingProgramBounded(t *testing.T) {
	n := New(2, func() Program { return &chatterbox{} }, WithSeed(1))
	if err := n.LoadParts([]*rel.Instance{rel.NewInstance(), rel.NewInstance()}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err == nil {
		t.Fatalf("non-quiescing program terminated")
	}
}

// Single-node networks: broadcast sends nothing, everything is local.
func TestSingleNodeNetwork(t *testing.T) {
	d := rel.NewDict()
	q := triangles(d)
	g := workload.CycleGraph(3)
	n := New(1, func() Program { return &MonotoneBroadcast{Q: q} }, WithSeed(1))
	if err := n.LoadParts([]*rel.Instance{g}); err != nil {
		t.Fatal(err)
	}
	st, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 0 {
		t.Errorf("single node sent %d messages", st.Sent)
	}
	if !n.Output().Equal(q(g)) {
		t.Errorf("single-node output wrong")
	}
	_ = d
}

// Overlapping horizontal distributions (a fact stored at two nodes)
// are allowed — the model only requires the union to be the global
// instance — and must not distort results.
func TestOverlappingDistribution(t *testing.T) {
	d := rel.NewDict()
	q := triangles(d)
	g := rel.MustInstance(d, "E(0,1)", "E(1,2)", "E(2,0)")
	parts := []*rel.Instance{
		rel.MustInstance(d, "E(0,1)", "E(1,2)"),
		rel.MustInstance(d, "E(1,2)", "E(2,0)"), // E(1,2) duplicated
	}
	n := New(2, func() Program { return &MonotoneBroadcast{Q: q} }, WithSeed(3))
	if err := n.LoadParts(parts); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if !n.Output().Equal(q(g)) {
		t.Errorf("overlap distorted output")
	}
}

// A1 = F1 and A2 = F2 empirically: the policy-aware and domain-guided
// strategies never consult All, so they run unchanged on oblivious
// networks.
func TestObliviousPolicyAwareStrategies(t *testing.T) {
	d := rel.NewDict()
	open := openTriangles(d)
	g := workload.RandomGraph(8, 16, 21)
	pol := &policy.Hash{Nodes: 3}
	n := New(3, func() Program { return &OpenTriangle{} },
		WithSeed(4), WithPolicy(pol), Oblivious())
	if err := n.LoadPolicy(g, pol); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if !n.Output().Equal(open(g)) {
		t.Errorf("oblivious policy-aware open triangle wrong")
	}

	g2 := workload.ComponentsGraph(2, 3)
	dg := &policy.DomainGuided{Nodes: 3, DefaultWidth: 1}
	n2 := New(3, func() Program { return &DisjointComplete{Q: notTC} },
		WithSeed(4), WithPolicy(dg), Oblivious())
	if err := n2.LoadPolicy(g2, dg); err != nil {
		t.Fatal(err)
	}
	if _, err := n2.Run(); err != nil {
		t.Fatal(err)
	}
	if !n2.Output().Equal(notTC(g2)) {
		t.Errorf("oblivious domain-guided ¬TC wrong")
	}
}

// A policy-aware network refuses a hand-loaded distribution that
// contradicts its declared placement: the violation is typed at load
// time instead of poisoning Responsible-based decisions mid-run.
func TestLoadPartsRejectsPolicyViolation(t *testing.T) {
	pol := &policy.Hash{Nodes: 3}
	g := workload.RandomGraph(9, 20, 7)
	parts := policy.Distribute(pol, g)
	var stolen rel.Fact
	parts[0].Each(func(f rel.Fact) bool { stolen = f.Clone(); return false })
	wrong := policy.Node(1)
	if pol.Responsible(wrong, stolen) {
		wrong = 2
	}
	parts[wrong].Add(stolen)

	n := New(3, func() Program { return &OpenTriangle{} }, WithPolicy(pol))
	err := n.LoadParts(parts)
	if err == nil {
		t.Fatal("nonconforming distribution accepted on a policy-aware network")
	}
	var v *pc.PlacementViolation
	if !errors.As(err, &v) {
		t.Fatalf("error %v is not a *pc.PlacementViolation", err)
	}
	if v.Node != wrong {
		t.Errorf("accused node %d, want %d", v.Node, wrong)
	}

	// The same parts without the planted fact load fine, and a
	// policy-unaware network never second-guesses its caller.
	clean := policy.Distribute(pol, g)
	if err := n.LoadParts(clean); err != nil {
		t.Fatalf("conforming distribution rejected: %v", err)
	}
	n2 := New(3, func() Program { return &OpenTriangle{} })
	if err := n2.LoadParts(parts); err != nil {
		t.Fatalf("policy-unaware network rejected parts: %v", err)
	}
}
