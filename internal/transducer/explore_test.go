package transducer

import (
	"strings"
	"testing"

	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// Theorem 5.8 / Example 5.4, exhaustively: the policy-aware
// open-triangle program computes the query on EVERY message schedule,
// not just the sampled seeds — the quantifier the theorem actually
// states.
func TestExploreOpenTriangleAllSchedules(t *testing.T) {
	d := rel.NewDict()
	q := openTriangles(d)
	g := rel.MustInstance(d, "E(a,b)", "E(b,c)", "E(c,a)", "E(b,d)")
	want := q(g)
	if want.Len() == 0 {
		t.Fatal("bad setup: no open triangles")
	}
	for _, p := range []int{2, 3} {
		pol := &policy.Hash{Nodes: p}
		n := New(p, func() Program { return &OpenTriangle{} }, WithPolicy(pol))
		if err := n.LoadPolicy(g, pol); err != nil {
			t.Fatal(err)
		}
		res, err := Explore(n, 2_000_000)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if res.Quiescent == 0 {
			t.Fatalf("p=%d: no quiescent state reached", p)
		}
		if !res.Deterministic() {
			t.Fatalf("p=%d: %d distinct outputs across schedules", p, len(res.Outputs))
		}
		if res.Outputs[0] != want.String() {
			t.Fatalf("p=%d: exhaustive output %q, want %q", p, res.Outputs[0], want.String())
		}
		t.Logf("p=%d: states=%d transitions=%d quiescent=%d memoHits=%d sleepPrunes=%d",
			p, res.States, res.Transitions, res.Quiescent, res.MemoHits, res.SleepPrunes)
		if p == 3 && (res.MemoHits == 0 || res.SleepPrunes == 0) {
			t.Errorf("p=3: reductions inactive (memoHits=%d sleepPrunes=%d)", res.MemoHits, res.SleepPrunes)
		}
	}
}

// Theorem 5.12, exhaustively: the domain-guided disjoint-complete
// strategy computes ¬TC on every schedule, including the protocol's
// own request/transfer/done races.
func TestExploreNotTCAllSchedules(t *testing.T) {
	q := Query(notTC)
	d := rel.NewDict()
	// Two disjoint components each: a 2-cycle plus a self-loop for
	// p=2, two self-loops for p=3 (the third node owns no value and
	// exercises the pure-consumer corner of the protocol). Larger
	// instances explode combinatorially; the SCHED experiment runs a
	// 46k-state exploration outside the test budget.
	instances := map[int]*rel.Instance{
		2: rel.MustInstance(d, "E(0,1)", "E(1,0)", "E(2,2)"),
		3: rel.MustInstance(d, "E(3,3)", "E(4,4)"),
	}
	for _, p := range []int{2, 3} {
		g := instances[p]
		want := q(g)
		if want.Len() == 0 {
			t.Fatal("bad setup: ¬TC empty")
		}
		pol := &policy.DomainGuided{Nodes: p, DefaultWidth: 1}
		n := New(p, func() Program { return &DisjointComplete{Q: q} }, WithPolicy(pol))
		if err := n.LoadPolicy(g, pol); err != nil {
			t.Fatal(err)
		}
		res, err := Explore(n, 2_000_000)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !res.Deterministic() {
			t.Fatalf("p=%d: %d distinct outputs across schedules", p, len(res.Outputs))
		}
		if res.Outputs[0] != want.String() {
			t.Fatalf("p=%d: exhaustive output %q, want %q", p, res.Outputs[0], want.String())
		}
		t.Logf("p=%d: states=%d transitions=%d quiescent=%d memoHits=%d sleepPrunes=%d",
			p, res.States, res.Transitions, res.Quiescent, res.MemoHits, res.SleepPrunes)
	}
}

// Example 5.1(2), exhaustively: naive broadcast on the non-monotone
// open-triangle query is unsound on EVERY schedule of the closed
// triangle (each node misses its closing edge at Start), and the
// exact spurious output depends on the schedule — the explorer
// witnesses both facts rather than sampling them.
func TestExploreNaiveBroadcastUnsoundnessWitness(t *testing.T) {
	d := rel.NewDict()
	q := openTriangles(d)
	g := rel.MustInstance(d, "E(0,1)", "E(1,2)", "E(2,0)")
	want := q(g) // empty: the triangle is closed
	if want.Len() != 0 {
		t.Fatal("bad setup: expected no open triangles")
	}
	n := New(3, func() Program { return &MonotoneBroadcast{Q: q} })
	parts := []*rel.Instance{
		rel.MustInstance(d, "E(0,1)"),
		rel.MustInstance(d, "E(1,2)"),
		rel.MustInstance(d, "E(2,0)"),
	}
	if err := n.LoadParts(parts); err != nil {
		t.Fatal(err)
	}
	res, err := Explore(n, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range res.Outputs {
		if out == want.String() {
			t.Fatalf("some schedule produced the correct (empty) answer: naive broadcast would look sound")
		}
		if !strings.Contains(out, "H(") {
			t.Fatalf("quiescent output %q carries no spurious H fact", out)
		}
	}
	if res.Deterministic() {
		t.Errorf("expected schedule-dependent outputs, got a single one: %q", res.Outputs[0])
	}
	t.Logf("distinct wrong outputs=%d states=%d transitions=%d", len(res.Outputs), res.States, res.Transitions)
}

// The explorer must reject what it cannot exhaust faithfully.
func TestExploreRejections(t *testing.T) {
	d := rel.NewDict()
	q := triangles(d)
	g := rel.MustInstance(d, "E(a,b)", "E(b,c)", "E(c,a)")

	// Fault injectors own part of the schedule: rejected.
	n := New(2, func() Program { return &MonotoneBroadcast{Q: q} }, WithDuplication(1, 9))
	if err := n.LoadParts(hashParts(g, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := Explore(n, 1000); err == nil {
		t.Error("Explore accepted a fault-injecting network")
	}

	// Non-Forkable programs cannot be branched: rejected.
	n2 := New(2, func() Program { return unforkable{} })
	if _, err := Explore(n2, 1000); err == nil {
		t.Error("Explore accepted a non-Forkable program")
	}

	// The state bound must trip rather than hang.
	n3 := New(3, func() Program { return &MonotoneBroadcast{Q: q} })
	if err := n3.LoadParts(hashParts(g, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := Explore(n3, 2); err == nil {
		t.Error("Explore ignored maxStates")
	}
}

type unforkable struct{}

func (unforkable) Start(*Context)                            {}
func (unforkable) OnMessage(*Context, policy.Node, rel.Fact) {}

// The explorer agrees with plain runs: every scheduler in the matrix
// drives the network to one of the explorer's quiescent outputs.
func TestExploreCoversSchedulerMatrix(t *testing.T) {
	d := rel.NewDict()
	q := openTriangles(d)
	parts := []*rel.Instance{
		rel.MustInstance(d, "E(0,1)"),
		rel.MustInstance(d, "E(1,2)"),
		rel.MustInstance(d, "E(2,0)"),
	}
	n := New(3, func() Program { return &MonotoneBroadcast{Q: q} })
	if err := n.LoadParts(parts); err != nil {
		t.Fatal(err)
	}
	res, err := Explore(n, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	all := map[string]bool{}
	for _, out := range res.Outputs {
		all[out] = true
	}
	for name, sched := range SchedulerMatrix(3, 4) {
		m := New(3, func() Program { return &MonotoneBroadcast{Q: q} }, WithScheduler(sched))
		if err := m.LoadParts(parts); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if !all[m.Output().String()] {
			t.Errorf("scheduler %s reached output %q outside the explorer's set", name, m.Output().String())
		}
	}
}
