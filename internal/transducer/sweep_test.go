package transducer

import (
	"testing"

	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// Seed-sweep regression: every example program, under every scheduler
// in the matrix, with duplication off and on, across many seeds, must
// produce an output byte-identical to the centralized answer. This is
// the sampled complement of the exhaustive explorer: larger instances,
// more nodes, fault injection — breadth where the explorer has depth.
//
// -short trims the sweep to a handful of seeds; the full ≥32-seed
// matrix runs in tier-1 (plain `go test`).
func TestSeedSweepMatrix(t *testing.T) {
	seeds := 32
	if testing.Short() {
		seeds = 4
	}

	d := rel.NewDict()
	tri := triangles(d)
	open := openTriangles(d)
	g := workload.RandomGraph(8, 18, 5)
	q := Query(notTC)
	g3 := workload.ComponentsGraph(3, 3)
	const p = 3

	// Each case builds a loaded network and states its centralized
	// answer; the sweep only varies scheduler, duplication, and seed.
	cases := []struct {
		name string
		want string
		mk   func(opts ...Option) *Network
	}{
		{
			name: "monotone-broadcast",
			want: tri(g).String(),
			mk: func(opts ...Option) *Network {
				n := New(p, func() Program { return &MonotoneBroadcast{Q: tri} }, opts...)
				if err := n.LoadParts(hashParts(g, p)); err != nil {
					t.Fatal(err)
				}
				return n
			},
		},
		{
			name: "coordinated",
			want: open(g).String(),
			mk: func(opts ...Option) *Network {
				n := New(p, func() Program { return &Coordinated{Q: open} }, opts...)
				if err := n.LoadParts(hashParts(g, p)); err != nil {
					t.Fatal(err)
				}
				return n
			},
		},
		{
			name: "open-triangle-aware",
			want: open(g).String(),
			mk: func(opts ...Option) *Network {
				pol := &policy.Hash{Nodes: p}
				n := New(p, func() Program { return &OpenTriangle{} }, append(opts, WithPolicy(pol))...)
				if err := n.LoadPolicy(g, pol); err != nil {
					t.Fatal(err)
				}
				return n
			},
		},
		{
			name: "disjoint-complete",
			want: q(g3).String(),
			mk: func(opts ...Option) *Network {
				pol := &policy.DomainGuided{Nodes: p, DefaultWidth: 1}
				n := New(p, func() Program { return &DisjointComplete{Q: q} }, append(opts, WithPolicy(pol))...)
				if err := n.LoadPolicy(g3, pol); err != nil {
					t.Fatal(err)
				}
				return n
			},
		},
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for schedName, mkSched := range schedulerFactories(p, 0) {
				for _, dup := range []bool{false, true} {
					for seed := 0; seed < seeds; seed++ {
						opts := []Option{WithScheduler(seedScheduler(schedName, int64(seed), mkSched))}
						if dup {
							opts = append(opts, WithDuplication(2, int64(seed)*101+3))
						}
						n := c.mk(opts...)
						if _, err := n.Run(); err != nil {
							t.Fatalf("%s dup=%v seed=%d: %v", schedName, dup, seed, err)
						}
						if got := n.Output().String(); got != c.want {
							t.Fatalf("%s dup=%v seed=%d: output drifted:\n got %s\nwant %s",
								schedName, dup, seed, got, c.want)
						}
					}
				}
			}
		})
	}
}

// seedScheduler threads the sweep seed into the random scheduler;
// deterministic schedulers ignore it (their sweep dimension is the
// duplication seed instead).
func seedScheduler(name string, seed int64, mk func() Scheduler) Scheduler {
	if name == "random" {
		return NewRandom(seed)
	}
	return mk()
}
