package transducer

import (
	"testing"

	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// The model of Ameloot-Neven-Van den Bussche allows messages to be
// duplicated arbitrarily: every Section 5 strategy must produce the
// centralized answer with duplication switched on. This is where the
// coordinated protocol's distinct-(origin,fact) counting earns its
// keep — a raw delivery counter would cross the announced threshold
// early and output garbage.
func TestStrategiesCorrectUnderDuplication(t *testing.T) {
	d := rel.NewDict()
	tri := triangles(d)
	open := openTriangles(d)
	g := workload.RandomGraph(9, 20, 7)
	q := Query(notTC)
	g3 := workload.ComponentsGraph(3, 3)

	for _, seed := range []int64{1, 2, 3} {
		dup := WithDuplication(2, seed*31+7)

		n := New(3, func() Program { return &MonotoneBroadcast{Q: tri} }, WithSeed(seed), dup)
		if err := n.LoadParts(hashParts(g, 3)); err != nil {
			t.Fatal(err)
		}
		st, err := n.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !n.Output().Equal(tri(g)) {
			t.Errorf("seed %d: monotone broadcast wrong under duplication", seed)
		}
		if st.Duplicated == 0 {
			t.Errorf("seed %d: duplication fault injected nothing", seed)
		}

		n2 := New(4, func() Program { return &Coordinated{Q: open} }, WithSeed(seed), WithDuplication(2, seed*31+7))
		if err := n2.LoadParts(hashParts(g, 4)); err != nil {
			t.Fatal(err)
		}
		if _, err := n2.Run(); err != nil {
			t.Fatal(err)
		}
		if !n2.Output().Equal(open(g)) {
			t.Errorf("seed %d: coordinated protocol wrong under duplication", seed)
		}

		pol := &policy.Hash{Nodes: 4}
		n3 := New(4, func() Program { return &OpenTriangle{} }, WithSeed(seed), WithDuplication(2, seed*31+7), WithPolicy(pol))
		if err := n3.LoadPolicy(g, pol); err != nil {
			t.Fatal(err)
		}
		if _, err := n3.Run(); err != nil {
			t.Fatal(err)
		}
		if !n3.Output().Equal(open(g)) {
			t.Errorf("seed %d: open-triangle program wrong under duplication", seed)
		}

		dgpol := &policy.DomainGuided{Nodes: 3, DefaultWidth: 1}
		n4 := New(3, func() Program { return &DisjointComplete{Q: q} }, WithSeed(seed), WithDuplication(2, seed*31+7), WithPolicy(dgpol))
		if err := n4.LoadPolicy(g3, dgpol); err != nil {
			t.Fatal(err)
		}
		if _, err := n4.Run(); err != nil {
			t.Fatal(err)
		}
		if !n4.Output().Equal(q(g3)) {
			t.Errorf("seed %d: disjoint-complete wrong under duplication", seed)
		}
	}
}

// Crash-restart of EVERY node in turn, mid-run: the crashed node
// reloads its durable fragment, loses its volatile state, re-runs
// Start, and peers assist. Every strategy must still converge to the
// centralized answer.
func TestStrategiesCorrectUnderCrashRestart(t *testing.T) {
	d := rel.NewDict()
	tri := triangles(d)
	open := openTriangles(d)
	g := workload.RandomGraph(9, 20, 7)
	q := Query(notTC)
	g3 := workload.ComponentsGraph(3, 3)

	for victim := 0; victim < 3; victim++ {
		for _, after := range []int{0, 5, 1 << 20} { // immediately, mid-run, at quiescence
			crash := func() Option { return WithCrashRestart(policy.Node(victim), after) }

			n := New(3, func() Program { return &MonotoneBroadcast{Q: tri} }, WithSeed(9), crash())
			if err := n.LoadParts(hashParts(g, 3)); err != nil {
				t.Fatal(err)
			}
			st, err := n.Run()
			if err != nil {
				t.Fatal(err)
			}
			if st.Crashes != 1 {
				t.Fatalf("victim %d after %d: %d crashes fired, want 1", victim, after, st.Crashes)
			}
			if !n.Output().Equal(tri(g)) {
				t.Errorf("victim %d after %d: monotone broadcast wrong under crash-restart", victim, after)
			}

			n2 := New(3, func() Program { return &Coordinated{Q: open} }, WithSeed(9), crash())
			if err := n2.LoadParts(hashParts(g, 3)); err != nil {
				t.Fatal(err)
			}
			if _, err := n2.Run(); err != nil {
				t.Fatal(err)
			}
			if !n2.Output().Equal(open(g)) {
				t.Errorf("victim %d after %d: coordinated protocol wrong under crash-restart", victim, after)
			}

			pol := &policy.Hash{Nodes: 3}
			n3 := New(3, func() Program { return &OpenTriangle{} }, WithSeed(9), crash(), WithPolicy(pol))
			if err := n3.LoadPolicy(g, pol); err != nil {
				t.Fatal(err)
			}
			if _, err := n3.Run(); err != nil {
				t.Fatal(err)
			}
			if !n3.Output().Equal(open(g)) {
				t.Errorf("victim %d after %d: open-triangle program wrong under crash-restart", victim, after)
			}

			dgpol := &policy.DomainGuided{Nodes: 3, DefaultWidth: 1}
			n4 := New(3, func() Program { return &DisjointComplete{Q: q} }, WithSeed(9), crash(), WithPolicy(dgpol))
			if err := n4.LoadPolicy(g3, dgpol); err != nil {
				t.Fatal(err)
			}
			if _, err := n4.Run(); err != nil {
				t.Fatal(err)
			}
			if !n4.Output().Equal(q(g3)) {
				t.Errorf("victim %d after %d: disjoint-complete wrong under crash-restart", victim, after)
			}
		}
	}
}

// Correlated failure: a whole two-node "rack" out of four crashes as a
// unit, so neither member's recovery assist can come from inside the
// group — the surviving pair must carry it. Every strategy must still
// converge to the centralized answer, at every trigger point.
func TestStrategiesCorrectUnderGroupCrashRestart(t *testing.T) {
	d := rel.NewDict()
	tri := triangles(d)
	open := openTriangles(d)
	g := workload.RandomGraph(9, 20, 7)
	rack := []policy.Node{1, 2}

	for _, after := range []int{0, 5, 1 << 20} { // immediately, mid-run, at quiescence
		crash := func() Option { return WithGroupCrashRestart(rack, after) }

		n := New(4, func() Program { return &MonotoneBroadcast{Q: tri} }, WithSeed(9), crash())
		if err := n.LoadParts(hashParts(g, 4)); err != nil {
			t.Fatal(err)
		}
		st, err := n.Run()
		if err != nil {
			t.Fatal(err)
		}
		if st.Crashes != len(rack) {
			t.Fatalf("after %d: %d crashes fired, want the whole %d-node rack", after, st.Crashes, len(rack))
		}
		if !n.Output().Equal(tri(g)) {
			t.Errorf("after %d: monotone broadcast wrong under group crash-restart", after)
		}

		n2 := New(4, func() Program { return &Coordinated{Q: open} }, WithSeed(9), crash())
		if err := n2.LoadParts(hashParts(g, 4)); err != nil {
			t.Fatal(err)
		}
		if _, err := n2.Run(); err != nil {
			t.Fatal(err)
		}
		if !n2.Output().Equal(open(g)) {
			t.Errorf("after %d: coordinated protocol wrong under group crash-restart", after)
		}

		pol := &policy.Hash{Nodes: 4}
		n3 := New(4, func() Program { return &OpenTriangle{} }, WithSeed(9), crash(), WithPolicy(pol))
		if err := n3.LoadPolicy(g, pol); err != nil {
			t.Fatal(err)
		}
		if _, err := n3.Run(); err != nil {
			t.Fatal(err)
		}
		if !n3.Output().Equal(open(g)) {
			t.Errorf("after %d: open-triangle program wrong under group crash-restart", after)
		}
	}
}

// Faults compose: duplication + delay bursts + two crash-restarts in
// one run, across the scheduler matrix — the full chaos regime. The
// answer must not move.
func TestStrategiesCorrectUnderChaos(t *testing.T) {
	d := rel.NewDict()
	tri := triangles(d)
	g := workload.RandomGraph(9, 20, 7)
	want := tri(g)
	q := Query(notTC)
	g3 := workload.ComponentsGraph(3, 3)
	wantNTC := q(g3)

	for name, mk := range schedulerFactories(3, 21) {
		opts := func(s Scheduler) []Option {
			return []Option{
				WithScheduler(s),
				WithDuplication(1, 5),
				WithDelayBursts(4, 3, 11),
				WithCrashRestart(0, 3),
				WithCrashRestart(2, 9),
			}
		}
		n := New(3, func() Program { return &MonotoneBroadcast{Q: tri} }, opts(mk())...)
		if err := n.LoadParts(hashParts(g, 3)); err != nil {
			t.Fatal(err)
		}
		st, err := n.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !n.Output().Equal(want) {
			t.Errorf("%s: monotone broadcast wrong under chaos", name)
		}
		if st.Crashes != 2 {
			t.Errorf("%s: %d crashes fired, want 2", name, st.Crashes)
		}
		if st.Bursts == 0 {
			t.Errorf("%s: no delay bursts fired", name)
		}

		dgpol := &policy.DomainGuided{Nodes: 3, DefaultWidth: 1}
		n2 := New(3, func() Program { return &DisjointComplete{Q: q} }, append(opts(mk()), WithPolicy(dgpol))...)
		if err := n2.LoadPolicy(g3, dgpol); err != nil {
			t.Fatal(err)
		}
		if _, err := n2.Run(); err != nil {
			t.Fatal(err)
		}
		if !n2.Output().Equal(wantNTC) {
			t.Errorf("%s: disjoint-complete wrong under chaos", name)
		}
	}
}

// A crash wipes volatile state but keeps the durable fragment: after
// restarting with no peers to assist (p=1), the node's state is
// exactly its reloaded local database plus its own restart work.
func TestCrashRestartReloadsDurableState(t *testing.T) {
	d := rel.NewDict()
	tri := triangles(d)
	g := rel.MustInstance(d, "E(0,1)", "E(1,2)", "E(2,0)")
	n := New(1, func() Program { return &MonotoneBroadcast{Q: tri} }, WithCrashRestart(0, 1<<20))
	if err := n.LoadParts([]*rel.Instance{g}); err != nil {
		t.Fatal(err)
	}
	st, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Crashes != 1 {
		t.Fatalf("crash did not fire at quiescence: %+v", st)
	}
	if !dataFacts(n.ctxs[0].state).Equal(g) {
		t.Errorf("restarted node's state is not the reloaded durable fragment")
	}
	if !n.Output().Equal(tri(g)) {
		t.Errorf("p=1 output wrong after crash-restart")
	}
	// Outputs are write-only: the pre-crash output survived even
	// though the program restarted.
	if n.NodeOutput(0).Len() == 0 {
		t.Errorf("write-only output lost across restart")
	}
}

// Delay bursts freeze one node's inbound delivery without violating
// fairness: the run still quiesces and the output is unchanged.
func TestDelayBurstsPreserveOutputAndLiveness(t *testing.T) {
	d := rel.NewDict()
	tri := triangles(d)
	g := workload.RandomGraph(9, 20, 7)
	want := tri(g)
	for _, every := range []int{1, 3, 7} {
		n := New(3, func() Program { return &MonotoneBroadcast{Q: tri} }, WithSeed(4), WithDelayBursts(every, 5, 17))
		if err := n.LoadParts(hashParts(g, 3)); err != nil {
			t.Fatal(err)
		}
		st, err := n.Run()
		if err != nil {
			t.Fatalf("every=%d: %v (liveness violated?)", every, err)
		}
		if st.Bursts == 0 {
			t.Fatalf("every=%d: no bursts fired", every)
		}
		if !n.Output().Equal(want) {
			t.Errorf("every=%d: output wrong under delay bursts", every)
		}
	}
}

// An extreme burst regime: every delivery starts a new freeze. The
// early-thaw rule (a frozen node holding the only pending messages
// thaws) is what keeps this from deadlocking.
func TestDelayBurstEarlyThaw(t *testing.T) {
	d := rel.NewDict()
	tri := triangles(d)
	g := rel.MustInstance(d, "E(0,1)", "E(1,2)", "E(2,0)")
	n := New(2, func() Program { return &MonotoneBroadcast{Q: tri} }, WithSeed(1), WithDelayBursts(1, 1000, 3))
	if err := n.LoadParts(hashParts(g, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatalf("burst freeze deadlocked the run: %v", err)
	}
	if !n.Output().Equal(tri(g)) {
		t.Errorf("output wrong under persistent freezes")
	}
}

// Fault-injected runs must be reproducible down to the exact Stats,
// not just the output: a crash point exposes WHICH messages were
// delivered first, so any map-order dependence upstream (e.g. in a
// program's Start broadcast order) shows up as run-to-run drift in
// sent counts. Regression for exactly such a bug in
// DisjointComplete.Start.
func TestChaosStatsReproducible(t *testing.T) {
	q := Query(notTC)
	g3 := workload.ComponentsGraph(3, 3)
	run := func() Stats {
		pol := &policy.DomainGuided{Nodes: 3, DefaultWidth: 1}
		n := New(3, func() Program { return &DisjointComplete{Q: q} },
			WithSeed(23), WithDuplication(2, 41), WithDelayBursts(5, 3, 19),
			WithCrashRestart(1, 6), WithPolicy(pol))
		if err := n.LoadPolicy(g3, pol); err != nil {
			t.Fatal(err)
		}
		st, err := n.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("chaos run stats drifted between identical runs:\n %+v\n %+v", a, b)
	}
}

// Fault accounting: every injected event is visible in Stats, and the
// step identity extends to Steps == p + Delivered + Crashes + Assists.
func TestFaultAccounting(t *testing.T) {
	d := rel.NewDict()
	tri := triangles(d)
	g := workload.RandomGraph(9, 20, 7)
	p := 3
	n := New(p, func() Program { return &MonotoneBroadcast{Q: tri} },
		WithSeed(2), WithDuplication(2, 8), WithCrashRestart(1, 4))
	if err := n.LoadParts(hashParts(g, p)); err != nil {
		t.Fatal(err)
	}
	st, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Duplicated == 0 {
		t.Error("no duplicates accounted")
	}
	if st.Crashes != 1 {
		t.Errorf("%d crashes accounted, want 1", st.Crashes)
	}
	if st.Assists != p-1 {
		t.Errorf("%d assists accounted, want %d (every live peer implements Recoverer)", st.Assists, p-1)
	}
	if st.Steps != p+st.Delivered+st.Crashes+st.Assists {
		t.Errorf("step identity violated: Steps=%d p=%d Delivered=%d Crashes=%d Assists=%d",
			st.Steps, p, st.Delivered, st.Crashes, st.Assists)
	}
	if st.Delivered > st.Sent {
		t.Errorf("Delivered %d > Sent %d", st.Delivered, st.Sent)
	}
}
