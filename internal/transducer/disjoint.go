package transducer

import (
	"fmt"
	"sort"

	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// This file implements the domain-guided strategy of Theorem 5.12 for
// Q ∈ Mdisjoint, following the paper's three-step sketch:
//
//  1. broadcast the local active domain;
//  2. on learning a new domain element a, ask one node of α(a) — which
//     by the domain-guided property holds every fact containing a —
//     to transfer those facts;
//  3. evaluate Q on every disjoint-complete subset, i.e. on the union
//     of the components whose values are all fully known.
//
// The pairwise data pulls are not global synchronization: the program
// is coordination-free (ideal distribution = full replication makes
// every value locally complete, so no message is ever needed).

const (
	adomRel = reservedPrefix + "adom"
	reqRel  = reservedPrefix + "req"
	doneRel = reservedPrefix + "done"
)

// DisjointComplete evaluates a domain-disjoint-monotone query on a
// domain-guided network.
type DisjointComplete struct {
	Q Query

	requested map[rel.Value]bool
	complete  map[rel.Value]bool
	// expected[v] is how many facts containing v the responsible node
	// announced; v only becomes complete once that many distinct facts
	// containing v have arrived, because the announcement may be
	// delivered before the data it covers (arbitrary delay).
	expected map[rel.Value]int
	emitted  int // size of the largest union already emitted
}

// Start implements Program.
func (dj *DisjointComplete) Start(ctx *Context) {
	dj.requested = map[rel.Value]bool{}
	dj.complete = map[rel.Value]bool{}
	dj.expected = map[rel.Value]int{}
	// Sorted: broadcast order feeds the message buffers, and map
	// iteration here would make fault-injected runs (where the
	// delivered prefix at a crash point matters) nondeterministic.
	for _, v := range dataFacts(ctx.State()).ADom().Sorted() {
		// Values this node is assigned to are complete locally: a
		// domain-guided node holds every fact containing them.
		if dj.ownedBy(ctx, v) {
			dj.complete[v] = true
		}
		ctx.Broadcast(rel.NewFact(adomRel, v))
	}
	dj.emit(ctx)
}

func (dj *DisjointComplete) ownedBy(ctx *Context, v rel.Value) bool {
	for _, κ := range ctx.DomainNodes(v) {
		if κ == ctx.Self {
			return true
		}
	}
	return false
}

// OnMessage implements Program.
func (dj *DisjointComplete) OnMessage(ctx *Context, from policy.Node, f rel.Fact) {
	switch f.Rel {
	case adomRel:
		v := f.Tuple[0]
		if dj.complete[v] || dj.requested[v] {
			return
		}
		dj.requested[v] = true
		// Make v part of the local state so the policy may be queried,
		// then pull all facts containing v from one responsible node.
		ctx.State().Add(f)
		if dj.ownedBy(ctx, v) {
			dj.complete[v] = true
			dj.emit(ctx)
			return
		}
		target := ctx.DomainNodes(v)[0]
		ctx.Send(target, rel.NewFact(reqRel, v))
	case reqRel:
		v := f.Tuple[0]
		n := 0
		dataFacts(ctx.State()).Each(func(g rel.Fact) bool {
			if g.ADom().Contains(v) {
				ctx.Send(from, g)
				n++
			}
			return true
		})
		ctx.Send(from, rel.NewFact(doneRel, v, rel.Value(n)))
	case doneRel:
		dj.expected[f.Tuple[0]] = int(f.Tuple[1])
		dj.settle(ctx)
	default: // data fact
		ctx.State().Add(f)
		dj.settle(ctx)
	}
}

// OnPeerRestart implements Recoverer: re-announce the active domain
// this node knows about. The restarted node's own pull protocol
// (request → transfer → done) then rebuilds the lost data; the pulls
// are idempotent, so racing with in-flight pre-crash messages is safe.
func (dj *DisjointComplete) OnPeerRestart(ctx *Context, κ policy.Node) {
	vs := dataFacts(ctx.State()).ADom().Sorted()
	for _, v := range vs {
		ctx.Send(κ, rel.NewFact(adomRel, v))
	}
}

// Snapshot implements Forkable.
func (dj *DisjointComplete) Snapshot() Program {
	cp := &DisjointComplete{
		Q:         dj.Q,
		requested: map[rel.Value]bool{},
		complete:  map[rel.Value]bool{},
		expected:  map[rel.Value]int{},
		emitted:   dj.emitted,
	}
	for k, v := range dj.requested {
		cp.requested[k] = v
	}
	for k, v := range dj.complete {
		cp.complete[k] = v
	}
	for k, v := range dj.expected {
		cp.expected[k] = v
	}
	return cp
}

// Fingerprint implements Forkable: canonical rendering of the
// volatile protocol maps (sorted enumeration).
func (dj *DisjointComplete) Fingerprint() string {
	render := func(label string, m map[rel.Value]bool) string {
		var vs []int
		for v, ok := range m {
			if ok {
				vs = append(vs, int(v))
			}
		}
		sort.Ints(vs)
		s := label + "="
		for _, v := range vs {
			s += fmt.Sprintf("%d,", v)
		}
		return s
	}
	s := render("req", dj.requested) + ";" + render("cmp", dj.complete)
	var vs []int
	for v := range dj.expected {
		vs = append(vs, int(v))
	}
	sort.Ints(vs)
	s += ";exp="
	for _, v := range vs {
		s += fmt.Sprintf("%d:%d,", v, dj.expected[rel.Value(v)])
	}
	return s + fmt.Sprintf(";emitted=%d", dj.emitted)
}

// settle promotes values to complete once all announced facts have
// arrived, then re-emits.
func (dj *DisjointComplete) settle(ctx *Context) {
	state := dataFacts(ctx.State())
	counts := map[rel.Value]int{}
	state.Each(func(g rel.Fact) bool {
		for v := range g.ADom() {
			counts[v]++
		}
		return true
	})
	for v, n := range dj.expected {
		if !dj.complete[v] && counts[v] >= n {
			dj.complete[v] = true
		}
	}
	dj.emit(ctx)
}

// emit outputs Q over the union of the fully known components.
func (dj *DisjointComplete) emit(ctx *Context) {
	state := dataFacts(ctx.State())
	union := rel.NewInstance()
	for _, comp := range rel.Components(state) {
		ok := true
		for v := range comp.ADom() {
			if !dj.complete[v] {
				ok = false
				break
			}
		}
		if ok {
			union.AddAll(comp)
		}
	}
	if union.Len() < dj.emitted {
		return
	}
	dj.emitted = union.Len()
	dj.Q(union).Each(func(f rel.Fact) bool {
		ctx.Output(f)
		return true
	})
}
