package transducer

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"

	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// This file turns the paper's "on every schedule" quantifier into a
// machine-checked one: Theorems 5.3/5.8/5.12 claim their strategies
// compute the query under *arbitrary* message delay, and a handful of
// random seeds only samples that claim. Explore enumerates every
// delivery order of a small network exhaustively, with two sound
// reductions keeping the schedule tree tractable:
//
//   - Memoized state hashing: two schedules reaching the same global
//     state (node states + outputs + volatile program fingerprints +
//     in-flight message multiset) have identical futures, so the
//     subtree is explored once.
//
//   - Sleep sets over the commutation relation "deliveries to
//     distinct nodes are independent": a transition depends only on
//     the destination's local state and appends to buffers, so
//     delivering to node A then B reaches the same state as B then A.
//     Exploring one interleaving per Mazurkiewicz trace preserves all
//     reachable quiescent states (Godefroid); combining sleep sets
//     with memoization stays sound because a memo entry only prunes
//     when some recorded sleep set is a subset of the current one
//     (the earlier visit explored a superset of our transitions).
//
// Verifying outputs at quiescent states only is sufficient: outputs
// are write-only, so any unsound intermediate emission persists to
// (and is caught at) every quiescent state below it.

// Forkable is implemented by programs the explorer can run: Snapshot
// deep-copies the program's volatile state, and Fingerprint renders
// that state canonically (deterministically — sorted enumeration) so
// two nodes with equal relational state but different protocol
// progress hash differently.
type Forkable interface {
	Program
	Snapshot() Program
	Fingerprint() string
}

// ExploreResult summarizes an exhaustive schedule exploration.
type ExploreResult struct {
	States      int      // distinct global states visited
	Transitions int      // deliveries executed (after reduction)
	Quiescent   int      // quiescent states reached
	MemoHits    int      // subtrees cut by the state memo
	SleepPrunes int      // transitions cut by sleep sets
	Outputs     []string // distinct global outputs over all quiescent states, sorted
}

// Deterministic reports whether every schedule produced the same
// global output.
func (r ExploreResult) Deterministic() bool { return len(r.Outputs) <= 1 }

// Explore runs every message schedule of n from its initial state:
// all nodes take Start in identity order (sound: Start reads only
// local state, so the post-start global state is permutation-
// independent), then all delivery orders are enumerated. Every
// program must implement Forkable; fault injectors are not supported
// (the explorer owns the schedule). maxStates bounds the distinct
// states visited; exceeding it returns an error identifying how far
// the exploration got.
func Explore(n *Network, maxStates int) (ExploreResult, error) {
	for i, pr := range n.programs {
		if _, ok := pr.(Forkable); !ok {
			return ExploreResult{}, fmt.Errorf("transducer: program of node %d (%T) does not implement Forkable", i, pr)
		}
	}
	if n.faults != nil {
		return ExploreResult{}, fmt.Errorf("transducer: Explore owns the schedule; fault injectors are not supported")
	}
	for i := 0; i < n.p; i++ {
		n.stats.Steps++
		n.programs[i].Start(n.ctxs[i])
	}
	e := &explorer{
		limit:   maxStates,
		memo:    map[[32]byte][][]string{},
		outputs: map[string]bool{},
	}
	nodes := make([]string, n.p)
	for i := range nodes {
		nodes[i] = renderNode(n, i)
	}
	err := e.dfs(n, nodes, map[string]int{})
	res := ExploreResult{
		States:      len(e.memo),
		Transitions: e.transitions,
		Quiescent:   e.quiescent,
		MemoHits:    e.memoHits,
		SleepPrunes: e.sleepPrunes,
	}
	for out := range e.outputs {
		res.Outputs = append(res.Outputs, out)
	}
	sort.Strings(res.Outputs)
	return res, err
}

type explorer struct {
	limit       int
	memo        map[[32]byte][][]string // state digest → sleep sets already explored (sorted ids)
	outputs     map[string]bool
	transitions int
	quiescent   int
	memoHits    int
	sleepPrunes int
}

// delivery is one enabled transition, identified by (to, from, fact):
// pending duplicates of the same message reach the same successor, so
// one representative suffices.
type delivery struct {
	to, from int
	factPos  int // index within buffers[to]
	id       string
}

func deliveryID(to, from int, factKey string) string {
	return fmt.Sprintf("%d|%d|%s", to, from, factKey)
}

// enabledDeliveries lists the distinct enabled transitions in a
// deterministic order (buffer scan order).
func enabledDeliveries(n *Network) []delivery {
	var out []delivery
	seen := map[string]bool{}
	for to, buf := range n.buffers {
		for pos, m := range buf {
			id := deliveryID(to, int(m.From), m.Fact.Key())
			if seen[id] {
				continue
			}
			seen[id] = true
			out = append(out, delivery{to: to, from: int(m.From), factPos: pos, id: id})
		}
	}
	return out
}

// renderNode canonically renders one node: relational state, output,
// and the program's volatile fingerprint. The explorer caches these
// per branch — a delivery changes exactly one node's rendering.
func renderNode(n *Network, i int) string {
	return n.ctxs[i].state.String() + "#" + n.outputs[i].String() + "#" + n.programs[i].(Forkable).Fingerprint()
}

// exploreKey digests the canonical rendering of the global state
// (cached node renderings plus the in-flight message multiset). Stats
// are excluded: they do not influence future behavior, and excluding
// them merges schedules that differ only in bookkeeping. The 256-bit
// digest keeps the memo's memory proportional to the state count, not
// the state size.
func exploreKey(n *Network, nodes []string) [32]byte {
	var b strings.Builder
	for _, s := range nodes {
		b.WriteString(s)
		b.WriteByte('\n')
	}
	ms := make([]string, 0, 8)
	for to, buf := range n.buffers {
		for _, m := range buf {
			ms = append(ms, deliveryID(to, int(m.From), m.Fact.Key()))
		}
	}
	sort.Strings(ms)
	for _, s := range ms {
		b.WriteString(s)
		b.WriteByte(';')
	}
	return sha256.Sum256([]byte(b.String()))
}

// subset reports whether every id in recorded is in current.
func subset(recorded []string, current map[string]int) bool {
	for _, id := range recorded {
		if _, ok := current[id]; !ok {
			return false
		}
	}
	return true
}

func sortedIDs(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// dfs explores all schedules from n's current state. nodes caches the
// canonical per-node renderings; sleep maps a transition id to its
// destination node for transitions whose subtrees a sibling already
// covered.
func (e *explorer) dfs(n *Network, nodes []string, sleep map[string]int) error {
	key := exploreKey(n, nodes)
	if recorded, ok := e.memo[key]; ok {
		for _, s := range recorded {
			if subset(s, sleep) {
				e.memoHits++
				return nil
			}
		}
	} else if len(e.memo) >= e.limit {
		return fmt.Errorf("transducer: exploration exceeded %d states (%d transitions so far)", e.limit, e.transitions)
	}
	e.memo[key] = append(e.memo[key], sortedIDs(sleep))

	enabled := enabledDeliveries(n)
	if len(enabled) == 0 {
		e.quiescent++
		e.outputs[n.Output().String()] = true
		return nil
	}
	var done []delivery
	for _, t := range enabled {
		if _, asleep := sleep[t.id]; asleep {
			e.sleepPrunes++
			continue
		}
		child := n.forkFor(t.to)
		child.deliverAt(t.to, t.factPos)
		childNodes := append([]string(nil), nodes...)
		childNodes[t.to] = renderNode(child, t.to)
		childSleep := map[string]int{}
		for id, to := range sleep {
			if to != t.to {
				childSleep[id] = to
			}
		}
		for _, d := range done {
			if d.to != t.to {
				childSleep[d.id] = d.to
			}
		}
		e.transitions++
		if err := e.dfs(child, childNodes, childSleep); err != nil {
			return err
		}
		done = append(done, t)
	}
	return nil
}

// forkFor copies the network for one exploration branch in which node
// `to` takes the next transition: only that node's program, state,
// and output are deep-copied — every other node's are shared with the
// parent, which is safe because a node's data is only ever mutated by
// its own transitions, and any branch delivering to another node
// forks that node first. Buffers are always copied (sends from node
// `to` append to them); Message facts are cloned on enqueue and never
// mutated afterwards, so the copies share them.
func (n *Network) forkFor(to int) *Network {
	cp := &Network{
		p:        n.p,
		mk:       n.mk,
		programs: make([]Program, n.p),
		ctxs:     make([]*Context, n.p),
		outputs:  make([]*rel.Instance, n.p),
		buffers:  make([][]Message, n.p),
		sched:    n.sched,
		store:    n.store,
		pol:      n.pol,
		aware:    n.aware,
		stats:    n.stats,
	}
	for i := 0; i < n.p; i++ {
		if i == to {
			cp.programs[i] = n.programs[i].(Forkable).Snapshot()
			cp.outputs[i] = n.outputs[i].Clone()
			cp.ctxs[i] = &Context{Self: policy.Node(i), All: n.ctxs[i].All, net: cp, state: n.ctxs[i].state.Clone()}
		} else {
			cp.programs[i] = n.programs[i]
			cp.outputs[i] = n.outputs[i]
			cp.ctxs[i] = &Context{Self: policy.Node(i), All: n.ctxs[i].All, net: cp, state: n.ctxs[i].state}
		}
		cp.buffers[i] = append([]Message(nil), n.buffers[i]...)
	}
	return cp
}

// deliverAt delivers the message at position pos of node to's buffer
// (shift-removal keeps the scan order stable for determinism).
func (n *Network) deliverAt(to, pos int) {
	m := n.buffers[to][pos]
	n.buffers[to] = append(n.buffers[to][:pos:pos], n.buffers[to][pos+1:]...)
	n.stats.Delivered++
	n.stats.Steps++
	n.programs[to].OnMessage(n.ctxs[to], m.From, m.Fact)
}
