package transducer

import (
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// This file implements the policy-aware strategies of Section 5.2.2:
// nodes can query the distribution policy P^H on facts over their
// local active domain, which lets them convert local absence into
// global absence and thereby evaluate Mdistinct queries without
// coordination (Theorem 5.8).

// OpenTriangle is Example 5.4's program, verbatim: broadcast local
// edges; when edges E(a,b), E(b,c) are known, E(c,a) is not, and this
// node is responsible for E(c,a), output the open triangle (a,b,c).
// Output facts are H(a,b,c).
type OpenTriangle struct{}

// Start implements Program.
func (o *OpenTriangle) Start(ctx *Context) {
	ctx.State().Each(func(f rel.Fact) bool {
		ctx.Broadcast(f)
		return true
	})
	o.emit(ctx)
}

// OnMessage implements Program.
func (o *OpenTriangle) OnMessage(ctx *Context, _ policy.Node, f rel.Fact) {
	if ctx.State().Add(f) {
		o.emit(ctx)
	}
}

// OnPeerRestart implements Recoverer: re-send all known edges. The
// program is monotone in its message handling (state only grows), so
// shipping the full data state is sound and restores the peer in one
// assist transition.
func (o *OpenTriangle) OnPeerRestart(ctx *Context, κ policy.Node) {
	dataFacts(ctx.State()).Each(func(f rel.Fact) bool {
		ctx.Send(κ, f)
		return true
	})
}

// Snapshot implements Forkable.
func (o *OpenTriangle) Snapshot() Program { return &OpenTriangle{} }

// Fingerprint implements Forkable.
func (o *OpenTriangle) Fingerprint() string { return "" }

func (o *OpenTriangle) emit(ctx *Context) {
	e := ctx.State().Relation("E")
	if e == nil {
		return
	}
	e.Each(func(ab rel.Tuple) bool {
		e.Each(func(bc rel.Tuple) bool {
			if ab[1] != bc[0] {
				return true
			}
			closing := rel.NewFact("E", bc[1], ab[0])
			if ctx.State().Contains(closing) {
				return true
			}
			if ctx.ResponsibleFor(closing) {
				ctx.Output(rel.NewFact("H", ab[0], ab[1], bc[1]))
			}
			return true
		})
		return true
	})
}

// DistinctComplete is the generic strategy for Q ∈ Mdistinct from
// Section 5.2.2: broadcast everything; whenever a value set C is
// distinct-complete for this node (every candidate fact over C is
// either present or this node is responsible for it and can vouch for
// its absence), output Q(state|C). Soundness needs only Q ∈ Mdistinct
// (Lemma 5.7); completeness of the union additionally needs the
// policy to let some node vouch for each relevant absent fact.
type DistinctComplete struct {
	Q      Query
	Schema rel.Schema
	// MaxADom caps the exhaustive subset enumeration; larger active
	// domains fall back to the single maximal greedy C.
	MaxADom int
}

// Start implements Program.
func (dc *DistinctComplete) Start(ctx *Context) {
	ctx.State().Each(func(f rel.Fact) bool {
		ctx.Broadcast(f)
		return true
	})
	dc.emit(ctx)
}

// OnMessage implements Program.
func (dc *DistinctComplete) OnMessage(ctx *Context, _ policy.Node, f rel.Fact) {
	if ctx.State().Add(f) {
		dc.emit(ctx)
	}
}

// OnPeerRestart implements Recoverer: re-send the full data state
// (the strategy already broadcasts everything, so this only
// accelerates what normal flow would eventually re-deliver).
func (dc *DistinctComplete) OnPeerRestart(ctx *Context, κ policy.Node) {
	dataFacts(ctx.State()).Each(func(f rel.Fact) bool {
		ctx.Send(κ, f)
		return true
	})
}

// Snapshot implements Forkable.
func (dc *DistinctComplete) Snapshot() Program {
	return &DistinctComplete{Q: dc.Q, Schema: dc.Schema, MaxADom: dc.MaxADom}
}

// Fingerprint implements Forkable.
func (dc *DistinctComplete) Fingerprint() string { return "" }

// known reports whether this node can determine the status of f:
// present, or absent-but-vouchable.
func (dc *DistinctComplete) known(ctx *Context, f rel.Fact) bool {
	return ctx.State().Contains(f) || ctx.ResponsibleFor(f)
}

func (dc *DistinctComplete) emit(ctx *Context) {
	state := dataFacts(ctx.State())
	adom := state.ADom().Sorted()
	max := dc.MaxADom
	if max <= 0 {
		max = 12
	}
	if len(adom) > max {
		dc.emitGreedy(ctx, state, adom)
		return
	}
	n := uint(len(adom))
	for mask := uint64(1); mask < 1<<n; mask++ {
		c := make(rel.ValueSet)
		for b := uint(0); b < n; b++ {
			if mask&(1<<b) != 0 {
				c.Add(adom[b])
			}
		}
		if dc.complete(ctx, c) {
			dc.Q(state.Induced(c)).Each(func(f rel.Fact) bool {
				ctx.Output(f)
				return true
			})
		}
	}
}

// complete reports whether C is distinct-complete for this node.
func (dc *DistinctComplete) complete(ctx *Context, c rel.ValueSet) bool {
	for _, f := range dc.Schema.AllFacts(c.Sorted()) {
		if !dc.known(ctx, f) {
			return false
		}
	}
	return true
}

// emitGreedy finds one large distinct-complete C by dropping the most
// conflicted values.
func (dc *DistinctComplete) emitGreedy(ctx *Context, state *rel.Instance, adom []rel.Value) {
	c := rel.NewValueSet(adom...)
	for {
		conflicts := map[rel.Value]int{}
		ok := true
		for _, f := range dc.Schema.AllFacts(c.Sorted()) {
			if !dc.known(ctx, f) {
				ok = false
				for v := range f.ADom() {
					conflicts[v]++
				}
			}
		}
		if ok {
			break
		}
		worst, worstN := rel.Value(0), -1
		for v, n := range conflicts {
			if n > worstN || (n == worstN && v < worst) {
				worst, worstN = v, n
			}
		}
		delete(c, worst)
		if len(c) == 0 {
			return
		}
	}
	dc.Q(state.Induced(c)).Each(func(f rel.Fact) bool {
		ctx.Output(f)
		return true
	})
}
