package transducer

import (
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// Query is a generic query over instances, the object transducer
// networks compute.
type Query func(*rel.Instance) *rel.Instance

// MonotoneBroadcast is the naive strategy of Example 5.1(1): output
// Q(state) immediately and whenever state grows, and broadcast the
// local database once. For monotone Q every run of this program
// computes Q on every network and distribution, and the program is
// coordination-free (ideal distribution: full replication).
type MonotoneBroadcast struct {
	Q Query
}

// Start implements Program.
func (m *MonotoneBroadcast) Start(ctx *Context) {
	ctx.State().Each(func(f rel.Fact) bool {
		ctx.Broadcast(f)
		return true
	})
	m.emit(ctx)
}

// OnMessage implements Program.
func (m *MonotoneBroadcast) OnMessage(ctx *Context, _ policy.Node, f rel.Fact) {
	if ctx.State().Add(f) {
		m.emit(ctx)
	}
}

func (m *MonotoneBroadcast) emit(ctx *Context) {
	m.Q(dataFacts(ctx.State())).Each(func(f rel.Fact) bool {
		ctx.Output(f)
		return true
	})
}

// Coordinated evaluates an arbitrary query with an explicit
// coordination protocol in the spirit of Example 5.1(2): every node
// broadcasts its data plus a count of how many facts it contributed;
// a node outputs Q(state) only once it has received every node's
// complete contribution. It requires knowledge of All — it is not
// coordination-free, and CoordinationMessages counts the control
// traffic it needed.
type Coordinated struct {
	Q Query

	counts   map[policy.Node]int // announced contribution sizes
	received map[policy.Node]int // data facts received per origin
	done     bool
}

const countRel = reservedPrefix + "count"

// Start implements Program.
func (c *Coordinated) Start(ctx *Context) {
	c.counts = map[policy.Node]int{}
	c.received = map[policy.Node]int{}
	n := 0
	ctx.State().Each(func(f rel.Fact) bool {
		ctx.Broadcast(f)
		n++
		return true
	})
	c.counts[ctx.Self] = n
	c.received[ctx.Self] = n
	ctx.Broadcast(rel.NewFact(countRel, rel.Value(n)))
	c.maybeOutput(ctx)
}

// OnMessage implements Program.
func (c *Coordinated) OnMessage(ctx *Context, from policy.Node, f rel.Fact) {
	if f.Rel == countRel {
		c.counts[from] = int(f.Tuple[0])
	} else if ctx.State().Add(f) {
		c.received[from]++
	} else {
		// Duplicate data (e.g. two nodes held the same fact): still
		// counts toward the origin's contribution.
		c.received[from]++
	}
	c.maybeOutput(ctx)
}

func (c *Coordinated) maybeOutput(ctx *Context) {
	if c.done {
		return
	}
	if ctx.All == nil {
		// Oblivious networks cannot run this protocol: without All a
		// node can never know every contribution has arrived. Staying
		// silent (rather than guessing) keeps the run sound — and is
		// exactly why A0 = M (Theorem 5.3).
		return
	}
	for _, κ := range ctx.All {
		n, ok := c.counts[κ]
		if !ok || c.received[κ] < n {
			return
		}
	}
	c.done = true
	c.Q(dataFacts(ctx.State())).Each(func(f rel.Fact) bool {
		ctx.Output(f)
		return true
	})
}

// CoordinationMessages counts the control-plane messages a run sent
// (exact, from the network's accounting).
func CoordinationMessages(n *Network) int {
	return n.stats.ControlSent
}

// EconomicalBroadcast refines MonotoneBroadcast in the spirit of
// Ketsman-Neven's optimal broadcasting strategies (Section 6): for a
// full conjunctive query without self-joins, only facts that can
// actually participate in the query — facts unifying with some body
// atom — are transmitted; everything else stays local. The query's
// output is unchanged, the communication drops by the selectivity of
// the atoms.
type EconomicalBroadcast struct {
	Q       Query
	Matches func(rel.Fact) bool
}

// Start implements Program.
func (e *EconomicalBroadcast) Start(ctx *Context) {
	ctx.State().Each(func(f rel.Fact) bool {
		if e.Matches(f) {
			ctx.Broadcast(f)
		}
		return true
	})
	e.emit(ctx)
}

// OnMessage implements Program.
func (e *EconomicalBroadcast) OnMessage(ctx *Context, _ policy.Node, f rel.Fact) {
	if ctx.State().Add(f) {
		e.emit(ctx)
	}
}

func (e *EconomicalBroadcast) emit(ctx *Context) {
	e.Q(dataFacts(ctx.State())).Each(func(f rel.Fact) bool {
		ctx.Output(f)
		return true
	})
}
