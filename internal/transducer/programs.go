package transducer

import (
	"fmt"
	"sort"

	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// Query is a generic query over instances, the object transducer
// networks compute.
type Query func(*rel.Instance) *rel.Instance

// MonotoneBroadcast is the naive strategy of Example 5.1(1): output
// Q(state) immediately and whenever state grows, and broadcast the
// local database once. For monotone Q every run of this program
// computes Q on every network and distribution, and the program is
// coordination-free (ideal distribution: full replication).
type MonotoneBroadcast struct {
	Q Query
}

// Start implements Program.
func (m *MonotoneBroadcast) Start(ctx *Context) {
	ctx.State().Each(func(f rel.Fact) bool {
		ctx.Broadcast(f)
		return true
	})
	m.emit(ctx)
}

// OnMessage implements Program.
func (m *MonotoneBroadcast) OnMessage(ctx *Context, _ policy.Node, f rel.Fact) {
	if ctx.State().Add(f) {
		m.emit(ctx)
	}
}

func (m *MonotoneBroadcast) emit(ctx *Context) {
	m.Q(dataFacts(ctx.State())).Each(func(f rel.Fact) bool {
		ctx.Output(f)
		return true
	})
}

// OnPeerRestart implements Recoverer: re-send the full data state to
// the restarted node. For a monotone query more facts never hurt, so
// shipping everything (not just this node's fragment) restores the
// peer fastest.
func (m *MonotoneBroadcast) OnPeerRestart(ctx *Context, κ policy.Node) {
	dataFacts(ctx.State()).Each(func(f rel.Fact) bool {
		ctx.Send(κ, f)
		return true
	})
}

// Snapshot implements Forkable.
func (m *MonotoneBroadcast) Snapshot() Program { return &MonotoneBroadcast{Q: m.Q} }

// Fingerprint implements Forkable: no volatile state beyond the
// node's relational state, which the explorer hashes separately.
func (m *MonotoneBroadcast) Fingerprint() string { return "" }

// Coordinated evaluates an arbitrary query with an explicit
// coordination protocol in the spirit of Example 5.1(2): every node
// broadcasts its data plus a count of how many facts it contributed;
// a node outputs Q(state) only once it has received every node's
// complete contribution. It requires knowledge of All — it is not
// coordination-free, and CoordinationMessages counts the control
// traffic it needed.
type Coordinated struct {
	Q Query

	counts   map[policy.Node]int // announced contribution sizes
	received map[policy.Node]int // distinct data facts received per origin
	seen     map[string]bool     // (origin, fact) pairs already counted
	local    []rel.Fact          // this node's own contribution, for recovery re-sends
	done     bool
}

const countRel = reservedPrefix + "count"

// Start implements Program.
func (c *Coordinated) Start(ctx *Context) {
	c.counts = map[policy.Node]int{}
	c.received = map[policy.Node]int{}
	c.seen = map[string]bool{}
	c.local = nil
	n := 0
	ctx.State().Each(func(f rel.Fact) bool {
		ctx.Broadcast(f)
		c.local = append(c.local, f.Clone())
		n++
		return true
	})
	c.counts[ctx.Self] = n
	c.received[ctx.Self] = n
	ctx.Broadcast(rel.NewFact(countRel, rel.Value(n)))
	c.maybeOutput(ctx)
}

// OnMessage implements Program.
func (c *Coordinated) OnMessage(ctx *Context, from policy.Node, f rel.Fact) {
	if f.Rel == countRel {
		c.counts[from] = int(f.Tuple[0])
	} else {
		ctx.State().Add(f)
		// Count each (origin, fact) pair once: the model allows message
		// duplication, so a raw per-delivery counter would cross the
		// announced threshold early and output an unsound answer. Two
		// origins holding the same fact still count separately.
		key := fmt.Sprintf("%d\x00%s", from, f.Key())
		if !c.seen[key] {
			c.seen[key] = true
			c.received[from]++
		}
	}
	c.maybeOutput(ctx)
}

// OnPeerRestart implements Recoverer: re-send exactly this node's
// original contribution plus its count. Sending more (say, the full
// accumulated state) would be unsound — facts relayed from third
// nodes would inflate the restarted node's per-origin tallies.
func (c *Coordinated) OnPeerRestart(ctx *Context, κ policy.Node) {
	for _, f := range c.local {
		ctx.Send(κ, f)
	}
	ctx.Send(κ, rel.NewFact(countRel, rel.Value(len(c.local))))
}

// Snapshot implements Forkable.
func (c *Coordinated) Snapshot() Program {
	cp := &Coordinated{
		Q:        c.Q,
		counts:   map[policy.Node]int{},
		received: map[policy.Node]int{},
		seen:     map[string]bool{},
		local:    append([]rel.Fact(nil), c.local...),
		done:     c.done,
	}
	for k, v := range c.counts {
		cp.counts[k] = v
	}
	for k, v := range c.received {
		cp.received[k] = v
	}
	for k, v := range c.seen {
		cp.seen[k] = v
	}
	return cp
}

// Fingerprint implements Forkable: a canonical rendering of the
// volatile protocol state (the maps are enumerated in sorted order).
func (c *Coordinated) Fingerprint() string {
	var nodes []int
	for κ := range c.counts {
		nodes = append(nodes, int(κ))
	}
	sort.Ints(nodes)
	s := fmt.Sprintf("done=%v;counts=", c.done)
	for _, κ := range nodes {
		s += fmt.Sprintf("%d:%d,", κ, c.counts[policy.Node(κ)])
	}
	nodes = nodes[:0]
	for κ := range c.received {
		nodes = append(nodes, int(κ))
	}
	sort.Ints(nodes)
	s += ";received="
	for _, κ := range nodes {
		s += fmt.Sprintf("%d:%d,", κ, c.received[policy.Node(κ)])
	}
	var keys []string
	for k := range c.seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s += ";seen="
	for _, k := range keys {
		s += k + ","
	}
	return s
}

func (c *Coordinated) maybeOutput(ctx *Context) {
	if c.done {
		return
	}
	if ctx.All == nil {
		// Oblivious networks cannot run this protocol: without All a
		// node can never know every contribution has arrived. Staying
		// silent (rather than guessing) keeps the run sound — and is
		// exactly why A0 = M (Theorem 5.3).
		return
	}
	for _, κ := range ctx.All {
		n, ok := c.counts[κ]
		if !ok || c.received[κ] < n {
			return
		}
	}
	c.done = true
	c.Q(dataFacts(ctx.State())).Each(func(f rel.Fact) bool {
		ctx.Output(f)
		return true
	})
}

// CoordinationMessages counts the control-plane messages a run sent
// (exact, from the network's accounting).
func CoordinationMessages(n *Network) int {
	return n.stats.ControlSent
}

// EconomicalBroadcast refines MonotoneBroadcast in the spirit of
// Ketsman-Neven's optimal broadcasting strategies (Section 6): for a
// full conjunctive query without self-joins, only facts that can
// actually participate in the query — facts unifying with some body
// atom — are transmitted; everything else stays local. The query's
// output is unchanged, the communication drops by the selectivity of
// the atoms.
type EconomicalBroadcast struct {
	Q       Query
	Matches func(rel.Fact) bool
}

// Start implements Program.
func (e *EconomicalBroadcast) Start(ctx *Context) {
	ctx.State().Each(func(f rel.Fact) bool {
		if e.Matches(f) {
			ctx.Broadcast(f)
		}
		return true
	})
	e.emit(ctx)
}

// OnMessage implements Program.
func (e *EconomicalBroadcast) OnMessage(ctx *Context, _ policy.Node, f rel.Fact) {
	if ctx.State().Add(f) {
		e.emit(ctx)
	}
}

func (e *EconomicalBroadcast) emit(ctx *Context) {
	e.Q(dataFacts(ctx.State())).Each(func(f rel.Fact) bool {
		ctx.Output(f)
		return true
	})
}

// OnPeerRestart implements Recoverer: re-send the query-relevant
// slice of the data state — the same economy discipline Start uses.
func (e *EconomicalBroadcast) OnPeerRestart(ctx *Context, κ policy.Node) {
	dataFacts(ctx.State()).Each(func(f rel.Fact) bool {
		if e.Matches(f) {
			ctx.Send(κ, f)
		}
		return true
	})
}

// Snapshot implements Forkable.
func (e *EconomicalBroadcast) Snapshot() Program {
	return &EconomicalBroadcast{Q: e.Q, Matches: e.Matches}
}

// Fingerprint implements Forkable.
func (e *EconomicalBroadcast) Fingerprint() string { return "" }
