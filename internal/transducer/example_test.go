package transducer_test

import (
	"fmt"

	"mpclogic/internal/cq"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
	"mpclogic/internal/transducer"
)

// The CALM theorem in action: a monotone query (triangles) runs by
// naive broadcast and is coordination-free — on the ideal replicated
// distribution it computes the answer without reading any message.
func ExampleNetwork_RunSilent() {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), E(z, x), x != y, y != z, z != x")
	query := func(i *rel.Instance) *rel.Instance { return cq.Output(q, i) }
	g := rel.MustInstance(d, "E(a,b)", "E(b,c)", "E(c,a)")

	n := transducer.New(3, func() transducer.Program {
		return &transducer.MonotoneBroadcast{Q: query}
	})
	n.LoadReplicated(g)
	stats := n.RunSilent()
	fmt.Println("delivered:", stats.Delivered, "triangles:", n.Output().Len())
	// Output: delivered: 0 triangles: 3
}

// Theorem 5.8: with a queryable distribution policy a node can vouch
// for the absence of the closing edge and output open triangles
// without coordination (Example 5.4's program).
func ExampleOpenTriangle() {
	d := rel.NewDict()
	g := rel.MustInstance(d, "E(a,b)", "E(b,c)")
	pol := &policy.Hash{Nodes: 2}
	n := transducer.New(2, func() transducer.Program { return &transducer.OpenTriangle{} },
		transducer.WithPolicy(pol), transducer.WithSeed(1))
	if err := n.LoadPolicy(g, pol); err != nil {
		fmt.Println(err)
		return
	}
	if _, err := n.Run(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(n.Output().StringWith(d))
	// Output: {H(a,b,c)}
}

// Coordination is measurable: the explicit protocol for non-monotone
// queries sends control messages; the monotone strategy sends none.
func ExampleStats_CoordinationRatio() {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), not E(z, x)")
	query := func(i *rel.Instance) *rel.Instance { return cq.Output(q, i) }
	g := rel.MustInstance(d, "E(a,b)", "E(b,c)")
	n := transducer.New(2, func() transducer.Program { return &transducer.Coordinated{Q: query} },
		transducer.WithSeed(1))
	_ = n.LoadParts(policy.Distribute(&policy.Hash{Nodes: 2}, g))
	stats, _ := n.Run()
	fmt.Println(stats.ControlSent > 0, stats.CoordinationRatio() > 0)
	// Output: true true
}
