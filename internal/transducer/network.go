// Package transducer implements relational transducer networks
// (Section 5 of Neven, PODS 2016; Ameloot-Neven-Van den Bussche): a
// set of computing nodes, each running the same program over its
// relational state, communicating asynchronously through broadcasts
// with arbitrary message delay, under an eventually consistent,
// write-only-output semantics.
//
// The runtime models arbitrary delay with a pluggable Scheduler that
// repeatedly delivers one pending message to its destination
// (fairness: the run only ends when every buffer is empty, so no
// message is ignored forever). The default is the seeded random
// scheduler; FIFO, LIFO, per-node starvation, and a greedy adversary
// stress the same quantifier from other directions, faults.go injects
// the model's duplication plus crash-restart, and explore.go
// exhaustively enumerates every schedule of a small network. Outputs
// are write-only: once emitted, a fact cannot be retracted, which is
// exactly the eventual-consistency discipline of the model.
//
// The package also implements the paper's evaluation strategies:
// naive broadcast for monotone queries (Example 5.1(1)), an explicit
// coordination protocol for arbitrary queries (Example 5.1(2)), the
// policy-aware distinct-complete strategy for Mdistinct (Theorem 5.8,
// Example 5.4), and the domain-guided disjoint-complete strategy for
// Mdisjoint (Theorem 5.12).
package transducer

import (
	"fmt"
	"sort"

	"mpclogic/internal/pc"
	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// Program is the behaviour every node runs. Start is the node's first
// transition (before any delivery); OnMessage is one transition
// consuming one message. Programs interact with the node through the
// Context and must be deterministic functions of (state, input).
type Program interface {
	Start(ctx *Context)
	OnMessage(ctx *Context, from policy.Node, f rel.Fact)
}

// Context is a node's view of itself during a transition.
type Context struct {
	Self policy.Node
	// All lists the network's nodes, or nil when the network is
	// oblivious (the classes A0/A1/A2 have no access to All).
	All []policy.Node

	net   *Network
	state *rel.Instance
}

// State returns the node's relational state (local database plus
// everything received and any auxiliary relations the program keeps).
func (c *Context) State() *rel.Instance { return c.state }

// Output emits a fact to the node's write-only output relation.
func (c *Context) Output(f rel.Fact) {
	c.net.outputs[c.Self].Add(f)
}

// Broadcast sends f to every other node.
func (c *Context) Broadcast(f rel.Fact) {
	for i := 0; i < c.net.p; i++ {
		if policy.Node(i) != c.Self {
			c.net.enqueue(c.Self, policy.Node(i), f)
		}
	}
}

// Send sends f to one node (direct messaging; the paper notes this is
// simulable by tagged broadcast).
func (c *Context) Send(to policy.Node, f rel.Fact) {
	c.net.enqueue(c.Self, to, f)
}

// PolicyAware reports whether the network carries a queryable
// distribution policy.
func (c *Context) PolicyAware() bool { return c.net.pol != nil }

// ResponsibleFor asks the distribution policy whether this node is
// responsible for f. Faithful to the model, the query is only
// permitted for facts over the node's local active domain; violating
// that is a programming error and panics.
func (c *Context) ResponsibleFor(f rel.Fact) bool {
	if c.net.pol == nil {
		panic("transducer: network is not policy-aware")
	}
	adom := c.state.ADom()
	for v := range f.ADom() {
		if !adom.Contains(v) {
			panic(fmt.Sprintf("transducer: policy queried outside local active domain (value %d)", v))
		}
	}
	return c.net.pol.Responsible(c.Self, f)
}

// DomainNodes returns the nodes assigned to value v under a
// domain-guided policy; it panics for other policies or for values
// outside the local active domain.
func (c *Context) DomainNodes(v rel.Value) []policy.Node {
	dg, ok := c.net.pol.(*policy.DomainGuided)
	if !ok {
		panic("transducer: network policy is not domain-guided")
	}
	if !c.state.ADom().Contains(v) {
		panic("transducer: domain query outside local active domain")
	}
	return dg.ValueNodes(v)
}

// Message is an in-flight fact, visible to Schedulers picking the
// next delivery.
type Message struct {
	From, To policy.Node
	Fact     rel.Fact
}

// Stats summarizes a run. Control messages are protocol facts
// (relation names starting with the reserved prefix) as opposed to
// data facts; their share quantifies how much a strategy coordinates —
// the metric Section 6 of the paper asks for.
//
// Accounting invariants, tested in stats_test.go: Delivered ≤ Sent
// always (silent runs read nothing; duplicated copies count as Sent),
// and Steps == p + Delivered + Crashes + Assists (every transition is
// a Start, a delivery, a restart Start, or a recovery assist).
type Stats struct {
	Sent        int // messages enqueued (including injected duplicates)
	ControlSent int // of which control-plane (non-data) facts
	Delivered   int // messages read from buffers
	Steps       int // transitions executed (Start + deliveries + restarts + assists)
	Duplicated  int // extra copies injected by the duplication fault
	Bursts      int // delay bursts begun
	Crashes     int // crash-restart events fired
	Assists     int // peer recovery-assist transitions
}

// CoordinationRatio is the fraction of sent messages that were
// control-plane traffic (0 for pure data-shipping strategies).
func (s Stats) CoordinationRatio() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.ControlSent) / float64(s.Sent)
}

// Network is a relational transducer network instance.
type Network struct {
	p        int
	mk       func() Program // rebuilds a node's program after a crash
	programs []Program
	ctxs     []*Context
	outputs  []*rel.Instance
	buffers  [][]Message
	sched    Scheduler
	faults   *faultState
	store    *policy.StableStore // durable per-node fragments for crash reload
	pol      policy.Policy
	aware    bool // nodes see All
	silent   bool // messages are never delivered (coordination-freeness probe)
	stats    Stats
}

// Option configures a network.
type Option func(*Network)

// WithPolicy makes nodes policy-aware (classes F1/F2).
func WithPolicy(p policy.Policy) Option {
	return func(n *Network) { n.pol = p }
}

// Oblivious removes the All relation (classes A0/A1/A2).
func Oblivious() Option {
	return func(n *Network) { n.aware = false }
}

// WithSeed seeds the default delay-simulating random scheduler.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.sched = NewRandom(seed) }
}

// WithScheduler installs a custom message scheduler (see scheduler.go
// for the matrix of built-in ones).
func WithScheduler(s Scheduler) Option {
	return func(n *Network) { n.sched = s }
}

// New builds a network of p nodes, each running the program returned
// by mk.
func New(p int, mk func() Program, opts ...Option) *Network {
	n := &Network{
		p:        p,
		mk:       mk,
		programs: make([]Program, p),
		ctxs:     make([]*Context, p),
		outputs:  make([]*rel.Instance, p),
		buffers:  make([][]Message, p),
		sched:    NewRandom(1),
		aware:    true,
	}
	for i := 0; i < p; i++ {
		n.programs[i] = mk()
		n.outputs[i] = rel.NewInstance()
		n.ctxs[i] = &Context{Self: policy.Node(i), net: n, state: rel.NewInstance()}
	}
	for _, o := range opts {
		o(n)
	}
	if n.aware {
		all := make([]policy.Node, p)
		for i := range all {
			all[i] = policy.Node(i)
		}
		for _, c := range n.ctxs {
			c.All = all
		}
	}
	return n
}

// LoadParts installs an explicit horizontal distribution: parts[i]
// becomes node i's local database. The union of the parts is the
// global instance. On a policy-aware network (WithPolicy) the parts
// are verified against the declared placement first: a fact loaded
// onto a node the policy never makes responsible for it would poison
// every Responsible/loc-inst-based strategy decision downstream, so a
// nonconforming distribution is rejected with the Fact.Less-minimal
// violation instead of silently accepted.
func (n *Network) LoadParts(parts []*rel.Instance) error {
	if len(parts) != n.p {
		return fmt.Errorf("transducer: %d parts for %d nodes", len(parts), n.p)
	}
	if n.pol != nil {
		if vs := pc.VerifyPlacement(n.pol, parts); len(vs) > 0 {
			return fmt.Errorf("transducer: loaded distribution violates the declared policy: %w", vs[0])
		}
	}
	for i, part := range parts {
		n.ctxs[i].state = part.Clone()
	}
	n.store = policy.NewStableStore(parts)
	return nil
}

// LoadPolicy distributes the global instance according to a
// distribution policy P^H (every node gets loc-inst(κ)).
func (n *Network) LoadPolicy(i *rel.Instance, p policy.Policy) error {
	if p.NumNodes() != n.p {
		return fmt.Errorf("transducer: policy has %d nodes, network %d", p.NumNodes(), n.p)
	}
	return n.LoadParts(policy.Distribute(p, i))
}

// LoadReplicated gives every node the full instance — the ideal
// distribution of the coordination-freeness definition.
func (n *Network) LoadReplicated(i *rel.Instance) {
	parts := make([]*rel.Instance, n.p)
	for j, c := range n.ctxs {
		c.state = i.Clone()
		parts[j] = i
	}
	n.store = policy.NewStableStore(parts)
}

func (n *Network) enqueue(from, to policy.Node, f rel.Fact) {
	copies := 1
	if fs := n.faults; fs != nil && fs.dupBound > 0 {
		extra := fs.dupRng.Intn(fs.dupBound + 1)
		copies += extra
		n.stats.Duplicated += extra
	}
	control := ControlFact(f)
	for c := 0; c < copies; c++ {
		n.stats.Sent++
		if control {
			n.stats.ControlSent++
		}
		if n.silent {
			continue // sent but never read
		}
		n.buffers[to] = append(n.buffers[to], Message{From: from, To: to, Fact: f.Clone()})
	}
}

// MaxSteps bounds a run; programs that never quiesce are reported as
// errors rather than looping forever.
const MaxSteps = 2_000_000

// Run executes the network to quiescence: every node takes its Start
// transition (in the scheduler's start order), then pending messages
// are delivered one at a time as the scheduler picks them until all
// buffers drain, with any configured faults injected along the way.
// It returns the run statistics.
func (n *Network) Run() (Stats, error) {
	n.start()
	for {
		n.maybeCrash(false)
		view, any := n.deliveryView()
		if !any {
			// Quiescent. Fire crash events whose trigger was never
			// reached — a restart may send recovery traffic, so loop
			// back rather than return.
			n.maybeCrash(true)
			if _, again := n.deliveryView(); !again {
				return n.stats, nil
			}
			continue
		}
		if n.stats.Steps > MaxSteps {
			return n.stats, fmt.Errorf("transducer: no quiescence after %d steps", MaxSteps)
		}
		ni, mi := n.sched.Next(view)
		b := n.buffers[ni]
		if ni < 0 || ni >= n.p || mi < 0 || mi >= len(b) {
			panic(fmt.Sprintf("transducer: scheduler picked invalid delivery (node %d, pos %d)", ni, mi))
		}
		m := b[mi]
		if n.sched.OrderPreserving() {
			n.buffers[ni] = append(b[:mi], b[mi+1:]...)
		} else {
			// Swap-removal: the historical mutation the seeded-random
			// scheduler's bit-compatibility depends on.
			b[mi] = b[len(b)-1]
			n.buffers[ni] = b[:len(b)-1]
		}

		n.stats.Delivered++
		n.stats.Steps++
		n.programs[ni].OnMessage(n.ctxs[ni], m.From, m.Fact)
	}
}

// RunSilent executes only the Start transitions and discards every
// sent message — the "no input messages are ever read" regime of the
// coordination-freeness definition. The network must already hold the
// ideal distribution.
func (n *Network) RunSilent() Stats {
	n.silent = true
	n.start()
	n.silent = false
	return n.stats
}

func (n *Network) start() {
	order := n.sched.StartOrder(n.p)
	for _, i := range order {
		n.stats.Steps++
		n.programs[i].Start(n.ctxs[i])
	}
}

// Output returns the union of all nodes' output relations.
func (n *Network) Output() *rel.Instance {
	out := rel.NewInstance()
	for _, o := range n.outputs {
		out.AddAll(o)
	}
	return out
}

// NodeOutput returns one node's output.
func (n *Network) NodeOutput(i policy.Node) *rel.Instance { return n.outputs[i] }

// Stats returns the statistics so far.
func (n *Network) Stats() Stats { return n.stats }

// reservedPrefix marks control-plane relations; workloads must not use
// it.
const reservedPrefix = "⟂"

// ControlFact reports whether f is a protocol control fact rather than
// data.
func ControlFact(f rel.Fact) bool {
	return len(f.Rel) >= len(reservedPrefix) && f.Rel[:len(reservedPrefix)] == reservedPrefix
}

// dataFacts filters control facts out of an instance.
func dataFacts(i *rel.Instance) *rel.Instance {
	return i.Filter(func(f rel.Fact) bool { return !ControlFact(f) })
}

// sortedNodes renders node lists deterministically (for tests).
func sortedNodes(ns []policy.Node) []policy.Node {
	out := append([]policy.Node(nil), ns...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
