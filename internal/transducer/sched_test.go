package transducer

import (
	"fmt"
	"testing"

	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// The seeded-random scheduler must stay bit-compatible with the
// pre-extraction Network.Run: same seed, same schedule, same outputs.
// The table below was captured from the runtime BEFORE the Scheduler
// interface existed; this test pins the exact rand.Rand consumption
// sequence (Perm for the start order, two Intn per delivery, swap
// removal) so refactors cannot silently change historical runs.
//
// The workload is deliberately schedule-SENSITIVE: naive broadcast of
// the non-monotone open-triangle query on a closed triangle emits
// different spurious facts per node depending on delivery order, so
// any deviation in the schedule shows up as a different output.
func TestRandomSchedulerBitCompatible(t *testing.T) {
	d := rel.NewDict()
	q := openTriangles(d)
	golden := []struct {
		seed       int64
		n0, n1, n2 string
	}{
		{0, "{H(0,1,2)}", "{H(0,1,2)}", "{H(1,2,0)}"},
		{1, "{H(2,0,1)}", "{H(0,1,2)}", "{H(1,2,0)}"},
		{2, "{H(0,1,2)}", "{H(0,1,2)}", "{H(2,0,1)}"},
		{3, "{H(0,1,2)}", "{H(0,1,2)}", "{H(1,2,0)}"},
		{4, "{H(2,0,1)}", "{H(1,2,0)}", "{H(2,0,1)}"},
		{5, "{H(0,1,2)}", "{H(0,1,2)}", "{H(1,2,0)}"},
		{6, "{H(0,1,2)}", "{H(0,1,2)}", "{H(1,2,0)}"},
		{7, "{H(2,0,1)}", "{H(1,2,0)}", "{H(2,0,1)}"},
	}
	for _, g := range golden {
		n := New(3, func() Program { return &MonotoneBroadcast{Q: q} }, WithSeed(g.seed))
		parts := []*rel.Instance{
			rel.MustInstance(d, "E(0,1)"),
			rel.MustInstance(d, "E(1,2)"),
			rel.MustInstance(d, "E(2,0)"),
		}
		if err := n.LoadParts(parts); err != nil {
			t.Fatal(err)
		}
		st, err := n.Run()
		if err != nil {
			t.Fatal(err)
		}
		if st.Sent != 6 || st.Delivered != 6 || st.Steps != 9 {
			t.Fatalf("seed %d: stats drifted: %+v", g.seed, st)
		}
		got := []string{
			n.NodeOutput(0).String(),
			n.NodeOutput(1).String(),
			n.NodeOutput(2).String(),
		}
		want := []string{g.n0, g.n1, g.n2}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("seed %d node %d: got %s, want %s (schedule not bit-compatible)",
					g.seed, i, got[i], want[i])
			}
		}
	}
}

// Converged-output goldens for the three Section 5 strategies,
// captured pre-refactor: same seeds must reproduce the same stats and
// per-node outputs exactly.
func TestGoldenStrategiesBitCompatible(t *testing.T) {
	d := rel.NewDict()
	g := workload.RandomGraph(9, 20, 7)

	wantMono := "{H(0,4,3), H(0,5,3), H(0,5,8), H(2,5,8), H(3,0,4), H(3,0,5), H(4,3,0), H(5,3,0), H(5,8,0), H(5,8,2), H(8,0,5), H(8,2,5)}"
	tri := triangles(d)
	for _, seed := range []int64{1, 42} {
		n := New(3, func() Program { return &MonotoneBroadcast{Q: tri} }, WithSeed(seed))
		pol := &policy.Hash{Nodes: 3}
		if err := n.LoadParts(policy.Distribute(pol, g)); err != nil {
			t.Fatal(err)
		}
		st, err := n.Run()
		if err != nil {
			t.Fatal(err)
		}
		if st.Sent != 40 || st.ControlSent != 0 || st.Delivered != 40 || st.Steps != 43 {
			t.Fatalf("mono seed %d: stats drifted: %+v", seed, st)
		}
		for i := 0; i < 3; i++ {
			if out := n.NodeOutput(policy.Node(i)).String(); out != wantMono {
				t.Errorf("mono seed %d node %d: output drifted:\n got %s\nwant %s", seed, i, out, wantMono)
			}
		}
	}

	open := openTriangles(d)
	for _, seed := range []int64{1, 42} {
		n := New(4, func() Program { return &Coordinated{Q: open} }, WithSeed(seed))
		pol := &policy.Hash{Nodes: 4}
		if err := n.LoadParts(policy.Distribute(pol, g)); err != nil {
			t.Fatal(err)
		}
		st, err := n.Run()
		if err != nil {
			t.Fatal(err)
		}
		if st.Sent != 72 || st.ControlSent != 12 || st.Delivered != 72 || st.Steps != 76 {
			t.Fatalf("coord seed %d: stats drifted: %+v", seed, st)
		}
		for i := 0; i < 4; i++ {
			if got := n.NodeOutput(policy.Node(i)).Len(); got != 33 {
				t.Errorf("coord seed %d node %d: %d output facts, want 33", seed, i, got)
			}
		}
	}

	pol := &policy.DomainGuided{Nodes: 3, DefaultWidth: 1}
	g3 := workload.ComponentsGraph(3, 3)
	n := New(3, func() Program { return &DisjointComplete{Q: notTC} }, WithSeed(5), WithPolicy(pol))
	if err := n.LoadPolicy(g3, pol); err != nil {
		t.Fatal(err)
	}
	st, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 108 || st.ControlSent != 72 || st.Delivered != 108 || st.Steps != 111 {
		t.Fatalf("disjoint seed 5: stats drifted: %+v", st)
	}
	for i := 0; i < 3; i++ {
		if got := n.NodeOutput(policy.Node(i)).Len(); got != 54 {
			t.Errorf("disjoint seed 5 node %d: %d output facts, want 54", i, got)
		}
	}
}

// Every scheduler in the matrix drives every Section 5 strategy to
// the centralized answer: the theorems' schedule quantifier, sampled
// across qualitatively different adversaries rather than seeds.
func TestSchedulerMatrixCorrectness(t *testing.T) {
	d := rel.NewDict()
	tri := triangles(d)
	g := workload.RandomGraph(9, 20, 7)
	wantTri := tri(g)

	q := Query(notTC)
	g3 := workload.ComponentsGraph(3, 3)
	wantNTC := q(g3)

	for name, mkSched := range schedulerFactories(4, 13) {
		t.Run(name, func(t *testing.T) {
			// Monotone broadcast.
			n := New(4, func() Program { return &MonotoneBroadcast{Q: tri} }, WithScheduler(mkSched()))
			if err := n.LoadParts(hashParts(g, 4)); err != nil {
				t.Fatal(err)
			}
			if _, err := n.Run(); err != nil {
				t.Fatal(err)
			}
			if !n.Output().Equal(wantTri) {
				t.Errorf("monotone broadcast wrong under %s", name)
			}

			// Coordinated protocol.
			open := openTriangles(d)
			n2 := New(4, func() Program { return &Coordinated{Q: open} }, WithScheduler(mkSched()))
			if err := n2.LoadParts(hashParts(g, 4)); err != nil {
				t.Fatal(err)
			}
			if _, err := n2.Run(); err != nil {
				t.Fatal(err)
			}
			if !n2.Output().Equal(open(g)) {
				t.Errorf("coordinated protocol wrong under %s", name)
			}

			// Policy-aware open triangle.
			pol := &policy.Hash{Nodes: 4}
			n3 := New(4, func() Program { return &OpenTriangle{} }, WithScheduler(mkSched()), WithPolicy(pol))
			if err := n3.LoadPolicy(g, pol); err != nil {
				t.Fatal(err)
			}
			if _, err := n3.Run(); err != nil {
				t.Fatal(err)
			}
			if !n3.Output().Equal(open(g)) {
				t.Errorf("open-triangle program wrong under %s", name)
			}

			// Domain-guided ¬TC.
			dgpol := &policy.DomainGuided{Nodes: 4, DefaultWidth: 1}
			n4 := New(4, func() Program { return &DisjointComplete{Q: q} }, WithScheduler(mkSched()), WithPolicy(dgpol))
			if err := n4.LoadPolicy(g3, dgpol); err != nil {
				t.Fatal(err)
			}
			if _, err := n4.Run(); err != nil {
				t.Fatal(err)
			}
			if !n4.Output().Equal(wantNTC) {
				t.Errorf("disjoint-complete wrong under %s", name)
			}
		})
	}
}

// schedulerFactories mirrors SchedulerMatrix but returns constructors
// (schedulers are stateful: one instance must not be shared between
// runs).
func schedulerFactories(p int, seed int64) map[string]func() Scheduler {
	m := map[string]func() Scheduler{
		"random":    func() Scheduler { return NewRandom(seed) },
		"fifo":      func() Scheduler { return &FIFO{} },
		"lifo":      func() Scheduler { return &LIFO{} },
		"adversary": func() Scheduler { return GreedyAdversary{} },
	}
	for i := 0; i < p; i++ {
		v := policy.Node(i)
		m[fmt.Sprintf("starve%d", i)] = func() Scheduler { return &Starve{Victim: v} }
	}
	return m
}

// Deterministic schedulers are reproducible run-to-run, and the
// random scheduler is reproducible per seed.
func TestSchedulersDeterministic(t *testing.T) {
	d := rel.NewDict()
	q := openTriangles(d)
	run := func(mk func() Scheduler) string {
		n := New(3, func() Program { return &MonotoneBroadcast{Q: q} }, WithScheduler(mk()))
		parts := []*rel.Instance{
			rel.MustInstance(d, "E(0,1)"),
			rel.MustInstance(d, "E(1,2)"),
			rel.MustInstance(d, "E(2,0)"),
		}
		if err := n.LoadParts(parts); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Run(); err != nil {
			t.Fatal(err)
		}
		out := ""
		for i := 0; i < 3; i++ {
			out += n.NodeOutput(policy.Node(i)).String() + "|"
		}
		return out
	}
	for name, mk := range schedulerFactories(3, 99) {
		if a, b := run(mk), run(mk); a != b {
			t.Errorf("scheduler %s not reproducible: %s vs %s", name, a, b)
		}
	}
}
