package transducer

import (
	"math/rand"

	"mpclogic/internal/policy"
	"mpclogic/internal/rel"
)

// This file implements the fault model the paper's asynchronous
// networks live in. Ameloot-Neven-Van den Bussche's communication
// semantics allows messages to be arbitrarily delayed *and
// duplicated*; production systems additionally crash and restart.
// Each fault is an Option with its own explicitly seeded generator
// (independent of the scheduler's, so enabling a fault never perturbs
// which schedule the scheduler would have chosen) and full Stats
// accounting.
//
// Crash-restart semantics follow the standard split into durable and
// volatile state: the node's local database (its horizontal fragment,
// held in a policy.StableStore) survives and is reloaded, while the
// transducer's auxiliary state — everything received, every protocol
// map — is lost. After reloading, the node re-runs its Start
// transition, and every peer implementing Recoverer takes one
// recovery-assist transition targeted at the restarted node. Messages
// already in flight are the network's, not the node's, and survive.

// faultState carries the configured fault injectors of one network.
type faultState struct {
	// Bounded duplication: each enqueued message is followed by up to
	// dupBound extra copies, drawn from dupRng.
	dupBound int
	dupRng   *rand.Rand

	// Delay bursts: every burstEvery deliveries, one node (drawn from
	// burstRng) has its inbound deliveries frozen for the next
	// burstLen scheduling decisions.
	burstEvery int
	burstLen   int
	burstRng   *rand.Rand
	nextBurst  int
	frozen     int
	frozenLeft int

	// Crash-restart events, fired in order as Delivered passes each
	// trigger; events whose trigger is never reached fire at
	// quiescence so a configured crash always happens.
	crashes []crashEvent
}

// crashEvent is one crash-restart: a single node, or — the correlated
// case a shared rack or failure domain produces — a whole group that
// fails as a unit.
type crashEvent struct {
	nodes []policy.Node
	after int // fire once Stats.Delivered reaches this
	done  bool
}

func (n *Network) faultsLazy() *faultState {
	if n.faults == nil {
		n.faults = &faultState{frozen: -1}
	}
	return n.faults
}

// WithDuplication enables bounded message duplication: every sent
// message is enqueued 1+k times with k drawn uniformly from
// [0, bound], using a dedicated generator seeded with seed. The model
// explicitly permits duplication, so a correct strategy's output must
// not change; Stats.Duplicated counts the injected copies.
func WithDuplication(bound int, seed int64) Option {
	return func(n *Network) {
		f := n.faultsLazy()
		f.dupBound = bound
		f.dupRng = rand.New(rand.NewSource(seed))
	}
}

// WithDelayBursts freezes inbound delivery to one random node for
// length scheduling decisions, every every-th delivery — a burst of
// the "arbitrary delay" the model allows, concentrated on one node.
// Liveness is preserved: a frozen node thaws early when it holds the
// only pending messages. Stats.Bursts counts the bursts begun.
func WithDelayBursts(every, length int, seed int64) Option {
	return func(n *Network) {
		f := n.faultsLazy()
		f.burstEvery = every
		f.burstLen = length
		f.burstRng = rand.New(rand.NewSource(seed))
		f.nextBurst = every
		f.frozen = -1
	}
}

// WithCrashRestart schedules a crash-restart of node κ once the run
// has delivered afterDeliveries messages (or at quiescence, if the
// run drains earlier). The node reloads its durable local database
// from the network's stable store, loses all volatile state, and
// re-runs Start; peers implementing Recoverer assist. The option may
// be given multiple times to schedule several crashes.
func WithCrashRestart(κ policy.Node, afterDeliveries int) Option {
	return func(n *Network) {
		f := n.faultsLazy()
		f.crashes = append(f.crashes, crashEvent{nodes: []policy.Node{κ}, after: afterDeliveries})
	}
}

// WithGroupCrashRestart schedules a correlated crash-restart of a
// whole node group — a rack losing power — at the same trigger as
// WithCrashRestart. The group fails as a unit: every member loses its
// volatile state before any member restarts, so no member's recovery
// assist can come from inside the group; only surviving peers outside
// it take recovery-assist transitions. This is strictly harsher than
// the same crashes scheduled independently, where an earlier victim is
// already back up (volatile state rebuilt by Start) when it assists a
// later one.
func WithGroupCrashRestart(group []policy.Node, afterDeliveries int) Option {
	return func(n *Network) {
		f := n.faultsLazy()
		f.crashes = append(f.crashes, crashEvent{
			nodes: append([]policy.Node(nil), group...),
			after: afterDeliveries,
		})
	}
}

// Recoverer is implemented by programs that assist a crashed peer
// after its restart: OnPeerRestart runs as one transition on a live
// node and should re-send (targeted, via ctx.Send) whatever the
// restarted node needs to rebuild what it lost — typically the
// sender's own contribution, exactly as Start first announced it.
// Programs without a Recoverer still run under crash-restart, but the
// restarted node then recovers only what the strategy's own message
// flow re-delivers.
type Recoverer interface {
	OnPeerRestart(ctx *Context, κ policy.Node)
}

// maybeCrash fires every due crash event. force fires the not-yet-due
// ones too (used at quiescence).
func (n *Network) maybeCrash(force bool) {
	if n.faults == nil {
		return
	}
	for i := range n.faults.crashes {
		ev := &n.faults.crashes[i]
		if ev.done || (!force && n.stats.Delivered < ev.after) {
			continue
		}
		ev.done = true
		n.crashRestart(ev.nodes)
	}
}

// crashRestart models fail-stop + recovery of a node group (usually a
// singleton): volatile state (program fields, received facts, protocol
// maps) is lost, the durable local database is reloaded, outputs —
// write-only and already published — persist, and in-flight messages
// stay queued. All members fail before any restarts, so a correlated
// group never self-assists: each member re-runs Start from its durable
// fragment alone, and recovery assists come only from peers outside
// the group.
func (n *Network) crashRestart(group []policy.Node) {
	in := make(map[policy.Node]bool, len(group))
	for _, κ := range group {
		in[κ] = true
		n.stats.Crashes++
		n.programs[κ] = n.mk()
		n.ctxs[κ].state = n.reload(κ)
	}
	for _, κ := range group {
		n.stats.Steps++
		n.programs[κ].Start(n.ctxs[κ])
	}
	for _, κ := range group {
		for i := 0; i < n.p; i++ {
			if in[policy.Node(i)] {
				continue
			}
			if r, ok := n.programs[i].(Recoverer); ok {
				n.stats.Assists++
				n.stats.Steps++
				r.OnPeerRestart(n.ctxs[i], κ)
			}
		}
	}
}

// reload returns node κ's durable local database.
func (n *Network) reload(κ policy.Node) *rel.Instance {
	if n.store == nil {
		return rel.NewInstance()
	}
	return n.store.Reload(κ)
}

// deliveryView returns the buffers the scheduler may pick from,
// hiding a burst-frozen node, and whether any message is pending at
// all. The returned view aliases the real buffers unless a freeze is
// active, so the fault-free path allocates nothing.
func (n *Network) deliveryView() ([][]Message, bool) {
	any := false
	for _, b := range n.buffers {
		if len(b) > 0 {
			any = true
			break
		}
	}
	if !any {
		return nil, false
	}
	f := n.faults
	if f == nil || f.burstLen == 0 {
		return n.buffers, true
	}
	if f.frozenLeft == 0 && n.stats.Delivered >= f.nextBurst {
		f.frozen = f.burstRng.Intn(n.p)
		f.frozenLeft = f.burstLen
		f.nextBurst = n.stats.Delivered + f.burstEvery
		n.stats.Bursts++
	}
	if f.frozenLeft == 0 {
		return n.buffers, true
	}
	othersPending := false
	for i, b := range n.buffers {
		if i != f.frozen && len(b) > 0 {
			othersPending = true
			break
		}
	}
	if !othersPending {
		// The frozen node holds the only pending messages: thaw early,
		// or fairness (eventual delivery) would be violated.
		f.frozenLeft = 0
		return n.buffers, true
	}
	f.frozenLeft--
	view := make([][]Message, n.p)
	copy(view, n.buffers)
	view[f.frozen] = nil
	return view, true
}
