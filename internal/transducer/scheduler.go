package transducer

import (
	"math/rand"
	"strconv"

	"mpclogic/internal/policy"
)

// Scheduler decides which pending message the network delivers next.
// Section 5's theorems quantify over *every* message schedule — the
// model of Ameloot-Neven-Van den Bussche allows arbitrary delay — so
// the runtime factors the schedule out of Run into this interface:
// correctness claims are then tested against many schedulers (and,
// for small networks, against all schedules via Explore).
//
// The runtime guarantees fairness by construction: Next is called
// until every buffer drains, so no implementation can ignore a
// message forever — only delay it.
type Scheduler interface {
	// StartOrder returns the order (a permutation of 0..p-1) in which
	// the p nodes take their Start transitions.
	StartOrder(p int) []int

	// Next picks the next delivery from the buffer view: the node
	// whose buffer to deliver from and the position within it.
	// buffers[i] is node i's pending queue; at least one is nonempty
	// (a fault-frozen node appears empty). Picking an empty buffer or
	// an out-of-range position is a programming error and panics.
	Next(buffers [][]Message) (node, pos int)

	// OrderPreserving reports whether the runtime must preserve the
	// relative order of the remaining messages when removing the
	// picked one (FIFO/LIFO disciplines need it). When false the
	// runtime swap-removes — the historical behavior the seeded-random
	// scheduler's bit-compatibility depends on.
	OrderPreserving() bool
}

// identityOrder returns 0..p-1.
func identityOrder(p int) []int {
	out := make([]int, p)
	for i := range out {
		out[i] = i
	}
	return out
}

// Random is the seeded-random scheduler: arbitrary delay simulated by
// delivering a uniformly random pending message each step. It is
// bit-compatible with the pre-extraction Network.Run: for the same
// seed it consumes the generator in exactly the same call sequence
// (Perm for the start order, then two Intn per delivery), so runs
// reproduce historical outputs exactly.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a Random scheduler seeded with seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// StartOrder implements Scheduler.
func (r *Random) StartOrder(p int) []int { return r.rng.Perm(p) }

// Next implements Scheduler.
func (r *Random) Next(buffers [][]Message) (int, int) {
	var pending []int
	for i, b := range buffers {
		if len(b) > 0 {
			pending = append(pending, i)
		}
	}
	ni := pending[r.rng.Intn(len(pending))]
	return ni, r.rng.Intn(len(buffers[ni]))
}

// OrderPreserving implements Scheduler.
func (r *Random) OrderPreserving() bool { return false }

// FIFO delivers each node's oldest pending message, visiting nodes in
// round-robin order — the most network-like well-behaved schedule
// (per-link in-order delivery, no starvation).
type FIFO struct {
	cursor int
}

// StartOrder implements Scheduler.
func (f *FIFO) StartOrder(p int) []int { return identityOrder(p) }

// Next implements Scheduler.
func (f *FIFO) Next(buffers [][]Message) (int, int) {
	p := len(buffers)
	for k := 0; k < p; k++ {
		i := (f.cursor + k) % p
		if len(buffers[i]) > 0 {
			f.cursor = (i + 1) % p
			return i, 0
		}
	}
	panic("transducer: FIFO.Next called with no pending messages")
}

// OrderPreserving implements Scheduler.
func (f *FIFO) OrderPreserving() bool { return true }

// LIFO delivers each node's newest pending message first (a stack
// discipline), visiting nodes in round-robin order. It maximizes
// reordering relative to send order while staying deterministic.
type LIFO struct {
	cursor int
}

// StartOrder implements Scheduler.
func (l *LIFO) StartOrder(p int) []int { return identityOrder(p) }

// Next implements Scheduler.
func (l *LIFO) Next(buffers [][]Message) (int, int) {
	p := len(buffers)
	for k := 0; k < p; k++ {
		i := (l.cursor + k) % p
		if n := len(buffers[i]); n > 0 {
			l.cursor = (i + 1) % p
			return i, n - 1
		}
	}
	panic("transducer: LIFO.Next called with no pending messages")
}

// OrderPreserving implements Scheduler.
func (l *LIFO) OrderPreserving() bool { return true }

// Starve starves one victim node: messages addressed to it are
// delivered only when every other buffer is empty. This is the
// per-node-starvation adversary — it stays within the model's
// fairness guarantee (the victim's messages are delivered eventually)
// while maximizing the victim's information lag.
type Starve struct {
	Victim policy.Node
	cursor int
}

// StartOrder implements Scheduler. The victim starts last.
func (s *Starve) StartOrder(p int) []int {
	out := make([]int, 0, p)
	for i := 0; i < p; i++ {
		if policy.Node(i) != s.Victim {
			out = append(out, i)
		}
	}
	if int(s.Victim) < p {
		out = append(out, int(s.Victim))
	}
	return out
}

// Next implements Scheduler.
func (s *Starve) Next(buffers [][]Message) (int, int) {
	p := len(buffers)
	for k := 0; k < p; k++ {
		i := (s.cursor + k) % p
		if policy.Node(i) == s.Victim {
			continue
		}
		if len(buffers[i]) > 0 {
			s.cursor = (i + 1) % p
			return i, 0
		}
	}
	if int(s.Victim) < p && len(buffers[s.Victim]) > 0 {
		return int(s.Victim), 0
	}
	panic("transducer: Starve.Next called with no pending messages")
}

// OrderPreserving implements Scheduler.
func (s *Starve) OrderPreserving() bool { return true }

// GreedyAdversary delays the Fact.Less-minimal pending message the
// longest: each step it delivers the Less-maximal message instead
// (ties broken by lowest node, then lowest position). Programs whose
// correctness silently leans on small facts — the ones emitted first
// by sorted enumerations — arriving early break under this schedule.
type GreedyAdversary struct{}

// StartOrder implements Scheduler. Nodes start in reverse order, the
// adversarial mirror of the sorted default.
func (GreedyAdversary) StartOrder(p int) []int {
	out := make([]int, p)
	for i := range out {
		out[i] = p - 1 - i
	}
	return out
}

// Next implements Scheduler.
func (GreedyAdversary) Next(buffers [][]Message) (int, int) {
	bestN, bestP := -1, -1
	for i, b := range buffers {
		for j, m := range b {
			if bestN < 0 || buffers[bestN][bestP].Fact.Less(m.Fact) {
				bestN, bestP = i, j
			}
		}
	}
	if bestN < 0 {
		panic("transducer: GreedyAdversary.Next called with no pending messages")
	}
	return bestN, bestP
}

// OrderPreserving implements Scheduler.
func (GreedyAdversary) OrderPreserving() bool { return true }

// SchedulerMatrix returns one instance of every deterministic
// scheduler plus a seeded-random one, keyed by name — the standard
// matrix the robustness tests and the chaos experiments sweep.
// Starvation is instantiated once per node of a p-node network.
func SchedulerMatrix(p int, seed int64) map[string]Scheduler {
	m := map[string]Scheduler{
		"random":    NewRandom(seed),
		"fifo":      &FIFO{},
		"lifo":      &LIFO{},
		"adversary": GreedyAdversary{},
	}
	for i := 0; i < p; i++ {
		m["starve"+strconv.Itoa(i)] = &Starve{Victim: policy.Node(i)}
	}
	return m
}
