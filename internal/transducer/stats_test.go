package transducer

import (
	"testing"

	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// The accounting invariants documented on Stats, checked across the
// regimes that stress them: plain runs, silent runs (sent but never
// read), and duplication (extra copies count as Sent).
func TestStatsInvariants(t *testing.T) {
	d := rel.NewDict()
	tri := triangles(d)
	g := workload.RandomGraph(9, 20, 7)
	p := 3

	// Fault-free: every message is eventually read, so the step count
	// is exactly the p Starts plus one step per delivery.
	n := New(p, func() Program { return &MonotoneBroadcast{Q: tri} }, WithSeed(3))
	if err := n.LoadParts(hashParts(g, p)); err != nil {
		t.Fatal(err)
	}
	st, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered > st.Sent {
		t.Errorf("fault-free: Delivered %d > Sent %d", st.Delivered, st.Sent)
	}
	if st.Steps != p+st.Delivered {
		t.Errorf("fault-free: Steps %d != p %d + Delivered %d", st.Steps, p, st.Delivered)
	}

	// Silent: messages are sent but never read — the strict case of
	// Delivered ≤ Sent.
	n2 := New(p, func() Program { return &MonotoneBroadcast{Q: tri} })
	if err := n2.LoadParts(hashParts(g, p)); err != nil {
		t.Fatal(err)
	}
	st2 := n2.RunSilent()
	if st2.Sent == 0 {
		t.Fatal("silent run sent nothing: workload too small to exercise the invariant")
	}
	if st2.Delivered != 0 {
		t.Errorf("silent: Delivered %d != 0", st2.Delivered)
	}

	// Duplication: injected copies inflate Sent, never Delivered past
	// it, and the step identity picks up the crash/assist terms (zero
	// here).
	n3 := New(p, func() Program { return &MonotoneBroadcast{Q: tri} }, WithSeed(3), WithDuplication(3, 17))
	if err := n3.LoadParts(hashParts(g, p)); err != nil {
		t.Fatal(err)
	}
	st3, err := n3.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st3.Duplicated == 0 {
		t.Fatal("duplication bound 3 injected nothing")
	}
	if st3.Sent != st.Sent+st3.Duplicated {
		t.Errorf("duplication: Sent %d != base Sent %d + Duplicated %d", st3.Sent, st.Sent, st3.Duplicated)
	}
	if st3.Delivered > st3.Sent {
		t.Errorf("duplication: Delivered %d > Sent %d", st3.Delivered, st3.Sent)
	}
	if st3.Steps != p+st3.Delivered+st3.Crashes+st3.Assists {
		t.Errorf("duplication: step identity violated: %+v", st3)
	}
}

// CoordinationRatio must not divide by zero on a network that never
// sent anything, and must report the control share exactly otherwise.
func TestCoordinationRatioEdgeCases(t *testing.T) {
	if r := (Stats{}).CoordinationRatio(); r != 0 {
		t.Errorf("zero-sent CoordinationRatio = %v, want 0", r)
	}
	if r := (Stats{Sent: 8, ControlSent: 2}).CoordinationRatio(); r != 0.25 {
		t.Errorf("CoordinationRatio = %v, want 0.25", r)
	}
	if r := (Stats{Sent: 5}).CoordinationRatio(); r != 0 {
		t.Errorf("pure-data CoordinationRatio = %v, want 0", r)
	}
}

// ControlFact keys on the reserved "⟂" (U+27C2) prefix, a multi-byte
// rune: the comparison must be over the full prefix bytes, not just
// the first byte — "⊥" (U+22A5) shares the leading 0xe2 — and must
// not slice out of range on relation names shorter than the prefix.
func TestControlFactPrefix(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"⟂count", true},
		{"⟂", true},
		{"⟂req", true},
		{"⊥count", false}, // U+22A5, first byte equal to the prefix's
		{"⊥", false},
		{"E", false},  // shorter than the 3-byte prefix
		{"", false},   // empty
		{"Ed", false}, // 2 bytes, still shorter than the prefix
		{"count", false},
		{"x⟂", false}, // prefix, not substring
	}
	for _, c := range cases {
		f := rel.NewFact(c.name, rel.Value(0))
		if got := ControlFact(f); got != c.want {
			t.Errorf("ControlFact(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

// ControlSent counts exactly the control-plane messages: the
// coordinated protocol's done-round is its only control traffic, and
// its size is known in closed form (each node broadcasts one done fact
// to the p-1 others).
func TestControlSentAccounting(t *testing.T) {
	d := rel.NewDict()
	open := openTriangles(d)
	g := workload.RandomGraph(9, 20, 7)
	p := 4
	n := New(p, func() Program { return &Coordinated{Q: open} }, WithSeed(6))
	if err := n.LoadParts(hashParts(g, p)); err != nil {
		t.Fatal(err)
	}
	st, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := p * (p - 1); st.ControlSent != want {
		t.Errorf("ControlSent = %d, want %d", st.ControlSent, want)
	}
	if st.ControlSent >= st.Sent {
		t.Errorf("control traffic %d should be a strict minority of %d sent", st.ControlSent, st.Sent)
	}
	if r := st.CoordinationRatio(); r <= 0 || r >= 1 {
		t.Errorf("coordinated strategy ratio %v outside (0,1)", r)
	}

	// Pure data-shipping never pays coordination.
	tri := triangles(d)
	n2 := New(p, func() Program { return &MonotoneBroadcast{Q: tri} }, WithSeed(6))
	if err := n2.LoadParts(hashParts(g, p)); err != nil {
		t.Fatal(err)
	}
	st2, err := n2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st2.ControlSent != 0 || st2.CoordinationRatio() != 0 {
		t.Errorf("monotone broadcast paid coordination: %+v", st2)
	}
}
