package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NondetTaintAnalyzer is the interprocedural nondeterminism-taint
// analysis. Taint *sources* are the repo's known nondeterminism
// generators — map and sync.Map.Range iteration order, select-winner
// choice, goroutine completion order, unseeded math/rand, and
// wall-clock reads. Taint propagates through assignments, composite
// literals, returns, and call sites via function summaries computed
// bottom-up over the call graph's SCCs (callgraph.go, summary.go).
// *Sanitizers* are sort.* / slices.Sort* calls and any module function
// that provably sorts a parameter in place. *Sinks* are the
// determinism-critical surfaces the theorems constrain: values
// returned from exported engine entry points, RoundStats / SweepStats
// fields, StableStore writes, and anything passed to an encoder, fmt
// printer, or writer in a sink-scope package (engine packages plus the
// report-emitting layers; os.Stderr is exempt as the diagnostics
// stream).
//
// Dynamic calls (interface methods, function values), recursion,
// channel payloads, package-level variables, and function-literal
// return values are havoc points: taint is dropped there rather than
// spread, so the analyzer under-approximates (false negatives, never
// noise). DESIGN.md documents each havoc point.
var NondetTaintAnalyzer = &Analyzer{
	Name: "nondet-taint",
	Doc:  "nondeterministic values must not reach determinism-critical sinks, across call boundaries",
	Run:  runNondetTaint,
}

func runNondetTaint(pass *Pass) {
	if pass.taint == nil {
		return
	}
	for _, d := range pass.taint.diags[pass.Pkg.Path] {
		pass.Reportf(d.pos, "%s", d.msg)
	}
}

// rawDiag is a finding computed by the module-wide taint pass, held
// until the per-package analyzer run emits it through the normal
// suppression machinery.
type rawDiag struct {
	pos token.Pos
	msg string
}

// taintData is the result of the one module-wide taint computation.
type taintData struct {
	cg    *callGraph
	diags map[string][]rawDiag // package path → findings, in discovery order
	seen  map[string]bool      // "path|pos|msg" dedup
}

// computeTaint builds the call graph and computes every function's
// summary bottom-up, reporting sink violations as it goes. It runs
// once per lint.Run invocation, independent of package count.
func computeTaint(mod *Module, cfg Config) *taintData {
	td := &taintData{
		cg:    buildCallGraph(mod),
		diags: make(map[string][]rawDiag),
		seen:  make(map[string]bool),
	}
	for _, scc := range td.cg.sccs {
		recursive := len(scc) > 1
		for _, n := range scc {
			if !recursive && !n.recursive() {
				n.summary = td.analyze(mod, cfg, n, false)
			}
		}
		for _, n := range scc {
			if n.summary == nil {
				n.summary = td.analyze(mod, cfg, n, true)
			}
		}
	}
	return td
}

func (td *taintData) report(pkg *Package, pos token.Pos, msg string) {
	key := fmt.Sprintf("%s|%d|%s", pkg.Path, pos, msg)
	if td.seen[key] {
		return
	}
	td.seen[key] = true
	td.diags[pkg.Path] = append(td.diags[pkg.Path], rawDiag{pos: pos, msg: msg})
}

// orderFrame is one enclosing order-nondeterministic loop: an
// aggregation (append, string concatenation) performed inside it is
// order-tainted even when the aggregated values are clean.
type orderFrame struct {
	k   kind
	pos token.Pos
}

// taintWalker runs the flow-sensitive intraprocedural half over one
// function body, using callee summaries at call sites. Loop bodies are
// walked twice so taint carried around a back edge reaches the whole
// body; the domain is a finite join-semilattice, so this
// under-approximates a fixpoint only past two iterations of
// dependency, which sources here cannot produce.
type taintWalker struct {
	td   *taintData
	mod  *Module
	cfg  Config
	node *funcNode
	pkg  *Package
	info *types.Info

	state     map[types.Object]tval
	results   []tval
	sinks     []sinkFlow
	sanitizes uint64
	paramIdx  map[types.Object]int

	sinkScope   bool // package whose emitted bytes are determinism-critical
	engineScope bool // engine package: exported returns are sinks

	orderCtx []orderFrame
	goLit    *ast.FuncLit // non-nil while walking a go-statement closure
	retOwner bool         // false inside nested function literals
}

// analyze computes n's summary. With havocRecursion set, calls into
// n's own SCC yield no flows (the conservative havoc for recursion).
func (td *taintData) analyze(mod *Module, cfg Config, n *funcNode, havocRecursion bool) *summary {
	w := &taintWalker{
		td:          td,
		mod:         mod,
		cfg:         cfg,
		node:        n,
		pkg:         n.pkg,
		info:        n.pkg.Info,
		state:       make(map[types.Object]tval),
		results:     make([]tval, numResults(n.decl.Type)),
		paramIdx:    make(map[types.Object]int),
		sinkScope:   cfg.isSinkScope(n.pkg.Types.Name()),
		engineScope: cfg.isEngine(n.pkg.Types.Name()),
		retOwner:    true,
	}
	idx := 0
	seedParams := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				idx++ // unnamed parameter still occupies a position
				continue
			}
			for _, name := range field.Names {
				if obj := w.info.Defs[name]; obj != nil && idx < 64 {
					w.paramIdx[obj] = idx
					w.state[obj] = tval{params: 1 << idx}
				}
				idx++
			}
		}
	}
	seedParams(n.decl.Recv)
	seedParams(n.decl.Type.Params)
	if havocRecursion {
		// Temporarily hide in-SCC summaries: calls to cycle members
		// resolve to nil and are treated as black boxes.
		hidden := make(map[*funcNode]*summary)
		for _, m := range td.cg.sccs[n.scc] {
			hidden[m] = m.summary
			m.summary = nil
		}
		defer func() {
			for m, s := range hidden {
				if m.summary == nil {
					m.summary = s
				}
			}
		}()
	}
	w.walkStmt(n.decl.Body)
	return &summary{results: w.results, sinks: w.sinks, sanitizes: w.sanitizes, havocRecursion: havocRecursion}
}

func numResults(ft *ast.FuncType) int {
	if ft.Results == nil {
		return 0
	}
	n := 0
	for _, field := range ft.Results.List {
		if len(field.Names) == 0 {
			n++
		} else {
			n += len(field.Names)
		}
	}
	return n
}

// ---- statement walk ----

func (w *taintWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.walkStmt(st)
		}
	case *ast.AssignStmt:
		w.walkAssign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var tv tval
					if i < len(vs.Values) {
						tv = w.eval(vs.Values[i])
					} else if len(vs.Values) == 1 {
						tv = w.eval(vs.Values[0])
					}
					if obj := w.info.Defs[name]; obj != nil {
						w.setState(obj, tv, true)
					}
				}
			}
		}
	case *ast.ExprStmt:
		w.eval(s.X)
	case *ast.ReturnStmt:
		w.walkReturn(s)
	case *ast.IfStmt:
		w.walkStmt(s.Init)
		w.eval(s.Cond)
		w.walkStmt(s.Body)
		w.walkStmt(s.Else)
	case *ast.ForStmt:
		w.walkStmt(s.Init)
		if s.Cond != nil {
			w.eval(s.Cond)
		}
		for i := 0; i < 2; i++ {
			w.walkStmt(s.Body)
			w.walkStmt(s.Post)
		}
	case *ast.RangeStmt:
		w.walkRange(s)
	case *ast.SwitchStmt:
		w.walkStmt(s.Init)
		if s.Tag != nil {
			w.eval(s.Tag)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.eval(e)
				}
				for _, st := range cc.Body {
					w.walkStmt(st)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init)
		var subject tval
		switch a := s.Assign.(type) {
		case *ast.AssignStmt:
			if len(a.Rhs) == 1 {
				if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
					subject = w.eval(ta.X)
				}
			}
		case *ast.ExprStmt:
			if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
				subject = w.eval(ta.X)
			}
		}
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CaseClause)
			if !ok {
				continue
			}
			if obj := w.info.Implicits[cc]; obj != nil {
				w.setState(obj, subject, true)
			}
			for _, st := range cc.Body {
				w.walkStmt(st)
			}
		}
	case *ast.SelectStmt:
		w.walkSelect(s)
	case *ast.GoStmt:
		w.walkGo(s)
	case *ast.DeferStmt:
		w.eval(s.Call)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.SendStmt:
		w.eval(s.Chan)
		w.eval(s.Value) // channel payloads are a havoc point: taint stops here
	case *ast.IncDecStmt:
		w.eval(s.X)
	}
}

// walkRange handles the map-iteration source and the order context
// for aggregations performed inside nondeterministically ordered
// loops.
func (w *taintWalker) walkRange(s *ast.RangeStmt) {
	xTv := w.eval(s.X)
	t := w.info.TypeOf(s.X)
	var frame *orderFrame
	// The iteration variables inherit the ranged operand's taint (an
	// element of a tainted collection is tainted) for every range kind.
	seedVars := func(extra tval) {
		for _, e := range []ast.Expr{s.Key, s.Value} {
			id, ok := e.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if obj := objectOf(w.info, id); obj != nil {
				w.mergeState(obj, xTv.merge(extra))
			}
		}
	}
	if t != nil {
		switch t.Underlying().(type) {
		case *types.Map:
			frame = &orderFrame{k: kindMapOrder, pos: s.Pos()}
			seedVars(w.source(kindMapOrder, s.Pos()))
		case *types.Chan:
			// Arrival order over a channel is scheduling order when
			// several senders feed it; aggregations inside the loop
			// are order-tainted, the values themselves are not.
			frame = &orderFrame{k: kindGoroutine, pos: s.Pos()}
			seedVars(tval{})
		default:
			seedVars(tval{})
		}
	}
	if frame != nil {
		w.orderCtx = append(w.orderCtx, *frame)
	}
	for i := 0; i < 2; i++ {
		w.walkStmt(s.Body)
	}
	if frame != nil {
		w.orderCtx = w.orderCtx[:len(w.orderCtx)-1]
	}
}

// walkSelect taints values bound in the comm clauses of a select with
// more than one alternative: which clause runs is a scheduler choice.
func (w *taintWalker) walkSelect(s *ast.SelectStmt) {
	nondet := len(s.Body.List) >= 2
	for _, clause := range s.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		w.walkStmt(cc.Comm)
		if nondet {
			if a, ok := cc.Comm.(*ast.AssignStmt); ok {
				for _, lhs := range a.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						if obj := objectOf(w.info, id); obj != nil {
							w.mergeState(obj, w.source(kindSelect, cc.Pos()))
						}
					}
				}
			}
		}
		for _, st := range cc.Body {
			w.walkStmt(st)
		}
	}
}

// walkGo analyzes a go statement. A closure's writes to captured
// variables land in completion order, so they are goroutine-order
// tainted — unless the write is a slice/map element whose index is
// derived from the closure's own parameters (the index-disjoint
// fan-out pattern, whose content is a pure function of the index).
func (w *taintWalker) walkGo(s *ast.GoStmt) {
	lit, ok := s.Call.Fun.(*ast.FuncLit)
	if !ok {
		w.eval(s.Call)
		return
	}
	for _, arg := range s.Call.Args {
		w.eval(arg)
	}
	savedLit, savedRet := w.goLit, w.retOwner
	w.goLit, w.retOwner = lit, false
	w.walkStmt(lit.Body)
	w.goLit, w.retOwner = savedLit, savedRet
}

// capturedByGoroutine reports whether obj is declared outside the
// goroutine closure currently being walked.
func (w *taintWalker) capturedByGoroutine(obj types.Object) bool {
	if w.goLit == nil || obj == nil {
		return false
	}
	return obj.Pos() < w.goLit.Pos() || obj.Pos() > w.goLit.End()
}

func (w *taintWalker) walkAssign(s *ast.AssignStmt) {
	// Tuple assignment from a single multi-result call keeps
	// per-result precision.
	var tvs []tval
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			tvs = w.evalCall(call)
		} else {
			tv := w.eval(s.Rhs[0]) // comma-ok forms: v, ok := m[k] etc.
			tvs = make([]tval, len(s.Lhs))
			for i := range tvs {
				tvs[i] = tv
			}
		}
		for len(tvs) < len(s.Lhs) {
			tvs = append(tvs, tval{})
		}
	} else {
		for _, rhs := range s.Rhs {
			tvs = append(tvs, w.eval(rhs))
		}
	}
	for i, lhs := range s.Lhs {
		if i >= len(tvs) {
			break
		}
		w.assignTo(lhs, tvs[i], s.Tok, s.Pos())
	}
}

// assignTo applies one assignment: strong update for plain
// identifiers, weak update (merge into the base object) for element,
// field, and pointer writes; sink checks for stats-struct fields;
// goroutine-capture and order-context taint injection.
func (w *taintWalker) assignTo(lhs ast.Expr, tv tval, tok token.Token, pos token.Pos) {
	compound := tok != token.ASSIGN && tok != token.DEFINE
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := objectOf(w.info, l)
		if obj == nil {
			return
		}
		if compound {
			// String concatenation inside a nondeterministically
			// ordered loop is an order-dependent aggregation even when
			// the operand is clean. Integer compound assignment is the
			// opposite: `n += v` over every element of a map is a
			// commutative fold whose result is independent of iteration
			// order, so order-only taint is laundered (float folds keep
			// it — rounding is order-sensitive).
			if isStringType(w.info.TypeOf(l)) {
				tv = tv.merge(w.orderContextTaint(pos))
			} else if isCommutativeFold(tok) && isIntegerType(w.info.TypeOf(l)) {
				tv = tv.dropOrder()
			}
			w.mergeState(obj, tv)
		} else {
			w.setState(obj, tv, true)
		}
		if w.capturedByGoroutine(obj) {
			w.mergeState(obj, w.source(kindGoroutine, pos))
		}
	case *ast.SelectorExpr:
		w.checkStatsFieldSink(l, tv)
		base := baseIdent(l.X)
		if base == nil {
			return
		}
		obj := objectOf(w.info, base)
		if obj == nil {
			return
		}
		w.mergeState(obj, tv)
		if w.capturedByGoroutine(obj) {
			w.mergeState(obj, w.source(kindGoroutine, pos))
		}
	case *ast.IndexExpr:
		w.eval(l.Index)
		base := baseIdent(l.X)
		if base == nil {
			return
		}
		obj := objectOf(w.info, base)
		if obj == nil {
			return
		}
		// A map is an unordered collection: insertion order is
		// invisible to every reader, so writing an order-tainted value
		// under a deterministic-per-entry key launders order-only taint
		// (map-to-map copies inside a range are the canonical case).
		// Colliding keys with differing values would break this — a
		// documented under-approximation. Value taint (rand, clock)
		// lands in the content and is kept.
		if isMapType(w.info, l.X) {
			tv = tv.dropOrder().merge(w.eval(l.Index).dropOrder())
		}
		w.mergeState(obj, tv)
		if w.capturedByGoroutine(obj) && !w.indexFromGoroutineParams(l.Index) {
			w.mergeState(obj, w.source(kindGoroutine, pos))
		}
	case *ast.StarExpr:
		if base := baseIdent(l.X); base != nil {
			if obj := objectOf(w.info, base); obj != nil {
				w.mergeState(obj, tv)
			}
		}
	}
}

// indexFromGoroutineParams reports whether every variable in the index
// expression is a parameter of the goroutine closure being walked —
// the index-disjoint write pattern whose result is order-independent.
func (w *taintWalker) indexFromGoroutineParams(index ast.Expr) bool {
	if w.goLit == nil {
		return false
	}
	return indexFromParams(index, funcLitParams(w.info, w.goLit), w.info)
}

func (w *taintWalker) walkReturn(s *ast.ReturnStmt) {
	if !w.retOwner {
		// Returns of nested function literals: evaluate for sink
		// side effects, but their values are not this function's
		// results (a documented havoc point).
		for _, e := range s.Results {
			w.eval(e)
		}
		return
	}
	var tvs []tval
	switch {
	case len(s.Results) == 0:
		// Bare return with named results.
		tvs = make([]tval, len(w.results))
		if w.node.decl.Type.Results != nil {
			i := 0
			for _, field := range w.node.decl.Type.Results.List {
				for _, name := range field.Names {
					if obj := w.info.Defs[name]; obj != nil && i < len(tvs) {
						tvs[i] = w.state[obj]
					}
					i++
				}
			}
		}
	case len(s.Results) == 1 && len(w.results) > 1:
		if call, ok := ast.Unparen(s.Results[0]).(*ast.CallExpr); ok {
			tvs = w.evalCall(call)
		} else {
			tvs = []tval{w.eval(s.Results[0])}
		}
	default:
		for _, e := range s.Results {
			tvs = append(tvs, w.eval(e))
		}
	}
	for i, tv := range tvs {
		if i < len(w.results) {
			w.results[i] = w.results[i].merge(tv)
		}
		if tv.kinds != 0 && w.engineScope && w.node.decl.Name.IsExported() && !isErrorOnly(w.info, s, i) {
			w.td.report(w.pkg, s.Pos(), fmt.Sprintf(
				"%s returned from engine entry point %s; callers cannot re-sort what they cannot see — sort before returning, or suppress with //lint:allow nondet-taint naming the invariant that makes this safe",
				tv.witnessString(), w.node.obj.Name()))
		}
	}
}

// isErrorOnly exempts error results from the exported-return sink:
// error values carry control flow, not enumerated output.
func isErrorOnly(info *types.Info, s *ast.ReturnStmt, i int) bool {
	if i >= len(s.Results) {
		return false
	}
	return isErrorType(info.TypeOf(s.Results[i]))
}

// ---- expression evaluation ----

func (w *taintWalker) eval(e ast.Expr) tval {
	switch e := e.(type) {
	case nil:
		return tval{}
	case *ast.Ident:
		if obj := objectOf(w.info, e); obj != nil {
			return w.state[obj]
		}
		return tval{}
	case *ast.ParenExpr:
		return w.eval(e.X)
	case *ast.BinaryExpr:
		return w.eval(e.X).merge(w.eval(e.Y))
	case *ast.UnaryExpr:
		return w.eval(e.X)
	case *ast.StarExpr:
		return w.eval(e.X)
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := w.info.Uses[id].(*types.PkgName); isPkg {
				return tval{} // qualified identifier: package-level state is a havoc point
			}
		}
		return w.eval(e.X)
	case *ast.IndexExpr:
		if tv, ok := w.info.Types[e]; ok && tv.IsType() {
			return tval{} // generic instantiation
		}
		return w.eval(e.X).merge(w.eval(e.Index))
	case *ast.IndexListExpr:
		return w.eval(e.X)
	case *ast.SliceExpr:
		return w.eval(e.X)
	case *ast.TypeAssertExpr:
		return w.eval(e.X)
	case *ast.CompositeLit:
		out := tval{}
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				ev := w.eval(kv.Value)
				w.checkStatsLitSink(e, kv, ev)
				out = out.merge(ev)
				continue
			}
			out = out.merge(w.eval(elt))
		}
		return out
	case *ast.FuncLit:
		savedRet := w.retOwner
		w.retOwner = false
		w.walkStmt(e.Body)
		w.retOwner = savedRet
		return tval{} // closure values carry no taint: a havoc point
	case *ast.CallExpr:
		tvs := w.evalCall(e)
		out := tval{}
		for _, tv := range tvs {
			out = out.merge(tv)
		}
		return out
	default:
		return tval{}
	}
}

// source builds a concrete taint value with a witness at pos.
func (w *taintWalker) source(k kind, pos token.Pos) tval {
	return tval{kinds: k, wits: []*witness{{kind: k, pos: pos, src: relPos(w.mod.Fset, w.mod.Root, pos)}}}
}

// orderContextTaint returns the taint of aggregating inside the
// current stack of nondeterministically ordered loops.
func (w *taintWalker) orderContextTaint(pos token.Pos) tval {
	out := tval{}
	for _, frame := range w.orderCtx {
		out = out.merge(w.source(frame.k, frame.pos))
	}
	_ = pos
	return out
}

func (w *taintWalker) setState(obj types.Object, tv tval, strong bool) {
	if strong {
		w.state[obj] = tv
		return
	}
	w.mergeState(obj, tv)
}

func (w *taintWalker) mergeState(obj types.Object, tv tval) {
	if tv.isZero() {
		return
	}
	w.state[obj] = w.state[obj].merge(tv)
}

// sanitize strong-clears the order taints of the object behind e.
// When the sanitized object is one of this function's parameters, the
// laundering becomes part of its summary, so callers' arguments are
// laundered transitively.
func (w *taintWalker) sanitize(e ast.Expr) {
	base := baseIdent(e)
	if base == nil {
		return
	}
	obj := objectOf(w.info, base)
	if obj == nil {
		return
	}
	w.state[obj] = w.state[obj].dropOrder()
	if idx, ok := w.paramIdx[obj]; ok {
		w.sanitizes |= 1 << idx
	}
}

// baseIdent digs the root identifier out of x, x.f, x[i], *x chains.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isCommutativeFold reports whether the compound assignment operator
// forms an order-insensitive reduction over integers: + - * & | ^ all
// commute and associate (mod 2^n), so folding every element of an
// unordered collection through them yields one value regardless of
// visit order. Shifts and division do not qualify.
func isCommutativeFold(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		return true
	}
	return false
}
