package lint

import (
	"go/ast"
	"go/types"
)

// LockAnalyzer enforces two rules about sync primitives:
//
//  1. no copies: a value whose type (transitively) contains a
//     sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Once or sync.Cond
//     must not travel by value — not as a parameter, result, value
//     receiver, plain assignment from an existing value, or range
//     value. A copied lock guards nothing.
//  2. paired locks: a function that calls Lock/RLock on a receiver
//     must also call (or defer) the matching Unlock/RUnlock on the
//     same receiver expression somewhere in the function.
var LockAnalyzer = &Analyzer{
	Name: "lock-discipline",
	Doc:  "no by-value copies of lock-bearing types; every Lock pairs with a reachable Unlock",
	Run:  runLocks,
}

var lockBearingNames = []string{"Mutex", "RWMutex", "WaitGroup", "Once", "Cond"}

func runLocks(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.FuncDecl:
				checkSignatureCopies(pass, s.Recv, s.Type)
				if s.Body != nil {
					checkLockPairs(pass, s.Body)
				}
			case *ast.FuncLit:
				checkSignatureCopies(pass, nil, s.Type)
				checkLockPairs(pass, s.Body)
			case *ast.AssignStmt:
				checkAssignCopies(pass, s)
			case *ast.RangeStmt:
				if s.Value != nil {
					if t := info.TypeOf(s.Value); containsLocker(t) {
						pass.Reportf(s.Value.Pos(), "range value copies %s, which contains a sync primitive; iterate by index or over pointers", types.TypeString(t, types.RelativeTo(pass.Pkg.Types)))
					}
				}
			}
			return true
		})
	}
}

// containsLocker reports whether t transitively holds one of the
// non-copyable sync types by value.
func containsLocker(t types.Type) bool {
	return containsLockerSeen(t, make(map[types.Type]bool))
}

func containsLockerSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	for _, name := range lockBearingNames {
		if n, ok := t.(*types.Named); ok {
			obj := n.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name {
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockerSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockerSeen(u.Elem(), seen)
	}
	if n, ok := t.(*types.Named); ok && n.Underlying() != t {
		return containsLockerSeen(n.Underlying(), seen)
	}
	return false
}

func checkSignatureCopies(pass *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	info := pass.Pkg.Info
	report := func(field *ast.Field, kind string) {
		t := info.TypeOf(field.Type)
		if t == nil || !containsLocker(t) {
			return
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			return
		}
		pass.Reportf(field.Pos(), "%s passes %s by value, copying its sync primitive; use a pointer", kind, types.TypeString(t, types.RelativeTo(pass.Pkg.Types)))
	}
	if recv != nil {
		for _, field := range recv.List {
			report(field, "method receiver")
		}
	}
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			report(field, "parameter")
		}
	}
	if ft.Results != nil {
		for _, field := range ft.Results.List {
			report(field, "result")
		}
	}
}

// checkAssignCopies flags x := y / x = y where y is an existing value
// of a lock-bearing type. Composite literals and calls are allowed:
// initialization is not a copy of a live lock.
func checkAssignCopies(pass *Pass, s *ast.AssignStmt) {
	info := pass.Pkg.Info
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, rhs := range s.Rhs {
		switch rhs.(type) {
		case *ast.CompositeLit, *ast.CallExpr, *ast.UnaryExpr, *ast.FuncLit:
			continue
		}
		if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		t := info.TypeOf(rhs)
		if t == nil || !containsLocker(t) {
			continue
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			continue
		}
		pass.Reportf(s.Pos(), "assignment copies %s, which contains a sync primitive; use a pointer", types.TypeString(t, types.RelativeTo(pass.Pkg.Types)))
	}
}

// checkLockPairs verifies Lock/Unlock pairing per function scope,
// matching receivers by printed expression.
func checkLockPairs(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	locks := make(map[string]ast.Node)  // recv expr -> first Lock call
	unlocks := make(map[string]bool)    // recv expr -> has Unlock
	rlocks := make(map[string]ast.Node) // recv expr -> first RLock call
	runlocks := make(map[string]bool)   // recv expr -> has RUnlock
	record := func(call *ast.CallExpr) {
		fn := methodCallee(info, call)
		if fn == nil {
			return
		}
		recvType := fn.Type().(*types.Signature).Recv().Type()
		if !namedSyncType(recvType, "Mutex") && !namedSyncType(recvType, "RWMutex") {
			return
		}
		sel := call.Fun.(*ast.SelectorExpr)
		key := types.ExprString(sel.X)
		switch fn.Name() {
		case "Lock":
			if _, ok := locks[key]; !ok {
				locks[key] = call
			}
		case "Unlock":
			unlocks[key] = true
		case "RLock":
			if _, ok := rlocks[key]; !ok {
				rlocks[key] = call
			}
		case "RUnlock":
			runlocks[key] = true
		}
	}
	// Locks are attributed to the scope that takes them (nested
	// literals are their own scope), but an Unlock inside a nested
	// closure — e.g. defer func() { mu.Unlock() }() — still satisfies
	// the pairing, so unlocks are collected from the full subtree.
	walkScope(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			record(call)
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := methodCallee(info, call)
		if fn == nil || (fn.Name() != "Unlock" && fn.Name() != "RUnlock") {
			return true
		}
		recvType := fn.Type().(*types.Signature).Recv().Type()
		if !namedSyncType(recvType, "Mutex") && !namedSyncType(recvType, "RWMutex") {
			return true
		}
		key := types.ExprString(call.Fun.(*ast.SelectorExpr).X)
		if fn.Name() == "Unlock" {
			unlocks[key] = true
		} else {
			runlocks[key] = true
		}
		return true
	})
	for key, call := range locks {
		if !unlocks[key] {
			pass.Reportf(call.Pos(), "%s.Lock() with no reachable %s.Unlock() in this function; add a deferred unlock", key, key)
		}
	}
	for key, call := range rlocks {
		if !runlocks[key] {
			pass.Reportf(call.Pos(), "%s.RLock() with no reachable %s.RUnlock() in this function; add a deferred unlock", key, key)
		}
	}
}
