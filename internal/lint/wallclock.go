package lint

import (
	"go/ast"
)

// WallclockAnalyzer forbids wall-clock access in library code: no
// time.Now / time.Since / time.Until reads, and no time.Sleep /
// time.After / time.Tick / time.NewTimer / time.NewTicker /
// time.AfterFunc delays or timeouts.
//
// Determinism is a repo invariant, and wall time is its quietest
// enemy: a sleep-based timeout turns scheduling jitter into behavior,
// and a timestamp turns the clock into an input nobody seeded. Delays
// and timeouts in the engine must go through an injectable virtual
// clock instead — the transducer runtime's step counter and the MPC
// fault-tolerance layer's virtual ticks (mpc.RoundStats.
// VirtualMakespan, retry backoff) are the sanctioned patterns: both
// make time an explicit, replayable part of the execution.
//
// Binaries (package main, anything under a cmd/ segment) and tests
// are exempt: process-level timing at the top of a program is policy,
// not evaluation. The measurement layer's stopwatch is the one
// legitimate library use and carries //lint:allow wallclock-free
// annotations where it reads the clock.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock-free",
	Doc:  "library code must not read the wall clock or sleep; use the virtual clock",
	Run:  runWallclock,
}

// wallclockFuncs are the package-level time functions that read or
// wait on the wall clock. Pure constructors and conversions
// (time.Date, time.Unix, time.ParseDuration, ...) are functions of
// their arguments and stay allowed.
var wallclockFuncs = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on wall time",
	"After":     "blocks on wall time",
	"Tick":      "blocks on wall time",
	"NewTimer":  "blocks on wall time",
	"NewTicker": "blocks on wall time",
	"AfterFunc": "blocks on wall time",
}

func runWallclock(pass *Pass) {
	// Same exemption as error-discard: binaries may time things;
	// library code may not.
	if exemptFromErrDiscard(pass.Pkg) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFunc(pass.Pkg.Info, call)
			if !ok || path != "time" {
				return true
			}
			if why, bad := wallclockFuncs[name]; bad {
				pass.Reportf(call.Pos(), "time.%s %s in library code; delays and timeouts must go through the injectable virtual clock (or annotate a measurement-layer stopwatch with //lint:allow wallclock-free)", name, why)
			}
			return true
		})
	}
}
