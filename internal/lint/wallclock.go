package lint

import (
	"go/ast"
)

// WallclockAnalyzer forbids wall-clock access in library code: no
// time.Now / time.Since / time.Until reads, and no time.Sleep /
// time.After / time.Tick / time.NewTimer / time.NewTicker /
// time.AfterFunc delays or timeouts.
//
// Determinism is a repo invariant, and wall time is its quietest
// enemy: a sleep-based timeout turns scheduling jitter into behavior,
// and a timestamp turns the clock into an input nobody seeded. Delays
// and timeouts in the engine must go through an injectable virtual
// clock instead — the transducer runtime's step counter and the MPC
// fault-tolerance layer's virtual ticks (mpc.RoundStats.
// VirtualMakespan, retry backoff) are the sanctioned patterns: both
// make time an explicit, replayable part of the execution.
//
// Binaries (package main, anything under a cmd/ segment) and tests
// are exempt: process-level timing at the top of a program is policy,
// not evaluation. The measurement layer's stopwatch is the one
// legitimate library use and carries //lint:allow wallclock-free
// annotations where it reads the clock.
//
// One scoped allowance: wall-clock reads nested in the arguments of a
// SetDeadline / SetReadDeadline / SetWriteDeadline method call are
// permitted. Socket deadlines are liveness bounds on connection I/O —
// `conn.SetDeadline(time.Now().Add(timeout))` is the only way the net
// package spells "bounded read" — and they never feed logical time:
// a deadline influences WHEN an exchange fails, never WHAT a
// successful exchange computes. Clock reads that escape the deadline
// argument (stored, returned, compared) are still flagged.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock-free",
	Doc:  "library code must not read the wall clock or sleep; use the virtual clock",
	Run:  runWallclock,
}

// wallclockFuncs are the package-level time functions that read or
// wait on the wall clock. Pure constructors and conversions
// (time.Date, time.Unix, time.ParseDuration, ...) are functions of
// their arguments and stay allowed.
var wallclockFuncs = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on wall time",
	"After":     "blocks on wall time",
	"Tick":      "blocks on wall time",
	"NewTimer":  "blocks on wall time",
	"NewTicker": "blocks on wall time",
	"AfterFunc": "blocks on wall time",
}

// deadlineSetters are the net-package deadline methods whose arguments
// may read the wall clock: connection I/O liveness only.
var deadlineSetters = map[string]bool{
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
}

// deadlineArgSpans returns a predicate reporting whether a node sits
// inside the argument list of a deadline-setter method call — the one
// context where a clock read is a socket liveness bound, not logical
// time. Only method calls qualify (a package-level function that
// happens to be named SetDeadline still gets no allowance). Shared by
// the wallclock-free and seeded-rand analyzers so the allowance is
// identical in both.
func deadlineArgSpans(pass *Pass, f *ast.File) func(ast.Node) bool {
	type span struct{ lo, hi int }
	var deadlineArgs []span
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !deadlineSetters[sel.Sel.Name] {
			return true
		}
		if _, _, isPkgFunc := pkgFunc(pass.Pkg.Info, call); isPkgFunc {
			return true
		}
		for _, a := range call.Args {
			deadlineArgs = append(deadlineArgs, span{int(a.Pos()), int(a.End())})
		}
		return true
	})
	return func(n ast.Node) bool {
		for _, s := range deadlineArgs {
			if int(n.Pos()) >= s.lo && int(n.End()) <= s.hi {
				return true
			}
		}
		return false
	}
}

func runWallclock(pass *Pass) {
	// Same exemption as error-discard: binaries may time things;
	// library code may not.
	if exemptFromErrDiscard(pass.Pkg) {
		return
	}
	for _, f := range pass.Pkg.Files {
		inDeadlineArg := deadlineArgSpans(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFunc(pass.Pkg.Info, call)
			if !ok || path != "time" {
				return true
			}
			if why, bad := wallclockFuncs[name]; bad && !inDeadlineArg(call) {
				pass.Reportf(call.Pos(), "time.%s %s in library code; delays and timeouts must go through the injectable virtual clock (or annotate a measurement-layer stopwatch with //lint:allow wallclock-free)", name, why)
			}
			return true
		})
	}
}
