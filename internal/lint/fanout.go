package lint

import (
	"go/ast"
	"go/types"
)

// FanoutJoinAnalyzer is the precondition for extracting a Transport
// from the engine's communication phase: every goroutine spawned in an
// engine-adjacent package must have a *provable* join or cancellation
// path tied to that specific goroutine — not merely some join point
// somewhere in the function, which is all goroutine-hygiene requires.
//
// Accepted evidence, per go statement with a function-literal body:
//
//  1. WaitGroup join: the closure calls wg.Done() (directly or
//     deferred) on a WaitGroup that the spawning function Wait()s on.
//  2. Channel join: the closure sends on a channel the spawning
//     function provably drains (a receive, a range, or a select case
//     receiving from it).
//  3. Cancellation: the closure ranges over a channel the spawning
//     function closes — the worker-pool shutdown pattern.
//
// A `go f(...)` spawn of a named function offers no visible evidence
// and is always flagged: wrap it in a closure that reports completion.
// Without one of these, a "finished" round can leave workers running,
// which breaks the MPC model's synchronous-round semantics and makes a
// networked transport's shutdown unverifiable.
var FanoutJoinAnalyzer = &Analyzer{
	Name: "fanout-join",
	Doc:  "every goroutine in engine-adjacent packages needs a provable join or cancellation path",
	Run:  runFanout,
}

func runFanout(pass *Pass) {
	if !pass.Config.isFanoutScope(pass.Pkg.Types.Name()) {
		return
	}
	for _, f := range pass.Pkg.Files {
		funcBodies(f, func(ft *ast.FuncType, body *ast.BlockStmt) {
			checkFanout(pass, body)
		})
	}
}

func checkFanout(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	var gos []*ast.GoStmt
	walkScope(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			gos = append(gos, g)
		}
		return true
	})
	if len(gos) == 0 {
		return
	}
	ev := gatherJoinEvidence(info, body)
	for _, g := range gos {
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			pass.Reportf(g.Pos(), "go statement spawns a named function, leaving no visible join evidence; wrap it in a closure that calls wg.Done or sends on a drained channel")
			continue
		}
		if provenJoined(info, lit, ev) {
			continue
		}
		pass.Reportf(g.Pos(), "goroutine has no provable join or cancellation path: pair wg.Add / defer wg.Done / wg.Wait, or send on a channel the spawner drains, or range over a channel the spawner closes")
	}
}

// joinEvidence is what the spawning function's body offers: the
// WaitGroups it waits on, the channels it drains, and the channels it
// closes. Objects are collected over the whole body including nested
// literals — a Wait inside a helper closure still proves the join.
type joinEvidence struct {
	waited  map[types.Object]bool // wg objects with a Wait() call
	drained map[types.Object]bool // channels received from or ranged over
	closed  map[types.Object]bool // channels passed to close()
}

func gatherJoinEvidence(info *types.Info, body *ast.BlockStmt) *joinEvidence {
	ev := &joinEvidence{
		waited:  make(map[types.Object]bool),
		drained: make(map[types.Object]bool),
		closed:  make(map[types.Object]bool),
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if fn := methodCallee(info, s); fn != nil && fn.Name() == "Wait" {
				recv := fn.Type().(*types.Signature).Recv().Type()
				if namedSyncType(recv, "WaitGroup") {
					if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok {
						addChanObj(info, ev.waited, sel.X)
					}
				}
			}
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(s.Args) == 1 {
					addChanObj(info, ev.closed, s.Args[0])
				}
			}
		case *ast.UnaryExpr:
			if s.Op.String() == "<-" {
				addChanObj(info, ev.drained, s.X)
			}
		case *ast.RangeStmt:
			if _, isChan := typeUnderlying(info, s.X).(*types.Chan); isChan {
				addChanObj(info, ev.drained, s.X)
			}
		}
		return true
	})
	return ev
}

func addChanObj(info *types.Info, set map[types.Object]bool, e ast.Expr) {
	if base := baseIdent(e); base != nil {
		if obj := objectOf(info, base); obj != nil {
			set[obj] = true
		}
	}
}

// provenJoined checks the closure body for evidence tying this
// goroutine to one of the function's join points.
func provenJoined(info *types.Info, lit *ast.FuncLit, ev *joinEvidence) bool {
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch s := n.(type) {
		case *ast.CallExpr:
			if fn := methodCallee(info, s); fn != nil && fn.Name() == "Done" {
				recv := fn.Type().(*types.Signature).Recv().Type()
				if namedSyncType(recv, "WaitGroup") {
					if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok {
						if base := baseIdent(sel.X); base != nil {
							if obj := objectOf(info, base); obj != nil && ev.waited[obj] {
								joined = true
							}
						}
					}
				}
			}
		case *ast.SendStmt:
			if base := baseIdent(s.Chan); base != nil {
				if obj := objectOf(info, base); obj != nil && ev.drained[obj] {
					joined = true
				}
			}
		case *ast.RangeStmt:
			if _, isChan := typeUnderlying(info, s.X).(*types.Chan); isChan {
				if base := baseIdent(s.X); base != nil {
					if obj := objectOf(info, base); obj != nil && ev.closed[obj] {
						joined = true
					}
				}
			}
		}
		return true
	})
	return joined
}
