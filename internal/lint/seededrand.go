package lint

import (
	"go/ast"
)

// SeededRandAnalyzer forbids ambient nondeterminism in engine
// packages: top-level math/rand functions (which draw from the global,
// process-wide source) and wall-clock reads via time.Now.
//
// Engine packages compute the objects the paper's theorems quantify
// over — query results, routing decisions, transducer runs. Those must
// be pure functions of (input, seed): the sanctioned pattern is an
// explicit *rand.Rand built from rand.NewSource(seed), as
// internal/workload and the transducer network scheduler already do.
// Timing belongs to the measurement layer (experiments, benchmarks),
// never inside the evaluation it measures.
//
// The one scoped exception mirrors the wallclock-free analyzer's:
// time.Now nested in the arguments of a SetDeadline /
// SetReadDeadline / SetWriteDeadline method call is permitted, because
// a socket deadline bounds WHEN a broken exchange fails and never
// feeds WHAT a successful evaluation computes.
var SeededRandAnalyzer = &Analyzer{
	Name: "seeded-rand",
	Doc:  "engine packages must use explicitly seeded randomness and take time as input",
	Run:  runSeededRand,
}

// randConstructors are the math/rand functions that merely build
// explicitly seeded generators; they are the fix, not the hazard.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runSeededRand(pass *Pass) {
	if !pass.Config.isEngine(pass.Pkg.Types.Name()) {
		return
	}
	for _, f := range pass.Pkg.Files {
		inDeadlineArg := deadlineArgSpans(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFunc(pass.Pkg.Info, call)
			if !ok {
				return true
			}
			switch {
			case (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name]:
				pass.Reportf(call.Pos(), "call to %s.%s uses the global random source; engine packages must thread a *rand.Rand built from an explicit seed", pathBase(path), name)
			case path == "time" && name == "Now" && !inDeadlineArg(call):
				pass.Reportf(call.Pos(), "time.Now() in engine package; evaluation must be a pure function of its inputs — take timestamps as parameters or measure in the experiments layer")
			}
			return true
		})
	}
}

func pathBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
