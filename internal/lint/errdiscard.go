package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrDiscardAnalyzer forbids silently dropping error returns in
// library packages: no `_ = f()` where f returns an error, no
// `x, _ := f()` discarding the error position, and no bare call
// statement whose callee returns an error.
//
// Binaries (package main, anything under a cmd/ segment) and tests are
// exempt: at the top of a program, printing-and-exiting is a policy
// decision. Library code has no such excuse — a swallowed error there
// is exactly how a nondeterministic partial result masquerades as a
// correct one.
//
// Writes into strings.Builder and bytes.Buffer are allowlisted: their
// Write methods are documented to never return a non-nil error, and
// fmt.Fprintf into them inherits that guarantee.
var ErrDiscardAnalyzer = &Analyzer{
	Name: "error-discard",
	Doc:  "library code must not discard error returns",
	Run:  runErrDiscard,
}

func runErrDiscard(pass *Pass) {
	if exemptFromErrDiscard(pass.Pkg) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.DeferStmt:
				// defer x.Close() etc.: a separate policy question;
				// out of scope for this analyzer.
				return false
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok || errAllowlisted(info, call) {
					return true
				}
				if pos, ok := errorResult(info, call); ok {
					what := "an error"
					if pos >= 0 {
						what = "an error (result " + strconv.Itoa(pos) + ")"
					}
					pass.Reportf(call.Pos(), "call discards %s; handle it or assign it explicitly", what)
				}
			case *ast.AssignStmt:
				checkAssignDiscard(pass, s)
			}
			return true
		})
	}
}

func exemptFromErrDiscard(pkg *Package) bool {
	if pkg.Types.Name() == "main" {
		return true
	}
	for _, seg := range strings.Split(pkg.Path, "/") {
		if seg == "cmd" {
			return true
		}
	}
	return false
}

// checkAssignDiscard flags blank-identifier positions that absorb an
// error: `_ = f()` and `x, _ := g()`.
func checkAssignDiscard(pass *Pass, s *ast.AssignStmt) {
	info := pass.Pkg.Info
	// Multi-value form: x, _ := g().
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok || errAllowlisted(info, call) {
			return
		}
		tuple, ok := info.TypeOf(call).(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name != "_" || i >= tuple.Len() {
				continue
			}
			if isErrorType(tuple.At(i).Type()) {
				pass.Reportf(id.Pos(), "blank identifier discards the error returned by this call; handle it or propagate it")
			}
		}
		return
	}
	// Parallel form: _ = expr.
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || i >= len(s.Rhs) {
			continue
		}
		rhs := s.Rhs[i]
		if call, ok := rhs.(*ast.CallExpr); ok && errAllowlisted(info, call) {
			continue
		}
		t := info.TypeOf(rhs)
		if isErrorType(t) {
			pass.Reportf(id.Pos(), "assignment discards an error value; handle it or propagate it")
			continue
		}
		if tuple, ok := t.(*types.Tuple); ok {
			for j := 0; j < tuple.Len(); j++ {
				if isErrorType(tuple.At(j).Type()) {
					pass.Reportf(id.Pos(), "assignment discards an error value; handle it or propagate it")
					break
				}
			}
		}
	}
}

// errorResult reports whether call returns an error, and at which
// tuple position (-1 for a single error result).
func errorResult(info *types.Info, call *ast.CallExpr) (int, bool) {
	t := info.TypeOf(call)
	if t == nil {
		return 0, false
	}
	if isErrorType(t) {
		return -1, true
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return i, true
			}
		}
	}
	return 0, false
}

// errAllowlisted reports whether the call's error is documented to be
// always nil: Builder/Buffer writes and fmt printing into them.
func errAllowlisted(info *types.Info, call *ast.CallExpr) bool {
	if fn := methodCallee(info, call); fn != nil {
		recv := fn.Type().(*types.Signature).Recv().Type()
		if namedNamed(recv, "strings", "Builder") || namedNamed(recv, "bytes", "Buffer") {
			return true
		}
	}
	if path, name, ok := pkgFunc(info, call); ok && path == "fmt" {
		switch name {
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 {
				t := info.TypeOf(call.Args[0])
				if namedNamed(t, "strings", "Builder") || namedNamed(t, "bytes", "Buffer") {
					return true
				}
			}
		}
	}
	return false
}
