package lint

import (
	"go/token"
	"path/filepath"
	"strings"
)

// SuppressAuditAnalyzer makes the suppression comments themselves
// subject to lint: a //lint:ignore or //lint:allow directive that
// suppresses nothing is dead weight that silently exempts whatever
// lands on its line next, and one naming a nonexistent analyzer never
// worked at all. Both become diagnostics, so `make lint` fails on
// stale suppressions the same way it fails on live hazards.
//
// A directive is audited only when the analyzers it names actually ran
// (a wildcard directive requires the full default suite), so narrowed
// `-analyzers` runs never produce false staleness. Audit diagnostics
// cannot themselves be suppressed.
var SuppressAuditAnalyzer = &Analyzer{
	Name: "suppress-audit",
	Doc:  "lint:ignore / lint:allow directives must suppress at least one diagnostic",
	Run:  nil, // special-cased in Run: the audit needs cross-analyzer usage data
}

// directive is one parsed suppression comment.
type directive struct {
	file string // module-relative, matching Diagnostic.File
	line int    // line the comment sits on (it also covers line+1)
	pos  token.Pos
	name string // analyzer name, or "*" for a blanket directive
	used bool   // did it suppress at least one diagnostic this run?
}

// suppressionSet indexes a package's directives by (file, line).
type suppressionSet struct {
	byLine map[string]map[int][]*directive
	all    []*directive
}

// allows reports whether a diagnostic at (file, line) is suppressed,
// marking every matching directive as used.
func (s *suppressionSet) allows(analyzer, file string, line int) bool {
	ok := false
	for _, d := range s.byLine[file][line] {
		if d.name == analyzer || d.name == "*" {
			d.used = true
			ok = true
		}
	}
	return ok
}

func (s *suppressionSet) add(d *directive) {
	s.all = append(s.all, d)
	if s.byLine == nil {
		s.byLine = make(map[string]map[int][]*directive)
	}
	lines := s.byLine[d.file]
	if lines == nil {
		lines = make(map[int][]*directive)
		s.byLine[d.file] = lines
	}
	// A directive covers its own line and the line below it, so both
	// trailing and preceding placements work.
	lines[d.line] = append(lines[d.line], d)
	lines[d.line+1] = append(lines[d.line+1], d)
}

// collectSuppressions scans a package's comments for //lint:ignore,
// //lint:allow, and //lint:sorted directives.
func collectSuppressions(fset *token.FileSet, pkg *Package) *suppressionSet {
	sup := &suppressionSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				var name string
				switch {
				case strings.HasPrefix(text, "lint:ignore"), strings.HasPrefix(text, "lint:allow"):
					rest := strings.TrimPrefix(strings.TrimPrefix(text, "lint:ignore"), "lint:allow")
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						name = "*"
					} else {
						name = fields[0]
					}
				case strings.HasPrefix(text, "lint:sorted"):
					name = "mapiter-determinism"
				default:
					continue
				}
				position := fset.Position(c.Pos())
				file := position.Filename
				if rel, err := filepath.Rel(pkg.modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = filepath.ToSlash(rel)
				}
				sup.add(&directive{
					file: file,
					line: position.Line,
					pos:  c.Pos(),
					name: name,
					used: false,
				})
			}
		}
	}
	return sup
}

// auditSuppressions runs after a package's analyzers have filtered
// their diagnostics: every directive that could have been exercised by
// this run but suppressed nothing — and every directive naming an
// unknown analyzer — becomes a suppress-audit diagnostic.
func auditSuppressions(pass *Pass, sup *suppressionSet, ran []*Analyzer) {
	ranNames := make(map[string]bool)
	for _, a := range ran {
		ranNames[a.Name] = true
	}
	fullSuite := true
	for _, a := range Analyzers() {
		if a.Run == nil {
			continue
		}
		if !ranNames[a.Name] {
			fullSuite = false
		}
	}
	for _, d := range sup.all {
		if d.used {
			continue
		}
		if d.name == "*" {
			if fullSuite {
				pass.Reportf(d.pos, "blanket suppression suppresses nothing; remove the stale directive")
			}
			continue
		}
		if _, known := AnalyzerByName(d.name); !known {
			pass.Reportf(d.pos, "suppression names unknown analyzer %q; remove it or fix the name (see mpclint -list)", d.name)
			continue
		}
		if ranNames[d.name] {
			pass.Reportf(d.pos, "unused suppression: no %s diagnostic fires on this line; remove the stale directive", d.name)
		}
	}
}
