package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineAnalyzer enforces three rules on every `go` statement:
//
//  1. join: the launching function must contain a join point — a
//     sync.WaitGroup.Wait call, a channel receive, a range over a
//     channel, or a select statement. A fork with no join means the
//     simulated round can "finish" while servers still compute, which
//     breaks the MPC model's synchronous-round semantics.
//  2. no loop-variable capture: a goroutine closure must receive loop
//     variables as arguments rather than capturing them, keeping the
//     fan-out safe under any Go version's loop-variable semantics and
//     making the per-worker binding explicit.
//  3. disjoint writes: inside a goroutine closure, writes to a map are
//     flagged (maps are never safe for concurrent mutation), and
//     writes to a slice element are allowed only when the index is
//     derived from the closure's own parameters (index-disjoint
//     partitioning, the pattern of mpc.RunRound) or a mutex is held.
var GoroutineAnalyzer = &Analyzer{
	Name: "goroutine-hygiene",
	Doc:  "every go statement needs a join, explicit loop-variable passing, and disjoint or locked shared writes",
	Run:  runGoroutine,
}

func runGoroutine(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		funcBodies(f, func(ft *ast.FuncType, body *ast.BlockStmt) {
			checkGoroutines(pass, body)
		})
	}
}

func checkGoroutines(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	var gos []*ast.GoStmt
	hasJoin := false

	// Collect go statements, join points, and the loop variables in
	// scope at each go statement — all within this function scope only.
	type frame struct {
		vars []types.Object
	}
	var stack []frame
	goLoopVars := make(map[*ast.GoStmt][]types.Object)

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch s := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return // separate scope; funcBodies visits it on its own
		case *ast.GoStmt:
			gos = append(gos, s)
			var vars []types.Object
			for _, fr := range stack {
				vars = append(vars, fr.vars...)
			}
			goLoopVars[s] = vars
			walkChildren(walk, s)
			return
		case *ast.RangeStmt:
			fr := frame{}
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if obj := info.Defs[id]; obj != nil {
						fr.vars = append(fr.vars, obj)
					}
				}
			}
			if _, isChan := typeUnderlying(info, s.X).(*types.Chan); isChan {
				hasJoin = true
			}
			stack = append(stack, fr)
			walkChildren(walk, s)
			stack = stack[:len(stack)-1]
			return
		case *ast.ForStmt:
			fr := frame{}
			if init, ok := s.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							fr.vars = append(fr.vars, obj)
						}
					}
				}
			}
			stack = append(stack, fr)
			walkChildren(walk, s)
			stack = stack[:len(stack)-1]
			return
		case *ast.UnaryExpr:
			if s.Op.String() == "<-" {
				hasJoin = true
			}
		case *ast.SelectStmt:
			hasJoin = true
		case *ast.CallExpr:
			if fn := methodCallee(info, s); fn != nil && fn.Name() == "Wait" {
				recv := fn.Type().(*types.Signature).Recv().Type()
				if namedSyncType(recv, "WaitGroup") {
					hasJoin = true
				}
			}
		}
		walkChildren(walk, n)
	}
	walk(body)

	for _, g := range gos {
		if !hasJoin {
			pass.Reportf(g.Pos(), "goroutine launched without a join in the enclosing function (no WaitGroup.Wait, channel receive, or select); forked work can outlive the round")
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			continue
		}
		params := funcLitParams(info, lit)
		checkLoopCapture(pass, g, lit, goLoopVars[g], info)
		checkGoroutineWrites(pass, lit, params, info)
	}
}

func walkChildren(walk func(ast.Node), n ast.Node) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			walk(c)
		}
		return false
	})
}

func typeUnderlying(info *types.Info, e ast.Expr) types.Type {
	t := info.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// funcLitParams returns the objects of a function literal's parameters.
func funcLitParams(info *types.Info, lit *ast.FuncLit) map[types.Object]bool {
	params := make(map[types.Object]bool)
	if lit.Type.Params == nil {
		return params
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				params[obj] = true
			}
		}
	}
	return params
}

// checkLoopCapture flags uses of enclosing loop variables inside the
// goroutine's closure body.
func checkLoopCapture(pass *Pass, g *ast.GoStmt, lit *ast.FuncLit, loopVars []types.Object, info *types.Info) {
	if len(loopVars) == 0 {
		return
	}
	inLoopVars := func(o types.Object) bool {
		for _, lv := range loopVars {
			if lv == o {
				return true
			}
		}
		return false
	}
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || reported[obj] || !inLoopVars(obj) {
			return true
		}
		reported[obj] = true
		pass.Reportf(id.Pos(), "goroutine closure captures loop variable %q; pass it as an argument (go func(%s ...) {...}(%s)) so each worker gets an explicit binding", id.Name, id.Name, id.Name)
		return true
	})
}

// checkGoroutineWrites flags shared-state mutation inside a goroutine
// closure: any map write, and slice-element writes whose index does
// not come from the closure's own parameters, unless a mutex Lock is
// taken inside the closure.
func checkGoroutineWrites(pass *Pass, lit *ast.FuncLit, params map[types.Object]bool, info *types.Info) {
	if holdsLock(lit.Body, info) {
		return
	}
	check := func(lhs ast.Expr) {
		ix, ok := lhs.(*ast.IndexExpr)
		if !ok {
			return
		}
		switch typeUnderlying(info, ix.X).(type) {
		case *types.Map:
			pass.Reportf(ix.Pos(), "map write inside goroutine without a lock; concurrent map mutation is undefined — use a mutex or a per-worker result slot")
		case *types.Slice, *types.Array, *types.Pointer:
			if !indexFromParams(ix.Index, params, info) {
				pass.Reportf(ix.Pos(), "slice write inside goroutine with an index not derived from the closure's parameters; workers may collide — pass the index as an argument or guard with a mutex")
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(s.X)
		}
		return true
	})
}

// indexFromParams reports whether every identifier in the index
// expression resolves to a closure parameter (or a constant), making
// writes from distinct workers disjoint by construction.
func indexFromParams(index ast.Expr, params map[types.Object]bool, info *types.Info) bool {
	if len(params) == 0 {
		return false
	}
	ok := true
	sawParam := false
	ast.Inspect(index, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if params[obj] {
			sawParam = true
		} else {
			ok = false
		}
		return true
	})
	return ok && sawParam
}

// holdsLock reports whether the closure body takes any mutex lock.
func holdsLock(body *ast.BlockStmt, info *types.Info) bool {
	held := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := methodCallee(info, call); fn != nil {
			if fn.Name() == "Lock" || fn.Name() == "RLock" {
				recv := fn.Type().(*types.Signature).Recv().Type()
				if namedSyncType(recv, "Mutex") || namedSyncType(recv, "RWMutex") {
					held = true
					return false
				}
			}
		}
		return true
	})
	return held
}
