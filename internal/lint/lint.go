// Package lint is mpclint's engine: a small static-analysis driver and
// a suite of repo-specific analyzers enforcing the determinism and
// concurrency invariants this reproduction depends on.
//
// The paper's central claims — parallel-correctness (a one-round
// distributed evaluation equals the sequential result) and
// coordination-free consistency (every fair run of a transducer
// network converges to the same output) — are *determinism* theorems.
// An implementation can silently forfeit them through a handful of
// classic Go hazards: unsorted map iteration feeding output, unseeded
// global randomness, unsynchronized goroutine fan-out, and wall-clock
// reads or sleeps standing in for the virtual clock. The analyzers in
// this package mechanically forbid those hazards.
//
// The package is written against the standard library only (go/ast,
// go/parser, go/token, go/types); it adds no module dependencies and
// works offline.
//
// Diagnostics can be suppressed with a comment on the offending line
// or the line directly above it:
//
//	//lint:ignore <analyzer-name> reason
//	//lint:allow <analyzer-name> reason  (alias for lint:ignore)
//	//lint:sorted reason                 (alias for ignoring mapiter-determinism)
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by file position. File is
// relative to the module root, so output is stable across machines.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check run over every loaded package. An
// analyzer with a nil Run is driver-implemented (suppress-audit): it
// participates in selection and listing but has no per-package pass of
// its own.
type Analyzer struct {
	Name string // kebab-case identifier, used in output and suppressions
	Doc  string // one-line description of the guarded invariant
	Run  func(*Pass)
}

// Config tunes where the stricter analyzers apply.
type Config struct {
	// EnginePackages are package names whose evaluation results must be
	// pure functions of their inputs: seeded-rand forbids global
	// randomness and wall-clock reads inside them, and nondet-taint
	// treats their exported entry points' results as sinks.
	EnginePackages []string

	// SinkPackages are additional package names (beyond the engine)
	// where nondet-taint checks sinks: the measurement and persistence
	// layers whose emitted bytes must be run-to-run identical.
	SinkPackages []string

	// FanoutPackages are package names where fanout-join requires every
	// goroutine to carry provable join or cancellation evidence.
	FanoutPackages []string
}

// DefaultConfig returns the repo's configuration: the engine packages
// are those on the evaluation path whose outputs the paper's theorems
// constrain; sinks extend to the measurement/persistence layers; the
// fanout discipline covers everything that spawns workers.
func DefaultConfig() Config {
	return Config{
		EnginePackages: []string{
			"rel", "cq", "mpc", "hypercube", "datalog", "transducer", "gym",
		},
		SinkPackages: []string{
			"experiments", "sweep", "policy", "lint", "main",
		},
		FanoutPackages: []string{
			"sweep", "experiments", "lint", "main",
		},
	}
}

func (c Config) isEngine(pkgName string) bool {
	for _, n := range c.EnginePackages {
		if n == pkgName {
			return true
		}
	}
	return false
}

// isSinkScope reports whether nondet-taint should treat sinks in
// pkgName as live: engine packages plus the configured sink packages.
func (c Config) isSinkScope(pkgName string) bool {
	if c.isEngine(pkgName) {
		return true
	}
	for _, n := range c.SinkPackages {
		if n == pkgName {
			return true
		}
	}
	return false
}

// isFanoutScope reports whether fanout-join applies in pkgName:
// engine packages plus the configured fanout packages.
func (c Config) isFanoutScope(pkgName string) bool {
	if c.isEngine(pkgName) {
		return true
	}
	for _, n := range c.FanoutPackages {
		if n == pkgName {
			return true
		}
	}
	return false
}

// Pass carries one (package, analyzer) run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Config   Config

	diags []Diagnostic
	root  string     // module root, for relativizing file paths
	taint *taintData // module-wide interprocedural results (nondet-taint only)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     file,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapIterAnalyzer,
		SeededRandAnalyzer,
		GoroutineAnalyzer,
		LockAnalyzer,
		ErrDiscardAnalyzer,
		WallclockAnalyzer,
		NondetTaintAnalyzer,
		FanoutJoinAnalyzer,
		SuppressAuditAnalyzer,
	}
}

// AnalyzerByName returns the named analyzer from the suite.
func AnalyzerByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Run executes the analyzers over the module's packages and returns
// all unsuppressed diagnostics sorted by (file, line, col, analyzer).
//
// When nondet-taint is selected, its interprocedural phase (call graph
// + bottom-up summaries) runs once for the whole module before the
// per-package passes consume the results. When suppress-audit is
// selected, each package's directives are audited after its other
// analyzers have had the chance to use them; audit diagnostics cannot
// themselves be suppressed.
func Run(mod *Module, analyzers []*Analyzer, cfg Config) []Diagnostic {
	var td *taintData
	auditing := false
	for _, a := range analyzers {
		switch a.Name {
		case NondetTaintAnalyzer.Name:
			td = computeTaint(mod, cfg)
		case SuppressAuditAnalyzer.Name:
			auditing = true
		}
	}
	var out []Diagnostic
	for _, pkg := range mod.Packages {
		sup := collectSuppressions(mod.Fset, pkg)
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     mod.Fset,
				Pkg:      pkg,
				Config:   cfg,
				root:     mod.Root,
				taint:    td,
			}
			a.Run(pass)
			for _, d := range pass.diags {
				if sup.allows(a.Name, d.File, d.Line) {
					continue
				}
				out = append(out, d)
			}
		}
		if auditing {
			pass := &Pass{
				Analyzer: SuppressAuditAnalyzer,
				Fset:     mod.Fset,
				Pkg:      pkg,
				Config:   cfg,
				root:     mod.Root,
			}
			auditSuppressions(pass, sup, analyzers)
			out = append(out, pass.diags...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// ---- shared type helpers used by the analyzers ----

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// pkgFunc resolves call to a package-level function and returns the
// package import path and function name ("math/rand", "Intn").
func pkgFunc(info *types.Info, call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// methodCallee resolves call to the invoked method object, or nil.
func methodCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Type().(*types.Signature).Recv() == nil {
		return nil
	}
	return fn
}

// namedSyncType reports whether t (after stripping pointers) is the
// named sync type sync.<name>.
func namedSyncType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// isMapType reports whether e has map type.
func isMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// objectOf returns the object an identifier denotes (use or def).
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// funcBodies calls visit for every function body in the file: each
// top-level declaration and every function literal, each visited
// exactly once as its own scope.
func funcBodies(f *ast.File, visit func(ft *ast.FuncType, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn.Type, fn.Body)
			}
		case *ast.FuncLit:
			visit(fn.Type, fn.Body)
		}
		return true
	})
}

// walkScope walks stmts of one function scope without descending into
// nested function literals (which are their own scopes). The go
// statement itself is still delivered before the cut.
func walkScope(body ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == body {
			return fn(n)
		}
		if _, ok := n.(*ast.FuncLit); ok {
			fn(n)
			return false
		}
		return fn(n)
	})
}
