package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a tiny module in a temp dir and loads it.
func writeModule(t *testing.T, files map[string]string) *Module {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("loading temp module: %v", err)
	}
	return mod
}

// summaryOf computes taint for the module and returns the named
// function's summary.
func summaryOf(t *testing.T, mod *Module, name string) *summary {
	t.Helper()
	td := computeTaint(mod, DefaultConfig())
	for _, n := range td.cg.nodes {
		if n.obj.Name() == name {
			if n.summary == nil {
				t.Fatalf("function %s has no summary", name)
			}
			return n.summary
		}
	}
	t.Fatalf("function %s not found in call graph", name)
	return nil
}

func TestSummaryParamFlow(t *testing.T) {
	mod := writeModule(t, map[string]string{"a.go": `package a

func id(x int) int { return x }

func pick(a, b string) string { return b }
`})
	id := summaryOf(t, mod, "id")
	if len(id.results) != 1 || id.results[0].params != 1<<0 {
		t.Errorf("id: want result depending on param 0, got %+v", id.results)
	}
	if id.results[0].kinds != 0 {
		t.Errorf("id: no concrete taint expected, got %v", id.results[0].kinds)
	}
	pick := summaryOf(t, mod, "pick")
	if len(pick.results) != 1 || pick.results[0].params != 1<<1 {
		t.Errorf("pick: want result depending on param 1 only, got %+v", pick.results)
	}
}

func TestSummaryReceiverIsParamZero(t *testing.T) {
	mod := writeModule(t, map[string]string{"a.go": `package a

type box struct{ v int }

func (b box) get() int { return b.v }
`})
	get := summaryOf(t, mod, "get")
	if len(get.results) != 1 || get.results[0].params != 1<<0 {
		t.Errorf("get: want result depending on receiver (param 0), got %+v", get.results)
	}
}

func TestSummarySourceAndChain(t *testing.T) {
	// h generates map-order taint, g and f forward it: f's summary must
	// carry the concrete kind with the callee chain in the witness.
	mod := writeModule(t, map[string]string{"a.go": `package a

func h(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}

func g(m map[string]int) string { return h(m) }

func f(m map[string]int) string { return g(m) }
`})
	f := summaryOf(t, mod, "f")
	if len(f.results) != 1 || f.results[0].kinds&kindMapOrder == 0 {
		t.Fatalf("f: want map-order taint in result, got %+v", f.results)
	}
	ws := f.results[0].witnessString()
	if !strings.Contains(ws, "via h → g") {
		t.Errorf("f: witness should name the chain h → g, got %q", ws)
	}
}

func TestSummaryRecursionHavoc(t *testing.T) {
	// Mutually recursive pair: in-cycle calls are black boxes, so the
	// taint h would contribute is dropped, and both members are marked.
	mod := writeModule(t, map[string]string{"a.go": `package a

func even(m map[string]int, n int) string {
	if n == 0 {
		s := ""
		for k := range m {
			s += k
		}
		return s
	}
	return odd(m, n-1)
}

func odd(m map[string]int, n int) string {
	return even(m, n-1)
}
`})
	odd := summaryOf(t, mod, "odd")
	if !odd.havocRecursion {
		t.Error("odd: recursive-cycle member should be marked havocRecursion")
	}
	if len(odd.results) != 1 || odd.results[0].kinds != 0 {
		t.Errorf("odd: in-cycle call must be havocked to no taint, got %+v", odd.results)
	}
	even := summaryOf(t, mod, "even")
	if !even.havocRecursion {
		t.Error("even: recursive-cycle member should be marked havocRecursion")
	}
	// even's own map range still contributes concrete taint.
	if len(even.results) != 1 || even.results[0].kinds&kindMapOrder == 0 {
		t.Errorf("even: local source must survive recursion havoc, got %+v", even.results)
	}
}

func TestSummaryDynamicCallHavoc(t *testing.T) {
	// Interface-method and function-value calls cannot be resolved, so
	// their results carry no taint even when every implementation would.
	mod := writeModule(t, map[string]string{"a.go": `package a

type enumerator interface {
	Enumerate() []string
}

func viaInterface(e enumerator) []string {
	return e.Enumerate()
}

func viaFuncValue(fn func() []string) []string {
	return fn()
}
`})
	vi := summaryOf(t, mod, "viaInterface")
	if len(vi.results) != 1 || !vi.results[0].isZero() {
		t.Errorf("viaInterface: dynamic call must be havocked, got %+v", vi.results)
	}
	vf := summaryOf(t, mod, "viaFuncValue")
	if len(vf.results) != 1 || !vf.results[0].isZero() {
		t.Errorf("viaFuncValue: function-value call must be havocked, got %+v", vf.results)
	}
}

func TestSummarySanitizerTransitivity(t *testing.T) {
	mod := writeModule(t, map[string]string{"a.go": `package a

import "sort"

func order(xs []string) {
	sort.Strings(xs)
}

func enumerate(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	order(ks)
	return ks
}

func leak(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
`})
	ord := summaryOf(t, mod, "order")
	if ord.sanitizes&(1<<0) == 0 {
		t.Errorf("order: parameter 0 should be marked sanitized, got %b", ord.sanitizes)
	}
	enum := summaryOf(t, mod, "enumerate")
	if len(enum.results) != 1 || enum.results[0].kinds != 0 {
		t.Errorf("enumerate: transitive sort must launder order taint, got %+v", enum.results)
	}
	lk := summaryOf(t, mod, "leak")
	if len(lk.results) != 1 || lk.results[0].kinds&kindMapOrder == 0 {
		t.Errorf("leak: unsorted enumeration must stay tainted, got %+v", lk.results)
	}
}

func TestSummarySinkFlows(t *testing.T) {
	// A function printing its parameter in a sink-scope package records
	// a sink flow for that parameter; callers passing tainted values
	// are reported at the call site (checked in the fixture golden).
	mod := writeModule(t, map[string]string{"main.go": `package main

import "fmt"

func emit(s string) {
	fmt.Println(s)
}

func main() {
	emit("ok")
}
`})
	em := summaryOf(t, mod, "emit")
	found := false
	for _, sf := range em.sinks {
		if sf.param == 0 && strings.Contains(sf.sink, "fmt.Println") {
			found = true
		}
	}
	if !found {
		t.Errorf("emit: want sink flow for param 0 into fmt.Println, got %+v", em.sinks)
	}
}

func TestCommutativeFoldLaundersOrder(t *testing.T) {
	mod := writeModule(t, map[string]string{"a.go": `package a

func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func concat(m map[string]string) string {
	s := ""
	for _, v := range m {
		s += v
	}
	return s
}
`})
	tot := summaryOf(t, mod, "total")
	if len(tot.results) != 1 || tot.results[0].kinds != 0 {
		t.Errorf("total: integer sum over a map is order-insensitive, got %+v", tot.results)
	}
	con := summaryOf(t, mod, "concat")
	if len(con.results) != 1 || con.results[0].kinds&kindMapOrder == 0 {
		t.Errorf("concat: string concatenation must stay order-tainted, got %+v", con.results)
	}
}

func TestMapWriteLaundersOrder(t *testing.T) {
	mod := writeModule(t, map[string]string{"a.go": `package a

func clone(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
`})
	cl := summaryOf(t, mod, "clone")
	if len(cl.results) != 1 || cl.results[0].kinds != 0 {
		t.Errorf("clone: map-to-map copy is order-insensitive, got %+v", cl.results)
	}
}
