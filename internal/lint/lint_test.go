package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureModule loads the fixture module under testdata/src once per
// test that needs it.
func fixtureModule(t *testing.T) *Module {
	t.Helper()
	mod, err := LoadModule(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	return mod
}

// TestFixtureDiagnostics runs the full suite over the fixture module
// and compares every diagnostic, in order, against the golden file.
func TestFixtureDiagnostics(t *testing.T) {
	mod := fixtureModule(t)
	diags := Run(mod, Analyzers(), DefaultConfig())

	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	got := b.String()

	golden := filepath.Join("testdata", "golden", "diagnostics.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics differ from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFixtureCoverage asserts structural properties the golden file
// alone would not make obvious: every analyzer fires at least once on
// the fixtures, and the clean functions stay clean.
func TestFixtureCoverage(t *testing.T) {
	mod := fixtureModule(t)
	diags := Run(mod, Analyzers(), DefaultConfig())

	fired := make(map[string]int)
	for _, d := range diags {
		fired[d.Analyzer]++
	}
	for _, a := range Analyzers() {
		if fired[a.Name] == 0 {
			t.Errorf("analyzer %s fired zero diagnostics on the fixtures", a.Name)
		}
	}

	// The cmd/tool fixture must be exempt from error-discard and
	// wallclock-free (binaries may time things and discard top-level
	// errors), but nondet-taint still applies: package main is a sink
	// scope, and its map-order leak must be caught.
	taintUnderCmd := false
	for _, d := range diags {
		if !strings.HasPrefix(d.File, "cmd/") {
			continue
		}
		switch d.Analyzer {
		case "error-discard", "wallclock-free":
			t.Errorf("diagnostic under exempt cmd/ tree: %s", d)
		case "nondet-taint":
			taintUnderCmd = true
		}
	}
	if !taintUnderCmd {
		t.Error("nondet-taint should flag the map-order leak in cmd/tool")
	}

	// The two-call-boundary flow is the tentpole: the witness chain
	// must name both intermediate callees from the other file.
	pinned := false
	sanitized := false
	for _, d := range diags {
		if d.Analyzer != "nondet-taint" {
			continue
		}
		if strings.Contains(d.Message, "via describe → label") &&
			strings.Contains(d.Message, "taint/helpers.go:13") {
			pinned = true
		}
		// ShowSorted (line 29) and CleanKeys must stay silent: the
		// sort.Strings inside sortedKeys and the transitive sanitizes
		// bit of sortInPlace both launder the order taint.
		if d.File == "taint/taint.go" && (d.Line == 29 || (d.Line >= 33 && d.Line <= 41)) {
			sanitized = true
		}
	}
	if !pinned {
		t.Error("missing two-call-boundary witness chain (describe → label) in nondet-taint output")
	}
	if sanitized {
		t.Error("sanitized flows (ShowSorted / CleanKeys) must not be flagged")
	}
}

// TestAnalyzerSelection checks that running a single analyzer yields
// only its diagnostics.
func TestAnalyzerSelection(t *testing.T) {
	mod := fixtureModule(t)
	a, ok := AnalyzerByName("seeded-rand")
	if !ok {
		t.Fatal("seeded-rand analyzer missing")
	}
	diags := Run(mod, []*Analyzer{a}, DefaultConfig())
	if len(diags) == 0 {
		t.Fatal("seeded-rand found nothing on the fixtures")
	}
	for _, d := range diags {
		if d.Analyzer != "seeded-rand" {
			t.Errorf("unexpected analyzer %q in filtered run", d.Analyzer)
		}
		if !strings.HasPrefix(d.File, "mpc/") {
			t.Errorf("seeded-rand fired outside the engine fixture package: %s", d)
		}
	}
}

// TestRepoClean is the enforcement test: the repository itself must
// lint clean. Any new violation of the determinism, randomness,
// concurrency, lock, or error-handling rules fails tier-1.
func TestRepoClean(t *testing.T) {
	mod, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading repo module: %v", err)
	}
	if mod.Path != "mpclogic" {
		t.Fatalf("unexpected module path %q", mod.Path)
	}
	diags := Run(mod, Analyzers(), DefaultConfig())
	for _, d := range diags {
		t.Errorf("repo must lint clean: %s", d)
	}
}

// TestConfigEngineMatching pins the engine package list to the
// packages whose outputs the paper's theorems constrain.
func TestConfigEngineMatching(t *testing.T) {
	cfg := DefaultConfig()
	for _, name := range []string{"rel", "cq", "mpc", "hypercube", "datalog", "transducer", "gym"} {
		if !cfg.isEngine(name) {
			t.Errorf("%s should be an engine package", name)
		}
	}
	if cfg.isEngine("experiments") || cfg.isEngine("workload") {
		t.Error("measurement-layer packages must not be on the engine list")
	}
	for _, name := range []string{"mpc", "experiments", "sweep", "policy", "main"} {
		if !cfg.isSinkScope(name) {
			t.Errorf("%s should be in nondet-taint sink scope", name)
		}
	}
	if cfg.isSinkScope("workload") {
		t.Error("workload generation is not a sink scope")
	}
	for _, name := range []string{"mpc", "transducer", "sweep", "main"} {
		if !cfg.isFanoutScope(name) {
			t.Errorf("%s should be in fanout-join scope", name)
		}
	}
	if cfg.isFanoutScope("rel2") {
		t.Error("unknown packages must not be in fanout scope")
	}
}
