package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file builds the interprocedural substrate the nondet-taint
// analyzer runs on: a static call graph over every function declared
// in the module, condensed into strongly connected components and
// ordered bottom-up (callees before callers), so function summaries
// can be computed in one pass.
//
// Resolution is deliberately static-only. A call through an interface
// method or a function value has no single callee, so such sites are
// recorded as havoc points rather than edges: the taint engine treats
// them as black boxes (see summary.go). Calls into the standard
// library are not edges either — the taint engine models the few
// stdlib functions it cares about (sources and sanitizers) as
// intrinsics and passes argument taint through the rest.

// funcNode is one declared function or method of the module.
type funcNode struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package

	callees []*funcNode // static in-module callees, deduplicated, in first-call order
	havoc   int         // call sites with no statically resolvable callee

	summary *summary // filled bottom-up by the taint engine

	// Tarjan bookkeeping.
	index, lowlink int
	onStack        bool
	scc            int
}

// callGraph is the module's call graph plus its SCC condensation.
type callGraph struct {
	nodes  []*funcNode // declaration order across sorted packages
	byFunc map[*types.Func]*funcNode
	sccs   [][]*funcNode // bottom-up: every callee's SCC precedes its caller's
}

// buildCallGraph collects every declared function with a body and
// resolves its static call edges. Node order follows the module's
// sorted package order and each file's declaration order, so the
// graph — and everything derived from it — is deterministic.
func buildCallGraph(mod *Module) *callGraph {
	cg := &callGraph{byFunc: make(map[*types.Func]*funcNode)}
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &funcNode{obj: obj, decl: fd, pkg: pkg, index: -1}
				cg.nodes = append(cg.nodes, n)
				cg.byFunc[obj] = n
			}
		}
	}
	for _, n := range cg.nodes {
		cg.resolveEdges(n)
	}
	cg.condense()
	return cg
}

// resolveEdges walks n's body — including nested function literals,
// which execute within n's dynamic extent — and records one edge per
// statically resolvable in-module callee.
func (cg *callGraph) resolveEdges(n *funcNode) {
	seen := make(map[*funcNode]bool)
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, resolved := staticCallee(n.pkg.Info, call)
		if !resolved {
			return true // builtin or conversion: neither edge nor havoc
		}
		if callee == nil {
			n.havoc++
			return true
		}
		if target, ok := cg.byFunc[callee]; ok && !seen[target] {
			seen[target] = true
			n.callees = append(n.callees, target)
		}
		return true
	})
}

// staticCallee resolves a call expression to its single callee.
// Returns (callee, true) for a statically known function or method,
// (nil, true) for a dynamic call (function value, interface method),
// and (nil, false) for non-calls: builtins, conversions, calls of
// function literals (whose bodies are analyzed inline).
func staticCallee(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			return obj, true
		case *types.Builtin:
			return nil, false
		case *types.TypeName:
			return nil, false // conversion
		case nil:
			return nil, false
		default:
			return nil, true // function-valued variable
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, true // field of function type
			}
			if types.IsInterface(sel.Recv()) {
				return nil, true // dynamic dispatch
			}
			return fn, true
		}
		// Qualified identifier: pkg.Func or a conversion to pkg.Type.
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			return obj, true
		case *types.TypeName:
			return nil, false
		case nil:
			return nil, false
		default:
			return nil, true
		}
	case *ast.FuncLit:
		return nil, false // body analyzed inline by the walker
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.InterfaceType, *ast.StructType, *ast.FuncType:
		return nil, false // conversion
	default:
		return nil, true
	}
}

// condense runs Tarjan's algorithm. Tarjan emits each component only
// after every component reachable from it, so the emission order is
// already bottom-up; we keep it as the summary-computation order.
func (cg *callGraph) condense() {
	next := 0
	var stack []*funcNode
	var strongconnect func(n *funcNode)
	strongconnect = func(n *funcNode) {
		n.index = next
		n.lowlink = next
		next++
		stack = append(stack, n)
		n.onStack = true
		for _, m := range n.callees {
			if m.index < 0 {
				strongconnect(m)
				if m.lowlink < n.lowlink {
					n.lowlink = m.lowlink
				}
			} else if m.onStack && m.index < n.lowlink {
				n.lowlink = m.index
			}
		}
		if n.lowlink == n.index {
			var comp []*funcNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				m.onStack = false
				m.scc = len(cg.sccs)
				comp = append(comp, m)
				if m == n {
					break
				}
			}
			// Members in declaration order, for deterministic analysis
			// order within a cycle.
			sort.Slice(comp, func(i, j int) bool { return comp[i].decl.Pos() < comp[j].decl.Pos() })
			cg.sccs = append(cg.sccs, comp)
		}
	}
	for _, n := range cg.nodes {
		if n.index < 0 {
			strongconnect(n)
		}
	}
}

// recursive reports whether n belongs to a recursive cycle: an SCC of
// size > 1, or a direct self-loop.
func (n *funcNode) recursive() bool {
	for _, m := range n.callees {
		if m == n {
			return true
		}
	}
	if n.scc < 0 {
		return false
	}
	count := 0
	for _, m := range n.callees {
		if m.scc == n.scc && m != n {
			count++
		}
	}
	return count > 0
}
