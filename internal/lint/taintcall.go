package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Call-site handling for the nondet-taint walker: summary application
// for in-module callees, intrinsic models for the standard-library
// sources and sanitizers, and the sink checks.

// evalCall evaluates a call expression, returning one taint value per
// result (a single merged value when per-result precision is
// unavailable). All argument expressions are evaluated — function
// literal arguments are walked inline — and sink checks run here.
func (w *taintWalker) evalCall(call *ast.CallExpr) []tval {
	// Type conversion: T(x) is the identity on taint.
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		out := tval{}
		for _, a := range call.Args {
			out = out.merge(w.eval(a))
		}
		return []tval{out}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.info.Uses[id].(*types.Builtin); ok {
			return w.evalBuiltin(b.Name(), call)
		}
	}

	callee, resolved := staticCallee(w.info, call)
	if callee == nil {
		// Dynamic call (function value, interface method) or an
		// immediately invoked literal: evaluate operands for their
		// side effects, then havoc — results carry no taint.
		w.eval(call.Fun)
		for _, a := range call.Args {
			w.eval(a)
		}
		_ = resolved
		return []tval{{}}
	}

	// sync.Map.Range: the callback observes pairs in nondeterministic
	// order — seed its parameters before walking its body.
	if isSyncMapRange(w.info, call) {
		if len(call.Args) == 1 {
			if lit, ok := call.Args[0].(*ast.FuncLit); ok {
				w.seedFuncLitParams(lit, w.source(kindMapOrder, call.Pos()))
			}
			w.orderCtx = append(w.orderCtx, orderFrame{k: kindMapOrder, pos: call.Pos()})
			w.eval(call.Args[0])
			w.orderCtx = w.orderCtx[:len(w.orderCtx)-1]
		}
		return []tval{{}}
	}

	// Position-aligned argument expressions; a method value's receiver
	// occupies position 0, matching the summary's parameter indexing.
	argExprs := w.callArgExprs(call)
	argTvs := make([]tval, len(argExprs))
	for i, e := range argExprs {
		argTvs[i] = w.eval(e)
	}

	if node, ok := w.td.cg.byFunc[callee]; ok {
		return w.applySummary(call, node, argExprs, argTvs)
	}
	return w.evalExtern(call, callee, argExprs, argTvs)
}

// callArgExprs returns the call's value operands, prepending the
// receiver expression for method-value calls.
func (w *taintWalker) callArgExprs(call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := w.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			out = append(out, sel.X)
		}
	}
	return append(out, call.Args...)
}

// applySummary instantiates an in-module callee's summary at this call
// site: parameter-flow bits translate to argument taint, sink flows
// inside the callee fire against tainted arguments, and sanitized
// parameters launder the corresponding argument objects.
func (w *taintWalker) applySummary(call *ast.CallExpr, node *funcNode, argExprs []ast.Expr, argTvs []tval) []tval {
	w.checkStableStoreSink(call, node.obj, argExprs, argTvs)
	if node.summary == nil {
		// In-cycle callee during recursive-SCC analysis: havoc.
		return []tval{{}}
	}
	paramTv := mapArgsToParams(node, argTvs)

	for _, sf := range node.summary.sinks {
		if sf.param >= len(paramTv) {
			continue
		}
		at := paramTv[sf.param]
		if at.kinds != 0 && w.sinkScope {
			chain := append([]string{node.obj.Name()}, sf.via...)
			w.td.report(w.pkg, call.Pos(), fmt.Sprintf(
				"%s flows into %s inside %s; sort at the source, or suppress with //lint:allow nondet-taint naming the invariant that makes this safe",
				at.witnessString(), sf.sink, strings.Join(chain, " → ")))
		}
		for p := 0; p < 64; p++ {
			if at.params&(1<<p) != 0 {
				w.addSinkFlow(p, sf.sink, append([]string{node.obj.Name()}, sf.via...))
			}
		}
	}

	for p := 0; p < 64 && p < len(argExprs); p++ {
		if node.summary.sanitizes&(1<<p) != 0 {
			w.sanitize(argExprs[p])
		}
	}

	n := len(node.summary.results)
	if n == 0 {
		return []tval{{}}
	}
	out := make([]tval, n)
	for i, r := range node.summary.results {
		res := tval{kinds: r.kinds, wits: r.wits}.viaCall(node.obj.Name())
		for p := 0; p < 64 && p < len(paramTv); p++ {
			if r.params&(1<<p) != 0 {
				res = res.merge(paramTv[p])
			}
		}
		out[i] = res
	}
	return out
}

// mapArgsToParams aligns argument taints with the callee's parameter
// positions, collapsing variadic tails into the final parameter.
func mapArgsToParams(node *funcNode, argTvs []tval) []tval {
	sig, ok := node.obj.Type().(*types.Signature)
	if !ok {
		return argTvs
	}
	n := sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	out := make([]tval, n)
	for i := 0; i < n && i < len(argTvs); i++ {
		out[i] = argTvs[i]
	}
	if sig.Variadic() && n > 0 {
		for i := n - 1; i < len(argTvs); i++ {
			out[n-1] = out[n-1].merge(argTvs[i])
		}
	}
	return out
}

// evalExtern models calls that leave the module: a handful of
// intrinsic sources and sanitizers, sink checks for output calls, and
// argument passthrough for everything else.
func (w *taintWalker) evalExtern(call *ast.CallExpr, callee *types.Func, argExprs []ast.Expr, argTvs []tval) []tval {
	if path, name, ok := pkgFunc(w.info, call); ok {
		switch {
		case (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name]:
			return []tval{w.source(kindRand, call.Pos())}
		case path == "time" && (name == "Now" || name == "Since" || name == "Until"):
			return []tval{w.source(kindClock, call.Pos())}
		case path == "sort" || path == "slices":
			if isSanitizerName(path, name) && len(call.Args) > 0 {
				w.sanitize(call.Args[0])
				merged := tval{}
				for _, tv := range argTvs {
					merged = merged.merge(tv)
				}
				return []tval{merged.dropOrder()}
			}
		}
		w.checkFmtSink(call, path, name, argTvs)
		w.checkEncodingSink(call, path, name, argTvs)
	}

	w.checkStableStoreSink(call, callee, argExprs, argTvs)
	w.checkWriterSink(call, argTvs)

	// Receiver-mutation heuristic: a tainted argument fed to a method
	// taints the receiver object (strings.Builder.WriteString and
	// friends accumulate state we do not otherwise track).
	merged := tval{}
	for _, tv := range argTvs {
		merged = merged.merge(tv)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := w.info.Selections[sel]; ok && s.Kind() == types.MethodVal && !merged.isZero() {
			if base := baseIdent(sel.X); base != nil {
				if obj := objectOf(w.info, base); obj != nil {
					w.mergeState(obj, merged)
				}
			}
		}
	}
	return []tval{merged}
}

func (w *taintWalker) evalBuiltin(name string, call *ast.CallExpr) []tval {
	switch name {
	case "append":
		out := tval{}
		for _, a := range call.Args {
			out = out.merge(w.eval(a))
		}
		// Appending inside a nondeterministically ordered loop builds
		// an order-dependent sequence even from clean elements.
		return []tval{out.merge(w.orderContextTaint(call.Pos()))}
	case "copy":
		if len(call.Args) == 2 {
			src := w.eval(call.Args[1])
			w.eval(call.Args[0])
			if base := baseIdent(call.Args[0]); base != nil {
				if obj := objectOf(w.info, base); obj != nil {
					w.mergeState(obj, src)
				}
			}
		}
		return []tval{{}}
	default:
		// len, cap, min, max, make, new, delete, clear, close, panic,
		// recover, complex, real, imag: evaluate operands, results are
		// clean (a set's size is deterministic even when its order is
		// not).
		for _, a := range call.Args {
			w.eval(a)
		}
		return []tval{{}}
	}
}

// isSanitizerName recognizes the sort-package and slices-package
// calls that impose a deterministic order on their first argument.
func isSanitizerName(path, name string) bool {
	if path == "sort" {
		switch name {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			return true
		}
		return false
	}
	return strings.HasPrefix(name, "Sort")
}

func isSyncMapRange(info *types.Info, call *ast.CallExpr) bool {
	fn := methodCallee(info, call)
	if fn == nil || fn.Name() != "Range" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv().Type()
	return namedSyncType(recv, "Map")
}

func (w *taintWalker) seedFuncLitParams(lit *ast.FuncLit, tv tval) {
	if lit.Type.Params == nil {
		return
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := w.info.Defs[name]; obj != nil {
				w.mergeState(obj, tv)
			}
		}
	}
}

// ---- sinks ----

// sinkHit processes a taint value arriving at a sink: concrete taint
// is reported, parameter-symbolic taint becomes a sink flow in this
// function's summary so callers report at their call sites.
func (w *taintWalker) sinkHit(pos token.Pos, desc string, tv tval) {
	if !w.sinkScope {
		return
	}
	if tv.kinds != 0 {
		w.td.report(w.pkg, pos, fmt.Sprintf(
			"%s reaches %s; sort at the source, or suppress with //lint:allow nondet-taint naming the invariant that makes this safe",
			tv.witnessString(), desc))
	}
	for p := 0; p < 64; p++ {
		if tv.params&(1<<p) != 0 {
			w.addSinkFlow(p, desc, nil)
		}
	}
}

func (w *taintWalker) addSinkFlow(param int, sink string, via []string) {
	for _, sf := range w.sinks {
		if sf.param == param && sf.sink == sink {
			return
		}
	}
	w.sinks = append(w.sinks, sinkFlow{param: param, sink: sink, via: via})
}

// checkFmtSink treats fmt output as a sink: printed bytes are the
// surfaces the determinism experiments compare. The stderr stream is
// exempt — it carries diagnostics and timing, never compared output.
func (w *taintWalker) checkFmtSink(call *ast.CallExpr, path, name string, argTvs []tval) {
	if path != "fmt" {
		return
	}
	start := 0
	switch name {
	case "Fprint", "Fprintf", "Fprintln":
		if len(call.Args) == 0 || isStderrExpr(w.info, call.Args[0]) {
			return
		}
		start = 1
	case "Print", "Printf", "Println":
	default:
		return
	}
	for i := start; i < len(argTvs); i++ {
		w.sinkHit(call.Pos(), fmt.Sprintf("fmt.%s output", name), argTvs[i])
	}
}

func (w *taintWalker) checkEncodingSink(call *ast.CallExpr, path, name string, argTvs []tval) {
	if !strings.HasPrefix(path, "encoding/") || !strings.HasPrefix(name, "Marshal") {
		return
	}
	for _, tv := range argTvs {
		w.sinkHit(call.Pos(), path+"."+name+" encoding", tv)
	}
}

// checkWriterSink flags tainted values written to builders, buffers,
// files, and encoders via method calls.
func (w *taintWalker) checkWriterSink(call *ast.CallExpr, argTvs []tval) {
	fn := methodCallee(w.info, call)
	if fn == nil {
		return
	}
	recv := fn.Type().(*types.Signature).Recv().Type()
	isEncode := fn.Name() == "Encode" && fn.Pkg() != nil && strings.HasPrefix(fn.Pkg().Path(), "encoding/")
	isWrite := false
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		isWrite = isWriterLike(recv) || namedNamed(recv, "bufio", "Writer")
	}
	if !isWrite && !isEncode {
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isStderrExpr(w.info, sel.X) {
		return
	}
	// Skip the receiver slot (argTvs[0] for method values): the writer
	// itself being tainted is not a write of tainted bytes.
	start := 0
	if s, ok := w.info.Selections[ast.Unparen(call.Fun).(*ast.SelectorExpr)]; ok && s.Kind() == types.MethodVal {
		start = 1
	}
	desc := fmt.Sprintf("%s.%s write", typeShortName(recv), fn.Name())
	for i := start; i < len(argTvs); i++ {
		w.sinkHit(call.Pos(), desc, argTvs[i])
	}
}

// checkStableStoreSink flags tainted values handed to the durable
// store: what a crash recovers must be a deterministic function of the
// input distribution. Matching is by name (NewStableStore,
// StoreFromPolicy, or any method on a type named StableStore), so the
// fixture module can exercise it without importing the real package.
func (w *taintWalker) checkStableStoreSink(call *ast.CallExpr, callee *types.Func, argExprs []ast.Expr, argTvs []tval) {
	isStore := callee.Name() == "NewStableStore" || callee.Name() == "StoreFromPolicy"
	if !isStore {
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			if n, ok := deref(sig.Recv().Type()).(*types.Named); ok && n.Obj().Name() == "StableStore" {
				isStore = true
			}
		}
	}
	if !isStore {
		return
	}
	start := 0
	if len(argExprs) > len(call.Args) {
		start = 1 // receiver slot
	}
	for i := start; i < len(argTvs); i++ {
		w.sinkHit(call.Pos(), "StableStore write ("+callee.Name()+")", argTvs[i])
	}
}

// checkStatsFieldSink fires when an assignment writes into a field of
// the cost-accounting structs whose bytes the theorems pin.
func (w *taintWalker) checkStatsFieldSink(sel *ast.SelectorExpr, tv tval) {
	if tv.isZero() {
		return
	}
	name := statsTypeName(w.info.TypeOf(sel.X))
	if name == "" {
		return
	}
	w.sinkHit(sel.Pos(), fmt.Sprintf("%s field %q", name, sel.Sel.Name), tv)
}

// checkStatsLitSink is the composite-literal form: RoundStats{F: v}.
func (w *taintWalker) checkStatsLitSink(lit *ast.CompositeLit, kv *ast.KeyValueExpr, tv tval) {
	if tv.isZero() {
		return
	}
	name := statsTypeName(w.info.TypeOf(lit))
	if name == "" {
		return
	}
	field := ""
	if id, ok := kv.Key.(*ast.Ident); ok {
		field = id.Name
	}
	w.sinkHit(kv.Pos(), fmt.Sprintf("%s field %q", name, field), tv)
}

// statsTypeName matches the determinism-critical stats structs by
// type name, package-independently (so fixtures can model them).
func statsTypeName(t types.Type) string {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return ""
	}
	switch n.Obj().Name() {
	case "RoundStats", "SweepStats":
		return n.Obj().Name()
	}
	return ""
}

func typeShortName(t types.Type) string {
	if n, ok := deref(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

func isStderrExpr(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Stderr" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "os"
}
