// Command tool shows the error-discard exemption: binaries under a
// cmd/ segment may discard errors at top level.
package main

import "errors"

func mk() error { return errors.New("x") }

func main() {
	_ = mk()
}
