// Command tool shows the error-discard exemption: binaries under a
// cmd/ segment may discard errors at top level. Package main is still
// a sink scope for nondet-taint, so map order reaching stdout through
// a helper is flagged.
package main

import (
	"errors"
	"fmt"
)

func mk() error { return errors.New("x") }

// keysLine concatenates keys in map iteration order.
func keysLine(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}

func main() {
	_ = mk()
	fmt.Println(keysLine(map[string]int{"a": 1, "b": 2}))
}
