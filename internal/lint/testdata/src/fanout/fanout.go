// Package sweep (fixture) exercises the fanout-join analyzer: the
// package name is on the fanout list, so every goroutine needs join or
// cancellation evidence tied to that specific goroutine.
package sweep

import "sync"

// Leak spawns a worker and waits on an unrelated WaitGroup. The
// function-level join satisfies goroutine-hygiene; fanout-join demands
// evidence tied to the goroutine itself: flagged.
func Leak(work []int, other *sync.WaitGroup) {
	go func() {
		for range work {
		}
	}()
	other.Wait()
}

// Named spawns a named function: the Done lives out of sight, so there
// is no visible evidence: flagged.
func Named() {
	var wg sync.WaitGroup
	wg.Add(1)
	go helper(&wg)
	wg.Wait()
}

func helper(wg *sync.WaitGroup) { wg.Done() }

// Joined pairs Add / deferred Done / Wait: clean.
func Joined(work []int) {
	var wg sync.WaitGroup
	for i := range work {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = work[i]
		}(i)
	}
	wg.Wait()
}

// Fed sends on a channel the spawner drains: clean.
func Fed(work []int) int {
	out := make(chan int)
	for range work {
		go func() {
			out <- 1
		}()
	}
	total := 0
	for range work {
		total += <-out
	}
	return total
}

// Pool workers range over a channel the spawner closes, with a
// WaitGroup join on top: clean on both counts.
func Pool(jobs []int) {
	feed := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range feed {
			}
		}()
	}
	for _, j := range jobs {
		feed <- j
	}
	close(feed)
	wg.Wait()
}
