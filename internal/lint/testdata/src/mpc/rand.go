// Package mpc exercises the seeded-rand analyzer: the package name is
// on the engine list, so global randomness and wall-clock reads are
// forbidden here.
package mpc

import (
	"math/rand"
	"time"
)

// Shuffle uses the global source: flagged.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Pick uses the global source: flagged.
func Pick(xs []int) int {
	return xs[rand.Intn(len(xs))]
}

// Stamp reads the wall clock: flagged.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Seeded threads an explicit generator: clean.
func Seeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// Since takes time as an input: clean.
func Since(t0, t1 time.Time) time.Duration {
	return t1.Sub(t0)
}

// sock mimics the net package's deadline surface.
type sock struct{}

func (sock) SetDeadline(t time.Time) error { return nil }

// ArmDeadline reads the clock only to arm a socket deadline: clean
// under seeded-rand and wallclock-free alike — the deadline bounds
// when a broken exchange fails, never what the engine computes.
func ArmDeadline(c sock, d time.Duration) error {
	return c.SetDeadline(time.Now().Add(d))
}
