// Package wallclock exercises the wallclock-free analyzer: library
// code may not read the wall clock or block on wall time.
package wallclock

import "time"

// Timestamp reads the wall clock: flagged.
func Timestamp() int64 {
	return time.Now().UnixNano()
}

// Pause blocks on wall time: flagged.
func Pause() {
	time.Sleep(10 * time.Millisecond)
}

// Timeout builds a wall-time timeout channel: flagged.
func Timeout() <-chan time.Time {
	return time.After(time.Second)
}

// Elapsed reads the wall clock via Since: flagged.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0)
}

// Countdown reads the wall clock via Until: flagged.
func Countdown(deadline time.Time) time.Duration {
	return time.Until(deadline)
}

// Ticker blocks on wall time: flagged.
func Ticker() *time.Ticker {
	return time.NewTicker(time.Second)
}

// Stopwatch is an annotated measurement-layer clock read: clean.
func Stopwatch() time.Time {
	return time.Now() //lint:allow wallclock-free measurement-layer stopwatch
}

// FromParts is a pure function of its arguments: clean.
func FromParts(sec, nsec int64) time.Time {
	return time.Unix(sec, nsec)
}

// Span takes both endpoints as inputs: clean.
func Span(t0, t1 time.Time) time.Duration {
	return t1.Sub(t0)
}
