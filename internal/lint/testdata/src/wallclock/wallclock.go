// Package wallclock exercises the wallclock-free analyzer: library
// code may not read the wall clock or block on wall time.
package wallclock

import (
	"time"

	"fixture/util"
)

// Timestamp reads the wall clock: flagged.
func Timestamp() int64 {
	return time.Now().UnixNano()
}

// Pause blocks on wall time: flagged.
func Pause() {
	time.Sleep(10 * time.Millisecond)
}

// Timeout builds a wall-time timeout channel: flagged.
func Timeout() <-chan time.Time {
	return time.After(time.Second)
}

// Elapsed reads the wall clock via Since: flagged.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0)
}

// Countdown reads the wall clock via Until: flagged.
func Countdown(deadline time.Time) time.Duration {
	return time.Until(deadline)
}

// Ticker blocks on wall time: flagged.
func Ticker() *time.Ticker {
	return time.NewTicker(time.Second)
}

// Stopwatch is an annotated measurement-layer clock read: clean.
func Stopwatch() time.Time {
	return time.Now() //lint:allow wallclock-free measurement-layer stopwatch
}

// conn mimics the net package's deadline surface.
type conn struct{}

func (conn) SetDeadline(t time.Time) error      { return nil }
func (conn) SetReadDeadline(t time.Time) error  { return nil }
func (conn) SetWriteDeadline(t time.Time) error { return nil }

// ArmDeadline reads the clock only inside a deadline-setter method
// argument: clean — a socket deadline is a connection liveness bound,
// never logical time.
func ArmDeadline(c conn, d time.Duration) error {
	return c.SetDeadline(time.Now().Add(d))
}

// ArmReadWriteDeadlines: clean, same allowance for the split setters.
func ArmReadWriteDeadlines(c conn, d time.Duration) error {
	if err := c.SetReadDeadline(time.Now().Add(d)); err != nil {
		return err
	}
	return c.SetWriteDeadline(time.Now().Add(d))
}

// EscapedDeadline binds the clock read before arming: flagged — the
// timestamp escapes the deadline argument and becomes ambient state.
func EscapedDeadline(c conn, d time.Duration) (time.Time, error) {
	t0 := time.Now()
	return t0, c.SetDeadline(t0.Add(d))
}

// FuncNamedSetDeadline calls a package-level function that merely
// shares the setter name: flagged — the allowance is for method calls
// only.
func FuncNamedSetDeadline(d time.Duration) error {
	return util.SetDeadline(time.Now().Add(d))
}

// FromParts is a pure function of its arguments: clean.
func FromParts(sec, nsec int64) time.Time {
	return time.Unix(sec, nsec)
}

// Span takes both endpoints as inputs: clean.
func Span(t0, t1 time.Time) time.Duration {
	return t1.Sub(t0)
}
