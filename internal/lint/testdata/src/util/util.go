// Package util is outside the engine list, so seeded-rand stays quiet
// here and the one wallclock-free hit is suppressed at the source.
// Only the interprocedural taint analysis can see the nondeterminism
// travel from here to an engine entry point in another package.
package util

import (
	"math/rand"
	"time"
)

// Jitter returns a value from the unseeded global source.
func Jitter(n int) int {
	return rand.Intn(n)
}

// Stamp reads the wall clock. The suppression silences the local
// stopwatch complaint; nondet-taint still tracks the value to sinks.
func Stamp() int64 {
	return time.Now().UnixNano() //lint:allow wallclock-free fixture stopwatch, tracked by taint instead
}

// SetDeadline is a package-level FUNCTION that happens to share its
// name with the net deadline methods. The deadline allowance must not
// apply to calls of it — only method calls qualify.
func SetDeadline(t time.Time) error {
	_ = t
	return nil
}
