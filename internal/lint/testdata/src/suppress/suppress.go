// Package suppress exercises the suppress-audit analyzer: directives
// must earn their keep by suppressing at least one live diagnostic.
package suppress

// Used silences a live mapiter-determinism diagnostic: not audited.
func Used(m map[string]int) []string {
	var out []string
	//lint:sorted callers treat the result as a set
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Stale sits on a line where no diagnostic fires: flagged as unused.
func Stale(xs []string) int {
	//lint:allow mapiter-determinism nothing fires here
	return len(xs)
}

// Unknown names an analyzer that does not exist: flagged.
func Unknown() int {
	//lint:ignore no-such-analyzer mistyped analyzer name
	return 0
}
