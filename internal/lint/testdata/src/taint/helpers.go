// helpers.go holds the sources one or two call boundaries away from
// the sinks in taint.go — nothing in this file is a diagnostic site.
package transducer

import "sort"

// describe builds a string by concatenating keys in map iteration
// order. There is no append, so the intraprocedural mapiter analyzer
// cannot see it; the taint analysis records the order taint in
// describe's summary.
func describe(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}

// label forwards the taint through a second call boundary.
func label(m map[string]int) string {
	return describe(m)
}

// sortedKeys launders map order through sort.Strings before the value
// escapes: its summary is clean.
func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// sortInPlace sorts its parameter: the summary's sanitizes bit makes
// callers' arguments clean transitively, like rel's sort helpers.
func sortInPlace(xs []string) {
	sort.Strings(xs)
}

// firstVal returns whichever value map iteration yields first.
func firstVal(m map[string]int) int {
	for _, v := range m {
		return v
	}
	return 0
}
