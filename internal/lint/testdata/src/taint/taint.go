// Package transducer (fixture) exercises the nondet-taint analyzer:
// the package name is on the engine list, so exported returns, stats
// fields, store writes, and fmt output are determinism-critical sinks.
// The sources live in helpers.go and util — every finding here crosses
// at least one call boundary, most cross two.
package transducer

import (
	"fmt"
	"sync"

	"fixture/util"
)

// Banner leaks map iteration order through two call boundaries in
// another file (describe → label): flagged at this return.
func Banner(m map[string]int) string {
	return label(m)
}

// Show passes the same two-boundary taint to a fmt sink: flagged.
func Show(m map[string]int) {
	fmt.Println(label(m))
}

// ShowSorted prints the sorted enumeration: the sort.Strings inside
// sortedKeys launders the order taint, so this is clean.
func ShowSorted(m map[string]int) {
	fmt.Println(sortedKeys(m))
}

// CleanKeys launders through an in-module helper: sortInPlace's
// summary marks its parameter sanitized, so the return is clean.
func CleanKeys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sortInPlace(ks)
	return ks
}

// Perturb returns unseeded randomness obtained through another
// package — seeded-rand cannot fire inside util: flagged.
func Perturb(n int) int {
	return util.Jitter(n)
}

// Mark returns a wall-clock read obtained through another package:
// flagged, and no sort can launder value taint.
func Mark() int64 {
	return util.Stamp()
}

// FirstReady returns whichever channel wins the race: select-winner
// taint returned from an engine entry point, flagged.
func FirstReady(a, b <-chan int) int {
	var v int
	select {
	case v = <-a:
	case v = <-b:
	}
	return v
}

// Gather concatenates from goroutines in completion order: flagged.
func Gather(parts []string) string {
	var wg sync.WaitGroup
	out := ""
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out += parts[i]
		}(i)
	}
	wg.Wait()
	return out
}

// RoundStats mirrors the engine's cost-accounting struct by name.
type RoundStats struct {
	Received int
}

// record stores a map-order-dependent value in a stats field: flagged
// at the field write even though the function is unexported.
func record(m map[string]int) RoundStats {
	var st RoundStats
	st.Received = firstVal(m)
	return st
}

// StableStore mirrors the persistence layer's store by name.
type StableStore struct {
	rows []string
}

// NewStableStore is a sink by name: its argument must be deterministic.
func NewStableStore(rows []string) *StableStore {
	return &StableStore{rows: rows}
}

// checkpoint hands an order-dependent blob to the durable store:
// flagged at the call.
func checkpoint(m map[string]int) *StableStore {
	blob := ""
	for k := range m {
		blob += k
	}
	return NewStableStore([]string{blob})
}

var _ = record
var _ = checkpoint
