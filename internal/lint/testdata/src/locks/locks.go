// Package locks exercises the lock-discipline analyzer.
package locks

import "sync"

// Counter is a lock-bearing type.
type Counter struct {
	mu sync.Mutex
	n  int
}

// ByValue copies the mutex through a parameter: flagged.
func ByValue(c Counter) int {
	return c.n
}

// Get copies the mutex through a value receiver: flagged.
func (c Counter) Get() int {
	return c.n
}

// Snapshot copies the mutex through the result and through the deref
// assignment: both flagged.
func Snapshot(c *Counter) Counter {
	d := *c
	return d
}

// ByPointer is the sanctioned spelling: clean.
func ByPointer(c *Counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// LockNoUnlock takes the lock and never releases it: flagged.
func LockNoUnlock(c *Counter) {
	c.mu.Lock()
	c.n++
}

// LockDeferredClosure releases through a deferred closure: clean.
func LockDeferredClosure(c *Counter) {
	c.mu.Lock()
	defer func() {
		c.mu.Unlock()
	}()
	c.n++
}
