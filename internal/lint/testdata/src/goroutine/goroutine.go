// Package goroutine exercises the goroutine-hygiene analyzer.
package goroutine

import "sync"

// NoJoin forks without any join: flagged.
func NoJoin(n int) {
	for i := 0; i < n; i++ {
		go func(i int) {
			use(i)
		}(i)
	}
}

// Joined is the sanctioned fan-out: WaitGroup join, loop variable
// passed as a parameter, writes disjoint by that parameter. Clean.
func Joined(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = i * i
		}(i)
	}
	wg.Wait()
	return out
}

// CaptureLoop captures the loop variable instead of passing it:
// flagged.
func CaptureLoop(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			use(i)
		}()
	}
	wg.Wait()
}

// SharedMap writes a map from concurrent workers: flagged.
func SharedMap(keys []string) map[string]bool {
	m := make(map[string]bool)
	var wg sync.WaitGroup
	for _, k := range keys {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			m[k] = true
		}(k)
	}
	wg.Wait()
	return m
}

// SharedSlot aims every worker at index 0: flagged.
func SharedSlot(n int) []int {
	out := make([]int, 1)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[0] += i
		}(i)
	}
	wg.Wait()
	return out
}

// LockedSlot serializes the shared write with a mutex: clean.
func LockedSlot(n int) []int {
	out := make([]int, 1)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			out[0] += i
		}(i)
	}
	wg.Wait()
	return out
}

// ChanJoin joins through a channel receive: clean.
func ChanJoin() int {
	ch := make(chan int)
	go func() {
		ch <- 42
	}()
	return <-ch
}

func use(int) {}
