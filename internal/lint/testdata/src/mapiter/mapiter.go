// Package mapiter exercises the mapiter-determinism analyzer.
package mapiter

import (
	"fmt"
	"sort"
)

// Keys leaks map order: appended and returned with no sort.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// KeysSorted repairs the order before returning: clean.
func KeysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// KeysAnnotated documents a deliberate unordered enumeration.
func KeysAnnotated(m map[string]int) []string {
	var out []string
	//lint:sorted callers treat the result as a set
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Dump emits inside the loop: no later sort can fix this.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Closure appends through a nested literal, still inside the range.
func Closure(m map[string]int) []string {
	var out []string
	for k := range m {
		func(s string) {
			out = append(out, s)
		}(k)
	}
	return out
}

// Count is order-insensitive: clean.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Local appends but never escapes: clean.
func Local(m map[string]int) int {
	var tmp []string
	for k := range m {
		tmp = append(tmp, k)
	}
	return len(tmp)
}
