// Package errs exercises the error-discard analyzer.
package errs

import (
	"errors"
	"fmt"
	"strings"
)

func mk() error { return errors.New("boom") }

func two() (int, error) { return 0, errors.New("boom") }

// Discard drops a single error result: flagged.
func Discard() {
	_ = mk()
}

// DiscardTuple drops the error half of a pair: flagged.
func DiscardTuple() int {
	n, _ := two()
	return n
}

// Bare drops the error of a bare call statement: flagged.
func Bare() {
	mk()
}

// Builder writes are allowlisted (documented to never fail): clean.
func Builder() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x=%d", 1)
	b.WriteString("y")
	return b.String()
}

// Annotated documents a deliberate discard: clean.
func Annotated() {
	_ = mk() //lint:ignore error-discard demo of a documented exception
}

// Handled propagates: clean.
func Handled() error {
	if err := mk(); err != nil {
		return fmt.Errorf("wrap: %w", err)
	}
	n, err := two()
	if n < 0 {
		return errors.New("negative")
	}
	return err
}
