package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	Path  string // import path ("mpclogic/internal/rel")
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	modRoot string
}

// Module is a fully loaded module: every package under the root,
// parsed and type-checked against the standard library from source.
type Module struct {
	Root     string // absolute module root (directory of go.mod)
	Path     string // module path from go.mod
	Fset     *token.FileSet
	Packages []*Package // sorted by import path
}

// LoadModule loads and type-checks every package of the module rooted
// at root (the directory containing go.mod). Test files are skipped:
// the analyzers enforce production invariants, and tests are exempt
// from several of them by design.
//
// Intra-module imports are resolved by loading the imported package
// from source; standard-library imports are type-checked from GOROOT
// source via go/importer, so loading works offline with zero module
// dependencies.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	mod := &Module{Root: root, Path: modPath, Fset: fset}
	for _, dir := range dirs {
		pkg, err := ld.load(ld.importPath(dir), dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			mod.Packages = append(mod.Packages, pkg)
		}
	}
	sort.Slice(mod.Packages, func(i, j int) bool {
		return mod.Packages[i].Path < mod.Packages[j].Path
	})
	return mod, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: cannot read %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// packageDirs returns every directory under root holding non-test Go
// files, skipping testdata, vendor, hidden and underscore directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if isSourceFile(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// loader type-checks module packages on demand, memoizing results; it
// is the types.Importer used for intra-module imports.
type loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

func (l *loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.load(path, filepath.Join(l.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: import %q resolves to a directory with no Go files", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// load parses and type-checks the package in dir, returning nil for
// directories with no non-test Go files.
func (l *loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if isSourceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:    path,
		Dir:     dir,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		modRoot: l.root,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}
