package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIterAnalyzer flags `for ... range m` over a map when the loop
// body feeds externally visible output whose order therefore depends
// on Go's randomized map iteration:
//
//   - the body appends to a slice that the enclosing function returns
//     or emits, and no sort call over that slice follows the loop, or
//   - the body writes output directly (fmt printing, Builder/Buffer
//     writes), where no later sort can repair the order.
//
// This is the mechanical face of parallel-correctness: the paper's
// equivalence [Q,P](I) = Q(I) is a statement about *sets*, and the
// implementation keeps it observable only if every serialization of a
// set is order-stable. Suppress deliberate unordered enumeration with
// a //lint:sorted comment explaining why order does not matter.
var MapIterAnalyzer = &Analyzer{
	Name: "mapiter-determinism",
	Doc:  "map iteration must not determine returned or emitted order",
	Run:  runMapIter,
}

func runMapIter(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkMapRanges(pass, fn.Type, fn.Body)
				}
			case *ast.FuncLit:
				checkMapRanges(pass, fn.Type, fn.Body)
			}
			return true
		})
	}
}

// checkMapRanges analyzes one function scope. Nested function literals
// are scanned as part of the loop body when they appear inside a map
// range (a closure appending to a captured slice is still
// order-dependent), but ranges inside nested literals are reported
// when the literal itself is visited.
func checkMapRanges(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	var ranges []*ast.RangeStmt
	walkScope(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok && isMapType(info, r.X) {
			ranges = append(ranges, r)
		}
		return true
	})
	for _, r := range ranges {
		checkOneMapRange(pass, ft, body, r)
	}
}

func checkOneMapRange(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt, r *ast.RangeStmt) {
	info := pass.Pkg.Info

	// Scan the loop body (including nested closures: they run inside
	// the iteration) for appends to identifiers and for direct output.
	appendTargets := make(map[types.Object]*ast.Ident)
	var emitPos token.Pos
	ast.Inspect(r.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			// A nested map range is reported on its own; do not blame
			// this loop for its body.
			if s != r && isMapType(info, s.X) {
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || len(s.Lhs) <= i {
					continue
				}
				if id, ok := appendTarget(info, s.Lhs[i], call); ok {
					appendTargets[objectOf(info, id)] = id
				}
			}
		case *ast.CallExpr:
			if emitPos == token.NoPos && isEmitCall(info, s) {
				emitPos = s.Pos()
			}
		}
		return true
	})

	if emitPos != token.NoPos {
		pass.Reportf(r.Pos(), "map iteration emits output inside the loop; map order is nondeterministic, so emitted order varies across runs")
	}

	for obj, id := range appendTargets {
		if obj == nil {
			continue
		}
		if !escapesFunction(info, ft, body, obj, id) {
			continue
		}
		if sortedAfter(info, body, obj, r.End()) {
			continue
		}
		pass.Reportf(r.Pos(), "map iteration appends to %q which escapes this function without a subsequent sort; returned order is nondeterministic", id.Name)
	}
}

// appendTarget matches `x = append(x, ...)` and returns x's ident.
func appendTarget(info *types.Info, lhs ast.Expr, call *ast.CallExpr) (*ast.Ident, bool) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return nil, false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return nil, false
	}
	if b, ok := info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return nil, false
	}
	if len(call.Args) == 0 {
		return nil, false
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok || objectOf(info, arg0) != objectOf(info, id) {
		return nil, false
	}
	return id, true
}

// isEmitCall reports whether call writes user-visible output: fmt
// printing or a Write* method on a builder, buffer, or writer.
func isEmitCall(info *types.Info, call *ast.CallExpr) bool {
	if path, name, ok := pkgFunc(info, call); ok {
		if path == "fmt" {
			switch name {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return true
			}
		}
		return false
	}
	if fn := methodCallee(info, call); fn != nil {
		recv := fn.Type().(*types.Signature).Recv().Type()
		if isWriterLike(recv) {
			switch fn.Name() {
			case "Write", "WriteString", "WriteByte", "WriteRune":
				return true
			}
		}
	}
	return false
}

func isWriterLike(t types.Type) bool {
	for _, name := range []string{"Builder", "Buffer"} {
		if namedNamed(t, "strings", name) || namedNamed(t, "bytes", name) {
			return true
		}
	}
	if n, ok := deref(t).(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File" {
			return true
		}
	}
	return false
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func namedNamed(t types.Type, pkg, name string) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkg && obj.Name() == name
}

// escapesFunction reports whether obj's slice leaves the function:
// returned by a return statement, declared as a named result, or
// passed to an emit call.
func escapesFunction(info *types.Info, ft *ast.FuncType, body *ast.BlockStmt, obj types.Object, id *ast.Ident) bool {
	if ft != nil && ft.Results != nil {
		for _, field := range ft.Results.List {
			for _, name := range field.Names {
				if info.Defs[name] == obj {
					return true
				}
			}
		}
	}
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if rid, ok := res.(*ast.Ident); ok && objectOf(info, rid) == obj {
					escapes = true
				}
			}
		case *ast.CallExpr:
			if !isEmitCall(info, s) {
				return true
			}
			for _, arg := range s.Args {
				if aid, ok := arg.(*ast.Ident); ok && objectOf(info, aid) == obj {
					escapes = true
				}
			}
		}
		return true
	})
	return escapes
}

// sortedAfter reports whether, after pos, obj is passed to a sorting
// call: any function of package sort, a function whose name contains
// "Sort"/"sort", or a Sort* method invoked on obj itself.
func sortedAfter(info *types.Info, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if !isSortCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			if aid, ok := arg.(*ast.Ident); ok && objectOf(info, aid) == obj {
				sorted = true
				return false
			}
		}
		// Method form: out.Sort().
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if rid, ok := sel.X.(*ast.Ident); ok && objectOf(info, rid) == obj {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	if path, _, ok := pkgFunc(info, call); ok {
		return path == "sort" || path == "slices"
	}
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "sort")
}
