package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"strings"
)

// The nondet-taint abstract domain.
//
// A value's taint is a pair (kinds, params):
//
//   - kinds is the set of nondeterminism sources that may have
//     influenced the value (or the order of its elements);
//   - params is the set of the *enclosing function's* parameters whose
//     taint would flow into the value — the symbolic half that turns
//     one intraprocedural analysis into a reusable function summary.
//
// Each kind bit carries one witness (the source position and the call
// chain it travelled), so a diagnostic at a sink can name the source
// even when it lives two call boundaries away in another file.
//
// The lattice is finite (both components are bitsets over fixed
// universes) and merge is set union, so every fixpoint loop in the
// walker terminates.

// kind is a bitset of nondeterminism source classes.
type kind uint8

const (
	kindMapOrder  kind = 1 << iota // map / sync.Map.Range iteration order
	kindSelect                     // select statement winner
	kindGoroutine                  // goroutine completion / channel arrival order
	kindRand                       // unseeded math/rand
	kindClock                      // wall-clock read
)

// orderKinds are the order-only taints: the *multiset* of values is
// deterministic, only their sequence is not, so sorting launders them.
// Rand and clock taint poison the values themselves; no sort helps.
const orderKinds = kindMapOrder | kindSelect | kindGoroutine

func (k kind) String() string {
	var parts []string
	for _, e := range [...]struct {
		bit  kind
		name string
	}{
		{kindMapOrder, "map iteration order"},
		{kindSelect, "select winner"},
		{kindGoroutine, "goroutine completion order"},
		{kindRand, "unseeded math/rand"},
		{kindClock, "wall-clock read"},
	} {
		if k&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " + ")
}

// witness records where one taint kind entered and the call chain it
// took toward the point being described.
type witness struct {
	kind kind
	pos  token.Pos // source position, for "source at file:line"
	src  string    // module-relative "file:line" of the source
	via  []string  // callee names crossed, source-side first
}

// tval is the abstract value: taint kinds plus symbolic parameter
// dependence. wits holds at most one witness per set kind bit.
type tval struct {
	kinds  kind
	params uint64
	wits   []*witness
}

func (t tval) isZero() bool { return t.kinds == 0 && t.params == 0 }

// merge returns the join of two taints, keeping the first witness seen
// for each kind (walk order is deterministic, so so is the witness).
func (t tval) merge(o tval) tval {
	out := tval{kinds: t.kinds | o.kinds, params: t.params | o.params}
	out.wits = append(out.wits, t.wits...)
	for _, w := range o.wits {
		if !out.hasWitness(w.kind) {
			out.wits = append(out.wits, w)
		}
	}
	return out
}

func (t tval) hasWitness(k kind) bool {
	for _, w := range t.wits {
		if w.kind&k != 0 {
			return true
		}
	}
	return false
}

// dropOrder removes the order-class taints — the sort sanitizer.
func (t tval) dropOrder() tval {
	out := tval{kinds: t.kinds &^ orderKinds, params: t.params}
	for _, w := range t.wits {
		if w.kind&out.kinds != 0 {
			out.wits = append(out.wits, w)
		}
	}
	return out
}

// viaCall returns t as seen through a call to callee: witnesses gain a
// link in their chain. Parameter bits are translated by the caller.
func (t tval) viaCall(callee string) tval {
	if t.kinds == 0 {
		return t
	}
	out := tval{kinds: t.kinds, params: t.params}
	for _, w := range t.wits {
		nw := &witness{kind: w.kind, pos: w.pos, src: w.src, via: append(append([]string(nil), w.via...), callee)}
		out.wits = append(out.wits, nw)
	}
	return out
}

// witnessString renders the strongest witness for diagnostics:
// "map iteration order (source at internal/x/y.go:12, via a → b)".
func (t tval) witnessString() string {
	if len(t.wits) == 0 {
		return t.kinds.String()
	}
	w := t.wits[0]
	s := fmt.Sprintf("%s (source at %s", w.kind.String(), w.src)
	if len(w.via) > 0 {
		s += ", via " + strings.Join(w.via, " → ")
	}
	return s + ")"
}

// sinkFlow records that a function forwards one of its parameters into
// a sink it contains (directly or transitively): callers passing a
// tainted argument at that position inherit the finding.
type sinkFlow struct {
	param int      // parameter index (receiver is 0 when present)
	sink  string   // sink description, e.g. `RoundStats field "Received"`
	via   []string // callee chain from this function down to the sink
}

// summary is the interprocedural contract of one function, computed
// bottom-up over the call graph's SCC condensation.
type summary struct {
	// results[i] is the taint of result i: concrete kinds generated
	// inside the callee, plus the set of the callee's own parameters
	// (params bits) whose taint reaches the result.
	results []tval

	// sinks lists parameters that reach a nondeterminism sink inside
	// the function; used to report call sites that pass tainted values
	// down into a sink.
	sinks []sinkFlow

	// sanitizes marks parameters the function provably sorts in place
	// (passed to sort.*/slices.Sort* or to another sanitizing
	// function), so rel.SortFacts-style helpers launder callers'
	// arguments just like a direct sort call.
	sanitizes uint64

	// havocRecursion marks members of recursive cycles: calls within
	// the cycle were treated as black boxes (no flows), a documented
	// source of false negatives, never false positives.
	havocRecursion bool
}

// relPos renders pos module-relative, "internal/mpc/mpc.go:42".
func relPos(fset *token.FileSet, root string, pos token.Pos) string {
	p := fset.Position(pos)
	file := p.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}
