package gym

import (
	"fmt"
	"testing"

	"mpclogic/internal/cq"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// optsFor builds the cluster options selecting a transport for a
// p-server deployment. The local variant is the pinned in-process
// reference; the tcp variant opens real loopback sockets and closes
// them when the test ends.
type optsFor func(t *testing.T, p int) []mpc.Option

func localOpts(t *testing.T, p int) []mpc.Option { return nil }

func tcpOpts(t *testing.T, p int) []mpc.Option {
	t.Helper()
	tr, err := mpc.NewTCPTransport(p)
	if err != nil {
		t.Fatalf("tcp transport(%d): %v", p, err)
	}
	t.Cleanup(func() {
		if err := tr.Close(); err != nil {
			t.Errorf("closing tcp transport: %v", err)
		}
	})
	return []mpc.Option{mpc.WithTransport(tr)}
}

// TestTransportEquivalence is the tentpole acceptance gate: every
// program in the matrix — one-round HyperCube triangle, cascade
// triangle, distributed Yannakakis, GYM, and the incremental ΔTC
// program — executed over real TCP sockets must be indistinguishable
// from the in-process simulator: byte-identical output, per-server
// state, and logical trace, with MaxLoad/TotalComm/DeltaComm
// unchanged. The transport is allowed to change HOW bytes move, never
// WHAT the model computes or charges.
func TestTransportEquivalence(t *testing.T) {
	d := rel.NewDict()
	triQ := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	chainQ := cq.MustParse(d, "H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
	triInst := workload.TriangleSkewFree(30)
	chainInst, _ := workload.AcyclicChain(3, 80, 0.4, 2)
	graph := workload.RandomGraph(20, 32, 9)

	for _, p := range []int{2, 4, 8} {
		p := p
		programs := []struct {
			name string
			run  func(t *testing.T, mk optsFor) *mpc.Cluster
		}{
			{"hypercube-triangle", func(t *testing.T, mk optsFor) *mpc.Cluster {
				g, err := hypercube.NewOptimalGrid(triQ, p, 17)
				if err != nil {
					t.Fatal(err)
				}
				c := mpc.NewCluster(g.P(), mk(t, g.P())...)
				c.LoadRoundRobin(triInst)
				if err := c.Run(hypercube.HyperCubeRound(g)); err != nil {
					t.Fatal(err)
				}
				return c
			}},
			{"cascade-triangle", func(t *testing.T, mk optsFor) *mpc.Cluster {
				c, _, err := CascadeTriangle(p, triInst, 11, mk(t, p)...)
				if err != nil {
					t.Fatal(err)
				}
				return c
			}},
			{"yannakakis-chain", func(t *testing.T, mk optsFor) *mpc.Cluster {
				c, _, err := DistributedYannakakis(chainQ, p, chainInst, 42, mk(t, p)...)
				if err != nil {
					t.Fatal(err)
				}
				return c
			}},
			{"gym-triangle", func(t *testing.T, mk optsFor) *mpc.Cluster {
				c, _, _, err := GYM(triQ, p, triInst, 3, mk(t, p)...)
				if err != nil {
					t.Fatal(err)
				}
				return c
			}},
			{"delta-tc", func(t *testing.T, mk optsFor) *mpc.Cluster {
				return runSchedule(t, DeltaTCProgram(p, 11), p,
					schedule{"three-chunks", chunkFacts(graph.Facts(), 3)}, mk(t, p)...)
			}},
		}
		for _, prog := range programs {
			prog := prog
			t.Run(fmt.Sprintf("%s/p=%d", prog.name, p), func(t *testing.T) {
				ref := prog.run(t, localOpts)
				got := prog.run(t, tcpOpts)

				if ref.P() != got.P() {
					t.Fatalf("cluster sizes diverged: local %d, tcp %d", ref.P(), got.P())
				}
				if g, w := got.Output().String(), ref.Output().String(); g != w {
					t.Errorf("tcp output diverged from local:\n got %s\nwant %s", g, w)
				}
				for i := 0; i < ref.P(); i++ {
					if !got.Server(i).Equal(ref.Server(i)) {
						t.Errorf("server %d state diverged between transports", i)
					}
				}
				if g, w := got.LogicalTrace(), ref.LogicalTrace(); g != w {
					t.Errorf("tcp logical trace diverged from local:\n got %q\nwant %q", g, w)
				}
				if got.MaxLoad() != ref.MaxLoad() || got.TotalComm() != ref.TotalComm() ||
					got.DeltaCommTotal() != ref.DeltaCommTotal() || got.Rounds() != ref.Rounds() {
					t.Errorf("tcp cost metrics diverged: maxload %d/%d, total %d/%d, delta %d/%d, rounds %d/%d",
						got.MaxLoad(), ref.MaxLoad(), got.TotalComm(), ref.TotalComm(),
						got.DeltaCommTotal(), ref.DeltaCommTotal(), got.Rounds(), ref.Rounds())
				}
			})
		}
	}
}

// TestChaosOverTCP runs the full standard fault matrix with the TCP
// transport installed: the fault-tolerance layer arms the transport's
// frame-layer havoc, so every planned drop really becomes an aborted
// connection on a socket (a truncated frame or a mid-payload RST,
// followed by a retransmission), every planned duplication an extra
// identical frame the receiver must dedup, and every planned
// corruption a bit-flipped frame the receiver's checksum rejects. The
// fault-transparency invariant must survive the wire: output and
// logical trace byte-identical to the fault-free local reference for
// all thirteen plans, the rack-scoped and corrupt-only ones included.
func TestChaosOverTCP(t *testing.T) {
	triInst := workload.TriangleSkewFree(40)
	const p = 6

	base, baseOut, err := CascadeTriangle(p, triInst, 11)
	if err != nil {
		t.Fatal(err)
	}
	wantOut := baseOut.String()
	wantTrace := base.LogicalTrace()

	matrix := mpc.StandardFaultMatrix(2026, 12, p)
	if testing.Short() {
		matrix = matrix[:3]
	}
	var tot mpc.RecoveryStats
	for _, np := range matrix {
		np := np
		t.Run(np.Name, func(t *testing.T) {
			opts := append(tcpOpts(t, p), mpc.WithFaultPlan(np.Plan))
			c, out, err := CascadeTriangle(p, triInst, 11, opts...)
			if err != nil {
				t.Fatalf("cascade under %s over tcp: %v", np.Name, err)
			}
			if got := out.String(); got != wantOut {
				t.Errorf("output diverged under %s over tcp", np.Name)
			}
			if got := c.LogicalTrace(); got != wantTrace {
				t.Errorf("logical trace diverged under %s over tcp:\n got %q\nwant %q", np.Name, got, wantTrace)
			}
			if c.MaxLoad() != base.MaxLoad() || c.TotalComm() != base.TotalComm() || c.Rounds() != base.Rounds() {
				t.Errorf("domain metrics diverged under %s over tcp", np.Name)
			}
			r := c.RecoveryTotals()
			tot.Retries += r.Retries
			tot.RecoveredServers += r.RecoveredServers
			tot.ReplicaComm += r.ReplicaComm
			tot.SpeculativeWins += r.SpeculativeWins
		})
	}
	// The chaos must not be vacuous: the matrix has to have dropped,
	// duplicated, and corrupted real transfers for the frame-layer
	// injection to matter.
	if !testing.Short() && (tot.Retries == 0 || tot.ReplicaComm == 0) {
		t.Errorf("matrix injected no wire faults (totals %+v)", tot)
	}
}
