package gym

import (
	"mpclogic/internal/cq"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
)

// This file implements the triangle-specific multi-round algorithms
// the paper uses as running examples: the two-round cascade of
// Example 3.1(2) and a two-round skew-resilient algorithm in the
// spirit of Beame-Koutris-Suciu (Section 3.2): under skew a single
// round is provably stuck at load m/√p, while two rounds recover the
// skew-free exponent by treating each heavy hitter's residual query —
// which is acyclic — with semijoins instead of a cartesian join.

// CascadeTriangleProgram builds the two cascade rounds as pure data
// (a function of p and seed only), so executions are resumable.
func CascadeTriangleProgram(p int, seed uint64) []mpc.Round {
	round1 := mpc.Round{
		Name: "cascade-1 R⋈S",
		Keep: func(f rel.Fact) bool { return f.Rel == "T" },
		Route: mpc.ByRelation(map[string]mpc.Router{
			"R": mpc.HashOn(p, []int{1}, seed),
			"S": mpc.HashOn(p, []int{0}, seed),
		}),
		Compute: func(_ int, local *rel.Instance) *rel.Instance {
			out := local.Filter(func(f rel.Fact) bool { return f.Rel == "T" })
			r := local.Relation("R")
			s := local.Relation("S")
			if r == nil || s == nil {
				return out
			}
			k := rel.NewRelation("K", 3)
			joined := rel.HashJoin("⋈", r, s, []int{1}, []int{0})
			joined.Each(func(t rel.Tuple) bool {
				k.Add(rel.Tuple{t[0], t[1], t[3]}) // (x, y, z)
				return true
			})
			out.SetRelation(k)
			return out
		},
	}
	round2 := mpc.Round{
		Name: "cascade-2 K⋈T",
		Route: mpc.ByRelation(map[string]mpc.Router{
			"K": mpc.HashOn(p, []int{0, 2}, seed^0x5bd1e995), // (x, z)
			"T": mpc.HashOn(p, []int{1, 0}, seed^0x5bd1e995), // T(z,x) keyed (x, z)
		}),
		Compute: func(_ int, local *rel.Instance) *rel.Instance {
			out := rel.NewInstance()
			k := local.Relation("K")
			tt := local.Relation("T")
			h := rel.NewRelation("H", 3)
			out.SetRelation(h)
			if k == nil || tt == nil {
				return out
			}
			joined := rel.HashJoin("⋈", k, tt, []int{2, 0}, []int{0, 1})
			joined.Each(func(t rel.Tuple) bool {
				h.Add(rel.Tuple{t[0], t[1], t[2]})
				return true
			})
			return out
		},
	}
	return []mpc.Round{round1, round2}
}

// CascadeTriangle computes H(x,y,z) :- R(x,y), S(y,z), T(z,x) in two
// rounds on p servers: round 1 repartition-joins R and S on y into an
// intermediate K; round 2 repartition-joins K with T on (x,z). The
// intermediate K can be much larger than the output — the trade-off
// versus the one-round HyperCube that the paper discusses. Options
// configure the cluster; on error the partially-executed cluster is
// still returned so callers can checkpoint and resume it.
func CascadeTriangle(p int, inst *rel.Instance, seed uint64, opts ...mpc.Option) (*mpc.Cluster, *rel.Instance, error) {
	c := mpc.NewCluster(p, opts...)
	c.LoadRoundRobin(inst)
	if err := c.RunResumable(CascadeTriangleProgram(p, seed)...); err != nil {
		return c, nil, err
	}
	return c, c.Output(), nil
}

// The skew-aware two-round algorithm (SkewTriangleProgram /
// SkewTriangleTwoRound) computes the triangle query in two rounds with
// heavy-hitter handling. Light y-values travel through a HyperCube
// grid and are finished in round 1. For heavy y-values b the residual
// query R(a,b), S(b,c), T(c,a) is acyclic in (a,c), so instead of a
// cartesian join the algorithm semijoins T against the heavy R-side
// in round 1 (hashing on a) and against the heavy S-side in round 2
// (hashing on c) — load O(m/p) per heavy round instead of the m/√p a
// single-round cartesian strategy needs.
//
// SkewTriangleProgram builds the two skew-aware rounds as pure data
// (a function of p, the heavy-hitter set, seed, and the grid router
// only), so executions are resumable.
func SkewTriangleProgram(p int, heavy rel.ValueSet, seed uint64, grid mpc.Router) []mpc.Round {
	q := triangleCQ()

	isHeavyR := func(f rel.Fact) bool { return f.Rel == "R" && heavy.Contains(f.Tuple[1]) }
	isHeavyS := func(f rel.Fact) bool { return f.Rel == "S" && heavy.Contains(f.Tuple[0]) }

	hashA := mpc.HashOn(p, []int{1}, seed^0x1234)  // T(c,a) by a
	hashRA := mpc.HashOn(p, []int{0}, seed^0x1234) // R(a,b) by a

	round1 := mpc.Round{
		Name: "skew-1 light grid + T⋉R_heavy",
		// Heavy S waits for round 2 at its current server.
		Keep: isHeavyS,
		Route: mpc.RouterFunc(func(f rel.Fact) []int {
			switch f.Rel {
			case "R":
				if isHeavyR(f) {
					return hashRA.Route(f)
				}
				return grid.Route(f)
			case "S":
				return grid.Route(f) // light only; heavy kept above
			case "T":
				// T serves both the light grid and the heavy path.
				return append(grid.Route(f), hashA.Route(f)...)
			}
			return nil
		}),
		Compute: func(_ int, local *rel.Instance) *rel.Instance {
			out := local.Filter(func(f rel.Fact) bool { return f.Rel == "S" && heavy.Contains(f.Tuple[0]) })
			// Light triangles: evaluate the query, drop heavy-y rows.
			tri := rel.NewRelation("H", 3)
			cq.Evaluate(q, local).Each(func(t rel.Tuple) bool {
				if !heavy.Contains(t[1]) {
					tri.Add(t)
				}
				return true
			})
			out.SetRelation(tri)
			// Heavy path: W(a, b, c) for T(c,a) and heavy R(a,b).
			r := local.Relation("R")
			tt := local.Relation("T")
			if r != nil && tt != nil {
				w := rel.NewRelation("W", 3)
				heavyR := rel.Select(r, func(t rel.Tuple) bool { return heavy.Contains(t[1]) })
				joined := rel.HashJoin("⋈", heavyR, tt, []int{0}, []int{1})
				joined.Each(func(t rel.Tuple) bool {
					w.Add(rel.Tuple{t[0], t[1], t[2]}) // (a, b, c)
					return true
				})
				out.SetRelation(w)
			}
			return out
		},
	}

	hashC := mpc.HashOn(p, []int{2}, seed^0x9999)  // W(a,b,c) by c
	hashSC := mpc.HashOn(p, []int{1}, seed^0x9999) // S(b,c) by c

	round2 := mpc.Round{
		Name: "skew-2 W⋉S_heavy",
		Keep: func(f rel.Fact) bool { return f.Rel == "H" },
		Route: mpc.RouterFunc(func(f rel.Fact) []int {
			switch f.Rel {
			case "W":
				return hashC.Route(f)
			case "S":
				return hashSC.Route(f)
			}
			return nil
		}),
		Compute: func(_ int, local *rel.Instance) *rel.Instance {
			out := local.Filter(func(f rel.Fact) bool { return f.Rel == "H" })
			w := local.Relation("W")
			s := local.Relation("S")
			if w == nil || s == nil {
				return out
			}
			h := out.EnsureRelation("H", 3)
			// W(a,b,c) ⋈ S(b,c): match on (b, c).
			joined := rel.HashJoin("⋈", w, s, []int{1, 2}, []int{0, 1})
			joined.Each(func(t rel.Tuple) bool {
				h.Add(rel.Tuple{t[0], t[1], t[2]})
				return true
			})
			return out
		},
	}
	return []mpc.Round{round1, round2}
}

// SkewTriangleTwoRound runs SkewTriangleProgram on a fresh cluster.
// heavy is the set of y-values to treat as heavy hitters (e.g. from
// workload.HeavyHitters with threshold m/p^{1/3}). Options configure
// the cluster; on error the partially-executed cluster is still
// returned so callers can checkpoint and resume it.
func SkewTriangleTwoRound(p int, inst *rel.Instance, heavy rel.ValueSet, seed uint64, grid mpc.Router, opts ...mpc.Option) (*mpc.Cluster, *rel.Instance, error) {
	c := mpc.NewCluster(p, opts...)
	c.LoadRoundRobin(inst)
	if err := c.RunResumable(SkewTriangleProgram(p, heavy, seed, grid)...); err != nil {
		return c, nil, err
	}
	return c, c.Output(), nil
}

func triangleCQ() *cq.CQ {
	return &cq.CQ{
		Head: cq.NewAtom("H", cq.V("x"), cq.V("y"), cq.V("z")),
		Body: []cq.Atom{
			cq.NewAtom("R", cq.V("x"), cq.V("y")),
			cq.NewAtom("S", cq.V("y"), cq.V("z")),
			cq.NewAtom("T", cq.V("z"), cq.V("x")),
		},
	}
}
