package gym

import (
	"fmt"
	"math/rand"
	"testing"

	"mpclogic/internal/cq"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// Fault-transparency invariant (the headline property of the
// fault-tolerance layer): for every fault plan in the seeded standard
// matrix, a multi-round algorithm's output AND its logical per-round
// metrics (received vector, max load, total communication, round
// count) are byte-identical to the fault-free run — recovery is
// visible only in the recovery metrics. Checked across the matrix for
// all four multi-round algorithms: cascade triangle, distributed
// Yannakakis, GYM, and the skew-aware two-round triangle.
func TestFaultTransparencyMatrix(t *testing.T) {
	d := rel.NewDict()
	chainQ := cq.MustParse(d, "H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
	chainInst, _ := workload.AcyclicChain(3, 100, 0.4, 2)
	triQ := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	triInst := workload.TriangleSkewFree(40)
	skewInst := workload.TriangleSkewed(150, 0.3)
	heavy := rel.NewValueSet(workload.HeavyHitters(skewInst, "R", 1, 15)...)
	grid, err := hypercube.NewOptimalGrid(triQ, 8, 17)
	if err != nil {
		t.Fatal(err)
	}

	algos := []struct {
		name string
		p    int
		run  func(opts ...mpc.Option) (*mpc.Cluster, *rel.Instance, error)
	}{
		{"cascade-triangle", 6, func(opts ...mpc.Option) (*mpc.Cluster, *rel.Instance, error) {
			return CascadeTriangle(6, triInst, 11, opts...)
		}},
		{"yannakakis-chain", 6, func(opts ...mpc.Option) (*mpc.Cluster, *rel.Instance, error) {
			return DistributedYannakakis(chainQ, 6, chainInst, 42, opts...)
		}},
		{"gym-triangle", 6, func(opts ...mpc.Option) (*mpc.Cluster, *rel.Instance, error) {
			c, out, _, err := GYM(triQ, 6, triInst, 3, opts...)
			return c, out, err
		}},
		{"skew-two-round", 8, func(opts ...mpc.Option) (*mpc.Cluster, *rel.Instance, error) {
			return SkewTriangleTwoRound(8, skewInst, heavy, 17, grid, opts...)
		}},
	}

	for _, a := range algos {
		a := a
		t.Run(a.name, func(t *testing.T) {
			base, baseOut, err := a.run()
			if err != nil {
				t.Fatal(err)
			}
			wantOut := baseOut.String()
			wantTrace := base.LogicalTrace()

			matrix := mpc.StandardFaultMatrix(2026, 12, a.p)
			if testing.Short() {
				matrix = matrix[:3]
			}
			var tot mpc.RecoveryStats
			for _, np := range matrix {
				c, out, err := a.run(mpc.WithFaultPlan(np.Plan))
				if err != nil {
					t.Fatalf("%s under %s: %v", a.name, np.Name, err)
				}
				if got := out.String(); got != wantOut {
					t.Errorf("%s under %s: output diverged", a.name, np.Name)
				}
				if got := c.LogicalTrace(); got != wantTrace {
					t.Errorf("%s under %s: logical trace diverged:\n got %q\nwant %q", a.name, np.Name, got, wantTrace)
				}
				if c.MaxLoad() != base.MaxLoad() || c.TotalComm() != base.TotalComm() || c.Rounds() != base.Rounds() {
					t.Errorf("%s under %s: domain metrics diverged", a.name, np.Name)
				}
				r := c.RecoveryTotals()
				tot.Retries += r.Retries
				tot.RecoveredServers += r.RecoveredServers
				tot.ReplicaComm += r.ReplicaComm
				tot.SpeculativeWins += r.SpeculativeWins
			}
			// Transparency must not be vacuous: the matrix has to have
			// actually crashed servers and retried transfers.
			if !testing.Short() && (tot.Retries == 0 || tot.RecoveredServers == 0) {
				t.Errorf("%s: matrix injected no recoverable faults (totals %+v)", a.name, tot)
			}
		})
	}
}

// A run that exhausts its retry budget mid-program fails atomically at
// round granularity; re-running the same program on the same cluster
// after removing the fault plan resumes with the failed round instead
// of restarting — via the public RunYannakakisRounds entry point.
func TestRunYannakakisRoundsResumesAfterFailure(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
	inst, _ := workload.AcyclicChain(3, 100, 0.4, 2)
	want := cq.Output(q, inst)

	// Kill round 5 (a top-down semijoin) beyond the retry budget.
	plan := mpc.NewFaultPlan().AddCrash(5, 1, mpc.DefaultRetryBudget+1)
	c := mpc.NewCluster(8, mpc.WithFaultPlan(plan))
	c.LoadRoundRobin(inst)
	if err := RunYannakakisRounds(c, q, 42); err == nil {
		t.Fatal("budget-exceeding crash did not fail the run")
	}
	if c.Rounds() != 5 {
		t.Fatalf("failed run completed %d rounds, want 5 (atomic failure)", c.Rounds())
	}

	c.SetFaultPlan(nil)
	if err := RunYannakakisRounds(c, q, 42); err != nil {
		t.Fatal(err)
	}
	if c.Rounds() != 8 {
		t.Errorf("resumed run has %d rounds, want 8", c.Rounds())
	}
	if !c.Output().Filter(func(f rel.Fact) bool { return f.Rel == q.Head.Rel }).Equal(want) {
		t.Errorf("resumed output wrong")
	}
}

// Checkpoint/Restore across the GYM phase boundary: a run killed
// mid-Yannakakis is restored from its checkpoint onto a fresh cluster
// and resumed via the rebuilt program, reproducing the fault-free
// output and logical trace.
func TestGYMRestoreFromCheckpoint(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	inst := workload.TriangleSkewFree(40)

	free, want, _, err := GYM(q, 6, inst, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Kill round 4 — inside the Yannakakis phase, past the bag rounds.
	plan := mpc.NewFaultPlan().AddCrash(4, 0, mpc.DefaultRetryBudget+1)
	c, _, _, err := GYM(q, 6, inst, 3, mpc.WithFaultPlan(plan))
	if err == nil {
		t.Fatal("budget-exceeding crash did not fail the run")
	}
	if c == nil {
		t.Fatal("failed GYM did not return the partial cluster")
	}
	ck := c.Checkpoint()
	if ck == nil || ck.Rounds() != 4 {
		t.Fatalf("checkpoint covers %d rounds, want 4", ck.Rounds())
	}

	prog, _, err := GYMProgram(q, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	restored := mpc.Restore(ck)
	if err := restored.RunResumable(prog...); err != nil {
		t.Fatal(err)
	}
	if got := restored.Output().String(); got != want.String() {
		t.Errorf("restored output diverged from fault-free run")
	}
	if got := restored.LogicalTrace(); got != free.LogicalTrace() {
		t.Errorf("restored logical trace diverged:\n got %q\nwant %q", got, free.LogicalTrace())
	}
}

// randomProgram builds a deterministic multi-round program from the
// seeded source: each round picks a routing discipline (hash shuffle
// on random columns, broadcast, or per-relation dispatch that drops
// unlisted relations), sometimes keeps one relation local, and
// sometimes runs a pure join computation on top. The programs are not
// meaningful queries — they exist to exercise every routing/keep/
// compute combination the checkpoint layer must round-trip.
func randomProgram(r *rand.Rand, d *rel.Dict, p, rounds int) []mpc.Round {
	joinQ := cq.MustParse(d, "H(x, z) :- R(x, y), S(y, z)")
	rels := []string{"R", "S", "T"}
	prog := make([]mpc.Round, rounds)
	for i := range prog {
		round := mpc.Round{Name: fmt.Sprintf("rand-%d", i)}
		switch r.Intn(3) {
		case 0:
			cols := [][]int{{0}, {1}, {0, 1}}[r.Intn(3)]
			round.Route = mpc.HashOn(p, cols, r.Uint64())
		case 1:
			round.Route = mpc.Broadcast(p)
		default:
			routes := map[string]mpc.Router{}
			for _, name := range rels {
				if r.Intn(2) == 0 {
					routes[name] = mpc.HashOn(p, []int{r.Intn(2)}, r.Uint64())
				}
			}
			round.Route = mpc.ByRelation(routes)
		}
		if r.Intn(3) == 0 {
			kept := rels[r.Intn(len(rels))]
			round.Keep = func(f rel.Fact) bool { return f.Rel == kept }
		}
		if r.Intn(2) == 0 {
			round.Compute = func(_ int, local *rel.Instance) *rel.Instance {
				out := local.Clone()
				out.AddAll(cq.Output(joinQ, local))
				return out
			}
		}
		prog[i] = round
	}
	return prog
}

func randomInstance(r *rand.Rand) *rel.Instance {
	inst := rel.NewInstance()
	for _, name := range []string{"R", "S", "T"} {
		for i := 0; i < 12+r.Intn(12); i++ {
			inst.Add(rel.NewFact(name, rel.Value(r.Intn(12)), rel.Value(r.Intn(12))))
		}
	}
	return inst
}

// The property the recovery stack promises, quantified over random
// programs instead of the three hand-built ones: for ANY multi-round
// program, interrupting it after ANY prefix of rounds, checkpointing,
// restoring onto a fresh cluster, and resuming yields the exact
// output and logical trace of the uninterrupted run — even if the
// original cluster is mutated after the checkpoint is taken (the
// StableStore snapshot must isolate the restore from its source).
func TestCheckpointRestoreRoundTripProperty(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(1000 + seed)))
			d := rel.NewDict()
			p := 2 + r.Intn(4)
			rounds := 3 + r.Intn(4)
			prog := randomProgram(r, d, p, rounds)
			inst := randomInstance(r)

			base := mpc.NewCluster(p, mpc.WithCheckpoints())
			base.LoadRoundRobin(inst)
			if err := base.Run(prog...); err != nil {
				t.Fatal(err)
			}
			wantOut := base.Output().String()
			wantTrace := base.LogicalTrace()

			// Interrupt at the empty prefix, the full program, and a
			// random interior round.
			prefixes := []int{0, rounds, 1 + r.Intn(rounds)}
			for _, k := range prefixes {
				c := mpc.NewCluster(p, mpc.WithCheckpoints())
				c.LoadRoundRobin(inst)
				if err := c.Run(prog[:k]...); err != nil {
					t.Fatal(err)
				}
				ck := c.Checkpoint()
				if ck == nil || ck.Rounds() != k {
					t.Fatalf("prefix %d: checkpoint covers %d rounds", k, ck.Rounds())
				}
				// Poison the source cluster after the snapshot: the
				// restore below must not see this.
				c.LoadAt(0, rel.MustInstance(d, "R(999, 999)"))

				restored := mpc.Restore(ck)
				if err := restored.RunResumable(prog...); err != nil {
					t.Fatalf("prefix %d: resume failed: %v", k, err)
				}
				if got := restored.Output().String(); got != wantOut {
					t.Errorf("prefix %d: output diverged from uninterrupted run", k)
				}
				if got := restored.LogicalTrace(); got != wantTrace {
					t.Errorf("prefix %d: logical trace diverged:\n got %q\nwant %q", k, got, wantTrace)
				}
			}
		})
	}
}

// Program builders must be pure data: rebuilding with the same
// arguments yields the same round names in the same order (the
// property RunResumable's prefix check relies on).
func TestProgramsAreReproducible(t *testing.T) {
	d := rel.NewDict()
	tri := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	chain := cq.MustParse(d, "H(a, c) :- R0(a, b), R1(b, c)")

	names := func(prog []mpc.Round) []string {
		out := make([]string, len(prog))
		for i, r := range prog {
			out[i] = r.Name
		}
		return out
	}
	eq := func(a, b []string) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	y1, err := YannakakisProgram(chain, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	y2, _ := YannakakisProgram(chain, 8, 42)
	if !eq(names(y1), names(y2)) {
		t.Errorf("YannakakisProgram not reproducible: %v vs %v", names(y1), names(y2))
	}

	g1, _, err := GYMProgram(tri, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, _ := GYMProgram(tri, 8, 3)
	if !eq(names(g1), names(g2)) {
		t.Errorf("GYMProgram not reproducible: %v vs %v", names(g1), names(g2))
	}

	if !eq(names(CascadeTriangleProgram(8, 11)), names(CascadeTriangleProgram(8, 11))) {
		t.Errorf("CascadeTriangleProgram not reproducible")
	}
}
