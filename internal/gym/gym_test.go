package gym

import (
	"testing"

	"mpclogic/internal/cq"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

func TestYannakakisMatchesDirect(t *testing.T) {
	d := rel.NewDict()
	queries := []string{
		"H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)",
		"H(a) :- R0(a, b), R1(b, c)",
		"H(b) :- R0(a, b)",
	}
	inst, _ := workload.AcyclicChain(3, 120, 0.3, 5)
	for _, src := range queries {
		q := cq.MustParse(d, src)
		want := cq.Evaluate(q, inst)
		got, st, err := Yannakakis(q, inst)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: yannakakis %d facts, direct %d", src, got.Len(), want.Len())
		}
		if st.Semijoins == 0 && len(q.Body) > 1 {
			t.Errorf("%s: no semijoins recorded", src)
		}
	}
}

func TestYannakakisRejectsCyclic(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	if _, _, err := Yannakakis(q, rel.NewInstance()); err == nil {
		t.Errorf("cyclic query accepted by Yannakakis")
	}
}

// The headline property: on a dangling-heavy workload, Yannakakis'
// intermediates stay at output scale while the cascade blows up.
func TestYannakakisIntermediatesBounded(t *testing.T) {
	d := rel.NewDict()
	// Hub-shaped data: R0 fans into a hub, R1 fans out of it, and R2
	// keeps only a few endpoints. The cascade materializes the full
	// R0⋈R1 fan product (100×100); Yannakakis' semijoins kill the
	// dangling fan-out before joining.
	q := cq.MustParse(d, "H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
	inst := rel.NewInstance()
	hub := rel.Value(100000)
	for i := 0; i < 100; i++ {
		inst.Add(rel.NewFact("R0", rel.Value(i), hub))
		inst.Add(rel.NewFact("R1", hub, rel.Value(1000+i)))
	}
	for j := 0; j < 5; j++ {
		inst.Add(rel.NewFact("R2", rel.Value(1000+j), rel.Value(2000+j)))
	}
	outY, stY, err := Yannakakis(q, inst)
	if err != nil {
		t.Fatal(err)
	}
	outC, stC, err := CascadeJoin(q, inst)
	if err != nil {
		t.Fatal(err)
	}
	if !outY.Equal(outC) {
		t.Fatalf("cascade and yannakakis disagree")
	}
	if stY.MaxIntermediate > 2*outY.Len()+1 {
		t.Errorf("yannakakis intermediate %d exceeds ~output %d", stY.MaxIntermediate, outY.Len())
	}
	if stC.MaxIntermediate <= stY.MaxIntermediate {
		t.Errorf("cascade intermediate %d not larger than yannakakis %d on dangling data",
			stC.MaxIntermediate, stY.MaxIntermediate)
	}
}

func TestDecomposeAcyclicTrivial(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(a, c) :- R0(a, b), R1(b, c)")
	dec, err := Decompose(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Bags) != 2 || dec.Width() != 1 {
		t.Errorf("acyclic decomposition bags = %v", dec.Bags)
	}
}

func TestDecomposeTriangle(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	dec, err := Decompose(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Bags) != 2 {
		t.Fatalf("triangle bags = %v, want 2", dec.Bags)
	}
	if dec.Width() != 2 {
		t.Errorf("width = %d, want 2", dec.Width())
	}
	if err := dec.Tree.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDistributedYannakakis(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(a, dd) :- R0(a, b), R1(b, c), R2(c, dd)")
	inst, _ := workload.AcyclicChain(3, 150, 0.4, 2)
	want := cq.Output(q, inst)
	c, got, err := DistributedYannakakis(q, 8, inst, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("distributed yannakakis wrong: %d vs %d facts", got.Len(), want.Len())
	}
	// 1 materialize + 2 semijoin↑ + 2 semijoin↓ + 2 join + 1 project.
	if c.Rounds() != 8 {
		t.Errorf("rounds = %d, want 8", c.Rounds())
	}
}

func TestDistributedYannakakisDisconnected(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y) :- A(x), B(y)")
	inst := rel.MustInstance(d, "A(p)", "A(q)", "B(r)")
	want := cq.Output(q, inst)
	_, got, err := DistributedYannakakis(q, 4, inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("cross product wrong: got %v want %v", got.StringWith(d), want.StringWith(d))
	}
}

func TestDistributedYannakakisEmptyInput(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(a, c) :- R0(a, b), R1(b, c)")
	_, got, err := DistributedYannakakis(q, 4, rel.NewInstance(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("empty input gave %d facts", got.Len())
	}
}

func TestGYMTriangle(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	inst := workload.TriangleSkewFree(80)
	inst.Add(rel.NewFact("R", 1, 2)) // noise
	want := cq.Output(q, inst)
	c, got, dec, err := GYM(q, 16, inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("GYM triangle wrong: %d vs %d facts", got.Len(), want.Len())
	}
	if len(dec.Bags) != 2 {
		t.Errorf("unexpected decomposition: %v", dec.Bags)
	}
	if c.Rounds() < 4 {
		t.Errorf("suspiciously few rounds: %d", c.Rounds())
	}
}

func TestGYMAcyclicEqualsYannakakis(t *testing.T) {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(a, c) :- R0(a, b), R1(b, c)")
	inst, _ := workload.AcyclicChain(2, 100, 0.2, 4)
	want := cq.Output(q, inst)
	_, got, _, err := GYM(q, 8, inst, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("GYM on acyclic query wrong")
	}
}

func TestCascadeTriangle(t *testing.T) {
	inst := workload.TriangleSkewFree(60)
	inst.Add(rel.NewFact("R", 5, 6))
	inst.Add(rel.NewFact("S", 6, 7))
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	want := cq.Output(q, inst)
	c, got, err := CascadeTriangle(8, inst, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Filter(func(f rel.Fact) bool { return f.Rel == "H" }).Equal(want) {
		t.Errorf("cascade triangle wrong")
	}
	if c.Rounds() != 2 {
		t.Errorf("rounds = %d, want 2", c.Rounds())
	}
}

func TestSkewTriangleTwoRound(t *testing.T) {
	m := 300
	inst := workload.TriangleSkewed(m, 0.3)
	heavy := rel.NewValueSet(workload.HeavyHitters(inst, "R", 1, m/10)...)
	if len(heavy) == 0 {
		t.Fatal("no heavy hitters in workload")
	}
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	want := cq.Output(q, inst)
	grid, err := hypercube.NewOptimalGrid(q, 27, 17)
	if err != nil {
		t.Fatal(err)
	}
	c, got, err := SkewTriangleTwoRound(27, inst, heavy, 17, grid)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("skew 2-round triangle wrong: got %d want %d facts", got.Len(), want.Len())
	}
	if c.Rounds() != 2 {
		t.Errorf("rounds = %d, want 2", c.Rounds())
	}
}

// Load comparison: under heavy skew the 2-round algorithm's max load
// beats the best 1-round algorithm's (which is stuck at ~m/√p).
func TestSkewTriangleLoadBeatsOneRound(t *testing.T) {
	m, p := 20000, 64
	inst := workload.TriangleSkewed(m, 0.5)
	heavy := rel.NewValueSet(workload.HeavyHitters(inst, "R", 1, m/16)...)
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")

	grid, err := hypercube.NewOptimalGrid(q, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := SkewTriangleTwoRound(p, inst, heavy, 3, grid)
	if err != nil {
		t.Fatal(err)
	}

	// One-round HyperCube on the skewed instance: the heavy value
	// pins an entire grid hyperplane.
	c1, _, err := oneRoundLoadOnly(p, inst, grid)
	if err != nil {
		t.Fatal(err)
	}
	if c2.MaxLoad() >= c1 {
		t.Errorf("2-round load %d not below 1-round hypercube load %d under skew", c2.MaxLoad(), c1)
	}
	_ = c2
}

func oneRoundLoadOnly(p int, inst *rel.Instance, grid *hypercube.Grid) (int, *rel.Instance, error) {
	r := hypercube.HyperCubeRound(grid)
	r.Compute = nil
	c := mpcCluster(p, inst)
	if err := c.Run(r); err != nil {
		return 0, nil, err
	}
	return c.MaxLoad(), nil, nil
}

func mpcCluster(p int, inst *rel.Instance) *mpc.Cluster {
	c := mpc.NewCluster(p)
	c.LoadRoundRobin(inst)
	return c
}

// Regression: a bag whose atoms constrain a relation with constants
// must not destroy the facts of that relation that other bags still
// need — the grid routes non-matching facts nowhere, so the round has
// to keep them local instead of dropping them.
func TestGYMKeepsFactsUnroutedByBagGrid(t *testing.T) {
	d := rel.NewDict()
	// R(7,x) forms its own bag (processed first); the 2-cycle
	// {R(x,y), R(y,x)} forms the merged bag (processed last). R-facts
	// not matching R(7,·) must survive the first bag's round.
	q := cq.MustParse(d, "H(x, y) :- R(7, x), R(x, y), R(y, x)")
	// Numeric constants in the query are raw values, so build facts
	// with raw values too (MustInstance would intern "7" as a name).
	inst := rel.FromFacts(
		rel.NewFact("R", 7, 1),
		rel.NewFact("R", 1, 2),
		rel.NewFact("R", 2, 1),
	)
	want := cq.Output(q, inst)
	if want.Len() != 1 {
		t.Fatalf("test setup: want = %v", want.StringWith(d))
	}
	_, got, _, err := GYM(q, 4, inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("GYM lost constant-filtered facts: got %v want %v",
			got.StringWith(d), want.StringWith(d))
	}
}
