package gym

import (
	"fmt"
	"strings"

	"mpclogic/internal/cq"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
)

// This file runs Yannakakis and GYM as multi-round MPC programs. The
// scheme: a zero-communication round materializes per-atom node
// relations Y<i> (synthetic facts over the atom's distinct variables);
// each semijoin or join of a tree edge is then one MPC round that
// repartitions the two participating node relations on their shared
// variables and keeps everything else local. Rounds and communication
// are accounted by the MPC simulator, which is exactly the trade-off
// GYM studies (deep trees: fewer tuples shipped per round, more
// rounds; shallow trees: the opposite).
//
// Every algorithm is exposed in two layers: a *Program builder that
// returns the complete round list as pure data (a function of the
// query, p, and the seed only — never of execution results), and a
// driver that executes it. Because the program is data, a failed or
// checkpointed execution can resume: rebuild the identical program,
// restore the cluster (mpc.Restore), and mpc.Cluster.RunResumable
// skips the completed prefix and continues with the first outstanding
// round.

// yname names the node relation of atom/bag i.
func yname(i int) string { return fmt.Sprintf("Y%d", i) }

// materializeRound converts raw input facts into node relations Y<i>
// for the atoms of q, dropping the raw facts. Zero communication.
func materializeRound(q *cq.CQ) mpc.Round {
	return mpc.Round{
		Name: "materialize",
		Keep: func(rel.Fact) bool { return true },
		Compute: func(_ int, local *rel.Instance) *rel.Instance {
			out := rel.NewInstance()
			for i, a := range q.Body {
				r, _ := nodeRelation(a, local, yname(i))
				out.SetRelation(r)
			}
			return out
		},
	}
}

// edgeRound builds one round that repartitions relations aName and
// bName on the given column lists (hashed consistently) and applies
// combine to the co-located pieces. Facts of other relations stay put.
func edgeRound(name string, p int, aName, bName string, aCols, bCols []int, seed uint64,
	combine func(local *rel.Instance) *rel.Instance) mpc.Round {
	return mpc.Round{
		Name: name,
		Keep: func(f rel.Fact) bool { return f.Rel != aName && f.Rel != bName },
		Route: mpc.ByRelation(map[string]mpc.Router{
			aName: mpc.HashOn(p, aCols, seed),
			bName: mpc.HashOn(p, bCols, seed),
		}),
		Compute: func(_ int, local *rel.Instance) *rel.Instance {
			return combine(local)
		},
	}
}

// YannakakisProgram builds the complete distributed Yannakakis round
// list for an acyclic pure CQ on p servers: materialize, bottom-up
// semijoins, top-down semijoins, bottom-up joins with projection, and
// the final head projection. The program is pure data — its rounds
// depend only on (q, p, seed) — so rebuilding it yields an identical
// program, which is what makes executions resumable.
func YannakakisProgram(q *cq.CQ, p int, seed uint64) ([]mpc.Round, error) {
	if q.HasNegation() || q.HasDiseq() {
		return nil, fmt.Errorf("gym: distributed Yannakakis for pure CQs")
	}
	jt, ok := cq.GYO(q)
	if !ok {
		return nil, fmt.Errorf("gym: %v is cyclic; use GYM", q)
	}
	prog := []mpc.Round{materializeRound(q)}
	n := len(jt.Atoms)
	vars := make([][]string, n)
	for i, a := range jt.Atoms {
		vars[i] = a.Vars()
	}

	// Phase 1: bottom-up semijoin rounds (parent ⋉ child).
	for _, i := range jt.Order {
		par := jt.Parent[i]
		if par < 0 {
			continue
		}
		pc, cc := sharedCols(vars[par], vars[i])
		pn, cn := yname(par), yname(i)
		prog = append(prog, edgeRound(fmt.Sprintf("semijoin↑ %s⋉%s", pn, cn), p, pn, cn, pc, cc, seed,
			semijoinCombine(pn, cn, pc, cc, len(vars[par]), len(vars[i]))))
	}
	// Phase 2: top-down semijoin rounds (child ⋉ parent).
	for k := n - 1; k >= 0; k-- {
		i := jt.Order[k]
		par := jt.Parent[i]
		if par < 0 {
			continue
		}
		cc, pc := sharedCols(vars[i], vars[par])
		cn, pn := yname(i), yname(par)
		prog = append(prog, edgeRound(fmt.Sprintf("semijoin↓ %s⋉%s", cn, pn), p, cn, pn, cc, pc, seed,
			semijoinCombine(cn, pn, cc, pc, len(vars[i]), len(vars[par]))))
	}

	headVars := map[string]bool{}
	for _, t := range q.Head.Args {
		if t.IsVar() {
			headVars[t.Var] = true
		}
	}

	// Phase 3: bottom-up join rounds with projection.
	for _, i := range jt.Order {
		par := jt.Parent[i]
		if par < 0 {
			continue
		}
		pc, cc := sharedCols(vars[par], vars[i])
		pn, cn := yname(par), yname(i)

		// Keep parent vars plus child head vars not already present.
		inParent := map[string]bool{}
		for _, v := range vars[par] {
			inParent[v] = true
		}
		newVars := append([]string(nil), vars[par]...)
		keepCols := make([]int, 0, len(vars[par])+len(vars[i]))
		for k := range vars[par] {
			keepCols = append(keepCols, k)
		}
		for k, v := range vars[i] {
			if !inParent[v] && headVars[v] {
				newVars = append(newVars, v)
				keepCols = append(keepCols, len(vars[par])+k)
			}
		}
		pArity, cArity := len(vars[par]), len(vars[i])
		keep := keepCols
		prog = append(prog, edgeRound(fmt.Sprintf("join %s⋈%s", pn, cn), p, pn, cn, pc, cc, seed,
			func(local *rel.Instance) *rel.Instance {
				out := stripRelations(local, pn, cn)
				l := local.Relation(pn)
				r := local.Relation(cn)
				if l == nil {
					l = rel.NewRelation(pn, pArity)
				}
				if r == nil {
					r = rel.NewRelation(cn, cArity)
				}
				joined := rel.HashJoin("⋈", l, r, pc, cc)
				out.SetRelation(rel.Project(joined, pn, keep))
				return out
			}))
		vars[par] = newVars
	}

	// Final projection to the head, locally.
	root := jt.Order[n-1]
	rootName := yname(root)
	rootVars := vars[root]
	prog = append(prog, mpc.Round{
		Name: "project-head",
		Keep: func(rel.Fact) bool { return true },
		Compute: func(_ int, local *rel.Instance) *rel.Instance {
			out := rel.NewInstance()
			r := local.Relation(rootName)
			if r == nil {
				r = rel.NewRelation(rootName, len(rootVars))
			}
			out.SetRelation(projectHead(q, r, rootVars))
			return out
		},
	})
	return prog, nil
}

// RunYannakakisRounds executes the distributed Yannakakis program for
// q over the cluster's current contents (raw input facts). It leaves
// the result in relation head_Q across the cluster.
//
// If the cluster's executed history is already a prefix of the
// program (a checkpoint-restored cluster, or a re-invocation after a
// mid-program failure), execution resumes with the first outstanding
// round instead of restarting.
func RunYannakakisRounds(c *mpc.Cluster, q *cq.CQ, seed uint64) error {
	prog, err := YannakakisProgram(q, c.P(), seed)
	if err != nil {
		return err
	}
	return runOrResume(c, prog)
}

// runOrResume resumes prog when the cluster's history is a prefix of
// it (matching round names), and otherwise appends the whole program
// to whatever the cluster ran before — the historical behavior for
// callers composing programs by hand.
func runOrResume(c *mpc.Cluster, prog []mpc.Round) error {
	done := c.Rounds()
	if done <= len(prog) {
		match := true
		for i, s := range c.Stats() {
			if s.Name != prog[i].Name {
				match = false
				break
			}
		}
		if match {
			return c.RunResumable(prog...)
		}
	}
	return c.Run(prog...)
}

// semijoinCombine returns a compute phase replacing relation a with
// a ⋉ b on the given columns, leaving all other relations intact.
func semijoinCombine(aName, bName string, aCols, bCols []int, aArity, bArity int) func(*rel.Instance) *rel.Instance {
	return func(local *rel.Instance) *rel.Instance {
		out := stripRelations(local, aName)
		a := local.Relation(aName)
		b := local.Relation(bName)
		if a == nil {
			return out
		}
		if b == nil {
			b = rel.NewRelation(bName, bArity)
		}
		out.SetRelation(rel.SemiJoin(a, b, aCols, bCols))
		return out
	}
}

// stripRelations clones local minus the named relations.
func stripRelations(local *rel.Instance, names ...string) *rel.Instance {
	drop := map[string]bool{}
	for _, n := range names {
		drop[n] = true
	}
	return local.Filter(func(f rel.Fact) bool { return !drop[f.Rel] })
}

// DistributedYannakakis evaluates an acyclic pure CQ on p servers and
// returns the cluster (for stats) and the result. Options (e.g.
// mpc.WithFaultPlan, mpc.WithCheckpoints) configure the cluster; on
// error the partially-executed cluster is still returned so callers
// can checkpoint and resume it.
func DistributedYannakakis(q *cq.CQ, p int, inst *rel.Instance, seed uint64, opts ...mpc.Option) (*mpc.Cluster, *rel.Instance, error) {
	prog, err := YannakakisProgram(q, p, seed)
	if err != nil {
		return nil, nil, err
	}
	c := mpc.NewCluster(p, opts...)
	c.LoadRoundRobin(inst)
	if err := c.RunResumable(prog...); err != nil {
		return c, nil, err
	}
	return c, c.Output(), nil
}

// GYMProgram builds the complete GYM round list for a (possibly
// cyclic) pure CQ on p servers: one HyperCube round per bag of the
// decomposition, a cleanup round dropping raw facts, then the full
// distributed Yannakakis program over the bag tree. Like
// YannakakisProgram, the result is pure data and rebuilding it yields
// an identical program, so GYM executions are resumable end to end —
// including across the bag/Yannakakis phase boundary.
func GYMProgram(q *cq.CQ, p int, seed uint64) ([]mpc.Round, *Decomposition, error) {
	dec, err := Decompose(q)
	if err != nil {
		return nil, nil, err
	}
	var prog []mpc.Round

	// One HyperCube round per bag, materializing B<i> facts. Raw facts
	// and previously computed bags are kept local.
	for i, bq := range dec.BagQueries {
		grid, err := hypercube.NewOptimalGrid(bq, p, seed+uint64(i)*7919)
		if err != nil {
			return nil, nil, err
		}
		memberRels := map[string]bool{}
		for _, a := range bq.Body {
			memberRels[a.Rel] = true
		}
		bq := bq
		prog = append(prog, mpc.Round{
			Name: fmt.Sprintf("bag %d (%s)", i, grid.String()),
			// Keep bag outputs, facts of non-member relations, and —
			// crucially — member-relation facts this bag's grid routes
			// nowhere (constant or repeated-variable mismatch): a later
			// bag over the same relation may still need them.
			Keep: func(f rel.Fact) bool {
				return !memberRels[f.Rel] || strings.HasPrefix(f.Rel, "B") ||
					len(grid.Targets(f)) == 0
			},
			Route: grid,
			Compute: func(_ int, local *rel.Instance) *rel.Instance {
				out := local.Filter(func(f rel.Fact) bool { return true })
				out.SetRelation(cq.Evaluate(bq, local))
				return out
			},
		})
	}

	// Drop raw facts; keep only bag relations. Zero communication.
	prog = append(prog, mpc.Round{
		Name: "cleanup",
		Keep: func(rel.Fact) bool { return true },
		Compute: func(_ int, local *rel.Instance) *rel.Instance {
			return local.Filter(func(f rel.Fact) bool { return strings.HasPrefix(f.Rel, "B") })
		},
	})

	// Yannakakis over the bag tree: the synthetic query's body atoms
	// are B<i>(bag vars) and its head is the original head.
	synth := synthQuery(q, dec.Bags)
	synth.Head = q.Head
	yprog, err := YannakakisProgram(synth, p, seed^0xabcdef)
	if err != nil {
		return nil, nil, err
	}
	return append(prog, yprog...), dec, nil
}

// GYM evaluates a (possibly cyclic) pure CQ on p servers: it
// decomposes the query into bags, evaluates each bag with a
// HyperCube round, and runs distributed Yannakakis over the bag tree
// (Afrati et al.'s Generalized Yannakakis in MapReduce, Section 3.2).
// Options configure the cluster; on a mid-program error the
// partially-executed cluster is still returned so callers can
// checkpoint it and resume via GYMProgram + mpc.Restore +
// RunResumable.
func GYM(q *cq.CQ, p int, inst *rel.Instance, seed uint64, opts ...mpc.Option) (*mpc.Cluster, *rel.Instance, *Decomposition, error) {
	prog, dec, err := GYMProgram(q, p, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	c := mpc.NewCluster(p, opts...)
	c.LoadRoundRobin(inst)
	if err := c.RunResumable(prog...); err != nil {
		return c, nil, dec, err
	}
	return c, c.Output(), dec, nil
}
