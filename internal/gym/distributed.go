package gym

import (
	"fmt"
	"strings"

	"mpclogic/internal/cq"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
)

// This file runs Yannakakis and GYM as multi-round MPC programs. The
// scheme: a zero-communication round materializes per-atom node
// relations Y<i> (synthetic facts over the atom's distinct variables);
// each semijoin or join of a tree edge is then one MPC round that
// repartitions the two participating node relations on their shared
// variables and keeps everything else local. Rounds and communication
// are accounted by the MPC simulator, which is exactly the trade-off
// GYM studies (deep trees: fewer tuples shipped per round, more
// rounds; shallow trees: the opposite).

// yname names the node relation of atom/bag i.
func yname(i int) string { return fmt.Sprintf("Y%d", i) }

// materializeRound converts raw input facts into node relations Y<i>
// for the atoms of q, dropping the raw facts. Zero communication.
func materializeRound(q *cq.CQ) mpc.Round {
	return mpc.Round{
		Name: "materialize",
		Keep: func(rel.Fact) bool { return true },
		Compute: func(_ int, local *rel.Instance) *rel.Instance {
			out := rel.NewInstance()
			for i, a := range q.Body {
				r, _ := nodeRelation(a, local, yname(i))
				out.SetRelation(r)
			}
			return out
		},
	}
}

// edgeRound builds one round that repartitions relations aName and
// bName on the given column lists (hashed consistently) and applies
// combine to the co-located pieces. Facts of other relations stay put.
func edgeRound(name string, p int, aName, bName string, aCols, bCols []int, seed uint64,
	combine func(local *rel.Instance) *rel.Instance) mpc.Round {
	return mpc.Round{
		Name: name,
		Keep: func(f rel.Fact) bool { return f.Rel != aName && f.Rel != bName },
		Route: mpc.ByRelation(map[string]mpc.Router{
			aName: mpc.HashOn(p, aCols, seed),
			bName: mpc.HashOn(p, bCols, seed),
		}),
		Compute: func(_ int, local *rel.Instance) *rel.Instance {
			return combine(local)
		},
	}
}

// RunYannakakisRounds executes the distributed Yannakakis program for
// q over the cluster's current contents (raw input facts). It leaves
// the result in relation head_Q across the cluster.
func RunYannakakisRounds(c *mpc.Cluster, q *cq.CQ, seed uint64) error {
	if q.HasNegation() || q.HasDiseq() {
		return fmt.Errorf("gym: distributed Yannakakis for pure CQs")
	}
	jt, ok := cq.GYO(q)
	if !ok {
		return fmt.Errorf("gym: %v is cyclic; use GYM", q)
	}
	if err := c.Run(materializeRound(q)); err != nil {
		return err
	}
	p := c.P()
	n := len(jt.Atoms)
	vars := make([][]string, n)
	for i, a := range jt.Atoms {
		vars[i] = a.Vars()
	}

	// Phase 1: bottom-up semijoin rounds (parent ⋉ child).
	for _, i := range jt.Order {
		par := jt.Parent[i]
		if par < 0 {
			continue
		}
		pc, cc := sharedCols(vars[par], vars[i])
		pn, cn := yname(par), yname(i)
		round := edgeRound(fmt.Sprintf("semijoin↑ %s⋉%s", pn, cn), p, pn, cn, pc, cc, seed,
			semijoinCombine(pn, cn, pc, cc, len(vars[par]), len(vars[i])))
		if err := c.Run(round); err != nil {
			return err
		}
	}
	// Phase 2: top-down semijoin rounds (child ⋉ parent).
	for k := n - 1; k >= 0; k-- {
		i := jt.Order[k]
		par := jt.Parent[i]
		if par < 0 {
			continue
		}
		cc, pc := sharedCols(vars[i], vars[par])
		cn, pn := yname(i), yname(par)
		round := edgeRound(fmt.Sprintf("semijoin↓ %s⋉%s", cn, pn), p, cn, pn, cc, pc, seed,
			semijoinCombine(cn, pn, cc, pc, len(vars[i]), len(vars[par])))
		if err := c.Run(round); err != nil {
			return err
		}
	}

	headVars := map[string]bool{}
	for _, t := range q.Head.Args {
		if t.IsVar() {
			headVars[t.Var] = true
		}
	}

	// Phase 3: bottom-up join rounds with projection.
	for _, i := range jt.Order {
		par := jt.Parent[i]
		if par < 0 {
			continue
		}
		pc, cc := sharedCols(vars[par], vars[i])
		pn, cn := yname(par), yname(i)

		// Keep parent vars plus child head vars not already present.
		inParent := map[string]bool{}
		for _, v := range vars[par] {
			inParent[v] = true
		}
		newVars := append([]string(nil), vars[par]...)
		keepCols := make([]int, 0, len(vars[par])+len(vars[i]))
		for k := range vars[par] {
			keepCols = append(keepCols, k)
		}
		for k, v := range vars[i] {
			if !inParent[v] && headVars[v] {
				newVars = append(newVars, v)
				keepCols = append(keepCols, len(vars[par])+k)
			}
		}
		pArity, cArity := len(vars[par]), len(vars[i])
		round := edgeRound(fmt.Sprintf("join %s⋈%s", pn, cn), p, pn, cn, pc, cc, seed,
			func(local *rel.Instance) *rel.Instance {
				out := stripRelations(local, pn, cn)
				l := local.Relation(pn)
				r := local.Relation(cn)
				if l == nil {
					l = rel.NewRelation(pn, pArity)
				}
				if r == nil {
					r = rel.NewRelation(cn, cArity)
				}
				joined := rel.HashJoin("⋈", l, r, pc, cc)
				out.SetRelation(rel.Project(joined, pn, keepCols))
				return out
			})
		if err := c.Run(round); err != nil {
			return err
		}
		vars[par] = newVars
	}

	// Final projection to the head, locally.
	root := jt.Order[n-1]
	rootName := yname(root)
	rootVars := vars[root]
	return c.Run(mpc.Round{
		Name: "project-head",
		Keep: func(rel.Fact) bool { return true },
		Compute: func(_ int, local *rel.Instance) *rel.Instance {
			out := rel.NewInstance()
			r := local.Relation(rootName)
			if r == nil {
				r = rel.NewRelation(rootName, len(rootVars))
			}
			out.SetRelation(projectHead(q, r, rootVars))
			return out
		},
	})
}

// semijoinCombine returns a compute phase replacing relation a with
// a ⋉ b on the given columns, leaving all other relations intact.
func semijoinCombine(aName, bName string, aCols, bCols []int, aArity, bArity int) func(*rel.Instance) *rel.Instance {
	return func(local *rel.Instance) *rel.Instance {
		out := stripRelations(local, aName)
		a := local.Relation(aName)
		b := local.Relation(bName)
		if a == nil {
			return out
		}
		if b == nil {
			b = rel.NewRelation(bName, bArity)
		}
		out.SetRelation(rel.SemiJoin(a, b, aCols, bCols))
		return out
	}
}

// stripRelations clones local minus the named relations.
func stripRelations(local *rel.Instance, names ...string) *rel.Instance {
	drop := map[string]bool{}
	for _, n := range names {
		drop[n] = true
	}
	return local.Filter(func(f rel.Fact) bool { return !drop[f.Rel] })
}

// DistributedYannakakis evaluates an acyclic pure CQ on p servers and
// returns the cluster (for stats) and the result.
func DistributedYannakakis(q *cq.CQ, p int, inst *rel.Instance, seed uint64) (*mpc.Cluster, *rel.Instance, error) {
	c := mpc.NewCluster(p)
	c.LoadRoundRobin(inst)
	if err := RunYannakakisRounds(c, q, seed); err != nil {
		return nil, nil, err
	}
	return c, c.Output(), nil
}

// GYM evaluates a (possibly cyclic) pure CQ on p servers: it
// decomposes the query into bags, evaluates each bag with a
// HyperCube round, and runs distributed Yannakakis over the bag tree
// (Afrati et al.'s Generalized Yannakakis in MapReduce, Section 3.2).
func GYM(q *cq.CQ, p int, inst *rel.Instance, seed uint64) (*mpc.Cluster, *rel.Instance, *Decomposition, error) {
	dec, err := Decompose(q)
	if err != nil {
		return nil, nil, nil, err
	}
	c := mpc.NewCluster(p)
	c.LoadRoundRobin(inst)

	// One HyperCube round per bag, materializing B<i> facts. Raw facts
	// and previously computed bags are kept local.
	for i, bq := range dec.BagQueries {
		grid, err := hypercube.NewOptimalGrid(bq, p, seed+uint64(i)*7919)
		if err != nil {
			return nil, nil, nil, err
		}
		memberRels := map[string]bool{}
		for _, a := range bq.Body {
			memberRels[a.Rel] = true
		}
		bq := bq
		round := mpc.Round{
			Name: fmt.Sprintf("bag %d (%s)", i, grid.String()),
			// Keep bag outputs, facts of non-member relations, and —
			// crucially — member-relation facts this bag's grid routes
			// nowhere (constant or repeated-variable mismatch): a later
			// bag over the same relation may still need them.
			Keep: func(f rel.Fact) bool {
				return !memberRels[f.Rel] || strings.HasPrefix(f.Rel, "B") ||
					len(grid.Targets(f)) == 0
			},
			Route: grid,
			Compute: func(_ int, local *rel.Instance) *rel.Instance {
				out := local.Filter(func(f rel.Fact) bool { return true })
				out.SetRelation(cq.Evaluate(bq, local))
				return out
			},
		}
		if err := c.Run(round); err != nil {
			return nil, nil, nil, err
		}
	}

	// Drop raw facts; keep only bag relations. Zero communication.
	if err := c.Run(mpc.Round{
		Name: "cleanup",
		Keep: func(rel.Fact) bool { return true },
		Compute: func(_ int, local *rel.Instance) *rel.Instance {
			return local.Filter(func(f rel.Fact) bool { return strings.HasPrefix(f.Rel, "B") })
		},
	}); err != nil {
		return nil, nil, nil, err
	}

	// Yannakakis over the bag tree: the synthetic query's body atoms
	// are B<i>(bag vars) and its head is the original head.
	synth := synthQuery(q, dec.Bags)
	synth.Head = q.Head
	if err := RunYannakakisRounds(c, synth, seed^0xabcdef); err != nil {
		return nil, nil, nil, err
	}
	return c, c.Output(), dec, nil
}
