package gym

import (
	"testing"

	"mpclogic/internal/cq"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// A schedule is one way of feeding an instance to a delta program:
// batch 0 is the base load, the rest are ApplyUpdate batches. Every
// schedule of an instance covers exactly the same fact set, so the
// headline invariant says all of them must converge to the same
// output and the same per-server state as the single-batch run.
type schedule struct {
	name    string
	batches []*rel.Instance
}

func chunkFacts(facts []rel.Fact, k int) []*rel.Instance {
	out := make([]*rel.Instance, k)
	for i := range out {
		out[i] = rel.NewInstance()
	}
	per := (len(facts) + k - 1) / k
	for i, f := range facts {
		out[i/per].Add(f)
	}
	return out
}

func schedulesOf(inst *rel.Instance) []schedule {
	facts := inst.Facts()

	interleaved := make([]*rel.Instance, 4)
	for i := range interleaved {
		interleaved[i] = rel.NewInstance()
	}
	for i, f := range facts {
		interleaved[i%4].Add(f)
	}

	// Redundant: contiguous thirds, but every batch re-adds the whole
	// previous batch, with an empty batch in the middle — duplicates
	// and no-ops must be absorbed silently.
	thirds := chunkFacts(facts, 3)
	redundant := []*rel.Instance{
		thirds[0],
		thirds[0].Union(thirds[1]),
		rel.NewInstance(),
		thirds[1].Union(thirds[2]),
	}

	return []schedule{
		{"three-chunks", chunkFacts(facts, 3)},
		{"interleaved-4", interleaved},
		{"redundant+empty", redundant},
	}
}

// runSchedule feeds the batches of s through prog on a fresh cluster.
func runSchedule(t *testing.T, prog mpc.DeltaProgram, p int, s schedule, opts ...mpc.Option) *mpc.Cluster {
	t.Helper()
	c := mpc.NewCluster(p, opts...)
	if err := c.RunDelta(prog, s.batches[0]); err != nil {
		t.Fatalf("%s base batch: %v", s.name, err)
	}
	for i, b := range s.batches[1:] {
		if err := c.ApplyUpdate(b); err != nil {
			t.Fatalf("%s update batch %d: %v", s.name, i+1, err)
		}
	}
	return c
}

func totalFacts(c *mpc.Cluster) int {
	n := 0
	for i := 0; i < c.P(); i++ {
		n += c.Server(i).Len()
	}
	return n
}

// refClosure computes the transitive closure of inst's E relation
// naively — the independent reference the maintained TC must match.
func refClosure(inst *rel.Instance) *rel.Instance {
	tc := rel.NewRelation("TC", 2)
	e := inst.Relation("E")
	if e != nil {
		e.Each(func(t rel.Tuple) bool { tc.Add(t); return true })
		for {
			added := 0
			rel.HashJoin("⋈", tc, e, []int{1}, []int{0}).Each(func(t rel.Tuple) bool {
				if tc.Add(rel.Tuple{t[0], t[3]}) {
					added++
				}
				return true
			})
			if added == 0 {
				break
			}
		}
	}
	out := rel.NewInstance()
	out.SetRelation(tc)
	return out
}

// The headline invariant of the incremental engine: for every program
// and every update schedule, the maintained view equals an independent
// from-scratch evaluation of the final input, and the entire cluster —
// output, per-server resident state, total fact count — is
// byte-identical to the single-batch run. Placement is a pure content
// hash and folds are idempotent, so how the input was batched must be
// unobservable.
func TestDeltaProgramsScheduleInvariant(t *testing.T) {
	d := rel.NewDict()
	joinQ := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
	graph := workload.RandomGraph(24, 40, 7)
	joinInst := workload.JoinSkewFree(40)
	triInst := workload.TriangleSkewFree(30)
	skewInst := workload.TriangleSkewed(60, 0.3)
	heavy := rel.NewValueSet(workload.HeavyHitters(skewInst, "R", 1, 8)...)
	grid, err := hypercube.NewOptimalGrid(triangleCQ(), 6, 17)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		p     int
		prog  mpc.DeltaProgram
		input *rel.Instance
		view  string
		want  *rel.Instance // reference content of the view relation
	}{
		{"ΔTC", 5, DeltaTCProgram(5, 11), graph, "TC", refClosure(graph)},
		{"Δjoin", 4, DeltaJoinProgram(4, 3), joinInst, "H", cq.Output(joinQ, joinInst)},
		{"Δcascade", 6, DeltaCascadeTriangleProgram(6, 11), triInst, "H", cq.Output(triangleCQ(), triInst)},
		{"Δskew", 6, DeltaSkewTriangleProgram(6, heavy, 17, grid), skewInst, "H", cq.Output(triangleCQ(), skewInst)},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			scratch := runSchedule(t, tc.prog, tc.p, schedule{"single-batch", []*rel.Instance{tc.input}})
			view := scratch.Output().Filter(func(f rel.Fact) bool { return f.Rel == tc.view })
			if !view.Equal(tc.want) {
				t.Fatalf("from-scratch %s view disagrees with reference:\n got %s\nwant %s",
					tc.view, view, tc.want)
			}

			wantOut := scratch.Output().String()
			for _, s := range schedulesOf(tc.input) {
				c := runSchedule(t, tc.prog, tc.p, s)
				if got := c.Output().String(); got != wantOut {
					t.Errorf("%s: output diverged from single-batch run:\n got %s\nwant %s", s.name, got, wantOut)
				}
				if totalFacts(c) != totalFacts(scratch) {
					t.Errorf("%s: total resident facts %d, single-batch run has %d", s.name, totalFacts(c), totalFacts(scratch))
				}
				for i := 0; i < tc.p; i++ {
					if !c.Server(i).Equal(scratch.Server(i)) {
						t.Errorf("%s: server %d state diverged from single-batch run", s.name, i)
					}
				}
			}

			// Replaying the same schedule must reproduce the logical
			// trace byte-for-byte (round names, loads, delta comm).
			s := schedulesOf(tc.input)[0]
			a := runSchedule(t, tc.prog, tc.p, s)
			b := runSchedule(t, tc.prog, tc.p, s)
			if a.LogicalTrace() != b.LogicalTrace() {
				t.Errorf("replayed schedule produced a different logical trace")
			}
			if a.DeltaCommTotal() == 0 {
				t.Errorf("delta program shipped no delta facts — DeltaRels accounting is broken")
			}
			if a.DeltaCommTotal() != a.TotalComm() {
				t.Errorf("delta program shipped non-delta facts: delta %d of total %d", a.DeltaCommTotal(), a.TotalComm())
			}
		})
	}
}

// Updates whose consequences are small must cost communication
// proportional to those consequences, not to the resident state: the
// acceptance shape behind the sustained-update benchmarks.
func TestDeltaTCUpdateCostIsDeltaSized(t *testing.T) {
	base := workload.PathGraph(60)
	c, err := DeltaTC(4, base, 11)
	if err != nil {
		t.Fatal(err)
	}
	baseComm := c.TotalComm()

	// A fresh edge between two vertices disconnected from the path adds
	// exactly one closure fact, so the update must ship a handful of
	// facts (the ΔE fact plus its candidate) no matter how large the
	// resident closure is.
	if err := c.ApplyUpdate(rel.FromFacts(rel.NewFact("E", 1000, 1001))); err != nil {
		t.Fatal(err)
	}
	upd := c.TotalComm() - baseComm
	if upd > 4 {
		t.Errorf("isolated-edge update shipped %d facts over a %d-fact resident closure", upd, totalFacts(c))
	}

	// Re-adding an existing edge ships the one Δ fact and derives
	// nothing.
	before := c.TotalComm()
	rounds := c.Rounds()
	if err := c.ApplyUpdate(rel.FromFacts(rel.NewFact("E", 3, 4))); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalComm() - before; got != 1 {
		t.Errorf("duplicate-edge update shipped %d facts, want 1", got)
	}
	if got := c.Rounds() - rounds; got != 1 {
		t.Errorf("duplicate-edge update ran %d rounds, want 1", got)
	}
}

// Fault transparency extends to delta programs: under every plan of
// the standard fault matrix, a maintained view's output, logical trace
// (including delta communication), and round count are byte-identical
// to the fault-free run, and recovery shows up only in the recovery
// metrics.
func TestDeltaFaultTransparency(t *testing.T) {
	graph := workload.RandomGraph(20, 32, 9)
	sched := schedule{"thirds", chunkFacts(graph.Facts(), 3)}
	prog := DeltaTCProgram(5, 13)

	free := runSchedule(t, prog, 5, sched)
	wantOut := free.Output().String()
	wantTrace := free.LogicalTrace()

	matrix := mpc.StandardFaultMatrix(2026, free.Rounds(), 5)
	if testing.Short() {
		matrix = matrix[:3]
	}
	var tot mpc.RecoveryStats
	for _, np := range matrix {
		c := runSchedule(t, prog, 5, sched, mpc.WithFaultPlan(np.Plan))
		if got := c.Output().String(); got != wantOut {
			t.Errorf("under %s: output diverged", np.Name)
		}
		if got := c.LogicalTrace(); got != wantTrace {
			t.Errorf("under %s: logical trace diverged:\n got %q\nwant %q", np.Name, got, wantTrace)
		}
		if c.DeltaCommTotal() != free.DeltaCommTotal() || c.Rounds() != free.Rounds() {
			t.Errorf("under %s: delta accounting diverged", np.Name)
		}
		r := c.RecoveryTotals()
		tot.Retries += r.Retries
		tot.RecoveredServers += r.RecoveredServers
		tot.ReplicaComm += r.ReplicaComm
		tot.SpeculativeWins += r.SpeculativeWins
	}
	if !testing.Short() && (tot.Retries == 0 || tot.RecoveredServers == 0) {
		t.Errorf("matrix injected no recoverable faults into the delta program (totals %+v)", tot)
	}
}

// Delta programs must be pure data like every other program builder:
// the same parameters yield the same round names, which is what
// RestoreDelta's re-entry relies on.
func TestDeltaProgramsAreReproducible(t *testing.T) {
	progs := []func() mpc.DeltaProgram{
		func() mpc.DeltaProgram { return DeltaTCProgram(6, 42) },
		func() mpc.DeltaProgram { return DeltaJoinProgram(6, 42) },
		func() mpc.DeltaProgram { return DeltaCascadeTriangleProgram(6, 42) },
	}
	for _, mk := range progs {
		a, b := mk(), mk()
		for batch := 0; batch < 3; batch++ {
			ra, rb := a.Inject(batch), b.Inject(batch)
			if len(ra) != len(rb) {
				t.Fatalf("%s: Inject(%d) length differs", a.Name, batch)
			}
			for i := range ra {
				if ra[i].Name != rb[i].Name {
					t.Errorf("%s: Inject(%d)[%d] names differ: %q vs %q", a.Name, batch, i, ra[i].Name, rb[i].Name)
				}
			}
		}
		if a.Step != nil {
			for k := 0; k < 3; k++ {
				if a.Step(k).Name != b.Step(k).Name {
					t.Errorf("%s: Step(%d) names differ", a.Name, k)
				}
			}
		}
	}
}
