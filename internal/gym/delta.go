package gym

import (
	"fmt"

	"mpclogic/internal/cq"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
)

// This file rebuilds the repo's recursive and multi-round programs as
// semi-naive delta programs (mpc.DeltaProgram): every relation the
// program maintains is resident — placed once by a content hash and
// never re-shipped — and each round's communication phase carries only
// Δ fragments. The base load and every later update batch go through
// the same Inject/Step rounds, which is what makes the headline
// invariant checkable: maintaining a view incrementally yields the
// byte-identical output (and per-server state) of a from-scratch run
// on the final input.
//
// Placement discipline: a resident relation's home is a pure hash of
// fact content, chosen so every join of the program is co-located —
// e.g. TC(x,z) lives where E(z,·) lives, so the extension join
// TC ⋈ E needs no reshuffle. Because placement is content-determined
// and folds are idempotent set unions, the final per-server state is
// independent of how the input was batched.

// indexOn pre-builds the cached join index of a resident relation (a
// no-op once it exists). Folds maintain the index incrementally, so
// after the base load every delta join probes the resident at O(|Δ|)
// instead of scanning it.
func indexOn(r *rel.Relation, cols ...int) {
	if r != nil {
		r.IndexOn(cols...)
	}
}

// addJoin folds the projection of l ⋈ r into h; nil or empty sides
// contribute nothing.
func addJoin(h *rel.Relation, l, r *rel.Relation, lCols, rCols, proj []int) {
	if l == nil || r == nil || l.Len() == 0 || r.Len() == 0 {
		return
	}
	rel.HashJoin("⋈", l, r, lCols, rCols).Each(func(t rel.Tuple) bool {
		h.Add(t.Project(proj))
		return true
	})
}

// DeltaTCProgram maintains TC = the transitive closure of edge
// relation E under edge insertions, as a linear semi-naive program.
//
// Placement: E(u,v) at h(u), TC(x,w) at h(w) — the same single-column
// hash, so TC(·,z) and E(z,·) are co-located and the extension join
// ships nothing but the frontier. Inject routes ΔE to h(source), folds
// it into E, and seeds the candidate frontier ΔC = ΔE ∪ TC ⋈ ΔE (the
// first new edge on any path is reached through old closure only).
// Each Step routes ΔC to h(target), folds the genuinely-new facts into
// TC, and extends them by one resident edge: ΔC' = newTC ⋈ E. The
// fixpoint is reached when a step derives nothing new — so the cost of
// an update is proportional to the closure it actually changes, not to
// the resident state.
func DeltaTCProgram(p int, seed uint64) mpc.DeltaProgram {
	dE := mpc.DeltaName("E")
	resident := []string{"E", "TC"}
	injectRoute := mpc.ByRelation(map[string]mpc.Router{dE: mpc.HashOn(p, []int{0}, seed)})
	stepRoute := mpc.ByRelation(map[string]mpc.Router{"ΔC": mpc.HashOn(p, []int{1}, seed)})

	return mpc.DeltaProgram{
		Name: "ΔTC",
		Inject: func(batch int) []mpc.Round {
			return []mpc.Round{{
				Name:      fmt.Sprintf("ΔTC inject %d", batch),
				Resident:  resident,
				DeltaRels: []string{dE},
				Route:     injectRoute,
				Compute: func(_ int, local *rel.Instance) *rel.Instance {
					newE := local.FoldDelta(dE, "E", 2)
					if newE.Len() == 0 {
						return local
					}
					cand := rel.NewRelationSize("ΔC", 2, newE.Len())
					newE.Each(func(t rel.Tuple) bool {
						cand.Add(t)
						return true
					})
					indexOn(local.Relation("TC"), 1)
					addJoin(cand, local.Relation("TC"), newE, []int{1}, []int{0}, []int{0, 3})
					local.SetRelation(cand)
					return local
				},
			}}
		},
		Step: func(k int) mpc.Round {
			return mpc.Round{
				Name:      fmt.Sprintf("ΔTC step %d", k),
				Resident:  resident,
				DeltaRels: []string{"ΔC"},
				Route:     stepRoute,
				Compute: func(_ int, local *rel.Instance) *rel.Instance {
					newTC := local.FoldDelta("ΔC", "TC", 2)
					if newTC.Len() == 0 {
						return local
					}
					next := rel.NewRelation("ΔC", 2)
					indexOn(local.Relation("E"), 0)
					addJoin(next, newTC, local.Relation("E"), []int{1}, []int{0}, []int{0, 3})
					if next.Len() > 0 {
						local.SetRelation(next)
					}
					return local
				},
			}
		},
		Frontier: []string{"ΔC"},
	}
}

// DeltaTC runs DeltaTCProgram from scratch on base; maintain the
// closure afterwards with c.ApplyUpdate.
func DeltaTC(p int, base *rel.Instance, seed uint64, opts ...mpc.Option) (*mpc.Cluster, error) {
	c := mpc.NewCluster(p, opts...)
	return c, c.RunDelta(DeltaTCProgram(p, seed), base)
}

// DeltaJoinProgram maintains H(x,y,z) = R(x,y) ⋈ S(y,z) under
// insertions into R and S: both sides are resident at the same hash of
// the join value y, so one inject round per batch ships only the Δ
// fragments and derives ΔH = newR ⋈ S ∪ R ⋈ newS locally (the folds
// run first, so the full sides already include the batch's own new
// facts; the double-derived newR ⋈ newS collapses in the H set). The
// view is non-recursive: no Step, no Frontier.
func DeltaJoinProgram(p int, seed uint64) mpc.DeltaProgram {
	dR, dS := mpc.DeltaName("R"), mpc.DeltaName("S")
	route := mpc.ByRelation(map[string]mpc.Router{
		dR: mpc.HashOn(p, []int{1}, seed),
		dS: mpc.HashOn(p, []int{0}, seed),
	})
	return mpc.DeltaProgram{
		Name: "Δjoin",
		Inject: func(batch int) []mpc.Round {
			return []mpc.Round{{
				Name:      fmt.Sprintf("Δjoin inject %d", batch),
				Resident:  []string{"R", "S", "H"},
				DeltaRels: []string{dR, dS},
				Route:     route,
				Compute: func(_ int, local *rel.Instance) *rel.Instance {
					newR := local.FoldDelta(dR, "R", 2)
					newS := local.FoldDelta(dS, "S", 2)
					if newR.Len() == 0 && newS.Len() == 0 {
						return local
					}
					h := local.EnsureRelation("H", 3)
					indexOn(local.Relation("S"), 0)
					indexOn(local.Relation("R"), 1)
					addJoin(h, newR, local.Relation("S"), []int{1}, []int{0}, []int{0, 1, 3})
					addJoin(h, local.Relation("R"), newS, []int{1}, []int{0}, []int{0, 1, 3})
					return local
				},
			}}
		},
	}
}

// DeltaCascadeTriangleProgram maintains the triangle view
// H(x,y,z) :- R(x,y), S(y,z), T(z,x) under insertions, as the
// incremental form of the two-round cascade (CascadeTriangleProgram):
// the intermediate K = R ⋈ S is itself a maintained resident view, so
// an update ships two delta hops — ΔK out of the (R,S) side, then ΔH
// out of the (K,T) side — instead of re-deriving K wholesale.
//
// Placement: R and S at h(y); K(x,y,z) and T(z,x) at h2(x,z), which
// co-locates the second join. Round b.1 folds ΔR/ΔS and derives
// ΔK = newR ⋈ S ∪ R ⋈ newS; ΔT is routed straight to its h2 home and
// held (as a zero-copy resident) for round b.2, which folds ΔT and ΔK
// and derives ΔH = newK ⋈ T ∪ K ⋈ newT into the resident output.
func DeltaCascadeTriangleProgram(p int, seed uint64) mpc.DeltaProgram {
	dR, dS, dT := mpc.DeltaName("R"), mpc.DeltaName("S"), mpc.DeltaName("T")
	seed2 := seed ^ 0x5bd1e995
	route1 := mpc.ByRelation(map[string]mpc.Router{
		dR: mpc.HashOn(p, []int{1}, seed),
		dS: mpc.HashOn(p, []int{0}, seed),
		dT: mpc.HashOn(p, []int{1, 0}, seed2), // T(z,x) keyed (x, z)
	})
	route2 := mpc.ByRelation(map[string]mpc.Router{
		"ΔK": mpc.HashOn(p, []int{0, 2}, seed2), // K(x,y,z) keyed (x, z)
	})
	return mpc.DeltaProgram{
		Name: "Δcascade",
		Inject: func(batch int) []mpc.Round {
			round1 := mpc.Round{
				Name:      fmt.Sprintf("Δcascade %d.1 ΔR⋈S", batch),
				Resident:  []string{"R", "S", "K", "T", "H"},
				DeltaRels: []string{dR, dS, dT},
				Route:     route1,
				Compute: func(_ int, local *rel.Instance) *rel.Instance {
					newR := local.FoldDelta(dR, "R", 2)
					newS := local.FoldDelta(dS, "S", 2)
					// ΔT stays in the inbox untouched: it is already at
					// its h2 home and round 2 folds it.
					if newR.Len() == 0 && newS.Len() == 0 {
						return local
					}
					dk := rel.NewRelation("ΔK", 3)
					indexOn(local.Relation("S"), 0)
					indexOn(local.Relation("R"), 1)
					addJoin(dk, newR, local.Relation("S"), []int{1}, []int{0}, []int{0, 1, 3})
					addJoin(dk, local.Relation("R"), newS, []int{1}, []int{0}, []int{0, 1, 3})
					if dk.Len() > 0 {
						local.SetRelation(dk)
					}
					return local
				},
			}
			round2 := mpc.Round{
				Name:      fmt.Sprintf("Δcascade %d.2 ΔK⋈T", batch),
				Resident:  []string{"R", "S", "K", "T", "H", dT},
				DeltaRels: []string{"ΔK"},
				Route:     route2,
				Compute: func(_ int, local *rel.Instance) *rel.Instance {
					newT := local.FoldDelta(dT, "T", 2)
					newK := local.FoldDelta("ΔK", "K", 3)
					if newT.Len() == 0 && newK.Len() == 0 {
						return local
					}
					h := local.EnsureRelation("H", 3)
					// Match K(x,y,z) with T(z,x) on (z, x).
					indexOn(local.Relation("T"), 0, 1)
					indexOn(local.Relation("K"), 2, 0)
					addJoin(h, newK, local.Relation("T"), []int{2, 0}, []int{0, 1}, []int{0, 1, 2})
					addJoin(h, local.Relation("K"), newT, []int{2, 0}, []int{0, 1}, []int{0, 1, 2})
					return local
				},
			}
			return []mpc.Round{round1, round2}
		},
	}
}

// DeltaCascadeTriangle runs DeltaCascadeTriangleProgram from scratch
// on base; maintain the view afterwards with c.ApplyUpdate.
func DeltaCascadeTriangle(p int, base *rel.Instance, seed uint64, opts ...mpc.Option) (*mpc.Cluster, error) {
	c := mpc.NewCluster(p, opts...)
	return c, c.RunDelta(DeltaCascadeTriangleProgram(p, seed), base)
}

// DeltaSkewTriangleProgram maintains the triangle view under
// insertions with the heavy-hitter discipline of SkewTriangleProgram:
// light y-values live in HyperCube grid cells and are finished by
// local evaluation; for heavy y-values the residual acyclic query is
// processed by two semijoin-shaped hops (W = heavy-R ⋈ T at h(a),
// then H += W ⋈ heavy-S at h(c)).
//
// Every role shares one resident relation per name: a server's R holds
// whatever grid copies and heavy hash copies land there. Extra copies
// are genuine facts, so joins over them derive only valid (and
// deduplicated) tuples; the light evaluation filters heavy-y rows and
// the heavy joins select heavy-y rows, so the two paths partition the
// output exactly as in the one-shot algorithm. Placement is a pure
// content hash, so the final per-server state is batch-schedule
// invariant here too.
//
// The light path re-evaluates the triangle query inside each grid cell
// a delta lands in (bounded by cell size, not by |Δ|) — the cascade
// program is the one with per-update cost proportional to the deltas;
// this program exists to keep skew handling under maintenance too.
func DeltaSkewTriangleProgram(p int, heavy rel.ValueSet, seed uint64, grid mpc.Router) mpc.DeltaProgram {
	q := triangleCQ()
	dR, dS, dT := mpc.DeltaName("R"), mpc.DeltaName("S"), mpc.DeltaName("T")

	hashA := mpc.HashOn(p, []int{1}, seed^0x1234)  // T(c,a) by a
	hashRA := mpc.HashOn(p, []int{0}, seed^0x1234) // R(a,b) by a
	hashC := mpc.HashOn(p, []int{2}, seed^0x9999)  // W(a,b,c) by c
	hashSC := mpc.HashOn(p, []int{1}, seed^0x9999) // S(b,c) by c

	// The grid router dispatches on the relation name, so Δ facts are
	// routed as their full counterparts.
	gridAs := func(name string, f rel.Fact) []int {
		return grid.Route(rel.Fact{Rel: name, Tuple: f.Tuple})
	}

	route1 := mpc.RouterFunc(func(f rel.Fact) []int {
		switch f.Rel {
		case dR:
			if heavy.Contains(f.Tuple[1]) {
				return hashRA.Route(f)
			}
			return gridAs("R", f)
		case dS:
			if heavy.Contains(f.Tuple[0]) {
				return hashSC.Route(f) // straight to its round-2 home
			}
			return gridAs("S", f)
		case dT:
			// T serves both the light grid and the heavy path.
			return append(gridAs("T", f), hashA.Route(f)...)
		}
		return nil
	})
	route2 := mpc.ByRelation(map[string]mpc.Router{"ΔW": hashC})

	residents := []string{"R", "S", "T", "W", "H"}
	isHeavyY := func(t rel.Tuple) bool { return heavy.Contains(t[1]) }

	return mpc.DeltaProgram{
		Name: "Δskew",
		Inject: func(batch int) []mpc.Round {
			round1 := mpc.Round{
				Name:      fmt.Sprintf("Δskew %d.1 grid + ΔW", batch),
				Resident:  residents,
				DeltaRels: []string{dR, dS, dT},
				Route:     route1,
				Compute: func(_ int, local *rel.Instance) *rel.Instance {
					newR := local.FoldDelta(dR, "R", 2)
					newT := local.FoldDelta(dT, "T", 2)

					// Split ΔS: light facts fold into the resident grid
					// copies now; heavy facts wait (zero-copy) for round 2.
					var newSLight *rel.Relation
					if ds := local.RemoveRelation(dS); ds != nil && ds.Len() > 0 {
						light := rel.Select(ds, func(t rel.Tuple) bool { return !heavy.Contains(t[0]) })
						hw := rel.Select(ds, func(t rel.Tuple) bool { return heavy.Contains(t[0]) })
						if light.Len() > 0 {
							newSLight = local.EnsureRelationSize("S", 2, light.Len()).AbsorbNew(light, dS)
						}
						if hw.Len() > 0 {
							hw.Name = "ΔSh"
							local.SetRelation(hw)
						}
					}

					// Light path: a new fact completes triangles only in
					// its own cell, so re-evaluate the query there.
					if newR.Len() > 0 || newT.Len() > 0 || (newSLight != nil && newSLight.Len() > 0) {
						h := local.EnsureRelation("H", 3)
						cq.Evaluate(q, local).Each(func(t rel.Tuple) bool {
							if !isHeavyY(t) {
								h.Add(t)
							}
							return true
						})
					}

					// Heavy path: ΔW(a,b,c) for heavy R(a,b) and T(c,a).
					heavyNewR := rel.Select(newR, isHeavyY)
					var heavyR *rel.Relation
					if r := local.Relation("R"); r != nil {
						heavyR = rel.Select(r, isHeavyY)
					}
					if heavyNewR.Len() > 0 || (heavyR != nil && heavyR.Len() > 0 && newT.Len() > 0) {
						w := rel.NewRelation("ΔW", 3)
						indexOn(local.Relation("T"), 1)
						addJoin(w, heavyNewR, local.Relation("T"), []int{0}, []int{1}, []int{0, 1, 2})
						addJoin(w, heavyR, newT, []int{0}, []int{1}, []int{0, 1, 2})
						if w.Len() > 0 {
							local.SetRelation(w)
						}
					}
					return local
				},
			}
			round2 := mpc.Round{
				Name:      fmt.Sprintf("Δskew %d.2 ΔW⋈S", batch),
				Resident:  append(append([]string(nil), residents...), "ΔSh"),
				DeltaRels: []string{"ΔW"},
				Route:     route2,
				Compute: func(_ int, local *rel.Instance) *rel.Instance {
					newSh := local.FoldDelta("ΔSh", "S", 2)
					newW := local.FoldDelta("ΔW", "W", 3)
					if newSh.Len() == 0 && newW.Len() == 0 {
						return local
					}
					h := local.EnsureRelation("H", 3)
					// Match W(a,b,c) with S(b,c) on (b, c); W's b is
					// always heavy, so light grid copies of S here never
					// join — the full-S join self-filters to the heavy side.
					indexOn(local.Relation("S"), 0, 1)
					indexOn(local.Relation("W"), 1, 2)
					addJoin(h, newW, local.Relation("S"), []int{1, 2}, []int{0, 1}, []int{0, 1, 2})
					addJoin(h, local.Relation("W"), newSh, []int{1, 2}, []int{0, 1}, []int{0, 1, 2})
					return local
				},
			}
			return []mpc.Round{round1, round2}
		},
	}
}
