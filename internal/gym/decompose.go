package gym

import (
	"fmt"

	"mpclogic/internal/cq"
)

// Decomposition is a (generalized hypertree-style) decomposition of a
// query body into bags of atoms whose bag hypergraph is acyclic. GYM
// evaluates each bag with the Shares/HyperCube algorithm and runs
// Yannakakis over the bag tree; the bag tree's shape controls the
// trade-off between rounds and communication the paper highlights.
type Decomposition struct {
	Query *cq.CQ
	Bags  [][]int      // atom indices per bag
	Tree  *cq.JoinTree // join tree over the synthetic bag atoms
	// BagQueries holds, per bag, the conjunctive query computing the
	// bag relation: head B<i>(vars of bag), body = member atoms.
	BagQueries []*cq.CQ
}

// Width returns the maximum number of atoms in a bag.
func (d *Decomposition) Width() int {
	w := 0
	for _, b := range d.Bags {
		if len(b) > w {
			w = len(b)
		}
	}
	return w
}

// Decompose greedily builds a decomposition: it starts with one bag
// per atom and, while the bag hypergraph is cyclic, merges the two
// bags sharing the most variables. For acyclic queries it returns the
// trivial decomposition (one atom per bag); for the triangle it
// produces two bags ({R,S} and {T}).
func Decompose(q *cq.CQ) (*Decomposition, error) {
	if q.HasNegation() {
		return nil, fmt.Errorf("gym: decomposition for pure CQs only")
	}
	bags := make([][]int, len(q.Body))
	for i := range q.Body {
		bags[i] = []int{i}
	}
	for {
		synth := synthQuery(q, bags)
		if jt, ok := cq.GYO(synth); ok {
			bagQueries := make([]*cq.CQ, len(bags))
			for i, b := range bags {
				bagQueries[i] = bagQuery(q, b, fmt.Sprintf("B%d", i))
			}
			return &Decomposition{Query: q, Bags: bags, Tree: jt, BagQueries: bagQueries}, nil
		}
		if len(bags) < 2 {
			return nil, fmt.Errorf("gym: single-bag query still cyclic (internal error)")
		}
		// Merge the pair of bags sharing the most variables (ties:
		// smallest indices), preferring pairs that actually share.
		bi, bj, best := 0, 1, -1
		for i := 0; i < len(bags); i++ {
			for j := i + 1; j < len(bags); j++ {
				n := len(sharedVarsOf(q, bags[i], bags[j]))
				if n > best {
					bi, bj, best = i, j, n
				}
			}
		}
		merged := append(append([]int{}, bags[bi]...), bags[bj]...)
		var next [][]int
		for k, b := range bags {
			if k != bi && k != bj {
				next = append(next, b)
			}
		}
		bags = append(next, merged)
	}
}

// bagVars returns the sorted distinct variables of a bag.
func bagVars(q *cq.CQ, bag []int) []string {
	seen := map[string]bool{}
	for _, ai := range bag {
		for _, v := range q.Body[ai].Vars() {
			seen[v] = true
		}
	}
	return sortedVars(seen)
}

func sharedVarsOf(q *cq.CQ, a, b []int) []string {
	av := map[string]bool{}
	for _, v := range bagVars(q, a) {
		av[v] = true
	}
	var out []string
	for _, v := range bagVars(q, b) {
		if av[v] {
			out = append(out, v)
		}
	}
	return out
}

// synthQuery builds the synthetic query whose atoms are the bags
// (relation B<i> over the bag's variables); its GYO tree is the bag
// tree.
func synthQuery(q *cq.CQ, bags [][]int) *cq.CQ {
	s := &cq.CQ{Head: cq.Atom{Rel: "H"}}
	for i, b := range bags {
		vars := bagVars(q, b)
		args := make([]cq.Term, len(vars))
		for k, v := range vars {
			args[k] = cq.V(v)
		}
		s.Body = append(s.Body, cq.Atom{Rel: fmt.Sprintf("B%d", i), Args: args})
	}
	return s
}

// bagQuery is the CQ computing one bag's relation: head over the bag's
// variables, body = the member atoms.
func bagQuery(q *cq.CQ, bag []int, name string) *cq.CQ {
	vars := bagVars(q, bag)
	args := make([]cq.Term, len(vars))
	for k, v := range vars {
		args[k] = cq.V(v)
	}
	out := &cq.CQ{Head: cq.Atom{Rel: name, Args: args}}
	for _, ai := range bag {
		out.Body = append(out.Body, q.Body[ai])
	}
	return out
}
