// Package gym implements the multi-round algorithms of Section 3.2 of
// Neven (PODS 2016): Yannakakis' algorithm for acyclic conjunctive
// queries (semi-join full reduction followed by a join phase whose
// intermediate results never exceed the final output by more than the
// per-node inputs), the GYM generalization that evaluates a tree
// decomposition of a cyclic query — each bag via the Shares/HyperCube
// algorithm, the bag tree via Yannakakis — and the cascaded binary
// join baseline of Example 3.1(2).
package gym

import (
	"fmt"
	"sort"

	"mpclogic/internal/cq"
	"mpclogic/internal/rel"
)

// Stats tracks the cost profile of a centralized evaluation: the
// largest materialized intermediate relation and the operation counts.
type Stats struct {
	MaxIntermediate int
	Semijoins       int
	Joins           int
}

// nodeRelation materializes the tuples of an atom from the instance as
// a relation over the atom's distinct variables (applying constant and
// repeated-variable selections).
func nodeRelation(a cq.Atom, i *rel.Instance, name string) (*rel.Relation, []string) {
	vars := a.Vars()
	firstPos := map[string]int{}
	for p, t := range a.Args {
		if t.IsVar() {
			if _, ok := firstPos[t.Var]; !ok {
				firstPos[t.Var] = p
			}
		}
	}
	cols := make([]int, len(vars))
	for k, v := range vars {
		cols[k] = firstPos[v]
	}
	out := rel.NewRelation(name, len(vars))
	src := i.Relation(a.Rel)
	if src == nil {
		return out, vars
	}
	src.Each(func(t rel.Tuple) bool {
		for p, arg := range a.Args {
			if arg.IsVar() {
				if t[firstPos[arg.Var]] != t[p] {
					return true
				}
			} else if t[p] != arg.Const {
				return true
			}
		}
		out.Add(t.Project(cols))
		return true
	})
	return out, vars
}

// sharedCols returns the column lists of the variables shared between
// two var lists.
func sharedCols(aVars, bVars []string) (aCols, bCols []int) {
	bPos := map[string]int{}
	for i, v := range bVars {
		bPos[v] = i
	}
	for i, v := range aVars {
		if j, ok := bPos[v]; ok {
			aCols = append(aCols, i)
			bCols = append(bCols, j)
		}
	}
	return
}

// Yannakakis evaluates an acyclic pure CQ: full reduction by
// semijoins (bottom-up then top-down over the GYO join tree), then a
// bottom-up join phase that projects away variables as soon as they
// are no longer needed. It returns the result relation and the cost
// stats.
func Yannakakis(q *cq.CQ, inst *rel.Instance) (*rel.Relation, *Stats, error) {
	return YannakakisWith(q, inst, true)
}

// YannakakisWith optionally skips the semijoin full-reduction phases —
// the ablation showing what the reduction buys: without it, dangling
// tuples survive into the join phase and intermediates grow even
// though the early projection discipline is unchanged.
func YannakakisWith(q *cq.CQ, inst *rel.Instance, fullReduction bool) (*rel.Relation, *Stats, error) {
	if q.HasNegation() || q.HasDiseq() {
		return nil, nil, fmt.Errorf("gym: Yannakakis implemented for pure CQs")
	}
	jt, ok := cq.GYO(q)
	if !ok {
		return nil, nil, fmt.Errorf("gym: query %v is cyclic; use a tree decomposition (GYM)", q)
	}
	st := &Stats{}

	n := len(jt.Atoms)
	rels := make([]*rel.Relation, n)
	vars := make([][]string, n)
	for i, a := range jt.Atoms {
		rels[i], vars[i] = nodeRelation(a, inst, fmt.Sprintf("Y%d", i))
	}

	if fullReduction {
		// Phase 1: bottom-up semijoins (elimination order visits
		// children before parents; the last entry is the root).
		for _, i := range jt.Order {
			p := jt.Parent[i]
			if p < 0 {
				continue
			}
			pc, cc := sharedCols(vars[p], vars[i])
			rels[p] = rel.SemiJoin(rels[p], rels[i], pc, cc)
			st.Semijoins++
		}
		// Phase 2: top-down semijoins.
		for k := n - 1; k >= 0; k-- {
			i := jt.Order[k]
			p := jt.Parent[i]
			if p < 0 {
				continue
			}
			cc, pc := sharedCols(vars[i], vars[p])
			rels[i] = rel.SemiJoin(rels[i], rels[p], cc, pc)
			st.Semijoins++
		}
	}

	headVars := map[string]bool{}
	for _, t := range q.Head.Args {
		if t.IsVar() {
			headVars[t.Var] = true
		}
	}

	// Phase 3: bottom-up joins, projecting away child variables that
	// are neither head variables nor present in the parent (safe by
	// the running-intersection property of join trees).
	for _, i := range jt.Order {
		p := jt.Parent[i]
		if p < 0 {
			continue
		}
		pc, cc := sharedCols(vars[p], vars[i])
		joined := rel.HashJoin("⋈", rels[p], rels[i], pc, cc)
		st.Joins++
		// Result columns: all of parent, then child vars to keep.
		newVars := append([]string(nil), vars[p]...)
		keepCols := make([]int, 0, len(vars[p])+len(vars[i]))
		for k := range vars[p] {
			keepCols = append(keepCols, k)
		}
		inParent := map[string]bool{}
		for _, v := range vars[p] {
			inParent[v] = true
		}
		for k, v := range vars[i] {
			if !inParent[v] && headVars[v] {
				newVars = append(newVars, v)
				keepCols = append(keepCols, len(vars[p])+k)
			}
		}
		rels[p] = rel.Project(joined, fmt.Sprintf("Y%d", p), keepCols)
		vars[p] = newVars
		if rels[p].Len() > st.MaxIntermediate {
			st.MaxIntermediate = rels[p].Len()
		}
	}

	root := jt.Order[n-1]
	out := projectHead(q, rels[root], vars[root])
	return out, st, nil
}

// CascadeJoin is the baseline of Example 3.1(2): evaluate the body as
// a cascade of pairwise joins in syntactic order with no semijoin
// reduction and no early projection, tracking the intermediate sizes.
func CascadeJoin(q *cq.CQ, inst *rel.Instance) (*rel.Relation, *Stats, error) {
	if q.HasNegation() || q.HasDiseq() {
		return nil, nil, fmt.Errorf("gym: CascadeJoin implemented for pure CQs")
	}
	st := &Stats{}
	acc, accVars := nodeRelation(q.Body[0], inst, "C0")
	for k := 1; k < len(q.Body); k++ {
		nr, nv := nodeRelation(q.Body[k], inst, fmt.Sprintf("C%d", k))
		ac, nc := sharedCols(accVars, nv)
		joined := rel.HashJoin("⋈", acc, nr, ac, nc)
		st.Joins++
		// Keep every variable (no projection): columns of acc then the
		// fresh columns of the new atom.
		inAcc := map[string]bool{}
		for _, v := range accVars {
			inAcc[v] = true
		}
		keep := make([]int, 0, acc.Arity+nr.Arity)
		for i := range accVars {
			keep = append(keep, i)
		}
		newVars := append([]string(nil), accVars...)
		for i, v := range nv {
			if !inAcc[v] {
				keep = append(keep, acc.Arity+i)
				newVars = append(newVars, v)
			}
		}
		acc = rel.Project(joined, fmt.Sprintf("C%d", k), keep)
		accVars = newVars
		if acc.Len() > st.MaxIntermediate {
			st.MaxIntermediate = acc.Len()
		}
	}
	return projectHead(q, acc, accVars), st, nil
}

// projectHead maps a relation over a variable list onto the query head
// (inserting head constants).
func projectHead(q *cq.CQ, r *rel.Relation, vars []string) *rel.Relation {
	pos := map[string]int{}
	for i, v := range vars {
		pos[v] = i
	}
	out := rel.NewRelation(q.Head.Rel, len(q.Head.Args))
	r.Each(func(t rel.Tuple) bool {
		h := make(rel.Tuple, len(q.Head.Args))
		for i, arg := range q.Head.Args {
			if arg.IsVar() {
				h[i] = t[pos[arg.Var]]
			} else {
				h[i] = arg.Const
			}
		}
		out.Add(h)
		return true
	})
	return out
}

// sortedVars returns a copy of vars in sorted order (helper for
// deterministic synthetic atoms).
func sortedVars(vars map[string]bool) []string {
	out := make([]string, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
