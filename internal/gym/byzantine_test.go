package gym

import (
	"errors"
	"testing"

	"mpclogic/internal/cq"
	"mpclogic/internal/hypercube"
	"mpclogic/internal/mpc"
	"mpclogic/internal/rel"
	"mpclogic/internal/workload"
)

// TestByzantineMatrixAcrossPrograms machine-checks the routing-
// integrity invariant on real algorithms: for every plan in the
// seeded ByzantineFaultMatrix, a run either produces byte-identical
// output and logical trace to the fault-free reference (transient
// corruption: audited, quarantined, recovered) or fails with a typed
// *mpc.RoutingIntegrityError naming an accused server (persistent
// corruption: detected, never silently absorbed). No third outcome —
// in particular no divergent-but-successful run — is allowed, across
// the one-round HyperCube triangle, the cascade triangle, GYM, and
// the incremental ΔTC program.
func TestByzantineMatrixAcrossPrograms(t *testing.T) {
	d := rel.NewDict()
	triQ := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	triInst := workload.TriangleSkewFree(40)
	graph := workload.RandomGraph(20, 32, 9)
	grid, err := hypercube.NewOptimalGrid(triQ, 6, 17)
	if err != nil {
		t.Fatal(err)
	}

	runDelta := func(p int, opts ...mpc.Option) (*mpc.Cluster, error) {
		c := mpc.NewCluster(p, opts...)
		batches := chunkFacts(graph.Facts(), 3)
		if err := c.RunDelta(DeltaTCProgram(p, 11), batches[0]); err != nil {
			return c, err
		}
		for _, b := range batches[1:] {
			if err := c.ApplyUpdate(b); err != nil {
				return c, err
			}
		}
		return c, nil
	}

	programs := []struct {
		name string
		p    int
		run  func(opts ...mpc.Option) (*mpc.Cluster, error)
	}{
		{"hypercube-triangle", grid.P(), func(opts ...mpc.Option) (*mpc.Cluster, error) {
			c := mpc.NewCluster(grid.P(), opts...)
			c.LoadRoundRobin(triInst)
			return c, c.Run(hypercube.HyperCubeRound(grid))
		}},
		{"cascade-triangle", 6, func(opts ...mpc.Option) (*mpc.Cluster, error) {
			c, _, err := CascadeTriangle(6, triInst, 11, opts...)
			return c, err
		}},
		{"gym-triangle", 6, func(opts ...mpc.Option) (*mpc.Cluster, error) {
			c, _, _, err := GYM(triQ, 6, triInst, 3, opts...)
			return c, err
		}},
		{"delta-tc", 6, func(opts ...mpc.Option) (*mpc.Cluster, error) {
			return runDelta(6, opts...)
		}},
	}

	for _, prog := range programs {
		prog := prog
		t.Run(prog.name, func(t *testing.T) {
			base, err := prog.run()
			if err != nil {
				t.Fatalf("fault-free run: %v", err)
			}
			wantOut := base.Output().String()
			wantTrace := base.LogicalTrace()

			matrix := mpc.ByzantineFaultMatrix(2026, base.Rounds(), prog.p)
			if testing.Short() {
				matrix = matrix[:2]
			}
			quarantined, accusations := 0, 0
			for _, np := range matrix {
				c, err := prog.run(mpc.WithByzantinePlan(np.Plan))
				if err != nil {
					var rie *mpc.RoutingIntegrityError
					if !errors.As(err, &rie) {
						t.Errorf("%s failed with an untyped error: %v", np.Name, err)
						continue
					}
					if np.Recoverable {
						t.Errorf("recoverable plan %s escalated to an accusation: %v", np.Name, err)
					}
					if rie.Accused < 0 || rie.Accused >= prog.p {
						t.Errorf("%s accused out-of-range server %d", np.Name, rie.Accused)
					}
					accusations++
					continue
				}
				if got := c.Output().String(); got != wantOut {
					t.Errorf("%s: run succeeded with divergent output", np.Name)
				}
				if got := c.LogicalTrace(); got != wantTrace {
					t.Errorf("%s: run succeeded with divergent logical trace:\n got %q\nwant %q", np.Name, got, wantTrace)
				}
				quarantined += c.RecoveryTotals().Quarantined
			}
			// The invariant must not hold vacuously: across the full
			// matrix, at least one transient plan must have actually been
			// quarantined and at least one persistent plan accused.
			if !testing.Short() {
				if quarantined == 0 {
					t.Errorf("matrix fired no quarantines")
				}
				if accusations == 0 {
					t.Errorf("matrix produced no routing-integrity accusation")
				}
			}
		})
	}
}
