package cq

import (
	"fmt"
	"sort"
	"strings"

	"mpclogic/internal/rel"
)

// CQ is a conjunctive query, possibly extended with inequalities
// (CQ≠) and negated atoms (CQ¬):
//
//	Head(x̄) ← R1(ȳ1), …, Rm(ȳm), ¬S1(z̄1), …, x ≠ y, …
//
// Safety (checked by Validate): every head variable and every variable
// in a negated atom or inequality occurs in some positive body atom.
type CQ struct {
	Head  Atom
	Body  []Atom    // positive atoms
	Neg   []Atom    // negated atoms
	Diseq [][2]Term // inequalities x ≠ y
}

// Vars returns vars(Q): all variables of the query (head, body,
// negated atoms, inequalities), in deterministic (sorted) order.
func (q *CQ) Vars() []string {
	seen := map[string]bool{}
	add := func(ts []Term) {
		for _, t := range ts {
			if t.IsVar() {
				seen[t.Var] = true
			}
		}
	}
	add(q.Head.Args)
	for _, a := range q.Body {
		add(a.Args)
	}
	for _, a := range q.Neg {
		add(a.Args)
	}
	for _, d := range q.Diseq {
		add(d[:])
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// BodyVars returns the variables occurring in positive body atoms.
func (q *CQ) BodyVars() map[string]bool {
	seen := map[string]bool{}
	for _, a := range q.Body {
		for _, t := range a.Args {
			if t.IsVar() {
				seen[t.Var] = true
			}
		}
	}
	return seen
}

// Constants returns the constants appearing anywhere in the query.
func (q *CQ) Constants() rel.ValueSet {
	out := make(rel.ValueSet)
	add := func(ts []Term) {
		for _, t := range ts {
			if !t.IsVar() {
				out.Add(t.Const)
			}
		}
	}
	add(q.Head.Args)
	for _, a := range q.Body {
		add(a.Args)
	}
	for _, a := range q.Neg {
		add(a.Args)
	}
	for _, d := range q.Diseq {
		add(d[:])
	}
	return out
}

// Validate checks well-formedness: nonempty body, safety of head,
// negated atoms, and inequalities.
func (q *CQ) Validate() error {
	if len(q.Body) == 0 {
		return fmt.Errorf("cq: query %s has empty body", q.Head.Rel)
	}
	bv := q.BodyVars()
	for _, t := range q.Head.Args {
		if t.IsVar() && !bv[t.Var] {
			return fmt.Errorf("cq: head variable %s not in body", t.Var)
		}
	}
	for _, a := range q.Neg {
		for _, t := range a.Args {
			if t.IsVar() && !bv[t.Var] {
				return fmt.Errorf("cq: variable %s of negated atom %s not in positive body", t.Var, a)
			}
		}
	}
	for _, d := range q.Diseq {
		for _, t := range d {
			if t.IsVar() && !bv[t.Var] {
				return fmt.Errorf("cq: inequality variable %s not in positive body", t.Var)
			}
		}
	}
	return nil
}

// HasNegation reports whether the query has negated atoms (CQ¬).
func (q *CQ) HasNegation() bool { return len(q.Neg) > 0 }

// HasDiseq reports whether the query has inequalities (CQ≠).
func (q *CQ) HasDiseq() bool { return len(q.Diseq) > 0 }

// IsFull reports whether Q is a full query: every variable of the body
// occurs in the head.
func (q *CQ) IsFull() bool {
	hv := map[string]bool{}
	for _, t := range q.Head.Args {
		if t.IsVar() {
			hv[t.Var] = true
		}
	}
	for v := range q.BodyVars() {
		if !hv[v] {
			return false
		}
	}
	return true
}

// IsBoolean reports whether the head has no arguments.
func (q *CQ) IsBoolean() bool { return len(q.Head.Args) == 0 }

// SelfJoinFree reports whether no relation name repeats in the positive
// body.
func (q *CQ) SelfJoinFree() bool {
	seen := map[string]bool{}
	for _, a := range q.Body {
		if seen[a.Rel] {
			return false
		}
		seen[a.Rel] = true
	}
	return true
}

// Schema returns the input schema of the query (relations of body and
// negated atoms with their arities); it errs on inconsistent arities.
func (q *CQ) Schema() (rel.Schema, error) {
	s := rel.Schema{}
	for _, a := range q.Body {
		if err := s.Declare(a.Rel, len(a.Args)); err != nil {
			return nil, err
		}
	}
	for _, a := range q.Neg {
		if err := s.Declare(a.Rel, len(a.Args)); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Clone returns a deep copy of the query.
func (q *CQ) Clone() *CQ {
	out := &CQ{Head: cloneAtom(q.Head)}
	for _, a := range q.Body {
		out.Body = append(out.Body, cloneAtom(a))
	}
	for _, a := range q.Neg {
		out.Neg = append(out.Neg, cloneAtom(a))
	}
	out.Diseq = append(out.Diseq, q.Diseq...)
	return out
}

func cloneAtom(a Atom) Atom {
	args := make([]Term, len(a.Args))
	copy(args, a.Args)
	return Atom{Rel: a.Rel, Args: args}
}

// String renders the query in rule syntax.
func (q *CQ) String() string {
	var b strings.Builder
	b.WriteString(q.Head.String())
	b.WriteString(" :- ")
	first := true
	for _, a := range q.Body {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(a.String())
	}
	for _, a := range q.Neg {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString("not ")
		b.WriteString(a.String())
	}
	for _, d := range q.Diseq {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(d[0].String())
		b.WriteString(" != ")
		b.WriteString(d[1].String())
	}
	return b.String()
}

// UCQ is a union of conjunctive queries with a common head relation.
type UCQ struct {
	Disjuncts []*CQ
}

// Validate checks each disjunct and that head relations/arities agree.
func (u *UCQ) Validate() error {
	if len(u.Disjuncts) == 0 {
		return fmt.Errorf("cq: empty union")
	}
	h := u.Disjuncts[0].Head
	for _, q := range u.Disjuncts {
		if err := q.Validate(); err != nil {
			return err
		}
		if q.Head.Rel != h.Rel || len(q.Head.Args) != len(h.Args) {
			return fmt.Errorf("cq: union disjuncts disagree on head")
		}
	}
	return nil
}

// HasNegation reports whether any disjunct has negated atoms.
func (u *UCQ) HasNegation() bool {
	for _, q := range u.Disjuncts {
		if q.HasNegation() {
			return true
		}
	}
	return false
}

// String renders the union, one disjunct per line.
func (u *UCQ) String() string {
	parts := make([]string, len(u.Disjuncts))
	for i, q := range u.Disjuncts {
		parts[i] = q.String()
	}
	return strings.Join(parts, "\n")
}
