package cq

import (
	"fmt"

	"mpclogic/internal/lp"
)

// This file computes the fractional edge packing and cover numbers of a
// query's hypergraph. Beame, Koutris and Suciu showed that a one-round
// MPC algorithm can achieve maximum load O(m/p^{1/τ*}) on skew-free
// data, where τ* is the optimal fractional edge packing value, and that
// this is tight (Section 3.1 of the paper; τ* = 3/2 for the triangle).

// PackingResult carries the optimal edge weights (parallel to q.Body)
// and the optimum value.
type PackingResult struct {
	Weights []float64
	Value   float64
}

// FractionalEdgePacking solves
//
//	max Σ_e u_e   s.t.  Σ_{e ∋ x} u_e ≤ 1 for every variable x, u ≥ 0.
//
// Its optimum is τ*. Atoms without variables are rejected: they do not
// constrain any vertex and make the packing unbounded.
func FractionalEdgePacking(q *CQ) (PackingResult, error) {
	h := HypergraphOf(q)
	for i, e := range h.Edges {
		if len(e) == 0 {
			return PackingResult{}, fmt.Errorf("cq: atom %d (%s) has no variables; edge packing undefined", i, q.Body[i].Rel)
		}
	}
	nE := len(h.Edges)
	nV := len(h.Vertices)
	vIdx := map[string]int{}
	for i, v := range h.Vertices {
		vIdx[v] = i
	}
	c := make([]float64, nE)
	for j := range c {
		c[j] = 1
	}
	a := make([][]float64, nV)
	b := make([]float64, nV)
	for i := range a {
		a[i] = make([]float64, nE)
		b[i] = 1
	}
	for j, e := range h.Edges {
		for _, v := range e {
			a[vIdx[v]][j] = 1
		}
	}
	res, err := lp.Maximize(c, a, b)
	if err != nil {
		return PackingResult{}, fmt.Errorf("cq: edge packing LP: %w", err)
	}
	return PackingResult{Weights: res.X, Value: res.Value}, nil
}

// FractionalEdgeCover solves
//
//	min Σ_e w_e   s.t.  Σ_{e ∋ x} w_e ≥ 1 for every variable x, w ≥ 0.
//
// Its optimum ρ* bounds worst-case join output size (AGM bound) by
// m^{ρ*}.
func FractionalEdgeCover(q *CQ) (PackingResult, error) {
	h := HypergraphOf(q)
	nE := len(h.Edges)
	nV := len(h.Vertices)
	vIdx := map[string]int{}
	for i, v := range h.Vertices {
		vIdx[v] = i
	}
	// Every vertex must be coverable.
	covered := make([]bool, nV)
	for _, e := range h.Edges {
		for _, v := range e {
			covered[vIdx[v]] = true
		}
	}
	for i, ok := range covered {
		if !ok {
			return PackingResult{}, fmt.Errorf("cq: variable %s not coverable", h.Vertices[i])
		}
	}
	c := make([]float64, nE)
	for j := range c {
		c[j] = 1
	}
	a := make([][]float64, nV)
	b := make([]float64, nV)
	for i := range a {
		a[i] = make([]float64, nE)
		b[i] = 1
	}
	for j, e := range h.Edges {
		for _, v := range e {
			a[vIdx[v]][j] = 1
		}
	}
	res, err := lp.MinimizeCover(c, a, b)
	if err != nil {
		return PackingResult{}, fmt.Errorf("cq: edge cover LP: %w", err)
	}
	return PackingResult{Weights: res.X, Value: res.Value}, nil
}

// ShareExponents solves the Shares/HyperCube exponent LP: maximize t
// subject to Σ_{x ∈ vars(r)} e_x ≥ t for every body atom r and
// Σ_x e_x ≤ 1, e ≥ 0. With equal relation sizes the optimal maximum
// load is m/p^t, and LP duality gives t = 1/τ*.
//
// The returned map assigns each variable its exponent e_x; shares are
// then α_x = p^{e_x} (see the hypercube package for integer rounding).
func ShareExponents(q *CQ) (map[string]float64, float64, error) {
	h := HypergraphOf(q)
	for i, e := range h.Edges {
		if len(e) == 0 {
			return nil, 0, fmt.Errorf("cq: atom %d (%s) has no variables", i, q.Body[i].Rel)
		}
	}
	nV := len(h.Vertices)
	vIdx := map[string]int{}
	for i, v := range h.Vertices {
		vIdx[v] = i
	}
	// Variables: x = (t, e_1 … e_nV).
	n := 1 + nV
	c := make([]float64, n)
	c[0] = 1
	var a [][]float64
	var b []float64
	// t − Σ_{x ∈ e} e_x ≤ 0 per edge.
	for _, e := range h.Edges {
		row := make([]float64, n)
		row[0] = 1
		for _, v := range e {
			row[1+vIdx[v]] = -1
		}
		a = append(a, row)
		b = append(b, 0)
	}
	// Σ e_x ≤ 1.
	row := make([]float64, n)
	for i := 0; i < nV; i++ {
		row[1+i] = 1
	}
	a = append(a, row)
	b = append(b, 1)

	res, err := lp.Maximize(c, a, b)
	if err != nil {
		return nil, 0, fmt.Errorf("cq: share exponent LP: %w", err)
	}
	out := make(map[string]float64, nV)
	for v, i := range vIdx {
		out[v] = res.X[1+i]
	}
	return out, res.X[0], nil
}
