package cq_test

import (
	"fmt"

	"mpclogic/internal/cq"
	"mpclogic/internal/rel"
)

// Parse a conjunctive query and evaluate it on a small instance.
func ExampleEvaluate() {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, z) :- R(x, y), S(y, z)")
	i := rel.MustInstance(d, "R(a,b)", "S(b,c)", "R(a,a)")
	fmt.Println(cq.Output(q, i).StringWith(d))
	// Output: {H(a,c)}
}

// Minimal valuations (Definition 4.4 of the paper): the valuation
// collapsing all variables of Example 4.5 is minimal, the two-value
// one is not.
func ExampleIsMinimal() {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, z) :- R(x, y), R(y, z), R(x, x)")
	a, b := d.Value("a"), d.Value("b")

	v1 := cq.Valuation{"x": a, "y": b, "z": a}
	v2 := cq.Valuation{"x": a, "y": a, "z": a}
	m1, _ := cq.IsMinimal(q, v1)
	m2, _ := cq.IsMinimal(q, v2)
	fmt.Println(m1, m2)
	// Output: false true
}

// Classic containment: specializing a variable makes the query
// smaller.
func ExampleContained() {
	d := rel.NewDict()
	spec := cq.MustParse(d, "H(x) :- R(x, x)")
	gen := cq.MustParse(d, "H(x) :- R(x, y)")
	a, _ := cq.Contained(spec, gen)
	b, _ := cq.Contained(gen, spec)
	fmt.Println(a, b)
	// Output: true false
}

// The triangle query's fractional edge packing value τ* = 3/2 gives
// the HyperCube load exponent 1/τ* = 2/3 (Section 3.1).
func ExampleFractionalEdgePacking() {
	d := rel.NewDict()
	q := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	pack, _ := cq.FractionalEdgePacking(q)
	fmt.Printf("τ* = %.1f, load = m/p^%.3f\n", pack.Value, 1/pack.Value)
	// Output: τ* = 1.5, load = m/p^0.667
}

// GYO detects acyclicity and produces the join tree Yannakakis needs.
func ExampleGYO() {
	d := rel.NewDict()
	path := cq.MustParse(d, "H(x, w) :- R(x, y), S(y, z), T(z, w)")
	tri := cq.MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	_, okPath := cq.GYO(path)
	_, okTri := cq.GYO(tri)
	fmt.Println(okPath, okTri)
	// Output: true false
}
