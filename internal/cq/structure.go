package cq

import "fmt"

// This file implements structural analysis of CQ bodies: the query
// hypergraph, connectedness (Section 5.3 uses connectedness of rule
// bodies), and the GYO ear-removal test for acyclicity, which also
// produces the join tree consumed by Yannakakis' algorithm and GYM
// (Section 3.2).

// Hypergraph is the query hypergraph: vertices are variables, edges are
// the variable sets of the body atoms (parallel to q.Body by index).
type Hypergraph struct {
	Vertices []string
	Edges    [][]string
}

// HypergraphOf builds the hypergraph of the positive body of q.
func HypergraphOf(q *CQ) *Hypergraph {
	h := &Hypergraph{}
	seen := map[string]bool{}
	for _, a := range q.Body {
		vs := a.Vars()
		h.Edges = append(h.Edges, vs)
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				h.Vertices = append(h.Vertices, v)
			}
		}
	}
	return h
}

// IsConnected reports whether the positive body atoms form a connected
// graph under the shares-a-variable relation. Queries with a single
// atom are connected; atoms without variables are isolated, so any
// query containing one (alongside other atoms) is disconnected. This
// is the notion behind connected Datalog rules (Section 5.3).
func IsConnected(q *CQ) bool {
	n := len(q.Body)
	if n <= 1 {
		return true
	}
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		vi := map[string]bool{}
		for _, v := range q.Body[i].Vars() {
			vi[v] = true
		}
		for j := i + 1; j < n; j++ {
			share := false
			for _, v := range q.Body[j].Vars() {
				if vi[v] {
					share = true
					break
				}
			}
			if share {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[u] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// JoinTree is a rooted forest over the body atoms of an acyclic query,
// produced by GYO ear removal. Parent[i] is the index of atom i's
// parent (-1 for roots). Order lists atom indices in elimination order:
// every atom appears before its parent, so a reverse scan is a
// top-down traversal.
type JoinTree struct {
	Atoms  []Atom
	Parent []int
	Order  []int
}

// Children returns, for each atom index, its child indices.
func (jt *JoinTree) Children() [][]int {
	out := make([][]int, len(jt.Atoms))
	for i, p := range jt.Parent {
		if p >= 0 {
			out[p] = append(out[p], i)
		}
	}
	return out
}

// Depth returns the height of the deepest node (roots have depth 0).
func (jt *JoinTree) Depth() int {
	depth := make([]int, len(jt.Atoms))
	max := 0
	// Reverse elimination order visits parents before children.
	for k := len(jt.Order) - 1; k >= 0; k-- {
		i := jt.Order[k]
		if p := jt.Parent[i]; p >= 0 {
			depth[i] = depth[p] + 1
			if depth[i] > max {
				max = depth[i]
			}
		}
	}
	return max
}

// GYO runs the Graham/Yu-Özsoyoğlu ear-removal algorithm on the body
// of q. It returns a join tree and true when the query is acyclic, or
// (nil, false) otherwise.
//
// An atom A is an ear when the variables it shares with the remaining
// atoms are all contained in a single remaining atom B (the witness);
// atoms sharing no variables with the rest are ears with any witness.
func GYO(q *CQ) (*JoinTree, bool) {
	n := len(q.Body)
	if n == 0 {
		return nil, false
	}
	jt := &JoinTree{
		Atoms:  append([]Atom(nil), q.Body...),
		Parent: make([]int, n),
	}
	for i := range jt.Parent {
		jt.Parent[i] = -1
	}
	alive := make([]bool, n)
	aliveCount := n
	for i := range alive {
		alive[i] = true
	}
	varsOf := make([]map[string]bool, n)
	for i, a := range q.Body {
		varsOf[i] = map[string]bool{}
		for _, v := range a.Vars() {
			varsOf[i][v] = true
		}
	}

	for aliveCount > 1 {
		removed := false
		for i := 0; i < n && !removed; i++ {
			if !alive[i] {
				continue
			}
			// Variables atom i shares with any other alive atom.
			shared := map[string]bool{}
			for j := 0; j < n; j++ {
				if j == i || !alive[j] {
					continue
				}
				for v := range varsOf[j] {
					if varsOf[i][v] {
						shared[v] = true
					}
				}
			}
			// Find a witness containing all shared variables.
			for j := 0; j < n; j++ {
				if j == i || !alive[j] {
					continue
				}
				ok := true
				for v := range shared {
					if !varsOf[j][v] {
						ok = false
						break
					}
				}
				if ok {
					jt.Parent[i] = j
					jt.Order = append(jt.Order, i)
					alive[i] = false
					aliveCount--
					removed = true
					break
				}
			}
		}
		if !removed {
			return nil, false // cyclic
		}
	}
	for i := 0; i < n; i++ {
		if alive[i] {
			jt.Order = append(jt.Order, i)
		}
	}
	return jt, true
}

// IsAcyclic reports whether the positive body of q is α-acyclic.
func IsAcyclic(q *CQ) bool {
	_, ok := GYO(q)
	return ok
}

// Validate checks internal consistency of a join tree (used by tests
// and by GYM before executing a plan).
func (jt *JoinTree) Validate() error {
	n := len(jt.Atoms)
	if len(jt.Parent) != n || len(jt.Order) != n {
		return fmt.Errorf("cq: join tree shape mismatch")
	}
	seen := make([]bool, n)
	for _, i := range jt.Order {
		if i < 0 || i >= n || seen[i] {
			return fmt.Errorf("cq: join tree order is not a permutation")
		}
		seen[i] = true
		if p := jt.Parent[i]; p >= 0 && seen[p] {
			return fmt.Errorf("cq: atom %d eliminated after its parent", i)
		}
	}
	return nil
}
