package cq

import (
	"fmt"
	"sort"
	"strings"

	"mpclogic/internal/rel"
)

// Valuation is a total function from variables to domain values
// (Section 2). Only the variables of the query at hand are bound.
type Valuation map[string]rel.Value

// Clone returns a copy of the valuation.
func (v Valuation) Clone() Valuation {
	out := make(Valuation, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

// ApplyTerm maps a term under the valuation; it panics on an unbound
// variable, which is a programming error given query safety.
func (v Valuation) ApplyTerm(t Term) rel.Value {
	if !t.IsVar() {
		return t.Const
	}
	val, ok := v[t.Var]
	if !ok {
		panic(fmt.Sprintf("cq: unbound variable %s", t.Var))
	}
	return val
}

// Apply instantiates an atom into a fact.
func (v Valuation) Apply(a Atom) rel.Fact {
	t := make(rel.Tuple, len(a.Args))
	for i, arg := range a.Args {
		t[i] = v.ApplyTerm(arg)
	}
	return rel.Fact{Rel: a.Rel, Tuple: t}
}

// RequiredFacts returns V(body_Q), the facts required by V (Section 2).
func (v Valuation) RequiredFacts(q *CQ) []rel.Fact {
	seen := map[string]bool{}
	out := make([]rel.Fact, 0, len(q.Body))
	for _, a := range q.Body {
		f := v.Apply(a)
		k := f.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, f)
		}
	}
	rel.SortFacts(out)
	return out
}

// RequiredInstance returns V(body_Q) as an instance.
func (v Valuation) RequiredInstance(q *CQ) *rel.Instance {
	return rel.FromFacts(v.RequiredFacts(q)...)
}

// Derives returns V(head_Q), the fact derived by V.
func (v Valuation) Derives(q *CQ) rel.Fact { return v.Apply(q.Head) }

// SatisfiesDiseq reports whether V satisfies every inequality of Q.
func (v Valuation) SatisfiesDiseq(q *CQ) bool {
	for _, d := range q.Diseq {
		if v.ApplyTerm(d[0]) == v.ApplyTerm(d[1]) {
			return false
		}
	}
	return true
}

// Satisfies reports whether V satisfies Q on I: all required facts are
// in I, no negated fact is in I, and all inequalities hold.
func (v Valuation) Satisfies(q *CQ, i *rel.Instance) bool {
	if !v.SatisfiesDiseq(q) {
		return false
	}
	for _, a := range q.Body {
		if !i.Contains(v.Apply(a)) {
			return false
		}
	}
	for _, a := range q.Neg {
		if i.Contains(v.Apply(a)) {
			return false
		}
	}
	return true
}

// Equal reports whether v and w bind the same variables to the same
// values.
func (v Valuation) Equal(w Valuation) bool {
	if len(v) != len(w) {
		return false
	}
	for k, val := range v {
		if wv, ok := w[k]; !ok || wv != val {
			return false
		}
	}
	return true
}

// String renders the valuation deterministically.
func (v Valuation) String() string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s↦%d", k, int64(v[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// AllValuations enumerates every total function from vars to universe
// and calls fn with each; enumeration stops early if fn returns false.
// The valuation passed to fn is reused across calls; clone it to keep.
func AllValuations(vars []string, universe []rel.Value, fn func(Valuation) bool) {
	if len(universe) == 0 && len(vars) > 0 {
		return
	}
	v := make(Valuation, len(vars))
	var recur func(i int) bool
	recur = func(i int) bool {
		if i == len(vars) {
			return fn(v)
		}
		for _, val := range universe {
			v[vars[i]] = val
			if !recur(i + 1) {
				return false
			}
		}
		return true
	}
	recur(0)
}
