package cq

import (
	"testing"

	"mpclogic/internal/rel"
)

func TestIsAcyclic(t *testing.T) {
	d := rel.NewDict()
	cases := []struct {
		src  string
		want bool
	}{
		{"H(x, y) :- R(x, y)", true},
		{"H(x, z) :- R(x, y), S(y, z)", true},
		{"H(x, w) :- R(x, y), S(y, z), T(z, w)", true},
		{"H(x, y, z) :- R(x, y), S(y, z), T(z, x)", false},         // triangle
		{"H(a, c) :- R(a, b), S(b, c), T(c, dd), U(dd, a)", false}, // 4-cycle
		{"H(x) :- R(x, y), S(x, z), T(x, w)", true},                // star
		{"H(x, y, z) :- R(x, y, z), S(x, y), T(y, z)", true},       // big atom covers
		{"H(x) :- R(x), S(y)", true},                               // disconnected but acyclic
	}
	for _, c := range cases {
		q := MustParse(d, c.src)
		if got := IsAcyclic(q); got != c.want {
			t.Errorf("IsAcyclic(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestGYOJoinTree(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, w) :- R(x, y), S(y, z), T(z, w)")
	jt, ok := GYO(q)
	if !ok {
		t.Fatal("path query reported cyclic")
	}
	if err := jt.Validate(); err != nil {
		t.Fatal(err)
	}
	roots := 0
	for _, p := range jt.Parent {
		if p == -1 {
			roots++
		}
	}
	if roots != 1 {
		t.Errorf("connected acyclic query should give one root, got %d", roots)
	}
	if jt.Depth() < 1 || jt.Depth() > 2 {
		t.Errorf("path join tree depth = %d", jt.Depth())
	}
	kids := jt.Children()
	total := 0
	for _, k := range kids {
		total += len(k)
	}
	if total != 2 {
		t.Errorf("3-node tree should have 2 edges, got %d", total)
	}
}

func TestGYOCyclicReturnsNil(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	if jt, ok := GYO(q); ok || jt != nil {
		t.Errorf("triangle should have no join tree")
	}
}

func TestIsConnected(t *testing.T) {
	d := rel.NewDict()
	cases := []struct {
		src  string
		want bool
	}{
		{"H(x) :- R(x)", true},
		{"H(x, z) :- R(x, y), S(y, z)", true},
		{"H(x) :- R(x), S(y)", false},
		{"H(x, y, z) :- R(x, y), S(y, z), T(z, x)", true},
		// The QNT-style rule with an unconnected guard atom.
		{"H(x, y) :- E(x, y), T(u, v, w)", false},
	}
	for _, c := range cases {
		q := MustParse(d, c.src)
		if got := IsConnected(q); got != c.want {
			t.Errorf("IsConnected(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestHypergraphOf(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	h := HypergraphOf(q)
	if len(h.Vertices) != 3 || len(h.Edges) != 3 {
		t.Errorf("hypergraph shape %d/%d", len(h.Vertices), len(h.Edges))
	}
	for _, e := range h.Edges {
		if len(e) != 2 {
			t.Errorf("edge size %d", len(e))
		}
	}
}

func TestQueryStructurePredicates(t *testing.T) {
	d := rel.NewDict()
	full := MustParse(d, "H(x, y) :- R(x, y)")
	if !full.IsFull() {
		t.Errorf("full query not recognized")
	}
	proj := MustParse(d, "H(x) :- R(x, y)")
	if proj.IsFull() {
		t.Errorf("projection recognized as full")
	}
	sjf := MustParse(d, "H(x, z) :- R(x, y), S(y, z)")
	if !sjf.SelfJoinFree() {
		t.Errorf("self-join-free not recognized")
	}
	sj := MustParse(d, "H(x, z) :- R(x, y), R(y, z)")
	if sj.SelfJoinFree() {
		t.Errorf("self-join not recognized")
	}
}
