package cq

import (
	"fmt"

	"mpclogic/internal/rel"
)

// This file implements the bounded counterexample machinery for
// conjunctive queries with negation (CQ¬). Containment for CQ¬ is
// coNEXPTIME-complete (Theorem 4.9 route, via [Geck et al., ICDT 2016]),
// so any exact procedure is exponential; we provide exhaustive search
// over instances with a bounded universe, which is exact once the
// universe (and hence instance space) is large enough for the schema at
// hand, and is precisely the shape of procedure the upper-bound proofs
// describe.

// MaxInstanceSpace bounds the number of candidate facts the exhaustive
// searches are willing to enumerate subsets of (2^MaxInstanceSpace
// instances).
const MaxInstanceSpace = 24

// EachInstance enumerates every instance over the schema with values
// from universe, calling fn for each; enumeration stops when fn
// returns false. It returns an error when the instance space exceeds
// 2^MaxInstanceSpace.
func EachInstance(schema rel.Schema, universe []rel.Value, fn func(*rel.Instance) bool) error {
	facts := schema.AllFacts(universe)
	if len(facts) > MaxInstanceSpace {
		return fmt.Errorf("cq: instance space 2^%d too large (max 2^%d); shrink the universe", len(facts), MaxInstanceSpace)
	}
	n := uint(len(facts))
	for mask := uint64(0); mask < 1<<n; mask++ {
		inst := rel.NewInstance()
		for b := uint(0); b < n; b++ {
			if mask&(1<<b) != 0 {
				inst.Add(facts[b])
			}
		}
		if !fn(inst) {
			return nil
		}
	}
	return nil
}

// ContainedNegBounded searches for a counterexample to Q ⊆ Q′ over all
// instances whose values are drawn from a universe of the given size.
// It returns (true, nil) when no counterexample exists within the
// bound, and (false, I) with a witness instance otherwise. Queries may
// freely use negation and inequalities; constants in the queries are
// automatically included in the universe.
func ContainedNegBounded(q, qp *CQ, universeSize int) (bool, *rel.Instance, error) {
	schema, err := unionSchema(q, qp)
	if err != nil {
		return false, nil, err
	}
	universe := buildUniverse(universeSize, q, qp)
	var witness *rel.Instance
	err = EachInstance(schema, universe, func(i *rel.Instance) bool {
		qi := Output(q, i)
		qpi := Output(qp, i)
		if !qi.SubsetOf(qpi) {
			witness = i
			return false
		}
		return true
	})
	if err != nil {
		return false, nil, err
	}
	return witness == nil, witness, nil
}

// unionSchema merges the input schemas of the queries.
func unionSchema(qs ...*CQ) (rel.Schema, error) {
	s := rel.Schema{}
	for _, q := range qs {
		sub, err := q.Schema()
		if err != nil {
			return nil, err
		}
		for r, a := range sub {
			if err := s.Declare(r, a); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// buildUniverse returns a universe of at least `size` fresh values plus
// every constant mentioned by the queries.
func buildUniverse(size int, qs ...*CQ) []rel.Value {
	consts := make(rel.ValueSet)
	for _, q := range qs {
		consts.AddAll(q.Constants())
	}
	out := consts.Sorted()
	next := rel.Value(0)
	for len(out) < size+len(consts) {
		if !consts.Contains(next) {
			out = append(out, next)
		}
		next++
	}
	return out
}
