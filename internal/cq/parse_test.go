package cq

import (
	"strings"
	"testing"

	"mpclogic/internal/rel"
)

func TestParseBasic(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, z) :- R(x, y), R(y, z), S(z, x).")
	if q.Head.Rel != "H" || len(q.Head.Args) != 2 {
		t.Fatalf("head = %v", q.Head)
	}
	if len(q.Body) != 3 || q.Body[2].Rel != "S" {
		t.Fatalf("body = %v", q.Body)
	}
	if got := q.Vars(); len(got) != 3 {
		t.Errorf("vars = %v", got)
	}
	if q.HasNegation() || q.HasDiseq() {
		t.Errorf("unexpected extensions")
	}
}

func TestParseArrowVariants(t *testing.T) {
	d := rel.NewDict()
	q1 := MustParse(d, "H(x) :- R(x)")
	q2 := MustParse(d, "H(x) <- R(x)")
	if q1.String() != q2.String() {
		t.Errorf("arrow variants differ: %q vs %q", q1, q2)
	}
}

func TestParseNegationAndDiseq(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x,y,z) :- E(x,y), E(y,z), not E(z,x), x != y, y != z, z != x.")
	if len(q.Body) != 2 || len(q.Neg) != 1 || len(q.Diseq) != 3 {
		t.Fatalf("parsed %d body, %d neg, %d diseq", len(q.Body), len(q.Neg), len(q.Diseq))
	}
	if q.Neg[0].Rel != "E" {
		t.Errorf("neg atom = %v", q.Neg[0])
	}
	// "!" negation prefix too.
	q2 := MustParse(d, "H(x) :- R(x), !S(x)")
	if len(q2.Neg) != 1 {
		t.Errorf("bang negation not parsed: %v", q2)
	}
}

func TestParseConstants(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x) :- R(x, 'alice'), S(x, 42)")
	if q.Body[0].Args[1].IsVar() {
		t.Errorf("quoted constant parsed as variable")
	}
	if v, _ := d.Lookup("alice"); q.Body[0].Args[1].Const != v {
		t.Errorf("constant not interned")
	}
	if q.Body[1].Args[1].Const != 42 {
		t.Errorf("numeric constant = %v", q.Body[1].Args[1])
	}
}

func TestParseNullaryHead(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H() :- S(x), R(x, x), T(x)")
	if !q.IsBoolean() {
		t.Errorf("nullary head not boolean")
	}
}

func TestParseErrors(t *testing.T) {
	d := rel.NewDict()
	bad := []string{
		"",
		"H(x)",                   // no body
		"H(x) :- ",               // empty body
		"H(x) :- R(y)",           // unsafe head
		"H(x) :- R(x), not S(y)", // unsafe negation
		"H(x) :- R(x), x != y",   // unsafe inequality
		"H(x :- R(x)",            // malformed
		"H(x) :- R(x",            // unclosed
	}
	for _, src := range bad {
		if _, err := Parse(d, src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseUCQ(t *testing.T) {
	d := rel.NewDict()
	u := MustParseUCQ(d, "H(x) :- R(x, x)\nH(y) :- S(y)")
	if len(u.Disjuncts) != 2 {
		t.Fatalf("disjuncts = %d", len(u.Disjuncts))
	}
	if _, err := ParseUCQ(d, "H(x) :- R(x,x)\nG(y) :- S(y)"); err == nil {
		t.Errorf("mismatched heads accepted")
	}
	if _, err := ParseUCQ(d, "  \n "); err == nil {
		t.Errorf("empty union accepted")
	}
}

func TestStringRoundTrip(t *testing.T) {
	d := rel.NewDict()
	srcs := []string{
		"H(x, z) :- R(x, y), R(y, z), S(z, x)",
		"H(x) :- E(x, y), not E(y, x), x != y",
		"H() :- R(x, 1)",
	}
	for _, src := range srcs {
		q := MustParse(d, src)
		q2 := MustParse(d, q.String())
		if q.String() != q2.String() {
			t.Errorf("round trip changed %q -> %q", q.String(), q2.String())
		}
	}
}

func TestNotPrefixOfIdentifier(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x) :- notable(x)")
	if len(q.Neg) != 0 || len(q.Body) != 1 || q.Body[0].Rel != "notable" {
		t.Errorf("'notable' mangled: %v", q)
	}
}

func TestValidateSchemaConflict(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x) :- R(x), R(x, x)")
	if _, err := q.Schema(); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Errorf("conflicting arities accepted: %v", err)
	}
}

// Robustness: the parser must reject or accept arbitrary byte soup
// without panicking.
func TestParseNoPanicOnGarbage(t *testing.T) {
	d := rel.NewDict()
	inputs := []string{
		"", ")", "((((", "H(x :-", "H(x) :- R((", "¬¬¬", "H(x) :- R(x))))",
		"H(x) :- R(x), , S(x)", "H(x) :- R(x) S(x)", "'''", "H('a') :- R('a National",
		"H(x) :- R(x), x != ", "H(x) :- not", "-(x) :- R(x)", "H(-1) :- R(-1)",
		"H(\x00) :- R(\x00)", "H(x) :- R(x), !",
	}
	// Also pseudo-random byte strings.
	seed := uint64(12345)
	for k := 0; k < 200; k++ {
		b := make([]byte, k%37)
		for i := range b {
			seed = seed*6364136223846793005 + 1442695040888963407
			b[i] = byte(seed >> 33)
		}
		inputs = append(inputs, string(b))
	}
	for _, src := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Parse(d, src)
		}()
	}
}
