package cq

import (
	"math"
	"testing"

	"mpclogic/internal/rel"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

// Section 3.1: τ* for the triangle query is 3/2, giving HyperCube load
// O(m/p^{2/3}).
func TestTriangleEdgePacking(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	res, err := FractionalEdgePacking(q)
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Value, 1.5) {
		t.Errorf("triangle τ* = %v, want 1.5", res.Value)
	}
}

func TestEdgePackingShapes(t *testing.T) {
	d := rel.NewDict()
	cases := []struct {
		src string
		tau float64
	}{
		{"H(x, y, z) :- R(x, y), S(y, z)", 1},                      // binary join: load m/p
		{"H(x, y, z, w) :- R(x, y), S(y, z), T(z, w)", 2},          // path of 3: matching {R,T}
		{"H(x, y, z, w) :- R(x, y), S(y, z), T(z, w), U(w, x)", 2}, // 4-cycle
		{"H(x, a, b, c) :- R(x, a), S(x, b), T(x, c)", 1},          // star: center caps packing
		{"H(x, y) :- R(x, y)", 1},                                  // single atom
		{"H(x, y, z, u, v, w) :- R(x, y), S(z, u), T(v, w)", 3},    // disjoint edges
	}
	for _, c := range cases {
		q := MustParse(d, c.src)
		res, err := FractionalEdgePacking(q)
		if err != nil {
			t.Fatal(err)
		}
		if !near(res.Value, c.tau) {
			t.Errorf("τ*(%s) = %v, want %v", c.src, res.Value, c.tau)
		}
		// Feasibility of returned weights.
		h := HypergraphOf(q)
		load := map[string]float64{}
		for j, e := range h.Edges {
			for _, v := range e {
				load[v] += res.Weights[j]
			}
		}
		for v, l := range load {
			if l > 1+1e-6 {
				t.Errorf("%s: vertex %s overpacked (%v)", c.src, v, l)
			}
		}
	}
}

func TestEdgeCoverAGM(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	res, err := FractionalEdgeCover(q)
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Value, 1.5) {
		t.Errorf("triangle ρ* = %v, want 1.5 (AGM bound m^{3/2})", res.Value)
	}
	q2 := MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
	res2, err := FractionalEdgeCover(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !near(res2.Value, 2) {
		t.Errorf("2-path ρ* = %v, want 2", res2.Value)
	}
}

// The share-exponent LP optimum t equals 1/τ* by LP duality.
func TestShareExponentsDuality(t *testing.T) {
	d := rel.NewDict()
	queries := []string{
		"H(x, y, z) :- R(x, y), S(y, z), T(z, x)",
		"H(x, y, z) :- R(x, y), S(y, z)",
		"H(x, y, z, w) :- R(x, y), S(y, z), T(z, w), U(w, x)",
		"H(x, a, b) :- R(x, a), S(x, b)",
	}
	for _, src := range queries {
		q := MustParse(d, src)
		pack, err := FractionalEdgePacking(q)
		if err != nil {
			t.Fatal(err)
		}
		exps, tval, err := ShareExponents(q)
		if err != nil {
			t.Fatal(err)
		}
		if !near(tval, 1/pack.Value) {
			t.Errorf("%s: t = %v, want 1/τ* = %v", src, tval, 1/pack.Value)
		}
		// Exponents sum to ≤ 1 and every atom gets at least t.
		sum := 0.0
		for _, e := range exps {
			if e < -1e-9 {
				t.Errorf("%s: negative exponent", src)
			}
			sum += e
		}
		if sum > 1+1e-6 {
			t.Errorf("%s: exponents sum to %v > 1", src, sum)
		}
		for _, a := range q.Body {
			s := 0.0
			for _, v := range a.Vars() {
				s += exps[v]
			}
			if s < tval-1e-6 {
				t.Errorf("%s: atom %v gets exponent %v < t=%v", src, a, s, tval)
			}
		}
	}
}

// Triangle share exponents: e_x = e_y = e_z = 1/3 (Example 3.2).
func TestTriangleShareExponents(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	exps, tval, err := ShareExponents(q)
	if err != nil {
		t.Fatal(err)
	}
	if !near(tval, 2.0/3.0) {
		t.Errorf("t = %v, want 2/3", tval)
	}
	for v, e := range exps {
		if !near(e, 1.0/3.0) {
			t.Errorf("exponent of %s = %v, want 1/3", v, e)
		}
	}
}

func TestPackingRejectsConstantOnlyAtom(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x) :- R(x), S(1)")
	if _, err := FractionalEdgePacking(q); err == nil {
		t.Errorf("constant-only atom accepted by packing")
	}
	if _, _, err := ShareExponents(q); err == nil {
		t.Errorf("constant-only atom accepted by share exponents")
	}
}
