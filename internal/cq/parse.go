package cq

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"mpclogic/internal/rel"
)

// Parse parses a conjunctive query in rule syntax:
//
//	H(x, z) :- R(x, y), R(y, z), not S(x), x != y, z != 'a'.
//
// Variables are identifiers; constants are single-quoted names
// (interned in d) or bare integer literals. Both ":-" and "<-" are
// accepted as the rule arrow, the trailing period is optional, and
// "not "/"!" prefixes mark negated atoms.
func Parse(d *rel.Dict, src string) (*CQ, error) {
	p := &parser{d: d, src: src}
	q, err := p.parseRule()
	if err != nil {
		return nil, fmt.Errorf("cq: parse %q: %w", src, err)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(d *rel.Dict, src string) *CQ {
	q, err := Parse(d, src)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseUCQ parses a union of CQs, one rule per line (or separated by
// semicolons).
func ParseUCQ(d *rel.Dict, src string) (*UCQ, error) {
	u := &UCQ{}
	for _, line := range strings.FieldsFunc(src, func(r rune) bool { return r == '\n' || r == ';' }) {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		q, err := Parse(d, line)
		if err != nil {
			return nil, err
		}
		u.Disjuncts = append(u.Disjuncts, q)
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return u, nil
}

// MustParseUCQ is ParseUCQ that panics on error.
func MustParseUCQ(d *rel.Dict, src string) *UCQ {
	u, err := ParseUCQ(d, src)
	if err != nil {
		panic(err)
	}
	return u
}

type parser struct {
	d   *rel.Dict
	src string
	pos int
}

func (p *parser) parseRule() (*CQ, error) {
	head, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	p.ws()
	if !p.eat(":-") && !p.eat("<-") {
		return nil, p.errf("expected ':-' or '<-'")
	}
	q := &CQ{Head: head}
	for {
		p.ws()
		neg := false
		if p.eatWord("not") || p.eat("¬") || p.eat("!") && !p.peekIs("=") {
			neg = true
		}
		p.ws()
		// Either an atom or an inequality: both start with a term, but
		// atoms are Rel( ... ). Look ahead after the identifier.
		save := p.pos
		if !neg {
			if t, ok := p.tryTerm(); ok {
				p.ws()
				if p.eat("!=") || p.eat("≠") {
					p.ws()
					t2, ok := p.tryTerm()
					if !ok {
						return nil, p.errf("expected term after '!='")
					}
					q.Diseq = append(q.Diseq, [2]Term{t, t2})
					if !p.more(q) {
						break
					}
					continue
				}
				p.pos = save // not an inequality: reparse as atom
			}
		}
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		if neg {
			q.Neg = append(q.Neg, a)
		} else {
			q.Body = append(q.Body, a)
		}
		if !p.more(q) {
			break
		}
	}
	return q, nil
}

// more consumes a separator; it reports whether another body element
// follows. It also accepts the optional trailing period.
func (p *parser) more(q *CQ) bool {
	p.ws()
	if p.eat(",") {
		return true
	}
	p.eat(".")
	p.ws()
	return false
}

func (p *parser) parseAtom() (Atom, error) {
	p.ws()
	name := p.ident()
	if name == "" {
		return Atom{}, p.errf("expected relation name")
	}
	p.ws()
	if !p.eat("(") {
		return Atom{}, p.errf("expected '(' after %s", name)
	}
	a := Atom{Rel: name}
	p.ws()
	if p.eat(")") {
		return a, nil
	}
	for {
		p.ws()
		t, ok := p.tryTerm()
		if !ok {
			return Atom{}, p.errf("expected term in atom %s", name)
		}
		a.Args = append(a.Args, t)
		p.ws()
		if p.eat(")") {
			return a, nil
		}
		if !p.eat(",") {
			return Atom{}, p.errf("expected ',' or ')' in atom %s", name)
		}
	}
}

// tryTerm parses a variable, quoted constant, or integer constant.
func (p *parser) tryTerm() (Term, bool) {
	p.ws()
	if p.pos >= len(p.src) {
		return Term{}, false
	}
	ch := p.src[p.pos]
	switch {
	case ch == '\'':
		end := strings.IndexByte(p.src[p.pos+1:], '\'')
		if end < 0 {
			return Term{}, false
		}
		name := p.src[p.pos+1 : p.pos+1+end]
		p.pos += end + 2
		return C(p.d.Value(name)), true
	case ch == '-' || unicode.IsDigit(rune(ch)):
		start := p.pos
		p.pos++
		for p.pos < len(p.src) && unicode.IsDigit(rune(p.src[p.pos])) {
			p.pos++
		}
		n, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
		if err != nil {
			p.pos = start
			return Term{}, false
		}
		return C(rel.Value(n)), true
	default:
		name := p.ident()
		if name == "" {
			return Term{}, false
		}
		return V(name), true
	}
}

func (p *parser) ident() string {
	start := p.pos
	for p.pos < len(p.src) {
		r := rune(p.src[p.pos])
		if unicode.IsLetter(r) || r == '_' || (p.pos > start && (unicode.IsDigit(r))) {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *parser) ws() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\r' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) eat(s string) bool {
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

// eatWord consumes s only when followed by a non-identifier character,
// so "not" does not swallow the prefix of "notable(x)".
func (p *parser) eatWord(s string) bool {
	if !strings.HasPrefix(p.src[p.pos:], s) {
		return false
	}
	rest := p.src[p.pos+len(s):]
	if rest != "" {
		r := rune(rest[0])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			return false
		}
	}
	p.pos += len(s)
	return true
}

func (p *parser) peekIs(s string) bool {
	return strings.HasPrefix(p.src[p.pos:], s)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf(format+" at offset %d", append(args, p.pos)...)
}
