package cq

import "fmt"

// Minimize computes the core of a pure conjunctive query: the unique
// (up to renaming) equivalent query with the fewest atoms, obtained by
// repeatedly deleting a body atom when the smaller query still
// contains the original (Chandra-Merlin). Minimization matters to the
// parallel-correctness framework because minimal valuations of Q and
// of its core coincide up to the deleted redundant atoms, and because
// a smaller body means cheaper saturation checks.
func Minimize(q *CQ) (*CQ, error) {
	if q.HasNegation() || q.HasDiseq() {
		return nil, fmt.Errorf("cq: minimization for pure CQs")
	}
	cur := q.Clone()
	for {
		removed := false
		for i := range cur.Body {
			if len(cur.Body) == 1 {
				break
			}
			cand := cur.Clone()
			cand.Body = append(cand.Body[:i], cand.Body[i+1:]...)
			if cand.Validate() != nil {
				continue // deletion broke head safety
			}
			// Deleting an atom relaxes the query, so cur ⊆ cand always;
			// equivalence only needs the other direction cand ⊆ cur.
			ok, err := Contained(cand, cur)
			if err != nil {
				return nil, err
			}
			if ok {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur, nil
		}
	}
}
