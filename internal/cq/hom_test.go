package cq

import (
	"testing"

	"mpclogic/internal/rel"
)

func TestContainedBasics(t *testing.T) {
	d := rel.NewDict()
	// R(x,x) result ⊆ R(x,y) result (specialization ⊆ generalization).
	spec := MustParse(d, "H(x) :- R(x, x)")
	gen := MustParse(d, "H(x) :- R(x, y)")
	if got, _ := Contained(spec, gen); !got {
		t.Errorf("R(x,x) ⊆ R(x,y) expected")
	}
	if got, _ := Contained(gen, spec); got {
		t.Errorf("R(x,y) ⊆ R(x,x) not expected")
	}
}

// Figure 1(b) of the paper: containment among Q1–Q4 of Example 4.11.
// Q1: H() :- S(x), R(x,x), T(x).     Q2: H() :- R(x,x), T(x).
// Q3: H() :- S(x), R(x,y), T(y).     Q4: H() :- R(x,y), T(y).
func TestFigure1Containment(t *testing.T) {
	d := rel.NewDict()
	q1 := MustParse(d, "H() :- S(x), R(x, x), T(x)")
	q2 := MustParse(d, "H() :- R(x, x), T(x)")
	q3 := MustParse(d, "H() :- S(x), R(x, y), T(y)")
	q4 := MustParse(d, "H() :- R(x, y), T(y)")
	qs := []*CQ{q1, q2, q3, q4}

	// want[i][j] == Qi ⊆ Qj, per Figure 1(b): Q1 ⊆ Q2 ⊆ Q4, Q1 ⊆ Q3 ⊆ Q4.
	want := [4][4]bool{
		{true, true, true, true},
		{false, true, false, true},
		{false, false, true, true},
		{false, false, false, true},
	}
	for i, qi := range qs {
		for j, qj := range qs {
			got, err := Contained(qi, qj)
			if err != nil {
				t.Fatal(err)
			}
			if got != want[i][j] {
				t.Errorf("Q%d ⊆ Q%d: got %v, want %v", i+1, j+1, got, want[i][j])
			}
		}
	}
}

func TestEquivalent(t *testing.T) {
	d := rel.NewDict()
	a := MustParse(d, "H(x) :- R(x, y), R(x, z)")
	b := MustParse(d, "H(x) :- R(x, y)")
	eq, err := Equivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("redundant-atom query not equivalent to its core")
	}
	c := MustParse(d, "H(x) :- R(y, x)")
	if eq, _ := Equivalent(b, c); eq {
		t.Errorf("direction-flipped query reported equivalent")
	}
}

func TestContainedDifferentHeads(t *testing.T) {
	d := rel.NewDict()
	a := MustParse(d, "H(x, y) :- R(x, y)")
	b := MustParse(d, "H(x) :- R(x, y)")
	if got, _ := Contained(a, b); got {
		t.Errorf("arity-mismatched containment accepted")
	}
}

func TestContainedRejectsExtensions(t *testing.T) {
	d := rel.NewDict()
	a := MustParse(d, "H(x) :- R(x, y), x != y")
	b := MustParse(d, "H(x) :- R(x, y)")
	if _, err := Contained(a, b); err == nil {
		t.Errorf("diseq accepted by Contained")
	}
	c := MustParse(d, "H(x) :- R(x, y), not S(x)")
	if _, err := Contained(c, b); err == nil {
		t.Errorf("negation accepted by Contained")
	}
}

func TestContainedWithConstants(t *testing.T) {
	d := rel.NewDict()
	a := MustParse(d, "H(x) :- R(x, 'c')")
	b := MustParse(d, "H(x) :- R(x, y)")
	if got, _ := Contained(a, b); !got {
		t.Errorf("constant specialization should be contained")
	}
	if got, _ := Contained(b, a); got {
		t.Errorf("generalization contained in constant query")
	}
}

func TestHomomorphismTo(t *testing.T) {
	d := rel.NewDict()
	gen := MustParse(d, "H(x) :- R(x, y)")
	spec := MustParse(d, "H(x) :- R(x, x)")
	// hom gen→spec exists (y↦x), so spec ⊆ gen.
	if got, _ := HomomorphismTo(gen, spec); !got {
		t.Errorf("hom gen→spec expected")
	}
	if got, _ := HomomorphismTo(spec, gen); got {
		t.Errorf("hom spec→gen not expected")
	}
}

func TestUCQContained(t *testing.T) {
	d := rel.NewDict()
	u1 := MustParseUCQ(d, "H(x) :- R(x, x)")
	u2 := MustParseUCQ(d, "H(x) :- R(x, y); H(x) :- S(x)")
	got, err := UCQContained(u1, u2)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Errorf("single disjunct not contained in covering union")
	}
	// The union is not contained in its single disjunct.
	got, err = UCQContained(u2, u1)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Errorf("union contained in strict disjunct")
	}
	// A union can be contained in another union without per-disjunct
	// pairing only in degenerate ways; check the simple pairing case.
	u3 := MustParseUCQ(d, "H(x) :- S(x); H(x) :- R(x, y)")
	got, err = UCQContained(u2, u3)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Errorf("permuted union not contained")
	}
}

func TestContainedNegBounded(t *testing.T) {
	d := rel.NewDict()
	// Q: R(x,y) ∧ ¬S(x)  vs  Q′: R(x,y): Q ⊆ Q′ (dropping negation
	// relaxes), Q′ ⊄ Q (witness has S(x)).
	q := MustParse(d, "H(x) :- R(x, y), not S(x)")
	qp := MustParse(d, "H(x) :- R(x, y)")
	ok, _, err := ContainedNegBounded(q, qp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("¬-restricted query should be contained in relaxation")
	}
	ok, witness, err := ContainedNegBounded(qp, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("relaxation contained in ¬-restricted query")
	}
	if witness == nil {
		t.Fatalf("no witness returned")
	}
	// Verify the witness really is a counterexample.
	qi := Output(qp, witness)
	qpi := Output(q, witness)
	if qi.SubsetOf(qpi) {
		t.Errorf("witness is not a counterexample: %v", witness)
	}
}

func TestContainedNegBoundedSpaceGuard(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x) :- R(x, x, x)")
	// Arity-3 relation over 4 values = 64 candidate facts > guard.
	if _, _, err := ContainedNegBounded(q, q, 4); err == nil {
		t.Errorf("oversized instance space accepted")
	}
}

func TestEachInstanceCounts(t *testing.T) {
	s := rel.NewSchema(map[string]int{"R": 1})
	n := 0
	err := EachInstance(s, []rel.Value{0, 1}, func(i *rel.Instance) bool {
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 { // subsets of {R(0), R(1)}
		t.Errorf("enumerated %d instances, want 4", n)
	}
}
