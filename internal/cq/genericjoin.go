package cq

import (
	"fmt"
	"sort"

	"mpclogic/internal/rel"
)

// This file implements a worst-case-optimal "generic join" evaluator:
// variable-at-a-time evaluation where each variable's candidates are
// obtained by intersecting, per covering atom, the values consistent
// with the bindings so far — always iterating the smallest candidate
// set. Its running time is bounded by the AGM bound m^{ρ*} (ρ* = the
// fractional edge cover number this library computes by LP), unlike
// pairwise join plans which can exceed it by materializing large
// intermediates.
//
// The paper cites Chu, Balazinska and Suciu's empirical study pairing
// exactly this kind of sequential algorithm with the HyperCube
// shuffle (Section 3.1): HyperCube + worst-case-optimal local joins
// perform well on queries with large intermediate results.

// gjIndex indexes one atom's admissible tuples by successive prefixes
// of the atom's variables in the global elimination order.
type gjIndex struct {
	vars []string // the atom's distinct variables, in global order
	// level[k] maps the key of the first k variable values to the set
	// of values the (k+1)-th variable takes.
	level []map[string][]rel.Value
}

// GenericJoin evaluates a positive CQ (inequalities allowed, negation
// not) with the worst-case-optimal strategy. It returns the head
// relation, exactly like Evaluate.
func GenericJoin(q *CQ, inst *rel.Instance) (*rel.Relation, error) {
	if q.HasNegation() {
		return nil, fmt.Errorf("cq: generic join handles positive queries")
	}
	out := rel.NewRelation(q.Head.Rel, len(q.Head.Args))

	// Global variable order: by total frequency across atoms
	// (descending), then name — a standard static heuristic.
	freq := map[string]int{}
	for _, a := range q.Body {
		for _, v := range a.Vars() {
			freq[v]++
		}
	}
	order := make([]string, 0, len(freq))
	for v := range freq {
		order = append(order, v)
	}
	sort.Slice(order, func(i, j int) bool {
		if freq[order[i]] != freq[order[j]] {
			return freq[order[i]] > freq[order[j]]
		}
		return order[i] < order[j]
	})
	pos := map[string]int{}
	for i, v := range order {
		pos[v] = i
	}

	// Build one prefix-trie index per atom.
	idxs := make([]*gjIndex, len(q.Body))
	for ai, a := range q.Body {
		idx, err := buildGJIndex(a, inst, pos)
		if err != nil {
			return nil, err
		}
		if idx == nil {
			return out, nil // an atom has no admissible tuples
		}
		idxs[ai] = idx
	}

	// atomsOf[v] lists the atoms containing variable v.
	atomsOf := map[string][]int{}
	for ai, a := range q.Body {
		for _, v := range a.Vars() {
			atomsOf[v] = append(atomsOf[v], ai)
		}
	}

	binding := make(Valuation, len(order))
	var recurse func(level int) error
	recurse = func(level int) error {
		if level == len(order) {
			if !binding.SatisfiesDiseq(q) {
				return nil
			}
			h := make(rel.Tuple, len(q.Head.Args))
			for i, t := range q.Head.Args {
				if t.IsVar() {
					h[i] = binding[t.Var]
				} else {
					h[i] = t.Const
				}
			}
			out.Add(h)
			return nil
		}
		v := order[level]
		// Candidate sets from every covering atom; iterate the
		// smallest, probe the rest.
		type cand struct {
			values []rel.Value
			ai     int
		}
		var cands []cand
		for _, ai := range atomsOf[v] {
			vals := idxs[ai].candidates(binding)
			cands = append(cands, cand{vals, ai})
		}
		sort.Slice(cands, func(i, j int) bool { return len(cands[i].values) < len(cands[j].values) })
		if len(cands) == 0 {
			return fmt.Errorf("cq: variable %s occurs in no atom", v)
		}
		// Probe sets for the larger candidate lists — only worthwhile
		// when the iterated list is itself large, since the map is
		// rebuilt on every recursive call.
		probes := make([]map[rel.Value]bool, len(cands)-1)
		for i, c := range cands[1:] {
			if len(cands[0].values) > 32 && len(c.values) > 64 {
				m := make(map[rel.Value]bool, len(c.values))
				for _, x := range c.values {
					m[x] = true
				}
				probes[i] = m
			}
		}
	next:
		for _, val := range cands[0].values {
			for i, c := range cands[1:] {
				if probes[i] != nil {
					if !probes[i][val] {
						continue next
					}
				} else if !containsValue(c.values, val) {
					continue next
				}
			}
			binding[v] = val
			if err := recurse(level + 1); err != nil {
				return err
			}
			delete(binding, v)
		}
		return nil
	}
	if err := recurse(0); err != nil {
		return nil, err
	}
	return out, nil
}

// buildGJIndex indexes an atom's admissible tuples (constants and
// repeated variables respected). A nil index means no tuples qualify.
func buildGJIndex(a Atom, inst *rel.Instance, globalPos map[string]int) (*gjIndex, error) {
	vars := a.Vars()
	sort.Slice(vars, func(i, j int) bool { return globalPos[vars[i]] < globalPos[vars[j]] })
	firstPos := map[string]int{}
	for p, t := range a.Args {
		if t.IsVar() {
			if _, ok := firstPos[t.Var]; !ok {
				firstPos[t.Var] = p
			}
		}
	}
	idx := &gjIndex{vars: vars, level: make([]map[string][]rel.Value, len(vars))}
	for k := range idx.level {
		idx.level[k] = map[string][]rel.Value{}
	}
	src := inst.Relation(a.Rel)
	if src == nil {
		return nil, nil
	}
	seen := map[string]bool{}
	any := false
	src.Each(func(t rel.Tuple) bool {
		for p, arg := range a.Args {
			if arg.IsVar() {
				if t[firstPos[arg.Var]] != t[p] {
					return true
				}
			} else if t[p] != arg.Const {
				return true
			}
		}
		any = true
		// Insert into every prefix level, deduplicated.
		prefix := make(rel.Tuple, 0, len(vars))
		for k, v := range vars {
			key := prefix.Key()
			val := t[firstPos[v]]
			dedup := fmt.Sprintf("%d|%s|%d", k, key, int64(val))
			if !seen[dedup] {
				seen[dedup] = true
				idx.level[k][key] = append(idx.level[k][key], val)
			}
			prefix = append(prefix, val)
		}
		return true
	})
	if !any {
		return nil, nil
	}
	return idx, nil
}

// candidates returns the values this atom admits for its first
// variable not bound by the binding (which, by construction of the
// global order, is exactly the variable being extended).
func (idx *gjIndex) candidates(binding Valuation) []rel.Value {
	prefix := make(rel.Tuple, 0, len(idx.vars))
	for _, v := range idx.vars {
		val, ok := binding[v]
		if !ok {
			break
		}
		prefix = append(prefix, val)
	}
	if len(prefix) == len(idx.vars) {
		// All variables bound: the "candidate" question is membership;
		// callers never reach here because the extended variable is
		// unbound in some covering atom.
		return nil
	}
	return idx.level[len(prefix)][prefix.Key()]
}

func containsValue(vals []rel.Value, v rel.Value) bool {
	for _, x := range vals {
		if x == v {
			return true
		}
	}
	return false
}
