package cq

import (
	"math/rand"
	"testing"

	"mpclogic/internal/rel"
)

func TestEvaluateSimpleJoin(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, y, z) :- R(x, y), S(y, z)")
	i := rel.MustInstance(d, "R(a,b)", "R(c,b)", "S(b,d)", "S(e,f)")
	out := Evaluate(q, i)
	want := rel.MustInstance(d, "H(a,b,d)", "H(c,b,d)").Relation("H")
	if !out.Equal(want) {
		t.Errorf("got %v", out.SortedTuples())
	}
}

func TestEvaluateTriangle(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	i := rel.MustInstance(d, "R(a,b)", "S(b,c)", "T(c,a)", "R(a,a)", "S(a,a)", "T(a,a)", "T(c,b)")
	out := Evaluate(q, i)
	want := rel.MustInstance(d, "H(a,b,c)", "H(a,a,a)").Relation("H")
	if !out.Equal(want) {
		t.Errorf("got %v want %v", out.SortedTuples(), want.SortedTuples())
	}
}

func TestEvaluateSelfJoinRepeatedVars(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, z) :- R(x, y), R(y, z), R(x, x)")
	i := rel.MustInstance(d, "R(a,b)", "R(b,a)", "R(a,a)")
	out := Evaluate(q, i)
	// valuations: x=a needs R(a,a): pairs via y: (a,b)->R(b,?): z=a; y=a: z in {a,b}.
	want := rel.MustInstance(d, "H(a,a)", "H(a,b)").Relation("H")
	if !out.Equal(want) {
		t.Errorf("got %v want %v", out.SortedTuples(), want.SortedTuples())
	}
}

func TestEvaluateWithConstants(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x) :- R(x, 'b')")
	i := rel.MustInstance(d, "R(a,b)", "R(c,d)")
	out := Evaluate(q, i)
	if out.Len() != 1 || !out.Contains(rel.Tuple{d.Value("a")}) {
		t.Errorf("got %v", out.SortedTuples())
	}
	// Constant in head.
	q2 := MustParse(d, "H(x, 'k') :- R(x, y)")
	out2 := Evaluate(q2, i)
	if out2.Len() != 2 || !out2.Contains(rel.Tuple{d.Value("a"), d.Value("k")}) {
		t.Errorf("head constant missing: %v", out2.SortedTuples())
	}
}

func TestEvaluateDiseq(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, y) :- E(x, y), x != y")
	i := rel.MustInstance(d, "E(a,a)", "E(a,b)")
	out := Evaluate(q, i)
	if out.Len() != 1 || !out.Contains(rel.Tuple{d.Value("a"), d.Value("b")}) {
		t.Errorf("got %v", out.SortedTuples())
	}
}

func TestEvaluateOpenTriangle(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, y, z) :- E(x, y), E(y, z), not E(z, x)")
	i := rel.MustInstance(d, "E(a,b)", "E(b,c)", "E(c,a)", "E(b,d)")
	out := Evaluate(q, i)
	// Closed: (a,b,c),(b,c,a),(c,a,b). Open paths: a-b-d (no E(d,a)) and
	// any path whose closing edge is absent.
	if out.Contains(rel.Tuple{d.Value("a"), d.Value("b"), d.Value("c")}) {
		t.Errorf("closed triangle reported as open")
	}
	if !out.Contains(rel.Tuple{d.Value("a"), d.Value("b"), d.Value("d")}) {
		t.Errorf("open path a,b,d missing: %v", out.SortedTuples())
	}
}

func TestEvaluateBooleanQuery(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H() :- S(x), R(x, x), T(x)")
	yes := rel.MustInstance(d, "S(a)", "R(a,a)", "T(a)")
	no := rel.MustInstance(d, "S(a)", "R(a,b)", "T(a)")
	if Evaluate(q, yes).Len() != 1 {
		t.Errorf("boolean true case empty")
	}
	if Evaluate(q, no).Len() != 0 {
		t.Errorf("boolean false case nonempty")
	}
}

func TestEvaluateEmptyRelation(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x) :- R(x), S(x)")
	i := rel.MustInstance(d, "R(a)")
	if Evaluate(q, i).Len() != 0 {
		t.Errorf("missing relation should give empty result")
	}
}

func TestSatisfyingValuations(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x) :- R(x, y)")
	i := rel.MustInstance(d, "R(a,b)", "R(a,c)")
	vals := SatisfyingValuations(q, i)
	if len(vals) != 2 {
		t.Fatalf("got %d valuations", len(vals))
	}
	for _, v := range vals {
		if !v.Satisfies(q, i) {
			t.Errorf("returned valuation does not satisfy: %v", v)
		}
		if v["x"] != d.Value("a") {
			t.Errorf("x = %v", v["x"])
		}
	}
}

func TestOutputUCQ(t *testing.T) {
	d := rel.NewDict()
	u := MustParseUCQ(d, "H(x) :- R(x, x); H(y) :- S(y)")
	i := rel.MustInstance(d, "R(a,a)", "R(a,b)", "S(c)")
	out := OutputUCQ(u, i)
	want := rel.MustInstance(d, "H(a)", "H(c)")
	if !out.Equal(want) {
		t.Errorf("got %v want %v", out.StringWith(d), want.StringWith(d))
	}
}

// Naive reference evaluator: enumerate all valuations over adom(I).
func naiveEvaluate(q *CQ, i *rel.Instance) *rel.Relation {
	out := rel.NewRelation(q.Head.Rel, len(q.Head.Args))
	universe := i.ADom().Sorted()
	AllValuations(q.Vars(), universe, func(v Valuation) bool {
		if v.Satisfies(q, i) {
			out.Add(v.Derives(q).Tuple)
		}
		return true
	})
	return out
}

// Property: the join-plan evaluator agrees with the naive evaluator on
// random small instances and a portfolio of query shapes.
func TestPropEvaluateAgreesWithNaive(t *testing.T) {
	d := rel.NewDict()
	queries := []*CQ{
		MustParse(d, "H(x, y) :- R(x, y)"),
		MustParse(d, "H(x, z) :- R(x, y), R(y, z)"),
		MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)"),
		MustParse(d, "H(x) :- R(x, x), S(x, y)"),
		MustParse(d, "H(x, y) :- R(x, y), not S(y, x)"),
		MustParse(d, "H(x, y) :- R(x, y), x != y"),
		MustParse(d, "H() :- R(x, y), S(y, x)"),
		MustParse(d, "H(x, z) :- R(x, y), R(y, z), S(z, x), not T(x, z), x != z"),
	}
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 80; trial++ {
		i := rel.NewInstance()
		n := r.Intn(14)
		for k := 0; k < n; k++ {
			name := []string{"R", "S", "T"}[r.Intn(3)]
			i.Add(rel.NewFact(name, rel.Value(r.Intn(4)), rel.Value(r.Intn(4))))
		}
		for _, q := range queries {
			fast := Evaluate(q, i)
			slow := naiveEvaluate(q, i)
			if !fast.Equal(slow) {
				t.Fatalf("query %v on %v:\nfast %v\nslow %v", q, i, fast.SortedTuples(), slow.SortedTuples())
			}
		}
	}
}

func TestPropEvaluateMonotoneForPureCQ(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, z) :- R(x, y), S(y, z)")
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		i := rel.NewInstance()
		j := rel.NewInstance()
		for k := 0; k < r.Intn(10); k++ {
			i.Add(rel.NewFact([]string{"R", "S"}[r.Intn(2)], rel.Value(r.Intn(4)), rel.Value(r.Intn(4))))
		}
		for k := 0; k < r.Intn(10); k++ {
			j.Add(rel.NewFact([]string{"R", "S"}[r.Intn(2)], rel.Value(r.Intn(4)), rel.Value(r.Intn(4))))
		}
		small := Evaluate(q, i)
		big := Evaluate(q, i.Union(j))
		small.Each(func(tu rel.Tuple) bool {
			if !big.Contains(tu) {
				t.Fatalf("pure CQ not monotone: %v lost", tu)
			}
			return true
		})
	}
}
