package cq

import (
	"math/rand"
	"testing"

	"mpclogic/internal/rel"
)

func TestGenericJoinMatchesEvaluate(t *testing.T) {
	d := rel.NewDict()
	queries := []*CQ{
		MustParse(d, "H(x, y) :- R(x, y)"),
		MustParse(d, "H(x, z) :- R(x, y), S(y, z)"),
		MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)"),
		MustParse(d, "H(x, z) :- R(x, y), R(y, z), R(x, x)"),
		MustParse(d, "H(x, y) :- R(x, y), x != y"),
		MustParse(d, "H(x) :- R(x, 2), S(x, y)"),
		MustParse(d, "H() :- R(x, y), S(y, x)"),
	}
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		inst := rel.NewInstance()
		n := r.Intn(20)
		for k := 0; k < n; k++ {
			inst.Add(rel.NewFact([]string{"R", "S", "T"}[r.Intn(3)],
				rel.Value(r.Intn(5)), rel.Value(r.Intn(5))))
		}
		for _, q := range queries {
			want := Evaluate(q, inst)
			got, err := GenericJoin(q, inst)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("query %v on %v:\ngeneric %v\nbinary  %v",
					q, inst, got.SortedTuples(), want.SortedTuples())
			}
		}
	}
}

func TestGenericJoinRejectsNegation(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x) :- R(x), not S(x)")
	if _, err := GenericJoin(q, rel.NewInstance()); err == nil {
		t.Errorf("negated query accepted")
	}
}

func TestGenericJoinEmptyAtom(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, z) :- R(x, y), S(y, z)")
	inst := rel.MustInstance(d, "R(a,b)")
	got, err := GenericJoin(q, inst)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("missing relation should give empty result")
	}
}

// The headline property: on the "fan" instance where R⋈S is quadratic
// but the triangle output is tiny, the pairwise cascade materializes
// the fan product while generic join's work stays near the output —
// checked here by result equality, with the cost shape measured in
// BenchmarkGenericJoin.
func TestGenericJoinTriangleFan(t *testing.T) {
	inst := rel.NewInstance()
	hub := rel.Value(10000)
	n := 60
	for i := 0; i < n; i++ {
		inst.Add(rel.NewFact("R", rel.Value(i), hub))
		inst.Add(rel.NewFact("S", hub, rel.Value(1000+i)))
	}
	// Only 3 closing edges.
	for i := 0; i < 3; i++ {
		inst.Add(rel.NewFact("T", rel.Value(1000+i), rel.Value(i)))
	}
	d := rel.NewDict()
	q := MustParse(d, "H(x, y, z) :- R(x, y), S(y, z), T(z, x)")
	got, err := GenericJoin(q, inst)
	if err != nil {
		t.Fatal(err)
	}
	want := Evaluate(q, inst)
	if !got.Equal(want) || got.Len() != 3 {
		t.Errorf("fan triangle: got %d want %d", got.Len(), want.Len())
	}
}
