package cq

import (
	"fmt"

	"mpclogic/internal/rel"
)

// This file implements minimal valuations (Definition 4.4): a valuation
// V for Q is minimal if no valuation V′ derives the same head fact from
// a strict subset of V's required facts. Minimal valuations are the
// key to the semantic characterization of parallel-correctness
// (Proposition 4.6) and of parallel-correctness transfer via "covers"
// (Definition 4.12, Proposition 4.13).
//
// For queries with inequalities, valuations must satisfy the
// inequalities to count (the "suitable definition" of [Geck et al.,
// ICDT 2016] the paper refers to). Queries with negated atoms have no
// meaningful notion of minimal valuation here; the functions reject
// them.

// IsMinimal reports whether the valuation v (total on vars(Q), and
// satisfying the inequalities of Q) is minimal for Q. The strictly
// smaller witness V′, if any, only needs values from adom(V(body_Q)),
// so the check is instance- and universe-independent.
func IsMinimal(q *CQ, v Valuation) (bool, error) {
	if q.HasNegation() {
		return false, fmt.Errorf("cq: minimal valuations undefined for CQ¬")
	}
	if !v.SatisfiesDiseq(q) {
		return false, fmt.Errorf("cq: valuation violates inequalities of the query")
	}
	required := v.RequiredInstance(q)
	head := v.Derives(q)
	vars := q.Vars()

	// Candidate values for V′: adom of the required facts. (Head values
	// occur in the body by safety.)
	universe := required.ADom().Sorted()

	found := false
	AllValuations(vars, universe, func(w Valuation) bool {
		if !w.SatisfiesDiseq(q) {
			return true
		}
		if !w.Derives(q).Equal(head) {
			return true
		}
		wReq := w.RequiredInstance(q)
		if wReq.SubsetOf(required) && wReq.Len() < required.Len() {
			found = true
			return false
		}
		return true
	})
	return !found, nil
}

// MinimalValuations enumerates all minimal valuations for Q over the
// given universe. The cost is |universe|^|vars(Q)| valuation checks;
// this exponential behaviour is inherent (Theorem 4.8: the related
// decision problems are Πᵖ₂-complete).
func MinimalValuations(q *CQ, universe []rel.Value) ([]Valuation, error) {
	if q.HasNegation() {
		return nil, fmt.Errorf("cq: minimal valuations undefined for CQ¬")
	}
	vars := q.Vars()
	var out []Valuation
	var err error
	AllValuations(vars, universe, func(v Valuation) bool {
		if !v.SatisfiesDiseq(q) {
			return true
		}
		min, e := IsMinimal(q, v)
		if e != nil {
			err = e
			return false
		}
		if min {
			out = append(out, v.Clone())
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EachMinimalValuation streams minimal valuations for Q over universe;
// iteration stops early when fn returns false. The valuation passed to
// fn is owned by the callee only for the duration of the call.
func EachMinimalValuation(q *CQ, universe []rel.Value, fn func(Valuation) bool) error {
	if q.HasNegation() {
		return fmt.Errorf("cq: minimal valuations undefined for CQ¬")
	}
	vars := q.Vars()
	var err error
	AllValuations(vars, universe, func(v Valuation) bool {
		if !v.SatisfiesDiseq(q) {
			return true
		}
		min, e := IsMinimal(q, v)
		if e != nil {
			err = e
			return false
		}
		if min {
			return fn(v)
		}
		return true
	})
	return err
}
