package cq

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mpclogic/internal/rel"
)

// testing/quick generators and invariant checks for the core CQ data
// structures: valuations, required facts, and the evaluation engine.

// smallVal is a domain value drawn from a tiny range so collisions and
// self-joins actually occur under quick.Check.
type smallVal rel.Value

// Generate implements quick.Generator.
func (smallVal) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(smallVal(r.Intn(4)))
}

// Valuations applied to an atom produce facts whose values are exactly
// the valuation's images.
func TestQuickValuationApply(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, z) :- R(x, y), S(y, z)")
	f := func(x, y, z smallVal) bool {
		v := Valuation{"x": rel.Value(x), "y": rel.Value(y), "z": rel.Value(z)}
		facts := v.RequiredFacts(q)
		// Facts are sorted, deduplicated, and match the bindings.
		for i := 1; i < len(facts); i++ {
			if !facts[i-1].Less(facts[i]) {
				return false
			}
		}
		req := v.RequiredInstance(q)
		if !req.Contains(rel.NewFact("R", rel.Value(x), rel.Value(y))) {
			return false
		}
		if !req.Contains(rel.NewFact("S", rel.Value(y), rel.Value(z))) {
			return false
		}
		return v.Derives(q).Equal(rel.NewFact("H", rel.Value(x), rel.Value(z)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Satisfies agrees with evaluation: V satisfies Q on I iff V's head
// fact is derivable and V's bindings appear among the satisfying
// valuations.
func TestQuickSatisfiesConsistent(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, z) :- R(x, y), S(y, z)")
	f := func(a, b, c, x, y, z smallVal) bool {
		i := rel.FromFacts(
			rel.NewFact("R", rel.Value(a), rel.Value(b)),
			rel.NewFact("S", rel.Value(b), rel.Value(c)),
		)
		v := Valuation{"x": rel.Value(x), "y": rel.Value(y), "z": rel.Value(z)}
		if !v.Satisfies(q, i) {
			return true
		}
		// A satisfying valuation's head must be in the evaluated output.
		return Evaluate(q, i).Contains(v.Derives(q).Tuple)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// The canonical-instance containment test is reflexive for arbitrary
// generated pure CQs over a small atom zoo.
func TestQuickContainmentReflexive(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	vars := []string{"x", "y", "z"}
	for trial := 0; trial < 100; trial++ {
		q := &CQ{Head: Atom{Rel: "H"}}
		n := 1 + r.Intn(3)
		for k := 0; k < n; k++ {
			q.Body = append(q.Body, NewAtom(
				[]string{"R", "S"}[r.Intn(2)],
				V(vars[r.Intn(3)]), V(vars[r.Intn(3)])))
		}
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
		ok, err := Contained(q, q)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("containment not reflexive for %v", q)
		}
	}
}

// Containment is transitive on a generated query pool.
func TestQuickContainmentTransitive(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	vars := []string{"x", "y", "z"}
	var pool []*CQ
	for k := 0; k < 10; k++ {
		q := &CQ{Head: Atom{Rel: "H", Args: []Term{V(vars[r.Intn(3)])}}}
		n := 1 + r.Intn(3)
		for j := 0; j < n; j++ {
			q.Body = append(q.Body, NewAtom("R", V(vars[r.Intn(3)]), V(vars[r.Intn(3)])))
		}
		// Ensure safety: head var must occur in body; retry by forcing.
		hv := q.Head.Args[0].Var
		q.Body = append(q.Body, NewAtom("R", V(hv), V(vars[r.Intn(3)])))
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
		pool = append(pool, q)
	}
	cont := func(a, b *CQ) bool {
		ok, err := Contained(a, b)
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	for _, a := range pool {
		for _, b := range pool {
			for _, c := range pool {
				if cont(a, b) && cont(b, c) && !cont(a, c) {
					t.Fatalf("containment not transitive:\n%v\n%v\n%v", a, b, c)
				}
			}
		}
	}
}

// AllValuations enumerates exactly |U|^|vars| total functions, each
// total on vars.
func TestQuickAllValuationsCount(t *testing.T) {
	f := func(nVars, nVals uint8) bool {
		nv := int(nVars%3) + 1
		nu := int(nVals%3) + 1
		vars := []string{"a", "b", "c"}[:nv]
		u := make([]rel.Value, nu)
		for i := range u {
			u[i] = rel.Value(i)
		}
		count := 0
		AllValuations(vars, u, func(v Valuation) bool {
			if len(v) != nv {
				return false
			}
			count++
			return true
		})
		want := 1
		for i := 0; i < nv; i++ {
			want *= nu
		}
		return count == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
