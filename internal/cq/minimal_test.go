package cq

import (
	"math/rand"
	"testing"

	"mpclogic/internal/rel"
)

// Example 4.5 of the paper: for Q: H(x,z) :- R(x,y), R(y,z), R(x,x),
// V1 = {x↦a, y↦b, z↦a} is NOT minimal while V2 = {x↦a, y↦a, z↦a} is.
func TestExample45Minimality(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, z) :- R(x, y), R(y, z), R(x, x)")
	a, b := d.Value("a"), d.Value("b")

	v1 := Valuation{"x": a, "y": b, "z": a}
	min1, err := IsMinimal(q, v1)
	if err != nil {
		t.Fatal(err)
	}
	if min1 {
		t.Errorf("V1 reported minimal; Example 4.5 says it is not")
	}

	v2 := Valuation{"x": a, "y": a, "z": a}
	min2, err := IsMinimal(q, v2)
	if err != nil {
		t.Fatal(err)
	}
	if !min2 {
		t.Errorf("V2 reported non-minimal; Example 4.5 says it is")
	}
}

func TestMinimalValuationsEnumeration(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, z) :- R(x, y), R(y, z), R(x, x)")
	u := d.Values("a", "b")
	mins, err := MinimalValuations(q, u)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range mins {
		ok, err := IsMinimal(q, v)
		if err != nil || !ok {
			t.Errorf("non-minimal valuation returned: %v (%v)", v, err)
		}
	}
	// {x↦a,y↦b,z↦a} must not be among them.
	bad := Valuation{"x": d.Value("a"), "y": d.Value("b"), "z": d.Value("a")}
	for _, v := range mins {
		if v.Equal(bad) {
			t.Errorf("known non-minimal valuation enumerated")
		}
	}
}

func TestMinimalRejectsNegation(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x) :- R(x), not S(x)")
	if _, err := MinimalValuations(q, d.Values("a")); err == nil {
		t.Errorf("CQ¬ accepted by MinimalValuations")
	}
	if _, err := IsMinimal(q, Valuation{"x": d.Value("a")}); err == nil {
		t.Errorf("CQ¬ accepted by IsMinimal")
	}
}

func TestMinimalWithDiseq(t *testing.T) {
	d := rel.NewDict()
	// With x != y, collapsing x and y is not allowed, so the
	// two-value valuation IS minimal here.
	q := MustParse(d, "H(x) :- R(x, y), R(y, x), x != y")
	a, b := d.Value("a"), d.Value("b")
	min, err := IsMinimal(q, Valuation{"x": a, "y": b})
	if err != nil {
		t.Fatal(err)
	}
	if !min {
		t.Errorf("diseq-protected valuation reported non-minimal")
	}
	// A valuation violating the inequality is rejected outright.
	if _, err := IsMinimal(q, Valuation{"x": a, "y": a}); err == nil {
		t.Errorf("diseq-violating valuation accepted")
	}
}

// Property: every satisfying valuation derives a fact that some minimal
// valuation with the same head also derives using a subset of its
// facts. (This is the engine behind Proposition 4.6.)
func TestPropMinimalDominates(t *testing.T) {
	d := rel.NewDict()
	queries := []*CQ{
		MustParse(d, "H(x, z) :- R(x, y), R(y, z)"),
		MustParse(d, "H(x, z) :- R(x, y), R(y, z), R(x, x)"),
		MustParse(d, "H(x) :- R(x, y), S(y, x)"),
	}
	u := []rel.Value{0, 1, 2}
	for _, q := range queries {
		AllValuations(q.Vars(), u, func(v Valuation) bool {
			req := v.RequiredInstance(q)
			head := v.Derives(q)
			found := false
			err := EachMinimalValuation(q, u, func(m Valuation) bool {
				if m.Derives(q).Equal(head) && m.RequiredInstance(q).SubsetOf(req) {
					found = true
					return false
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if !found {
				t.Fatalf("query %v: valuation %v not dominated by any minimal valuation", q, v)
			}
			return true
		})
	}
}

// Property: a minimal valuation's required facts, evaluated as an
// instance, derive the head (sanity of the definition).
func TestPropMinimalValuationsDerive(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, z) :- R(x, y), R(y, z), R(x, x)")
	u := []rel.Value{0, 1}
	mins, err := MinimalValuations(q, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(mins) == 0 {
		t.Fatal("no minimal valuations found")
	}
	for _, v := range mins {
		i := v.RequiredInstance(q)
		if !Evaluate(q, i).Contains(v.Derives(q).Tuple) {
			t.Errorf("minimal valuation %v does not derive its head from its required facts", v)
		}
	}
}

// Randomized cross-check of IsMinimal against a brute-force definition.
func TestPropIsMinimalBruteForce(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x) :- R(x, y), S(y, z)")
	vars := q.Vars()
	u := []rel.Value{0, 1, 2}
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		v := Valuation{}
		for _, name := range vars {
			v[name] = u[r.Intn(len(u))]
		}
		got, err := IsMinimal(q, v)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over the same universe (adom(V(body)) ⊆ u here).
		want := true
		AllValuations(vars, u, func(w Valuation) bool {
			if w.Derives(q).Equal(v.Derives(q)) {
				wi, vi := w.RequiredInstance(q), v.RequiredInstance(q)
				if wi.SubsetOf(vi) && wi.Len() < vi.Len() {
					want = false
					return false
				}
			}
			return true
		})
		if got != want {
			t.Fatalf("IsMinimal(%v) = %v, brute force says %v", v, got, want)
		}
	}
}

func TestMinimizeCore(t *testing.T) {
	d := rel.NewDict()
	cases := []struct {
		src  string
		want int // atoms in the core
	}{
		{"H(x) :- R(x, y), R(x, z)", 1},                // z-atom redundant
		{"H(x) :- R(x, y), R(y, z), R(x, x)", 1},       // collapses onto R(x,x)
		{"H(x, y) :- R(x, y)", 1},                      // already minimal
		{"H(x, y, z) :- R(x, y), S(y, z), T(z, x)", 3}, // triangle is a core
		{"H(x) :- R(x, y), S(y, y), R(x, w), S(w, w)", 2},
	}
	for _, c := range cases {
		q := MustParse(d, c.src)
		core, err := Minimize(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(core.Body) != c.want {
			t.Errorf("core of %q has %d atoms, want %d: %v", c.src, len(core.Body), c.want, core)
		}
		// The core must be equivalent to the original.
		eq, err := Equivalent(q, core)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("core of %q not equivalent", c.src)
		}
	}
	if _, err := Minimize(MustParse(d, "H(x) :- R(x), not S(x)")); err == nil {
		t.Errorf("negated query accepted by Minimize")
	}
}

// Minimization preserves minimal valuations' derived facts: the core
// derives exactly the same results on every bounded instance.
func TestMinimizePreservesSemantics(t *testing.T) {
	d := rel.NewDict()
	q := MustParse(d, "H(x, z) :- R(x, y), R(y, z), R(x, x), R(x, w)")
	core, err := Minimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(core.Body) >= len(q.Body) {
		t.Fatalf("nothing minimized: %v", core)
	}
	schema, _ := q.Schema()
	if err := EachInstance(schema, []rel.Value{0, 1}, func(i *rel.Instance) bool {
		if !Evaluate(q, i).Equal(Evaluate(core, i)) {
			t.Fatalf("core differs on %v", i)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}
