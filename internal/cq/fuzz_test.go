package cq

import (
	"testing"

	"mpclogic/internal/rel"
)

// FuzzParseCQ asserts two properties over arbitrary input:
//
//  1. Parse never panics — it returns an error on garbage.
//  2. Parse–print–parse is a fixpoint: a successfully parsed query
//     renders (String) to canonical rule syntax that reparses to a
//     query with the identical rendering. (The original source is NOT
//     required to round-trip byte-for-byte: the renderer normalizes
//     "<-" to ":-", "¬"/"!" to "not", "≠" to "!=", quoted constants
//     to interned integers, and whitespace.)
func FuzzParseCQ(f *testing.F) {
	for _, s := range []string{
		"H(x, z) :- R(x, y), R(y, z)",
		"H(x, y, z) :- E(x, y), E(y, z), not E(z, x)",
		"T() :- E(x, y), E(y, z), E(z, x).",
		"H(x) <- R(x, y), x != y",
		"H(x) :- R(x, 0), S(x, 'a'), x ≠ 3",
		"Q(x) :- R(x, x), ¬S(x)",
		"H() :- E(-1, 2), !S(2)",
		"H(x):-R(x,y),not  S( y ),y!=x.",
		"H(x) :- notable(x)",
		"H(x) :- R(x, y", // truncated: must error, not panic
		":- R(x)",
		"",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d := rel.NewDict()
		q, err := Parse(d, src)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		s1 := q.String()
		q2, err := Parse(d, s1)
		if err != nil {
			t.Fatalf("canonical rendering does not reparse: Parse(%q) -> %q -> %v", src, s1, err)
		}
		if s2 := q2.String(); s2 != s1 {
			t.Fatalf("print-parse-print not a fixpoint: %q -> %q -> %q", src, s1, s2)
		}
	})
}
