package cq

import (
	"fmt"

	"mpclogic/internal/rel"
)

// This file implements homomorphism-based containment for conjunctive
// queries (the Chandra-Merlin classic): Q ⊆ Q′ iff there is a
// homomorphism from Q′ to Q, iff Q′ derives the frozen head on the
// canonical instance of Q. Used by the Figure 1 experiment, which
// contrasts containment with parallel-correctness transfer.

// frozen maps the variables of q to fresh values not colliding with the
// query's constants and returns the canonical instance plus the frozen
// head fact and the freezing valuation.
func frozen(q *CQ) (*rel.Instance, rel.Fact, Valuation) {
	maxc := rel.Value(0)
	for c := range q.Constants() {
		if c >= maxc {
			maxc = c + 1
		}
	}
	v := make(Valuation)
	next := maxc
	for _, name := range q.Vars() {
		v[name] = next
		next++
	}
	inst := rel.NewInstance()
	for _, a := range q.Body {
		inst.Add(v.Apply(a))
	}
	return inst, v.Derives(q), v
}

// Contained decides Q ⊆ Q′ for pure conjunctive queries (no negation,
// no inequalities on either side). Head relations must agree in arity.
func Contained(q, qp *CQ) (bool, error) {
	if q.HasNegation() || qp.HasNegation() {
		return false, fmt.Errorf("cq: Contained does not handle negation; use ContainedNegBounded")
	}
	if q.HasDiseq() || qp.HasDiseq() {
		return false, fmt.Errorf("cq: Contained does not handle inequalities")
	}
	if len(q.Head.Args) != len(qp.Head.Args) {
		return false, nil
	}
	canon, head, _ := frozen(q)
	res := Evaluate(qp, canon)
	return res.Contains(head.Tuple) && qp.Head.Rel == head.Rel, nil
}

// Equivalent decides Q ≡ Q′ for pure conjunctive queries.
func Equivalent(q, qp *CQ) (bool, error) {
	a, err := Contained(q, qp)
	if err != nil || !a {
		return a, err
	}
	return Contained(qp, q)
}

// HomomorphismTo reports whether there is a homomorphism from q to qp:
// a mapping h of vars(q) to terms of qp with h(body_q) ⊆ body_qp and
// h(head_q) = head_qp. This is containment in the other direction of
// the arrow: hom q→qp exists iff qp ⊆ q.
func HomomorphismTo(q, qp *CQ) (bool, error) {
	return Contained(qp, q)
}

// UCQContained decides U ⊆ U′ for unions of pure CQs: every disjunct of
// U must be contained in the union U′, which by the classical argument
// reduces to: the canonical instance of each disjunct makes some
// disjunct of U′ derive the frozen head.
func UCQContained(u, up *UCQ) (bool, error) {
	for _, q := range u.Disjuncts {
		if q.HasNegation() || q.HasDiseq() {
			return false, fmt.Errorf("cq: UCQContained handles pure CQ disjuncts only")
		}
	}
	for _, qp := range up.Disjuncts {
		if qp.HasNegation() || qp.HasDiseq() {
			return false, fmt.Errorf("cq: UCQContained handles pure CQ disjuncts only")
		}
	}
	for _, q := range u.Disjuncts {
		canon, head, _ := frozen(q)
		ok := false
		for _, qp := range up.Disjuncts {
			if qp.Head.Rel != head.Rel || len(qp.Head.Args) != len(head.Tuple) {
				continue
			}
			if Evaluate(qp, canon).Contains(head.Tuple) {
				ok = true
				break
			}
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}
