package cq

import (
	"mpclogic/internal/rel"
)

// This file implements CQ evaluation by a left-deep hash-join plan with
// greedy atom ordering. It is the local computation engine used at each
// simulated MPC server, so it must handle instances with hundreds of
// thousands of facts.

// Evaluate computes Q(I) as a relation named after the head.
func Evaluate(q *CQ, i *rel.Instance) *rel.Relation {
	vars, tuples := evalBindings(q, i)
	out := rel.NewRelation(q.Head.Rel, len(q.Head.Args))
	if tuples == nil {
		return out
	}
	pos := varPositions(vars)
	h := make(rel.Tuple, len(q.Head.Args)) // reused: Add copies into out
	tuples.Each(func(t rel.Tuple) bool {
		for k, arg := range q.Head.Args {
			if arg.IsVar() {
				h[k] = t[pos[arg.Var]]
			} else {
				h[k] = arg.Const
			}
		}
		out.Add(h)
		return true
	})
	return out
}

// Output computes Q(I) as an instance holding the head relation.
func Output(q *CQ, i *rel.Instance) *rel.Instance {
	out := rel.NewInstance()
	out.SetRelation(Evaluate(q, i))
	return out
}

// OutputUCQ computes the union query's result as an instance.
func OutputUCQ(u *UCQ, i *rel.Instance) *rel.Instance {
	out := rel.NewInstance()
	for _, q := range u.Disjuncts {
		r := Evaluate(q, i)
		out.EnsureRelation(r.Name, r.Arity).UnionWith(r)
	}
	return out
}

// SatisfyingValuations returns every valuation of vars(Q) that
// satisfies Q on I. Variables occurring only in the head do not exist
// by safety, so the returned valuations are total on vars(Q).
func SatisfyingValuations(q *CQ, i *rel.Instance) []Valuation {
	vars, tuples := evalBindings(q, i)
	if tuples == nil {
		return nil
	}
	out := make([]Valuation, 0, tuples.Len())
	tuples.Each(func(t rel.Tuple) bool {
		v := make(Valuation, len(vars))
		for k, name := range vars {
			v[name] = t[k]
		}
		out = append(out, v)
		return true
	})
	return out
}

// evalBindings evaluates the positive body, inequalities, and negated
// atoms, returning the variable order and a relation of bindings over
// it. A nil relation means the result is empty.
func evalBindings(q *CQ, inst *rel.Instance) ([]string, *rel.Relation) {
	remaining := make([]Atom, len(q.Body))
	copy(remaining, q.Body)

	var vars []string
	bound := map[string]int{} // var → column in current
	current := rel.NewRelation("⋈", 0)
	current.Add(rel.Tuple{})

	diseqApplied := make([]bool, len(q.Diseq))

	applyDiseqs := func() {
		for di, d := range q.Diseq {
			if diseqApplied[di] {
				continue
			}
			c0, ok0 := termCol(d[0], bound)
			c1, ok1 := termCol(d[1], bound)
			if !ok0 || !ok1 {
				continue
			}
			diseqApplied[di] = true
			current = rel.Select(current, func(t rel.Tuple) bool {
				return termVal(d[0], t, c0) != termVal(d[1], t, c1)
			})
		}
	}

	for len(remaining) > 0 {
		// Greedy: most bound variables, then smallest relation.
		best := 0
		bestScore := -1
		bestSize := int(^uint(0) >> 1)
		for k, a := range remaining {
			score := 0
			for _, t := range a.Args {
				if t.IsVar() {
					if _, ok := bound[t.Var]; ok {
						score++
					}
				} else {
					score++ // constants filter like bound vars
				}
			}
			size := 0
			if r := inst.Relation(a.Rel); r != nil {
				size = r.Len()
			}
			if score > bestScore || (score == bestScore && size < bestSize) {
				best, bestScore, bestSize = k, score, size
			}
		}
		a := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)

		src := inst.Relation(a.Rel)
		if src == nil || src.Len() == 0 {
			return nil, nil
		}

		// Distinct variables of the atom in first-occurrence order, and
		// per-tuple admission check (constants, repeated variables).
		atomVars := a.Vars()
		varFirstPos := map[string]int{}
		for p, t := range a.Args {
			if t.IsVar() {
				if _, ok := varFirstPos[t.Var]; !ok {
					varFirstPos[t.Var] = p
				}
			}
		}
		admits := func(t rel.Tuple) bool {
			for p, arg := range a.Args {
				if arg.IsVar() {
					if t[varFirstPos[arg.Var]] != t[p] {
						return false
					}
				} else if t[p] != arg.Const {
					return false
				}
			}
			return true
		}

		var shared, fresh []string
		for _, v := range atomVars {
			if _, ok := bound[v]; ok {
				shared = append(shared, v)
			} else {
				fresh = append(fresh, v)
			}
		}
		sharedAtomCols := make([]int, len(shared))
		sharedCurCols := make([]int, len(shared))
		for k, v := range shared {
			sharedAtomCols[k] = varFirstPos[v]
			sharedCurCols[k] = bound[v]
		}
		freshCols := make([]int, len(fresh))
		for k, v := range fresh {
			freshCols[k] = varFirstPos[v]
		}

		// Index the atom's admitted tuples by shared-variable hash.
		// Buckets hold the source tuples themselves: candidates are
		// verified column-by-column at probe time, so no projected
		// tuple or string key is allocated per entry.
		idx := make(map[uint64][]rel.Tuple, src.Len())
		src.Each(func(t rel.Tuple) bool {
			if !admits(t) {
				return true
			}
			h := rel.HashCols(t, sharedAtomCols)
			idx[h] = append(idx[h], t)
			return true
		})

		next := rel.NewRelationSize("⋈", current.Arity+len(fresh), current.Len())
		scratch := make(rel.Tuple, current.Arity+len(fresh)) // reused: Add copies
		curArity := current.Arity
		current.Each(func(t rel.Tuple) bool {
			h := rel.HashCols(t, sharedCurCols)
			for _, s := range idx[h] {
				if !rel.EqualOn(t, sharedCurCols, s, sharedAtomCols) {
					continue
				}
				copy(scratch, t)
				for k, c := range freshCols {
					scratch[curArity+k] = s[c]
				}
				next.Add(scratch)
			}
			return true
		})
		current = next
		for _, v := range fresh {
			bound[v] = len(vars)
			vars = append(vars, v)
		}
		applyDiseqs()
		if current.Len() == 0 {
			return nil, nil
		}
	}

	// Constant-only inequalities (both sides constants) and any diseq
	// not yet applied (possible when body is a single atom and diseqs
	// refer to constants only).
	applyDiseqs()

	// Negated atoms: drop bindings whose instantiation is present.
	for _, a := range q.Neg {
		cols := make([]int, len(a.Args))
		for p, t := range a.Args {
			if t.IsVar() {
				cols[p] = bound[t.Var]
			} else {
				cols[p] = -1
			}
		}
		current = rel.Select(current, func(t rel.Tuple) bool {
			ft := make(rel.Tuple, len(a.Args))
			for p := range a.Args {
				if cols[p] >= 0 {
					ft[p] = t[cols[p]]
				} else {
					ft[p] = a.Args[p].Const
				}
			}
			return !inst.Contains(rel.Fact{Rel: a.Rel, Tuple: ft})
		})
	}
	if current.Len() == 0 {
		return nil, nil
	}
	return vars, current
}

func termCol(t Term, bound map[string]int) (int, bool) {
	if !t.IsVar() {
		return -1, true
	}
	c, ok := bound[t.Var]
	return c, ok
}

func termVal(t Term, tup rel.Tuple, col int) rel.Value {
	if col < 0 {
		return t.Const
	}
	return tup[col]
}

func varPositions(vars []string) map[string]int {
	out := make(map[string]int, len(vars))
	for i, v := range vars {
		out[v] = i
	}
	return out
}
