// Package cq implements conjunctive queries (CQs) as defined in
// Section 2 of Neven (PODS 2016), together with the machinery the
// paper's framework needs: evaluation, valuations, minimal valuations
// (Definition 4.4), homomorphism-based containment, negation and
// inequalities, structural analysis (acyclicity, connectedness), and
// fractional edge packings (Section 3.1).
package cq

import (
	"strconv"
	"strings"

	"mpclogic/internal/rel"
)

// Term is either a variable (Var != "") or a constant.
type Term struct {
	Var   string
	Const rel.Value
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v rel.Value) Term { return Term{Const: v} }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term; constants are shown as bare integers, which
// reparse to the same Value.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return strconv.FormatInt(int64(t.Const), 10)
}

// Atom is a relation name applied to a list of terms.
type Atom struct {
	Rel  string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(relName string, args ...Term) Atom {
	return Atom{Rel: relName, Args: args}
}

// Vars returns the distinct variables of the atom, in first-occurrence
// order.
func (a Atom) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range a.Args {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

// Equal reports structural equality of atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Rel != b.Rel || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// String renders the atom in the usual syntax.
func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Rel)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}
